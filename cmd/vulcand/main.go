// Command vulcand serves one tiered-memory scenario as a long-running
// daemon: the simulation advances epoch by epoch under an injected
// pacer while a unix-socket HTTP/JSON control API accepts admissions,
// departures and intensity changes between epochs. Every executed
// command is journaled; replaying the journal through the batch
// machinery (vulcansim -replay-journal) reproduces the run's report,
// trace and metrics byte for byte.
//
// Usage:
//
//	vulcand -config scen.json -socket /tmp/v.sock -journal run.journal
//	vulcand ... -speed 4                  # 4 epochs per wall second
//	vulcand ... -speed 0                  # manual mode: POST /v1/step
//	vulcand ... -checkpoint-base run.ckpt -checkpoint-every 30 -checkpoint-retain 3
//	vulcand -resume -config scen.json -journal run.journal -checkpoint-base run.ckpt
//
// Client mode posts one API call over the socket and prints the reply
// (no curl needed in scripts):
//
//	vulcand -socket /tmp/v.sock -post /v1/admit -data '{"app":{"preset":"memcached"},"depart":40}'
//	vulcand -socket /tmp/v.sock -post /v1/step -data '{"epochs":10}'
//	vulcand -socket /tmp/v.sock -get /v1/status
//	vulcand -socket /tmp/v.sock -post /v1/shutdown
//
// Control API (all under the unix socket):
//
//	POST /v1/admit      {"app":{...scenario app...},"name":"n","depart":E}
//	POST /v1/stop       {"name":"n"}
//	POST /v1/intensity  {"name":"n","milli":500}
//	POST /v1/step       {"epochs":N}     (manual mode only)
//	GET  /v1/status
//	POST /v1/checkpoint
//	POST /v1/shutdown                    (suspends resumably mid-run)
//
// Shutdown before the epoch target suspends the run resumably: the
// journal keeps no finish trailer and -resume continues it (from the
// newest rolling checkpoint when -checkpoint-base is armed, else by
// replaying the journal from the start — slower, same bytes). SIGINT
// and SIGTERM trigger the same resumable suspension.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vulcan/internal/scenario"
	"vulcan/internal/serve"
)

func main() {
	var (
		configPath = flag.String("config", "", "scenario JSON file (see internal/scenario); required to serve")
		socket     = flag.String("socket", "", "unix socket path for the control API (required)")
		journal    = flag.String("journal", "", "command journal path (required to serve; the run's reproducibility record)")
		traceOut   = flag.String("trace-out", "", "stream a Chrome trace-event JSON file as the run advances")
		metricsOut = flag.String("metrics-out", "", "stream per-epoch metric samples as CSV")
		reportOut  = flag.String("report-out", "", "write the final report to this file (default stdout)")
		jsonOut    = flag.Bool("json", false, "emit the final report as JSON")
		ckptBase   = flag.String("checkpoint-base", "", "rolling checkpoint base path (images land at base.tNNN.ext)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "write a rolling checkpoint every N epochs (needs -checkpoint-base)")
		ckptRetain = flag.Int("checkpoint-retain", 2, "keep the newest N rolling checkpoints (0 = all)")
		speed      = flag.Float64("speed", 1, "epochs per wall-clock second; 0 = manual stepping via POST /v1/step")
		maxBacklog = flag.Int("max-backlog", 0, "bound the async migration backlog (0 = unbounded)")
		rescore    = flag.Bool("rescore", false, "use the incremental rescore path")
		resume     = flag.Bool("resume", false, "recover a killed or suspended run from its journal and newest rolling checkpoint")
		postPath   = flag.String("post", "", "client mode: POST this API path over -socket and print the reply")
		getPath    = flag.String("get", "", "client mode: GET this API path over -socket and print the reply")
		data       = flag.String("data", "", "client mode: JSON request body for -post")
	)
	flag.Parse()

	if *socket == "" {
		log.Fatal("-socket is required")
	}
	if *postPath != "" || *getPath != "" {
		if *postPath != "" && *getPath != "" {
			log.Fatal("-post and -get are mutually exclusive")
		}
		os.Exit(client(*socket, *postPath, *getPath, *data))
	}

	if *journal == "" {
		log.Fatal("-journal is required: the journal is the run's reproducibility record")
	}
	if *ckptEvery < 0 || *ckptRetain < 0 {
		log.Fatal("-checkpoint-every and -checkpoint-retain must be >= 0")
	}
	if *ckptEvery > 0 && *ckptBase == "" {
		log.Fatal("-checkpoint-every needs -checkpoint-base")
	}
	if *speed < 0 {
		log.Fatal("-speed must be >= 0")
	}

	opts := serve.Options{
		TraceOut:         *traceOut,
		MetricsOut:       *metricsOut,
		Journal:          *journal,
		CheckpointBase:   *ckptBase,
		CheckpointEvery:  *ckptEvery,
		CheckpointRetain: *ckptRetain,
		MaxBacklog:       *maxBacklog,
		Rescore:          *rescore,
	}

	var s *serve.Session
	var err error
	if *resume {
		// The journal header carries the scenario and simulation knobs; a
		// -config here would be ignored, which should not pass silently.
		if *configPath != "" {
			log.Fatal("-resume reads the scenario from the journal header; drop -config")
		}
		if s, err = serve.Recover(opts); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recovered %s at epoch %d/%d\n", *journal, s.Epoch(), s.Target())
	} else {
		if *configPath == "" {
			log.Fatal("-config is required (or -resume to continue an existing journal)")
		}
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		file, err := scenario.LoadFile(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opts.Scenario = file
		if s, err = serve.NewSession(opts); err != nil {
			log.Fatal(err)
		}
	}

	// The pace closure is the only wall-clock in the serving stack: the
	// simulation tree below internal/serve stays deterministic and
	// sleep-free, and tests inject channel-metered pacers instead.
	var pace func()
	if *speed > 0 {
		interval := time.Duration(float64(time.Second) / *speed)
		pace = func() { time.Sleep(interval) }
	}

	d, err := serve.NewDaemon(s, *socket, pace)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(*socket)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "signal: suspending resumably")
		d.Stop()
	}()

	mode := "manual (POST /v1/step)"
	if pace != nil {
		mode = fmt.Sprintf("%g epochs/s", *speed)
	}
	fmt.Fprintf(os.Stderr, "vulcand serving on %s, epoch %d/%d, pacing %s\n",
		*socket, s.Epoch(), s.Target(), mode)
	if err := d.Run(); err != nil {
		log.Fatal(err)
	}

	if !s.Finished() || s.Epoch() < s.Target() {
		fmt.Fprintf(os.Stderr, "suspended at epoch %d/%d; resume with -resume\n", s.Epoch(), s.Target())
		return
	}
	out := os.Stdout
	if *reportOut != "" {
		f, err := os.Create(*reportOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := s.WriteReport(out, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

// client performs one API call over the unix socket and prints the
// reply body; the exit code reflects the HTTP status.
func client(socket, postPath, getPath, data string) int {
	c := &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", socket)
			},
		},
	}
	var resp *http.Response
	var err error
	if getPath != "" {
		resp, err = c.Get("http://vulcand" + getPath)
	} else {
		resp, err = c.Post("http://vulcand"+postPath, "application/json", strings.NewReader(data))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode >= 400 {
		return 1
	}
	return 0
}
