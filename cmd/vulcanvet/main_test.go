package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"determinism", "hotalloc", "snapfields"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q:\n%s", name, out)
		}
	}
}

func TestRunUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2 for missing patterns", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("no usage message on stderr: %s", stderr.String())
	}
}

// TestRunEmitsReports drives the full pipeline over one small package
// and checks both report files parse. The tree is vet-clean, so the
// run must exit 0 while still writing the (empty) artifacts CI uploads.
func TestRunEmitsReports(t *testing.T) {
	dir := t.TempDir()
	sarifPath := filepath.Join(dir, "out", "vulcanvet.sarif")
	jsonPath := filepath.Join(dir, "vulcanvet.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", sarifPath, "-json", jsonPath, "./internal/sim"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	sarif, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatalf("SARIF artifact does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Errorf("version = %q, runs = %d", log.Version, len(log.Runs))
	}
	if log.Runs[0].Results == nil {
		t.Error("clean run emitted null results; code scanning rejects that")
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Count    int   `json:"count"`
		Findings []any `json:"findings"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("JSON artifact does not parse: %v", err)
	}
	if rep.Count != 0 || rep.Findings == nil {
		t.Errorf("clean run: count = %d, findings nil = %t", rep.Count, rep.Findings == nil)
	}
}

// TestRunGrouped checks the contract-grouped listing mode end to end.
func TestRunGrouped(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-group", "./internal/sim"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "clean:") {
		t.Errorf("grouped clean run should summarize clean contracts:\n%s", stdout.String())
	}
}
