// Command vulcanvet is the multichecker for the repository's
// determinism and accounting invariants. It loads the module's packages
// offline (standard-library importer only), runs every analyzer in
// internal/analysis, and prints findings in file:line:col order.
//
// Usage:
//
//	go run ./cmd/vulcanvet ./...
//	go run ./cmd/vulcanvet -list
//	go run ./cmd/vulcanvet ./internal/policy ./internal/core
//
// A finding can be suppressed where it is a deliberate exception with a
// trailing "//vulcanvet:ok <analyzer>" comment on the same or preceding
// line. Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"vulcan/internal/analysis"
	"vulcan/internal/analysis/driver"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vulcanvet [-list] package-pattern...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	root, err := driver.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vulcanvet:", err)
		os.Exit(2)
	}
	pkgs, err := driver.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vulcanvet:", err)
		os.Exit(2)
	}
	findings := driver.Run(pkgs, suite)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vulcanvet: %d finding(s) in %d package(s)\n",
			len(findings), len(pkgs))
		os.Exit(1)
	}
}
