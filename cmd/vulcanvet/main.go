// Command vulcanvet is the multichecker for the repository's
// determinism and accounting invariants. It loads the module's packages
// offline (standard-library importer only), runs every analyzer in
// internal/analysis, and prints findings in file:line:col order.
//
// Usage:
//
//	go run ./cmd/vulcanvet ./...
//	go run ./cmd/vulcanvet -list
//	go run ./cmd/vulcanvet -group ./internal/policy ./internal/core
//	go run ./cmd/vulcanvet -sarif out/vulcanvet.sarif -json out/vulcanvet.json ./...
//
// -sarif writes a SARIF 2.1.0 log (GitHub code scanning ingests it and
// annotates findings inline on PRs); -json writes a flat machine-
// readable report; either takes "-" for stdout. -group lists findings
// grouped by contract instead of position order. Emitters always write,
// even on a clean run — an empty SARIF log is CI's green artifact.
//
// A finding can be suppressed where it is a deliberate exception with a
// trailing "//vulcanvet:ok <analyzer>" comment on the same or preceding
// line. Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vulcan/internal/analysis"
	"vulcan/internal/analysis/driver"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, returning the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vulcanvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	group := fs.Bool("group", false, "group findings by contract (analyzer) instead of position order")
	sarifOut := fs.String("sarif", "", "write a SARIF 2.1.0 report to `file` (\"-\" for stdout)")
	jsonOut := fs.String("json", "", "write a JSON report to `file` (\"-\" for stdout)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vulcanvet [-list] [-group] [-sarif file] [-json file] package-pattern...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	root, err := driver.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(stderr, "vulcanvet:", err)
		return 2
	}
	pkgs, err := driver.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "vulcanvet:", err)
		return 2
	}
	findings := driver.Run(pkgs, suite)

	if *sarifOut != "" {
		if err := emit(*sarifOut, stdout, func(w io.Writer) error {
			return driver.WriteSARIF(w, root, suite, findings)
		}); err != nil {
			fmt.Fprintln(stderr, "vulcanvet:", err)
			return 2
		}
	}
	if *jsonOut != "" {
		if err := emit(*jsonOut, stdout, func(w io.Writer) error {
			return driver.WriteJSON(w, root, findings)
		}); err != nil {
			fmt.Fprintln(stderr, "vulcanvet:", err)
			return 2
		}
	}

	if *group {
		driver.WriteGrouped(stdout, suite, findings)
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vulcanvet: %d finding(s) in %d package(s)\n",
			len(findings), len(pkgs))
		return 1
	}
	return 0
}

// emit writes a report to path ("-" = stdout), creating parent
// directories as needed.
func emit(path string, stdout io.Writer, write func(io.Writer) error) error {
	if path == "-" {
		return write(stdout)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
