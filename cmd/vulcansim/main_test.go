package main

import (
	"strings"
	"testing"

	"vulcan"
)

func TestBuildFaultPlan(t *testing.T) {
	cases := []struct {
		name    string
		profile string
		rate    float64
		seed    uint64
		armed   bool
		wantErr string
	}{
		{name: "all off", profile: "", rate: 0, armed: false},
		{name: "explicit off", profile: "off", rate: 0, armed: false},
		{name: "profile", profile: "moderate", rate: 0, armed: true},
		{name: "rate", profile: "", rate: 0.05, armed: true},
		{name: "rate with explicit off", profile: "off", rate: 0.05, armed: true},
		{name: "rate and seed", profile: "", rate: 0.05, seed: 9, armed: true},
		{name: "unknown profile", profile: "catastrophic", wantErr: "catastrophic"},
		{name: "profile and rate clash", profile: "light", rate: 0.05, wantErr: "mutually exclusive"},
		{name: "rate above one", rate: 1.5, wantErr: "out of range"},
		{name: "negative rate", rate: -0.1, wantErr: "out of range"},
		{name: "orphan fault seed", seed: 42, wantErr: "no effect"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := buildFaultPlan(tc.profile, tc.rate, tc.seed)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if plan.Armed() != tc.armed {
				t.Fatalf("armed = %v, want %v", plan.Armed(), tc.armed)
			}
			if tc.seed != 0 && plan.Seed != tc.seed {
				t.Fatalf("plan.Seed = %d, want %d", plan.Seed, tc.seed)
			}
			if plan != nil {
				if err := plan.Validate(); err != nil {
					t.Fatalf("built plan fails validation: %v", err)
				}
			}
		})
	}
}

func TestBuildRecorder(t *testing.T) {
	cases := []struct {
		name                         string
		traceOut, metricsOut, filter string
		wantRec                      bool
		wantErr                      []string
	}{
		{name: "no telemetry flags", wantRec: false},
		{name: "trace only", traceOut: "t.json", wantRec: true},
		{name: "metrics only", metricsOut: "m.csv", wantRec: true},
		{name: "valid filter", filter: "migrate-sync,tlb-shootdown", wantRec: true},
		{name: "filter with spaces", filter: " epoch , migrate-sync ", wantRec: true},
		{
			name:   "unknown event type",
			filter: "migrate-sync,flux-capacitor",
			// The error must name the bad type AND list the known ones so
			// the user can fix the flag without reading source.
			wantErr: []string{"-obs-filter", "flux-capacitor", "known:", "migrate-sync"},
		},
		{
			name:     "unknown type with trace flag",
			traceOut: "t.json",
			filter:   "nope",
			wantErr:  []string{"nope", "known:"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := buildRecorder(tc.traceOut, tc.metricsOut, tc.filter)
			if len(tc.wantErr) > 0 {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				for _, sub := range tc.wantErr {
					if !strings.Contains(err.Error(), sub) {
						t.Errorf("error %q missing substring %q", err, sub)
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (rec != nil) != tc.wantRec {
				t.Fatalf("recorder = %v, want present=%v", rec, tc.wantRec)
			}
		})
	}
}

func TestBuildCostProfiler(t *testing.T) {
	if p := buildCostProfiler(costFlags{}); p != nil {
		t.Fatalf("no cost flags: profiler = %v, want nil", p)
	}
	for _, c := range []costFlags{{pb: "c.pb.gz"}, {folded: "c.folded"}, {csv: "c.csv"}} {
		if buildCostProfiler(c) == nil {
			t.Errorf("%+v: want a profiler", c)
		}
	}
}

// TestBuildFaultPlanProfilesMatchLibrary pins the flag surface to the
// canned profiles: every published name must resolve.
func TestBuildFaultPlanProfilesMatchLibrary(t *testing.T) {
	for _, name := range []string{"off", "light", "moderate", "heavy"} {
		if _, err := buildFaultPlan(name, 0, 0); err != nil {
			t.Errorf("profile %s: %v", name, err)
		}
	}
	var _ *vulcan.FaultPlan // the facade alias is the flag surface's type
}
