// Command vulcansim runs one tiered-memory co-location scenario and
// reports per-application performance, fast-tier hit ratios, allocation,
// and the FTHR-weighted fairness index.
//
// Usage:
//
//	vulcansim -policy vulcan -seconds 180
//	vulcansim -policy memtis -apps memcached,liblinear -seconds 120
//	vulcansim -policy vulcan -staggered -series timeline.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"vulcan"
	"vulcan/internal/figures"
	"vulcan/internal/obs"
	"vulcan/internal/scenario"
	"vulcan/internal/sim"
)

func main() {
	var (
		policyName = flag.String("policy", "vulcan", "tiering policy: static, tpp, memtis, nomad, vulcan")
		appsFlag   = flag.String("apps", "memcached,pagerank,liblinear", "comma-separated apps (memcached, pagerank, liblinear)")
		seconds    = flag.Int("seconds", 120, "simulated seconds")
		scale      = flag.Int("scale", 4, "extra capacity scale divisor (1 = full 1/64 scale)")
		seed       = flag.Uint64("seed", 1, "random seed")
		staggered  = flag.Bool("staggered", false, "stagger app arrivals at 0s/50s/110s (Figure 9 style)")
		seriesOut  = flag.String("series", "", "write per-epoch time series CSV to this file")
		configPath = flag.String("config", "", "load the scenario from a JSON file (see internal/scenario) instead of flags")
		jsonOut    = flag.Bool("json", false, "emit the final report as JSON")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		metricsOut = flag.String("metrics-out", "", "write per-epoch metric samples as CSV to this file")
		obsFilter  = flag.String("obs-filter", "", "comma-separated event types to record (default all; see internal/obs)")
	)
	flag.Parse()

	rec := buildRecorder(*traceOut, *metricsOut, *obsFilter)

	if *configPath != "" {
		runConfigFile(*configPath, *seriesOut, *jsonOut, rec, *traceOut, *metricsOut)
		return
	}

	var apps []vulcan.AppConfig
	for _, name := range strings.Split(*appsFlag, ",") {
		var cfg vulcan.AppConfig
		switch strings.TrimSpace(name) {
		case "memcached":
			cfg = vulcan.Memcached()
		case "pagerank":
			cfg = vulcan.PageRank()
		case "liblinear":
			cfg = vulcan.Liblinear()
		default:
			log.Fatalf("unknown app %q (want memcached, pagerank, liblinear)", name)
		}
		cfg.RSSPages /= *scale
		apps = append(apps, cfg)
	}
	if *staggered {
		for i := range apps {
			apps[i].StartAt = vulcan.Time(i) * vulcan.Time(50*sim.Second) * 11 / 10
		}
	}

	mcfg := figures.ColocationMachine(*scale)
	cfg := vulcan.Config{
		Machine:          mcfg,
		Apps:             apps,
		Policy:           figures.NewPolicy(*policyName),
		Seed:             *seed,
		SamplesPerThread: figures.SamplesForScale(*scale),
	}
	if rec != nil {
		cfg.Obs = rec
	}
	sys := vulcan.NewSystem(cfg)
	sys.Run(vulcan.Duration(*seconds) * vulcan.Second)
	finish(sys, *jsonOut, *seriesOut, rec, *traceOut, *metricsOut)
}

// buildRecorder returns a telemetry recorder when any -trace-out,
// -metrics-out or -obs-filter flag asks for one, nil otherwise (so the
// simulation pays nothing for telemetry it will not export).
func buildRecorder(traceOut, metricsOut, obsFilter string) *obs.Recorder {
	if traceOut == "" && metricsOut == "" && obsFilter == "" {
		return nil
	}
	rec := obs.NewRecorder()
	if obsFilter != "" {
		filter, err := obs.ParseFilter(obsFilter)
		if err != nil {
			log.Fatal(err)
		}
		rec.SetFilter(filter)
	}
	return rec
}

// runConfigFile executes a JSON-defined scenario.
func runConfigFile(path, seriesOut string, jsonOut bool, rec *obs.Recorder, traceOut, metricsOut string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := scenario.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	cfg := vulcan.Config{
		Machine: parsed.Machine,
		Apps:    parsed.Apps,
		Policy:  figures.NewPolicy(parsed.Policy),
		Seed:    parsed.Seed,
	}
	if rec != nil {
		cfg.Obs = rec
	}
	sys := vulcan.NewSystem(cfg)
	sys.Run(vulcan.Duration(parsed.Duration))
	finish(sys, jsonOut, seriesOut, rec, traceOut, metricsOut)
}

// finish prints the run summary and optional artifacts.
func finish(sys *vulcan.System, jsonOut bool, seriesOut string, rec *obs.Recorder, traceOut, metricsOut string) {
	if jsonOut {
		if err := sys.Report().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if err := sys.Report().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if seriesOut != "" {
		writeArtifact(seriesOut, "time series", sys.Recorder().WriteCSV)
	}
	if traceOut != "" {
		writeArtifact(traceOut, "chrome trace", rec.WriteChromeTrace)
	}
	if metricsOut != "" {
		writeArtifact(metricsOut, "metric samples", rec.WriteMetricsCSV)
	}
}

// writeArtifact creates path and streams one exporter's output into it.
func writeArtifact(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
}
