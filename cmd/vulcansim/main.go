// Command vulcansim runs one tiered-memory co-location scenario and
// reports per-application performance, fast-tier hit ratios, allocation,
// and the FTHR-weighted fairness index.
//
// Usage:
//
//	vulcansim -policy vulcan -seconds 180
//	vulcansim -policy memtis -apps memcached,liblinear -seconds 120
//	vulcansim -policy vulcan -staggered -series timeline.csv
//	vulcansim -policy vulcan -seeds 5 -parallel 4   # seeds 1..5 in parallel
//	vulcansim -policy vulcan -faults moderate       # deterministic chaos
//	vulcansim -policy tpp -fault-rate 0.08 -fault-seed 42
//	vulcansim -fleet 8 -scheduler fairness -seconds 60   # multi-host fleet
//
// Fleet mode (-fleet N, or a scenario file with a "fleet" block) steps
// N hosts in lockstep under a placement scheduler (-scheduler binpack,
// fairness or vulcan); -seconds then counts one-second fleet epochs and
// the report is fleet-wide (fleet CFI, per-host spread, migration
// totals). Fleet runs support -json, fleet-level -checkpoint-out and
// -resume, but no per-epoch artifact exports.
//
// Multi-seed mode (-seeds N) runs N consecutive seeds as independent
// simulations on a worker pool (-parallel, default GOMAXPROCS) and
// reports them in seed order; per-seed artifacts get a ".seedK" suffix
// before the extension. Output is byte-identical at any -parallel value.
//
// Fault injection (-faults off|light|moderate|heavy, or -fault-rate R
// for the canonical plan at rate R) is clock-keyed and seed-derived:
// the same flags replay the same faults byte for byte. -fault-seed
// varies the fault schedule without touching the workload seed.
//
// Cost profiling (-costprofile, -cost-folded, -cost-csv) attributes
// every simulated cycle to a (subsystem, app, tier) account and exports
// the result as a go-tool-pprof-readable profile, folded flamegraph
// stacks, or a per-epoch breakdown CSV (see internal/obs/prof). The
// artifacts are deterministic: byte-identical across replays and at any
// -parallel value. -cpuprofile/-memprofile profile the simulator
// process itself (wall-clock plane) with runtime/pprof.
//
// Checkpoint/restore (-checkpoint-out, -checkpoint-every, -resume):
//
//	vulcansim -seconds 120 -checkpoint-out run.ckpt        # snapshot the end state
//	vulcansim -seconds 120 -checkpoint-out run.ckpt -checkpoint-every 30
//	vulcansim -resume run.ckpt -seconds 60                 # 60 MORE simulated seconds
//	vulcansim -resume run.ckpt -seconds 60 -faults heavy   # branch into chaos
//
// A resumed run continued to the original end time reproduces the
// uninterrupted run's report, series, trace and metrics byte for byte
// when the remaining flags match. The policy and fault flags may differ
// from the checkpointed run — that branches a new experiment from the
// snapshot instead (the restored policy starts cold). Checkpointing is
// single-run only: it excludes -seeds > 1. Interim checkpoints follow
// the rolling-family naming (run.ckpt -> run.t030.ckpt) and
// -checkpoint-retain keeps only the newest N of them (0 = all).
//
// Journal replay (-replay-journal run.journal) rebuilds a vulcand
// serving session from its command journal through the batch pipeline:
// the journal header carries the scenario, every journaled command
// re-applies at its epoch boundary, and the report, -trace-out and
// -metrics-out artifacts are byte-identical to what the live daemon
// streamed — at any -parallel value.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"vulcan"
	"vulcan/internal/checkpoint"
	"vulcan/internal/cluster"
	"vulcan/internal/figures"
	"vulcan/internal/lab"
	"vulcan/internal/obs"
	"vulcan/internal/obs/prof"
	"vulcan/internal/scenario"
	"vulcan/internal/serve"
	"vulcan/internal/sim"
)

// costFlags bundles the three simulated-cost artifact paths.
type costFlags struct {
	pb     string // gzipped pprof protobuf
	folded string // folded stacks (flamegraph.pl / speedscope input)
	csv    string // per-epoch breakdown CSV
}

// wanted reports whether any cost artifact was requested.
func (c costFlags) wanted() bool { return c.pb != "" || c.folded != "" || c.csv != "" }

func main() {
	var (
		policyName = flag.String("policy", "vulcan", "tiering policy: "+strings.Join(figures.PolicyNames, ", "))
		appsFlag   = flag.String("apps", "memcached,pagerank,liblinear", "comma-separated apps (memcached, pagerank, liblinear)")
		seconds    = flag.Int("seconds", 120, "simulated seconds")
		scale      = flag.Int("scale", 4, "extra capacity scale divisor (1 = full 1/64 scale)")
		seed       = flag.Uint64("seed", 1, "random seed")
		staggered  = flag.Bool("staggered", false, "stagger app arrivals at 0s/50s/110s (Figure 9 style)")
		seriesOut  = flag.String("series", "", "write per-epoch time series CSV to this file")
		configPath = flag.String("config", "", "load the scenario from a JSON file (see internal/scenario) instead of flags")
		jsonOut    = flag.Bool("json", false, "emit the final report as JSON")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in Perfetto / chrome://tracing)")
		metricsOut = flag.String("metrics-out", "", "write per-epoch metric samples as CSV to this file")
		obsFilter  = flag.String("obs-filter", "", "comma-separated event types to record (default all; see internal/obs)")
		seedsN     = flag.Int("seeds", 1, "run this many consecutive seeds (seed, seed+1, ...) as independent simulations")
		parallel   = flag.Int("parallel", 0, "worker goroutines for multi-seed mode (0 = GOMAXPROCS); output is byte-identical at any value")
		faultsProf = flag.String("faults", "", "fault-injection profile: off, light, moderate, heavy")
		faultRate  = flag.Float64("fault-rate", 0, "inject the canonical all-kinds fault plan at this rate (0 = off; excludes -faults)")
		faultSeed  = flag.Uint64("fault-seed", 0, "vary the fault schedule independently of -seed (needs -faults or -fault-rate)")
		fleetN     = flag.Int("fleet", 0, "run a fleet of this many hosts instead of one machine; -seconds counts fleet epochs of 1s")
		schedName  = flag.String("scheduler", "binpack", "fleet placement scheduler: "+strings.Join(cluster.Schedulers(), ", ")+" (needs -fleet)")
		ckptOut    = flag.String("checkpoint-out", "", "write a checkpoint blob of the final simulation state to this file")
		ckptEvery  = flag.Int("checkpoint-every", 0, "also checkpoint every N simulated seconds (needs -checkpoint-out; interim files get a .tNNN suffix)")
		ckptRetain = flag.Int("checkpoint-retain", 0, "keep only the newest N interim checkpoints (0 = all; needs -checkpoint-every)")
		resumeFrom = flag.String("resume", "", "resume from a checkpoint blob; -seconds then counts additional simulated time")
		replayJrnl = flag.String("replay-journal", "", "replay a vulcand command journal through the batch pipeline and exit")
		costPB     = flag.String("costprofile", "", "write the simulated-cycle cost profile as gzipped pprof protobuf (go tool pprof readable)")
		costFolded = flag.String("cost-folded", "", "write the cost profile as folded stacks (flamegraph.pl / speedscope input)")
		costCSV    = flag.String("cost-csv", "", "write the per-epoch cost breakdown as CSV")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the simulator process itself to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile of the simulator process itself to this file (taken after the run)")
	)
	flag.Parse()
	lab.SetDefaultWorkers(*parallel)
	cost := costFlags{pb: *costPB, folded: *costFolded, csv: *costCSV}

	// Plane-B self-profiling of the simulator process. Deferred writers
	// run on every normal return path; log.Fatal error paths lose the
	// profile, which is fine — the run itself failed.
	if *cpuProf != "" {
		stop, err := prof.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProf)
		}()
	}

	plan, err := buildFaultPlan(*faultsProf, *faultRate, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if !figures.ValidPolicy(*policyName) {
		log.Fatalf("unknown policy %q (want one of %s)", *policyName, strings.Join(figures.PolicyNames, ", "))
	}
	if *ckptEvery < 0 || *ckptRetain < 0 {
		log.Fatal("-checkpoint-every and -checkpoint-retain must be >= 0")
	}
	if *ckptEvery > 0 && *ckptOut == "" {
		log.Fatal("-checkpoint-every needs -checkpoint-out")
	}
	if *ckptRetain > 0 && *ckptEvery == 0 {
		log.Fatal("-checkpoint-retain needs -checkpoint-every")
	}
	if (*ckptOut != "" || *resumeFrom != "") && *seedsN > 1 {
		log.Fatal("-checkpoint-out/-resume are single-run flags; they exclude -seeds > 1")
	}

	if *replayJrnl != "" {
		// The journal header IS the scenario; flags that would define or
		// alter one are contradictions, not overrides.
		if *configPath != "" || *fleetN > 0 || *seedsN > 1 || *seriesOut != "" ||
			cost.wanted() || plan != nil || *ckptOut != "" || *resumeFrom != "" {
			log.Fatal("-replay-journal replays the journal's own scenario: it supports -json, -trace-out, -metrics-out and -parallel only")
		}
		runReplayJournal(*replayJrnl, *jsonOut, *traceOut, *metricsOut)
		return
	}

	if *fleetN > 0 {
		if *seedsN > 1 || *configPath != "" || cost.wanted() ||
			*traceOut != "" || *metricsOut != "" || *seriesOut != "" || *ckptEvery > 0 {
			log.Fatal("-fleet runs one fleet: it excludes -seeds, -config, -series, trace/metrics and cost artifacts, and -checkpoint-every")
		}
		runFleet(fleetConfig(*fleetN, *schedName, *policyName, *scale, *seed, plan),
			*seconds, *jsonOut, *resumeFrom, *ckptOut)
		return
	}

	if *configPath != "" {
		if *seedsN > 1 {
			log.Fatal("-seeds applies to flag-defined scenarios, not -config runs")
		}
		rec, err := buildRecorder(*traceOut, *metricsOut, *obsFilter)
		if err != nil {
			log.Fatal(err)
		}
		runConfigFile(*configPath, *seriesOut, *jsonOut, rec, *traceOut, *metricsOut, cost, plan,
			*resumeFrom, *ckptOut, *ckptEvery, *ckptRetain)
		return
	}

	var apps []vulcan.AppConfig
	for _, name := range strings.Split(*appsFlag, ",") {
		var cfg vulcan.AppConfig
		switch strings.TrimSpace(name) {
		case "memcached":
			cfg = vulcan.Memcached()
		case "pagerank":
			cfg = vulcan.PageRank()
		case "liblinear":
			cfg = vulcan.Liblinear()
		default:
			log.Fatalf("unknown app %q (want memcached, pagerank, liblinear)", name)
		}
		cfg.RSSPages /= *scale
		apps = append(apps, cfg)
	}
	if *staggered {
		for i := range apps {
			apps[i].StartAt = vulcan.Time(i) * vulcan.Time(50*sim.Second) * 11 / 10
		}
	}

	if *seedsN > 1 {
		// Validate the filter once before fanning out; workers reparse
		// it (deterministically) for their private recorders.
		if *obsFilter != "" {
			if _, err := obs.ParseFilter(*obsFilter); err != nil {
				log.Fatal(err)
			}
		}
		// Each seed is a self-contained run: fresh policy, recorder,
		// cost profiler and system per worker. Output is rendered to
		// buffers in parallel and committed to stdout/disk serially in
		// seed order, so bytes never depend on -parallel.
		type seedOut struct {
			report, series, trace, metrics []byte
			costPB, costFolded, costCSV    []byte
		}
		outs := lab.Map(0, *seedsN, func(i int) seedOut {
			rec, err := buildRecorder(*traceOut, *metricsOut, *obsFilter)
			if err != nil {
				panic(err) // filter validated before the fan-out
			}
			p := buildCostProfiler(cost)
			cfg := vulcan.Config{
				Machine:          figures.ColocationMachine(*scale),
				Apps:             apps,
				Policy:           figures.NewPolicy(*policyName),
				Seed:             *seed + uint64(i),
				SamplesPerThread: figures.SamplesForScale(*scale),
				Faults:           plan,
				Prof:             p,
			}
			if rec != nil {
				cfg.Obs = rec
				rec.AttachCostProfiler(p)
			}
			sys := vulcan.NewSystem(cfg)
			sys.Run(vulcan.Duration(*seconds) * vulcan.Second)
			var o seedOut
			o.report = renderReport(sys, *jsonOut)
			if *seriesOut != "" {
				o.series = renderTo(sys.Recorder().WriteCSV)
			}
			if *traceOut != "" {
				o.trace = renderTo(rec.WriteChromeTrace)
			}
			if *metricsOut != "" {
				o.metrics = renderTo(rec.WriteMetricsCSV)
			}
			if cost.pb != "" {
				o.costPB = renderTo(p.WritePprof)
			}
			if cost.folded != "" {
				o.costFolded = renderTo(p.WriteFolded)
			}
			if cost.csv != "" {
				o.costCSV = renderTo(p.WriteBreakdownCSV)
			}
			return o
		})
		for i, o := range outs {
			s := *seed + uint64(i)
			if !*jsonOut {
				fmt.Printf("### seed %d\n", s)
			}
			os.Stdout.Write(o.report)
			if *seriesOut != "" {
				writeBytesArtifact(seedPath(*seriesOut, s), "time series", o.series)
			}
			if *traceOut != "" {
				writeBytesArtifact(seedPath(*traceOut, s), "chrome trace", o.trace)
			}
			if *metricsOut != "" {
				writeBytesArtifact(seedPath(*metricsOut, s), "metric samples", o.metrics)
			}
			if cost.pb != "" {
				writeBytesArtifact(seedPath(cost.pb, s), "cost profile", o.costPB)
			}
			if cost.folded != "" {
				writeBytesArtifact(seedPath(cost.folded, s), "folded cost stacks", o.costFolded)
			}
			if cost.csv != "" {
				writeBytesArtifact(seedPath(cost.csv, s), "cost breakdown", o.costCSV)
			}
		}
		return
	}

	rec, err := buildRecorder(*traceOut, *metricsOut, *obsFilter)
	if err != nil {
		log.Fatal(err)
	}
	p := buildCostProfiler(cost)
	mcfg := figures.ColocationMachine(*scale)
	cfg := vulcan.Config{
		Machine:          mcfg,
		Apps:             apps,
		Policy:           figures.NewPolicy(*policyName),
		Seed:             *seed,
		SamplesPerThread: figures.SamplesForScale(*scale),
		Faults:           plan,
		Prof:             p,
	}
	if rec != nil {
		cfg.Obs = rec
		rec.AttachCostProfiler(p)
	}
	sys := runSystem(cfg, *seconds, *resumeFrom, *ckptOut, *ckptEvery, *ckptRetain)
	finish(sys, *jsonOut, *seriesOut, rec, *traceOut, *metricsOut)
	writeCostArtifacts(p, cost)
}

// runReplayJournal rebuilds a vulcand serving run from its command
// journal in batch mode and renders the same artifacts the daemon
// streamed.
func runReplayJournal(path string, jsonOut bool, traceOut, metricsOut string) {
	s, err := serve.Replay(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	if err := s.WriteReport(os.Stdout, jsonOut); err != nil {
		log.Fatal(err)
	}
	if traceOut != "" {
		writeArtifact(traceOut, "chrome trace", s.WriteTrace)
	}
	if metricsOut != "" {
		writeArtifact(metricsOut, "metric samples", s.WriteMetrics)
	}
}

// runSystem builds (or resumes) the system and advances it seconds of
// simulated time, writing interim and final checkpoints as requested.
// Checkpoints happen on epoch boundaries, which whole-second steps
// align with (the default epoch is 1s).
func runSystem(cfg vulcan.Config, seconds int, resumeFrom, ckptOut string, ckptEvery, ckptRetain int) *vulcan.System {
	var sys *vulcan.System
	if resumeFrom != "" {
		f, err := os.Open(resumeFrom)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = vulcan.Resume(f, cfg)
		f.Close()
		if err != nil {
			log.Fatalf("resume %s: %v", resumeFrom, err)
		}
		fmt.Fprintf(os.Stderr, "resumed from %s at t=%ds\n", resumeFrom, simSeconds(sys))
	} else {
		sys = vulcan.NewSystem(cfg)
	}
	if ckptEvery > 0 {
		for done := 0; done < seconds; {
			step := ckptEvery
			if done+step > seconds {
				step = seconds - done
			}
			sys.Run(vulcan.Duration(step) * vulcan.Second)
			done += step
			if done < seconds {
				writeCheckpoint(sys, checkpoint.RollingPath(ckptOut, simSeconds(sys)))
				if _, err := checkpoint.PruneRolling(ckptOut, ckptRetain); err != nil {
					log.Fatalf("prune checkpoints: %v", err)
				}
			}
		}
	} else {
		sys.Run(vulcan.Duration(seconds) * vulcan.Second)
	}
	if ckptOut != "" {
		writeCheckpoint(sys, ckptOut)
	}
	return sys
}

// fleetConfig assembles the flag-defined fleet experiment: hosts built
// from the colocation machine at -scale, two jobs per host cycling the
// built-in app templates with staggered arrivals and a few departures,
// so every scheduler faces the same offered load.
func fleetConfig(hosts int, scheduler, policyName string, scale int, seed uint64, plan *vulcan.FaultPlan) cluster.Config {
	templates := []vulcan.AppConfig{vulcan.Memcached(), vulcan.PageRank(), vulcan.Liblinear()}
	var jobs []cluster.JobSpec
	for i := 0; i < 2*hosts; i++ {
		ac := templates[i%len(templates)]
		ac.Name = fmt.Sprintf("%s%02d", ac.Name, i)
		ac.RSSPages /= scale
		spec := cluster.JobSpec{App: ac, Arrive: i % 4}
		if i%5 == 4 {
			spec.Depart = spec.Arrive + 8
		}
		jobs = append(jobs, spec)
	}
	return cluster.Config{
		Hosts: hosts,
		Host: cluster.HostTemplate{
			Machine:          figures.ColocationMachine(scale),
			NewPolicy:        func() vulcan.Tiering { return figures.NewPolicy(policyName) },
			EpochLength:      sim.Second,
			SamplesPerThread: figures.SamplesForScale(scale),
		},
		HostOverride:   func(host int, scfg *vulcan.Config) { scfg.Faults = plan },
		Scheduler:      scheduler,
		Jobs:           jobs,
		RebalanceEvery: 5,
		MoveBudget:     2,
		Seed:           seed,
	}
}

// runFleet executes fleet mode: the configured hosts stepped seconds
// fleet epochs, with optional fleet checkpoint/resume.
func runFleet(cfg cluster.Config, seconds int, jsonOut bool, resumeFrom, ckptOut string) {
	var f *cluster.Fleet
	var err error
	if resumeFrom != "" {
		in, err2 := os.Open(resumeFrom)
		if err2 != nil {
			log.Fatal(err2)
		}
		f, err = cluster.Resume(in, cfg)
		in.Close()
		if err != nil {
			log.Fatalf("resume %s: %v", resumeFrom, err)
		}
		fmt.Fprintf(os.Stderr, "resumed fleet from %s at epoch %d\n", resumeFrom, f.Epoch())
	} else if f, err = cluster.New(cfg); err != nil {
		log.Fatal(err)
	}
	if err := f.Run(seconds); err != nil {
		log.Fatal(err)
	}
	if ckptOut != "" {
		out, err := os.Create(ckptOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Checkpoint(out); err != nil {
			log.Fatalf("checkpoint %s: %v", ckptOut, err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fleet checkpoint written to %s (epoch %d)\n", ckptOut, f.Epoch())
	}
	if jsonOut {
		if err := f.Report().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if err := f.Report().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// simSeconds returns the simulation clock in whole simulated seconds.
func simSeconds(sys *vulcan.System) int {
	return int(sim.Duration(sys.Now()) / sim.Second)
}

// writeCheckpoint serializes the full simulation state to path.
func writeCheckpoint(sys *vulcan.System, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sys.Checkpoint(f); err != nil {
		log.Fatalf("checkpoint %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "checkpoint written to %s (t=%ds)\n", path, simSeconds(sys))
}

// renderReport buffers the final report in the requested format.
func renderReport(sys *vulcan.System, jsonOut bool) []byte {
	var b bytes.Buffer
	var err error
	if jsonOut {
		err = sys.Report().WriteJSON(&b)
	} else {
		err = sys.Report().WriteText(&b)
	}
	if err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

// renderTo buffers one exporter's output.
func renderTo(write func(io.Writer) error) []byte {
	var b bytes.Buffer
	if err := write(&b); err != nil {
		log.Fatal(err)
	}
	return b.Bytes()
}

// seedPath derives a per-seed artifact path by inserting the seed
// before the extension: trace.json -> trace.seed7.json.
func seedPath(path string, seed uint64) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.seed%d%s", strings.TrimSuffix(path, ext), seed, ext)
}

// writeBytesArtifact writes one pre-rendered artifact to path.
func writeBytesArtifact(path, what string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
}

// buildRecorder returns a telemetry recorder when any -trace-out,
// -metrics-out or -obs-filter flag asks for one, nil otherwise (so the
// simulation pays nothing for telemetry it will not export). An
// -obs-filter naming an unknown event type is rejected with the list of
// known types.
func buildRecorder(traceOut, metricsOut, obsFilter string) (*obs.Recorder, error) {
	if traceOut == "" && metricsOut == "" && obsFilter == "" {
		return nil, nil
	}
	rec := obs.NewRecorder()
	if obsFilter != "" {
		filter, err := obs.ParseFilter(obsFilter)
		if err != nil {
			return nil, fmt.Errorf("-obs-filter: %w", err)
		}
		rec.SetFilter(filter)
	}
	return rec, nil
}

// buildCostProfiler returns a cycle-attribution profiler when any cost
// artifact flag asks for one, nil otherwise — a nil profiler keeps the
// simulation byte-identical to an uninstrumented run.
func buildCostProfiler(cost costFlags) *prof.Profiler {
	if !cost.wanted() {
		return nil
	}
	return prof.New()
}

// writeCostArtifacts writes the requested cost-profile artifacts.
func writeCostArtifacts(p *prof.Profiler, cost costFlags) {
	if p == nil {
		return
	}
	if cost.pb != "" {
		writeArtifact(cost.pb, "cost profile", p.WritePprof)
	}
	if cost.folded != "" {
		writeArtifact(cost.folded, "folded cost stacks", p.WriteFolded)
	}
	if cost.csv != "" {
		writeArtifact(cost.csv, "cost breakdown", p.WriteBreakdownCSV)
	}
}

// buildFaultPlan resolves the three fault flags to at most one plan.
// -faults names a canned profile; -fault-rate builds the canonical
// all-kinds plan at an explicit rate; the two are mutually exclusive.
// -fault-seed re-keys whichever plan was selected and is an error on
// its own (it would silently do nothing).
func buildFaultPlan(profile string, rate float64, seed uint64) (*vulcan.FaultPlan, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("-fault-rate %v out of range [0,1]", rate)
	}
	var plan *vulcan.FaultPlan
	if rate > 0 {
		if profile != "" && profile != "off" {
			return nil, fmt.Errorf("-faults %s and -fault-rate %v are mutually exclusive", profile, rate)
		}
		plan = vulcan.FaultPlanAtRate(rate)
	} else {
		var err error
		if plan, err = vulcan.FaultProfile(profile); err != nil {
			return nil, err
		}
	}
	if seed != 0 {
		if plan == nil {
			return nil, fmt.Errorf("-fault-seed %d without -faults or -fault-rate has no effect", seed)
		}
		plan.Seed = seed
	}
	return plan, nil
}

// runConfigFile executes a JSON-defined scenario. A -faults/-fault-rate
// flag plan overrides the file's own faults block.
func runConfigFile(path, seriesOut string, jsonOut bool, rec *obs.Recorder, traceOut, metricsOut string,
	cost costFlags, plan *vulcan.FaultPlan, resumeFrom, ckptOut string, ckptEvery, ckptRetain int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := scenario.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if plan == nil {
		plan = parsed.Faults
	}
	if parsed.Fleet != nil {
		if rec != nil || cost.wanted() || seriesOut != "" || ckptEvery > 0 {
			log.Fatal("fleet scenarios support -json, -resume and -checkpoint-out only " +
				"(no series, trace/metrics or cost artifacts, no -checkpoint-every)")
		}
		parsed.Faults = plan // flag plan overrides the file's block
		newPol := func() vulcan.Tiering { return figures.NewPolicy(parsed.Policy) }
		cfg := parsed.Fleet.ClusterConfig(parsed, newPol, sim.Second, 0)
		runFleet(cfg, int(parsed.Duration/sim.Duration(sim.Second)), jsonOut, resumeFrom, ckptOut)
		return
	}
	p := buildCostProfiler(cost)
	cfg := vulcan.Config{
		Machine: parsed.Machine,
		Apps:    parsed.Apps,
		Policy:  figures.NewPolicy(parsed.Policy),
		Seed:    parsed.Seed,
		Faults:  plan,
		Prof:    p,
	}
	if rec != nil {
		cfg.Obs = rec
		rec.AttachCostProfiler(p)
	}
	sys := runSystem(cfg, int(parsed.Duration/sim.Duration(sim.Second)), resumeFrom, ckptOut, ckptEvery, ckptRetain)
	finish(sys, jsonOut, seriesOut, rec, traceOut, metricsOut)
	writeCostArtifacts(p, cost)
}

// finish prints the run summary and optional artifacts.
func finish(sys *vulcan.System, jsonOut bool, seriesOut string, rec *obs.Recorder, traceOut, metricsOut string) {
	if jsonOut {
		if err := sys.Report().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else if err := sys.Report().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if seriesOut != "" {
		writeArtifact(seriesOut, "time series", sys.Recorder().WriteCSV)
	}
	if traceOut != "" {
		writeArtifact(traceOut, "chrome trace", rec.WriteChromeTrace)
	}
	if metricsOut != "" {
		writeArtifact(metricsOut, "metric samples", rec.WriteMetricsCSV)
	}
}

// writeArtifact creates path and streams one exporter's output into it.
func writeArtifact(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
}
