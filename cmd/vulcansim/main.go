// Command vulcansim runs one tiered-memory co-location scenario and
// reports per-application performance, fast-tier hit ratios, allocation,
// and the FTHR-weighted fairness index.
//
// Usage:
//
//	vulcansim -policy vulcan -seconds 180
//	vulcansim -policy memtis -apps memcached,liblinear -seconds 120
//	vulcansim -policy vulcan -staggered -series timeline.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vulcan"
	"vulcan/internal/figures"
	"vulcan/internal/scenario"
	"vulcan/internal/sim"
)

func main() {
	var (
		policyName = flag.String("policy", "vulcan", "tiering policy: static, tpp, memtis, nomad, vulcan")
		appsFlag   = flag.String("apps", "memcached,pagerank,liblinear", "comma-separated apps (memcached, pagerank, liblinear)")
		seconds    = flag.Int("seconds", 120, "simulated seconds")
		scale      = flag.Int("scale", 4, "extra capacity scale divisor (1 = full 1/64 scale)")
		seed       = flag.Uint64("seed", 1, "random seed")
		staggered  = flag.Bool("staggered", false, "stagger app arrivals at 0s/50s/110s (Figure 9 style)")
		seriesOut  = flag.String("series", "", "write per-epoch time series CSV to this file")
		configPath = flag.String("config", "", "load the scenario from a JSON file (see internal/scenario) instead of flags")
		jsonOut    = flag.Bool("json", false, "emit the final report as JSON")
	)
	flag.Parse()

	if *configPath != "" {
		runConfigFile(*configPath, *seriesOut, *jsonOut)
		return
	}

	var apps []vulcan.AppConfig
	for _, name := range strings.Split(*appsFlag, ",") {
		var cfg vulcan.AppConfig
		switch strings.TrimSpace(name) {
		case "memcached":
			cfg = vulcan.Memcached()
		case "pagerank":
			cfg = vulcan.PageRank()
		case "liblinear":
			cfg = vulcan.Liblinear()
		default:
			log.Fatalf("unknown app %q (want memcached, pagerank, liblinear)", name)
		}
		cfg.RSSPages /= *scale
		apps = append(apps, cfg)
	}
	if *staggered {
		for i := range apps {
			apps[i].StartAt = vulcan.Time(i) * vulcan.Time(50*sim.Second) * 11 / 10
		}
	}

	mcfg := figures.ColocationMachine(*scale)
	sys := vulcan.NewSystem(vulcan.Config{
		Machine:          mcfg,
		Apps:             apps,
		Policy:           figures.NewPolicy(*policyName),
		Seed:             *seed,
		SamplesPerThread: figures.SamplesForScale(*scale),
	})
	sys.Run(vulcan.Duration(*seconds) * vulcan.Second)
	finish(sys, *jsonOut, *seriesOut)
}

// runConfigFile executes a JSON-defined scenario.
func runConfigFile(path, seriesOut string, jsonOut bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := scenario.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	sys := vulcan.NewSystem(vulcan.Config{
		Machine: parsed.Machine,
		Apps:    parsed.Apps,
		Policy:  figures.NewPolicy(parsed.Policy),
		Seed:    parsed.Seed,
	})
	sys.Run(vulcan.Duration(parsed.Duration))
	finish(sys, jsonOut, seriesOut)
}

// finish prints the run summary and optional artifacts.
func finish(sys *vulcan.System, jsonOut bool, seriesOut string) {
	if jsonOut {
		if err := sys.Report().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		rep := sys.Report()
		fmt.Printf("policy=%s  simulated=%.0fs  fast tier used %d/%d pages\n",
			rep.Policy, rep.SimSeconds, rep.FastUsed, rep.FastCapacity)
		fmt.Printf("%-12s %-5s %12s %10s %10s %12s %12s\n",
			"app", "class", "perf", "±ci95", "fthr", "fast pages", "rss pages")
		for _, a := range rep.Apps {
			if !a.Started {
				fmt.Printf("%-12s (never started)\n", a.Name)
				continue
			}
			fmt.Printf("%-12s %-5s %12.3f %10.3f %10.3f %12d %12d\n",
				a.Name, a.Class, a.MeanPerf, a.PerfCI95, a.FTHR,
				a.FastPages, a.RSSPages)
		}
		fmt.Printf("CFI (FTHR-weighted cumulative fairness, Eq.4): %.3f\n", rep.CFI)
		if !rep.AuditOK {
			fmt.Printf("WARNING: frame-ownership audit failed: %v\n", rep.AuditProblems)
		}
	}

	if seriesOut != "" {
		f, err := os.Create(seriesOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := sys.Recorder().WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "time series written to %s\n", seriesOut)
	}
}
