package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
BenchmarkFig8MigrationBandwidth 	       1	 955540614 ns/op	        23.00 gc/op	  86804464 heap-B/op	      1850 vulcan-MB/s@large	86804464 B/op	    9171 allocs/op
BenchmarkFig10PerfFairness      	       1	1683034785 ns/op	         1.005 cfi-vs-memtis	         0.7564 vulcan-cfi	380759000 B/op	   19383 allocs/op
PASS
`

func parsed(t *testing.T) []result {
	t.Helper()
	rs, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rs))
	}
	return rs
}

func TestParseBench(t *testing.T) {
	rs := parsed(t)
	r := rs[0]
	if r.Name != "BenchmarkFig8MigrationBandwidth" || r.NsPerOp != 955540614 ||
		r.BPerOp != 86804464 || r.AllocsOp != 9171 || r.GCPerOp != 23 ||
		r.HeapBPerOp != 86804464 || r.Metrics["vulcan-MB/s@large"] != 1850 {
		t.Fatalf("bad parse: %+v", r)
	}
}

func TestDiffNoDrift(t *testing.T) {
	fresh := parsed(t)
	baseline := document{Benchmarks: []result{
		{Name: "BenchmarkFig8MigrationBandwidth", NsPerOp: 2857168733, BPerOp: 157000000, AllocsOp: 54633,
			Metrics: map[string]float64{"vulcan-MB/s@large": 1850}},
		{Name: "BenchmarkFig10PerfFairness", NsPerOp: 4870866932, BPerOp: 535000000, AllocsOp: 108270,
			Metrics: map[string]float64{"cfi-vs-memtis": 1.005, "vulcan-cfi": 0.7564}},
	}}
	var sb strings.Builder
	if drift := diff(&sb, baseline, fresh); drift != 0 {
		t.Fatalf("drift = %d, want 0\n%s", drift, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"BenchmarkFig8MigrationBandwidth",
		"(-66.6%)", // ns/op delta
		"(-83.2%)", // allocs/op delta
		"all figure metrics identical",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffMetricDrift(t *testing.T) {
	fresh := parsed(t)
	baseline := document{Benchmarks: []result{
		{Name: "BenchmarkFig8MigrationBandwidth",
			Metrics: map[string]float64{"vulcan-MB/s@large": 1851}},
	}}
	var sb strings.Builder
	if drift := diff(&sb, baseline, fresh); drift != 1 {
		t.Fatalf("drift = %d, want 1\n%s", drift, sb.String())
	}
	if !strings.Contains(sb.String(), "DRIFT BenchmarkFig8MigrationBandwidth vulcan-MB/s@large: 1851 -> 1850") {
		t.Errorf("missing DRIFT line:\n%s", sb.String())
	}
}

func TestDiffSpeedupMetricIsInformational(t *testing.T) {
	fresh := []result{{Name: "BenchmarkCheckpointBranch",
		Metrics: map[string]float64{"cold-vs-branch-speedup": 0.91}}}
	baseline := document{Benchmarks: []result{{Name: "BenchmarkCheckpointBranch",
		Metrics: map[string]float64{"cold-vs-branch-speedup": 1.246}}}}
	var sb strings.Builder
	if drift := diff(&sb, baseline, fresh); drift != 0 {
		t.Fatalf("drift = %d, want 0 (speedup metrics are wall-clock)\n%s", drift, sb.String())
	}
	if !strings.Contains(sb.String(), "wall-clock metric, informational") {
		t.Errorf("missing informational note:\n%s", sb.String())
	}
}

func TestDiffNewBenchmark(t *testing.T) {
	fresh := parsed(t)
	var sb strings.Builder
	if drift := diff(&sb, document{}, fresh); drift != 0 {
		t.Fatalf("drift = %d, want 0", drift)
	}
	if !strings.Contains(sb.String(), "BenchmarkFig8MigrationBandwidth (new)") {
		t.Errorf("missing (new) marker:\n%s", sb.String())
	}
}
