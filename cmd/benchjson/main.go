// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON document on stdout, so benchmark numbers can be
// committed and diffed as structured data (BENCH_parallel.json).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFig -benchmem . | go run ./cmd/benchjson
//	go test -run '^$' -bench BenchmarkFig -benchmem . | go run ./cmd/benchjson -diff BENCH_parallel.json
//
// Each benchmark line becomes one record with iterations, ns/op, B/op,
// allocs/op, the self-profiling counters gc/op and heap-B/op (reported
// by benchmarks that wrap prof.ReadSelfStats), and any custom metrics
// (e.g. "cycles@32cpu") keyed by their unit string. Non-benchmark lines
// are ignored.
//
// With -diff BASELINE, the fresh run is instead compared against the
// committed baseline JSON: per-benchmark deltas for ns/op, B/op and
// allocs/op are printed as a table, and every custom metric is checked
// for drift. Timing and allocation deltas are informational; a custom
// metric changing is a correctness signal (figure outputs must be
// byte-identical across perf work), so any drift makes the command exit
// nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BPerOp     float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	GCPerOp    float64            `json:"gc_per_op,omitempty"`
	HeapBPerOp float64            `json:"heap_b_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// document is the committed JSON shape.
type document struct {
	Benchmarks []result `json:"benchmarks"`
}

// parseBench reads `go test -bench` text and returns one result per
// benchmark line.
func parseBench(r io.Reader) ([]result, error) {
	var results []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := result{Name: fields[0], Iterations: iters}
		// The remainder alternates "<value> <unit>".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			case "gc/op":
				res.GCPerOp = v
			case "heap-B/op":
				res.HeapBPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// delta formats "old -> new (+x%)" for one counter; the baseline side is
// "-" when the benchmark is new or the counter absent from the baseline.
func delta(old, new float64) string {
	if old == 0 {
		return fmt.Sprintf("- -> %.0f", new)
	}
	return fmt.Sprintf("%.0f -> %.0f (%+.1f%%)", old, new, (new-old)/old*100)
}

// diff compares fresh results against the baseline document and writes a
// per-benchmark delta table plus a metric-drift report to w. It returns
// the number of drifted custom metrics.
func diff(w io.Writer, baseline document, fresh []result) int {
	base := make(map[string]result, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	tw := newTable(w, "benchmark", "ns/op", "B/op", "allocs/op")
	drift := 0
	var driftLines []string
	for _, f := range fresh {
		b, ok := base[f.Name]
		if !ok {
			tw.row(f.Name+" (new)", delta(0, f.NsPerOp), delta(0, f.BPerOp), delta(0, f.AllocsOp))
			continue
		}
		tw.row(f.Name, delta(b.NsPerOp, f.NsPerOp), delta(b.BPerOp, f.BPerOp), delta(b.AllocsOp, f.AllocsOp))
		// Custom metrics are figure outputs: equality, not tolerance.
		// The exception is wall-clock-derived ratios ("-speedup"
		// metrics, e.g. cold-vs-branch-speedup), which observe the host
		// like ns/op does and are reported as informational deltas.
		keys := make([]string, 0, len(f.Metrics))
		for k := range f.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv, had := b.Metrics[k]
			if !had {
				continue
			}
			fv := f.Metrics[k]
			// Bit-pattern equality: the contract is byte-identity of the
			// reported figure value, not numeric closeness.
			if math.Float64bits(fv) == math.Float64bits(bv) {
				continue
			}
			if strings.HasSuffix(k, "-speedup") {
				driftLines = append(driftLines,
					fmt.Sprintf("note  %s %s: %v -> %v (wall-clock metric, informational)", f.Name, k, bv, fv))
				continue
			}
			drift++
			driftLines = append(driftLines,
				fmt.Sprintf("DRIFT %s %s: %v -> %v", f.Name, k, bv, fv))
		}
	}
	tw.flush()
	for _, l := range driftLines {
		fmt.Fprintln(w, l)
	}
	if drift == 0 {
		fmt.Fprintln(w, "metrics: all figure metrics identical to baseline")
	}
	return drift
}

// table is a minimal column aligner (text/tabwriter's tab padding
// renders unevenly in CI logs).
type table struct {
	w    io.Writer
	rows [][]string
}

func newTable(w io.Writer, header ...string) *table {
	return &table{w: w, rows: [][]string{header}}
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	widths := make([]int, len(t.rows[0]))
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(t.w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(t.w)
	}
}

func main() {
	baselinePath := flag.String("diff", "", "compare the fresh run on stdin against this committed baseline JSON instead of emitting JSON")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline document
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		if drift := diff(os.Stdout, baseline, results); drift > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d figure metric(s) drifted from %s\n", drift, *baselinePath)
			os.Exit(1)
		}
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(document{Benchmarks: results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
