// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a JSON document on stdout, so benchmark numbers can be
// committed and diffed as structured data (BENCH_parallel.json).
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkFig -benchmem . | go run ./cmd/benchjson
//
// Each benchmark line becomes one record with iterations, ns/op, B/op,
// allocs/op, the self-profiling counters gc/op and heap-B/op (reported
// by benchmarks that wrap prof.ReadSelfStats), and any custom metrics
// (e.g. "cycles@32cpu") keyed by their unit string. Non-benchmark lines
// are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BPerOp     float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	GCPerOp    float64            `json:"gc_per_op,omitempty"`
	HeapBPerOp float64            `json:"heap_b_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters}
		// The remainder alternates "<value> <unit>".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "gc/op":
				r.GCPerOp = v
			case "heap-B/op":
				r.HeapBPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []result `json:"benchmarks"`
	}{results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
