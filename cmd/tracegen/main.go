// Command tracegen captures synthetic workload access traces to the
// compact VTRC format and inspects existing trace files.
//
// Usage:
//
//	tracegen -workload memcached -refs 1000000 -pages 208896 -o mc.vtrc
//	tracegen -inspect mc.vtrc
//
// Captured traces replay deterministically through the simulator (see
// internal/trace.Replayer), making experiments portable across machines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vulcan/internal/sim"
	"vulcan/internal/trace"
	"vulcan/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "memcached", "generator: memcached, pagerank, liblinear, zipf, uniform, scan, micro")
		refs    = flag.Int("refs", 100000, "references to capture")
		pages   = flag.Int("pages", 65536, "region size in pages")
		wss     = flag.Int("wss", 8192, "working-set pages (micro workload)")
		skew    = flag.Float64("skew", 0.99, "Zipf skew (zipf workload)")
		writes  = flag.Float64("writes", 0.1, "write fraction (zipf/uniform/scan/micro)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
		inspect = flag.String("inspect", "", "inspect an existing trace file instead of generating")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		st := tr.Stats()
		fmt.Printf("trace: %s\n", *inspect)
		fmt.Printf("  region:       %d pages (%.1f MB)\n", tr.Pages(), float64(tr.Pages())*4096/1e6)
		fmt.Printf("  references:   %d\n", st.Refs)
		fmt.Printf("  unique pages: %d (%.1f%% of region)\n",
			st.UniquePages, 100*float64(st.UniquePages)/float64(tr.Pages()))
		fmt.Printf("  write frac:   %.3f\n", st.WriteFrac)
		fmt.Printf("  mean LLC hit: %.3f\n", st.MeanLLCHit)
		return
	}

	rng := sim.NewRNG(*seed)
	var gen workload.Generator
	switch *name {
	case "memcached":
		gen = workload.NewKeyValue(*pages, workload.KeyValueParams{}, rng)
	case "pagerank":
		gen = workload.NewGraphWalk(*pages, rng)
	case "liblinear":
		gen = workload.NewMLTrain(*pages, rng)
	case "zipf":
		gen = workload.NewZipfian(*pages, *skew, *writes, 0.1, rng)
	case "uniform":
		gen = workload.NewUniform(*pages, *writes, 0.1, rng)
	case "scan":
		gen = workload.NewScan(*pages, *writes, 0.02, rng)
	case "micro":
		gen = workload.NewNomadMicro(*pages, *wss, *writes, rng)
	default:
		log.Fatalf("unknown workload %q", *name)
	}

	tr := trace.Capture(gen, *refs)
	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	n, err := tr.WriteTo(w)
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		st := tr.Stats()
		fmt.Printf("wrote %d refs (%d unique pages, %.1f%% writes) to %s (%d bytes, %.2f B/ref)\n",
			st.Refs, st.UniquePages, 100*st.WriteFrac, *out, n, float64(n)/float64(st.Refs))
	}
}
