// Command figures regenerates the tables and figures of the paper's
// evaluation from the simulated substrate.
//
// Usage:
//
//	figures -all                    # every figure and table (slow)
//	figures -fig 2                  # one figure (1,2,3,4,7,8,9,10)
//	figures -table 1                # one table (1,2)
//	figures -ablations              # Vulcan mechanism ablations
//	figures -fig 10 -trials 10      # paper-grade trial count
//	figures -fig 9 -csv             # machine-readable output
//	figures -figr                   # fault-injection resilience (Figure R)
//	figures -figf                   # fleet placement schedulers (Figure F)
//
// -scale divides capacities and footprints beyond the built-in 1/64
// scale; larger values run faster at lower fidelity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vulcan/internal/figures"
	"vulcan/internal/lab"
	"vulcan/internal/obs/prof"
	"vulcan/internal/sim"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate (1,2,3,4,6,7,8,9,10)")
		table     = flag.Int("table", 0, "table number to regenerate (1,2)")
		all       = flag.Bool("all", false, "regenerate everything")
		ablations = flag.Bool("ablations", false, "run Vulcan mechanism ablations")
		figR      = flag.Bool("figr", false, "run the fault-injection resilience comparison (Figure R)")
		figF      = flag.Bool("figf", false, "run the fleet placement comparison (Figure F: scheduler × fleet size)")
		csv       = flag.Bool("csv", false, "emit CSV instead of text tables")
		trials    = flag.Int("trials", 3, "trials for Figure 10")
		seconds   = flag.Int("seconds", 120, "simulated seconds for co-location figures")
		scale     = flag.Int("scale", 4, "extra capacity scale divisor (1 = full 1/64 scale)")
		seed      = flag.Uint64("seed", 1, "base random seed")
		parallel  = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS); output is byte-identical at any value")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the figure generation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile of the figure generation to this file (taken at exit)")
	)
	flag.Parse()
	lab.SetDefaultWorkers(*parallel)

	if *cpuProf != "" {
		stop, err := prof.StartCPUProfile(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeapProfile(*memProf); err != nil {
				log.Print(err)
				return
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProf)
		}()
	}

	duration := sim.Duration(*seconds) * sim.Second
	did := false
	emit := func(text, csvText string) {
		if *csv {
			fmt.Print(csvText)
		} else {
			fmt.Println(text)
		}
		did = true
	}

	want := func(n int) bool { return *all || *fig == n }

	if want(1) {
		r := figures.Fig1(duration, *scale, *seed)
		emit(figures.RenderFig1(r), figures.CSVFig1(r))
	}
	if want(2) {
		r := figures.Fig2()
		emit(figures.RenderFig2(r), figures.CSVFig2(r))
	}
	if want(3) {
		r := figures.Fig3()
		emit(figures.RenderFig3(r), figures.CSVFig3(r))
	}
	if want(4) {
		r := figures.Fig4(*seed)
		emit(figures.RenderFig4(r), figures.CSVFig4(r))
	}
	if want(6) {
		r := figures.Fig6()
		emit(figures.RenderFig6(r), figures.CSVFig6(r))
	}
	if want(7) {
		r := figures.Fig7()
		emit(figures.RenderFig7(r), figures.CSVFig7(r))
	}
	if want(8) {
		r := figures.Fig8(nil, *seed)
		emit(figures.RenderFig8(r), figures.CSVFig8(r))
	}
	if want(9) {
		r := figures.Fig9(duration, *scale, *seed)
		emit(figures.RenderFig9(r), figures.CSVFig9(r))
	}
	if want(10) {
		r := figures.Fig10(*trials, duration, *scale)
		emit(figures.RenderFig10(r), figures.CSVFig10(r))
	}
	if *all || *figR {
		r := figures.FigR(duration, *scale, *seed, nil)
		emit(figures.RenderFigR(r), figures.CSVFigR(r))
	}
	if *all || *figF {
		r := figures.FigF(0, nil, *seed)
		emit(figures.RenderFigF(r), figures.CSVFigF(r))
	}
	if *all || *table == 1 {
		emit(figures.RenderTable1(figures.Table1()), "")
	}
	if *all || *table == 2 {
		emit(figures.RenderTable2(figures.Table2()), "")
	}
	if *all || *ablations {
		r := figures.Ablations(duration, *scale, *seed)
		emit(figures.RenderAblations(r), "")
	}

	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
