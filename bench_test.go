// Benchmarks regenerating every table and figure of the paper's
// evaluation (§2.2 Figures 1–4, §5 Figures 7–10, Tables 1–2), plus
// ablation benches for the design choices DESIGN.md calls out.
//
// Each benchmark runs the figure's full data-generation pipeline and
// reports the figure's headline quantity as a custom metric, so a bench
// run doubles as a reproduction check:
//
//	go test -bench=. -benchmem
//
// Co-location figures run at reduced scale to keep iterations bounded;
// cmd/figures regenerates them at full scale.
package vulcan_test

import (
	"runtime"
	"testing"

	"vulcan/internal/figures"
	"vulcan/internal/machine"
	"vulcan/internal/migrate"
	"vulcan/internal/obs/prof"
	"vulcan/internal/sim"
)

// reportSelfStats adds the simulator process's own GC and allocation
// work to the benchmark as gc/op and heap-B/op metrics (cmd/benchjson
// promotes both to first-class fields). Call it with the stats read
// before the timed loop. The runtime batches allocation accounting in
// per-P caches, so a GC is forced (outside the timer) to flush exact
// counts; that flush cycle is discounted from gc/op.
func reportSelfStats(b *testing.B, start prof.SelfStats) {
	b.Helper()
	b.StopTimer()
	runtime.GC()
	d := prof.ReadSelfStats().Sub(start)
	gc := float64(d.GCCycles) - 1
	if gc < 0 {
		gc = 0
	}
	n := float64(b.N)
	b.ReportMetric(gc/n, "gc/op")
	b.ReportMetric(float64(d.AllocBytes)/n, "heap-B/op")
	b.StartTimer()
}

// BenchmarkFig1ColdPageDilemma regenerates Figure 1 (hot/cold pages over
// time for Memcached and Liblinear, solo vs co-located under Memtis) and
// reports panel (d)'s hot-ratio collapse and performance degradation.
func BenchmarkFig1ColdPageDilemma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figures.Fig1(40*sim.Second, 16, uint64(i+1))
		b.ReportMetric(r.Summary.SoloHotRatio, "solo-hot-ratio")
		b.ReportMetric(r.Summary.ColocatedHotRatio, "colo-hot-ratio")
		b.ReportMetric(r.Summary.PerfRatio, "mc-perf-ratio")
	}
}

// BenchmarkFig2MigrationBreakdown regenerates Figure 2 (single base-page
// migration cost breakdown across 2–32 CPUs).
func BenchmarkFig2MigrationBreakdown(b *testing.B) {
	start := prof.ReadSelfStats()
	for i := 0; i < b.N; i++ {
		rows := figures.Fig2()
		last := rows[len(rows)-1]
		b.ReportMetric(last.TotalCycles, "cycles@32cpu")
		b.ReportMetric(100*last.PrepShare, "prep%@32cpu")
	}
	reportSelfStats(b, start)
}

// BenchmarkFig3TLBvsCopy regenerates Figure 3 (TLB vs copy contribution
// across pages × threads).
func BenchmarkFig3TLBvsCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells := figures.Fig3()
		for _, c := range cells {
			if c.Pages == 512 && c.Threads == 32 {
				b.ReportMetric(100*c.TLBShare, "tlb%@512p32t")
			}
		}
	}
}

// BenchmarkFig4SyncVsAsync regenerates Figure 4 (sync vs async copying
// across read/write ratios) and reports the two endpoints' winners.
func BenchmarkFig4SyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Fig4(uint64(i + 7))
		b.ReportMetric(rows[0].AsyncOpsPerS/rows[0].SyncOpsPerS, "async/sync@read")
		last := rows[len(rows)-1]
		b.ReportMetric(last.SyncOpsPerS/last.AsyncOpsPerS, "sync/async@write")
	}
}

// BenchmarkFig6PageTableReplication quantifies Figure 6: page-table
// memory of Vulcan's shared-leaf replication vs full replication.
func BenchmarkFig6PageTableReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Fig6()
		last := rows[len(rows)-1] // 32 threads
		b.ReportMetric(last.VulcanOverheadPc, "vulcan-ovh%@32t")
		b.ReportMetric(last.FullOverheadPc, "full-ovh%@32t")
	}
}

// BenchmarkFig7OptimizationSpeedup regenerates Figure 7 (speedups of
// optimized preparation and targeted shootdown for 2–512-page batches).
func BenchmarkFig7OptimizationSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Fig7()
		b.ReportMetric(rows[0].PrepOptSpeedup, "prep-speedup@2p")
		b.ReportMetric(rows[0].BothOptSpeedup, "both-speedup@2p")
	}
}

// BenchmarkFig8MigrationBandwidth regenerates Figure 8 (microbenchmark
// read/write bandwidth for TPP/Memtis/Nomad/Vulcan across working sets).
func BenchmarkFig8MigrationBandwidth(b *testing.B) {
	start := prof.ReadSelfStats()
	for i := 0; i < b.N; i++ {
		rows := figures.Fig8(nil, uint64(i+1))
		for _, r := range rows {
			if r.Policy == "vulcan" && r.WSS == figures.WSSLarge {
				b.ReportMetric(r.ReadMBsStable, "vulcan-MB/s@large")
			}
		}
	}
	reportSelfStats(b, start)
}

// BenchmarkFig9DynamicColocation regenerates Figure 9 (dynamic
// allocation, FTHR and GPT under staggered arrivals managed by Vulcan).
func BenchmarkFig9DynamicColocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figures.Fig9(150*sim.Second, 8, uint64(i+1))
		for _, s := range r.Apps {
			if s.App == "memcached" && len(s.GPT) > 0 {
				b.ReportMetric(s.GPT[len(s.GPT)-1], "mc-final-gpt")
			}
		}
	}
}

// BenchmarkFig10PerfFairness regenerates Figure 10 (normalized
// performance and CFI for all four systems) and reports the paper's two
// headline fairness deltas.
func BenchmarkFig10PerfFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := figures.Fig10(2, 60*sim.Second, 8)
		b.ReportMetric(r.CFIMean["vulcan"], "vulcan-cfi")
		if m := r.CFIMean["memtis"]; m > 0 {
			b.ReportMetric(r.CFIMean["vulcan"]/m, "cfi-vs-memtis")
		}
		if n := r.CFIMean["nomad"]; n > 0 {
			b.ReportMetric(r.CFIMean["vulcan"]/n, "cfi-vs-nomad")
		}
	}
}

// BenchmarkTable1PromotionMatrix regenerates Table 1 from the
// implementation's classification logic.
func BenchmarkTable1PromotionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Table1()
		if len(rows) != 4 {
			b.Fatal("Table 1 must have four classes")
		}
	}
}

// BenchmarkTable2Workloads regenerates Table 2 (workloads and RSS).
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Table2()
		if len(rows) != 3 {
			b.Fatal("Table 2 must have three workloads")
		}
	}
}

// BenchmarkAblationCBFRPvsUniform compares credit-based partitioning
// against the uniform straw man (§3.3).
func BenchmarkAblationCBFRPvsUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Ablations(20*sim.Second, 16, uint64(i+1))
		for _, r := range rows {
			if r.Name == "cbfrp->uniform" {
				b.ReportMetric(r.FullCFI/r.AblatedCFI, "cfi-gain")
			}
		}
	}
}

// BenchmarkAblationMechanisms reports the migration-cycle overhead of
// disabling each mechanism-level optimization (optimized prep, targeted
// shootdown, shadowing, biased queues, MLFQ).
func BenchmarkAblationMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := figures.Ablations(20*sim.Second, 16, uint64(i+1))
		for _, r := range rows {
			switch r.Name {
			case "no-optimized-prep":
				b.ReportMetric(r.AblatedMigCycles/r.FullMigCycles, "prep-cycle-ratio")
			case "no-biased-queues":
				b.ReportMetric(r.AblatedMigCycles/r.FullMigCycles, "queues-cycle-ratio")
			case "no-shadowing":
				b.ReportMetric(r.AblatedMigCycles/r.FullMigCycles, "shadow-cycle-ratio")
			}
		}
	}
}

// BenchmarkMigrationEngine measures raw synchronous batch migration
// throughput of the engine itself (pages moved per second of wall time).
func BenchmarkMigrationEngine(b *testing.B) {
	cfg := machine.DefaultConfig()
	cfg.Tiers[0].CapacityPages = 1 << 14
	cfg.Tiers[1].CapacityPages = 1 << 16
	b.Run("sync-64page-batches", func(b *testing.B) {
		env := newBenchEnv(b, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.promoteDemoteCycle(64)
		}
	})
	b.Run("sync-512page-batches", func(b *testing.B) {
		env := newBenchEnv(b, cfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.promoteDemoteCycle(512)
		}
	})
}

// BenchmarkHotPagePromotion measures the Figure 4 microbenchmark itself.
func BenchmarkHotPagePromotion(b *testing.B) {
	cfg := migrate.DefaultHotPageConfig()
	b.Run("sync", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			migrate.RunHotPageSync(cfg)
		}
	})
	b.Run("async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			migrate.RunHotPageAsync(cfg)
		}
	})
}
