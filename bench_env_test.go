package vulcan_test

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
)

// benchEnv is a minimal address space + engine for raw migration
// throughput benchmarks.
type benchEnv struct {
	engine *migrate.Engine
	table  *pagetable.Replicated
	pages  int
	inFast bool
}

func newBenchEnv(b *testing.B, cfg machine.Config) *benchEnv {
	b.Helper()
	tiers := mem.NewTiers(cfg.Tiers)
	table := pagetable.NewReplicated(8)
	const pages = 1 << 13
	for vp := pagetable.VPage(0); vp < pages; vp++ {
		f, ok := tiers.Alloc(mem.TierSlow)
		if !ok {
			b.Fatal("slow tier exhausted in setup")
		}
		if err := table.Map(int(vp)%8, vp, pagetable.NewPTE(f, uint8(vp%8))); err != nil {
			b.Fatal(err)
		}
	}
	eng := migrate.NewEngine(migrate.Config{
		Cost:              cfg.Cost,
		Tiers:             tiers,
		Table:             table,
		Cpus:              cfg.Cores,
		ProcessThreads:    8,
		OptimizedPrep:     true,
		TargetedShootdown: true,
	})
	return &benchEnv{engine: eng, table: table, pages: pages}
}

// promoteDemoteCycle migrates one batch up then back down, keeping the
// benchmark in steady state.
func (e *benchEnv) promoteDemoteCycle(batch int) {
	to := mem.TierFast
	if e.inFast {
		to = mem.TierSlow
	}
	moves := make([]migrate.Move, batch)
	for i := range moves {
		moves[i] = migrate.Move{VP: pagetable.VPage(i), To: to}
	}
	e.engine.MigrateSync(moves)
	e.inFast = !e.inFast
}
