// Package vulcan is the public API of the Vulcan tiered-memory management
// framework — a Go reproduction of "Leave No One Behind: Towards Fair and
// Efficient Tiered Memory Management for Multi-Applications" (ICPP 2025).
//
// The package wires together a simulated tiered-memory machine (fast
// local DRAM + slow CXL-like memory, per-thread TLBs, 4-level page
// tables with Vulcan's per-thread replication, and a cycle-accounted
// page-migration engine), synthetic multi-tenant workloads, and pluggable
// tiering policies: Vulcan itself plus the TPP, Memtis and Nomad
// baselines the paper compares against.
//
// Quick start:
//
//	sys := vulcan.NewSystem(vulcan.Config{
//	    Apps:   []vulcan.AppConfig{vulcan.Memcached(), vulcan.Liblinear()},
//	    Policy: vulcan.NewVulcan(vulcan.VulcanOptions{}),
//	})
//	sys.Run(60 * vulcan.Second)
//	for _, app := range sys.Apps() {
//	    fmt.Println(app.Name(), app.FTHR(), app.NormalizedPerf().Mean())
//	}
//
// See examples/ for runnable scenarios and internal/figures for the code
// that regenerates every table and figure of the paper's evaluation.
package vulcan

import (
	"io"

	"vulcan/internal/core"
	"vulcan/internal/fault"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/metrics"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/policy"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/trace"
	"vulcan/internal/workload"
)

// Core runtime types.
type (
	// Config assembles one co-location experiment.
	Config = system.Config
	// System is the live co-location runtime.
	System = system.System
	// App is one admitted application.
	App = system.App
	// Tiering is the pluggable policy interface.
	Tiering = system.Tiering
	// Mechanisms selects engine-level migration optimizations.
	Mechanisms = system.Mechanisms

	// AppConfig describes one co-located application.
	AppConfig = workload.AppConfig
	// Generator produces synthetic page references.
	Generator = workload.Generator
	// Class labels a workload LC or BE.
	Class = workload.Class

	// MachineConfig describes the simulated host.
	MachineConfig = machine.Config
	// CostModel holds the machine's cycle-cost constants.
	CostModel = machine.CostModel

	// VulcanPolicy is the paper's tiering framework.
	VulcanPolicy = core.Vulcan
	// VulcanOptions configure it (zero value = full system).
	VulcanOptions = core.Options

	// Time and Duration are simulated-clock units (nanoseconds).
	Time = sim.Time
	// Duration is a span of simulated time.
	Duration = sim.Duration

	// TierID identifies a memory tier.
	TierID = mem.TierID
	// VPage is a virtual page number.
	VPage = pagetable.VPage

	// Running accumulates summary statistics.
	Running = metrics.Running
)

// Workload classes.
const (
	// LC marks latency-critical workloads (served first by CBFRP).
	LC = workload.LC
	// BE marks best-effort workloads.
	BE = workload.BE
)

// Memory tiers.
const (
	// TierFast is the local-DRAM tier.
	TierFast = mem.TierFast
	// TierSlow is the CXL-like far-memory tier.
	TierSlow = mem.TierSlow
)

// Simulated-time units.
const (
	// Nanosecond is the base simulated-time unit.
	Nanosecond = sim.Nanosecond
	// Microsecond is 1e3 nanoseconds.
	Microsecond = sim.Microsecond
	// Millisecond is 1e6 nanoseconds.
	Millisecond = sim.Millisecond
	// Second is 1e9 nanoseconds.
	Second = sim.Second
)

// NewSystem validates cfg and builds a co-location runtime.
func NewSystem(cfg Config) *System { return system.New(cfg) }

// Resume rebuilds a System from a checkpoint blob written by
// (*System).Checkpoint. cfg must describe the same experiment (seed,
// machine, apps); the policy and fault plan may differ — that is the
// branch-from-snapshot path (see internal/system and DESIGN.md §11).
func Resume(r io.Reader, cfg Config) (*System, error) { return system.Resume(r, cfg) }

// NewVulcan builds the Vulcan policy (§3 of the paper): QoS-aware fair
// partitioning, biased migration queues, per-thread page tables,
// optimized preparation and shadowing.
func NewVulcan(opts VulcanOptions) *VulcanPolicy { return core.New(opts) }

// NewTPP builds the Transparent Page Placement baseline.
func NewTPP() Tiering { return policy.NewTPP() }

// NewMemtis builds the Memtis baseline (PEBS-based global hotness
// ranking — the system that exhibits the cold-page dilemma).
func NewMemtis() Tiering { return policy.NewMemtis() }

// NewNomad builds the Nomad baseline (transactional async migration with
// page shadowing).
func NewNomad() Tiering { return policy.NewNomad() }

// NewStatic builds the no-migration first-touch control.
func NewStatic() Tiering { return system.NullPolicy{} }

// DefaultMachine returns the paper's testbed at 1/64 scale: 32 cores,
// 512MB fast tier (70ns), 4GB slow tier (162ns), calibrated cost model.
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// DefaultCostModel returns the cycle-cost constants calibrated against
// the paper's Figures 2, 3 and 7.
func DefaultCostModel() CostModel { return machine.DefaultCostModel() }

// Memcached returns the paper's LC key-value workload (Table 2, 51 GB at
// 1/64 scale).
func Memcached() AppConfig { return workload.MemcachedConfig() }

// PageRank returns the paper's BE graph workload (42 GB at 1/64 scale).
func PageRank() AppConfig { return workload.PageRankConfig() }

// Liblinear returns the paper's BE ML workload (69 GB at 1/64 scale).
func Liblinear() AppConfig { return workload.LiblinearConfig() }

// Microbenchmark returns a Nomad-style Zipfian working-set workload with
// the given footprint (§5.2 / Figure 8).
func Microbenchmark(name string, rssPages, wssPages int, writeFrac float64) AppConfig {
	return workload.NomadMicroConfig(name, rssPages, wssPages, writeFrac)
}

// JainIndex computes Jain's fairness index over allocations.
func JainIndex(xs []float64) float64 { return metrics.JainIndex(xs) }

// HotPageConfig parameterizes the single-page sync-vs-async promotion
// microbenchmark (Figure 4 / Observation #4).
type HotPageConfig = migrate.HotPageConfig

// HotPageResult reports one microbenchmark run.
type HotPageResult = migrate.HotPageResult

// DefaultHotPageConfig returns the Figure 4 settings.
func DefaultHotPageConfig() HotPageConfig { return migrate.DefaultHotPageConfig() }

// RunHotPageSync promotes a hot page synchronously under concurrent
// access (TPP-style, stalls the accessor).
func RunHotPageSync(cfg HotPageConfig) HotPageResult { return migrate.RunHotPageSync(cfg) }

// RunHotPageAsync promotes it transactionally in the background
// (Nomad-style, aborts when writes keep dirtying the copy).
func RunHotPageAsync(cfg HotPageConfig) HotPageResult { return migrate.RunHotPageAsync(cfg) }

// Trace is a recorded page-reference stream (compact VTRC format).
type Trace = trace.Trace

// TraceReplayer replays a Trace as a workload Generator, looping.
type TraceReplayer = trace.Replayer

// CaptureTrace records n references from a generator.
func CaptureTrace(g Generator, n int) *Trace { return trace.Capture(g, n) }

// ReadTrace deserializes a trace written with Trace.WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// NewTraceReplayer builds a looping generator over a captured trace.
func NewTraceReplayer(t *Trace) *TraceReplayer { return trace.NewReplayer(t) }

// Fault injection (internal/fault): deterministic chaos for the
// substrate. Set Config.Faults to an armed FaultPlan to degrade
// bandwidth, spike latency, fail migrations, drop profiler samples and
// burst memory pressure on a seed-derived schedule; a nil or unarmed
// plan leaves the run byte-identical to a fault-free build.
type (
	// FaultPlan declares what to inject, how often, and how the system
	// may respond (retry budget, backoff, confidence threshold).
	FaultPlan = fault.Plan
	// FaultRule is one (kind, scope, rate, severity) injection rule.
	FaultRule = fault.Rule
	// FaultKind enumerates the injectable fault classes.
	FaultKind = fault.Kind
)

// FaultPlanAtRate returns the canonical all-kinds chaos plan at the
// given per-opportunity rate; rate <= 0 returns nil (fault-free).
func FaultPlanAtRate(rate float64) *FaultPlan { return fault.PlanAtRate(rate) }

// FaultProfile resolves a named chaos profile ("off", "light",
// "moderate", "heavy") to a plan.
func FaultProfile(name string) (*FaultPlan, error) { return fault.ParseProfile(name) }
