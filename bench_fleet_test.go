// Benchmarks for the fleet simulation layer (internal/cluster): host
// stepping cost across lab worker counts and the placement schedulers
// head to head. Wall-clock timing is fine here: this file is outside
// the simulation tree, and the measurement is about host cost, not
// simulated behavior.
//
//	make bench-fleet
package vulcan_test

import (
	"bytes"
	"fmt"
	"testing"

	"vulcan/internal/cluster"
	"vulcan/internal/figures"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// benchFleetConfig builds a micro-scale fleet: 8-core hosts with a
// 256-page fast tier, two zipfian jobs per host with staggered arrivals
// and a few departures, rebalancing every 3 epochs.
func benchFleetConfig(hosts, workers int, sched string) cluster.Config {
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = 256
	mcfg.Tiers[mem.TierSlow].CapacityPages = 4096

	var jobs []cluster.JobSpec
	for i := 0; i < 2*hosts; i++ {
		class := workload.LC
		if i%2 == 1 {
			class = workload.BE
		}
		spec := cluster.JobSpec{
			App: workload.AppConfig{
				Name:           fmt.Sprintf("job%03d", i),
				Class:          class,
				Threads:        2,
				RSSPages:       150 + 40*(i%4),
				SharedFraction: 0.5,
				ComputeNs:      100 * sim.Nanosecond,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewZipfian(p, 0.99, 0.1, 0.1, rng)
				},
			},
			Arrive: i % 4,
		}
		if i%5 == 4 {
			spec.Depart = spec.Arrive + 6
		}
		jobs = append(jobs, spec)
	}
	return cluster.Config{
		Hosts: hosts,
		Host: cluster.HostTemplate{
			Machine:     mcfg,
			NewPolicy:   func() system.Tiering { return figures.NewPolicy("vulcan") },
			EpochLength: 10 * sim.Millisecond,
		},
		Scheduler:      sched,
		Jobs:           jobs,
		RebalanceEvery: 3,
		MoveBudget:     2,
		Workers:        workers,
		Seed:           7,
	}
}

// BenchmarkFleetWorkers measures how the parallel host-stepping phase
// scales with the lab worker count on a fixed 32-host fleet.
func BenchmarkFleetWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hosts=32/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := cluster.New(benchFleetConfig(32, w, "fairness"))
				if err != nil {
					b.Fatal(err)
				}
				if err := f.Run(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetSchedulers compares the placement schedulers on the
// same offered load, reporting the fleet fairness each one reaches so
// perf diffs double as behavior-drift checks.
func BenchmarkFleetSchedulers(b *testing.B) {
	for _, sched := range cluster.Schedulers() {
		b.Run("sched="+sched, func(b *testing.B) {
			var cfi float64
			for i := 0; i < b.N; i++ {
				f, err := cluster.New(benchFleetConfig(16, 4, sched))
				if err != nil {
					b.Fatal(err)
				}
				if err := f.Run(12); err != nil {
					b.Fatal(err)
				}
				cfi = f.Report().FleetCFI
			}
			b.ReportMetric(cfi, "fleet-cfi")
		})
	}
}

// BenchmarkFleetCheckpoint measures the fleet snapshot round-trip: a
// 16-host fleet checkpointed and resumed, reporting the blob size.
func BenchmarkFleetCheckpoint(b *testing.B) {
	f, err := cluster.New(benchFleetConfig(16, 4, "fairness"))
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Run(8); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var blob bytes.Buffer
		if err := f.Checkpoint(&blob); err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.Resume(bytes.NewReader(blob.Bytes()), benchFleetConfig(16, 4, "fairness")); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(blob.Len()), "blob-bytes")
	}
}
