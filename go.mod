module vulcan

go 1.22
