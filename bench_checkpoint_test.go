// Benchmark for the branch-from-snapshot sweep machinery: the warm-up
// of a co-location scenario is paid once under the placement-neutral
// static policy, checkpointed, and every policy x fault-rate cell of
// the sweep resumes from that shared snapshot. The benchmark times the
// shared-warm-up sweep against running every cell cold and reports the
// wall-clock speedup plus the simulated warm-up epochs saved.
//
//	make bench-checkpoint
package vulcan_test

import (
	"testing"
	"time"

	"vulcan/internal/fault"
	"vulcan/internal/figures"
	"vulcan/internal/sim"
)

// BenchmarkCheckpointBranchSweep sweeps 3 policies x 2 fault rates over
// one warmed-up scenario. Wall-clock timing (time.Now) is fine here:
// this file is outside the simulation tree, and the measurement is
// about host cost, not simulated behavior.
func BenchmarkCheckpointBranchSweep(b *testing.B) {
	base := figures.ColocationConfig{Duration: 6 * sim.Second, Seed: 3, Scale: 16}
	policies := []string{"tpp", "memtis", "vulcan"}
	rates := []float64{0, 0.05}
	cells := len(policies) * len(rates)

	cellCfg := func(policy string, rate float64) figures.ColocationConfig {
		cfg := base
		cfg.Policy = policy
		if rate > 0 {
			cfg.Faults = fault.PlanAtRate(rate)
		}
		return cfg
	}

	for i := 0; i < b.N; i++ {
		warmEpochs := figures.WarmEpochs(base.Duration, sim.Second)

		branchStart := time.Now()
		warm := figures.WarmStart(base, warmEpochs)
		for _, p := range policies {
			for _, r := range rates {
				figures.RunColocationFrom(warm, cellCfg(p, r))
			}
		}
		branch := time.Since(branchStart)

		coldStart := time.Now()
		for _, p := range policies {
			for _, r := range rates {
				figures.RunColocation(cellCfg(p, r))
			}
		}
		cold := time.Since(coldStart)

		b.ReportMetric(float64(warmEpochs), "warm-epochs")
		b.ReportMetric(float64(warmEpochs*(cells-1)), "warm-epochs-saved")
		b.ReportMetric(cold.Seconds()/branch.Seconds(), "cold-vs-branch-speedup")
	}
}
