# Local and CI invocations are identical: .github/workflows/ci.yml runs
# exactly these targets.

GO ?= go

.PHONY: check build fmt vet lint vet-sarif test race obs-demo obs-demo-parallel chaos-demo chaos-golden checkpoint-demo prof-demo fleet-demo serve-demo bench bench-checkpoint bench-fleet bench-diff

# check is the full gate, in fail-fast order: cheap static checks first,
# then the test suites.
check: build fmt vet lint test race

build:
	$(GO) build ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs vulcanvet, the repo's own determinism/accounting analyzers
# (see internal/analysis). `make lint A=./internal/policy` narrows scope.
A ?= ./...
lint:
	$(GO) run ./cmd/vulcanvet $(A)

# vet-sarif runs the same analyzers but also writes the SARIF and JSON
# reports CI uploads to code scanning. Artifacts land in out/
# (gitignored); the SARIF is written even on a clean run.
vet-sarif:
	@mkdir -p out
	$(GO) run ./cmd/vulcanvet -sarif out/vulcanvet.sarif -json out/vulcanvet.json $(A)

test:
	$(GO) test ./...

# race proves the simulation core stays goroutine-free or correctly
# synchronized.
race:
	$(GO) test -race ./...

# obs-demo runs one seeded scenario twice with telemetry export and
# byte-compares the artifacts: the executable form of the determinism
# contract for the trace/metrics exporters. Artifacts land in
# out/obs-demo/ (gitignored); run1's trace.json opens in Perfetto.
OBS_DEMO_FLAGS = -policy vulcan -seconds 20 -scale 8 -seed 7
obs-demo:
	@mkdir -p out/obs-demo
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) \
		-trace-out out/obs-demo/trace.json -metrics-out out/obs-demo/metrics.csv \
		> out/obs-demo/report.txt
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) \
		-trace-out out/obs-demo/trace2.json -metrics-out out/obs-demo/metrics2.csv \
		> out/obs-demo/report2.txt
	cmp out/obs-demo/trace.json out/obs-demo/trace2.json
	cmp out/obs-demo/metrics.csv out/obs-demo/metrics2.csv
	cmp out/obs-demo/report.txt out/obs-demo/report2.txt
	@echo "obs-demo: trace, metrics and report byte-identical across replays"

# obs-demo-parallel is the parallel-determinism gate: the same 3-seed
# sweep on 4 workers and on 1 must emit byte-identical reports, traces
# and metric CSVs (internal/lab's ordered-commit contract, DESIGN.md
# "Parallel determinism").
obs-demo-parallel:
	@mkdir -p out/obs-demo
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) -seeds 3 -parallel 4 \
		-trace-out out/obs-demo/ptrace.json -metrics-out out/obs-demo/pmetrics.csv \
		> out/obs-demo/preport.txt
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) -seeds 3 -parallel 1 \
		-trace-out out/obs-demo/strace.json -metrics-out out/obs-demo/smetrics.csv \
		> out/obs-demo/sreport.txt
	cmp out/obs-demo/preport.txt out/obs-demo/sreport.txt
	for s in 7 8 9; do \
		cmp out/obs-demo/ptrace.seed$$s.json out/obs-demo/strace.seed$$s.json && \
		cmp out/obs-demo/pmetrics.seed$$s.csv out/obs-demo/smetrics.seed$$s.csv || exit 1; \
	done
	@echo "obs-demo-parallel: workers=4 output byte-identical to serial"

# chaos-demo is the executable determinism contract for the fault
# subsystem: a faulted 2-seed sweep must (a) replay byte-identically,
# (b) match the committed golden report in testdata/chaos/, and (c)
# actually exercise the resilience machinery — injection, retry and
# degradation events must appear in the exported trace. Regenerate the
# golden with `make chaos-golden` after an intentional behavior change.
CHAOS_DEMO_FLAGS = -policy vulcan -seconds 20 -scale 8 -seed 7 -seeds 2 -faults moderate
chaos-demo:
	@mkdir -p out/chaos-demo
	$(GO) run ./cmd/vulcansim $(CHAOS_DEMO_FLAGS) \
		-trace-out out/chaos-demo/trace.json -metrics-out out/chaos-demo/metrics.csv \
		> out/chaos-demo/report.txt
	$(GO) run ./cmd/vulcansim $(CHAOS_DEMO_FLAGS) \
		-trace-out out/chaos-demo/trace2.json -metrics-out out/chaos-demo/metrics2.csv \
		> out/chaos-demo/report2.txt
	cmp out/chaos-demo/report.txt out/chaos-demo/report2.txt
	for s in 7 8; do \
		cmp out/chaos-demo/trace.seed$$s.json out/chaos-demo/trace2.seed$$s.json && \
		cmp out/chaos-demo/metrics.seed$$s.csv out/chaos-demo/metrics2.seed$$s.csv || exit 1; \
	done
	cmp out/chaos-demo/report.txt testdata/chaos/report.golden.txt
	grep -q 'fault.inject' out/chaos-demo/trace.seed7.json
	grep -q 'migrate.retry' out/chaos-demo/trace.seed7.json
	grep -q 'profile.degraded' out/chaos-demo/trace.seed7.json
	@echo "chaos-demo: faulted sweep byte-identical across replays and matches the golden"

# chaos-golden rewrites the committed chaos-demo golden.
chaos-golden:
	@mkdir -p testdata/chaos
	$(GO) run ./cmd/vulcansim $(CHAOS_DEMO_FLAGS) > testdata/chaos/report.golden.txt
	@echo "golden updated: testdata/chaos/report.golden.txt"

# checkpoint-demo is the executable form of the resume contract
# (DESIGN.md "Checkpoint & restore"): a run interrupted at t=10s,
# checkpointed and resumed for 10 more simulated seconds must produce
# report, trace and metrics bytes identical to a single uninterrupted
# 20-second run. Note `-seconds` after `-resume` counts additional
# simulated time. Artifacts land in out/ckpt-demo/ (gitignored).
CKPT_DEMO_FLAGS = -policy vulcan -scale 8 -seed 7
checkpoint-demo:
	@mkdir -p out/ckpt-demo
	$(GO) run ./cmd/vulcansim $(CKPT_DEMO_FLAGS) -seconds 20 \
		-trace-out out/ckpt-demo/trace.json -metrics-out out/ckpt-demo/metrics.csv \
		> out/ckpt-demo/report.txt
	$(GO) run ./cmd/vulcansim $(CKPT_DEMO_FLAGS) -seconds 10 \
		-checkpoint-out out/ckpt-demo/mid.ckpt \
		-trace-out out/ckpt-demo/trace-first.json -metrics-out out/ckpt-demo/metrics-first.csv \
		> out/ckpt-demo/report-first.txt
	$(GO) run ./cmd/vulcansim $(CKPT_DEMO_FLAGS) -seconds 10 \
		-resume out/ckpt-demo/mid.ckpt \
		-trace-out out/ckpt-demo/trace-resumed.json -metrics-out out/ckpt-demo/metrics-resumed.csv \
		> out/ckpt-demo/report-resumed.txt
	cmp out/ckpt-demo/trace.json out/ckpt-demo/trace-resumed.json
	cmp out/ckpt-demo/metrics.csv out/ckpt-demo/metrics-resumed.csv
	cmp out/ckpt-demo/report.txt out/ckpt-demo/report-resumed.txt
	@echo "checkpoint-demo: resume-then-finish byte-identical to the uninterrupted run"

# prof-demo is the executable determinism contract for the
# cycle-attribution profiler (DESIGN.md "Cost attribution"): one canned
# scenario profiled twice and once more on a 3-seed sweep at two worker
# counts; every cost artifact (pprof protobuf, folded stacks, breakdown
# CSV) must be byte-identical, and the pprof file must parse with
# `go tool pprof`. Artifacts land in out/prof-demo/ (gitignored);
# cost.folded feeds flamegraph.pl / speedscope directly.
PROF_DEMO_FLAGS = -policy vulcan -seconds 20 -scale 8 -seed 7
prof-demo:
	@mkdir -p out/prof-demo
	$(GO) run ./cmd/vulcansim $(PROF_DEMO_FLAGS) \
		-costprofile out/prof-demo/cost.pb.gz -cost-folded out/prof-demo/cost.folded \
		-cost-csv out/prof-demo/cost.csv > out/prof-demo/report.txt
	$(GO) run ./cmd/vulcansim $(PROF_DEMO_FLAGS) \
		-costprofile out/prof-demo/cost2.pb.gz -cost-folded out/prof-demo/cost2.folded \
		-cost-csv out/prof-demo/cost2.csv > out/prof-demo/report2.txt
	cmp out/prof-demo/cost.pb.gz out/prof-demo/cost2.pb.gz
	cmp out/prof-demo/cost.folded out/prof-demo/cost2.folded
	cmp out/prof-demo/cost.csv out/prof-demo/cost2.csv
	cmp out/prof-demo/report.txt out/prof-demo/report2.txt
	$(GO) run ./cmd/vulcansim $(PROF_DEMO_FLAGS) -seeds 3 -parallel 1 \
		-costprofile out/prof-demo/s.pb.gz -cost-folded out/prof-demo/s.folded \
		-cost-csv out/prof-demo/s.csv > /dev/null
	$(GO) run ./cmd/vulcansim $(PROF_DEMO_FLAGS) -seeds 3 -parallel 2 \
		-costprofile out/prof-demo/w2.pb.gz -cost-folded out/prof-demo/w2.folded \
		-cost-csv out/prof-demo/w2.csv > /dev/null
	$(GO) run ./cmd/vulcansim $(PROF_DEMO_FLAGS) -seeds 3 -parallel 7 \
		-costprofile out/prof-demo/w7.pb.gz -cost-folded out/prof-demo/w7.folded \
		-cost-csv out/prof-demo/w7.csv > /dev/null
	for s in 7 8 9; do \
		cmp out/prof-demo/s.pb.seed$$s.gz out/prof-demo/w2.pb.seed$$s.gz && \
		cmp out/prof-demo/s.pb.seed$$s.gz out/prof-demo/w7.pb.seed$$s.gz && \
		cmp out/prof-demo/s.seed$$s.folded out/prof-demo/w2.seed$$s.folded && \
		cmp out/prof-demo/s.seed$$s.folded out/prof-demo/w7.seed$$s.folded && \
		cmp out/prof-demo/s.seed$$s.csv out/prof-demo/w2.seed$$s.csv && \
		cmp out/prof-demo/s.seed$$s.csv out/prof-demo/w7.seed$$s.csv || exit 1; \
	done
	$(GO) tool pprof -top out/prof-demo/cost.pb.gz | head -20
	@echo "prof-demo: cost artifacts byte-identical across replays and workers 1/2/7"

# fleet-demo is the executable determinism contract for the fleet layer
# (DESIGN.md "Fleet simulation"): the same 6-host fleet under the
# vulcan scheduler must emit byte-identical reports at -parallel 1, 2
# and 7, and a run interrupted at epoch 6, checkpointed and resumed at
# a different worker count must reproduce the uninterrupted report.
# Artifacts land in out/fleet-demo/ (gitignored).
FLEET_DEMO_FLAGS = -fleet 6 -scheduler vulcan -policy vulcan -seconds 12 -scale 8 -seed 7
fleet-demo:
	@mkdir -p out/fleet-demo
	$(GO) run ./cmd/vulcansim $(FLEET_DEMO_FLAGS) -parallel 1 > out/fleet-demo/report-w1.txt
	$(GO) run ./cmd/vulcansim $(FLEET_DEMO_FLAGS) -parallel 2 > out/fleet-demo/report-w2.txt
	$(GO) run ./cmd/vulcansim $(FLEET_DEMO_FLAGS) -parallel 7 > out/fleet-demo/report-w7.txt
	cmp out/fleet-demo/report-w1.txt out/fleet-demo/report-w2.txt
	cmp out/fleet-demo/report-w1.txt out/fleet-demo/report-w7.txt
	$(GO) run ./cmd/vulcansim $(FLEET_DEMO_FLAGS) -parallel 2 -seconds 6 \
		-checkpoint-out out/fleet-demo/mid.ckpt > /dev/null
	$(GO) run ./cmd/vulcansim $(FLEET_DEMO_FLAGS) -parallel 7 -seconds 6 \
		-resume out/fleet-demo/mid.ckpt > out/fleet-demo/report-resumed.txt
	cmp out/fleet-demo/report-w1.txt out/fleet-demo/report-resumed.txt
	@echo "fleet-demo: fleet report byte-identical across workers 1/2/7 and across resume"

# serve-demo is the executable contract for the serving daemon
# (DESIGN.md "Serving mode"): a manual-paced vulcand session is driven
# over its unix socket (admission, intensity change, stepping), suspended
# mid-run via /v1/shutdown, resumed auto-paced to completion from its
# newest rolling checkpoint, and then the command journal replayed
# through the batch pipeline (vulcansim -replay-journal) at lab workers
# 1/2/7 must reproduce the daemon's streamed trace, metrics and report
# byte for byte. Rolling-checkpoint retention (-checkpoint-retain 2) is
# checked on the way out. Artifacts land in out/serve-demo/ (gitignored).
SD = out/serve-demo
SD_ARTIFACTS = -journal $(SD)/run.journal -trace-out $(SD)/trace.json \
	-metrics-out $(SD)/metrics.csv -report-out $(SD)/report.txt \
	-checkpoint-base $(SD)/run.ckpt -checkpoint-every 6 -checkpoint-retain 2
serve-demo:
	@rm -rf $(SD); mkdir -p $(SD)
	$(GO) build -o $(SD)/vulcand ./cmd/vulcand
	@set -e; \
	$(SD)/vulcand -socket $(SD)/v.sock -config testdata/serve/scenario.json \
		-speed 0 $(SD_ARTIFACTS) & pid=$$!; \
	for i in $$(seq 100); do test -S $(SD)/v.sock && break; sleep 0.1; done; \
	vd() { $(SD)/vulcand -socket $(SD)/v.sock "$$@"; echo; }; \
	vd -post /v1/step -data '{"epochs":4}'; \
	vd -post /v1/admit -data '{"app":{"name":"burst","class":"BE","threads":1,"rss_pages":2048,"generator":"uniform"},"depart":20}'; \
	vd -post /v1/step -data '{"epochs":6}'; \
	vd -post /v1/intensity -data '{"name":"burst","milli":500}'; \
	vd -post /v1/step -data '{"epochs":1}'; \
	vd -get /v1/status; \
	vd -post /v1/shutdown; \
	wait $$pid; \
	echo "serve-demo: suspended mid-run; resuming auto-paced"; \
	$(SD)/vulcand -socket $(SD)/v.sock -resume -speed 50 $(SD_ARTIFACTS)
	test -f $(SD)/run.t012.ckpt && test -f $(SD)/run.t018.ckpt
	@if test -f $(SD)/run.t006.ckpt; then \
		echo "retention failed: run.t006.ckpt survived -checkpoint-retain 2"; exit 1; fi
	for w in 1 2 7; do \
		$(GO) run ./cmd/vulcansim -replay-journal $(SD)/run.journal -parallel $$w \
			-trace-out $(SD)/rtrace$$w.json -metrics-out $(SD)/rmetrics$$w.csv \
			> $(SD)/rreport$$w.txt && \
		cmp $(SD)/trace.json $(SD)/rtrace$$w.json && \
		cmp $(SD)/metrics.csv $(SD)/rmetrics$$w.csv && \
		cmp $(SD)/report.txt $(SD)/rreport$$w.txt || exit 1; \
	done
	@echo "serve-demo: suspended/resumed daemon artifacts byte-identical to journal replay at workers 1/2/7"

# bench runs the figure benchmarks with allocation accounting and
# records the numbers as structured JSON (committed as
# BENCH_parallel.json so perf regressions show up in review diffs).
# Self-profiles of the bench process (runtime/pprof CPU + heap) land in
# out/ for ad-hoc inspection with `go tool pprof`.
# Narrow with e.g. `make bench BENCHES='BenchmarkFig2|BenchmarkFig8'`.
BENCHES ?= BenchmarkFig
bench:
	@mkdir -p out
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime 1x \
		-cpuprofile out/bench-cpu.pb.gz -memprofile out/bench-mem.pb.gz \
		-o out/vulcan-bench.test . \
		| $(GO) run ./cmd/benchjson > BENCH_parallel.json
	@cat BENCH_parallel.json

# bench-diff runs the figure benchmarks fresh and compares them against
# the committed baseline (BENCH_parallel.json by default): per-benchmark
# ns/op, B/op and allocs/op deltas, plus a drift check on every figure
# metric — those must be byte-identical, and any drift fails the target.
# The report also lands in out/bench-diff.txt for CI to upload.
# Narrow with BENCHES=..., or diff another baseline with
# `make bench-diff BASELINE=BENCH_checkpoint.json BENCHES=BenchmarkCheckpoint`.
BASELINE ?= BENCH_parallel.json
bench-diff:
	@mkdir -p out
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime 1x . \
		> out/bench-diff-raw.txt
	@status=0; $(GO) run ./cmd/benchjson -diff $(BASELINE) \
		< out/bench-diff-raw.txt > out/bench-diff.txt || status=$$?; \
	cat out/bench-diff.txt; exit $$status

# bench-fleet measures the fleet layer: host-stepping scaling across
# lab worker counts, the schedulers head to head (with the fleet CFI
# each reaches), and the fleet checkpoint round-trip. Committed as
# BENCH_fleet.json.
bench-fleet:
	$(GO) test -run '^$$' -bench 'BenchmarkFleet' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_fleet.json
	@cat BENCH_fleet.json

# bench-checkpoint measures the branch-from-snapshot win: one shared
# warm-up feeding every policy x fault-rate cell of a sweep, against
# running each cell cold. Committed as BENCH_checkpoint.json.
bench-checkpoint:
	$(GO) test -run '^$$' -bench 'BenchmarkCheckpoint' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson > BENCH_checkpoint.json
	@cat BENCH_checkpoint.json
