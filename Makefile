# Local and CI invocations are identical: .github/workflows/ci.yml runs
# exactly these targets.

GO ?= go

.PHONY: check build fmt vet lint test race

# check is the full gate, in fail-fast order: cheap static checks first,
# then the test suites.
check: build fmt vet lint test race

build:
	$(GO) build ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs vulcanvet, the repo's own determinism/accounting analyzers
# (see internal/analysis). `make lint A=./internal/policy` narrows scope.
A ?= ./...
lint:
	$(GO) run ./cmd/vulcanvet $(A)

test:
	$(GO) test ./...

# race proves the simulation core stays goroutine-free or correctly
# synchronized.
race:
	$(GO) test -race ./...
