# Local and CI invocations are identical: .github/workflows/ci.yml runs
# exactly these targets.

GO ?= go

.PHONY: check build fmt vet lint test race obs-demo

# check is the full gate, in fail-fast order: cheap static checks first,
# then the test suites.
check: build fmt vet lint test race

build:
	$(GO) build ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs vulcanvet, the repo's own determinism/accounting analyzers
# (see internal/analysis). `make lint A=./internal/policy` narrows scope.
A ?= ./...
lint:
	$(GO) run ./cmd/vulcanvet $(A)

test:
	$(GO) test ./...

# race proves the simulation core stays goroutine-free or correctly
# synchronized.
race:
	$(GO) test -race ./...

# obs-demo runs one seeded scenario twice with telemetry export and
# byte-compares the artifacts: the executable form of the determinism
# contract for the trace/metrics exporters. Artifacts land in
# out/obs-demo/ (gitignored); run1's trace.json opens in Perfetto.
OBS_DEMO_FLAGS = -policy vulcan -seconds 20 -scale 8 -seed 7
obs-demo:
	@mkdir -p out/obs-demo
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) \
		-trace-out out/obs-demo/trace.json -metrics-out out/obs-demo/metrics.csv \
		> out/obs-demo/report.txt
	$(GO) run ./cmd/vulcansim $(OBS_DEMO_FLAGS) \
		-trace-out out/obs-demo/trace2.json -metrics-out out/obs-demo/metrics2.csv \
		> out/obs-demo/report2.txt
	cmp out/obs-demo/trace.json out/obs-demo/trace2.json
	cmp out/obs-demo/metrics.csv out/obs-demo/metrics2.csv
	cmp out/obs-demo/report.txt out/obs-demo/report2.txt
	@echo "obs-demo: trace, metrics and report byte-identical across replays"
