package vulcan_test

import (
	"bytes"
	"testing"

	"vulcan"
	"vulcan/internal/sim"
)

// TestFacadeQuickstart exercises the public API end to end exactly as the
// README's quick-start does.
func TestFacadeQuickstart(t *testing.T) {
	machine := vulcan.DefaultMachine()
	machine.Tiers[vulcan.TierFast].CapacityPages /= 32
	machine.Tiers[vulcan.TierSlow].CapacityPages /= 32

	mc := vulcan.Memcached()
	mc.RSSPages /= 32
	ll := vulcan.Liblinear()
	ll.RSSPages /= 32

	sys := vulcan.NewSystem(vulcan.Config{
		Machine: machine,
		Apps:    []vulcan.AppConfig{mc, ll},
		Policy:  vulcan.NewVulcan(vulcan.VulcanOptions{}),
		Seed:    2,
	})
	sys.Run(20 * vulcan.Second)

	if len(sys.StartedApps()) != 2 {
		t.Fatalf("started apps = %d", len(sys.StartedApps()))
	}
	for _, app := range sys.StartedApps() {
		if app.NormalizedPerf().Mean() <= 0 {
			t.Fatalf("%s has no performance measurement", app.Name())
		}
		if app.RSSMapped() == 0 {
			t.Fatalf("%s mapped nothing", app.Name())
		}
	}
	if cfi := sys.CFI().Index(); cfi <= 0 || cfi > 1 {
		t.Fatalf("CFI = %v", cfi)
	}
	if rep := sys.Audit(); !rep.Ok() {
		t.Fatalf("audit failed: %v", rep.Errors)
	}
}

// TestFacadePolicyConstructors ensures every exported policy constructor
// yields a usable Tiering.
func TestFacadePolicyConstructors(t *testing.T) {
	policies := []vulcan.Tiering{
		vulcan.NewStatic(),
		vulcan.NewTPP(),
		vulcan.NewMemtis(),
		vulcan.NewNomad(),
		vulcan.NewVulcan(vulcan.VulcanOptions{}),
	}
	names := map[string]bool{}
	for _, p := range policies {
		if p.Name() == "" {
			t.Fatal("policy without a name")
		}
		names[p.Name()] = true
	}
	if len(names) != 5 {
		t.Fatalf("duplicate policy names: %v", names)
	}
}

// TestFacadeHotPageBench exercises the exported Figure 4 microbenchmark.
func TestFacadeHotPageBench(t *testing.T) {
	cfg := vulcan.DefaultHotPageConfig()
	cfg.ReadFraction = 1.0
	s := vulcan.RunHotPageSync(cfg)
	a := vulcan.RunHotPageAsync(cfg)
	if s.Ops == 0 || a.Ops == 0 {
		t.Fatal("microbenchmark produced no operations")
	}
	if a.OpsPerSec <= s.OpsPerSec {
		t.Fatal("read-only async should beat sync")
	}
}

// TestFacadeWorkloadPresets checks the Table 2 presets are exposed with
// their paper footprints.
func TestFacadeWorkloadPresets(t *testing.T) {
	for _, tc := range []struct {
		cfg vulcan.AppConfig
		gb  int
	}{
		{vulcan.Memcached(), 51},
		{vulcan.PageRank(), 42},
		{vulcan.Liblinear(), 69},
	} {
		if got := tc.cfg.RSSPages * 4096 * 64 >> 30; got != tc.gb {
			t.Errorf("%s paper footprint = %d GB, want %d", tc.cfg.Name, got, tc.gb)
		}
	}
	micro := vulcan.Microbenchmark("m", 1000, 100, 0.5)
	micro.Validate()
	if micro.RSSPages != 1000 {
		t.Fatal("microbenchmark preset wrong")
	}
}

// TestFacadeJainIndex sanity-checks the exported fairness metric.
func TestFacadeJainIndex(t *testing.T) {
	if j := vulcan.JainIndex([]float64{1, 1, 1}); j != 1 {
		t.Fatalf("Jain of equal = %v", j)
	}
}

// TestFacadeTraceRoundTrip exercises the exported trace surface.
func TestFacadeTraceRoundTrip(t *testing.T) {
	mc := vulcan.Memcached()
	gen := mc.NewGen(1000, sim.NewRNG(1))
	tr := vulcan.CaptureTrace(gen, 5000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vulcan.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep := vulcan.NewTraceReplayer(back)
	for i := 0; i < 100; i++ {
		if p := rep.Next().Page; p < 0 || p >= 1000 {
			t.Fatalf("replayed page %d", p)
		}
	}
}

// TestFacadeCostModel checks the exported calibration entry point.
func TestFacadeCostModel(t *testing.T) {
	c := vulcan.DefaultCostModel()
	if c.PrepCycles(32, false) <= c.PrepCycles(2, false) {
		t.Fatal("preparation cost not growing with cores")
	}
	if c.PrepCycles(32, true) != c.PrepCycles(2, true) {
		t.Fatal("optimized preparation not constant")
	}
}
