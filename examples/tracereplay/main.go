// Tracereplay captures an access trace from a synthetic workload, saves
// it to disk in the compact VTRC format, reloads it, and drives the
// simulator from the replayed trace — the workflow for feeding captured
// or externally generated access patterns into tiering experiments with
// bit-exact reproducibility.
package main

import (
	"bytes"
	"fmt"
	"log"

	"vulcan"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

func main() {
	// 1. Capture: record 200K references of a key-value workload.
	const pages = 8000
	source := workload.NewKeyValue(pages, workload.KeyValueParams{}, sim.NewRNG(42))
	tr := vulcan.CaptureTrace(source, 200_000)
	st := tr.Stats()
	fmt.Printf("captured %d refs over %d pages (%d unique, %.0f%% writes)\n",
		st.Refs, tr.Pages(), st.UniquePages, 100*st.WriteFrac)

	// 2. Serialize and reload (stand-in for writing a .vtrc file).
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized to %d bytes (%.2f B/ref)\n", buf.Len(), float64(buf.Len())/float64(st.Refs))
	loaded, err := vulcan.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay: run the simulator with the trace as the access stream.
	machine := vulcan.DefaultMachine()
	machine.Tiers[vulcan.TierFast].CapacityPages = 2048
	machine.Tiers[vulcan.TierSlow].CapacityPages = 32768

	sys := vulcan.NewSystem(vulcan.Config{
		Machine: machine,
		Apps: []vulcan.AppConfig{{
			Name: "replayed", Class: vulcan.LC, Threads: 2, RSSPages: pages,
			SharedFraction: 1.0, ComputeNs: 100 * vulcan.Nanosecond,
			NewGen: func(p int, rng *sim.RNG) vulcan.Generator {
				return vulcan.NewTraceReplayer(loaded)
			},
		}},
		Policy: vulcan.NewVulcan(vulcan.VulcanOptions{}),
	})
	sys.Run(30 * vulcan.Second)

	app := sys.App("replayed")
	fmt.Printf("replayed under Vulcan: perf=%.3f fthr=%.2f fast=%d/%d pages\n",
		app.NormalizedPerf().Mean(), app.FTHR(), app.FastPages(), app.RSSMapped())
}
