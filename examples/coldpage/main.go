// Coldpage demonstrates the paper's motivating problem (Observation #1):
// under Memtis's absolute-frequency ranking, a streaming best-effort
// workload makes a latency-critical service's hot pages look cold and
// evicts them from the fast tier; under Vulcan the service keeps its hot
// set.
package main

import (
	"fmt"

	"vulcan"
)

func run(policy vulcan.Tiering, label string) {
	machine := vulcan.DefaultMachine()
	machine.Tiers[vulcan.TierFast].CapacityPages /= 8
	machine.Tiers[vulcan.TierSlow].CapacityPages /= 8

	memcached := vulcan.Memcached()
	memcached.RSSPages /= 8
	liblinear := vulcan.Liblinear()
	liblinear.RSSPages /= 8

	sys := vulcan.NewSystem(vulcan.Config{
		Machine: machine,
		Apps:    []vulcan.AppConfig{memcached, liblinear},
		Policy:  policy,
		Seed:    7,
	})
	sys.Run(90 * vulcan.Second)

	mc := sys.App("memcached")
	ll := sys.App("liblinear")
	fmt.Printf("%-8s memcached: fast=%5d pages fthr=%.2f perf=%.3f | liblinear: fast=%5d pages fthr=%.2f perf=%.3f\n",
		label,
		mc.FastPages(), mc.FTHR(), mc.NormalizedPerf().Mean(),
		ll.FastPages(), ll.FTHR(), ll.NormalizedPerf().Mean())
}

func main() {
	fmt.Println("The cold-page dilemma: memcached (LC) co-located with liblinear (BE)")
	fmt.Println()
	run(vulcan.NewMemtis(), "memtis")
	run(vulcan.NewVulcan(vulcan.VulcanOptions{}), "vulcan")
	fmt.Println()
	fmt.Println("Under Memtis, liblinear's streaming passes monopolize the fast tier and")
	fmt.Println("memcached's hot set is classified cold; Vulcan's per-workload QoS targets")
	fmt.Println("(GPT) and credit-based partitioning keep the service's working set resident.")
}
