// Fairness reproduces the Figure 9 scenario: three applications arrive
// staggered (memcached at 0s, pagerank at 50s, liblinear at 110s) and
// Vulcan's credit-based fair resource partitioning re-divides the fast
// tier at each arrival while holding every tenant's QoS target.
package main

import (
	"fmt"

	"vulcan"
)

func main() {
	machine := vulcan.DefaultMachine()
	machine.Tiers[vulcan.TierFast].CapacityPages /= 4
	machine.Tiers[vulcan.TierSlow].CapacityPages /= 4

	apps := []vulcan.AppConfig{vulcan.Memcached(), vulcan.PageRank(), vulcan.Liblinear()}
	starts := []vulcan.Time{0, vulcan.Time(50 * vulcan.Second), vulcan.Time(110 * vulcan.Second)}
	for i := range apps {
		apps[i].RSSPages /= 4
		apps[i].StartAt = starts[i]
	}

	pol := vulcan.NewVulcan(vulcan.VulcanOptions{})
	sys := vulcan.NewSystem(vulcan.Config{
		Machine: machine,
		Apps:    apps,
		Policy:  pol,
		Seed:    3,
	})

	fmt.Println("t(s)   | memcached fast/fthr | pagerank fast/fthr | liblinear fast/fthr")
	for sys.Now() < vulcan.Time(180*vulcan.Second) {
		sys.RunEpoch()
		epoch := int(sys.Now() / vulcan.Time(vulcan.Second))
		if epoch%20 != 0 {
			continue
		}
		fmt.Printf("%6d |", epoch)
		for _, name := range []string{"memcached", "pagerank", "liblinear"} {
			a := sys.App(name)
			if !a.Started() {
				fmt.Printf(" %19s |", "(not started)")
				continue
			}
			fmt.Printf("  %6d pages  %.2f |", a.FastPages(), a.FTHR())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Final QoS state (guaranteed performance targets vs achieved hit ratios):")
	for _, st := range pol.QoS().States() {
		fmt.Printf("  %-10s GPT=%.3f  FTHR=%.3f  quota=%d pages  credits=%d\n",
			st.App.Name(), st.GPT, st.App.FTHR(), st.Alloc, st.Credits)
	}
	fmt.Printf("Cumulative fairness index: %.3f\n", sys.CFI().Index())
}
