// Policies compares the four tiering systems of the paper's evaluation
// (TPP, Memtis, Nomad, Vulcan) plus a static first-touch control on the
// Table 2 co-location, printing per-app performance and fairness —
// a miniature Figure 10.
package main

import (
	"fmt"

	"vulcan"
)

func main() {
	policies := []struct {
		name string
		make func() vulcan.Tiering
	}{
		{"static", vulcan.NewStatic},
		{"tpp", vulcan.NewTPP},
		{"memtis", vulcan.NewMemtis},
		{"nomad", vulcan.NewNomad},
		{"vulcan", func() vulcan.Tiering { return vulcan.NewVulcan(vulcan.VulcanOptions{}) }},
	}

	fmt.Println("Policy comparison on the Table 2 co-location (memcached + pagerank + liblinear)")
	fmt.Printf("%-8s %12s %12s %12s %8s\n", "policy", "memcached", "pagerank", "liblinear", "CFI")
	for _, p := range policies {
		machine := vulcan.DefaultMachine()
		machine.Tiers[vulcan.TierFast].CapacityPages /= 8
		machine.Tiers[vulcan.TierSlow].CapacityPages /= 8
		apps := []vulcan.AppConfig{vulcan.Memcached(), vulcan.PageRank(), vulcan.Liblinear()}
		for i := range apps {
			apps[i].RSSPages /= 8
		}
		sys := vulcan.NewSystem(vulcan.Config{
			Machine: machine,
			Apps:    apps,
			Policy:  p.make(),
			Seed:    11,
		})
		sys.Run(90 * vulcan.Second)

		fmt.Printf("%-8s", p.name)
		for _, name := range []string{"memcached", "pagerank", "liblinear"} {
			fmt.Printf(" %12.3f", sys.App(name).NormalizedPerf().Mean())
		}
		fmt.Printf(" %8.3f\n", sys.CFI().Index())
	}
	fmt.Println()
	fmt.Println("perf = mean throughput/latency vs an all-fast ideal; CFI = FTHR-weighted")
	fmt.Println("Jain fairness over cumulative fast-tier allocations (paper Eq. 4).")
}
