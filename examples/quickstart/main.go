// Quickstart: co-locate a latency-critical key-value store with a
// best-effort ML trainer on a two-tier memory machine, manage placement
// with Vulcan, and print what each tenant achieved.
package main

import (
	"fmt"

	"vulcan"
)

func main() {
	// The paper's machine at 1/64 scale, shrunk 8x further so this demo
	// finishes in about a second: 64MB fast tier, 512MB slow tier.
	machine := vulcan.DefaultMachine()
	machine.Tiers[vulcan.TierFast].CapacityPages /= 8
	machine.Tiers[vulcan.TierSlow].CapacityPages /= 8

	memcached := vulcan.Memcached()
	memcached.RSSPages /= 8
	liblinear := vulcan.Liblinear()
	liblinear.RSSPages /= 8

	sys := vulcan.NewSystem(vulcan.Config{
		Machine: machine,
		Apps:    []vulcan.AppConfig{memcached, liblinear},
		Policy:  vulcan.NewVulcan(vulcan.VulcanOptions{}),
	})

	// Advance 60 simulated seconds (one policy epoch per second).
	sys.Run(60 * vulcan.Second)

	fmt.Println("After 60 simulated seconds under Vulcan:")
	for _, app := range sys.StartedApps() {
		fmt.Printf("  %-10s (%s)  perf=%.3f of all-fast ideal,  fast-tier hit ratio=%.2f,  fast pages=%d/%d\n",
			app.Name(), app.Class(), app.NormalizedPerf().Mean(),
			app.FTHR(), app.FastPages(), app.RSSMapped())
	}
	fmt.Printf("  fairness (FTHR-weighted Jain index): %.3f\n", sys.CFI().Index())
}
