package system

import (
	"testing"

	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

func TestAuditCleanSystem(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	rep := sys.Audit()
	if !rep.Ok() {
		t.Fatalf("clean system failed audit: %v", rep.Errors)
	}
	if rep.MappedFrames == 0 {
		t.Fatal("audit saw no mapped frames")
	}
	// used + free accounting is covered by Ok(); the counts must also be
	// self-consistent.
	if rep.MappedFrames+rep.ShadowFrames+rep.FreeFrames !=
		sys.Tiers().Fast().Capacity()+sys.Tiers().Slow().Capacity() {
		t.Fatalf("audit counts inconsistent: %v", rep)
	}
}

func TestAuditUnderMigrationChurn(t *testing.T) {
	// The promoteAll test policy migrates heavily; the ownership
	// invariant must hold after every epoch.
	sys := New(Config{
		Machine:     tinyMachine(128, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 2000, 0)},
		EpochLength: 10 * sim.Millisecond,
		Policy:      &promoteAll{},
	})
	for i := 0; i < 20; i++ {
		sys.RunEpoch()
		if rep := sys.Audit(); !rep.Ok() {
			t.Fatalf("audit failed after epoch %d: %v", i, rep.Errors)
		}
	}
}

func TestAuditMultiApp(t *testing.T) {
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("a", workload.LC, 400, 0),
			tinyApp("b", workload.BE, 600, 0),
		},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.Run(50 * sim.Millisecond)
	if rep := sys.Audit(); !rep.Ok() {
		t.Fatalf("multi-app audit failed: %v", rep.Errors)
	}
}

func TestAuditDetectsDoubleMapping(t *testing.T) {
	// Sabotage: map the same frame from two pages; the audit must flag it.
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 100, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	a := sys.App("a")
	p0, _ := a.Table.Lookup(0)
	a.Table.Update(1, func(p1 pagetable.PTE) pagetable.PTE {
		return p1.WithFrame(p0.Frame())
	})
	rep := sys.Audit()
	if rep.Ok() {
		t.Fatal("audit missed a double-mapped frame")
	}
}
