package system

import (
	"fmt"

	"vulcan/internal/fault"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/metrics"
	"vulcan/internal/obs"
	"vulcan/internal/obs/prof"
	"vulcan/internal/profile"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// Config assembles one co-location experiment.
type Config struct {
	Machine machine.Config
	Apps    []workload.AppConfig
	Policy  Tiering

	// EpochLength is the policy/measurement period (default 1s — the
	// cadence of the paper's migration daemons).
	EpochLength sim.Duration
	// SamplesPerThread is the number of representative accesses simulated
	// per thread per epoch (default 400).
	SamplesPerThread int
	// NewProfiler builds each app's profiler when the policy does not
	// implement ProfilerFactory (default: Vulcan's hybrid).
	NewProfiler func(app *App) profile.Profiler

	// MechanismOverride, when non-nil, replaces the policy's declared
	// Mechanisms — used by ablation experiments to switch individual
	// optimizations on or off.
	MechanismOverride *Mechanisms

	// DisableTHP turns off transparent huge pages. By default every
	// app's RSS is mapped as 2MiB huge pages for TLB coverage and split
	// into base pages when migration touches a group (§3.5).
	DisableTHP bool

	// Obs receives structured telemetry from every layer of the run
	// (see internal/obs). nil — the default — disables telemetry at the
	// cost of a nil check per emission site. If the sink can bind a
	// clock (obs.Recorder), the system binds it to the machine clock so
	// all event timestamps are simulated time.
	Obs obs.Sink

	// Prof, when non-nil, arms the cycle-attribution profiler
	// (internal/obs/prof): every layer posts its simulated cycle costs
	// to the account tree, and the system flushes per-epoch deltas at
	// each epoch boundary. The profiler is an observer only — charging
	// never feeds back into simulation arithmetic, so an armed run's
	// figures, trace and metrics are byte-identical to a disarmed one.
	// Profiler state is not checkpointed: a resumed run's cost profile
	// covers the post-resume epochs only.
	Prof *prof.Profiler

	// AllowDynamic permits runtime workload turnover: the system may be
	// built with zero apps and grown with AddApp / shrunk with StopApp
	// (the fleet placement layer drives both). Static experiments leave
	// it off and keep the configured-up-front contract: New rejects an
	// empty app list and the run's population is fixed.
	AllowDynamic bool

	// Faults arms the deterministic chaos layer (internal/fault): the
	// plan is compiled against Seed into an injector consulted by the
	// migration engines, profilers, latency/bandwidth models and the
	// epoch loop. nil — or a plan whose rules can never fire — leaves
	// every hook on the exact pre-fault arithmetic, so a faultless run
	// is byte-identical to one built without the subsystem.
	Faults *fault.Plan

	// AsyncMaxBacklog bounds each app's async migration queue (0 =
	// unbounded, the batch default). Long-running daemons set it so an
	// admission burst cannot grow a departed tenant's backlog without
	// limit; the queue sheds and displaces deterministically (see
	// migrate.AsyncConfig.MaxBacklog).
	AsyncMaxBacklog int

	// IncrementalRescore lets a policy implementing Rescorer re-evaluate
	// only the dirty app set on admissions, departures and intensity
	// changes, instead of waiting for the next whole-epoch recompute.
	// Off by default: batch runs keep the classic end-of-epoch-only
	// cadence and their byte-identical artifacts.
	IncrementalRescore bool

	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Machine.Cores == 0 {
		c.Machine = machine.DefaultConfig()
	}
	if c.Policy == nil {
		c.Policy = NullPolicy{}
	}
	if c.EpochLength == 0 {
		c.EpochLength = 1 * sim.Second
	}
	if c.SamplesPerThread == 0 {
		c.SamplesPerThread = 400
	}
	if c.NewProfiler == nil {
		c.NewProfiler = func(app *App) profile.Profiler {
			return profile.NewHybrid(app.Table, 8, app.rng.Uint64())
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// System is the live co-location runtime.
type System struct {
	cfg    Config
	m      *machine.Machine
	apps   []*App
	policy Tiering
	placer Placer

	cores int
	rng   *sim.RNG

	recorder *metrics.Recorder
	cfi      *metrics.CFITracker
	obs      obs.Sink
	prof     *prof.Profiler //vulcan:nosnap observer-only cost accounting, rebuilt per run
	epoch    int

	// admitOrder records app indices in admission order. Policies keep
	// per-workload state in registration order, so a checkpoint must
	// replay admissions in this order, not index order (staggered starts
	// make the two differ).
	admitOrder []int

	// stopLog records StopApp calls in order, each tagged with how many
	// admissions preceded it. A checkpoint replays admissions and stops
	// interleaved in this chronology, so the replayed resident set never
	// exceeds what the original run held at the same point (a stop that
	// freed capacity for a later admission must free it during replay
	// too). Empty on every non-dynamic run.
	stopLog []stopEvent

	// bwUtil carries the previous epoch's measured bandwidth utilization
	// into the next epoch's latency model.
	bwUtil [mem.NumTiers]float64

	// Fault-injection state (all zero/nil when Config.Faults is off).
	// latSpike and bwFault are the current epoch's windows: latSpike
	// multiplies access latency when > 1, bwFault shrinks a tier's
	// sustainable bandwidth when in (0,1). pressure holds fast-tier
	// frames seized by an injected memory-pressure burst, released at
	// the next epoch boundary.
	inj      *fault.Injector
	latSpike [mem.NumTiers]float64
	bwFault  [mem.NumTiers]float64
	pressure []mem.Frame

	// tiers and cost are aliases of the machine's fields for brevity.
	tiers *mem.Tiers
	cost  machine.CostModel

	// startedScratch backs StartedApps; the filter is rebuilt on every
	// call so policies can hold the returned slice through an epoch (the
	// started set only changes at epoch boundaries, and reentrant calls
	// rewrite identical contents in place).
	startedScratch []*App //vulcan:nosnap derived view, rebuilt by every StartedApps call
}

// New validates cfg and builds the system; apps are admitted lazily at
// their StartAt times during RunEpoch.
func New(cfg Config) *System {
	cfg.fillDefaults()
	if len(cfg.Apps) == 0 && !cfg.AllowDynamic {
		panic("system: no applications configured")
	}
	// A dynamic system may start empty; the tracker grows with AddApp.
	cfi := new(metrics.CFITracker)
	if len(cfg.Apps) > 0 {
		cfi = metrics.NewCFITracker(len(cfg.Apps))
	}
	m := machine.New(cfg.Machine)
	s := &System{
		cfg:      cfg,
		m:        m,
		policy:   cfg.Policy,
		cores:    cfg.Machine.Cores,
		rng:      sim.NewRNG(cfg.Seed),
		recorder: metrics.NewRecorder(m.Clock),
		cfi:      cfi,
		obs:      cfg.Obs,
		prof:     cfg.Prof,
		tiers:    m.Tiers,
		cost:     cfg.Machine.Cost,
	}
	if b, ok := cfg.Obs.(interface{ BindClock(*sim.Clock) }); ok {
		b.BindClock(m.Clock)
	}
	s.prof.BindClock(m.Clock)
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			panic(fmt.Sprintf("system: %v", err))
		}
		// nil when no rule can fire, keeping every hook on the fast path.
		s.inj = fault.NewInjector(cfg.Faults, cfg.Seed, cfg.Obs)
	}
	if p, ok := cfg.Policy.(Placer); ok {
		s.placer = p
	}
	totalThreads := 0
	for i, ac := range cfg.Apps {
		ac.Validate()
		totalThreads += ac.Threads
		s.apps = append(s.apps, &App{
			Cfg: ac, Index: i, rng: s.rng.Fork(),
			keyFastPages: ac.Name + ".fast_pages",
			keyFTHR:      ac.Name + ".fthr",
			keyOps:       ac.Name + ".ops",
		})
	}
	// A dynamic system's population turns over: the static sum may count
	// instances that never coexist (one stopped before the next arrived),
	// so core capacity is enforced per AddApp against live threads
	// instead.
	if totalThreads > cfg.Machine.Cores && !cfg.AllowDynamic {
		panic(fmt.Sprintf("system: %d app threads exceed %d cores (the paper pins one thread per core)",
			totalThreads, cfg.Machine.Cores))
	}
	return s
}

// Apps returns every configured app (started or not).
func (s *System) Apps() []*App { return s.apps }

// StartedApps returns the currently admitted apps.
func (s *System) StartedApps() []*App {
	out := s.startedScratch[:0]
	for _, a := range s.apps {
		if a.started {
			out = append(out, a)
		}
	}
	s.startedScratch = out
	return out
}

// App returns the app with the given name, or nil.
func (s *System) App(name string) *App {
	for _, a := range s.apps {
		if a.Cfg.Name == name {
			return a
		}
	}
	return nil
}

// Tiers returns the machine's memory tiers.
func (s *System) Tiers() *mem.Tiers { return s.tiers }

// Cost returns the machine's cost model.
func (s *System) Cost() machine.CostModel { return s.cost }

// Cores returns the machine's core count.
func (s *System) Cores() int { return s.cores }

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.m.Now() }

// Epoch returns the number of completed epochs.
func (s *System) Epoch() int { return s.epoch }

// EpochLength returns the configured epoch duration.
func (s *System) EpochLength() sim.Duration { return s.cfg.EpochLength }

// EpochCycles returns the per-thread CPU cycles available in one epoch.
func (s *System) EpochCycles() float64 {
	return float64(s.cfg.EpochLength) * sim.CyclesPerNs
}

// Recorder returns the time-series recorder.
func (s *System) Recorder() *metrics.Recorder { return s.recorder }

// CFI returns the FTHR-weighted cumulative fairness tracker (Eq. 4).
func (s *System) CFI() *metrics.CFITracker { return s.cfi }

// Policy returns the active tiering policy.
func (s *System) Policy() Tiering { return s.policy }

// Obs returns the telemetry sink (nil when telemetry is disabled).
// Policies emit their decision/adaptation events through it.
func (s *System) Obs() obs.Sink { return s.obs }

// RunEpoch advances the simulation by one epoch: admission, access
// simulation, profiler harvest, policy migrations, accounting.
func (s *System) RunEpoch() {
	now := s.m.Now()

	// Admission. Stopped apps stay out: their lifecycle is over, not
	// pending.
	var admitted []*App
	for _, a := range s.apps {
		if !a.started && !a.stopped && a.Cfg.StartAt <= now {
			a.admit(s, s.placer)
			a.refreshCensus()
			s.admitOrder = append(s.admitOrder, a.Index)
			s.policy.AppStarted(s, a)
			if obs.Enabled(s.obs, obs.EvAppStart) {
				s.obs.Event(obs.E(obs.EvAppStart, a.Cfg.Name, "", 0,
					obs.F("rss_pages", float64(a.rssMapped)),
					obs.F("threads", float64(a.Cfg.Threads))))
			}
			admitted = append(admitted, a)
		}
	}
	s.rescore(admitted)

	// Open this epoch's fault windows (latency spikes, bandwidth
	// degradation, memory-pressure bursts) before any access or
	// migration sees the tiers.
	if s.inj != nil {
		s.applyFaultWindows()
	}

	// Access simulation against last epoch's bandwidth picture.
	s.tiers.ResetEpoch()
	epochCycles := s.EpochCycles()
	for _, a := range s.apps {
		if a.started {
			samples := s.cfg.SamplesPerThread
			if a.intensityMilli != 0 && a.intensityMilli != 1000 {
				// Intensity overrides scale the per-thread sample count in
				// integer arithmetic, so default runs are untouched.
				samples = samples * a.intensityMilli / 1000
				if samples < 1 {
					samples = 1
				}
			}
			a.runEpochAccesses(samples, epochCycles, s.bwUtil)
			if a.epochDemandFaults > 0 && obs.Enabled(s.obs, obs.EvDemandFault) {
				s.obs.Event(obs.E(obs.EvDemandFault, a.Cfg.Name, "faults", 0,
					obs.F("count", float64(a.epochDemandFaults)),
					obs.F("cycles", float64(a.epochDemandFaults)*s.cost.MinorFaultCycles)))
			}
		}
	}

	// Profiler harvest; overhead lands on the app's next epoch.
	for _, a := range s.apps {
		if a.started {
			rep := a.Profiler.EndEpoch()
			a.ChargeStall(rep.OverheadCycles)
			// Mechanism-plane view of the harvest cost; the same cycles
			// surface on the use plane as next epoch's system/stall.
			a.acct.profEpoch.Charge(rep.OverheadCycles)
			s.checkProfileConfidence(a)
			if obs.Enabled(s.obs, obs.EvProfileEpoch) {
				s.obs.Event(obs.E(obs.EvProfileEpoch, a.Cfg.Name, "profile",
					sim.CyclesToDuration(rep.OverheadCycles),
					obs.F("overhead_cycles", rep.OverheadCycles),
					obs.F("scanned_pages", float64(rep.ScannedPages)),
					obs.F("faults", float64(rep.Faults)),
					obs.F("tracked", float64(rep.Tracked))))
			}
			if rep.Faults > 0 && obs.Enabled(s.obs, obs.EvHintFault) {
				s.obs.Event(obs.E(obs.EvHintFault, a.Cfg.Name, "faults", 0,
					obs.F("count", float64(rep.Faults))))
			}
		}
	}

	// Policy decisions and migrations.
	s.policy.EndEpoch(s)

	// Bounded retry of transiently-failed migrations (chaos runs only):
	// the retry batch is background migration work, charged like any
	// other stall against the app's next epoch.
	for _, a := range s.apps {
		if a.started && a.Retry != nil {
			ep := a.Retry.RunEpoch(uint64(s.epoch))
			a.ChargeStall(ep.Cycles)
		}
	}

	// Post-migration accounting.
	var weighted [mem.NumTiers]float64
	for _, a := range s.apps {
		if !a.started {
			continue
		}
		a.refreshCensus()
		s.cfi.Observe(a.Index, float64(a.fastPages), a.FTHR())
		s.recorder.Record(a.keyFastPages, float64(a.fastPages))
		s.recorder.Record(a.keyFTHR, a.FTHR())
		s.recorder.Record(a.keyOps, a.epochOps)
		weighted[mem.TierFast] += a.epochFastSamples * a.sampleWeight
		weighted[mem.TierSlow] += a.epochSlowSamples * a.sampleWeight
		s.observeApp(a)
	}
	s.recorder.Record("fast_tier_used", float64(s.tiers.Fast().Used()))

	// Bandwidth utilization for the next epoch's latency ramp: weighted
	// accesses × one cache line over the epoch. An injected degradation
	// window shrinks the tier's sustainable bandwidth, so the same
	// traffic rides higher on the latency ramp.
	seconds := s.cfg.EpochLength.Seconds()
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		gbs := weighted[t] * 64 / seconds / 1e9
		bw := s.tiers.Tier(t).Config().BandwidthGBs
		if f := s.bwFault[t]; f > 0 && f < 1 {
			bw *= f
		}
		u := gbs / bw
		if u > 1 {
			u = 1
		}
		s.bwUtil[t] = u
	}

	s.observeEpoch()

	s.m.Clock.Advance(s.cfg.EpochLength)
	s.epoch++
}

// observeApp publishes one started app's end-of-epoch telemetry: THP
// split events plus the per-app gauge/histogram refresh. No-ops at zero
// cost when no sink (or no registry-bearing sink) is configured.
func (s *System) observeApp(a *App) {
	if a.epochTHPSplits > 0 {
		if obs.Enabled(s.obs, obs.EvTHPSplit) {
			s.obs.Event(obs.E(obs.EvTHPSplit, a.Cfg.Name, "thp", 0,
				obs.F("count", float64(a.epochTHPSplits)),
				obs.F("cycles", float64(a.epochTHPSplits)*s.cost.THPSplitCycles)))
		}
		a.epochTHPSplits = 0
	}
	reg := obs.RegistryOf(s.obs)
	if reg == nil {
		return
	}
	app := obs.App(a.Cfg.Name)
	reg.Gauge("fast_pages", app).Set(float64(a.fastPages))
	reg.Gauge("rss_pages", app).Set(float64(a.rssMapped))
	reg.Gauge("fthr", app).Set(a.FTHR())
	reg.Gauge("ops", app).Set(a.epochOps)
	ts := a.TLBStats()
	reg.Gauge("tlb_hit_rate", app).Set(ts.HitRate())
	reg.Gauge("tlb_invalidations", app).Set(float64(ts.Invalidations))
	if a.huge != nil {
		reg.Gauge("thp_groups", app).Set(float64(a.huge.HugeGroups()))
		reg.Gauge("thp_splits", app).Set(float64(a.huge.Splits()))
	}
	as := a.Async.Stats()
	reg.Gauge("async_moved", app).Set(float64(as.Moved))
	reg.Gauge("async_aborted", app).Set(float64(as.Aborted))
	reg.Histogram("epoch_perf", 0, 1.5, 60, app).Add(a.epochPerf)
	// Resilience gauges exist only on chaos runs, so fault-free metric
	// CSVs keep their pre-fault row set byte-for-byte.
	if a.Retry != nil {
		rs := a.Retry.Stats()
		reg.Gauge("retry_pending", app).Set(float64(a.Retry.Pending()))
		reg.Gauge("retry_recovered", app).Set(float64(rs.Recovered))
		reg.Gauge("retry_gaveup", app).Set(float64(rs.GaveUp))
	}
	if fp, ok := a.Profiler.(*profile.Faulty); ok {
		reg.Gauge("profile_confidence", app).Set(fp.Confidence())
	}
	if ts.DelayedAcks > 0 {
		reg.Gauge("tlb_delayed_acks", app).Set(float64(ts.DelayedAcks))
	}
}

// observeEpoch emits the machine-scope epoch summary event, refreshes
// machine gauges, and flushes the epoch's metric samples (the sink is
// flushed before the clock advances so samples carry this epoch's
// boundary timestamp).
func (s *System) observeEpoch() {
	if obs.Enabled(s.obs, obs.EvEpoch) {
		s.obs.Event(obs.E(obs.EvEpoch, "", "epoch", s.cfg.EpochLength,
			obs.F("epoch", float64(s.epoch)),
			obs.F("fast_used_pages", float64(s.tiers.Fast().Used())),
			obs.F("bw_fast", s.bwUtil[mem.TierFast]),
			obs.F("bw_slow", s.bwUtil[mem.TierSlow])))
	}
	if reg := obs.RegistryOf(s.obs); reg != nil {
		reg.Gauge("fast_tier_used").Set(float64(s.tiers.Fast().Used()))
		reg.Gauge("bw_util", obs.Tier("fast")).Set(s.bwUtil[mem.TierFast])
		reg.Gauge("bw_util", obs.Tier("slow")).Set(s.bwUtil[mem.TierSlow])
	}
	// The cost profiler closes its books first so a streaming sink sees
	// this epoch's counter rows at its flush boundary; the batch
	// exporters are insensitive to the order.
	s.prof.FlushEpoch(s.epoch)
	if f, ok := s.obs.(interface{ FlushEpoch(int) }); ok {
		f.FlushEpoch(s.epoch)
	}
}

// applyFaultWindows opens the epoch's injected substrate windows:
// per-tier latency spikes and bandwidth degradation, plus fast-tier
// frames seized by an external memory-pressure burst. Last epoch's
// seized frames are released first, so a burst lasts exactly its
// window.
func (s *System) applyFaultWindows() {
	for _, f := range s.pressure {
		s.tiers.Free(f)
	}
	s.pressure = s.pressure[:0]

	epoch := uint64(s.epoch)
	s.inj.BeginEpoch(epoch)
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		s.latSpike[t] = s.inj.LatencyFactor(t, epoch)
		s.bwFault[t] = s.inj.BandwidthFactor(t, epoch)
	}
	fastCap := s.tiers.Fast().Config().CapacityPages
	want := s.inj.PressurePages(epoch, fastCap)
	for i := 0; i < want; i++ {
		f, ok := s.tiers.Alloc(mem.TierFast)
		if !ok {
			break // tier already full: the burst seizes what it can
		}
		s.pressure = append(s.pressure, f)
	}
}

// checkProfileConfidence latches whether the app's profile is too
// starved (injected sample loss) to act on this epoch, and emits the
// degradation event. No-op on fault-free runs, where profilers are
// never wrapped.
func (s *System) checkProfileConfidence(a *App) {
	fp, ok := a.Profiler.(*profile.Faulty)
	if !ok {
		return
	}
	conf := fp.Confidence()
	a.profileDegraded = conf < s.inj.Plan().DegradeBelow
	if a.profileDegraded && obs.Enabled(s.obs, obs.EvProfileDegraded) {
		overflow := 0.0
		if fp.Overflowed() {
			overflow = 1
		}
		s.obs.Event(obs.E(obs.EvProfileDegraded, a.Cfg.Name, "profile", 0,
			obs.F("confidence", conf),
			obs.F("dropped", float64(fp.Dropped())),
			obs.F("overflow", overflow)))
	}
}

// FaultInjector returns the compiled fault injector, or nil when the
// run is fault-free.
func (s *System) FaultInjector() *fault.Injector { return s.inj }

// PressureHeld returns how many fast-tier frames are currently seized
// by an injected memory-pressure burst.
func (s *System) PressureHeld() int { return len(s.pressure) }

// Run advances the simulation for d of simulated time.
func (s *System) Run(d sim.Duration) {
	deadline := s.m.Now() + sim.Time(d)
	for s.m.Now() < deadline {
		s.RunEpoch()
	}
}

// BandwidthUtil returns the previous epoch's per-tier bandwidth
// utilization estimate.
func (s *System) BandwidthUtil() [mem.NumTiers]float64 { return s.bwUtil }

// mechanisms resolves the engine-level optimization set: the config
// override wins, otherwise the policy's declaration applies.
func (s *System) mechanisms() Mechanisms {
	if s.cfg.MechanismOverride != nil {
		return *s.cfg.MechanismOverride
	}
	return s.policy.Mechanisms()
}

// Mechanisms returns the optimization set in effect.
func (s *System) Mechanisms() Mechanisms { return s.mechanisms() }
