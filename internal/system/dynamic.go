package system

import (
	"fmt"

	"vulcan/internal/obs"
	"vulcan/internal/pagetable"
	"vulcan/internal/workload"
)

// AppStopper is optionally implemented by policies that keep per-app
// registration state (Vulcan's QoS controller and promotion queues).
// AppStopped is invoked by StopApp while the app's runtime state is
// still intact, so the policy can drop its references; policies that
// only ever walk StartedApps need no implementation.
type AppStopper interface {
	AppStopped(sys *System, app *App)
}

// stopEvent is one StopApp call in the system's lifecycle chronology:
// which app stopped, and after how many admissions. Interleaving the
// two logs lets a checkpoint replay reproduce the resident set the
// original run held at every point, so replayed premaps never exceed
// physical capacity that was only freed by an intervening stop.
type stopEvent struct {
	idx         int
	afterAdmits int
}

// LiveThreads counts the threads of every app that is running or still
// pending admission — the population that can occupy cores now or
// later. The fleet placement layer uses it for admission control.
func (s *System) LiveThreads() int { return s.liveThreads() }

// liveThreads counts the threads of every app that is running or still
// pending admission — the population that can occupy cores now or later.
func (s *System) liveThreads() int {
	n := 0
	for _, a := range s.apps {
		if !a.stopped {
			n += a.Cfg.Threads
		}
	}
	return n
}

// AddApp appends a new application to a dynamic system at runtime. The
// app joins the admission queue and is admitted by the next RunEpoch
// once its StartAt time arrives (callers that want immediate admission
// set StartAt at or before the current clock). The system must have
// been built with AllowDynamic; names must be unique (recorder series,
// telemetry labels and policy registries are keyed by them) and the
// newcomer's threads must fit alongside every non-stopped app's.
func (s *System) AddApp(ac workload.AppConfig) (*App, error) {
	if !s.cfg.AllowDynamic {
		return nil, fmt.Errorf("system: AddApp on a static system (Config.AllowDynamic is off)")
	}
	ac.Validate()
	if s.App(ac.Name) != nil {
		return nil, fmt.Errorf("system: app %q already exists", ac.Name)
	}
	if live := s.liveThreads(); live+ac.Threads > s.cores {
		return nil, fmt.Errorf("system: app %q needs %d threads, %d of %d cores already committed",
			ac.Name, ac.Threads, live, s.cores)
	}
	a := &App{
		Cfg: ac, Index: len(s.apps), rng: s.rng.Fork(),
		keyFastPages: ac.Name + ".fast_pages",
		keyFTHR:      ac.Name + ".fthr",
		keyOps:       ac.Name + ".ops",
	}
	s.apps = append(s.apps, a)
	s.cfi.Grow()
	return a, nil
}

// StopApp evicts a running application: the policy is notified first
// (AppStopper implementations drop their registration state), then
// every frame the app holds — mapped pages and shadow copies alike —
// is returned to its tier, and the app is retired in place. Its slot,
// recorder series and cumulative fairness contribution survive; only
// its future does not. Must be called between epochs (the same
// boundary contract as Checkpoint). Stopping is permanent: a retired
// name can only come back as a fresh AddApp instance under a new name.
func (s *System) StopApp(a *App) error {
	if !s.cfg.AllowDynamic {
		return fmt.Errorf("system: StopApp on a static system (Config.AllowDynamic is off)")
	}
	if a == nil || a.Index < 0 || a.Index >= len(s.apps) || s.apps[a.Index] != a {
		return fmt.Errorf("system: StopApp of an app this system does not own")
	}
	if a.stopped {
		return fmt.Errorf("system: app %q already stopped", a.Cfg.Name)
	}
	if !a.started {
		return fmt.Errorf("system: app %q not admitted yet", a.Cfg.Name)
	}
	s.stopLog = append(s.stopLog, stopEvent{idx: a.Index, afterAdmits: len(s.admitOrder)})
	s.retire(a)
	if obs.Enabled(s.obs, obs.EvAppStop) {
		s.obs.Event(obs.E(obs.EvAppStop, a.Cfg.Name, "", 0,
			obs.F("total_ops", a.totalOps),
			obs.F("fthr", a.FTHR())))
	}
	s.rescore([]*App{a})
	return nil
}

// SetIntensity adjusts a running application's workload intensity to
// milli thousandths of its configured rate (1000 = as configured): the
// per-epoch sample count and, for open-loop apps, the arrival rate both
// scale. Must be called between epochs on a dynamic system; the change
// takes effect with the next RunEpoch. milli must be in [1, 1000000].
func (s *System) SetIntensity(a *App, milli int) error {
	if !s.cfg.AllowDynamic {
		return fmt.Errorf("system: SetIntensity on a static system (Config.AllowDynamic is off)")
	}
	if a == nil || a.Index < 0 || a.Index >= len(s.apps) || s.apps[a.Index] != a {
		return fmt.Errorf("system: SetIntensity of an app this system does not own")
	}
	if !a.started || a.stopped {
		return fmt.Errorf("system: SetIntensity of %q, which is not running", a.Cfg.Name)
	}
	if milli < 1 || milli > 1_000_000 {
		return fmt.Errorf("system: intensity %d out of range [1, 1000000]", milli)
	}
	a.intensityMilli = milli
	s.rescore([]*App{a})
	return nil
}

// rescore forwards a dirty app set to the policy's incremental
// re-evaluation hook, when both the config gate and the policy support
// it. No-op otherwise, keeping classic runs byte-identical.
func (s *System) rescore(dirty []*App) {
	if !s.cfg.IncrementalRescore || len(dirty) == 0 {
		return
	}
	if r, ok := s.policy.(Rescorer); ok {
		r.Reevaluate(s, dirty)
	}
}

// retire is the shared teardown of StopApp and checkpoint stop-replay:
// policy notification, frame release, and the flag flip. It emits no
// telemetry — replay must not re-emit events the original run already
// recorded.
func (s *System) retire(a *App) {
	if ps, ok := s.policy.(AppStopper); ok {
		ps.AppStopped(s, a)
	}
	// Unmap every present page and free its frame. Page numbers are
	// collected first: Unmap mutates the trees Range walks.
	vps := make([]pagetable.VPage, 0, a.Table.Mapped())
	a.Table.Range(func(vp pagetable.VPage, _ pagetable.PTE) bool {
		vps = append(vps, vp)
		return true
	})
	for _, vp := range vps {
		if pte, ok := a.Table.Unmap(vp); ok {
			s.tiers.Free(pte.Frame())
		}
	}
	// Shadow copies of promoted pages hold slow-tier frames of their own.
	a.Engine.DropAllShadows()
	a.started = false
	a.stopped = true
	a.fastPages = 0
	a.rssMapped = 0
	a.pendingStall = 0
}
