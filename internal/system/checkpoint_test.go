package system

import (
	"bytes"
	"testing"

	"vulcan/internal/fault"
	"vulcan/internal/obs"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// ckptConfig builds a fresh two-app config (one staggered admission) so
// each run constructs its own closures and recorder.
func ckptConfig(faults *fault.Plan) Config {
	return Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("late", workload.BE, 300, sim.Time(25*sim.Millisecond)),
			tinyApp("early", workload.LC, 300, 0),
		},
		EpochLength: 10 * sim.Millisecond,
		Obs:         obs.NewRecorder(),
		Faults:      faults,
		Seed:        7,
	}
}

// dump renders everything the byte-identity contract covers: the run
// report, the time-series CSV, and the telemetry metrics CSV.
func dump(t *testing.T, sys *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sys.Recorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rec, ok := sys.Obs().(*obs.Recorder); ok {
		if err := rec.WriteMetricsCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func runEpochs(sys *System, n int) {
	for i := 0; i < n; i++ {
		sys.RunEpoch()
	}
}

func testResumeIdentical(t *testing.T, faults *fault.Plan, split, total int) {
	t.Helper()
	golden := New(ckptConfig(faults))
	runEpochs(golden, total)
	want := dump(t, golden)

	first := New(ckptConfig(faults))
	runEpochs(first, split)
	var blob bytes.Buffer
	if err := first.Checkpoint(&blob); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	resumed, err := Resume(bytes.NewReader(blob.Bytes()), ckptConfig(faults))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	runEpochs(resumed, total-split)
	got := dump(t, resumed)

	if !bytes.Equal(want, got) {
		t.Fatalf("resumed run diverged from uninterrupted run:\nwant %d bytes, got %d bytes", len(want), len(got))
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	// Split before and after the staggered app's admission.
	testResumeIdentical(t, nil, 1, 10)
	testResumeIdentical(t, nil, 5, 10)
}

func TestCheckpointResumeFaultedByteIdentical(t *testing.T) {
	testResumeIdentical(t, fault.PlanAtRate(0.05), 6, 12)
}

// A fault-free warm-up may branch into a faulted continuation: the
// resume must succeed (fresh fault state) and stay deterministic.
func TestResumeIntoFaultedBranchDeterministic(t *testing.T) {
	var blob bytes.Buffer
	warm := New(ckptConfig(nil))
	runEpochs(warm, 4)
	if err := warm.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		sys, err := Resume(bytes.NewReader(blob.Bytes()), ckptConfig(fault.PlanAtRate(0.1)))
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		runEpochs(sys, 6)
		return dump(t, sys)
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("faulted branch from clean snapshot is not deterministic")
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	var blob bytes.Buffer
	sys := New(ckptConfig(nil))
	runEpochs(sys, 3)
	if err := sys.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}

	bad := ckptConfig(nil)
	bad.Seed = 8
	if _, err := Resume(bytes.NewReader(blob.Bytes()), bad); err == nil {
		t.Fatal("seed mismatch accepted")
	}

	bad = ckptConfig(nil)
	bad.Apps = bad.Apps[:1]
	if _, err := Resume(bytes.NewReader(blob.Bytes()), bad); err == nil {
		t.Fatal("app-count mismatch accepted")
	}

	bad = ckptConfig(nil)
	bad.Apps[0].Name = "other"
	if _, err := Resume(bytes.NewReader(blob.Bytes()), bad); err == nil {
		t.Fatal("app-name mismatch accepted")
	}
}

// Corrupting or truncating any part of the blob must yield an error
// from Resume, never a panic.
func TestResumeCorruptionNeverPanics(t *testing.T) {
	var blob bytes.Buffer
	sys := New(ckptConfig(fault.PlanAtRate(0.05)))
	runEpochs(sys, 4)
	if err := sys.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	raw := blob.Bytes()

	// Every truncation point (stride keeps the test fast).
	for n := 0; n < len(raw); n += 7 {
		if _, err := Resume(bytes.NewReader(raw[:n]), ckptConfig(fault.PlanAtRate(0.05))); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// Single-byte corruption at every offset (stride for speed).
	for i := 0; i < len(raw); i += 11 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5a
		if _, err := Resume(bytes.NewReader(mut), ckptConfig(fault.PlanAtRate(0.05))); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}
