package system

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// adversarialProfiler feeds the policy layer hostile signals: heat for
// pages that do not exist, negative-looking write fractions, enormous
// heats, and snapshots in adversarial order. Policies and the migration
// engine must tolerate all of it without corrupting frame ownership.
type adversarialProfiler struct {
	rng    *sim.RNG
	extent int
}

func (a *adversarialProfiler) Name() string { return "adversarial" }

func (a *adversarialProfiler) Record(profile.Access) float64 { return 0 }

func (a *adversarialProfiler) EndEpoch() profile.EpochReport { return profile.EpochReport{} }

func (a *adversarialProfiler) Heat(vp pagetable.VPage) float64 {
	// Nondeterministic per call: violates any consistency assumption.
	return a.rng.Float64() * 1e12
}

func (a *adversarialProfiler) WriteFraction(pagetable.VPage) float64 {
	return a.rng.Float64()
}

func (a *adversarialProfiler) HeatSnapshot() []profile.PageHeat {
	out := make([]profile.PageHeat, 0, 256)
	for i := 0; i < 256; i++ {
		out = append(out, profile.PageHeat{
			// Half the candidates point at unmapped or wildly
			// out-of-range pages.
			VP:        pagetable.VPage(a.rng.Intn(a.extent * 2)),
			Heat:      a.rng.Float64() * 1e12,
			WriteFrac: a.rng.Float64(),
		})
	}
	return out
}

func (a *adversarialProfiler) HeatPages() []profile.PageHeat { return a.HeatSnapshot() }

func (a *adversarialProfiler) Tracked() int { return 256 }

// chaosPolicy drives migrations straight from the adversarial snapshots,
// alternating directions, with no sanity checks of its own.
type chaosPolicy struct{}

func (chaosPolicy) Name() string                     { return "chaos" }
func (chaosPolicy) Mechanisms() Mechanisms           { return Mechanisms{Shadowing: true} }
func (chaosPolicy) AppStarted(sys *System, app *App) {}
func (chaosPolicy) EndEpoch(sys *System) {
	for i, a := range sys.StartedApps() {
		snap := a.Profiler.HeatSnapshot()
		for j, ph := range snap {
			to := mem.TierFast
			if (i+j)%2 == 0 {
				to = mem.TierSlow
			}
			a.Async.Enqueue(migrate.Move{VP: ph.VP, To: to})
		}
		a.Async.RunEpoch(sys.EpochCycles(), a.WriteProbability)
		// Also hammer the sync path with the hottest claims.
		if len(snap) > 8 {
			var moves []migrate.Move
			for _, ph := range snap[:8] {
				moves = append(moves, migrate.Move{VP: ph.VP, To: mem.TierFast})
			}
			a.Engine.MigrateSync(moves)
		}
	}
}

func TestAdversarialProfilerDoesNotCorruptState(t *testing.T) {
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("a", workload.LC, 1500, 0),
			tinyApp("b", workload.BE, 1500, 0),
		},
		EpochLength: 10 * sim.Millisecond,
		Policy:      chaosPolicy{},
		NewProfiler: func(app *App) profile.Profiler {
			return &adversarialProfiler{rng: app.rng.Fork(), extent: app.Cfg.RSSPages}
		},
		Seed: 13,
	})
	for i := 0; i < 25; i++ {
		sys.RunEpoch()
		if rep := sys.Audit(); !rep.Ok() {
			t.Fatalf("epoch %d: frame ownership corrupted: %v", i, rep.Errors[0])
		}
	}
	// Apps still make progress despite the chaos.
	for _, a := range sys.StartedApps() {
		if a.EpochOps() <= 0 {
			t.Fatalf("%s stopped making progress", a.Name())
		}
	}
}
