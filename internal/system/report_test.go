package system

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

func TestReportContents(t *testing.T) {
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("a", workload.LC, 800, 0),
			tinyApp("late", workload.BE, 400, sim.Time(1*sim.Second)),
		},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.Run(50 * sim.Millisecond)
	r := sys.Report()

	if r.Policy != "static" || r.Epochs != 5 {
		t.Fatalf("header: %+v", r)
	}
	if r.SimSeconds != 0.05 {
		t.Fatalf("sim seconds = %v", r.SimSeconds)
	}
	if r.FastCapacity != 256 || r.FastUsed != 256 {
		t.Fatalf("fast: %d/%d", r.FastUsed, r.FastCapacity)
	}
	if !r.AuditOK {
		t.Fatalf("audit: %v", r.AuditProblems)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("apps = %d", len(r.Apps))
	}
	a := r.Apps[0]
	if !a.Started || a.Name != "a" || a.Class != "LC" {
		t.Fatalf("app a: %+v", a)
	}
	if a.MeanPerf <= 0 || a.TotalOps <= 0 || a.RSSPages == 0 {
		t.Fatalf("app a metrics: %+v", a)
	}
	if a.THPGroups == 0 {
		t.Fatal("THP groups missing from report")
	}
	late := r.Apps[1]
	if late.Started || late.RSSPages != 0 {
		t.Fatalf("unstarted app leaked data: %+v", late)
	}
	if u := r.TierUtilization(); u != 1.0 {
		t.Fatalf("utilization = %v", u)
	}
	if (Report{}).TierUtilization() != 0 {
		t.Fatal("zero-capacity utilization not 0")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	var buf bytes.Buffer
	if err := sys.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Policy != "static" || len(back.Apps) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	if !strings.Contains(buf.String(), "\"fthr\"") {
		t.Fatal("expected field names missing")
	}
}

// TestReportWriteTextGolden pins the text formatter byte-for-byte: the
// table is parsed by eyeballs and by scripts in equal measure, so layout
// drift is a breaking change.
func TestReportWriteTextGolden(t *testing.T) {
	r := Report{
		Policy:       "vulcan",
		Epochs:       120,
		SimSeconds:   120,
		FastCapacity: 256,
		FastUsed:     200,
		CFI:          0.925,
		AuditOK:      true,
		Apps: []AppReport{
			{
				Name: "memcached", Class: "LC", Started: true,
				MeanPerf: 0.912, PerfCI95: 0.01, FTHR: 0.875,
				FastPages: 150, RSSPages: 400,
			},
			{Name: "idle", Class: "BE"},
		},
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "policy=vulcan  simulated=120s  fast tier used 200/256 pages\n" +
		"app          class         perf      ±ci95       fthr   fast pages    rss pages\n" +
		"memcached    LC           0.912      0.010      0.875          150          400\n" +
		"idle         (never started)\n" +
		"CFI (FTHR-weighted cumulative fairness, Eq.4): 0.925\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestReportWriteTextAuditWarning(t *testing.T) {
	r := Report{
		Policy:        "static",
		Apps:          []AppReport{{Name: "a", Class: "LC"}},
		AuditProblems: []string{"frame 7 double-owned"},
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "frame 7 double-owned") {
		t.Fatalf("audit warning missing:\n%s", buf.String())
	}
}

func TestReportWriteTextEmptyRun(t *testing.T) {
	var buf bytes.Buffer
	err := (Report{Policy: "vulcan"}).WriteText(&buf)
	if err == nil {
		t.Fatal("empty run accepted")
	}
	if !strings.Contains(err.Error(), "empty run") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("partial output on error: %q", buf.String())
	}
}

func TestSystemAccessors(t *testing.T) {
	pol := NullPolicy{}
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
		Policy:      pol,
	})
	if sys.Cores() != 8 {
		t.Fatalf("Cores = %d", sys.Cores())
	}
	if sys.EpochLength() != 10*sim.Millisecond {
		t.Fatalf("EpochLength = %v", sys.EpochLength())
	}
	if sys.Policy().Name() != "static" {
		t.Fatal("Policy accessor wrong")
	}
	if len(sys.Apps()) != 1 {
		t.Fatal("Apps accessor wrong")
	}
	if got := sys.Mechanisms(); got != (Mechanisms{}) {
		t.Fatalf("Mechanisms = %+v", got)
	}
	sys.RunEpoch()
	a := sys.App("a")
	if a.Name() != "a" || a.Class() != workload.LC {
		t.Fatal("App accessors wrong")
	}
	if a.CostModel().CopyPerPage <= 0 {
		t.Fatal("CostModel accessor wrong")
	}
	if a.SampleWeight() <= 0 {
		t.Fatal("SampleWeight accessor wrong")
	}
	util := sys.BandwidthUtil()
	if util[0] < 0 || util[1] < 0 {
		t.Fatal("BandwidthUtil negative")
	}
	if sys.Audit().String() == "" {
		t.Fatal("audit String empty")
	}
}

func TestMechanismOverride(t *testing.T) {
	override := Mechanisms{OptimizedPrep: true}
	sys := New(Config{
		Machine:           tinyMachine(256, 2048),
		Apps:              []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength:       10 * sim.Millisecond,
		Policy:            NullPolicy{}, // declares no mechanisms
		MechanismOverride: &override,
	})
	if got := sys.Mechanisms(); got != override {
		t.Fatalf("override ignored: %+v", got)
	}
}

func TestChargeStallNegativePanics(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	defer func() {
		if recover() == nil {
			t.Fatal("negative stall did not panic")
		}
	}()
	sys.App("a").ChargeStall(-1)
}

func TestOpenLoopSaturation(t *testing.T) {
	// An open-loop app whose arrival rate exceeds CPU capacity saturates:
	// its throughput caps at capacity and perf degrades accordingly.
	mk := func(rate float64) (ops, perf float64) {
		cfg := tinyApp("a", workload.LC, 500, 0)
		cfg.OpsPerSec = rate
		cfg.ComputeNs = 1000 * sim.Nanosecond // 1µs/op -> ~2M ops/s on 2 threads
		sys := New(Config{
			Machine:     tinyMachine(256, 2048),
			Apps:        []workload.AppConfig{cfg},
			EpochLength: 10 * sim.Millisecond,
			Seed:        3,
		})
		sys.RunEpoch()
		a := sys.App("a")
		return a.EpochOps(), a.NormalizedPerf().Mean()
	}
	lowOps, lowPerf := mk(1e5)
	highOps, highPerf := mk(1e9) // far beyond capacity
	if lowOps >= highOps {
		t.Fatalf("ops did not grow with arrivals: %v vs %v", lowOps, highOps)
	}
	// At 1e9/s arrivals the CPU caps throughput well below arrivals.
	if highOps > 3e7*0.01*2 { // 2 threads x 10ms at ~1µs/op upper bound
		t.Fatalf("saturated ops = %v, impossibly high", highOps)
	}
	if highPerf >= lowPerf {
		t.Fatalf("saturation did not degrade perf: %v vs %v", highPerf, lowPerf)
	}
}
