package system

import (
	"testing"

	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

func TestHugeSetGrouping(t *testing.T) {
	h := NewHugeSet(1536) // exactly 3 groups
	if h.HugeGroups() != 3 {
		t.Fatalf("groups = %d, want 3", h.HugeGroups())
	}
	if !h.IsHuge(0) || !h.IsHuge(511) || !h.IsHuge(1535) {
		t.Fatal("pages inside groups not huge")
	}
	if h.IsHuge(1536) {
		t.Fatal("page beyond RSS huge")
	}
	// A partial tail group stays base-mapped.
	h2 := NewHugeSet(1000) // 1 full group + 488 tail pages
	if h2.HugeGroups() != 1 {
		t.Fatalf("partial-tail groups = %d, want 1", h2.HugeGroups())
	}
	if h2.IsHuge(700) {
		t.Fatal("tail page mapped huge")
	}
}

func TestHugeSetSplit(t *testing.T) {
	h := NewHugeSet(1024)
	if !h.Split(5) {
		t.Fatal("first split failed")
	}
	if h.Split(100) { // same group (0..511)
		t.Fatal("second split of same group reported true")
	}
	if h.IsHuge(5) || h.IsHuge(100) {
		t.Fatal("group still huge after split")
	}
	if !h.IsHuge(512) {
		t.Fatal("neighbouring group lost huge-ness")
	}
	if h.Splits() != 1 {
		t.Fatalf("splits = %d", h.Splits())
	}
}

func TestHugeSetNilSafe(t *testing.T) {
	var h *HugeSet
	if h.IsHuge(0) || h.Split(0) || h.HugeGroups() != 0 || h.Splits() != 0 {
		t.Fatal("nil HugeSet not inert")
	}
}

func TestHugeTLBTagDisjoint(t *testing.T) {
	// Huge tags must never collide with base-page numbers.
	if hugeTLBTag(0) <= pagetable.MaxVPage {
		t.Fatal("huge tag overlaps base vpage space")
	}
	if hugeTLBTag(0) == hugeTLBTag(512) {
		t.Fatal("distinct groups share a tag")
	}
	if hugeTLBTag(0) != hugeTLBTag(511) {
		t.Fatal("same group has distinct tags")
	}
}

func TestTHPEnabledByDefault(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 2000, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	a := sys.App("a")
	if a.Huge() == nil {
		t.Fatal("THP not enabled by default")
	}
	// 2000 premapped pages -> 3 full groups.
	if got := a.Huge().HugeGroups(); got != 3 {
		t.Fatalf("huge groups = %d, want 3", got)
	}
}

func TestTHPDisable(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 2000, 0)},
		EpochLength: 10 * sim.Millisecond,
		DisableTHP:  true,
	})
	sys.RunEpoch()
	if sys.App("a").Huge() != nil {
		t.Fatal("THP active despite DisableTHP")
	}
}

func TestTHPImprovesTLBHitRate(t *testing.T) {
	run := func(disable bool) float64 {
		sys := New(Config{
			Machine:     tinyMachine(256, 1<<15),
			Apps:        []workload.AppConfig{tinyApp("a", workload.BE, 20000, 0)},
			EpochLength: 10 * sim.Millisecond,
			DisableTHP:  disable,
			Seed:        3,
		})
		for i := 0; i < 5; i++ {
			sys.RunEpoch()
		}
		hits, misses := uint64(0), uint64(0)
		for _, tb := range sys.App("a").TLBs {
			st := tb.Stats()
			hits += st.Hits
			misses += st.Misses
		}
		return float64(hits) / float64(hits+misses)
	}
	withTHP := run(false)
	without := run(true)
	if withTHP <= without {
		t.Fatalf("THP did not improve TLB hit rate: %v vs %v", withTHP, without)
	}
}

func TestTHPSplitOnMigration(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(1024, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 2000, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	a := sys.App("a")
	groupsBefore := a.Huge().HugeGroups()

	// Demote one fast page from a huge group: its covering group must
	// split and the cost must appear in the breakdown.
	victim := pagetable.VPage(0) // premapped first-touch into fast
	if p, _ := a.Table.Lookup(victim); p.Frame().Tier != 0 {
		t.Fatal("setup: page 0 not in fast tier")
	}
	if !a.Huge().IsHuge(victim) {
		t.Fatal("setup: page 0 not huge")
	}
	res := a.Engine.MigrateSync([]migrate.Move{{VP: victim, To: 1}})
	if res.Moved != 1 {
		t.Fatalf("migration failed: %+v", res)
	}
	if res.Breakdown.Split != sys.Cost().THPSplitCycles {
		t.Fatalf("split cost = %v, want %v", res.Breakdown.Split, sys.Cost().THPSplitCycles)
	}
	if a.Huge().HugeGroups() != groupsBefore-1 {
		t.Fatal("group did not split")
	}
	// Second migration in the same (now split) group: no second charge.
	res2 := a.Engine.MigrateSync([]migrate.Move{{VP: victim + 1, To: 1}})
	if res2.Moved != 1 {
		t.Fatalf("second migration failed: %+v", res2)
	}
	if res2.Breakdown.Split != 0 {
		t.Fatalf("already-split group charged again: %v", res2.Breakdown.Split)
	}
}
