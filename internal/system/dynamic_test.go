package system

import (
	"bytes"
	"testing"

	"vulcan/internal/obs"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

func dynConfig(apps ...workload.AppConfig) Config {
	return Config{
		Machine:      tinyMachine(256, 4096),
		Apps:         apps,
		AllowDynamic: true,
		EpochLength:  10 * sim.Millisecond,
		Obs:          obs.NewRecorder(),
		Seed:         7,
	}
}

func TestAddAppRequiresDynamic(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	if _, err := sys.AddApp(tinyApp("b", workload.BE, 100, 0)); err == nil {
		t.Fatal("AddApp accepted on a static system")
	}
	if err := sys.StopApp(sys.App("a")); err == nil {
		t.Fatal("StopApp accepted on a static system")
	}
}

func TestAddAppLifecycle(t *testing.T) {
	sys := New(dynConfig(tinyApp("a", workload.LC, 300, 0)))
	sys.RunEpoch()
	if !sys.App("a").Started() {
		t.Fatal("seed app not admitted")
	}

	// Duplicate names are rejected; live names include stopped apps.
	if _, err := sys.AddApp(tinyApp("a", workload.BE, 100, 0)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Thread capacity: 8 cores, 2 committed; a 7-thread newcomer cannot fit.
	big := tinyApp("big", workload.BE, 100, 0)
	big.Threads = 7
	if _, err := sys.AddApp(big); err == nil {
		t.Fatal("over-capacity app accepted")
	}

	b, err := sys.AddApp(tinyApp("b", workload.BE, 200, 0))
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	if b.Started() {
		t.Fatal("AddApp admitted immediately; admission is RunEpoch's job")
	}
	sys.RunEpoch()
	if !b.Started() {
		t.Fatal("added app not admitted on the next epoch")
	}
	if len(sys.StartedApps()) != 2 {
		t.Fatalf("started = %d, want 2", len(sys.StartedApps()))
	}
}

func TestStopAppFreesFrames(t *testing.T) {
	sys := New(dynConfig(
		tinyApp("a", workload.LC, 300, 0),
		tinyApp("b", workload.BE, 300, 0),
	))
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	a := sys.App("a")
	heldFast, heldRSS := a.FastPages(), a.RSSMapped()
	if heldRSS == 0 {
		t.Fatal("app a mapped nothing")
	}
	fastBefore := sys.Tiers().Fast().Used()
	opsBefore := a.TotalOps()

	if err := sys.StopApp(a); err != nil {
		t.Fatalf("StopApp: %v", err)
	}
	if !a.Stopped() || a.Started() {
		t.Fatal("stop flags wrong")
	}
	if err := sys.StopApp(a); err == nil {
		t.Fatal("double stop accepted")
	}
	if got := sys.Tiers().Fast().Used(); got > fastBefore-heldFast {
		t.Fatalf("fast tier used %d after stop, want <= %d", got, fastBefore-heldFast)
	}
	if a.TotalOps() != opsBefore {
		t.Fatal("stop changed the durable ops summary")
	}
	if len(sys.StartedApps()) != 1 {
		t.Fatalf("started = %d after stop, want 1", len(sys.StartedApps()))
	}

	// The system keeps running cleanly without the departed tenant, and
	// the frame-ownership audit stays green.
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	if audit := sys.Audit(); !audit.Ok() {
		t.Fatalf("audit after eviction: %v", audit.Errors)
	}
	rep := sys.Report()
	if !rep.Apps[0].Stopped {
		t.Fatal("report does not mark app a stopped")
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text.Bytes(), []byte("(stopped)")) {
		t.Fatalf("text report misses stopped marker:\n%s", text.String())
	}
}

// dynScript drives one deterministic add/stop schedule: the same calls
// at the same epoch boundaries, whatever system it is handed. Epochs
// are absolute (the schedule is consulted before each RunEpoch), so a
// resumed system continues mid-script.
func dynScript(t *testing.T, sys *System, from, to int) {
	t.Helper()
	for e := from; e < to; e++ {
		switch e {
		case 2:
			if _, err := sys.AddApp(tinyApp("b", workload.BE, 200, 0)); err != nil {
				t.Fatalf("add b: %v", err)
			}
		case 4:
			if err := sys.StopApp(sys.App("a")); err != nil {
				t.Fatalf("stop a: %v", err)
			}
		case 6:
			if _, err := sys.AddApp(tinyApp("c", workload.LC, 250, 0)); err != nil {
				t.Fatalf("add c: %v", err)
			}
		}
		sys.RunEpoch()
	}
}

// appsAddedBy returns the cfg.Apps list a resume at epoch `split` must
// present: every app the script has added before that boundary, in
// AddApp order.
func appsAddedBy(split int) []workload.AppConfig {
	apps := []workload.AppConfig{tinyApp("a", workload.LC, 300, 0)}
	if split > 2 {
		apps = append(apps, tinyApp("b", workload.BE, 200, 0))
	}
	if split > 6 {
		apps = append(apps, tinyApp("c", workload.LC, 250, 0))
	}
	return apps
}

func TestDynamicCheckpointResumeByteIdentical(t *testing.T) {
	const total = 10
	for _, split := range []int{3, 5, 7} {
		golden := New(dynConfig(appsAddedBy(0)...))
		dynScript(t, golden, 0, total)
		want := dump(t, golden)

		first := New(dynConfig(appsAddedBy(0)...))
		dynScript(t, first, 0, split)
		var blob bytes.Buffer
		if err := first.Checkpoint(&blob); err != nil {
			t.Fatalf("split %d: checkpoint: %v", split, err)
		}
		resumed, err := Resume(bytes.NewReader(blob.Bytes()), dynConfig(appsAddedBy(split)...))
		if err != nil {
			t.Fatalf("split %d: resume: %v", split, err)
		}
		dynScript(t, resumed, split, total)
		got := dump(t, resumed)
		if !bytes.Equal(want, got) {
			t.Fatalf("split %d: resumed dynamic run diverged (%d vs %d bytes)", split, len(want), len(got))
		}
	}
}

func TestDynamicCheckpointCorruptionNeverPanics(t *testing.T) {
	sys := New(dynConfig(appsAddedBy(0)...))
	dynScript(t, sys, 0, 5) // past the stop at epoch 4
	var blob bytes.Buffer
	if err := sys.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	raw := blob.Bytes()
	for n := 0; n < len(raw); n += 7 {
		if _, err := Resume(bytes.NewReader(raw[:n]), dynConfig(appsAddedBy(5)...)); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	for i := 0; i < len(raw); i += 11 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5a
		if _, err := Resume(bytes.NewReader(mut), dynConfig(appsAddedBy(5)...)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}
