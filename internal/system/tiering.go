// Package system is the co-location runtime: it binds the simulated
// machine, the co-located applications (each a process with its own
// replicated page table, per-thread TLBs, migration engine and profiler),
// and a pluggable tiering policy, then advances them in epochs.
//
// Each epoch the system (1) simulates a representative sample of memory
// accesses per thread, measuring achieved performance under current page
// placement, (2) lets profilers harvest their signals, and (3) hands
// control to the Tiering policy, which inspects per-app state and issues
// promotions/demotions through each app's migration engine. Sync
// migration stalls and profiling overheads are charged against app time;
// async migration consumes dedicated migration-thread budget.
package system

import (
	"vulcan/internal/mem"
	"vulcan/internal/profile"
)

// Mechanisms selects which of Vulcan's mechanism-level optimizations a
// policy's migration engines run with. Baselines (TPP, Memtis) use none;
// Nomad uses shadowing; Vulcan uses all three.
type Mechanisms struct {
	// OptimizedPrep: per-application LRU drain instead of the kernel's
	// global on_each_cpu synchronization (§3.2).
	OptimizedPrep bool
	// TargetedShootdown: per-thread page tables bound shootdown IPIs to
	// sharing threads (§3.4).
	TargetedShootdown bool
	// Shadowing: retain slow-tier copies of promoted pages for remap-only
	// demotion (§3.5).
	Shadowing bool
}

// Tiering is a pluggable tiered-memory management policy. Implementations
// live in internal/policy (TPP, Memtis, Nomad, static) and internal/core
// (Vulcan).
type Tiering interface {
	// Name identifies the policy in reports.
	Name() string
	// Mechanisms declares the engine-level optimizations the policy's
	// migrations use.
	Mechanisms() Mechanisms
	// AppStarted is invoked once when an application is admitted, before
	// its first epoch (e.g. to size per-app quotas).
	AppStarted(sys *System, app *App)
	// EndEpoch runs after access simulation and profiler harvest; the
	// policy issues migrations here via app.Engine / app.Async and may
	// charge stalls with app.ChargeStall.
	EndEpoch(sys *System)
}

// Rescorer is optionally implemented by policies that can re-evaluate a
// subset of applications between whole-epoch recomputes. When
// Config.IncrementalRescore is set, the system invokes it with the
// dirty set — newly admitted apps, a departing app, an app whose
// intensity changed — right when the change lands, so quotas adjust in
// the same epoch instead of one epoch late. Implementations must only
// rescore the dirty apps (settled tenants keep their allocations) and
// stay deterministic: the dirty slice arrives in admission order.
type Rescorer interface {
	Reevaluate(sys *System, dirty []*App)
}

// ProfilerFactory is optionally implemented by policies that bring their
// own profiling mechanism (TPP: hint faults; Memtis: PEBS; Vulcan:
// hybrid). Without it the system default applies.
type ProfilerFactory interface {
	NewProfiler(app *App) profile.Profiler
}

// Placer is optionally implemented by policies that control where a
// page's first-touch allocation lands. Without it the system allocates
// fast-first with slow fallback (Linux default).
type Placer interface {
	// Place returns the tier for a new page of app. Returning an invalid
	// tier falls back to the default placement.
	Place(sys *System, app *App) mem.TierID
}

// NullPolicy performs no migrations — the static first-touch baseline.
type NullPolicy struct{}

// Name implements Tiering.
func (NullPolicy) Name() string { return "static" }

// Mechanisms implements Tiering.
func (NullPolicy) Mechanisms() Mechanisms { return Mechanisms{} }

// AppStarted implements Tiering.
func (NullPolicy) AppStarted(*System, *App) {}

// EndEpoch implements Tiering.
func (NullPolicy) EndEpoch(*System) {}
