package system

import (
	"fmt"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/metrics"
	"vulcan/internal/migrate"
	"vulcan/internal/obs/prof"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/sim"
	"vulcan/internal/tlb"
	"vulcan/internal/workload"
)

// App is one admitted application: a simulated process with its own
// address space, threads, TLBs, profiler and migration engine.
type App struct {
	Cfg   workload.AppConfig
	Index int

	Table    *pagetable.Replicated
	TLBs     []*tlb.TLB
	Threads  []*workload.Thread
	Engine   *migrate.Engine
	Async    *migrate.AsyncMigrator
	Profiler profile.Profiler //vulcan:nosnap snapshotted at the system layer via profile.SnapshotProfiler
	// Retry is the bounded-retry queue for transiently-failed
	// migrations; nil on fault-free runs.
	Retry *migrate.Retrier

	sys     *System //vulcan:nosnap construction wiring, bound when the system admits the app
	rng     *sim.RNG
	started bool
	// stopped marks an app evicted by StopApp: its frames are freed and
	// it never runs again, but it keeps its slot (indices, recorder
	// series and fairness history stay stable) and its durable summary
	// statistics for reporting.
	stopped bool
	huge    *HugeSet // nil when THP disabled

	// acct is the app's resolved cost-account set; every field is nil on
	// unprofiled runs and all charges are nil-safe no-ops.
	acct appAccounts //vulcan:nosnap observer-only cost accounting, rebuilt at admission

	// sampleWeight converts one simulated sample access into real
	// operations, so heat is comparable across apps with different
	// intensities. It lags one epoch.
	sampleWeight float64

	// Per-epoch measurements (reset each epoch; checkpoints are cut at
	// epoch boundaries, where these are always zero). epochActualCyc is
	// the measured per-operation cycles across the samples;
	// epochIdealCyc is the same samples under all-fast, TLB-hit
	// placement.
	epochFastSamples float64 //vulcan:nosnap per-epoch scratch, zero at epoch boundaries
	epochSlowSamples float64 //vulcan:nosnap per-epoch scratch, zero at epoch boundaries
	epochActualCyc   float64 //vulcan:nosnap per-epoch scratch, zero at epoch boundaries
	epochIdealCyc    float64 //vulcan:nosnap per-epoch scratch, zero at epoch boundaries
	// epochEventCyc accumulates per-page events (hint faults, leaf links,
	// demand faults) that occur once per page rather than once per
	// operation; they are epoch overhead, not per-op latency.
	epochEventCyc float64 //vulcan:nosnap per-epoch scratch, zero at epoch boundaries
	epochOps      float64
	pendingStall  float64 // sync-migration cycles to charge next epoch

	// Telemetry accumulators (reset or harvested each epoch).
	epochDemandFaults int     //vulcan:nosnap per-epoch scratch, harvested and zeroed by EndEpoch
	epochTHPSplits    int     //vulcan:nosnap per-epoch scratch, harvested and zeroed by EndEpoch
	epochPerf         float64 // last epoch's normalized performance

	// Smoothed / cumulative state.
	fthr       *metrics.EMA
	totalOps   float64
	perfSeries *metrics.Running // normalized perf per epoch

	// Cached placement census, refreshed each epoch.
	fastPages int
	rssMapped int

	// Recorder series names, derived once from Cfg.Name so the per-epoch
	// accounting loop does not rebuild the same strings forever.
	keyFastPages string //vulcan:nosnap derived from Cfg.Name at construction
	keyFTHR      string //vulcan:nosnap derived from Cfg.Name at construction
	keyOps       string //vulcan:nosnap derived from Cfg.Name at construction

	// profileDegraded latches whether injected sample loss starved this
	// epoch's profile below the plan's confidence threshold; resilient
	// policies hold their prior placement instead of reacting to it.
	profileDegraded bool

	// intensityMilli scales the app's workload intensity in thousandths
	// (0 and 1000 both mean the configured intensity, so the default is
	// arithmetically inert). Dynamic systems adjust it at epoch
	// boundaries via System.SetIntensity.
	intensityMilli int
}

// Name returns the configured application name.
func (a *App) Name() string { return a.Cfg.Name }

// CostModel returns the machine's cost model (available once admitted).
func (a *App) CostModel() machine.CostModel { return a.sys.cost }

// Class returns LC or BE.
func (a *App) Class() workload.Class { return a.Cfg.Class }

// Started reports whether the app is currently admitted and running.
func (a *App) Started() bool { return a.started }

// Stopped reports whether the app was evicted by StopApp.
func (a *App) Stopped() bool { return a.stopped }

// FTHR returns the smoothed fast-tier hit ratio (paper Eq. 1–2).
func (a *App) FTHR() float64 { return a.fthr.Value() }

// FastPages returns the app's pages resident in the fast tier (census at
// the last epoch boundary).
func (a *App) FastPages() int { return a.fastPages }

// RSSMapped returns the app's mapped page count.
func (a *App) RSSMapped() int { return a.rssMapped }

// EpochOps returns operations completed in the last finished epoch.
func (a *App) EpochOps() float64 { return a.epochOps }

// TotalOps returns cumulative operations.
func (a *App) TotalOps() float64 { return a.totalOps }

// NormalizedPerf returns the mean of per-epoch performance normalized to
// the app's own all-fast ideal (1.0 = as if its whole working set were in
// fast memory with no migration interference).
func (a *App) NormalizedPerf() *metrics.Running { return a.perfSeries }

// IntensityMilli returns the app's intensity override in thousandths of
// the configured workload intensity (1000 = as configured).
func (a *App) IntensityMilli() int {
	if a.intensityMilli == 0 {
		return 1000
	}
	return a.intensityMilli
}

// ChargeStall debits cycles of synchronous migration stall against the
// app's next epoch (promotions on the critical path, TPP-style).
func (a *App) ChargeStall(cycles float64) {
	if cycles < 0 {
		panic("system: negative stall")
	}
	a.pendingStall += cycles
}

// SampleWeight returns real operations represented by one sample access.
func (a *App) SampleWeight() float64 { return a.sampleWeight }

// ProfileDegraded reports whether the last epoch's profile was starved
// below the fault plan's confidence threshold (always false on
// fault-free runs). Policies use it to degrade gracefully: hold the
// prior placement rather than chase a profile built from lost samples.
func (a *App) ProfileDegraded() bool { return a.profileDegraded }

// WriteProbability estimates the chance that a page is written during
// one migration copy window — the dirty-retry input for transactional
// async migration. It combines the page's profiled write fraction with
// its heat (a write-heavy page that is barely touched rarely dirties a
// copy in flight).
func (a *App) WriteProbability(vp pagetable.VPage) float64 {
	wf := a.Profiler.WriteFraction(vp)
	if wf == 0 {
		return 0
	}
	heat := a.Profiler.Heat(vp)
	intensity := heat / (heat + 1000)
	p := wf * intensity * 1.8
	if p > 0.98 {
		p = 0.98
	}
	return p
}

// appAccounts is one app's use-plane cost-account set (DESIGN.md §13),
// plus the mechanism-plane profiler-harvest account. Resolved once at
// admission so the epoch hot loop only touches pre-bound pointers.
type appAccounts struct {
	prof *prof.Profiler

	// Use plane: these partition the app's per-epoch CPU budget.
	compute     *prof.Account // system/compute: the per-op compute term
	llc         *prof.Account // system/llc: accesses absorbed by the CPU cache
	idle        *prof.Account // system/idle: budget left unspent (open-loop slack)
	stall       *prof.Account // system/stall: migration/profiling stall consumed
	accessFast  *prof.Account // machine/access {tier=fast}: memory term, baseline
	accessSlow  *prof.Account // machine/access {tier=slow}
	spikeFast   *prof.Account // fault/latency-spike {tier=fast}: injected stretch
	spikeSlow   *prof.Account // fault/latency-spike {tier=slow}
	demandFault *prof.Account // machine/demand-fault: first-touch page mapping
	leafLink    *prof.Account // machine/leaf-link: replicated-PTE leaf sharing
	record      *prof.Account // profile/record: in-epoch hint-fault overhead

	// Mechanism plane.
	profEpoch *prof.Account // profile/epoch: end-of-epoch harvest overhead
}

// newAppAccounts resolves one app's account set; a nil profiler yields
// the all-nil (disabled) set.
func newAppAccounts(p *prof.Profiler, app string) appAccounts {
	if p == nil {
		return appAccounts{}
	}
	return appAccounts{
		prof:        p,
		compute:     p.Account("system/compute", app, "", false),
		llc:         p.Account("system/llc", app, "", false),
		idle:        p.Account("system/idle", app, "", false),
		stall:       p.Account("system/stall", app, "", false),
		accessFast:  p.Account("machine/access", app, "fast", false),
		accessSlow:  p.Account("machine/access", app, "slow", false),
		spikeFast:   p.Account("fault/latency-spike", app, "fast", false),
		spikeSlow:   p.Account("fault/latency-spike", app, "slow", false),
		demandFault: p.Account("machine/demand-fault", app, "", false),
		leafLink:    p.Account("machine/leaf-link", app, "", false),
		record:      p.Account("profile/record", app, "", false),
		profEpoch:   p.Account("profile/epoch", app, "", true),
	}
}

// admit builds the app's runtime state and premaps its RSS with
// first-touch placement (the paper's workloads are warmed before
// measurement).
func (a *App) admit(sys *System, placer Placer) {
	a.sys = sys
	a.acct = newAppAccounts(sys.prof, a.Cfg.Name)
	a.Table = pagetable.NewReplicated(a.Cfg.Threads)
	a.TLBs = make([]*tlb.TLB, a.Cfg.Threads)
	for i := range a.TLBs {
		a.TLBs[i] = tlb.New(tlb.DefaultEntries)
	}
	a.Threads = workload.BuildThreads(a.Cfg, a.rng)
	a.fthr = metrics.NewEMA(FTHRAlpha)
	a.perfSeries = &metrics.Running{}
	a.sampleWeight = 1

	mech := sys.mechanisms()
	engCfg := migrate.Config{
		Cost:              sys.cost,
		Tiers:             sys.tiers,
		Table:             a.Table,
		Cpus:              sys.cores,
		ProcessThreads:    a.Cfg.Threads,
		OptimizedPrep:     mech.OptimizedPrep,
		TargetedShootdown: mech.TargetedShootdown,
		Shadowing:         mech.Shadowing,
		Invalidate:        a.invalidateTLBs,
		PreMigrate:        a.splitTHP,
		Obs:               sys.obs,
		Owner:             a.Cfg.Name,
		Prof:              prof.NewEngineAccounts(sys.prof, a.Cfg.Name),
	}
	if sys.inj != nil {
		// Assigned only when non-nil so the interface field stays truly
		// nil (not a typed nil) on fault-free runs.
		engCfg.Inject = sys.inj
		engCfg.OnBusy = func(mv migrate.Move) { a.Retry.NoteBusy(mv) }
		engCfg.OnIPIDelay = a.noteDelayedAcks
	}
	eng := migrate.NewEngine(engCfg)
	a.Engine = eng
	if sys.inj != nil {
		plan := sys.inj.Plan()
		a.Retry = migrate.NewRetrier(migrate.RetryConfig{
			Engine:      eng,
			Budget:      plan.RetryBudget,
			MaxAttempts: plan.RetryMaxAttempts,
			BackoffBase: plan.RetryBackoffEpochs,
			BackoffCap:  plan.RetryBackoffCap,
		})
	}
	a.Async = migrate.NewAsyncMigrator(migrate.AsyncConfig{
		Engine:     eng,
		MaxRetries: 3,
		BatchPages: 64,
		MaxBacklog: sys.cfg.AsyncMaxBacklog,
		RNG:        a.rng.Fork(),
	})
	if pf, ok := sys.policy.(ProfilerFactory); ok {
		a.Profiler = pf.NewProfiler(a)
	} else {
		a.Profiler = sys.cfg.NewProfiler(a)
	}
	if sys.inj != nil {
		if sf := sys.inj.Profile(a.Cfg.Name); sf != nil {
			a.Profiler = profile.NewFaulty(a.Profiler, sf)
		}
	}

	a.premap(placer)
	if !sys.cfg.DisableTHP {
		a.huge = NewHugeSet(a.rssMapped)
	}
	a.started = true
}

// splitTHP breaks the huge mapping covering a page about to migrate,
// returning the one-time split cost (§3.5).
func (a *App) splitTHP(vp pagetable.VPage) float64 {
	if a.huge.Split(vp) {
		a.epochTHPSplits++
		return a.sys.cost.THPSplitCycles
	}
	return 0
}

// TLBStats aggregates the app's per-thread TLB counters.
func (a *App) TLBStats() tlb.Stats {
	var s tlb.Stats
	for _, t := range a.TLBs {
		s = s.Merge(t.Stats())
	}
	return s
}

// Huge exposes the app's THP state (nil when disabled).
func (a *App) Huge() *HugeSet { return a.huge }

// invalidateTLBs evicts vp from the TLBs of the threads in scope.
func (a *App) invalidateTLBs(vp pagetable.VPage, threads []int) {
	for _, t := range threads {
		if t >= 0 && t < len(a.TLBs) {
			a.TLBs[t].Invalidate(vp)
		}
	}
}

// noteDelayedAcks records an injected IPI-acknowledgment delay on each
// affected thread's TLB counters (the cycle cost is charged by the
// engine; threads is engine scratch and must not be retained).
func (a *App) noteDelayedAcks(threads []int) {
	for _, t := range threads {
		if t >= 0 && t < len(a.TLBs) {
			a.TLBs[t].NoteDelayedAck()
		}
	}
}

// premap faults in the RSS (or the configured fraction of it): private
// slices by their owning thread, the shared region round-robin (true
// sharing emerges as threads touch). Pages beyond the premapped prefix
// demand-fault as the access stream reaches them, growing the resident
// set over time.
func (a *App) premap(placer Placer) {
	sharedPages := int(float64(a.Cfg.RSSPages) * a.Cfg.SharedFraction)
	if sharedPages < 1 {
		sharedPages = 1
	}
	privPer := (a.Cfg.RSSPages - sharedPages) / a.Cfg.Threads
	mapped := sharedPages + privPer*a.Cfg.Threads
	frac := a.Cfg.PremapFraction
	if frac == 0 {
		frac = 1
	}
	mapped = int(float64(mapped) * frac)
	for vp := 0; vp < mapped; vp++ {
		tid := 0
		if vp < sharedPages {
			tid = vp % a.Cfg.Threads
		} else {
			tid = (vp - sharedPages) / privPer
		}
		a.mapNewPage(pagetable.VPage(vp), tid, placer)
	}
	a.rssMapped = a.Table.Mapped()
}

// mapNewPage allocates a frame (policy placement with fast-first
// fallback) and installs the mapping with tid as owner.
func (a *App) mapNewPage(vp pagetable.VPage, tid int, placer Placer) {
	var frame mem.Frame
	var ok bool
	if placer != nil {
		if tier := placer.Place(a.sys, a); tier.Valid() {
			frame, ok = a.sys.tiers.Alloc(tier)
			if !ok && tier == mem.TierFast {
				frame, ok = a.sys.tiers.Alloc(mem.TierSlow)
			} else if !ok {
				frame, ok = a.sys.tiers.Alloc(mem.TierFast)
			}
		}
	}
	if !ok {
		frame, ok = a.sys.tiers.AllocPreferFast()
	}
	if !ok {
		panic(fmt.Sprintf("system: out of physical memory mapping %s page %d",
			a.Cfg.Name, vp))
	}
	if err := a.Table.Map(tid, vp, pagetable.NewPTE(frame, uint8(tid))); err != nil {
		panic(fmt.Sprintf("system: premap collision: %v", err))
	}
}

// runEpochAccesses simulates the app's memory activity for one epoch and
// computes achieved operations. samples is per thread.
//
//vulcan:hotpath
func (a *App) runEpochAccesses(samples int, epochCycles float64, bwUtil [mem.NumTiers]float64) {
	a.epochFastSamples, a.epochSlowSamples = 0, 0
	a.epochActualCyc, a.epochIdealCyc, a.epochEventCyc = 0, 0, 0
	a.epochDemandFaults = 0

	cost := a.sys.cost
	computeCyc := float64(a.Cfg.ComputeNs) * sim.CyclesPerNs
	fastTier := a.sys.tiers.Fast()

	// Cost-attribution accumulators (pure local float adds; charged once
	// at the end of the epoch, so the disabled profiler costs nothing on
	// the per-sample path).
	var llcHits, leafLinks float64
	var accFastCyc, accSlowCyc float64
	var spikeFastCyc, spikeSlowCyc float64
	var recordCyc float64

	for tid, th := range a.Threads {
		tlbT := a.TLBs[tid]
		for s := 0; s < samples; s++ {
			ref := th.Next()
			vp := pagetable.VPage(ref.Page)

			res, ok := a.Table.Touch(tid, vp, ref.Write)
			if !ok {
				// Beyond the premapped region (integer division slack):
				// demand-fault it in.
				a.mapNewPage(vp, tid, a.sys.placer)
				res, _ = a.Table.Touch(tid, vp, ref.Write)
				a.epochEventCyc += cost.MinorFaultCycles
				a.epochDemandFaults++
			}
			if res.LinkedLeaf {
				a.epochEventCyc += cost.LeafLinkCycles
				leafLinks++
			}

			frame := res.PTE.Frame()
			fast := frame.Tier == mem.TierFast

			// Shadow invalidation: a store to a promoted page makes its
			// slow-tier shadow stale (write-protection fault in Nomad).
			if ref.Write && a.Engine.HasShadow(vp) {
				a.Engine.InvalidateShadow(vp)
			}

			actual := computeCyc
			ideal := computeCyc
			if a.rng.Bool(ref.LLCHitProb) {
				// Served by the CPU cache: no memory traffic, invisible
				// to miss-based profilers.
				actual += LLCHitCycles
				ideal += LLCHitCycles
				llcHits++
			} else {
				// A huge mapping translates the whole 2MiB group through
				// one TLB entry.
				tag := vp
				if a.huge.IsHuge(vp) {
					tag = hugeTLBTag(vp)
				}
				hit := tlbT.Access(tag)
				tier := a.sys.tiers.Tier(frame.Tier)
				// An injected latency spike stretches the memory term;
				// the guard keeps fault-free epochs (spike 0 or 1) on
				// the untouched baseline expression. The all-fast ideal
				// is deliberately unfaulted — it is the no-chaos
				// reference the slowdown is measured against.
				memCyc := cost.AccessCycles(tier, hit, bwUtil[frame.Tier])
				if spike := a.sys.latSpike[frame.Tier]; spike > 1 {
					deg := cost.AccessCyclesDegraded(tier, hit, bwUtil[frame.Tier], spike)
					actual += deg
					// The stretch beyond the unfaulted baseline is the
					// injected fault's bill, not the memory tier's.
					if fast {
						spikeFastCyc += deg - memCyc
					} else {
						spikeSlowCyc += deg - memCyc
					}
				} else {
					actual += memCyc
				}
				if fast {
					accFastCyc += memCyc
				} else {
					accSlowCyc += memCyc
				}
				ideal += cost.AccessCycles(fastTier, true, bwUtil[mem.TierFast])
				// A profiling fault (hint-fault poisoning) fires once per
				// poisoned page, not once per operation: epoch overhead.
				rc := a.Profiler.Record(profile.Access{
					VP: vp, Thread: tid, Write: ref.Write, Fast: fast,
				})
				a.epochEventCyc += rc
				recordCyc += rc
				a.sys.tiers.RecordAccess(frame, ref.Write)
				if fast {
					a.epochFastSamples++
				} else {
					a.epochSlowSamples++
				}
			}
			a.epochActualCyc += actual
			a.epochIdealCyc += ideal
		}
	}

	// Convert sampled costs to epoch throughput: each thread has
	// epochCycles of CPU, minus its share of pending migration stalls.
	totalSamples := float64(samples * a.Cfg.Threads)
	avgActual := a.epochActualCyc / totalSamples
	avgIdeal := a.epochIdealCyc / totalSamples
	budget := epochCycles * float64(a.Cfg.Threads)
	stallConsumed := a.pendingStall
	available := budget - a.pendingStall - a.epochEventCyc
	if available < 0 {
		available = 0
	}
	a.pendingStall = 0
	capacityOps := available / avgActual

	if a.Cfg.OpsPerSec > 0 {
		// Open-loop service: arrivals bound throughput; performance is
		// per-operation latency relative to the all-fast ideal, degraded
		// further if the CPU cannot even keep up with arrivals.
		epochSeconds := epochCycles / sim.CyclesPerNs / 1e9
		arrivals := a.Cfg.OpsPerSec * epochSeconds
		if a.intensityMilli != 0 && a.intensityMilli != 1000 {
			// Intensity overrides scale the arrival rate; the branch keeps
			// default runs' float arithmetic untouched bit for bit.
			arrivals *= float64(a.intensityMilli) / 1000
		}
		a.epochOps = arrivals
		if a.epochOps > capacityOps {
			a.epochOps = capacityOps
		}
		perf := avgIdeal / avgActual
		if arrivals > 0 {
			perf *= a.epochOps / arrivals
		}
		a.epochPerf = perf
		a.perfSeries.Add(perf)
	} else {
		// Closed-loop: throughput-bound; performance is achieved ops
		// versus the all-fast ideal over the full epoch.
		a.epochOps = capacityOps
		idealOps := epochCycles * float64(a.Cfg.Threads) / avgIdeal
		a.epochPerf = a.epochOps / idealOps
		a.perfSeries.Add(a.epochPerf)
	}
	a.totalOps += a.epochOps
	a.sampleWeight = a.epochOps / totalSamples

	if a.acct.prof != nil {
		a.chargeEpochCost(epochCost{
			budget: budget, available: available, stall: stallConsumed,
			avgActual: avgActual, computeCyc: computeCyc,
			llcHits: llcHits, leafLinks: leafLinks,
			accFast: accFastCyc, accSlow: accSlowCyc,
			spikeFast: spikeFastCyc, spikeSlow: spikeSlowCyc,
			recordCyc: recordCyc, totalSamples: totalSamples,
		})
	}

	// FTHR sample (Eq. 1) and EMA update (Eq. 2).
	if a.epochFastSamples+a.epochSlowSamples > 0 {
		h := a.epochFastSamples / (a.epochFastSamples + a.epochSlowSamples)
		a.fthr.Update(h)
	}
}

// epochCost carries one epoch's accumulated cost components from the
// access loop to the attribution pass.
type epochCost struct {
	budget, available, stall float64
	avgActual, computeCyc    float64
	llcHits, leafLinks       float64
	accFast, accSlow         float64
	spikeFast, spikeSlow     float64
	recordCyc, totalSamples  float64
}

// chargeEpochCost partitions the epoch's CPU budget across the app's
// use-plane accounts (DESIGN.md §13). Per-sample costs scale by the
// epoch's sample weight (ops per sample), so the per-op components sum
// to the cycles actually spent on operations; event costs and consumed
// stall charge at face value; the remainder is idle slack. The books
// close to the budget up to float association — the figures-level
// coverage test pins the residual below 1%.
func (a *App) chargeEpochCost(ec epochCost) {
	c := &a.acct
	cost := a.sys.cost
	c.prof.AddBudget(ec.budget)
	sw := a.sampleWeight
	c.compute.ChargeN(sw*ec.computeCyc*ec.totalSamples, uint64(ec.totalSamples))
	if ec.llcHits > 0 {
		c.llc.ChargeN(sw*LLCHitCycles*ec.llcHits, uint64(ec.llcHits))
	}
	if a.epochFastSamples > 0 {
		c.accessFast.ChargeN(sw*ec.accFast, uint64(a.epochFastSamples))
	}
	if a.epochSlowSamples > 0 {
		c.accessSlow.ChargeN(sw*ec.accSlow, uint64(a.epochSlowSamples))
	}
	if ec.spikeFast > 0 {
		c.spikeFast.Charge(sw * ec.spikeFast)
	}
	if ec.spikeSlow > 0 {
		c.spikeSlow.Charge(sw * ec.spikeSlow)
	}
	if a.epochDemandFaults > 0 {
		c.demandFault.ChargeN(float64(a.epochDemandFaults)*cost.MinorFaultCycles,
			uint64(a.epochDemandFaults))
	}
	if ec.leafLinks > 0 {
		c.leafLink.ChargeN(ec.leafLinks*cost.LeafLinkCycles, uint64(ec.leafLinks))
	}
	if ec.recordCyc > 0 {
		c.record.ChargeN(ec.recordCyc, uint64(a.epochFastSamples+a.epochSlowSamples))
	}
	if ec.stall > 0 {
		c.stall.Charge(ec.stall)
	}
	if idle := ec.available - a.epochOps*ec.avgActual; idle > 0 {
		c.idle.Charge(idle)
	}
}

// refreshCensus reads tier placement from the page table's maintained
// counters — an O(1) read where the original implementation walked every
// present PTE per app per epoch.
func (a *App) refreshCensus() {
	a.fastPages = a.Table.FastMapped()
	a.rssMapped = a.Table.Mapped()
}

// LLCHitCycles is the cost of an access absorbed by the on-chip cache.
const LLCHitCycles = 40

// FTHRAlpha is the paper's EMA weight for FTHR smoothing (§3.3, α=0.8).
const FTHRAlpha = 0.8
