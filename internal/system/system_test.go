package system

import (
	"sort"
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// tinyMachine returns a small machine config so tests run in micro-scale.
func tinyMachine(fastPages, slowPages int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 8
	cfg.Tiers[mem.TierFast].CapacityPages = fastPages
	cfg.Tiers[mem.TierSlow].CapacityPages = slowPages
	return cfg
}

func tinyApp(name string, class workload.Class, pages int, startAt sim.Time) workload.AppConfig {
	return workload.AppConfig{
		Name:           name,
		Class:          class,
		Threads:        2,
		RSSPages:       pages,
		SharedFraction: 0.5,
		ComputeNs:      100 * sim.Nanosecond,
		StartAt:        startAt,
		NewGen: func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewZipfian(p, 0.99, 0.1, 0.1, rng)
		},
	}
}

func TestSystemSingleAppBasics(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	a := sys.App("a")
	if a == nil || !a.Started() {
		t.Fatal("app not admitted at epoch 0")
	}
	if a.RSSMapped() < 490 {
		t.Fatalf("premap mapped only %d pages", a.RSSMapped())
	}
	// First-touch fills fast (256) then slow.
	if a.FastPages() != 256 {
		t.Fatalf("fast pages = %d, want 256 (first-touch)", a.FastPages())
	}
	if a.EpochOps() <= 0 {
		t.Fatal("no operations completed")
	}
	if a.FTHR() <= 0 || a.FTHR() > 1 {
		t.Fatalf("FTHR = %v", a.FTHR())
	}
	if sys.Epoch() != 1 {
		t.Fatalf("epoch = %d", sys.Epoch())
	}
	if sys.Now() != sim.Time(10*sim.Millisecond) {
		t.Fatalf("clock = %v", sys.Now())
	}
}

func TestSystemStaggeredAdmission(t *testing.T) {
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("early", workload.LC, 300, 0),
			tinyApp("late", workload.BE, 300, sim.Time(25*sim.Millisecond)),
		},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch()
	if sys.App("late").Started() {
		t.Fatal("late app admitted early")
	}
	if len(sys.StartedApps()) != 1 {
		t.Fatalf("started = %d", len(sys.StartedApps()))
	}
	sys.RunEpoch() // t=10..20ms
	sys.RunEpoch() // t=20..30ms: StartAt 25ms > 20ms? admission checks at epoch start
	if sys.App("late").Started() {
		t.Fatal("late app admitted before its start time")
	}
	sys.RunEpoch() // t=30ms >= 25ms
	if !sys.App("late").Started() {
		t.Fatal("late app never admitted")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		sys := New(Config{
			Machine:     tinyMachine(256, 2048),
			Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
			EpochLength: 10 * sim.Millisecond,
			Seed:        42,
		})
		sys.Run(50 * sim.Millisecond)
		a := sys.App("a")
		return a.TotalOps(), a.FTHR()
	}
	ops1, fthr1 := run()
	ops2, fthr2 := run()
	if ops1 != ops2 || fthr1 != fthr2 {
		t.Fatalf("same seed diverged: ops %v/%v fthr %v/%v", ops1, ops2, fthr1, fthr2)
	}
}

func TestSystemSeedSensitivity(t *testing.T) {
	run := func(seed uint64) float64 {
		sys := New(Config{
			Machine:     tinyMachine(256, 2048),
			Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
			EpochLength: 10 * sim.Millisecond,
			Seed:        seed,
		})
		sys.Run(30 * sim.Millisecond)
		return sys.App("a").TotalOps()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical totals")
	}
}

// promoteAll is a test policy that synchronously promotes the hottest
// profiled pages each epoch.
type promoteAll struct{ charged bool }

func (promoteAll) Name() string             { return "promote-all" }
func (promoteAll) Mechanisms() Mechanisms   { return Mechanisms{} }
func (promoteAll) AppStarted(*System, *App) {}
func (p *promoteAll) EndEpoch(sys *System) {
	for _, a := range sys.StartedApps() {
		hot := make(map[pagetable.VPage]bool)
		var promote []migrate.Move
		for _, ph := range a.Profiler.HeatSnapshot() {
			hot[ph.VP] = true
			if pte, ok := a.Table.Lookup(ph.VP); ok && pte.Frame().Tier != mem.TierFast {
				promote = append(promote, migrate.Move{VP: ph.VP, To: mem.TierFast})
			}
			if len(hot) >= 64 {
				break
			}
		}
		// Make room: demote the coldest non-hot fast pages.
		type cold struct {
			vp   pagetable.VPage
			heat float64
		}
		var colds []cold
		a.Table.Range(func(vp pagetable.VPage, pte pagetable.PTE) bool {
			if pte.Frame().Tier == mem.TierFast && !hot[vp] {
				colds = append(colds, cold{vp, a.Profiler.Heat(vp)})
			}
			return true
		})
		sort.Slice(colds, func(i, j int) bool { return colds[i].heat < colds[j].heat })
		var demote []migrate.Move
		for _, c := range colds {
			if len(demote) >= len(promote) {
				break
			}
			demote = append(demote, migrate.Move{VP: c.vp, To: mem.TierSlow})
		}
		res := a.Engine.MigrateSync(append(demote, promote...))
		a.ChargeStall(res.Cycles())
		p.charged = true
	}
}

func TestSystemPolicyPromotionImprovesFTHR(t *testing.T) {
	pol := &promoteAll{}
	sys := New(Config{
		Machine:     tinyMachine(128, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 2000, 0)},
		EpochLength: 10 * sim.Millisecond,
		Policy:      pol,
	})
	sys.RunEpoch()
	early := sys.App("a").FTHR()
	sys.Run(200 * sim.Millisecond)
	late := sys.App("a").FTHR()
	if !pol.charged {
		t.Fatal("policy never ran")
	}
	// Hot Zipf head moves to fast: hit ratio must improve beyond the
	// first-touch baseline (128/2000 fast pages but hot head promoted).
	if late <= early {
		t.Fatalf("FTHR did not improve: %v -> %v", early, late)
	}
	// The optimal split of 128 fast pages across this workload's three
	// Zipf heads yields ~0.6; the greedy top-64 policy should reach ~0.45+.
	if late < 0.45 {
		t.Fatalf("FTHR = %v after promotion of Zipf head, want > 0.45", late)
	}
}

func TestSystemRecorderSeries(t *testing.T) {
	sys := New(Config{
		Machine:     tinyMachine(256, 2048),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.Run(30 * sim.Millisecond)
	for _, name := range []string{"a.fast_pages", "a.fthr", "a.ops", "fast_tier_used"} {
		if sys.Recorder().Series(name).Len() != 3 {
			t.Fatalf("series %s has %d points, want 3", name, sys.Recorder().Series(name).Len())
		}
	}
}

func TestSystemCFIAccumulates(t *testing.T) {
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("a", workload.LC, 400, 0),
			tinyApp("b", workload.BE, 400, 0),
		},
		EpochLength: 10 * sim.Millisecond,
	})
	sys.Run(30 * sim.Millisecond)
	idx := sys.CFI().Index()
	if idx <= 0 || idx > 1 {
		t.Fatalf("CFI = %v", idx)
	}
}

func TestSystemValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no apps": {Machine: tinyMachine(16, 16)},
		"too many threads": {
			Machine: tinyMachine(16, 1024),
			Apps: []workload.AppConfig{
				{
					Name: "x", Threads: 64, RSSPages: 10,
					NewGen: func(p int, rng *sim.RNG) workload.Generator {
						return workload.NewUniform(p, 0, 0, rng)
					},
				},
			},
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPartialPremapGrowsRSS(t *testing.T) {
	cfg := tinyApp("a", workload.LC, 2000, 0)
	cfg.PremapFraction = 0.25
	sys := New(Config{
		Machine:     tinyMachine(256, 4096),
		Apps:        []workload.AppConfig{cfg},
		EpochLength: 10 * sim.Millisecond,
		Seed:        21,
	})
	sys.RunEpoch()
	a := sys.App("a")
	initial := a.RSSMapped()
	if initial >= 1200 {
		t.Fatalf("premap mapped %d pages, want ~quarter of 2000", initial)
	}
	for i := 0; i < 30; i++ {
		sys.RunEpoch()
	}
	grown := a.RSSMapped()
	if grown <= initial {
		t.Fatalf("RSS did not grow: %d -> %d", initial, grown)
	}
	if rep := sys.Audit(); !rep.Ok() {
		t.Fatalf("audit failed under growth: %v", rep.Errors)
	}
}

func TestPremapFractionValidation(t *testing.T) {
	cfg := tinyApp("a", workload.LC, 100, 0)
	cfg.PremapFraction = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("invalid premap fraction did not panic")
		}
	}()
	cfg.Validate()
}

func TestSystemStallReducesThroughput(t *testing.T) {
	mk := func(stall bool) float64 {
		sys := New(Config{
			Machine:     tinyMachine(256, 2048),
			Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 500, 0)},
			EpochLength: 10 * sim.Millisecond,
			Seed:        9,
		})
		sys.RunEpoch()
		a := sys.App("a")
		if stall {
			// Half the app's epoch time in migration stalls.
			a.ChargeStall(sys.EpochCycles())
		}
		sys.RunEpoch()
		return a.EpochOps()
	}
	free, stalled := mk(false), mk(true)
	if stalled >= free {
		t.Fatalf("stall did not reduce throughput: %v vs %v", stalled, free)
	}
	ratio := stalled / free
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("stall ratio = %v, want ~0.5", ratio)
	}
}
