package system

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"vulcan/internal/sim"
)

// Report is a machine-readable summary of a finished (or in-flight)
// co-location run, suitable for JSON output and downstream analysis.
type Report struct {
	Policy        string      `json:"policy"`
	Epochs        int         `json:"epochs"`
	SimSeconds    float64     `json:"sim_seconds"`
	FastCapacity  int         `json:"fast_capacity_pages"`
	FastUsed      int         `json:"fast_used_pages"`
	SlowCapacity  int         `json:"slow_capacity_pages"`
	SlowUsed      int         `json:"slow_used_pages"`
	CFI           float64     `json:"cfi"`
	Mechanisms    Mechanisms  `json:"mechanisms"`
	Apps          []AppReport `json:"apps"`
	AuditOK       bool        `json:"audit_ok"`
	AuditProblems []string    `json:"audit_problems,omitempty"`
}

// AppReport summarizes one application.
type AppReport struct {
	Name            string  `json:"name"`
	Class           string  `json:"class"`
	Started         bool    `json:"started"`
	Stopped         bool    `json:"stopped,omitempty"`
	RSSPages        int     `json:"rss_pages"`
	FastPages       int     `json:"fast_pages"`
	FTHR            float64 `json:"fthr"`
	MeanPerf        float64 `json:"mean_perf"`
	PerfCI95        float64 `json:"perf_ci95"`
	TotalOps        float64 `json:"total_ops"`
	MigrationMoved  uint64  `json:"migration_moved"`
	MigrationRemaps uint64  `json:"migration_remapped"`
	MigrationAborts uint64  `json:"migration_aborted"`
	MigrationCycles float64 `json:"migration_cycles"`
	THPGroups       int     `json:"thp_groups"`
	THPSplits       uint64  `json:"thp_splits"`
}

// Report builds the summary, including a frame-ownership audit.
func (s *System) Report() Report {
	fast, slow := s.tiers.Fast(), s.tiers.Slow()
	audit := s.Audit()
	r := Report{
		Policy:        s.policy.Name(),
		Epochs:        s.epoch,
		SimSeconds:    sim.Duration(s.Now()).Seconds(),
		FastCapacity:  fast.Capacity(),
		FastUsed:      fast.Used(),
		SlowCapacity:  slow.Capacity(),
		SlowUsed:      slow.Used(),
		CFI:           s.cfi.Index(),
		Mechanisms:    s.mechanisms(),
		AuditOK:       audit.Ok(),
		AuditProblems: audit.Errors,
	}
	for _, a := range s.apps {
		ar := AppReport{
			Name:    a.Cfg.Name,
			Class:   a.Cfg.Class.String(),
			Started: a.started,
			Stopped: a.stopped,
		}
		if a.stopped {
			// Only the durable summary survives a stop (and a checkpoint
			// resume): runtime structures like Async stats are gone.
			perf := a.NormalizedPerf()
			ar.FTHR = a.FTHR()
			ar.MeanPerf = perf.Mean()
			ar.PerfCI95 = perf.CI95()
			ar.TotalOps = a.TotalOps()
		}
		if a.started {
			st := a.Async.Stats()
			perf := a.NormalizedPerf()
			ar.RSSPages = a.RSSMapped()
			ar.FastPages = a.FastPages()
			ar.FTHR = a.FTHR()
			ar.MeanPerf = perf.Mean()
			ar.PerfCI95 = perf.CI95()
			ar.TotalOps = a.TotalOps()
			ar.MigrationMoved = st.Moved
			ar.MigrationRemaps = st.Remapped
			ar.MigrationAborts = st.Aborted
			ar.MigrationCycles = st.CyclesUsed
			ar.THPGroups = a.Huge().HugeGroups()
			ar.THPSplits = a.Huge().Splits()
		}
		r.Apps = append(r.Apps, ar)
	}
	return r
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable run summary (vulcansim's default
// output). A report with no applications means the run never configured
// anything worth summarizing, so it is rejected rather than printed as
// a bare header.
func (r Report) WriteText(w io.Writer) error {
	if len(r.Apps) == 0 {
		return errors.New("report: empty run (no applications)")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s  simulated=%.0fs  fast tier used %d/%d pages\n",
		r.Policy, r.SimSeconds, r.FastUsed, r.FastCapacity)
	fmt.Fprintf(&b, "%-12s %-5s %12s %10s %10s %12s %12s\n",
		"app", "class", "perf", "±ci95", "fthr", "fast pages", "rss pages")
	for _, a := range r.Apps {
		if a.Stopped {
			fmt.Fprintf(&b, "%-12s %-5s %12.3f %10.3f %10.3f %12s %12s\n",
				a.Name, a.Class, a.MeanPerf, a.PerfCI95, a.FTHR,
				"(stopped)", "-")
			continue
		}
		if !a.Started {
			fmt.Fprintf(&b, "%-12s (never started)\n", a.Name)
			continue
		}
		fmt.Fprintf(&b, "%-12s %-5s %12.3f %10.3f %10.3f %12d %12d\n",
			a.Name, a.Class, a.MeanPerf, a.PerfCI95, a.FTHR,
			a.FastPages, a.RSSPages)
	}
	fmt.Fprintf(&b, "CFI (FTHR-weighted cumulative fairness, Eq.4): %.3f\n", r.CFI)
	if !r.AuditOK {
		fmt.Fprintf(&b, "WARNING: frame-ownership audit failed: %v\n", r.AuditProblems)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TierUtilization returns fast-tier used fraction, a convenience for
// dashboards.
func (r Report) TierUtilization() float64 {
	if r.FastCapacity == 0 {
		return 0
	}
	return float64(r.FastUsed) / float64(r.FastCapacity)
}
