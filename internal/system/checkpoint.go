package system

import (
	"fmt"
	"io"

	"vulcan/internal/checkpoint"
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
)

// Section versions. Bump a section's version when its wire layout
// changes; Resume then rejects checkpoints written under the old layout
// instead of misreading them.
const (
	metaVersion    = 1
	clockVersion   = 1
	machineVersion = 1
	memVersion     = 1
	// systemVersion 2 appends the stop log (dynamic-eviction chronology);
	// appVersion 2 adds the stopped flag and a retired app's durable
	// summary statistics.
	systemVersion  = 2
	metricsVersion = 1
	// appVersion 3 appends the async-migrator backpressure tallies and the
	// dynamic intensity override.
	appVersion = 3
	// profilerVersion tracks the profile package's snapshot layout; Resume
	// additionally accepts profile.LegacySnapshotVersion blobs so
	// checkpoints written before the dense-store rewrite still restore.
	profilerVersion = profile.SnapshotVersion
	policyVersion   = 1
	faultVersion    = 1
	// obsVersion 2 appends the recorder's flush-boundary marks.
	obsVersion = 2
)

// Checkpoint serializes the full simulation state to w as one versioned
// checkpoint blob. It must be called at an epoch boundary (between
// RunEpoch calls): mid-epoch scratch state is deliberately not part of
// the format.
//
// The blob composes one section per stateful layer. Scratch state —
// per-epoch accumulators, staged migration batches, policy queue
// contents — is reconstructed, not serialized; the durable remainder is
// enough that Resume followed by the remaining epochs produces output
// byte-identical to an uninterrupted run.
func (s *System) Checkpoint(w io.Writer) error {
	cw := checkpoint.NewWriter()

	meta := cw.Section("meta", metaVersion)
	meta.String(s.policy.Name())
	meta.U64(s.cfg.Seed)
	meta.Int(len(s.apps))
	meta.Int(s.epoch)

	s.m.Clock.Snapshot(cw.Section("clock", clockVersion))
	s.m.RNG.Snapshot(cw.Section("machine", machineVersion))

	sys := cw.Section("system", systemVersion)
	s.rng.Snapshot(sys)
	sys.Int(s.epoch)
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		sys.F64(s.bwUtil[t])
		sys.F64(s.latSpike[t])
		sys.F64(s.bwFault[t])
	}
	sys.Int(len(s.admitOrder))
	for _, idx := range s.admitOrder {
		sys.Int(idx)
	}
	sys.Int(len(s.pressure))
	for _, f := range s.pressure {
		sys.U8(uint8(f.Tier))
		sys.U32(f.Index)
	}
	s.cfi.Snapshot(sys)
	sys.Int(len(s.stopLog))
	for _, ev := range s.stopLog {
		sys.Int(ev.idx)
		sys.Int(ev.afterAdmits)
	}

	s.tiers.Snapshot(cw.Section("mem", memVersion))
	s.recorder.Snapshot(cw.Section("metrics", metricsVersion))

	for i, a := range s.apps {
		a.snapshot(cw.Section(fmt.Sprintf("app.%d", i), appVersion))
		if a.started {
			profile.SnapshotProfiler(
				cw.Section(fmt.Sprintf("app.%d.profiler", i), profilerVersion), a.Profiler)
		}
	}

	if ps, ok := s.policy.(checkpoint.Snapshotter); ok {
		ps.Snapshot(cw.Section("policy", policyVersion))
	}
	if s.inj != nil {
		s.inj.Snapshot(cw.Section("fault", faultVersion))
	}
	if rec, ok := s.obs.(checkpoint.Snapshotter); ok {
		rec.Snapshot(cw.Section("obs", obsVersion))
	}

	_, err := cw.WriteTo(w)
	return err
}

// Resume rebuilds a system from a checkpoint written by Checkpoint.
// cfg must describe the same experiment (seed, machine shape, app
// list); the policy may differ — that is the branch-from-snapshot path.
// When it does, the checkpointed policy and profiler state is skipped
// and the new policy starts cold, so every branch forks from identical
// substrate state and none inherits another policy's learned placement
// hints.
//
// The restored system continues exactly where the checkpointed one
// stopped: with the same cfg (policy included), running it to the
// original end time produces report, trace and metrics output
// byte-identical to the uninterrupted run.
func Resume(r io.Reader, cfg Config) (*System, error) {
	cr, err := checkpoint.NewReader(r)
	if err != nil {
		return nil, err
	}

	meta, err := cr.Section("meta", metaVersion)
	if err != nil {
		return nil, err
	}
	ckptPolicy := meta.String()
	seed := meta.U64()
	nApps := meta.Int()
	meta.Int() // completed epochs; informational, restored from "system"
	if err := meta.Close(); err != nil {
		return nil, err
	}

	s := New(cfg)
	if s.cfg.Seed != seed {
		return nil, fmt.Errorf("system: checkpoint seed %d, config seed %d", seed, s.cfg.Seed)
	}
	if nApps != len(s.apps) {
		return nil, fmt.Errorf("system: checkpoint has %d apps, config has %d", nApps, len(s.apps))
	}
	samePolicy := s.policy.Name() == ckptPolicy

	// System scalars and the admission order, needed before any app can
	// be admitted.
	sys, err := cr.Section("system", systemVersion)
	if err != nil {
		return nil, err
	}
	if err := s.rng.Restore(sys); err != nil {
		return nil, err
	}
	s.epoch = sys.Int()
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		s.bwUtil[t] = sys.F64()
		s.latSpike[t] = sys.F64()
		s.bwFault[t] = sys.F64()
	}
	nAdmit := sys.Length(8)
	if sys.Err() != nil {
		return nil, sys.Err()
	}
	if s.epoch < 0 {
		return nil, fmt.Errorf("system: negative epoch %d in checkpoint", s.epoch)
	}
	admitted := make(map[int]bool, nAdmit)
	for i := 0; i < nAdmit; i++ {
		idx := sys.Int()
		if sys.Err() != nil {
			return nil, sys.Err()
		}
		if idx < 0 || idx >= len(s.apps) || admitted[idx] {
			return nil, fmt.Errorf("system: bad admission entry %d in checkpoint", idx)
		}
		admitted[idx] = true
		s.admitOrder = append(s.admitOrder, idx)
	}
	nPressure := sys.Length(5)
	if sys.Err() != nil {
		return nil, sys.Err()
	}
	for i := 0; i < nPressure; i++ {
		f := mem.Frame{Tier: mem.TierID(sys.U8()), Index: sys.U32()}
		if sys.Err() != nil {
			return nil, sys.Err()
		}
		if f.IsNil() {
			return nil, fmt.Errorf("system: pressure frame on invalid tier in checkpoint")
		}
		s.pressure = append(s.pressure, f)
	}
	if err := s.cfi.Restore(sys); err != nil {
		return nil, err
	}
	nStops := sys.Length(16)
	if sys.Err() != nil {
		return nil, sys.Err()
	}
	stoppedSet := make(map[int]bool, nStops)
	lastAfter := 0
	for i := 0; i < nStops; i++ {
		ev := stopEvent{idx: sys.Int(), afterAdmits: sys.Int()}
		if sys.Err() != nil {
			return nil, sys.Err()
		}
		if ev.idx < 0 || ev.idx >= len(s.apps) || !admitted[ev.idx] || stoppedSet[ev.idx] {
			return nil, fmt.Errorf("system: bad stop entry %d in checkpoint", ev.idx)
		}
		if ev.afterAdmits < 1 || ev.afterAdmits > nAdmit || ev.afterAdmits < lastAfter {
			return nil, fmt.Errorf("system: stop entry %d out of chronology in checkpoint", ev.idx)
		}
		lastAfter = ev.afterAdmits
		stoppedSet[ev.idx] = true
		s.stopLog = append(s.stopLog, ev)
	}
	if err := sys.Close(); err != nil {
		return nil, err
	}

	// Replay admissions in the recorded order, so policies register
	// workloads in the same sequence as the checkpointed run, with stops
	// interleaved at their recorded chronology — a stop that freed
	// capacity for a later admission must free it during replay too, or
	// the replayed premaps would exceed physical memory. Placement and
	// RNG side effects of the replay are overwritten by the overlays
	// below.
	si := 0
	for n, idx := range s.admitOrder {
		a := s.apps[idx]
		a.admit(s, s.placer)
		s.policy.AppStarted(s, a)
		for si < len(s.stopLog) && s.stopLog[si].afterAdmits <= n+1 {
			victim := s.apps[s.stopLog[si].idx]
			if !victim.started {
				return nil, fmt.Errorf("system: checkpoint stops app %q before its admission", victim.Cfg.Name)
			}
			s.retire(victim)
			si++
		}
	}

	// Substrate overlays. Tiers go wholesale after admissions so the
	// free-list order — part of the determinism contract — is exact.
	clk, err := cr.Section("clock", clockVersion)
	if err != nil {
		return nil, err
	}
	if err := s.m.Clock.Restore(clk); err != nil {
		return nil, err
	}
	if err := clk.Close(); err != nil {
		return nil, err
	}
	mrng, err := cr.Section("machine", machineVersion)
	if err != nil {
		return nil, err
	}
	if err := s.m.RNG.Restore(mrng); err != nil {
		return nil, err
	}
	if err := mrng.Close(); err != nil {
		return nil, err
	}
	tiers, err := cr.Section("mem", memVersion)
	if err != nil {
		return nil, err
	}
	if err := s.tiers.Restore(tiers); err != nil {
		return nil, err
	}
	if err := tiers.Close(); err != nil {
		return nil, err
	}

	// Per-app overlays; profiler state only when the policy (and hence
	// the profiler construction) matches the checkpointed run.
	for i, a := range s.apps {
		d, err := cr.Section(fmt.Sprintf("app.%d", i), appVersion)
		if err != nil {
			return nil, err
		}
		if err := a.restore(d); err != nil {
			return nil, err
		}
		if err := d.Close(); err != nil {
			return nil, err
		}
		if a.started && samePolicy {
			name := fmt.Sprintf("app.%d.profiler", i)
			ver, ok := cr.Version(name)
			if !ok {
				return nil, fmt.Errorf("checkpoint: missing section %q", name)
			}
			if ver != profile.SnapshotVersion && ver != profile.LegacySnapshotVersion {
				return nil, fmt.Errorf("system: section %q version %d (want %d or %d)",
					name, ver, profile.SnapshotVersion, profile.LegacySnapshotVersion)
			}
			pd, err := cr.Section(name, ver)
			if err != nil {
				return nil, err
			}
			if err := profile.RestoreProfiler(pd, a.Profiler, ver); err != nil {
				return nil, err
			}
			if err := pd.Close(); err != nil {
				return nil, err
			}
		}
	}

	if samePolicy && cr.Has("policy") {
		ps, ok := s.policy.(checkpoint.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("system: checkpoint carries %q policy state, policy cannot restore it", ckptPolicy)
		}
		pd, err := cr.Section("policy", policyVersion)
		if err != nil {
			return nil, err
		}
		if err := ps.Restore(pd); err != nil {
			return nil, err
		}
		if err := pd.Close(); err != nil {
			return nil, err
		}
	}

	if s.inj != nil && cr.Has("fault") {
		fd, err := cr.Section("fault", faultVersion)
		if err != nil {
			return nil, err
		}
		if err := s.inj.Restore(fd); err != nil {
			return nil, err
		}
		if err := fd.Close(); err != nil {
			return nil, err
		}
	}

	// Telemetry goes last: nothing emitted while rebuilding may survive
	// into the restored buffers.
	md, err := cr.Section("metrics", metricsVersion)
	if err != nil {
		return nil, err
	}
	if err := s.recorder.Restore(md); err != nil {
		return nil, err
	}
	if err := md.Close(); err != nil {
		return nil, err
	}
	if cr.Has("obs") {
		if rec, ok := s.obs.(checkpoint.Snapshotter); ok {
			od, err := cr.Section("obs", obsVersion)
			if err != nil {
				return nil, err
			}
			if err := rec.Restore(od); err != nil {
				return nil, err
			}
			if err := od.Close(); err != nil {
				return nil, err
			}
		}
	}

	return s, nil
}

// snapshot appends the app's durable state. Per-epoch accumulators are
// scratch (reset at each epoch start) and are not serialized; the
// carried-over quantities — pending stall, sample weight, smoothed
// FTHR, cumulative series — are.
func (a *App) snapshot(e *checkpoint.Encoder) {
	e.String(a.Cfg.Name)
	e.Bool(a.started)
	e.Bool(a.stopped)
	if a.stopped {
		// A retired app keeps only its reporting summary: the runtime
		// state (table, engine, profiler) was torn down by StopApp and
		// the replay reconstructs and re-tears it deterministically.
		a.fthr.Snapshot(e)
		a.perfSeries.Snapshot(e)
		e.F64(a.sampleWeight)
		e.F64(a.epochOps)
		e.F64(a.epochPerf)
		e.F64(a.totalOps)
		return
	}
	if !a.started {
		return
	}
	a.rng.Snapshot(e)
	a.Table.Snapshot(e)
	e.Int(len(a.TLBs))
	for _, t := range a.TLBs {
		t.Snapshot(e)
	}
	e.Int(len(a.Threads))
	for _, th := range a.Threads {
		th.Snapshot(e)
	}
	a.Engine.Snapshot(e)
	a.Async.Snapshot(e)
	e.Bool(a.Retry != nil)
	if a.Retry != nil {
		a.Retry.Snapshot(e)
	}
	e.Bool(a.huge != nil)
	if a.huge != nil {
		a.huge.Snapshot(e)
	}
	a.fthr.Snapshot(e)
	a.perfSeries.Snapshot(e)
	e.F64(a.sampleWeight)
	e.F64(a.pendingStall)
	e.F64(a.epochOps)
	e.F64(a.epochPerf)
	e.F64(a.totalOps)
	e.Int(a.fastPages)
	e.Int(a.rssMapped)
	e.Bool(a.profileDegraded)
	e.Int(a.intensityMilli)
}

// restore overlays the checkpointed state onto the (already admitted,
// when started) app. Fault decoration may differ between the
// checkpointed run and this one — a clean warm-up branching into a
// faulted run, or the reverse — so retry state with no destination is
// discarded and a fresh retrier keeps its empty construction state;
// likewise for the THP overlay.
func (a *App) restore(d *checkpoint.Decoder) error {
	name := d.String()
	ckptStarted := d.Bool()
	ckptStopped := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if name != a.Cfg.Name {
		return fmt.Errorf("system: checkpoint app %q, config app %q", name, a.Cfg.Name)
	}
	if ckptStarted != a.started || ckptStopped != a.stopped {
		return fmt.Errorf("system: app %q admission state disagrees with checkpoint manifest", name)
	}
	if ckptStopped {
		if a.fthr == nil {
			// Defensive: the stop replay built these during admit.
			return fmt.Errorf("system: app %q stopped in checkpoint but never admitted here", name)
		}
		if err := a.fthr.Restore(d); err != nil {
			return err
		}
		if err := a.perfSeries.Restore(d); err != nil {
			return err
		}
		a.sampleWeight = d.F64()
		a.epochOps = d.F64()
		a.epochPerf = d.F64()
		a.totalOps = d.F64()
		return d.Err()
	}
	if !ckptStarted {
		return nil
	}
	if err := a.rng.Restore(d); err != nil {
		return err
	}
	if err := a.Table.Restore(d); err != nil {
		return err
	}
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(a.TLBs) {
		return fmt.Errorf("system: app %q has %d TLBs in checkpoint, %d configured", name, n, len(a.TLBs))
	}
	for _, t := range a.TLBs {
		if err := t.Restore(d); err != nil {
			return err
		}
	}
	n = d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(a.Threads) {
		return fmt.Errorf("system: app %q has %d threads in checkpoint, %d configured", name, n, len(a.Threads))
	}
	for _, th := range a.Threads {
		if err := th.Restore(d); err != nil {
			return err
		}
	}
	if err := a.Engine.Restore(d); err != nil {
		return err
	}
	if err := a.Async.Restore(d); err != nil {
		return err
	}
	hasRetry := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasRetry {
		target := a.Retry
		if target == nil {
			target = &migrate.Retrier{}
		}
		if err := target.Restore(d); err != nil {
			return err
		}
	}
	hasHuge := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasHuge {
		target := a.huge
		if target == nil {
			target = &HugeSet{}
		}
		if err := target.Restore(d); err != nil {
			return err
		}
	}
	if err := a.fthr.Restore(d); err != nil {
		return err
	}
	if err := a.perfSeries.Restore(d); err != nil {
		return err
	}
	a.sampleWeight = d.F64()
	a.pendingStall = d.F64()
	a.epochOps = d.F64()
	a.epochPerf = d.F64()
	a.totalOps = d.F64()
	a.fastPages = d.Int()
	a.rssMapped = d.Int()
	a.profileDegraded = d.Bool()
	a.intensityMilli = d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if a.pendingStall < 0 || a.fastPages < 0 || a.rssMapped < 0 {
		return fmt.Errorf("system: app %q has negative accounting in checkpoint", name)
	}
	if a.intensityMilli < 0 || a.intensityMilli > 1_000_000 {
		return fmt.Errorf("system: app %q intensity %d out of range in checkpoint", name, a.intensityMilli)
	}
	return nil
}

// Snapshot appends the THP overlay: the intact huge groups in ascending
// order plus the lifetime split count. The bitmap iterates ascending by
// construction, so the wire bytes match the previous sorted encoding.
func (h *HugeSet) Snapshot(e *checkpoint.Encoder) {
	e.Int(h.count)
	h.forEachGroup(func(g uint64) { e.U64(g) })
	e.U64(h.splits)
}

// Restore reads the overlay back in place.
func (h *HugeSet) Restore(d *checkpoint.Decoder) error {
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	h.words = nil
	h.count = 0
	for i := 0; i < n; i++ {
		g := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if g > uint64(pagetable.MaxVPage)>>9 {
			return fmt.Errorf("system: huge group %d out of range in checkpoint", g)
		}
		if !h.setGroup(g) {
			return fmt.Errorf("system: duplicate huge group %d in checkpoint", g)
		}
	}
	h.splits = d.U64()
	return d.Err()
}
