package system

import (
	"testing"

	"vulcan/internal/fault"
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/obs"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// churnPolicy is a minimal migrating policy: each epoch it demotes a
// fixed window of each app's pages and promotes the previous window
// back, keeping the engines busy so migration-path faults have
// opportunities to fire.
type churnPolicy struct{ flip bool }

func (p *churnPolicy) Name() string                 { return "churn" }
func (p *churnPolicy) Mechanisms() Mechanisms       { return Mechanisms{} }
func (p *churnPolicy) AppStarted(s *System, a *App) {}
func (p *churnPolicy) EndEpoch(sys *System) {
	p.flip = !p.flip
	for _, a := range sys.StartedApps() {
		var moves []migrate.Move
		for vp := pagetable.VPage(0); vp < 32; vp++ {
			to := mem.TierSlow
			if (vp%2 == 0) == p.flip {
				to = mem.TierFast
			}
			moves = append(moves, migrate.Move{VP: vp, To: to})
		}
		res := a.Engine.MigrateSync(moves)
		a.ChargeStall(res.Cycles())
	}
}

// chaosRun executes a small two-app scenario under plan and returns a
// deterministic digest of observable state.
type chaosDigest struct {
	ops   [2]float64
	fast  [2]int
	fthr  [2]float64
	cfi   float64
	epoch int
}

func chaosRun(t *testing.T, plan *fault.Plan, rec *obs.Recorder) (*System, chaosDigest) {
	t.Helper()
	var sink obs.Sink
	if rec != nil {
		sink = rec
	}
	sys := New(Config{
		Machine: tinyMachine(256, 4096),
		Apps: []workload.AppConfig{
			tinyApp("a", workload.LC, 400, 0),
			tinyApp("b", workload.BE, 400, 0),
		},
		Policy:      &churnPolicy{},
		EpochLength: 10 * sim.Millisecond,
		Seed:        7,
		Faults:      plan,
		Obs:         sink,
	})
	for i := 0; i < 20; i++ {
		sys.RunEpoch()
	}
	var d chaosDigest
	for i, name := range []string{"a", "b"} {
		app := sys.App(name)
		d.ops[i] = app.TotalOps()
		d.fast[i] = app.FastPages()
		d.fthr[i] = app.FTHR()
	}
	d.cfi = sys.CFI().Index()
	d.epoch = sys.Epoch()
	return sys, d
}

// TestZeroFaultIdentity is the subsystem's cornerstone guarantee: a nil
// plan, an empty plan, and a plan whose rules can never fire must all
// produce exactly the state a pre-fault build produced. Any stray
// multiplication, RNG draw, or extra allocation in the hooks shows up
// here.
func TestZeroFaultIdentity(t *testing.T) {
	_, base := chaosRun(t, nil, nil)
	_, empty := chaosRun(t, &fault.Plan{}, nil)
	_, zeroRate := chaosRun(t, &fault.Plan{Rules: []fault.Rule{
		{Kind: fault.MigrationFail, Rate: 0},
		{Kind: fault.LatencySpike, Rate: 0},
	}}, nil)
	if empty != base {
		t.Errorf("empty plan diverged from nil plan:\n%+v\n%+v", empty, base)
	}
	if zeroRate != base {
		t.Errorf("zero-rate plan diverged from nil plan:\n%+v\n%+v", zeroRate, base)
	}
}

// TestFaultedRunDeterminism replays a heavily faulted scenario and
// demands identical state and identical fault schedules.
func TestFaultedRunDeterminism(t *testing.T) {
	plan := fault.PlanAtRate(0.1)
	sys1, d1 := chaosRun(t, plan, nil)
	sys2, d2 := chaosRun(t, plan, nil)
	if d1 != d2 {
		t.Fatalf("faulted replay diverged:\n%+v\n%+v", d1, d2)
	}
	c1, c2 := sys1.FaultInjector().Counts(), sys2.FaultInjector().Counts()
	if c1 != c2 {
		t.Fatalf("fault counts diverged: %v vs %v", c1, c2)
	}
	total := uint64(0)
	for _, n := range c1 {
		total += n
	}
	if total == 0 {
		t.Fatal("rate-0.1 plan injected nothing in 20 epochs")
	}
}

// TestFaultedRunMachinery checks the resilience path actually engages:
// faults are injected and visible as events, busy migrations flow into
// the retrier, and the profiler wrapper reports its confidence.
func TestFaultedRunMachinery(t *testing.T) {
	rec := obs.NewRecorder()
	sys, _ := chaosRun(t, fault.PlanAtRate(0.2), rec)

	if n := rec.EventCount(obs.EvFaultInject); n == 0 {
		t.Error("no fault.inject events recorded")
	}
	counts := sys.FaultInjector().Counts()
	if counts[fault.MigrationFail] == 0 {
		t.Error("no migration failures at rate 0.2")
	}
	var retried, noted uint64
	for _, name := range []string{"a", "b"} {
		app := sys.App(name)
		if app.Retry == nil {
			t.Fatalf("app %s has no retrier on a faulted run", name)
		}
		st := app.Retry.Stats()
		noted += st.Noted
		retried += st.Retried
	}
	if noted == 0 {
		t.Error("no busy pages reached the retriers")
	}
	if retried > 0 && rec.EventCount(obs.EvMigrateRetry) == 0 {
		t.Error("retries ran but no migrate.retry events recorded")
	}
}

// TestFaultFreeRunHasNoChaosState proves the machinery is absent, not
// just quiet, without a plan.
func TestFaultFreeRunHasNoChaosState(t *testing.T) {
	sys, _ := chaosRun(t, nil, nil)
	if sys.FaultInjector() != nil {
		t.Error("injector exists without a plan")
	}
	for _, name := range []string{"a", "b"} {
		app := sys.App(name)
		if app.Retry != nil {
			t.Errorf("app %s has a retrier without a plan", name)
		}
		if app.ProfileDegraded() {
			t.Errorf("app %s profile degraded without faults", name)
		}
		if app.TLBStats().DelayedAcks != 0 {
			t.Errorf("app %s has delayed acks without faults", name)
		}
	}
	if sys.PressureHeld() != 0 {
		t.Error("pressure frames held without faults")
	}
}

// TestMemPressureSeizesAndReleases pins the pressure window lifecycle:
// frames seized in a burst epoch return at the next boundary.
func TestMemPressureSeizesAndReleases(t *testing.T) {
	// The app leaves most of the fast tier free: a pressure burst
	// competes for free frames (an allocation-time contender, not an
	// evictor — see DESIGN.md §10), so there must be frames to seize.
	sys := New(Config{
		Machine:     tinyMachine(256, 4096),
		Apps:        []workload.AppConfig{tinyApp("a", workload.LC, 100, 0)},
		EpochLength: 10 * sim.Millisecond,
		Seed:        3,
		Faults: &fault.Plan{Rules: []fault.Rule{
			{Kind: fault.MemPressure, Rate: 0.5, Severity: 0.1},
		}},
	})
	sawHeld := false
	for i := 0; i < 30; i++ {
		sys.RunEpoch()
		if held := sys.PressureHeld(); held > 0 {
			sawHeld = true
			if held > 26 { // 10% of 256, ceiling slack
				t.Fatalf("burst seized %d frames, severity 0.1 of 256", held)
			}
		}
	}
	if !sawHeld {
		t.Error("no pressure burst in 30 epochs at rate 0.5")
	}
}
