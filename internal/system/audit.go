package system

import (
	"fmt"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// AuditReport is the outcome of a frame-ownership audit.
type AuditReport struct {
	// MappedFrames counts frames referenced by page tables.
	MappedFrames int
	// ShadowFrames counts frames held as shadow copies.
	ShadowFrames int
	// FreeFrames counts frames on tier free lists.
	FreeFrames int
	// Errors lists every violation found.
	Errors []string
}

// Ok reports whether the audit found no violations.
func (r AuditReport) Ok() bool { return len(r.Errors) == 0 }

// String summarizes the report.
func (r AuditReport) String() string {
	return fmt.Sprintf("audit{mapped=%d shadow=%d free=%d errors=%d}",
		r.MappedFrames, r.ShadowFrames, r.FreeFrames, len(r.Errors))
}

// Audit verifies the global frame-ownership invariant: every physical
// frame is either on its tier's free list, mapped by exactly one page of
// exactly one application, or held as exactly one shadow copy — and
// nothing else. Any migration-engine bug that leaks, double-frees or
// double-maps a frame surfaces here. Audit is O(total frames) and meant
// for tests and debugging, not the simulation hot path.
func (s *System) Audit() AuditReport {
	var rep AuditReport

	type owner struct {
		app  string
		vp   pagetable.VPage
		kind string // "map" or "shadow"
	}
	seen := make(map[mem.Frame]owner)

	claim := func(f mem.Frame, o owner) {
		if prev, dup := seen[f]; dup {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"frame %v claimed twice: %s:%#x(%s) and %s:%#x(%s)",
				f, prev.app, uint64(prev.vp), prev.kind, o.app, uint64(o.vp), o.kind))
			return
		}
		seen[f] = o
	}

	for _, a := range s.apps {
		if !a.started {
			continue
		}
		a.Table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
			f := p.Frame()
			if f.IsNil() {
				rep.Errors = append(rep.Errors, fmt.Sprintf(
					"%s:%#x maps a nil frame", a.Cfg.Name, uint64(vp)))
				return true
			}
			if int(f.Index) >= s.tiers.Tier(f.Tier).Capacity() {
				rep.Errors = append(rep.Errors, fmt.Sprintf(
					"%s:%#x maps out-of-range frame %v", a.Cfg.Name, uint64(vp), f))
				return true
			}
			claim(f, owner{a.Cfg.Name, vp, "map"})
			rep.MappedFrames++
			return true
		})
		rep.ShadowFrames += a.Engine.Shadows().Live
	}

	// Accounting identity per tier: used == claimed (mapped + shadows are
	// the only allocation sources), and used + free == capacity.
	for t := mem.TierID(0); t < mem.NumTiers; t++ {
		tier := s.tiers.Tier(t)
		rep.FreeFrames += tier.FreePages()
		if tier.Used()+tier.FreePages() != tier.Capacity() {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"%s tier: used %d + free %d != capacity %d",
				t, tier.Used(), tier.FreePages(), tier.Capacity()))
		}
	}
	totalUsed := s.tiers.Fast().Used() + s.tiers.Slow().Used()
	if claimed := rep.MappedFrames + rep.ShadowFrames; claimed != totalUsed {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"claimed frames %d (mapped %d + shadow %d) != tier-used %d",
			claimed, rep.MappedFrames, rep.ShadowFrames, totalUsed))
	}
	return rep
}
