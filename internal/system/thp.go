package system

import "vulcan/internal/pagetable"

// HugeSet tracks which 2MiB-aligned groups of an application's address
// space are currently mapped as transparent huge pages. Vulcan "enables
// transparent huge pages to maximize TLB coverage by default, despite
// proactively splitting them into base pages during promotion" (§3.5);
// the same trade-off applies to the baselines running on a THP-enabled
// kernel.
//
// The model keeps base-page PTEs as the source of truth and overlays
// huge-ness per 512-page group: an access to a huge group occupies one
// TLB entry for the whole group (2MiB reach), and migrating any page of
// a huge group first splits it (a one-time cost, after which the group's
// pages translate individually).
type HugeSet struct {
	groups map[uint64]bool
	splits uint64
}

// hugeGroup returns vp's 2MiB group index.
func hugeGroup(vp pagetable.VPage) uint64 { return uint64(vp) >> 9 }

// hugeTLBTag returns the TLB tag for a huge mapping: group index offset
// into a disjoint tag space so huge and base tags never collide.
func hugeTLBTag(vp pagetable.VPage) pagetable.VPage {
	return pagetable.VPage(hugeGroup(vp)) | pagetable.VPage(1)<<40
}

// NewHugeSet marks the first rssPages of an address space as huge, in
// whole 512-page groups (the tail partial group stays base-mapped, as
// the kernel would leave it).
func NewHugeSet(rssPages int) *HugeSet {
	h := &HugeSet{groups: make(map[uint64]bool)}
	for g := uint64(0); g < uint64(rssPages)/pagetable.EntriesPerTable; g++ {
		h.groups[g] = true
	}
	return h
}

// IsHuge reports whether vp is covered by a huge mapping.
func (h *HugeSet) IsHuge(vp pagetable.VPage) bool {
	return h != nil && h.groups[hugeGroup(vp)]
}

// Split breaks the huge mapping covering vp, reporting whether a split
// actually happened (callers charge the split cost only then).
func (h *HugeSet) Split(vp pagetable.VPage) bool {
	if h == nil {
		return false
	}
	g := hugeGroup(vp)
	if !h.groups[g] {
		return false
	}
	delete(h.groups, g)
	h.splits++
	return true
}

// HugeGroups returns the number of intact huge mappings.
func (h *HugeSet) HugeGroups() int {
	if h == nil {
		return 0
	}
	return len(h.groups)
}

// Splits returns the lifetime split count.
func (h *HugeSet) Splits() uint64 {
	if h == nil {
		return 0
	}
	return h.splits
}
