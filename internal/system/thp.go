package system

import (
	"math/bits"

	"vulcan/internal/pagetable"
)

// HugeSet tracks which 2MiB-aligned groups of an application's address
// space are currently mapped as transparent huge pages. Vulcan "enables
// transparent huge pages to maximize TLB coverage by default, despite
// proactively splitting them into base pages during promotion" (§3.5);
// the same trade-off applies to the baselines running on a THP-enabled
// kernel.
//
// The model keeps base-page PTEs as the source of truth and overlays
// huge-ness per 512-page group. Group indices are bounded by the app's
// initial RSS (groups are only ever split, never created), so the set
// is a plain bitmap: IsHuge sits on the per-access TLB path, where a
// map lookup per access was a measurable fraction of the figure
// benchmarks.
type HugeSet struct {
	words  []uint64
	count  int
	splits uint64
}

// hugeGroup returns vp's 2MiB group index.
func hugeGroup(vp pagetable.VPage) uint64 { return uint64(vp) >> 9 }

// hugeTLBTag returns the TLB tag for a huge mapping: group index offset
// into a disjoint tag space so huge and base tags never collide.
func hugeTLBTag(vp pagetable.VPage) pagetable.VPage {
	return pagetable.VPage(hugeGroup(vp)) | pagetable.VPage(1)<<40
}

// NewHugeSet marks the first rssPages of an address space as huge, in
// whole 512-page groups (the tail partial group stays base-mapped, as
// the kernel would leave it).
func NewHugeSet(rssPages int) *HugeSet {
	n := uint64(rssPages) / pagetable.EntriesPerTable
	h := &HugeSet{words: make([]uint64, (n+63)/64), count: int(n)}
	for g := uint64(0); g < n; g++ {
		h.words[g>>6] |= 1 << (g & 63)
	}
	return h
}

// IsHuge reports whether vp is covered by a huge mapping.
//
//vulcan:hotpath
func (h *HugeSet) IsHuge(vp pagetable.VPage) bool {
	if h == nil {
		return false
	}
	g := hugeGroup(vp)
	w := g >> 6
	return w < uint64(len(h.words)) && h.words[w]&(1<<(g&63)) != 0
}

// Split breaks the huge mapping covering vp, reporting whether a split
// actually happened (callers charge the split cost only then).
func (h *HugeSet) Split(vp pagetable.VPage) bool {
	if h == nil {
		return false
	}
	g := hugeGroup(vp)
	w := g >> 6
	if w >= uint64(len(h.words)) {
		return false
	}
	mask := uint64(1) << (g & 63)
	if h.words[w]&mask == 0 {
		return false
	}
	h.words[w] &^= mask
	h.count--
	h.splits++
	return true
}

// setGroup marks group g huge, growing the bitmap as needed; reports
// whether it was newly set (false = duplicate).
func (h *HugeSet) setGroup(g uint64) bool {
	w := g >> 6
	if w >= uint64(len(h.words)) {
		grown := make([]uint64, w+1)
		copy(grown, h.words)
		h.words = grown
	}
	mask := uint64(1) << (g & 63)
	if h.words[w]&mask != 0 {
		return false
	}
	h.words[w] |= mask
	h.count++
	return true
}

// forEachGroup calls fn for every intact huge group in ascending order.
func (h *HugeSet) forEachGroup(fn func(g uint64)) {
	for w, word := range h.words {
		for word != 0 {
			fn(uint64(w)<<6 | uint64(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// HugeGroups returns the number of intact huge mappings.
func (h *HugeSet) HugeGroups() int {
	if h == nil {
		return 0
	}
	return h.count
}

// Splits returns the lifetime split count.
func (h *HugeSet) Splits() uint64 {
	if h == nil {
		return 0
	}
	return h.splits
}
