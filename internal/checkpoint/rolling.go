package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rolling checkpoint files: a long-lived run periodically writes interim
// checkpoints next to its final artifact path, each stamped with the
// epoch it captures, and retains only the most recent K. The stamp sits
// before the extension — base "run.ckpt" at epoch 30 becomes
// "run.t030.ckpt" — so a glob over the directory finds the family and
// the lexicographic order of equal-width stamps is the epoch order.
//
// Writes are atomic: the image lands in a ".tmp" sibling first and is
// renamed into place, so a crash mid-write leaves either the previous
// complete file or a stray .tmp (ignored by discovery), never a torn
// checkpoint.

// rollingWidth is the zero-padded stamp width. Three digits keep stamps
// lexicographically ordered through epoch 999; longer runs widen
// naturally (width grows, and numeric parsing — not string order — is
// what LatestRolling compares).
const rollingWidth = 3

// RollingPath returns the stamped path for an interim checkpoint of the
// given epoch: the stamp ".tNNN" is inserted before base's extension
// ("out/run.ckpt", 30 → "out/run.t030.ckpt"). A base without an
// extension gets the stamp appended.
func RollingPath(base string, epoch int) string {
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	return fmt.Sprintf("%s.t%0*d%s", stem, rollingWidth, epoch, ext)
}

// rollingEpoch parses the epoch out of a stamped path produced by
// RollingPath for the same base. Returns false for paths that do not
// belong to the family (including the unstamped base itself).
func rollingEpoch(base, path string) (int, bool) {
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	if !strings.HasPrefix(path, stem+".t") || !strings.HasSuffix(path, ext) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(path, stem+".t"), ext)
	if len(digits) < rollingWidth {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// WriteRolling atomically writes w's image to RollingPath(base, epoch):
// the bytes land in a temporary sibling which is fsynced and renamed
// into place. Returns the final path.
func WriteRolling(w *Writer, base string, epoch int) (string, error) {
	path := RollingPath(base, epoch)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if _, err := w.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// rollingFamily lists the stamped siblings of base in ascending epoch
// order.
func rollingFamily(base string) ([]string, []int, error) {
	dir := filepath.Dir(base)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type member struct {
		path  string
		epoch int
	}
	var fam []member
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		p := filepath.Join(dir, ent.Name())
		if n, ok := rollingEpoch(base, p); ok {
			fam = append(fam, member{path: p, epoch: n})
		}
	}
	sort.Slice(fam, func(i, j int) bool { return fam[i].epoch < fam[j].epoch })
	paths := make([]string, len(fam))
	epochs := make([]int, len(fam))
	for i, m := range fam {
		paths[i] = m.path
		epochs[i] = m.epoch
	}
	return paths, epochs, nil
}

// PruneRolling deletes all but the newest keep members of base's rolling
// family. keep <= 0 keeps everything. Returns the deleted paths.
func PruneRolling(base string, keep int) ([]string, error) {
	if keep <= 0 {
		return nil, nil
	}
	paths, _, err := rollingFamily(base)
	if err != nil {
		return nil, err
	}
	if len(paths) <= keep {
		return nil, nil
	}
	victims := paths[:len(paths)-keep]
	for _, p := range victims {
		if err := os.Remove(p); err != nil {
			return nil, err
		}
	}
	return victims, nil
}

// LatestRolling returns the newest member of base's rolling family and
// the epoch it captures. ok is false when the family is empty (a
// missing directory counts as empty, not an error, so cold starts need
// no special casing).
func LatestRolling(base string) (path string, epoch int, ok bool, err error) {
	paths, epochs, ferr := rollingFamily(base)
	if ferr != nil {
		if os.IsNotExist(ferr) {
			return "", 0, false, nil
		}
		return "", 0, false, ferr
	}
	if len(paths) == 0 {
		return "", 0, false, nil
	}
	return paths[len(paths)-1], epochs[len(epochs)-1], true, nil
}
