package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math"
	"strings"
	"testing"
)

// buildBlob writes a two-section blob used by the decode tests.
func buildBlob(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	e := w.Section("alpha", 1)
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(math.Pi)
	e.Bool(true)
	e.String("hello")
	e.Bytes64([]byte{1, 2, 3})
	e2 := w.Section("beta", 3)
	e2.Int(12345)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	blob := buildBlob(t)
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !r.Has("alpha") || !r.Has("beta") || r.Has("gamma") {
		t.Fatalf("Has() wrong: %v", r.Manifest())
	}
	d, err := r.Section("alpha", 1)
	if err != nil {
		t.Fatalf("Section alpha: %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := d.Bytes64(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes64 = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	d2, err := r.Section("beta", 3)
	if err != nil {
		t.Fatalf("Section beta: %v", err)
	}
	if got := d2.Int(); got != 12345 {
		t.Errorf("Int = %d", got)
	}
	if err := d2.Close(); err != nil {
		t.Errorf("Close beta: %v", err)
	}
}

func TestFloatBitPatternsRoundTrip(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e-308}
	var e Encoder
	for _, v := range vals {
		e.F64(v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		got := d.F64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("val %d: bits %#x != %#x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
}

func TestSectionVersionMismatch(t *testing.T) {
	blob := buildBlob(t)
	r, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Section("alpha", 2); err == nil {
		t.Fatal("version mismatch not detected")
	}
	if _, err := r.Section("missing", 1); err == nil {
		t.Fatal("missing section not detected")
	}
}

func TestBadMagic(t *testing.T) {
	blob := buildBlob(t)
	blob[0] ^= 0xff
	if _, err := NewReader(bytes.NewReader(blob)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWrongContainerVersion(t *testing.T) {
	blob := buildBlob(t)
	// Patch the container version (the u32 right after the magic) and
	// recompute the body checksum, simulating a well-formed blob from a
	// future format.
	blob[len(Magic)] = 99
	body := blob[:len(blob)-8]
	binary.LittleEndian.PutUint64(blob[len(blob)-8:], crc64.Checksum(body, crcTable))
	_, err := NewReader(bytes.NewReader(blob))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version not detected: %v", err)
	}
}

// TestTruncationNeverPanics feeds every prefix of a valid blob to the
// reader: each must error or parse, never panic.
func TestTruncationNeverPanics(t *testing.T) {
	blob := buildBlob(t)
	for n := 0; n < len(blob); n++ {
		if _, err := NewReader(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", n, len(blob))
		}
	}
}

// TestCorruptionDetected flips each byte of the blob in turn; every
// mutant must be rejected (checksum, magic, or structural error) —
// and none may panic.
func TestCorruptionDetected(t *testing.T) {
	blob := buildBlob(t)
	for i := range blob {
		mut := bytes.Clone(blob)
		mut[i] ^= 0x5a
		if _, err := NewReader(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	var e Encoder
	e.U32(5)
	d := NewDecoder(e.Bytes())
	_ = d.U64() // needs 8 bytes, only 4 available
	if d.Err() == nil {
		t.Fatal("truncated read not detected")
	}
	// All subsequent reads observe the sticky error and return zeros.
	if got := d.U32(); got != 0 {
		t.Errorf("post-error U32 = %d", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("post-error String = %q", got)
	}
	if err := d.Close(); err == nil {
		t.Error("Close after error returned nil")
	}
}

func TestBadBoolByte(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestLengthGuards(t *testing.T) {
	var e Encoder
	e.Int(-1)
	d := NewDecoder(e.Bytes())
	if n := d.Length(1); n != 0 || d.Err() == nil {
		t.Fatalf("negative length accepted: n=%d err=%v", n, d.Err())
	}

	var e2 Encoder
	e2.Int(1 << 40) // absurd element count for an empty payload
	d2 := NewDecoder(e2.Bytes())
	if n := d2.Length(8); n != 0 || d2.Err() == nil {
		t.Fatalf("oversized length accepted: n=%d err=%v", n, d2.Err())
	}
}

func TestCloseDetectsUnreadBytes(t *testing.T) {
	var e Encoder
	e.U64(1)
	e.U64(2)
	d := NewDecoder(e.Bytes())
	_ = d.U64()
	if err := d.Close(); err == nil {
		t.Fatal("unread trailing bytes accepted")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	blob := append(buildBlob(t), 0xab)
	if _, err := NewReader(bytes.NewReader(blob)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDuplicateSectionPanicsOnWrite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate section name did not panic")
		}
	}()
	w := NewWriter()
	w.Section("x", 1)
	w.Section("x", 1)
}
