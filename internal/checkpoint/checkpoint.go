// Package checkpoint defines the versioned, deterministic binary
// encoding used to serialize simulator state. A checkpoint blob is a
// sequence of named, individually-versioned sections, each protected by
// a CRC-64 checksum recorded in a manifest, so a resumed run can detect
// truncation and corruption before touching any simulator state.
//
// The encoding is deliberately primitive: fixed-width little-endian
// integers, IEEE-754 bit patterns for floats, and length-prefixed
// byte strings. There is no reflection and no schema negotiation —
// every layer writes its durable fields in a fixed order and reads them
// back in the same order, which is exactly the determinism contract the
// rest of the repository already lives by (DESIGN.md §7). Scratch state
// (pooled buffers, per-epoch accumulators that are empty at epoch
// boundaries, rebuildable indices) is never serialized; each layer's
// Restore reconstructs it.
//
// Decoders never panic on malformed input: every read is bounds-checked
// and the first failure latches a sticky error that all later reads
// observe. Writers compose sections through an Encoder; readers verify
// the manifest eagerly in NewReader and hand out per-section Decoders.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

// Magic identifies a checkpoint blob; Version is the container format
// version (sections carry their own versions on top).
const (
	Magic   = "VLCNCKPT"
	Version = 1
)

// maxSectionName bounds section-name lengths so a corrupt length prefix
// cannot drive a huge allocation.
const maxSectionName = 256

// crcTable is the ECMA polynomial table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshotter is the uniform per-layer contract: Snapshot appends the
// type's durable state to e; Restore reads it back in the same order,
// mutating the receiver in place (so aliases held by other layers stay
// wired). Restore returns the decoder's sticky error, if any.
type Snapshotter interface {
	Snapshot(e *Encoder)
	Restore(d *Decoder) error
}

// Encoder appends fixed-width little-endian primitives to a buffer.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends the IEEE-754 bit pattern of v. NaN payloads and signed
// zeros round-trip exactly, which the byte-identity contract requires.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes64 appends a length-prefixed byte string.
func (e *Encoder) Bytes64(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitives back in write order. The first malformed
// read latches a sticky error; all subsequent reads return zero values.
// Construct with NewDecoder or Reader.Section.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for reading.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) || d.off+n < d.off {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded with Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte at offset %d", d.off-1)
		return false
	}
}

// Bytes64 reads a length-prefixed byte string. The returned slice
// aliases the decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes64() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("byte string of %d exceeds remaining %d", n, d.Remaining())
		return nil
	}
	return d.take(int(n))
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes64()) }

// Length reads a count written with Encoder.Int and validates it as a
// collection length: non-negative and no larger than the remaining
// payload divided by elemBytes (the minimum encoded size of one
// element), so corrupt counts fail instead of driving huge allocations.
func (d *Decoder) Length(elemBytes int) int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.fail("negative length %d", n)
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > int64(d.Remaining()/elemBytes) {
		d.fail("length %d exceeds remaining payload (%d bytes)", n, d.Remaining())
		return 0
	}
	return int(n)
}

// section is one named unit of a checkpoint blob.
type section struct {
	name    string
	version uint32
	enc     *Encoder
}

// Writer composes named sections into one checkpoint blob.
type Writer struct {
	sections []*section
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Section starts a new section and returns its encoder. Section names
// must be unique within a blob; a duplicate panics (writer-side bug,
// not input corruption).
func (w *Writer) Section(name string, version uint32) *Encoder {
	if name == "" || len(name) > maxSectionName {
		panic(fmt.Sprintf("checkpoint: bad section name %q", name))
	}
	for _, s := range w.sections {
		if s.name == name {
			panic(fmt.Sprintf("checkpoint: duplicate section %q", name))
		}
	}
	s := &section{name: name, version: version, enc: &Encoder{}}
	w.sections = append(w.sections, s)
	return s.enc
}

// WriteTo serializes the blob: header, section count, then each
// section as (name, version, payload length, payload, CRC-64). The
// inline (name, version, length, checksum) tuples are the manifest.
// WriteTo implements io.WriterTo. A trailing CRC-64 over the whole
// body protects the manifest itself (names, versions, lengths) — the
// per-section checksums only cover payloads.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var e Encoder
	e.buf = append(e.buf, Magic...)
	e.U32(Version)
	e.U32(uint32(len(w.sections)))
	for _, s := range w.sections {
		e.String(s.name)
		e.U32(s.version)
		e.Bytes64(s.enc.buf)
		e.U64(crc64.Checksum(s.enc.buf, crcTable))
	}
	e.U64(crc64.Checksum(e.buf, crcTable))
	n, err := out.Write(e.buf)
	return int64(n), err
}

// SectionInfo describes one manifest entry.
type SectionInfo struct {
	Name    string
	Version uint32
	Size    int
}

// Reader parses a checkpoint blob, verifying the container version and
// every section checksum up front.
type Reader struct {
	payloads map[string][]byte
	versions map[string]uint32
	order    []SectionInfo
}

// NewReader reads the whole blob from r and validates it: magic, the
// whole-body checksum, the container version, then every section
// checksum.
func NewReader(r io.Reader) (*Reader, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading blob: %w", err)
	}
	if len(blob) < len(Magic)+8 || string(blob[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic (not a checkpoint blob)")
	}
	body, trailer := blob[:len(blob)-8], blob[len(blob)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(trailer) {
		return nil, fmt.Errorf("checkpoint: body checksum mismatch (corrupt or truncated blob)")
	}
	d := NewDecoder(body)
	d.take(len(Magic))
	if v := d.U32(); d.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (want %d)", v, Version)
	}
	n := d.U32()
	if d.err == nil && uint64(n) > uint64(d.Remaining()) {
		d.fail("section count %d exceeds blob size", n)
	}
	rd := &Reader{
		payloads: make(map[string][]byte),
		versions: make(map[string]uint32),
	}
	for i := 0; d.err == nil && i < int(n); i++ {
		nameLen := d.U64()
		if d.err == nil && nameLen > maxSectionName {
			d.fail("section name length %d exceeds limit", nameLen)
			break
		}
		name := string(d.take(int(nameLen)))
		version := d.U32()
		payload := d.Bytes64()
		sum := d.U64()
		if d.err != nil {
			break
		}
		if _, dup := rd.payloads[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate section %q", name)
		}
		if got := crc64.Checksum(payload, crcTable); got != sum {
			return nil, fmt.Errorf("checkpoint: section %q checksum mismatch (corrupt blob)", name)
		}
		rd.payloads[name] = payload
		rd.versions[name] = version
		rd.order = append(rd.order, SectionInfo{Name: name, Version: version, Size: len(payload)})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after last section", d.Remaining())
	}
	return rd, nil
}

// Manifest returns the section list in blob order.
func (r *Reader) Manifest() []SectionInfo { return r.order }

// Has reports whether the blob contains a section.
func (r *Reader) Has(name string) bool {
	_, ok := r.payloads[name]
	return ok
}

// Version returns the recorded version of the named section and whether
// the section exists. Layers that accept more than one wire version use
// it to dispatch before calling Section with the matched version.
func (r *Reader) Version(name string) (uint32, bool) {
	v, ok := r.versions[name]
	return v, ok
}

// Section returns a decoder over the named section's payload. It errors
// when the section is missing or its recorded version differs from
// want: sections are versioned independently so a layer can evolve its
// encoding without invalidating every other layer's.
func (r *Reader) Section(name string, want uint32) (*Decoder, error) {
	p, ok := r.payloads[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: missing section %q", name)
	}
	if v := r.versions[name]; v != want {
		return nil, fmt.Errorf("checkpoint: section %q version %d (want %d)", name, v, want)
	}
	return NewDecoder(p), nil
}

// Close verifies a fully-consumed section: a Restore that leaves
// unread bytes (or hit a sticky error) indicates an encode/decode
// mismatch and must not be trusted.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("checkpoint: %d unread bytes at section end", d.Remaining())
	}
	return nil
}
