package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRollingPath pins the stamp format.
func TestRollingPath(t *testing.T) {
	for _, tc := range []struct {
		base  string
		epoch int
		want  string
	}{
		{"out/run.ckpt", 30, "out/run.t030.ckpt"},
		{"out/run.ckpt", 5, "out/run.t005.ckpt"},
		{"out/run.ckpt", 1234, "out/run.t1234.ckpt"},
		{"noext", 7, "noext.t007"},
	} {
		if got := RollingPath(tc.base, tc.epoch); got != tc.want {
			t.Errorf("RollingPath(%q, %d) = %q, want %q", tc.base, tc.epoch, got, tc.want)
		}
	}
}

func writeRollingImage(t *testing.T, base string, epoch int) string {
	t.Helper()
	w := NewWriter()
	w.Section("test", 1).Int(epoch)
	path, err := WriteRolling(w, base, epoch)
	if err != nil {
		t.Fatalf("WriteRolling(%d): %v", epoch, err)
	}
	return path
}

// TestRollingRetention exercises write → prune → latest over a family.
func TestRollingRetention(t *testing.T) {
	base := filepath.Join(t.TempDir(), "run.ckpt")

	if _, _, ok, err := LatestRolling(base); err != nil || ok {
		t.Fatalf("empty family: ok=%t err=%v, want none", ok, err)
	}

	for _, e := range []int{10, 20, 30, 40} {
		writeRollingImage(t, base, e)
	}
	// A stray .tmp from a torn write must not count as a member.
	if err := os.WriteFile(RollingPath(base, 50)+".tmp", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	path, epoch, ok, err := LatestRolling(base)
	if err != nil || !ok || epoch != 40 || path != RollingPath(base, 40) {
		t.Fatalf("LatestRolling = (%q, %d, %t, %v), want epoch 40", path, epoch, ok, err)
	}

	deleted, err := PruneRolling(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 || deleted[0] != RollingPath(base, 10) || deleted[1] != RollingPath(base, 20) {
		t.Fatalf("pruned %v, want the two oldest", deleted)
	}
	for _, e := range []int{30, 40} {
		if _, err := os.Stat(RollingPath(base, e)); err != nil {
			t.Fatalf("epoch %d image pruned away: %v", e, err)
		}
	}

	// Keep <= 0 keeps everything; pruning an already-small family is a
	// no-op.
	if deleted, err := PruneRolling(base, 0); err != nil || deleted != nil {
		t.Fatalf("PruneRolling(0) = (%v, %v), want no-op", deleted, err)
	}
	if deleted, err := PruneRolling(base, 5); err != nil || deleted != nil {
		t.Fatalf("PruneRolling(5) = (%v, %v), want no-op", deleted, err)
	}

	// The retained newest image still opens and carries its payload.
	f, err := os.Open(RollingPath(base, 40))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.Section("test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Int(); got != 40 {
		t.Fatalf("payload %d, want 40", got)
	}
}

// TestRollingFamilyIsolation: families of different bases in one
// directory do not see each other.
func TestRollingFamilyIsolation(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ckpt")
	b := filepath.Join(dir, "b.ckpt")
	writeRollingImage(t, a, 3)
	writeRollingImage(t, b, 9)

	if _, epoch, ok, _ := LatestRolling(a); !ok || epoch != 3 {
		t.Fatalf("family a latest = (%d, %t), want epoch 3", epoch, ok)
	}
	if deleted, err := PruneRolling(a, 1); err != nil || deleted != nil {
		t.Fatalf("pruning a touched %v (%v)", deleted, err)
	}
	if _, _, ok, _ := LatestRolling(b); !ok {
		t.Fatal("family b lost its image")
	}
}
