// Package radix provides a stable LSD radix sort over parallel key
// arrays, used by the per-epoch ranking paths (policy candidate
// selection, promotion-queue ordering) in place of comparison sorts.
//
// Callers express their comparator as a composite (major, minor) uint64
// key pair per element; the sort orders by major ascending, then minor
// ascending. Because every ranking comparator in the tree is a total
// order (heat, then owner app, then page number), the composite key
// reproduces the comparison sort's output exactly — no reliance on input
// order or stability subtleties. Descending float orders are expressed
// through the key transforms below.
package radix

import (
	"math"
	"math/bits"
)

// FloatKeyAsc maps f to a uint64 whose unsigned ascending order matches
// f's ascending order (monotone float-bits transform, valid across the
// full float64 range including negatives and zeros of either sign).
func FloatKeyAsc(f float64) uint64 {
	k := math.Float64bits(f)
	if k>>63 == 1 {
		return ^k
	}
	return k ^ 1<<63
}

// FloatKeyDesc maps f to a uint64 whose unsigned ascending order matches
// f's descending order.
func FloatKeyDesc(f float64) uint64 { return ^FloatKeyAsc(f) }

// Buf holds one caller's reusable sort buffers. Each owner carries its
// own instance (simulations are single-threaded, but lab workers run
// whole simulations in parallel, so shared package-level scratch would
// race). The zero value is ready to use.
type Buf[T any] struct {
	spare      []T
	major      []uint64
	minor      []uint64
	majorSpare []uint64
	minorSpare []uint64
}

// Keys returns the major and minor key arrays sized for n elements,
// growing the backing buffers once at each high-water mark. The caller
// fills both before Sort; contents do not persist across calls.
func (b *Buf[T]) Keys(n int) (major, minor []uint64) {
	if cap(b.major) < n {
		// Jump to a power of two so a slowly growing candidate count does
		// not reallocate the buffers every epoch.
		c := 1 << bits.Len(uint(n-1))
		b.major = make([]uint64, c)
		b.minor = make([]uint64, c)
		b.majorSpare = make([]uint64, c)
		b.minorSpare = make([]uint64, c)
	}
	return b.major[:n], b.minor[:n]
}

// Sort stably reorders a by (major, minor) ascending, where the key
// arrays were obtained from Keys and filled by the caller. It returns
// the sorted slice, which aliases either a's backing array or the
// buffer's spare (the other is retained as the next call's spare). Key
// contents are consumed. Passes whose byte is uniform across all keys
// are skipped, so narrow key ranges (small page numbers, few apps) cost
// close to nothing.
func (b *Buf[T]) Sort(a []T, major, minor []uint64) []T {
	n := len(a)
	if n < 2 {
		return a
	}
	if cap(b.spare) < n {
		c := cap(b.major)
		if c < n {
			c = n
		}
		b.spare = make([]T, c)
	}
	out := b.spare[:n]
	ka, kb := minor, b.minorSpare[:n]
	// Minor passes first (least significant), carrying the major keys
	// along so the later major passes see them in the permuted order.
	ca, cb := major, b.majorSpare[:n]
	// One linear scan finds the bytes that actually vary: a byte is
	// uniform across all keys exactly when its OR and AND agree, and a
	// uniform byte's counting pass would be an identity copy. Typical
	// rankings vary in only a handful of the sixteen bytes (small page
	// numbers, few apps, clustered heats), so most passes vanish here.
	var orMin, andMin, orMaj, andMaj uint64
	orMin, andMin = ka[0], ka[0]
	orMaj, andMaj = ca[0], ca[0]
	for i := 1; i < n; i++ {
		orMin |= ka[i]
		andMin &= ka[i]
		orMaj |= ca[i]
		andMaj &= ca[i]
	}
	var counts [256]int
	pass := func(keys []uint64, shift uint) {
		clear(counts[:])
		for _, k := range keys {
			counts[(k>>shift)&0xFF]++
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for i, k := range keys {
			j := counts[(k>>shift)&0xFF]
			counts[(k>>shift)&0xFF] = j + 1
			out[j] = a[i]
			kb[j] = ka[i]
			cb[j] = ca[i]
		}
		a, out = out, a
		ka, kb = kb, ka
		ca, cb = cb, ca
	}
	varMin := orMin ^ andMin
	varMaj := orMaj ^ andMaj
	for shift := uint(0); shift < 64; shift += 8 {
		if (varMin>>shift)&0xFF != 0 {
			pass(ka, shift)
		}
	}
	for shift := uint(0); shift < 64; shift += 8 {
		if (varMaj>>shift)&0xFF != 0 {
			pass(ca, shift)
		}
	}
	b.spare = out
	b.major, b.majorSpare = ca, cb
	b.minor, b.minorSpare = ka, kb
	return a
}

// TopK selects the k smallest elements of a stream under the composite
// (major, minor) key order without materializing or sorting the whole
// stream: a bounded binary max-heap holds the running k smallest, so
// once it fills, an offer that is not among them costs one comparison.
// Rankings that consume only a bounded prefix (demotion victim picks)
// use this in place of a full sort; because the composite key is a
// total order over distinct elements, the selected set — and, after the
// caller sorts it — the emitted prefix is exactly the one a full sort
// would have produced.
//
// Maj, Min and Val are parallel arrays forming the heap; after offers
// complete, callers typically copy the keys into a Buf's Keys arrays
// and Sort Val by them.
type TopK[T any] struct {
	Maj []uint64
	Min []uint64
	Val []T
	k   int
}

// Reset prepares the selector to keep the k smallest of a new stream,
// reusing the backing arrays.
func (t *TopK[T]) Reset(k int) {
	if k < 0 {
		k = 0
	}
	t.k = k
	if k == 0 {
		t.Maj, t.Min, t.Val = t.Maj[:0], t.Min[:0], t.Val[:0]
		return
	}
	if cap(t.Maj) < k {
		c := 1 << bits.Len(uint(k-1))
		t.Maj = make([]uint64, 0, c) //vulcan:allowalloc grow-once selection buffer, reused across epochs
		t.Min = make([]uint64, 0, c) //vulcan:allowalloc grow-once selection buffer, reused across epochs
		t.Val = make([]T, 0, c)      //vulcan:allowalloc grow-once selection buffer, reused across epochs
	}
	t.Maj, t.Min, t.Val = t.Maj[:0], t.Min[:0], t.Val[:0]
}

// greater reports whether heap element i orders after element j.
func (t *TopK[T]) greater(i, j int) bool {
	if t.Maj[i] != t.Maj[j] {
		return t.Maj[i] > t.Maj[j]
	}
	return t.Min[i] > t.Min[j]
}

func (t *TopK[T]) swap(i, j int) {
	t.Maj[i], t.Maj[j] = t.Maj[j], t.Maj[i]
	t.Min[i], t.Min[j] = t.Min[j], t.Min[i]
	t.Val[i], t.Val[j] = t.Val[j], t.Val[i]
}

func (t *TopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.greater(i, parent) {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.Val)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && t.greater(r, l) {
			big = r
		}
		if !t.greater(big, i) {
			return
		}
		t.swap(i, big)
		i = big
	}
}

// Offer considers one element. It keeps the element iff it is among the
// k smallest seen so far.
//
//vulcan:hotpath
func (t *TopK[T]) Offer(maj, min uint64, v T) {
	if t.k == 0 {
		return
	}
	if len(t.Val) < t.k {
		t.Maj = append(t.Maj, maj)
		t.Min = append(t.Min, min)
		t.Val = append(t.Val, v)
		t.up(len(t.Val) - 1)
		return
	}
	// Heap full: replace the current maximum iff the new element orders
	// strictly before it.
	if maj > t.Maj[0] || (maj == t.Maj[0] && min >= t.Min[0]) {
		return
	}
	t.Maj[0], t.Min[0], t.Val[0] = maj, min, v
	t.down(0)
}
