package radix

import (
	"math"
	"slices"
	"testing"
)

type el struct {
	heat float64
	app  int
	vp   uint64
}

// refOrder is the comparison sort the radix sort must reproduce:
// heat descending, then app ascending, then vp ascending.
func refOrder(x, y el) int {
	switch {
	case x.heat > y.heat:
		return -1
	case x.heat < y.heat:
		return 1
	case x.app != y.app:
		return x.app - y.app
	case x.vp < y.vp:
		return -1
	case x.vp > y.vp:
		return 1
	default:
		return 0
	}
}

func TestFloatKeyMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 1, 2.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		if a < b && FloatKeyAsc(a) >= FloatKeyAsc(b) {
			t.Errorf("FloatKeyAsc not monotone at %g < %g", a, b)
		}
		if a < b && FloatKeyDesc(a) <= FloatKeyDesc(b) {
			t.Errorf("FloatKeyDesc not antitone at %g < %g", a, b)
		}
	}
	if FloatKeyAsc(0) != FloatKeyAsc(math.Copysign(0, -1)) {
		// ±0 compare equal as floats; their keys differ, which is fine for
		// rankings (heats are never -0) but worth pinning as a known edge.
		t.Log("±0 keys differ (expected: bits transform distinguishes them)")
	}
}

func TestSortMatchesComparisonSort(t *testing.T) {
	// Deterministic pseudo-random stream (xorshift), including duplicate
	// heats, duplicate (heat, app) pairs, zeros, and negatives.
	s := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	var b Buf[el]
	for _, n := range []int{0, 1, 2, 3, 17, 256, 4096} {
		items := make([]el, n)
		for i := range items {
			heats := []float64{0, 1, 1, 2.5, -3, 1e-9, 7, 7, 7}
			items[i] = el{
				heat: heats[next()%uint64(len(heats))],
				app:  int(next() % 5),
				vp:   next() % 1_000_000,
			}
		}
		want := slices.Clone(items)
		slices.SortFunc(want, refOrder)

		major, minor := b.Keys(n)
		for i, it := range items {
			major[i] = FloatKeyDesc(it.heat)
			minor[i] = uint64(it.app)<<36 | it.vp
		}
		got := b.Sort(items, major, minor)
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d: radix order diverges from comparison sort", n)
		}
	}
}

// TestTopKMatchesSortPrefix pins the selection contract: Reset(k),
// Offer everything, sort the survivors — the result must equal the
// first k elements of a full sort under the same composite key.
func TestTopKMatchesSortPrefix(t *testing.T) {
	s := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	var sel TopK[el]
	var buf Buf[el]
	for _, n := range []int{0, 1, 5, 257, 2048} {
		for _, k := range []int{1, 3, 64, n + 7} {
			items := make([]el, n)
			for i := range items {
				heats := []float64{0, 1, 1, 2.5, 7, 7}
				items[i] = el{
					heat: heats[next()%uint64(len(heats))],
					app:  int(next() % 3),
					vp:   next() % 100_000,
				}
			}
			want := slices.Clone(items)
			slices.SortFunc(want, refOrder)
			if k < len(want) {
				want = want[:k]
			}

			sel.Reset(k)
			for _, it := range items {
				sel.Offer(FloatKeyDesc(it.heat), uint64(it.app)<<36|it.vp, it)
			}
			got := len(sel.Val)
			major, minor := buf.Keys(got)
			copy(major, sel.Maj)
			copy(minor, sel.Min)
			sel.Val = buf.Sort(sel.Val, major, minor)
			if !slices.Equal(sel.Val, want) {
				t.Fatalf("n=%d k=%d: selection diverges from sort prefix", n, k)
			}
		}
	}
}

func TestSortReusesBuffers(t *testing.T) {
	var b Buf[el]
	const n = 512
	allocs := testing.AllocsPerRun(20, func() {
		items := b.spare // reuse the spare as the input to avoid per-run allocation
		if cap(items) < n {
			items = make([]el, n)
		}
		items = items[:n]
		for i := range items {
			items[i] = el{heat: float64(i % 7), vp: uint64(n - i)}
		}
		major, minor := b.Keys(n)
		for i, it := range items {
			major[i] = FloatKeyDesc(it.heat)
			minor[i] = it.vp
		}
		b.Sort(items, major, minor)
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state Sort allocates %.1f times per run, want 0", allocs)
	}
}
