package tlb

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/pagetable"
)

func tlbRoundTrip(t *testing.T, src, dst *TLB) error {
	t.Helper()
	w := checkpoint.NewWriter()
	src.Snapshot(w.Section("tlb", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cr.Section("tlb", 1)
	if err != nil {
		t.Fatal(err)
	}
	return dst.Restore(d)
}

// TestTLBSnapshotRoundTrip requires a restored TLB to produce the exact
// hit/miss sequence of the original — the tag array is behavioral
// state, not just statistics.
func TestTLBSnapshotRoundTrip(t *testing.T) {
	src := New(64)
	for i := 0; i < 500; i++ {
		src.Access(pagetable.VPage(i * 37 % 190))
	}
	src.Invalidate(pagetable.VPage(37))

	dst := New(64)
	if err := tlbRoundTrip(t, src, dst); err != nil {
		t.Fatal(err)
	}
	if src.Stats() != dst.Stats() {
		t.Fatalf("stats %+v != %+v", src.Stats(), dst.Stats())
	}
	for i := 0; i < 500; i++ {
		vp := pagetable.VPage(i * 11 % 260)
		if a, b := src.Access(vp), dst.Access(vp); a != b {
			t.Fatalf("access %d (page %d): hit %v != %v", i, vp, a, b)
		}
	}
	if src.Stats() != dst.Stats() {
		t.Fatal("stats diverged after identical access suffix")
	}
}

func TestTLBRestoreEntryCountMismatch(t *testing.T) {
	src := New(64)
	src.Access(1)
	dst := New(128)
	if err := tlbRoundTrip(t, src, dst); err == nil {
		t.Fatal("entry-count mismatch accepted")
	}
}

func TestTLBRestoreTruncatedErrors(t *testing.T) {
	src := New(16)
	for i := 0; i < 40; i++ {
		src.Access(pagetable.VPage(i))
	}
	e := &checkpoint.Encoder{}
	src.Snapshot(e)
	blob := e.Bytes()
	for cut := 0; cut < len(blob); cut += 13 {
		if err := New(16).Restore(checkpoint.NewDecoder(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
