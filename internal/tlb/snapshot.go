package tlb

import (
	"fmt"

	"vulcan/internal/checkpoint"
)

// Snapshot appends the TLB's durable state: the full tag array (its
// contents determine future hit/miss sequences) and the cumulative
// counters.
func (t *TLB) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(t.tags))
	for _, tag := range t.tags {
		e.U64(tag)
	}
	e.U64(t.stats.Hits)
	e.U64(t.stats.Misses)
	e.U64(t.stats.Invalidations)
	e.U64(t.stats.Flushes)
	e.U64(t.stats.DelayedAcks)
}

// Restore reads the TLB state back in place. The entry count must match
// the constructed TLB (it is fixed by configuration, not state).
func (t *TLB) Restore(d *checkpoint.Decoder) error {
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(t.tags) {
		return fmt.Errorf("tlb: %d entries in checkpoint, %d configured", n, len(t.tags))
	}
	for i := range t.tags {
		t.tags[i] = d.U64()
	}
	t.stats.Hits = d.U64()
	t.stats.Misses = d.U64()
	t.stats.Invalidations = d.U64()
	t.stats.Flushes = d.U64()
	t.stats.DelayedAcks = d.U64()
	return d.Err()
}
