// Package tlb models per-CPU translation lookaside buffers. The model is
// a direct-mapped tag array — deliberately simple so that workload
// simulation can evaluate millions of accesses cheaply — but it captures
// the two properties the paper's mechanisms depend on: bounded reach
// (misses force page walks whose cost the machine model charges) and
// invalidation (shootdowns evict translations and the next access pays a
// walk).
package tlb

import (
	"fmt"

	"vulcan/internal/pagetable"
)

// DefaultEntries approximates a modern L2 STLB (e.g. Ice Lake: 2048
// 4KiB entries).
const DefaultEntries = 2048

// Stats are cumulative TLB counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // entries actually evicted by Invalidate
	Flushes       uint64
	// DelayedAcks counts shootdown IPIs whose acknowledgment was
	// delayed by an injected fault (internal/fault's IPIDelay kind);
	// always 0 on a well-behaved substrate.
	DelayedAcks uint64
}

// Merge returns the element-wise sum of two counter sets — used to
// aggregate a process's per-thread TLBs into one telemetry view.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		Hits:          s.Hits + o.Hits,
		Misses:        s.Misses + o.Misses,
		Invalidations: s.Invalidations + o.Invalidations,
		Flushes:       s.Flushes + o.Flushes,
		DelayedAcks:   s.DelayedAcks + o.DelayedAcks,
	}
}

// HitRate returns hits/(hits+misses), or 0 for an unused TLB.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// TLB is a single hardware translation cache (one per simulated CPU or
// thread context).
type TLB struct {
	tags  []uint64 // vp+1; 0 means empty
	mask  uint64
	stats Stats
}

// New builds a TLB with at least the requested number of entries
// (rounded up to a power of two).
func New(entries int) *TLB {
	if entries <= 0 {
		panic(fmt.Sprintf("tlb: non-positive entry count %d", entries))
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	return &TLB{tags: make([]uint64, size), mask: uint64(size - 1)}
}

func (t *TLB) slot(vp pagetable.VPage) uint64 {
	// Fibonacci hashing spreads adjacent vpages across the array.
	return (uint64(vp) * 0x9E3779B97F4A7C15 >> 32) & t.mask
}

// Access looks vp up, inserting it on miss, and reports whether it hit.
func (t *TLB) Access(vp pagetable.VPage) bool {
	s := t.slot(vp)
	if t.tags[s] == uint64(vp)+1 {
		t.stats.Hits++
		return true
	}
	t.stats.Misses++
	t.tags[s] = uint64(vp) + 1
	return false
}

// Contains reports whether vp is currently cached, without perturbing
// stats or contents.
func (t *TLB) Contains(vp pagetable.VPage) bool {
	return t.tags[t.slot(vp)] == uint64(vp)+1
}

// Invalidate removes vp's translation if present, reporting whether an
// entry was evicted. This is the per-page invalidation a shootdown IPI
// performs on its target CPU.
func (t *TLB) Invalidate(vp pagetable.VPage) bool {
	s := t.slot(vp)
	if t.tags[s] == uint64(vp)+1 {
		t.tags[s] = 0
		t.stats.Invalidations++
		return true
	}
	return false
}

// Flush empties the TLB (a full CR3 reload without PCID).
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
	}
	t.stats.Flushes++
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.tags) }

// Stats returns the cumulative counters.
func (t *TLB) Stats() Stats { return t.stats }

// NoteDelayedAck records one shootdown IPI whose acknowledgment was
// delayed by an injected fault (the cycle cost is charged by the
// migration engine; this only keeps the counter visible per thread).
func (t *TLB) NoteDelayedAck() { t.stats.DelayedAcks++ }

// ResetStats zeroes the counters, keeping contents.
func (t *TLB) ResetStats() { t.stats = Stats{} }
