package tlb

import (
	"testing"

	"vulcan/internal/pagetable"
)

func TestMissThenHit(t *testing.T) {
	tb := New(64)
	vp := pagetable.VPage(42)
	if tb.Access(vp) {
		t.Fatal("cold access hit")
	}
	if !tb.Access(vp) {
		t.Fatal("second access missed")
	}
	s := tb.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidate(t *testing.T) {
	tb := New(64)
	vp := pagetable.VPage(7)
	tb.Access(vp)
	if !tb.Contains(vp) {
		t.Fatal("entry missing after insert")
	}
	if !tb.Invalidate(vp) {
		t.Fatal("invalidate of cached entry returned false")
	}
	if tb.Contains(vp) {
		t.Fatal("entry survived invalidation")
	}
	if tb.Invalidate(vp) {
		t.Fatal("double invalidate returned true")
	}
	if tb.Access(vp) {
		t.Fatal("access after invalidation hit")
	}
}

func TestFlush(t *testing.T) {
	tb := New(64)
	for vp := pagetable.VPage(0); vp < 32; vp++ {
		tb.Access(vp)
	}
	tb.Flush()
	for vp := pagetable.VPage(0); vp < 32; vp++ {
		if tb.Contains(vp) {
			t.Fatalf("vp %d survived flush", vp)
		}
	}
	if tb.Stats().Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(100).Entries(); got != 128 {
		t.Fatalf("Entries = %d, want 128", got)
	}
	if got := New(64).Entries(); got != 64 {
		t.Fatalf("Entries = %d, want 64", got)
	}
}

func TestConflictEviction(t *testing.T) {
	// Fill far beyond capacity: the working set cannot all be resident.
	tb := New(16)
	for vp := pagetable.VPage(0); vp < 1024; vp++ {
		tb.Access(vp)
	}
	resident := 0
	for vp := pagetable.VPage(0); vp < 1024; vp++ {
		if tb.Contains(vp) {
			resident++
		}
	}
	if resident > 16 {
		t.Fatalf("%d residents in a 16-entry TLB", resident)
	}
}

func TestHitRateSmallWorkingSet(t *testing.T) {
	tb := New(DefaultEntries)
	// 128-page working set revisited many times: hit rate must approach 1.
	for round := 0; round < 100; round++ {
		for vp := pagetable.VPage(0); vp < 128; vp++ {
			tb.Access(vp)
		}
	}
	if hr := tb.Stats().HitRate(); hr < 0.95 {
		t.Fatalf("hit rate = %v for resident working set", hr)
	}
}

func TestHitRateZeroOnFresh(t *testing.T) {
	if New(8).Stats().HitRate() != 0 {
		t.Fatal("fresh TLB hit rate nonzero")
	}
}

func TestResetStats(t *testing.T) {
	tb := New(8)
	tb.Access(1)
	tb.ResetStats()
	if s := tb.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if !tb.Contains(1) {
		t.Fatal("ResetStats dropped contents")
	}
}

func TestNonPositiveEntriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestDelayedAcks(t *testing.T) {
	tb := New(8)
	tb.NoteDelayedAck()
	tb.NoteDelayedAck()
	if got := tb.Stats().DelayedAcks; got != 2 {
		t.Fatalf("DelayedAcks = %d", got)
	}
	merged := tb.Stats().Merge(Stats{DelayedAcks: 3})
	if merged.DelayedAcks != 5 {
		t.Fatalf("merged DelayedAcks = %d", merged.DelayedAcks)
	}
	tb.ResetStats()
	if tb.Stats().DelayedAcks != 0 {
		t.Fatal("reset kept DelayedAcks")
	}
}
