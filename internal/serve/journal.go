// Package serve is vulcand's engine: a long-running serving session
// that owns a dynamic system.System, advances it epoch by epoch, admits
// and departs workloads at epoch boundaries from a control API or a
// deterministic arrival plan, streams telemetry incrementally, and
// journals every command so the whole run can be replayed — or resumed
// after a crash — byte for byte (DESIGN.md §16).
//
// The package sits inside the simulation tree for the determinism
// contract (no wall clock, no environment, no map-order iteration) but
// carries a scoped labonly exemption: the HTTP control plane needs
// goroutines and a mutex. All simulation state is only ever touched
// between epoch boundaries under that one mutex, so the sim tree itself
// stays serial — which the journal-replay parity tests prove.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"vulcan/internal/scenario"
)

// journalVersion is the journal header's wire version.
const journalVersion = 1

// Cmd is one daemon command, as executed and journaled. The journal is
// the deterministic admission schedule: replaying it through the batch
// path reproduces the daemon's artifacts byte for byte.
type Cmd struct {
	// Op is "admit", "stop" or "intensity".
	Op string `json:"op"`
	// App is the admitted spec in scenario shape (admit only). Presets
	// and custom generators both survive the JSON round trip.
	App *scenario.App `json:"app,omitempty"`
	// Name is the stop/intensity target — or, on admit, the instance
	// name overriding the spec's own (arrival-plan instances).
	Name string `json:"name,omitempty"`
	// Milli is the intensity override in thousandths (intensity only).
	Milli int `json:"milli,omitempty"`
	// Src records who issued the command: "api" or "arrival".
	Src string `json:"src,omitempty"`
	// Depart, on admit, schedules the instance's stop at that epoch
	// boundary (0 = runs to the end). Derived departures are not
	// journaled as stop commands — the admit carries them.
	Depart int `json:"depart,omitempty"`
}

// Header is the journal's first line: everything a replay needs to
// rebuild the session's substrate before applying command batches.
type Header struct {
	V        int           `json:"v"`
	Scenario scenario.File `json:"scenario"`
	// MaxBacklog and Rescore mirror the session knobs that change
	// simulation arithmetic; a replay must run with the same values.
	MaxBacklog int  `json:"max_backlog,omitempty"`
	Rescore    bool `json:"rescore,omitempty"`
}

// Batch is one epoch boundary's executed commands. Boundaries with no
// commands write no record.
type Batch struct {
	Epoch int   `json:"epoch"`
	Cmds  []Cmd `json:"cmds"`
}

// trailer marks a completed run.
type trailer struct {
	Finish int `json:"finish"`
}

// record is the union shape a reader discriminates lines with.
type record struct {
	V        *int           `json:"v,omitempty"`
	Scenario *scenario.File `json:"scenario,omitempty"`
	Epoch    *int           `json:"epoch,omitempty"`
	Cmds     []Cmd          `json:"cmds,omitempty"`
	Finish   *int           `json:"finish,omitempty"`

	MaxBacklog int  `json:"max_backlog,omitempty"`
	Rescore    bool `json:"rescore,omitempty"`
}

// Journal is the append-side handle. Every record is one JSON line,
// written with a single Write call and fsynced before Append returns,
// so a crash can tear at most the trailing line — which recovery
// detects and truncates.
type Journal struct {
	f *os.File
}

// CreateJournal writes a fresh journal at path, starting with the
// header line.
func CreateJournal(path string, hdr Header) (*Journal, error) {
	hdr.V = journalVersion
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f}
	if err := j.appendLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournalAppend reopens an existing journal for appending after
// recovery truncated it to cleanSize bytes.
func openJournalAppend(path string, cleanSize int64) (*Journal, error) {
	if err := os.Truncate(path, cleanSize); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append journals one epoch batch.
func (j *Journal) Append(b Batch) error { return j.appendLine(b) }

// Finish journals the completion trailer.
func (j *Journal) Finish(epoch int) error { return j.appendLine(trailer{Finish: epoch}) }

// Close closes the journal file (a finished run keeps its trailer; an
// unfinished one is resumable).
func (j *Journal) Close() error { return j.f.Close() }

// appendLine marshals v, writes it as one line and fsyncs.
func (j *Journal) appendLine(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// JournalData is a parsed journal.
type JournalData struct {
	Header   Header
	Batches  []Batch
	Finished bool
	// FinishEpoch is the trailer's epoch when Finished.
	FinishEpoch int
	// CleanSize is the byte offset just past the last complete record;
	// recovery truncates the file here before appending.
	CleanSize int64
}

// BatchFor returns the journaled commands for one epoch boundary (nil
// when the boundary wrote none).
func (d *JournalData) BatchFor(epoch int) []Cmd {
	for i := range d.Batches {
		if d.Batches[i].Epoch == epoch {
			return d.Batches[i].Cmds
		}
	}
	return nil
}

// LastEpoch returns the highest journaled batch epoch, or -1 when no
// batches were written.
func (d *JournalData) LastEpoch() int {
	if len(d.Batches) == 0 {
		return -1
	}
	return d.Batches[len(d.Batches)-1].Epoch
}

// ReadJournal parses a journal file. The trailing line may be torn (a
// crash mid-append): it is dropped and excluded from CleanSize. A
// malformed line anywhere else is corruption and errors out.
func ReadJournal(path string) (*JournalData, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := &JournalData{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var off int64
	lineNo := 0
	lastEpoch := -1
	for sc.Scan() {
		line := sc.Bytes()
		lineLen := int64(len(line)) + 1 // the terminating newline
		torn := off+lineLen > int64(len(raw))
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil || !wellFormed(lineNo, rec) {
			if torn || off+lineLen == int64(len(raw)) {
				// Tail line: torn write. Anything after it would also be
				// torn debris; stop here.
				break
			}
			return nil, fmt.Errorf("serve: journal %s line %d is corrupt", path, lineNo+1)
		}
		if torn {
			// Parsed but unterminated: the newline never hit the disk, so
			// a concurrent append could still be in flight. Treat as torn.
			break
		}
		switch {
		case lineNo == 0:
			if *rec.V != journalVersion {
				return nil, fmt.Errorf("serve: journal %s version %d (want %d)", path, *rec.V, journalVersion)
			}
			d.Header = Header{V: *rec.V, Scenario: *rec.Scenario,
				MaxBacklog: rec.MaxBacklog, Rescore: rec.Rescore}
		case rec.Epoch != nil:
			if d.Finished {
				return nil, fmt.Errorf("serve: journal %s has a batch after the finish trailer", path)
			}
			if *rec.Epoch <= lastEpoch {
				return nil, fmt.Errorf("serve: journal %s batch epochs out of order at line %d", path, lineNo+1)
			}
			lastEpoch = *rec.Epoch
			d.Batches = append(d.Batches, Batch{Epoch: *rec.Epoch, Cmds: rec.Cmds})
		default:
			if d.Finished {
				return nil, fmt.Errorf("serve: journal %s has two finish trailers", path)
			}
			d.Finished = true
			d.FinishEpoch = *rec.Finish
		}
		off += lineLen
		lineNo++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: journal %s: %w", path, err)
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("serve: journal %s has no intact header", path)
	}
	d.CleanSize = off
	return d, nil
}

// wellFormed checks that a parsed record is the right shape for its
// position: header first, then batches and at most one trailer.
func wellFormed(lineNo int, rec record) bool {
	if lineNo == 0 {
		return rec.V != nil && rec.Scenario != nil
	}
	if rec.V != nil || rec.Scenario != nil {
		return false
	}
	if rec.Epoch != nil {
		return rec.Finish == nil && *rec.Epoch >= 0
	}
	return rec.Finish != nil && *rec.Finish >= 0
}
