package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"vulcan/internal/scenario"
)

// Daemon wraps a live Session in a local control plane: a unix-socket
// HTTP/JSON API accepting admissions, departures, intensity changes and
// lifecycle commands while the epoch loop advances. One mutex
// serializes every simulation touch — handlers only enqueue or read
// between epochs, so the simulation itself stays strictly serial and
// the journal stays a total order.
//
// Pacing is injected: the daemon never sleeps itself (the simulation
// tree is wall-clock-free); cmd/vulcand passes a pace closure for
// real-time or scaled-time stepping, or nil for manual mode where
// POST /v1/step drives epochs.
type Daemon struct {
	mu sync.Mutex
	s  *Session

	pace func() // nil = manual stepping via /v1/step

	srv *http.Server
	ln  net.Listener

	stopOnce sync.Once
	stopCh   chan struct{}
	finOnce  sync.Once
	finCh    chan struct{}

	fatal error // first fatal Step error, under mu
}

// NewDaemon binds the control API to a unix socket. pace is called
// before every epoch in auto mode; pass nil for manual stepping.
func NewDaemon(s *Session, socket string, pace func()) (*Daemon, error) {
	ln, err := net.Listen("unix", socket)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		s:      s,
		pace:   pace,
		ln:     ln,
		stopCh: make(chan struct{}),
		finCh:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/admit", d.handleCmd("admit"))
	mux.HandleFunc("/v1/stop", d.handleCmd("stop"))
	mux.HandleFunc("/v1/intensity", d.handleCmd("intensity"))
	mux.HandleFunc("/v1/step", d.handleStep)
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/checkpoint", d.handleCheckpoint)
	mux.HandleFunc("/v1/shutdown", d.handleShutdown)
	d.srv = &http.Server{Handler: mux}
	return d, nil
}

// Run serves the control API and drives the epoch loop until the run
// finishes, a fatal error hits, or /v1/shutdown asks to stop. A
// shutdown before the target suspends the session resumably (journal
// kept, no trailer); a completed run seals it. Returns the fatal error,
// if any.
func (d *Daemon) Run() error {
	go d.srv.Serve(d.ln)

	if d.pace == nil {
		// Manual mode: epochs arrive over /v1/step.
		select {
		case <-d.stopCh:
		case <-d.finCh:
		}
	} else {
		d.autoLoop()
	}

	d.mu.Lock()
	fatal := d.fatal
	finished := d.s.Finished()
	var suspendErr error
	if !finished {
		suspendErr = d.s.Suspend()
	}
	d.mu.Unlock()

	// Graceful server teardown: in-flight responses (the shutdown
	// handler's own reply included) complete before the socket closes.
	d.srv.Shutdown(context.Background())
	if fatal != nil {
		return fatal
	}
	return suspendErr
}

// autoLoop paces and steps until done.
func (d *Daemon) autoLoop() {
	for {
		select {
		case <-d.stopCh:
			return
		default:
		}
		d.pace()
		d.mu.Lock()
		if d.s.Finished() {
			d.mu.Unlock()
			return
		}
		err := d.s.Step()
		finished := d.s.Finished()
		if err != nil {
			d.fatal = err
		}
		d.mu.Unlock()
		if err != nil || finished {
			return
		}
	}
}

// Stop asks the run loop to exit (same as POST /v1/shutdown).
func (d *Daemon) Stop() { d.stopOnce.Do(func() { close(d.stopCh) }) }

// cmdRequest is the wire shape of the three command endpoints.
type cmdRequest struct {
	App    *scenario.App `json:"app,omitempty"`
	Name   string        `json:"name,omitempty"`
	Milli  int           `json:"milli,omitempty"`
	Depart int           `json:"depart,omitempty"`
}

// AppStatus is one app's line in a status reply.
type AppStatus struct {
	Name           string  `json:"name"`
	Class          string  `json:"class"`
	Started        bool    `json:"started"`
	Stopped        bool    `json:"stopped"`
	FastPages      int     `json:"fast_pages"`
	FTHR           float64 `json:"fthr"`
	IntensityMilli int     `json:"intensity_milli"`
}

// StatusReply is the /v1/status payload.
type StatusReply struct {
	Epoch    int         `json:"epoch"`
	Target   int         `json:"target"`
	Finished bool        `json:"finished"`
	Pending  int         `json:"pending"`
	Apps     []AppStatus `json:"apps"`
	Errs     []string    `json:"errs,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// handleCmd enqueues one command for the next epoch boundary.
func (d *Daemon) handleCmd(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
			return
		}
		var req cmdRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		c := Cmd{Op: op, App: req.App, Name: req.Name, Milli: req.Milli, Depart: req.Depart}
		d.mu.Lock()
		err := d.s.Enqueue(c)
		epoch := d.s.Epoch()
		d.mu.Unlock()
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"queued_for_epoch": epoch})
	}
}

// handleStep advances epochs synchronously — manual mode only.
func (d *Daemon) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	if d.pace != nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("auto-paced daemon; /v1/step is for -speed 0 manual mode"))
		return
	}
	var req struct {
		Epochs int `json:"epochs"`
	}
	if r.Body != nil {
		json.NewDecoder(r.Body).Decode(&req)
	}
	if req.Epochs <= 0 {
		req.Epochs = 1
	}
	d.mu.Lock()
	var err error
	for i := 0; i < req.Epochs && !d.s.Finished() && err == nil; i++ {
		err = d.s.Step()
	}
	if err != nil {
		d.fatal = err
	}
	reply := d.statusLocked()
	finished := d.s.Finished()
	d.mu.Unlock()
	if finished {
		d.finOnce.Do(func() { close(d.finCh) })
	}
	if err != nil {
		d.Stop()
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// statusLocked builds a status reply; the caller holds mu.
func (d *Daemon) statusLocked() StatusReply {
	reply := StatusReply{
		Epoch:    d.s.Epoch(),
		Target:   d.s.Target(),
		Finished: d.s.Finished(),
		Pending:  d.s.Pending(),
		Errs:     d.s.Errs(),
	}
	for _, a := range d.s.System().Apps() {
		as := AppStatus{
			Name:           a.Name(),
			Class:          a.Class().String(),
			Started:        a.Started(),
			Stopped:        a.Stopped(),
			IntensityMilli: a.IntensityMilli(),
		}
		// Runtime metrics exist once the app has been admitted; an app
		// still waiting on its StartAt has none.
		if a.Started() || a.Stopped() {
			as.FastPages = a.FastPages()
			as.FTHR = a.FTHR()
		}
		reply.Apps = append(reply.Apps, as)
	}
	return reply
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	reply := d.statusLocked()
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	d.mu.Lock()
	var err error
	if d.s.Finished() {
		err = fmt.Errorf("session finished")
	} else {
		err = d.s.Checkpoint()
	}
	epoch := d.s.Epoch()
	d.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"checkpoint_epoch": epoch})
}

func (d *Daemon) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stopping": true})
	d.Stop()
}
