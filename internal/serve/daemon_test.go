package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// sockClient returns an HTTP client that dials the unix socket.
func sockClient(socket string) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", socket)
			},
		},
	}
}

func post(t *testing.T, c *http.Client, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := c.Post("http://vulcand"+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func getStatus(t *testing.T, c *http.Client) StatusReply {
	t.Helper()
	resp, err := c.Get("http://vulcand/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDaemonManualMode drives a manual-stepping daemon over its unix
// socket: admit, step, status, checkpoint, stop, and a clean wind-down
// when the run completes.
func TestDaemonManualMode(t *testing.T) {
	// Unix socket paths are length-limited (~104 bytes); t.TempDir can
	// exceed that under deep test roots.
	sockDir, err := os.MkdirTemp("", "vd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(sockDir)
	dir := t.TempDir()

	s, err := NewSession(Options{
		Scenario:       testScenario(8),
		Journal:        filepath.Join(dir, "run.journal"),
		CheckpointBase: filepath.Join(dir, "run.ckpt"),
	})
	if err != nil {
		t.Fatal(err)
	}
	socket := filepath.Join(sockDir, "vulcand.sock")
	d, err := NewDaemon(s, socket, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run() }()
	c := sockClient(socket)

	st := getStatus(t, c)
	if st.Epoch != 0 || st.Target != 8 || st.Finished {
		t.Fatalf("initial status: %+v", st)
	}

	// Queue an admission, then step past its boundary.
	code, body := post(t, c, "/v1/admit",
		`{"app": {"name": "burst", "class": "BE", "threads": 1, "rss_pages": 2048, "generator": "uniform"}, "depart": 6}`)
	if code != http.StatusOK {
		t.Fatalf("admit: %d %v", code, body)
	}
	if code, body := post(t, c, "/v1/admit", `{"app": {"name": "bad", "threads": 1}}`); code != http.StatusBadRequest {
		t.Fatalf("malformed admit accepted: %d %v", code, body)
	}
	if code, _ := post(t, c, "/v1/step", `{"epochs": 2}`); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	st = getStatus(t, c)
	if st.Epoch != 2 {
		t.Fatalf("epoch %d after stepping 2", st.Epoch)
	}
	found := false
	for _, a := range st.Apps {
		if a.Name == "burst" && a.Started {
			found = true
		}
	}
	if !found {
		t.Fatalf("admitted app not running: %+v", st.Apps)
	}

	// Intensity change, a forced checkpoint, then run to completion.
	if code, body := post(t, c, "/v1/intensity", `{"name": "burst", "milli": 400}`); code != http.StatusOK {
		t.Fatalf("intensity: %d %v", code, body)
	}
	if code, body := post(t, c, "/v1/checkpoint", ``); code != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", code, body)
	} else if int(body["checkpoint_epoch"].(float64)) != 2 {
		t.Fatalf("checkpoint at %v, want 2", body["checkpoint_epoch"])
	}
	// The final step completes the run (and winds the daemon down), so
	// the closing status comes from the step reply itself.
	code, body = post(t, c, "/v1/step", `{"epochs": 99}`)
	if code != http.StatusOK {
		t.Fatal("step to completion failed")
	}
	if body["finished"] != true || int(body["epoch"].(float64)) != 8 {
		t.Fatalf("final status: %v", body)
	}

	if err := <-done; err != nil {
		t.Fatalf("daemon run: %v", err)
	}

	// The daemon's journal replays: the manually-driven session is as
	// reproducible as a scripted one.
	r, err := Replay(filepath.Join(dir, "run.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if a := r.System().App("burst"); a == nil || !a.Stopped() {
		t.Fatal("replay did not reproduce the admitted app's lifecycle")
	}
}

// TestDaemonShutdownResumable: /v1/shutdown mid-run suspends without
// sealing, and Recover continues the same run.
func TestDaemonShutdownResumable(t *testing.T) {
	sockDir, err := os.MkdirTemp("", "vd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(sockDir)
	dir := t.TempDir()
	opts := Options{
		Scenario: testScenario(8),
		Journal:  filepath.Join(dir, "run.journal"),
	}
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(s, filepath.Join(sockDir, "vulcand.sock"), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Run() }()
	c := sockClient(filepath.Join(sockDir, "vulcand.sock"))

	if code, _ := post(t, c, "/v1/step", `{"epochs": 3}`); code != http.StatusOK {
		t.Fatal("step failed")
	}
	if code, _ := post(t, c, "/v1/shutdown", ``); code != http.StatusOK {
		t.Fatal("shutdown failed")
	}
	if err := <-done; err != nil {
		t.Fatalf("daemon run: %v", err)
	}

	jd, err := ReadJournal(opts.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if jd.Finished {
		t.Fatal("suspended run sealed its journal")
	}
	recovered, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Run(); err != nil {
		t.Fatal(err)
	}
	if !recovered.Finished() || recovered.Epoch() != 8 {
		t.Fatalf("recovered run ended at epoch %d", recovered.Epoch())
	}
}

// TestDaemonAutoPaced: an auto-paced daemon steps itself; the pace
// closure is the injected (wall-clock-free here) heartbeat.
func TestDaemonAutoPaced(t *testing.T) {
	sockDir, err := os.MkdirTemp("", "vd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(sockDir)
	dir := t.TempDir()
	s, err := NewSession(Options{
		Scenario: testScenario(6),
		Journal:  filepath.Join(dir, "run.journal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The pace closure is the daemon's injected heartbeat; the test
	// meters it with a channel so it can poke the API mid-run.
	tick := make(chan struct{})
	d, err := NewDaemon(s, filepath.Join(sockDir, "vulcand.sock"), func() { <-tick })
	if err != nil {
		t.Fatal(err)
	}
	c := sockClient(filepath.Join(sockDir, "vulcand.sock"))
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run() }()

	// Manual stepping an auto-paced daemon is a client error (the loop
	// is parked on its first pace tick, so the API is free).
	if code, body := post(t, c, "/v1/step", `{}`); code != http.StatusConflict {
		t.Fatalf("step on auto-paced daemon: %d %v, want 409", code, body)
	}
	for i := 0; i < 6; i++ {
		tick <- struct{}{} // one heartbeat per epoch
	}
	if err := <-errCh; err != nil {
		t.Fatalf("daemon run: %v", err)
	}
	if st := d.statusLocked(); !st.Finished || st.Epoch != 6 {
		t.Fatalf("final: %+v", st)
	}
}
