package serve

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"vulcan/internal/checkpoint"
	"vulcan/internal/figures"
	"vulcan/internal/obs"
	"vulcan/internal/scenario"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// Options configures a serving session. The scenario supplies the
// machine, policy, baseline apps and the run's epoch target (Seconds);
// everything else is daemon plumbing.
type Options struct {
	Scenario scenario.File

	// TraceOut / MetricsOut stream telemetry artifacts incrementally;
	// empty disables that artifact (and with both empty, telemetry
	// entirely).
	TraceOut   string
	MetricsOut string

	// Journal is the command journal path. Live sessions require it —
	// the journal IS the run's reproducibility story; replay reads it.
	Journal string

	// CheckpointBase/Every/Retain arm rolling interim checkpoints:
	// every N completed epochs a full-state image lands next to base
	// (base.tNNN.ext), keeping the newest Retain images (0 = all).
	CheckpointBase   string
	CheckpointEvery  int
	CheckpointRetain int

	// MaxBacklog and Rescore mirror system.Config.AsyncMaxBacklog and
	// IncrementalRescore; both are journaled so replays match.
	MaxBacklog int
	Rescore    bool
}

// departure is one scheduled stop derived from an admit's Depart field,
// registered in admission order.
type departure struct {
	epoch int
	name  string
}

// Session is one serving run: a dynamic system advanced epoch by epoch,
// with commands applied at epoch boundaries, telemetry streamed, and
// every executed command journaled. The same type runs all three modes:
//
//   - live: commands arrive via Enqueue, arrivals from the scenario's
//     churn plan; executed batches append to the journal.
//   - replay: the journal's batches are re-applied at their boundaries
//     (Replay); nothing is journaled.
//   - recovery: a rolling checkpoint restores mid-run state, the
//     journal tail replays past it, then the session goes live again
//     (Recover).
//
// Step is not safe for concurrent use; the daemon serializes it against
// its control handlers.
type Session struct {
	opts   Options
	parsed *scenario.Parsed
	sys    *system.System
	target int

	rec              *obs.Recorder
	ts               *obs.TraceStream
	cs               *obs.CSVStream
	traceF, metricsF *os.File

	journal *Journal

	// plan is the expanded arrival process; planIdx the next entry not
	// yet reached. Replayed boundaries advance planIdx without applying
	// (their successful arrivals are in the journal; their failed ones
	// must stay skipped).
	plan    []workload.Arrival
	planIdx int

	// departures holds scheduled stops derived from admits, in
	// admission order; applyDepartures scans it at each boundary.
	departures []departure

	// replay maps boundary epoch -> journaled batch; boundaries at or
	// below journaledThrough re-apply from here instead of accepting
	// new commands.
	replay           map[int][]Cmd
	journaledThrough int

	// pending queues live API commands for the next boundary.
	pending []Cmd

	// errs records rejected live commands (epoch-tagged); a rejected
	// command is never journaled, so replays skip it by construction.
	errs []string

	finished bool
}

// resolveServe resolves a scenario for serving: fleet scenarios have no
// single dynamic system to serve.
func resolveServe(f scenario.File) (*scenario.Parsed, error) {
	parsed, err := scenario.Resolve(f)
	if err != nil {
		return nil, err
	}
	if parsed.Fleet != nil {
		return nil, fmt.Errorf("serve: fleet scenarios cannot be served (one dynamic host only)")
	}
	return parsed, nil
}

// baseConfig assembles the system config every mode shares. The serving
// runtime always allows dynamic turnover and never attaches a cost
// profiler (profiler state is not checkpointed, and recovery must be
// byte-identical).
func baseConfig(parsed *scenario.Parsed, opts Options, rec *obs.Recorder) system.Config {
	cfg := system.Config{
		Machine:            parsed.Machine,
		Apps:               parsed.Apps,
		Policy:             figures.NewPolicy(parsed.Policy),
		Seed:               parsed.Seed,
		Faults:             parsed.Faults,
		AllowDynamic:       true,
		AsyncMaxBacklog:    opts.MaxBacklog,
		IncrementalRescore: opts.Rescore,
	}
	if rec != nil {
		cfg.Obs = rec
	}
	return cfg
}

// build assembles a fresh session: artifacts created (truncating any
// previous run's), streams opened, system built cold. The journal is
// the caller's job — NewSession writes a fresh one, Recover reopens.
func build(parsed *scenario.Parsed, opts Options) (*Session, error) {
	s := &Session{
		opts:             opts,
		parsed:           parsed,
		target:           int(parsed.Duration / sim.Duration(sim.Second)),
		replay:           map[int][]Cmd{},
		journaledThrough: -1,
	}
	if parsed.Arrivals != nil {
		s.plan = parsed.Arrivals.Plan(s.target)
	}
	if opts.TraceOut != "" || opts.MetricsOut != "" {
		s.rec = obs.NewRecorder()
	}
	if opts.TraceOut != "" {
		f, err := os.Create(opts.TraceOut)
		if err != nil {
			return nil, err
		}
		s.traceF = f
		s.ts = obs.NewTraceStream(f)
	}
	if opts.MetricsOut != "" {
		f, err := os.Create(opts.MetricsOut)
		if err != nil {
			s.closeArtifacts()
			return nil, err
		}
		s.metricsF = f
		s.cs = obs.NewCSVStream(f)
	}
	if s.rec != nil {
		s.rec.StreamTo(s.ts, s.cs)
	}
	s.sys = system.New(baseConfig(parsed, opts, s.rec))
	return s, nil
}

// NewSession opens a live serving session: fresh system, fresh
// artifacts, fresh journal.
func NewSession(opts Options) (*Session, error) {
	parsed, err := resolveServe(opts.Scenario)
	if err != nil {
		return nil, err
	}
	s, err := build(parsed, opts)
	if err != nil {
		return nil, err
	}
	if opts.Journal != "" {
		s.journal, err = CreateJournal(opts.Journal, Header{
			Scenario:   opts.Scenario,
			MaxBacklog: opts.MaxBacklog,
			Rescore:    opts.Rescore,
		})
		if err != nil {
			s.closeArtifacts()
			return nil, err
		}
	}
	return s, nil
}

// Replay rebuilds a run from its journal in batch mode: no streams, no
// journaling — telemetry buffers in the recorder and renders through
// the batch exporters, which must be byte-identical to what the live
// session streamed. An unfinished journal replays its recorded prefix
// and completes the run from the arrival plan.
func Replay(journalPath string) (*Session, error) {
	jd, err := ReadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	parsed, err := resolveServe(jd.Header.Scenario)
	if err != nil {
		return nil, err
	}
	opts := Options{
		Scenario:   jd.Header.Scenario,
		MaxBacklog: jd.Header.MaxBacklog,
		Rescore:    jd.Header.Rescore,
	}
	s := &Session{
		opts:             opts,
		parsed:           parsed,
		target:           int(parsed.Duration / sim.Duration(sim.Second)),
		rec:              obs.NewRecorder(),
		replay:           map[int][]Cmd{},
		journaledThrough: jd.LastEpoch(),
	}
	if parsed.Arrivals != nil {
		s.plan = parsed.Arrivals.Plan(s.target)
	}
	for _, b := range jd.Batches {
		s.replay[b.Epoch] = b.Cmds
	}
	s.sys = system.New(baseConfig(parsed, opts, s.rec))
	return s, nil
}

// Recover resumes a killed session from its journal and newest rolling
// checkpoint. The journal header's scenario and simulation knobs win
// over opts (a resumed run must match the original); artifact and
// checkpoint paths still come from opts. Without a usable checkpoint
// the session restarts cold and re-runs the journaled prefix — slower,
// same bytes.
func Recover(opts Options) (*Session, error) {
	jd, err := ReadJournal(opts.Journal)
	if err != nil {
		return nil, err
	}
	if jd.Finished {
		return nil, fmt.Errorf("serve: journal %s records a finished run; nothing to recover", opts.Journal)
	}
	opts.Scenario = jd.Header.Scenario
	opts.MaxBacklog = jd.Header.MaxBacklog
	opts.Rescore = jd.Header.Rescore
	parsed, err := resolveServe(opts.Scenario)
	if err != nil {
		return nil, err
	}

	var s *Session
	ckEpoch := 0
	if opts.CheckpointBase != "" {
		path, epoch, ok, err := checkpoint.LatestRolling(opts.CheckpointBase)
		if err != nil {
			return nil, err
		}
		if ok {
			if s, err = resumeFromImage(parsed, opts, path, jd); err != nil {
				return nil, fmt.Errorf("serve: resume from %s: %w", path, err)
			}
			ckEpoch = epoch
		}
	}
	if s == nil {
		if s, err = build(parsed, opts); err != nil {
			return nil, err
		}
	}

	// The journal tail replays from the restored boundary on. Batches
	// before it were already consumed by the checkpoint's state.
	for _, b := range jd.Batches {
		if b.Epoch >= ckEpoch {
			s.replay[b.Epoch] = b.Cmds
		}
	}
	s.journaledThrough = jd.LastEpoch()

	s.journal, err = openJournalAppend(opts.Journal, jd.CleanSize)
	if err != nil {
		s.closeArtifacts()
		return nil, err
	}
	return s, nil
}

// resumeFromImage restores mid-run state from one rolling checkpoint:
// streams resumed onto truncated artifacts, the system rebuilt from the
// embedded blob against a config whose app list replays the journal's
// pre-checkpoint admissions, scheduled departures re-derived.
func resumeFromImage(parsed *scenario.Parsed, opts Options, path string, jd *JournalData) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := checkpoint.NewReader(f)
	if err != nil {
		return nil, err
	}
	d, err := r.Section("serve", 1)
	if err != nil {
		return nil, err
	}
	ckEpoch := d.Int()

	s := &Session{
		opts:             opts,
		parsed:           parsed,
		target:           int(parsed.Duration / sim.Duration(sim.Second)),
		replay:           map[int][]Cmd{},
		journaledThrough: -1,
	}
	if parsed.Arrivals != nil {
		s.plan = parsed.Arrivals.Plan(s.target)
		for s.planIdx < len(s.plan) && s.plan[s.planIdx].Epoch < ckEpoch {
			s.planIdx++
		}
	}

	// Streams: the checkpoint records whether each artifact was being
	// streamed and the layout state to continue it. The artifact file is
	// truncated to the recorded offset (dropping any tail written after
	// the checkpoint) and appended to from there.
	if hasTrace := d.Bool(); hasTrace {
		if opts.TraceOut == "" {
			return nil, fmt.Errorf("checkpoint streams a trace; -trace-out required to recover it")
		}
		tf, err := os.OpenFile(opts.TraceOut, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		s.traceF = tf
		if s.ts, err = obs.ResumeTraceStream(tf, d); err != nil {
			s.closeArtifacts()
			return nil, err
		}
		if err := truncateTo(tf, s.ts.Tell()); err != nil {
			s.closeArtifacts()
			return nil, err
		}
	} else if opts.TraceOut != "" {
		return nil, fmt.Errorf("checkpoint has no trace stream; a recovered run cannot start one mid-flight")
	}
	if hasCSV := d.Bool(); hasCSV {
		if opts.MetricsOut == "" {
			return nil, fmt.Errorf("checkpoint streams metrics; -metrics-out required to recover them")
		}
		mf, err := os.OpenFile(opts.MetricsOut, os.O_WRONLY, 0o644)
		if err != nil {
			s.closeArtifacts()
			return nil, err
		}
		s.metricsF = mf
		if s.cs, err = obs.ResumeCSVStream(mf, d); err != nil {
			s.closeArtifacts()
			return nil, err
		}
		if err := truncateTo(mf, s.cs.Tell()); err != nil {
			s.closeArtifacts()
			return nil, err
		}
	} else if opts.MetricsOut != "" {
		return nil, fmt.Errorf("checkpoint has no metrics stream; a recovered run cannot start one mid-flight")
	}
	if err := d.Err(); err != nil {
		s.closeArtifacts()
		return nil, err
	}
	if s.ts != nil || s.cs != nil {
		s.rec = obs.NewRecorder()
	}

	// The system resumes against a config listing every app ever added:
	// the scenario's own, then the journal's pre-checkpoint admissions
	// in execution order (system.Resume replays admissions and stops
	// from its internal chronology).
	cfg := baseConfig(parsed, opts, s.rec)
	cfg.Apps = append([]workload.AppConfig(nil), parsed.Apps...)
	for _, b := range jd.Batches {
		if b.Epoch >= ckEpoch {
			break
		}
		for _, c := range b.Cmds {
			if c.Op != "admit" {
				continue
			}
			ac, err := resolveCmdApp(c, parsed.Scale, b.Epoch)
			if err != nil {
				s.closeArtifacts()
				return nil, fmt.Errorf("journaled admit at epoch %d: %w", b.Epoch, err)
			}
			cfg.Apps = append(cfg.Apps, ac)
			if c.Depart >= ckEpoch {
				s.departures = append(s.departures, departure{epoch: c.Depart, name: ac.Name})
			}
		}
	}

	sb, err := r.Section("sysblob", 1)
	if err != nil {
		s.closeArtifacts()
		return nil, err
	}
	blob := sb.Bytes64()
	if err := sb.Err(); err != nil {
		s.closeArtifacts()
		return nil, err
	}
	sys, err := system.Resume(bytes.NewReader(blob), cfg)
	if err != nil {
		s.closeArtifacts()
		return nil, err
	}
	if sys.Epoch() != ckEpoch {
		s.closeArtifacts()
		return nil, fmt.Errorf("restored system at epoch %d, checkpoint says %d", sys.Epoch(), ckEpoch)
	}
	s.sys = sys
	if s.rec != nil {
		s.rec.StreamTo(s.ts, s.cs)
	}
	return s, nil
}

// truncateTo cuts f to n bytes and positions the write offset there.
func truncateTo(f *os.File, n int64) error {
	if err := f.Truncate(n); err != nil {
		return err
	}
	_, err := f.Seek(n, io.SeekStart)
	return err
}

// resolveCmdApp turns an admit command back into a runnable config: the
// spec resolved exactly like a scenario app, the instance name stamped,
// and StartAt set to the boundary's simulated time so the next RunEpoch
// admits it.
func resolveCmdApp(c Cmd, scale, boundary int) (workload.AppConfig, error) {
	if c.App == nil {
		return workload.AppConfig{}, fmt.Errorf("admit without an app spec")
	}
	ac, err := scenario.ResolveApp(*c.App, scale)
	if err != nil {
		return workload.AppConfig{}, err
	}
	if c.Name != "" {
		ac.Name = c.Name
	}
	ac.StartAt = sim.Time(boundary) * sim.Time(sim.Second)
	return ac, nil
}

// Enqueue queues one live command for the next epoch boundary. Shape
// errors are rejected here (and surface as API 4xx); state-dependent
// failures (unknown app, capacity) surface at apply time in Errs.
func (s *Session) Enqueue(c Cmd) error {
	if s.finished {
		return fmt.Errorf("serve: session finished")
	}
	switch c.Op {
	case "admit":
		if err := checkAdmitSpec(c, s.parsed.Scale); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if c.Depart < 0 {
			return fmt.Errorf("serve: admit depart epoch %d is negative", c.Depart)
		}
	case "stop":
		if c.Name == "" {
			return fmt.Errorf("serve: stop needs an app name")
		}
	case "intensity":
		if c.Name == "" {
			return fmt.Errorf("serve: intensity needs an app name")
		}
		if c.Milli < 1 || c.Milli > 1_000_000 {
			return fmt.Errorf("serve: intensity %d out of range [1, 1000000]", c.Milli)
		}
	default:
		return fmt.Errorf("serve: unknown op %q", c.Op)
	}
	c.Src = "api"
	s.pending = append(s.pending, c)
	return nil
}

// checkAdmitSpec dry-runs an admit's spec resolution. Config validation
// panics on malformed values (the configured-up-front contract); an API
// client's spec must surface as a rejection instead, so the panic is
// converted here.
func checkAdmitSpec(c Cmd, scale int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invalid app spec: %v", r)
		}
	}()
	_, err = resolveCmdApp(c, scale, 0)
	return err
}

// apply executes one command at the current boundary.
func (s *Session) apply(c Cmd) error {
	switch c.Op {
	case "admit":
		ac, err := resolveCmdApp(c, s.parsed.Scale, s.sys.Epoch())
		if err != nil {
			return err
		}
		if _, err := s.sys.AddApp(ac); err != nil {
			return err
		}
		if c.Depart > 0 {
			s.departures = append(s.departures, departure{epoch: c.Depart, name: ac.Name})
		}
		return nil
	case "stop":
		a := s.sys.App(c.Name)
		if a == nil {
			return fmt.Errorf("no app %q", c.Name)
		}
		return s.sys.StopApp(a)
	case "intensity":
		a := s.sys.App(c.Name)
		if a == nil {
			return fmt.Errorf("no app %q", c.Name)
		}
		return s.sys.SetIntensity(a, c.Milli)
	default:
		return fmt.Errorf("unknown op %q", c.Op)
	}
}

// applyDepartures stops every instance scheduled to depart at this
// boundary. An instance already gone (stopped early over the API, or
// never admitted) is skipped — live and replay derive the same skip
// from the same state.
func (s *Session) applyDepartures(e int) {
	for _, dep := range s.departures {
		if dep.epoch != e {
			continue
		}
		a := s.sys.App(dep.name)
		if a == nil || !a.Started() || a.Stopped() {
			continue
		}
		if err := s.sys.StopApp(a); err != nil {
			s.errs = append(s.errs, fmt.Sprintf("epoch %d: depart %s: %v", e, dep.name, err))
		}
	}
}

// Step advances the session one epoch: scheduled departures, then the
// boundary's commands (replayed from the journal, or pending API
// commands plus the arrival plan, journaled), then RunEpoch, then the
// rolling-checkpoint cadence. The returned error is fatal (journal
// divergence, artifact write failure); rejected live commands go to
// Errs instead.
func (s *Session) Step() error {
	if s.finished {
		return fmt.Errorf("serve: session finished")
	}
	e := s.sys.Epoch()
	s.applyDepartures(e)
	if e <= s.journaledThrough {
		for _, c := range s.replay[e] {
			if err := s.apply(c); err != nil {
				return fmt.Errorf("serve: replay diverged at epoch %d (%s %s): %w", e, c.Op, c.Name, err)
			}
		}
		// Skip the plan past this boundary: its successful arrivals were
		// just re-applied from the journal, and its rejected ones must
		// stay rejected.
		for s.planIdx < len(s.plan) && s.plan[s.planIdx].Epoch <= e {
			s.planIdx++
		}
	} else {
		var executed []Cmd
		run := func(c Cmd) {
			if err := s.apply(c); err != nil {
				s.errs = append(s.errs, fmt.Sprintf("epoch %d: %s %s: %v", e, c.Op, cmdTarget(c), err))
				return
			}
			executed = append(executed, c)
		}
		for _, c := range s.pending {
			run(c)
		}
		s.pending = nil
		for s.planIdx < len(s.plan) && s.plan[s.planIdx].Epoch <= e {
			a := s.plan[s.planIdx]
			s.planIdx++
			tmpl := s.opts.Scenario.Arrivals.Template
			run(Cmd{Op: "admit", App: &tmpl, Name: a.App.Name, Src: "arrival", Depart: a.Depart})
		}
		if len(executed) > 0 && s.journal != nil {
			if err := s.journal.Append(Batch{Epoch: e, Cmds: executed}); err != nil {
				return fmt.Errorf("serve: journal: %w", err)
			}
		}
	}

	s.sys.RunEpoch()
	if err := s.streamErr(); err != nil {
		return fmt.Errorf("serve: artifact stream: %w", err)
	}

	done := s.sys.Epoch()
	if s.opts.CheckpointBase != "" && s.opts.CheckpointEvery > 0 &&
		done%s.opts.CheckpointEvery == 0 && done < s.target {
		if err := s.Checkpoint(); err != nil {
			return fmt.Errorf("serve: checkpoint: %w", err)
		}
	}
	if done >= s.target {
		return s.finish()
	}
	return nil
}

// cmdTarget names what a command acted on, for error tags.
func cmdTarget(c Cmd) string {
	if c.Name != "" {
		return c.Name
	}
	if c.App != nil {
		if c.App.Name != "" {
			return c.App.Name
		}
		return c.App.Preset
	}
	return "?"
}

// streamErr surfaces a latched artifact-stream write error.
func (s *Session) streamErr() error {
	if s.ts != nil {
		if err := s.ts.Err(); err != nil {
			return err
		}
	}
	if s.cs != nil {
		if err := s.cs.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint writes one rolling full-state image at the current epoch
// boundary and prunes the family to the retention count. The image
// carries the stream layout state and the complete system checkpoint,
// so Recover continues byte-identically.
func (s *Session) Checkpoint() error {
	if s.opts.CheckpointBase == "" {
		return fmt.Errorf("serve: no checkpoint base configured")
	}
	// Flush first so the artifact files hold exactly Tell() bytes — the
	// offsets recovery truncates to.
	if s.ts != nil {
		if err := s.ts.Flush(); err != nil {
			return err
		}
	}
	if s.cs != nil {
		if err := s.cs.Flush(); err != nil {
			return err
		}
	}
	w := checkpoint.NewWriter()
	enc := w.Section("serve", 1)
	enc.Int(s.sys.Epoch())
	enc.Bool(s.ts != nil)
	if s.ts != nil {
		s.ts.Snapshot(enc)
	}
	enc.Bool(s.cs != nil)
	if s.cs != nil {
		s.cs.Snapshot(enc)
	}
	var blob bytes.Buffer
	if err := s.sys.Checkpoint(&blob); err != nil {
		return err
	}
	w.Section("sysblob", 1).Bytes64(blob.Bytes())
	if _, err := checkpoint.WriteRolling(w, s.opts.CheckpointBase, s.sys.Epoch()); err != nil {
		return err
	}
	_, err := checkpoint.PruneRolling(s.opts.CheckpointBase, s.opts.CheckpointRetain)
	return err
}

// finish seals the run: journal trailer, trace footer, final flushes,
// file closes. The first error wins but every resource is released.
func (s *Session) finish() error {
	s.finished = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.journal != nil {
		keep(s.journal.Finish(s.sys.Epoch()))
		keep(s.journal.Close())
		s.journal = nil
	}
	keep(s.closeArtifacts())
	return first
}

// closeArtifacts seals and closes the stream files (trace footer,
// final flushes). Safe on partially-built sessions.
func (s *Session) closeArtifacts() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.ts != nil {
		keep(s.ts.Close())
		s.ts = nil
	}
	if s.traceF != nil {
		keep(s.traceF.Close())
		s.traceF = nil
	}
	if s.cs != nil {
		keep(s.cs.Flush())
		s.cs = nil
	}
	if s.metricsF != nil {
		keep(s.metricsF.Close())
		s.metricsF = nil
	}
	return first
}

// Suspend releases an unfinished session resumably: streams flush and
// their files close WITHOUT the trace footer, and the journal closes
// WITHOUT the finish trailer — exactly the state a crash leaves behind,
// so Recover handles a clean shutdown and a kill identically.
func (s *Session) Suspend() error {
	if s.finished {
		return fmt.Errorf("serve: session already finished")
	}
	s.finished = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.journal != nil {
		keep(s.journal.Close())
		s.journal = nil
	}
	if s.ts != nil {
		keep(s.ts.Flush())
		s.ts = nil
	}
	if s.traceF != nil {
		keep(s.traceF.Close())
		s.traceF = nil
	}
	if s.cs != nil {
		keep(s.cs.Flush())
		s.cs = nil
	}
	if s.metricsF != nil {
		keep(s.metricsF.Close())
		s.metricsF = nil
	}
	return first
}

// Run advances the session to completion — the replay driver, and the
// test harness's batch mode.
func (s *Session) Run() error {
	for !s.finished {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Epoch returns completed epochs; Target the run's epoch goal.
func (s *Session) Epoch() int  { return s.sys.Epoch() }
func (s *Session) Target() int { return s.target }

// Finished reports whether the run reached its target and sealed its
// artifacts.
func (s *Session) Finished() bool { return s.finished }

// Errs returns the epoch-tagged rejected-command log.
func (s *Session) Errs() []string { return s.errs }

// Pending returns the number of commands queued for the next boundary.
func (s *Session) Pending() int { return len(s.pending) }

// System exposes the underlying system (status, reports, tests).
func (s *Session) System() *system.System { return s.sys }

// WriteReport renders the final run report.
func (s *Session) WriteReport(w io.Writer, jsonOut bool) error {
	if jsonOut {
		return s.sys.Report().WriteJSON(w)
	}
	return s.sys.Report().WriteText(w)
}

// WriteTrace / WriteMetrics render the batch artifacts of a non-
// streaming (replay) session — byte-identical to the live stream.
func (s *Session) WriteTrace(w io.Writer) error   { return s.rec.WriteChromeTrace(w) }
func (s *Session) WriteMetrics(w io.Writer) error { return s.rec.WriteMetricsCSV(w) }
