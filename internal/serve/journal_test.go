package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vulcan/internal/scenario"
)

func testHeader() Header {
	return Header{
		Scenario: scenario.File{
			Policy: "vulcan", Seconds: 10, Seed: 3,
			Apps: []scenario.App{{Preset: "memcached"}},
		},
		MaxBacklog: 64,
		Rescore:    true,
	}
}

// TestJournalRoundTrip: write header + batches + trailer, read it back.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	app := &scenario.App{Name: "burst", Threads: 1, RSSPages: 1000}
	batches := []Batch{
		{Epoch: 2, Cmds: []Cmd{{Op: "admit", App: app, Src: "api", Depart: 9}}},
		{Epoch: 5, Cmds: []Cmd{{Op: "intensity", Name: "burst", Milli: 500, Src: "api"}}},
	}
	for _, b := range batches {
		if err := j.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(10); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.V != journalVersion || d.Header.MaxBacklog != 64 || !d.Header.Rescore {
		t.Fatalf("header: %+v", d.Header)
	}
	if d.Header.Scenario.Policy != "vulcan" || len(d.Header.Scenario.Apps) != 1 {
		t.Fatalf("scenario lost in round trip: %+v", d.Header.Scenario)
	}
	if !d.Finished || d.FinishEpoch != 10 {
		t.Fatalf("trailer: finished=%t epoch=%d", d.Finished, d.FinishEpoch)
	}
	if len(d.Batches) != 2 || d.LastEpoch() != 5 {
		t.Fatalf("batches: %+v", d.Batches)
	}
	b0 := d.BatchFor(2)
	if len(b0) != 1 || b0[0].Op != "admit" || b0[0].App.Name != "burst" || b0[0].Depart != 9 {
		t.Fatalf("batch 2: %+v", b0)
	}
	if got := d.BatchFor(3); got != nil {
		t.Fatalf("batch 3 should be empty, got %+v", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.CleanSize != info.Size() {
		t.Fatalf("CleanSize %d, file is %d bytes", d.CleanSize, info.Size())
	}
}

// TestJournalTornTail: a torn trailing line is dropped and excluded
// from CleanSize; everything before it survives.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Batch{Epoch: 1, Cmds: []Cmd{{Op: "stop", Name: "x", Src: "api"}}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	clean, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, torn := range []string{
		`{"epoch":2,"cm`,                // unterminated, unparseable
		`{"epoch":2,"cmds":[]}`,         // parseable but unterminated (no newline)
		`{"epoch":2,"cmds":[]}x` + "\n", // terminated garbage tail
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(torn)
		f.Close()

		d, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("torn %q: %v", torn, err)
		}
		if d.CleanSize != clean.Size() {
			t.Fatalf("torn %q: CleanSize %d, want %d", torn, d.CleanSize, clean.Size())
		}
		if len(d.Batches) != 1 || d.Batches[0].Epoch != 1 || d.Finished {
			t.Fatalf("torn %q: parsed %+v", torn, d)
		}
		// Recovery truncates to CleanSize: the journal is whole again.
		if err := os.Truncate(path, d.CleanSize); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalCorruption: malformed non-tail content is an error, not a
// silent truncation.
func TestJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	hdr := `{"v":1,"scenario":{"policy":"vulcan","seconds":5,"seed":1,"apps":[{"preset":"memcached"}]}}` + "\n"
	cases := map[string]string{
		"garbage middle line": hdr + "not json\n" + `{"epoch":3,"cmds":[]}` + "\n",
		"out of order epochs": hdr + `{"epoch":5,"cmds":[]}` + "\n" + `{"epoch":3,"cmds":[]}` + "\n",
		"batch after trailer": hdr + `{"finish":5}` + "\n" + `{"epoch":3,"cmds":[]}` + "\n",
		"double trailer":      hdr + `{"finish":5}` + "\n" + `{"finish":6}` + "\n",
		"wrong version":       `{"v":9,"scenario":{"policy":"vulcan","seconds":5,"seed":1,"apps":[{"preset":"memcached"}]}}` + "\n",
		"headerless":          `{"epoch":3,"cmds":[]}` + "\n" + `{"epoch":4,"cmds":[]}` + "\n",
		"second header":       hdr + hdr + `{"epoch":3,"cmds":[]}` + "\n",
	}
	for name, content := range cases {
		if _, err := ReadJournal(write(strings.ReplaceAll(name, " ", "_"), content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// An empty file has no intact header either.
	if _, err := ReadJournal(write("empty", "")); err == nil {
		t.Error("empty journal accepted")
	}
}

// TestJournalReopenAppend: recovery's truncate-and-append constructor
// continues a journal cleanly.
func TestJournalReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Batch{Epoch: 1, Cmds: []Cmd{{Op: "stop", Name: "a", Src: "api"}}})
	j.Close()

	// Tear the tail, then reopen at the clean boundary and continue.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"epoch":2,"c`)
	f.Close()
	d, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := openJournalAppend(path, d.CleanSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Batch{Epoch: 4, Cmds: []Cmd{{Op: "stop", Name: "b", Src: "api"}}}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Finish(8); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	d2, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Finished || d2.FinishEpoch != 8 || len(d2.Batches) != 2 ||
		d2.Batches[1].Epoch != 4 || d2.Batches[1].Cmds[0].Name != "b" {
		t.Fatalf("continued journal: %+v", d2)
	}
}
