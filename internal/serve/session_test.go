package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/scenario"
)

// testScenario is a small churn-heavy serving scenario: one resident
// preset plus a Poisson arrival process of single-thread instances.
func testScenario(seconds int) scenario.File {
	return scenario.File{
		Policy: "vulcan", Seconds: seconds, Seed: 5, Scale: 8,
		Apps: []scenario.App{{Preset: "memcached"}},
		Arrivals: &scenario.Arrivals{
			RatePerEpoch: 0.4, Seed: 11,
			LifetimeMinEpochs: 3, LifetimeMaxEpochs: 8, MaxLive: 2,
			Template: scenario.App{Name: "churn", Class: "BE", Threads: 1,
				RSSPages: 2048, Generator: "uniform"},
		},
	}
}

// testScript is the scripted API session both golden tests drive: an
// admit, an intensity change, an early stop, and a late intensity
// change (the last lands after the crash-recovery test's kill point).
func testScript() map[int][]Cmd {
	burst := &scenario.App{Name: "burst", Class: "BE", Threads: 1,
		RSSPages: 2048, Generator: "zipf"}
	return map[int][]Cmd{
		2:  {{Op: "admit", App: burst, Depart: 20}},
		6:  {{Op: "intensity", Name: "burst", Milli: 500}},
		10: {{Op: "stop", Name: "burst"}},
		16: {{Op: "intensity", Name: "memcached", Milli: 700}},
	}
}

// drive steps the session until stopEpoch (or completion), enqueueing
// the script's commands at their boundaries. Boundaries still under
// journal replay get no script commands — their execution is already
// recorded.
func drive(t *testing.T, s *Session, script map[int][]Cmd, stopEpoch int) {
	t.Helper()
	for !s.Finished() && s.Epoch() < stopEpoch {
		if e := s.Epoch(); e > s.journaledThrough {
			for _, c := range script[e] {
				if err := s.Enqueue(c); err != nil {
					t.Fatalf("enqueue at epoch %d: %v", e, err)
				}
			}
		}
		if err := s.Step(); err != nil {
			t.Fatalf("step at epoch %d: %v", s.Epoch(), err)
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runLive executes a full scripted live session in dir and returns its
// artifact paths.
func runLive(t *testing.T, dir string, opts Options) (trace, metrics, journal string) {
	t.Helper()
	opts.Scenario = testScenario(24)
	opts.TraceOut = filepath.Join(dir, "trace.json")
	opts.MetricsOut = filepath.Join(dir, "metrics.csv")
	opts.Journal = filepath.Join(dir, "run.journal")
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, testScript(), 1<<30)
	if !s.Finished() {
		t.Fatal("session did not finish")
	}
	if len(s.Errs()) != 0 {
		t.Fatalf("scripted session rejected commands: %v", s.Errs())
	}
	return opts.TraceOut, opts.MetricsOut, opts.Journal
}

// TestStreamingParity is the tentpole golden test: a scripted live
// session's streamed trace and metrics CSV are byte-identical to the
// batch exporters replaying its journal, and the replayed run's report
// matches the live one.
func TestStreamingParity(t *testing.T) {
	dir := t.TempDir()
	tracePath, metricsPath, journalPath := runLive(t, dir, Options{MaxBacklog: 256, Rescore: true})

	jd, err := ReadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if !jd.Finished || jd.FinishEpoch != 24 {
		t.Fatalf("journal not sealed: %+v", jd)
	}
	if len(jd.Batches) == 0 {
		t.Fatal("scripted session journaled nothing")
	}
	sawArrival := false
	for _, b := range jd.Batches {
		for _, c := range b.Cmds {
			if c.Src == "arrival" {
				sawArrival = true
			}
		}
	}
	if !sawArrival {
		t.Fatal("no arrival-process admissions journaled")
	}

	r, err := Replay(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if len(r.Errs()) != 0 {
		t.Fatalf("replay rejected commands: %v", r.Errs())
	}

	var replayTrace, replayMetrics bytes.Buffer
	if err := r.WriteTrace(&replayTrace); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteMetrics(&replayMetrics); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, tracePath), replayTrace.Bytes()) {
		t.Error("streamed trace differs from batch replay of the journal")
	}
	if !bytes.Equal(readFile(t, metricsPath), replayMetrics.Bytes()) {
		t.Error("streamed metrics CSV differs from batch replay of the journal")
	}

	// Replays are also stable against each other.
	var a, b bytes.Buffer
	r2, err := Replay(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteReport(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteReport(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two replays of the same journal disagree")
	}
}

// TestCrashRecovery is the kill-and-resume golden test: a session
// killed mid-run resumes from its newest rolling checkpoint plus
// journal tail and finishes with artifacts byte-identical to the
// uninterrupted run — even with a torn trailing journal line.
func TestCrashRecovery(t *testing.T) {
	// Reference: the same scripted session, uninterrupted.
	refDir := t.TempDir()
	refTrace, refMetrics, refJournal := runLive(t, refDir, Options{})

	// Victim: same script, rolling checkpoints every 6 epochs, killed
	// after completing epoch 14 (newest checkpoint: epoch 12).
	dir := t.TempDir()
	opts := Options{
		Scenario:         testScenario(24),
		TraceOut:         filepath.Join(dir, "trace.json"),
		MetricsOut:       filepath.Join(dir, "metrics.csv"),
		Journal:          filepath.Join(dir, "run.journal"),
		CheckpointBase:   filepath.Join(dir, "run.ckpt"),
		CheckpointEvery:  6,
		CheckpointRetain: 2,
	}
	victim, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, victim, testScript(), 14)
	if victim.Epoch() != 14 {
		t.Fatalf("victim at epoch %d, want 14", victim.Epoch())
	}
	// Kill: abandon the session without Suspend — the journal is fsynced
	// per batch and the streams flushed per epoch, so this models a
	// process kill at an epoch boundary. Tear the journal tail too, as a
	// mid-append kill would.
	f, err := os.OpenFile(opts.Journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"epoch":14,"cmds":[{"op":"st`)
	f.Close()

	if _, epoch, ok, err := checkpoint.LatestRolling(opts.CheckpointBase); err != nil || !ok || epoch != 12 {
		t.Fatalf("latest rolling = (%d, %t, %v), want epoch 12", epoch, ok, err)
	}

	recovered, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Epoch() != 12 {
		t.Fatalf("recovered at epoch %d, want 12", recovered.Epoch())
	}
	drive(t, recovered, testScript(), 1<<30)
	if !recovered.Finished() {
		t.Fatal("recovered session did not finish")
	}
	if len(recovered.Errs()) != 0 {
		t.Fatalf("recovered session rejected commands: %v", recovered.Errs())
	}

	if !bytes.Equal(readFile(t, refTrace), readFile(t, opts.TraceOut)) {
		t.Error("recovered trace differs from the uninterrupted run")
	}
	if !bytes.Equal(readFile(t, refMetrics), readFile(t, opts.MetricsOut)) {
		t.Error("recovered metrics differ from the uninterrupted run")
	}
	if !bytes.Equal(readFile(t, refJournal), readFile(t, opts.Journal)) {
		t.Error("recovered journal differs from the uninterrupted run")
	}

	// Retention: checkpoints landed at 6, 12, 18; keep-2 leaves 12, 18.
	if _, err := os.Stat(checkpoint.RollingPath(opts.CheckpointBase, 6)); !os.IsNotExist(err) {
		t.Errorf("epoch-6 checkpoint not pruned (err=%v)", err)
	}
	for _, e := range []int{12, 18} {
		if _, err := os.Stat(checkpoint.RollingPath(opts.CheckpointBase, e)); err != nil {
			t.Errorf("epoch-%d checkpoint missing: %v", e, err)
		}
	}
}

// TestRecoverWithoutCheckpoint: losing every rolling image degrades to
// a cold replay of the journal prefix, not data loss.
func TestRecoverWithoutCheckpoint(t *testing.T) {
	refDir := t.TempDir()
	refTrace, refMetrics, refJournal := runLive(t, refDir, Options{})

	dir := t.TempDir()
	opts := Options{
		Scenario:   testScenario(24),
		TraceOut:   filepath.Join(dir, "trace.json"),
		MetricsOut: filepath.Join(dir, "metrics.csv"),
		Journal:    filepath.Join(dir, "run.journal"),
	}
	victim, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, victim, testScript(), 17)

	// No CheckpointBase was ever configured: Recover restarts cold.
	recovered, err := Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Epoch() != 0 {
		t.Fatalf("cold recovery should restart at epoch 0, got %d", recovered.Epoch())
	}
	drive(t, recovered, testScript(), 1<<30)
	if !recovered.Finished() {
		t.Fatal("recovered session did not finish")
	}

	if !bytes.Equal(readFile(t, refTrace), readFile(t, opts.TraceOut)) {
		t.Error("cold-recovered trace differs from the uninterrupted run")
	}
	if !bytes.Equal(readFile(t, refMetrics), readFile(t, opts.MetricsOut)) {
		t.Error("cold-recovered metrics differ from the uninterrupted run")
	}
	if !bytes.Equal(readFile(t, refJournal), readFile(t, opts.Journal)) {
		t.Error("cold-recovered journal differs from the uninterrupted run")
	}
}

// TestSessionRejections: state-dependent command failures land in Errs
// and are never journaled, so replays reproduce the run regardless.
func TestSessionRejections(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Scenario: testScenario(6),
		Journal:  filepath.Join(dir, "run.journal"),
	}
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Shape errors are rejected at Enqueue.
	if err := s.Enqueue(Cmd{Op: "resize"}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := s.Enqueue(Cmd{Op: "stop"}); err == nil {
		t.Error("nameless stop accepted")
	}
	if err := s.Enqueue(Cmd{Op: "intensity", Name: "x", Milli: 0}); err == nil {
		t.Error("zero intensity accepted")
	}
	if err := s.Enqueue(Cmd{Op: "admit"}); err == nil {
		t.Error("admit without a spec accepted")
	}
	if err := s.Enqueue(Cmd{Op: "admit",
		App: &scenario.App{Name: "bad", Threads: 1}}); err == nil {
		t.Error("admit with zero RSS accepted (Validate panic not converted)")
	}

	// State errors surface at the boundary, in Errs.
	if err := s.Enqueue(Cmd{Op: "stop", Name: "nobody"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if len(s.Errs()) != 1 {
		t.Fatalf("errs = %v, want the rejected stop", s.Errs())
	}
	for !s.Finished() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// The rejection never reached the journal.
	jd, err := ReadJournal(opts.Journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range jd.Batches {
		for _, c := range b.Cmds {
			if c.Op == "stop" && c.Name == "nobody" {
				t.Fatal("rejected command was journaled")
			}
		}
	}
}
