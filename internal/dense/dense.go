// Package dense provides a paged dense map from small-integer keys
// (virtual page numbers, region numbers) to nonzero uint64 values.
//
// Go maps keyed by page number dominate allocation profiles under
// insert/delete churn: deleted slots are never reclaimed, growth
// reallocates bucket groups, and every access pays a hash. The stores
// here mirror the two-level chunk directory used by the profiler heat
// tables — keys index directly into 4096-entry chunks hanging off a
// 512-way directory — so lookups are three dereferences, iteration is
// ascending by construction (no sort needed for deterministic replay),
// and steady-state operation allocates nothing once a region's chunk
// exists.
//
// Value 0 is the "absent" sentinel; callers whose natural value range
// includes 0 bias by one (index+1, packed-frame+1).
package dense

const (
	chunkShift = 12
	chunkSize  = 1 << chunkShift // keys per chunk
	chunkMask  = chunkSize - 1
	dirShift   = 9
	dirSize    = 1 << dirShift // chunks per directory block
	dirMask    = dirSize - 1
)

// chunk holds one 4096-key region's values plus its live count, so
// sweeps skip fully-empty regions without touching the value array.
type chunk struct {
	v    [chunkSize]uint64
	live int
}

// Map is a paged dense map. The zero value is an empty map ready to use.
type Map struct {
	l1   []*[dirSize]*chunk
	live int
}

// Get returns the value stored for k, or 0 when absent.
//
//vulcan:hotpath
func (m *Map) Get(k uint64) uint64 {
	hi := k >> (chunkShift + dirShift)
	if hi >= uint64(len(m.l1)) {
		return 0
	}
	blk := m.l1[hi]
	if blk == nil {
		return 0
	}
	c := blk[k>>chunkShift&dirMask]
	if c == nil {
		return 0
	}
	return c.v[k&chunkMask]
}

// Set stores v (which must be nonzero) for k.
//
//vulcan:hotpath
func (m *Map) Set(k, v uint64) {
	if v == 0 {
		panic("dense: Set with zero value")
	}
	hi := k >> (chunkShift + dirShift)
	if hi >= uint64(len(m.l1)) {
		grown := make([]*[dirSize]*chunk, hi+1) //vulcan:allowalloc directory growth, once per 2M-key region
		copy(grown, m.l1)
		m.l1 = grown
	}
	blk := m.l1[hi]
	if blk == nil {
		blk = new([dirSize]*chunk) //vulcan:allowalloc directory block, once per 2M-key region
		m.l1[hi] = blk
	}
	ci := k >> chunkShift & dirMask
	c := blk[ci]
	if c == nil {
		c = new(chunk) //vulcan:allowalloc chunk allocation, once per 4096-key region
		blk[ci] = c
	}
	i := k & chunkMask
	if c.v[i] == 0 {
		c.live++
		m.live++
	}
	c.v[i] = v
}

// Delete removes k, returning the previous value (0 when absent).
//
//vulcan:hotpath
func (m *Map) Delete(k uint64) uint64 {
	hi := k >> (chunkShift + dirShift)
	if hi >= uint64(len(m.l1)) {
		return 0
	}
	blk := m.l1[hi]
	if blk == nil {
		return 0
	}
	c := blk[k>>chunkShift&dirMask]
	if c == nil {
		return 0
	}
	i := k & chunkMask
	old := c.v[i]
	if old != 0 {
		c.v[i] = 0
		c.live--
		m.live--
	}
	return old
}

// Len returns the number of stored keys.
func (m *Map) Len() int { return m.live }

// ForEach calls fn for every stored key in ascending key order.
func (m *Map) ForEach(fn func(k, v uint64)) {
	for hi, blk := range m.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			base := uint64(hi)<<(chunkShift+dirShift) | uint64(ci)<<chunkShift
			for i, v := range c.v {
				if v == 0 {
					continue
				}
				fn(base|uint64(i), v)
			}
		}
	}
}

// Clear removes every key, keeping allocated chunks for reuse.
func (m *Map) Clear() {
	if m.live == 0 {
		return
	}
	for _, blk := range m.l1 {
		if blk == nil {
			continue
		}
		for _, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			clear(c.v[:])
			c.live = 0
		}
	}
	m.live = 0
}

// Reset drops all state and backing memory.
func (m *Map) Reset() {
	m.l1 = nil
	m.live = 0
}
