package dense

import (
	"testing"
)

// TestMapMatchesReference drives a Map and a builtin map through the
// same deterministic op stream and checks full agreement.
func TestMapMatchesReference(t *testing.T) {
	var m Map
	ref := map[uint64]uint64{}

	s := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	// Keys span multiple chunks and directory blocks, including a huge
	// key that forces directory growth.
	keyFor := func() uint64 {
		switch next() % 4 {
		case 0:
			return next() % 256 // one chunk
		case 1:
			return next() % (1 << 14) // several chunks
		case 2:
			return next() % (1 << 22) // several directory blocks
		default:
			return 1<<30 | next()%1024 // sparse far region
		}
	}

	for op := 0; op < 200_000; op++ {
		k := keyFor()
		switch next() % 3 {
		case 0:
			v := next() | 1 // nonzero
			m.Set(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %d, want %d", op, k, got, want)
			}
			delete(ref, k)
		default:
			got := m.Get(k)
			want := ref[k]
			if got != want {
				t.Fatalf("op %d: Get(%d) = %d, want %d", op, k, got, want)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len() = %d, want %d", op, m.Len(), len(ref))
		}
	}

	// ForEach must visit exactly the reference contents in ascending order.
	prev := int64(-1)
	seen := 0
	m.ForEach(func(k, v uint64) {
		if int64(k) <= prev {
			t.Fatalf("ForEach out of order: %d after %d", k, prev)
		}
		prev = int64(k)
		if ref[k] != v {
			t.Fatalf("ForEach: key %d = %d, want %d", k, v, ref[k])
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("ForEach visited %d keys, want %d", seen, len(ref))
	}

	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	m.ForEach(func(k, v uint64) { t.Fatalf("ForEach after Clear visited %d", k) })
	if got := m.Get(42); got != 0 {
		t.Fatalf("Get after Clear = %d", got)
	}

	// Chunks survive Clear: setting again must not allocate directories.
	m.Set(7, 9)
	if m.Get(7) != 9 || m.Len() != 1 {
		t.Fatal("Set after Clear broken")
	}
	m.Reset()
	if m.Len() != 0 || m.Get(7) != 0 {
		t.Fatal("Reset broken")
	}
}

func TestSetZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(k, 0) did not panic")
		}
	}()
	var m Map
	m.Set(1, 0)
}

// TestSteadyStateNoAllocs pins the zero-allocation contract once a
// region's chunk exists.
func TestSteadyStateNoAllocs(t *testing.T) {
	var m Map
	for k := uint64(0); k < 8192; k++ {
		m.Set(k, k+1)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for k := uint64(0); k < 8192; k += 7 {
			m.Set(k, k^0xff|1)
			_ = m.Get(k + 1)
			m.Delete(k + 2)
		}
		m.Clear()
		for k := uint64(0); k < 8192; k += 16 {
			m.Set(k, k+3)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady state allocates %.1f times per run, want 0", allocs)
	}
}
