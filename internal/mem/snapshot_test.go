package mem

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
)

func tinyConfig() [NumTiers]TierConfig {
	return [NumTiers]TierConfig{
		TierFast: {Name: "f", CapacityPages: 64, UnloadedLatency: 70, BandwidthGBs: 205},
		TierSlow: {Name: "s", CapacityPages: 128, UnloadedLatency: 162, BandwidthGBs: 25},
	}
}

// scramble drives the tier set into a mid-run state: interleaved
// allocations, frees (building a non-trivial LIFO free stack) and
// access accounting.
func scramble(ts *Tiers) []Frame {
	var live []Frame
	for i := 0; i < 48; i++ {
		f, ok := ts.AllocPreferFast()
		if !ok {
			break
		}
		live = append(live, f)
		ts.RecordAccess(f, i%3 == 0)
	}
	kept := live[:0]
	for i, f := range live {
		if i%3 == 1 {
			ts.Free(f)
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

func tiersRoundTrip(t *testing.T, src, dst *Tiers) error {
	t.Helper()
	w := checkpoint.NewWriter()
	src.Snapshot(w.Section("mem", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cr.Section("mem", 1)
	if err != nil {
		t.Fatal(err)
	}
	return dst.Restore(d)
}

// TestTiersSnapshotRoundTrip asserts the determinism contract: a
// restored tier set hands out the exact same frame sequence as the
// original, and every counter survives.
func TestTiersSnapshotRoundTrip(t *testing.T) {
	src := NewTiers(tinyConfig())
	scramble(src)

	dst := NewTiers(tinyConfig())
	if err := tiersRoundTrip(t, src, dst); err != nil {
		t.Fatal(err)
	}

	for id := TierID(0); id < NumTiers; id++ {
		a, b := src.Tier(id), dst.Tier(id)
		if a.Used() != b.Used() || a.FreePages() != b.FreePages() {
			t.Fatalf("tier %s: used/free %d/%d != %d/%d",
				id, a.Used(), a.FreePages(), b.Used(), b.FreePages())
		}
		ar, aw := a.TotalAccesses()
		br, bw := b.TotalAccesses()
		if ar != br || aw != bw {
			t.Fatalf("tier %s: accesses %d/%d != %d/%d", id, ar, aw, br, bw)
		}
		er, ew := a.EpochAccesses()
		fr, fw := b.EpochAccesses()
		if er != fr || ew != fw {
			t.Fatalf("tier %s: epoch accesses diverged", id)
		}
	}

	// The free stacks must replay in identical LIFO order.
	for i := 0; ; i++ {
		fa, oka := src.AllocPreferFast()
		fb, okb := dst.AllocPreferFast()
		if oka != okb {
			t.Fatalf("alloc %d: ok %v != %v", i, oka, okb)
		}
		if !oka {
			break
		}
		if fa != fb {
			t.Fatalf("alloc %d: frame %v != %v", i, fa, fb)
		}
	}
}

func TestTiersRestoreCapacityMismatch(t *testing.T) {
	src := NewTiers(tinyConfig())
	scramble(src)

	cfg := tinyConfig()
	cfg[TierFast].CapacityPages = 32 // configured smaller than the checkpoint
	dst := NewTiers(cfg)
	if err := tiersRoundTrip(t, src, dst); err == nil {
		t.Fatal("capacity mismatch accepted")
	}
}

// TestTierRestoreCorruptionErrors walks every truncation point and a
// frame-out-of-range corruption through Restore; all must error, never
// panic.
func TestTierRestoreCorruptionErrors(t *testing.T) {
	src := NewTiers(tinyConfig())
	scramble(src)
	e := &checkpoint.Encoder{}
	src.Fast().Snapshot(e)
	blob := e.Bytes()

	for cut := 0; cut < len(blob); cut += 7 {
		dst := NewTiers(tinyConfig())
		if err := dst.Fast().Restore(checkpoint.NewDecoder(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Flip a free-list entry far out of range (the free list starts
	// after capacity+used+count, three 8-byte ints).
	bad := append([]byte(nil), blob...)
	for i := 24; i < 28; i++ {
		bad[i] = 0xff
	}
	dst := NewTiers(tinyConfig())
	if err := dst.Fast().Restore(checkpoint.NewDecoder(bad)); err == nil {
		t.Fatal("out-of-range free frame accepted")
	}
}
