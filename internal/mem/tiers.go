package mem

import (
	"fmt"

	"vulcan/internal/sim"
)

// Scale is the default capacity scale factor relative to the paper's
// testbed. All default capacities and workload RSS values are divided by
// this factor; the ratios between them (which drive every policy decision)
// are preserved exactly.
const Scale = 64

// Tiers is the complete physical memory of the simulated machine.
type Tiers struct {
	tiers [NumTiers]*Tier
}

// DefaultConfig returns the paper's hardware at 1/Scale capacity:
// fast = 32GB local DDR4 (70ns), slow = 256GB CXL-emulated (162ns).
func DefaultConfig() [NumTiers]TierConfig {
	return [NumTiers]TierConfig{
		TierFast: {
			Name:            "fast",
			CapacityPages:   32 << 30 / PageSize / Scale, // 131072 pages = 512MB
			UnloadedLatency: 70 * sim.Nanosecond,
			BandwidthGBs:    205,
		},
		TierSlow: {
			Name:            "slow",
			CapacityPages:   256 << 30 / PageSize / Scale, // 1Mi pages = 4GB
			UnloadedLatency: 162 * sim.Nanosecond,
			BandwidthGBs:    25, // UPI-limited, per direction
		},
	}
}

// NewTiers builds the tier set from configs.
func NewTiers(cfgs [NumTiers]TierConfig) *Tiers {
	ts := &Tiers{}
	for id, cfg := range cfgs {
		ts.tiers[id] = NewTier(TierID(id), cfg)
	}
	return ts
}

// NewDefaultTiers builds the default scaled paper configuration.
func NewDefaultTiers() *Tiers { return NewTiers(DefaultConfig()) }

// Tier returns the tier with the given ID.
func (ts *Tiers) Tier(id TierID) *Tier {
	if !id.Valid() {
		panic(fmt.Sprintf("mem: invalid tier id %d", id))
	}
	return ts.tiers[id]
}

// Fast and Slow are convenience accessors for the two default tiers.
func (ts *Tiers) Fast() *Tier { return ts.tiers[TierFast] }

// Slow returns the slow tier.
func (ts *Tiers) Slow() *Tier { return ts.tiers[TierSlow] }

// Alloc allocates a frame in the given tier.
func (ts *Tiers) Alloc(id TierID) (Frame, bool) {
	idx, ok := ts.Tier(id).Alloc()
	if !ok {
		return NilFrame, false
	}
	return Frame{Tier: id, Index: idx}, true
}

// AllocPreferFast allocates from the fast tier, falling back to slow when
// fast is exhausted — the standard first-touch policy of tiered Linux.
func (ts *Tiers) AllocPreferFast() (Frame, bool) {
	if f, ok := ts.Alloc(TierFast); ok {
		return f, true
	}
	return ts.Alloc(TierSlow)
}

// Free releases a frame back to its tier.
func (ts *Tiers) Free(f Frame) {
	if f.IsNil() {
		panic("mem: freeing nil frame")
	}
	ts.Tier(f.Tier).Free(f.Index)
}

// RecordAccess accounts one access to the frame's tier.
func (ts *Tiers) RecordAccess(f Frame, write bool) {
	ts.Tier(f.Tier).RecordAccess(write)
}

// ResetEpoch clears per-epoch counters on all tiers.
func (ts *Tiers) ResetEpoch() {
	for _, t := range ts.tiers {
		t.ResetEpoch()
	}
}

// TotalCapacity returns the total number of frames across tiers.
func (ts *Tiers) TotalCapacity() int {
	n := 0
	for _, t := range ts.tiers {
		n += t.Capacity()
	}
	return n
}

// EpochBandwidthUtil estimates each tier's bandwidth utilization over an
// epoch of the given length, from the epoch access counters (PageSize
// bytes per access is an upper bound; real accesses touch a cache line,
// but the ratio across tiers — which is what the latency ramp consumes —
// is unaffected by the constant).
func (ts *Tiers) EpochBandwidthUtil(epoch sim.Duration) [NumTiers]float64 {
	var out [NumTiers]float64
	if epoch <= 0 {
		return out
	}
	for id, t := range ts.tiers {
		r, w := t.EpochAccesses()
		// 64B per access (one cache line).
		bytes := float64(r+w) * 64
		gbPerS := bytes / epoch.Seconds() / 1e9
		out[id] = gbPerS / t.Config().BandwidthGBs
		if out[id] > 1 {
			out[id] = 1
		}
	}
	return out
}
