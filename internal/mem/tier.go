// Package mem models the physical side of a tiered memory system: memory
// tiers with distinct capacity/latency/bandwidth characteristics, physical
// frames, and a frame allocator with watermark accounting.
//
// The default configuration mirrors the paper's testbed (§5.1): a fast
// tier with 70ns unloaded latency (local DDR4) and a slow tier with 162ns
// unloaded latency (CXL-like remote NUMA emulation), with capacities at
// 1/64 of the paper's 32GB/256GB to keep simulations laptop-sized while
// preserving every capacity ratio the policies depend on.
package mem

import (
	"fmt"

	"vulcan/internal/sim"
)

// PageSize is the base page size in bytes (4 KiB), matching the paper's
// base-page migration granularity.
const PageSize = 4096

// TierID identifies a memory tier.
type TierID uint8

// The two tiers of the paper's setup. NumTiers bounds arrays indexed by
// TierID.
const (
	TierFast TierID = iota // local DRAM
	TierSlow               // CXL-like far memory
	NumTiers
)

// String returns the conventional name of the tier.
func (t TierID) String() string {
	switch t {
	case TierFast:
		return "fast"
	case TierSlow:
		return "slow"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Valid reports whether t names a real tier.
func (t TierID) Valid() bool { return t < NumTiers }

// Frame names a physical page frame: a tier plus a frame index within it.
type Frame struct {
	Tier  TierID
	Index uint32
}

// String renders the frame as "fast:123".
func (f Frame) String() string { return fmt.Sprintf("%s:%d", f.Tier, f.Index) }

// NilFrame is the sentinel "no frame" value (an invalid tier).
var NilFrame = Frame{Tier: NumTiers}

// IsNil reports whether f is the sentinel non-frame.
func (f Frame) IsNil() bool { return f.Tier >= NumTiers }

// LatencyModel selects how access latency grows with bandwidth
// utilization.
type LatencyModel uint8

// Latency models.
const (
	// LatencyQuadratic ramps latency quadratically to 3x unloaded at
	// saturation — a smooth closed form adequate when tiers run well
	// below saturation.
	LatencyQuadratic LatencyModel = iota
	// LatencyMM1 uses the M/M/1 queueing form L = L0/(1-ρ), capped at
	// 10x unloaded: the right shape when workloads genuinely contend for
	// a tier's bandwidth (e.g. CXL links near saturation).
	LatencyMM1
)

// TierConfig describes one memory tier.
type TierConfig struct {
	Name            string
	CapacityPages   int          // number of 4KiB frames
	UnloadedLatency sim.Duration // idle access latency
	BandwidthGBs    float64      // peak sustainable bandwidth, GB/s
	// Model selects the loaded-latency curve (default LatencyQuadratic).
	Model LatencyModel
}

// Tier is one memory tier with a frame free list and usage accounting.
type Tier struct {
	cfg  TierConfig
	id   TierID
	free []uint32 // LIFO free stack
	used int

	// Access accounting for the current epoch, reset by ResetEpoch.
	epochReads  uint64
	epochWrites uint64
	// Cumulative accounting over the whole run.
	totalReads  uint64
	totalWrites uint64
}

// NewTier builds a tier with all frames free.
func NewTier(id TierID, cfg TierConfig) *Tier {
	if cfg.CapacityPages <= 0 {
		panic(fmt.Sprintf("mem: tier %q with capacity %d", cfg.Name, cfg.CapacityPages))
	}
	t := &Tier{cfg: cfg, id: id, free: make([]uint32, cfg.CapacityPages)}
	// Hand out low frame indices first: free is a LIFO stack, so push in
	// reverse order.
	for i := range t.free {
		t.free[i] = uint32(cfg.CapacityPages - 1 - i)
	}
	return t
}

// ID returns the tier's identifier.
func (t *Tier) ID() TierID { return t.id }

// Config returns the tier's configuration.
func (t *Tier) Config() TierConfig { return t.cfg }

// Capacity returns the tier's total frame count.
func (t *Tier) Capacity() int { return t.cfg.CapacityPages }

// Used returns the number of allocated frames.
func (t *Tier) Used() int { return t.used }

// FreePages returns the number of free frames.
func (t *Tier) FreePages() int { return len(t.free) }

// Utilization returns used/capacity in [0,1].
func (t *Tier) Utilization() float64 {
	return float64(t.used) / float64(t.cfg.CapacityPages)
}

// Alloc removes a frame from the free list. ok is false when the tier is
// full.
func (t *Tier) Alloc() (idx uint32, ok bool) {
	n := len(t.free)
	if n == 0 {
		return 0, false
	}
	idx = t.free[n-1]
	t.free = t.free[:n-1]
	t.used++
	return idx, true
}

// Free returns a frame to the free list. Double frees panic: they corrupt
// the allocator invariant and are always caller bugs.
func (t *Tier) Free(idx uint32) {
	if int(idx) >= t.cfg.CapacityPages {
		panic(fmt.Sprintf("mem: freeing out-of-range frame %d in tier %s", idx, t.id))
	}
	if t.used == 0 {
		panic(fmt.Sprintf("mem: free with no allocated frames in tier %s", t.id))
	}
	t.free = append(t.free, idx)
	t.used--
}

// RecordAccess accounts one access against the tier's epoch and lifetime
// counters.
func (t *Tier) RecordAccess(write bool) {
	if write {
		t.epochWrites++
		t.totalWrites++
	} else {
		t.epochReads++
		t.totalReads++
	}
}

// EpochAccesses returns the read and write counts since the last
// ResetEpoch.
func (t *Tier) EpochAccesses() (reads, writes uint64) {
	return t.epochReads, t.epochWrites
}

// TotalAccesses returns lifetime read and write counts.
func (t *Tier) TotalAccesses() (reads, writes uint64) {
	return t.totalReads, t.totalWrites
}

// ResetEpoch zeroes the per-epoch access counters.
func (t *Tier) ResetEpoch() {
	t.epochReads, t.epochWrites = 0, 0
}

// LoadedLatency returns the access latency under the given bandwidth
// utilization in [0,1], using the tier's configured LatencyModel: a
// quadratic ramp to 3x unloaded (default), or an M/M/1 queueing curve
// capped at 10x. Either way the policies see the same qualitative signal
// — the tier gets slower as it saturates.
func (t *Tier) LoadedLatency(bwUtil float64) sim.Duration {
	if bwUtil < 0 {
		bwUtil = 0
	}
	if bwUtil > 1 {
		bwUtil = 1
	}
	var factor float64
	switch t.cfg.Model {
	case LatencyMM1:
		const cap = 10.0
		if bwUtil >= 1-1/cap {
			factor = cap
		} else {
			factor = 1 / (1 - bwUtil)
		}
	default:
		factor = 1.0 + 2.0*bwUtil*bwUtil
	}
	return sim.Duration(float64(t.cfg.UnloadedLatency) * factor)
}
