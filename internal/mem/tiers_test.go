package mem

import (
	"testing"

	"vulcan/internal/sim"
)

func smallTiers() *Tiers {
	return NewTiers([NumTiers]TierConfig{
		TierFast: {Name: "fast", CapacityPages: 8, UnloadedLatency: 70, BandwidthGBs: 205},
		TierSlow: {Name: "slow", CapacityPages: 64, UnloadedLatency: 162, BandwidthGBs: 25},
	})
}

func TestDefaultConfigRatios(t *testing.T) {
	cfg := DefaultConfig()
	fast, slow := cfg[TierFast], cfg[TierSlow]
	if slow.CapacityPages != 8*fast.CapacityPages {
		t.Fatalf("slow/fast capacity ratio = %d/%d, want 8x",
			slow.CapacityPages, fast.CapacityPages)
	}
	if fast.CapacityPages != 32<<30/PageSize/Scale {
		t.Fatalf("fast capacity = %d pages", fast.CapacityPages)
	}
	if fast.UnloadedLatency != 70*sim.Nanosecond || slow.UnloadedLatency != 162*sim.Nanosecond {
		t.Fatal("tier latencies do not match the paper's 70ns/162ns")
	}
}

func TestAllocPreferFastFallsBack(t *testing.T) {
	ts := smallTiers()
	for i := 0; i < 8; i++ {
		f, ok := ts.AllocPreferFast()
		if !ok || f.Tier != TierFast {
			t.Fatalf("alloc %d: frame %v ok=%v, want fast", i, f, ok)
		}
	}
	f, ok := ts.AllocPreferFast()
	if !ok || f.Tier != TierSlow {
		t.Fatalf("overflow alloc got %v ok=%v, want slow tier", f, ok)
	}
}

func TestTiersExhaustion(t *testing.T) {
	ts := smallTiers()
	for i := 0; i < 8+64; i++ {
		if _, ok := ts.AllocPreferFast(); !ok {
			t.Fatalf("alloc %d failed before total capacity", i)
		}
	}
	if _, ok := ts.AllocPreferFast(); ok {
		t.Fatal("alloc succeeded past total capacity")
	}
}

func TestTiersFreeRoundTrip(t *testing.T) {
	ts := smallTiers()
	f, _ := ts.Alloc(TierSlow)
	ts.Free(f)
	if ts.Slow().Used() != 0 {
		t.Fatal("slow tier not empty after free")
	}
}

func TestTiersFreeNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("freeing NilFrame did not panic")
		}
	}()
	smallTiers().Free(NilFrame)
}

func TestTiersInvalidTierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tier access did not panic")
		}
	}()
	smallTiers().Tier(NumTiers)
}

func TestNilFrame(t *testing.T) {
	if !NilFrame.IsNil() {
		t.Fatal("NilFrame not nil")
	}
	f := Frame{Tier: TierFast, Index: 3}
	if f.IsNil() {
		t.Fatal("real frame reported nil")
	}
	if f.String() != "fast:3" {
		t.Fatalf("frame string = %q", f.String())
	}
}

func TestRecordAccessRouting(t *testing.T) {
	ts := smallTiers()
	ff, _ := ts.Alloc(TierFast)
	sf, _ := ts.Alloc(TierSlow)
	ts.RecordAccess(ff, false)
	ts.RecordAccess(sf, true)
	ts.RecordAccess(sf, true)
	fr, fw := ts.Fast().EpochAccesses()
	sr, sw := ts.Slow().EpochAccesses()
	if fr != 1 || fw != 0 || sr != 0 || sw != 2 {
		t.Fatalf("routing wrong: fast %d/%d slow %d/%d", fr, fw, sr, sw)
	}
	ts.ResetEpoch()
	fr, _ = ts.Fast().EpochAccesses()
	sr, _ = ts.Slow().EpochAccesses()
	if fr != 0 || sr != 0 {
		t.Fatal("ResetEpoch missed a tier")
	}
}

func TestEpochBandwidthUtil(t *testing.T) {
	ts := smallTiers()
	f, _ := ts.Alloc(TierSlow)
	// 25 GB/s slow tier; drive ~12.5GB/s over 1ms: 12.5e9 B/s * 1e-3 s
	// = 12.5e6 B at 64 B/access ≈ 195312 accesses.
	for i := 0; i < 195312; i++ {
		ts.RecordAccess(f, false)
	}
	util := ts.EpochBandwidthUtil(1 * sim.Millisecond)
	if util[TierSlow] < 0.45 || util[TierSlow] > 0.55 {
		t.Fatalf("slow utilization = %v, want ~0.5", util[TierSlow])
	}
	if util[TierFast] != 0 {
		t.Fatalf("fast utilization = %v, want 0", util[TierFast])
	}
	// Zero epoch must not divide by zero.
	if u := ts.EpochBandwidthUtil(0); u[TierSlow] != 0 {
		t.Fatal("zero epoch produced nonzero utilization")
	}
}

func TestTotalCapacity(t *testing.T) {
	if got := smallTiers().TotalCapacity(); got != 72 {
		t.Fatalf("TotalCapacity = %d, want 72", got)
	}
}
