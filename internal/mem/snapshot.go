package mem

import (
	"fmt"

	"vulcan/internal/checkpoint"
)

// Snapshot appends the tier's durable state: the free stack (order
// matters — the LIFO hand-out order is part of the determinism
// contract) and the usage/access counters. The configuration is not
// serialized; it is reconstructed from the run's Config, and Restore
// validates that the capacities agree.
func (t *Tier) Snapshot(e *checkpoint.Encoder) {
	e.Int(t.cfg.CapacityPages)
	e.Int(t.used)
	e.Int(len(t.free))
	for _, idx := range t.free {
		e.U32(idx)
	}
	e.U64(t.epochReads)
	e.U64(t.epochWrites)
	e.U64(t.totalReads)
	e.U64(t.totalWrites)
}

// Restore reads the tier state back in place.
func (t *Tier) Restore(d *checkpoint.Decoder) error {
	capacity := d.Int()
	used := d.Int()
	n := d.Length(4)
	if d.Err() != nil {
		return d.Err()
	}
	if capacity != t.cfg.CapacityPages {
		return fmt.Errorf("mem: tier %s capacity %d in checkpoint, %d configured",
			t.id, capacity, t.cfg.CapacityPages)
	}
	if used < 0 || used+n != capacity {
		return fmt.Errorf("mem: tier %s used %d + free %d != capacity %d",
			t.id, used, n, capacity)
	}
	free := make([]uint32, n)
	for i := range free {
		free[i] = d.U32()
		if d.Err() == nil && int(free[i]) >= capacity {
			return fmt.Errorf("mem: tier %s free frame %d out of range", t.id, free[i])
		}
	}
	if d.Err() != nil {
		return d.Err()
	}
	t.used = used
	t.free = free
	t.epochReads = d.U64()
	t.epochWrites = d.U64()
	t.totalReads = d.U64()
	t.totalWrites = d.U64()
	return d.Err()
}

// Snapshot appends every tier in ID order.
func (ts *Tiers) Snapshot(e *checkpoint.Encoder) {
	for _, t := range ts.tiers {
		t.Snapshot(e)
	}
}

// Restore reads every tier back in ID order.
func (ts *Tiers) Restore(d *checkpoint.Decoder) error {
	for _, t := range ts.tiers {
		if err := t.Restore(d); err != nil {
			return err
		}
	}
	return nil
}
