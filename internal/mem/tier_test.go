package mem

import (
	"testing"
	"testing/quick"

	"vulcan/internal/sim"
)

func testTier(capacity int) *Tier {
	return NewTier(TierFast, TierConfig{
		Name:            "fast",
		CapacityPages:   capacity,
		UnloadedLatency: 70 * sim.Nanosecond,
		BandwidthGBs:    205,
	})
}

func TestTierAllocExhaustion(t *testing.T) {
	tr := testTier(4)
	seen := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		idx, ok := tr.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed with capacity 4", i)
		}
		if seen[idx] {
			t.Fatalf("frame %d allocated twice", idx)
		}
		seen[idx] = true
	}
	if _, ok := tr.Alloc(); ok {
		t.Fatal("alloc succeeded past capacity")
	}
	if tr.Used() != 4 || tr.FreePages() != 0 {
		t.Fatalf("used=%d free=%d, want 4/0", tr.Used(), tr.FreePages())
	}
}

func TestTierAllocLowIndicesFirst(t *testing.T) {
	tr := testTier(8)
	idx, _ := tr.Alloc()
	if idx != 0 {
		t.Fatalf("first alloc = %d, want 0", idx)
	}
	idx, _ = tr.Alloc()
	if idx != 1 {
		t.Fatalf("second alloc = %d, want 1", idx)
	}
}

func TestTierFreeReuse(t *testing.T) {
	tr := testTier(2)
	a, _ := tr.Alloc()
	b, _ := tr.Alloc()
	tr.Free(a)
	c, ok := tr.Alloc()
	if !ok || c != a {
		t.Fatalf("realloc got %d,%v want %d,true", c, ok, a)
	}
	tr.Free(b)
	tr.Free(c)
	if tr.Used() != 0 {
		t.Fatalf("used=%d after freeing all", tr.Used())
	}
}

func TestTierFreePanics(t *testing.T) {
	for name, fn := range map[string]func(*Tier){
		"out-of-range": func(tr *Tier) { tr.Free(99) },
		"underflow":    func(tr *Tier) { tr.Free(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s free did not panic", name)
				}
			}()
			fn(testTier(4))
		})
	}
}

func TestTierZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity tier did not panic")
		}
	}()
	testTier(0)
}

func TestTierUtilization(t *testing.T) {
	tr := testTier(10)
	for i := 0; i < 5; i++ {
		tr.Alloc()
	}
	if u := tr.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestTierAccessCounters(t *testing.T) {
	tr := testTier(4)
	tr.RecordAccess(false)
	tr.RecordAccess(false)
	tr.RecordAccess(true)
	r, w := tr.EpochAccesses()
	if r != 2 || w != 1 {
		t.Fatalf("epoch = %d/%d, want 2/1", r, w)
	}
	tr.ResetEpoch()
	r, w = tr.EpochAccesses()
	if r != 0 || w != 0 {
		t.Fatalf("epoch after reset = %d/%d", r, w)
	}
	r, w = tr.TotalAccesses()
	if r != 2 || w != 1 {
		t.Fatalf("totals = %d/%d, want 2/1", r, w)
	}
}

func TestLoadedLatencyRamp(t *testing.T) {
	tr := testTier(4)
	idle := tr.LoadedLatency(0)
	if idle != 70*sim.Nanosecond {
		t.Fatalf("idle latency = %v, want 70ns", idle)
	}
	half := tr.LoadedLatency(0.5)
	full := tr.LoadedLatency(1)
	if !(idle < half && half < full) {
		t.Fatalf("latency not monotone: %v %v %v", idle, half, full)
	}
	if full != 3*idle {
		t.Fatalf("saturated latency = %v, want 3x idle %v", full, 3*idle)
	}
	// Out-of-range inputs clamp rather than explode.
	if tr.LoadedLatency(-1) != idle {
		t.Fatal("negative utilization not clamped")
	}
	if tr.LoadedLatency(5) != full {
		t.Fatal("over-unity utilization not clamped")
	}
}

func TestLoadedLatencyMM1(t *testing.T) {
	tr := NewTier(TierSlow, TierConfig{
		Name:            "slow",
		CapacityPages:   4,
		UnloadedLatency: 162 * sim.Nanosecond,
		BandwidthGBs:    25,
		Model:           LatencyMM1,
	})
	idle := tr.LoadedLatency(0)
	if idle != 162*sim.Nanosecond {
		t.Fatalf("idle = %v", idle)
	}
	// M/M/1: at ρ=0.5 latency doubles.
	if got := tr.LoadedLatency(0.5); got != 2*idle {
		t.Fatalf("ρ=0.5 latency = %v, want 2x idle", got)
	}
	// The curve caps at 10x near saturation instead of diverging.
	if got := tr.LoadedLatency(0.99); got != 10*idle {
		t.Fatalf("near-saturation latency = %v, want 10x cap", got)
	}
	if tr.LoadedLatency(1) != 10*idle {
		t.Fatal("saturation not capped")
	}
	// Monotone within the uncapped region.
	if !(tr.LoadedLatency(0.2) < tr.LoadedLatency(0.6)) {
		t.Fatal("MM1 curve not monotone")
	}
}

func TestTierAllocFreeInvariant(t *testing.T) {
	// Property: after any interleaving of allocs and frees,
	// used + free == capacity and no frame is handed out twice.
	check := func(seed uint64, opsRaw []bool) bool {
		const capacity = 32
		tr := testTier(capacity)
		live := map[uint32]bool{}
		var order []uint32
		for _, alloc := range opsRaw {
			if alloc {
				idx, ok := tr.Alloc()
				if ok {
					if live[idx] {
						return false // double allocation
					}
					live[idx] = true
					order = append(order, idx)
				} else if len(live) != capacity {
					return false // spurious exhaustion
				}
			} else if len(order) > 0 {
				idx := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, idx)
				tr.Free(idx)
			}
		}
		return tr.Used()+tr.FreePages() == capacity && tr.Used() == len(live)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTierIDString(t *testing.T) {
	if TierFast.String() != "fast" || TierSlow.String() != "slow" {
		t.Fatal("tier names wrong")
	}
	if TierID(9).String() != "tier(9)" {
		t.Fatalf("unknown tier string = %q", TierID(9).String())
	}
	if !TierFast.Valid() || TierID(7).Valid() {
		t.Fatal("validity check wrong")
	}
}
