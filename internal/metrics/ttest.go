package metrics

import "math"

// WelchT computes Welch's t statistic and its Welch–Satterthwaite degrees
// of freedom for two sample summaries. It returns (0, 0) when either
// sample has fewer than two observations or both variances are zero.
func WelchT(a, b *Running) (t, df float64) {
	if a.N() < 2 || b.N() < 2 {
		return 0, 0
	}
	va := a.Var() / float64(a.N())
	vb := b.Var() / float64(b.N())
	if va+vb == 0 {
		return 0, 0
	}
	t = (a.Mean() - b.Mean()) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(a.N()-1) + vb*vb/float64(b.N()-1))
	return t, df
}

// tCrit95 holds two-tailed 5% critical values of Student's t by degrees
// of freedom (1-indexed up to 30; beyond that the normal 1.96 applies).
var tCrit95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// CriticalT95 returns the two-tailed 5% critical value for df degrees of
// freedom.
func CriticalT95(df float64) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	i := int(df)
	if i >= len(tCrit95) {
		return 1.96
	}
	return tCrit95[i]
}

// SignificantlyDifferent reports whether the two samples' means differ at
// the 5% level under Welch's t-test. With insufficient data it returns
// false (no evidence of a difference).
func SignificantlyDifferent(a, b *Running) bool {
	t, df := WelchT(a, b)
	if df == 0 {
		return false
	}
	return math.Abs(t) > CriticalT95(df)
}
