// Package metrics provides the statistics used throughout the evaluation:
// running summaries, exponential moving averages, percentiles, Jain's
// fairness index, and the paper's FTHR-weighted Cumulative Fairness Index
// (Eq. 4), plus a time-series recorder for figure generation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count/mean/variance/min/max in one pass (Welford).
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the sample variance (0 with fewer than 2 observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean — the error bars of Figures 8 and 10.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Std() / math.Sqrt(float64(r.n))
}

// String renders "mean ± ci95 (n)".
func (r *Running) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean(), r.CI95(), r.n)
}

// EMA is an exponential moving average with weight alpha on the newest
// sample: v = alpha*x + (1-alpha)*v. The paper uses alpha = 0.8 for FTHR
// smoothing (Eq. 2).
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA builds an EMA with the given weight in (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EMA alpha %v outside (0,1]", alpha))
	}
	return &EMA{alpha: alpha}
}

// Update folds in a new observation and returns the smoothed value. The
// first observation primes the average directly.
func (e *EMA) Update(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value (0 before any update).
func (e *EMA) Value() float64 { return e.value }

// Primed reports whether at least one observation arrived.
func (e *EMA) Primed() bool { return e.primed }

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation. It copies and sorts; xs is unmodified. Empty input
// returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-bucket histogram over [min, max); out-of-range
// observations clamp into the edge buckets.
type Histogram struct {
	min, max float64
	buckets  []uint64
	count    uint64
}

// NewHistogram builds a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{min: min, max: max, buckets: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.buckets)) * (x - h.min) / (h.max - h.min))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
}

// Merge folds other's observations into h. The two histograms must
// share the same shape ([min, max) bounds and bucket count) — merging
// differently-shaped histograms would silently smear observations
// across bucket boundaries, so it is rejected instead. A nil other is
// a no-op, letting rollups fold optional per-source histograms without
// guarding every call site.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if other.min != h.min || other.max != h.max || len(other.buckets) != len(h.buckets) { //vulcanvet:ok floateq — bounds are assigned configuration, exact shape match is the point
		return fmt.Errorf("metrics: merging histogram [%v,%v)x%d into [%v,%v)x%d",
			other.min, other.max, len(other.buckets), h.min, h.max, len(h.buckets))
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
	h.count += other.count
	return nil
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// HistSummary condenses a histogram into the percentiles dashboards and
// the obs registry exporter report.
type HistSummary struct {
	Count uint64
	P50   float64
	P95   float64
	P99   float64
}

// Summary returns the p50/p95/p99 summary of the histogram. An empty
// histogram summarizes to the zero value.
func (h *Histogram) Summary() HistSummary {
	if h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: h.count,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Quantile returns an approximate q-quantile from the histogram using
// the nearest-rank definition: the midpoint of the bucket holding the
// ceil(q·n)-th smallest observation. The answer is always a bucket a
// sample actually landed in — a single-sample histogram reports that
// sample's bucket for every q, and Quantile(1) never overshoots to the
// histogram's upper bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	width := (h.max - h.min) / float64(len(h.buckets))
	last := 0
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		cum += b
		last = i
		if cum >= rank {
			return h.min + width*(float64(i)+0.5)
		}
	}
	// Unreachable for q in [0,1] (cum reaches h.count ≥ rank), kept as a
	// safe fallback: the highest non-empty bucket.
	return h.min + width*(float64(last)+0.5)
}
