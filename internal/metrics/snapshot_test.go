package metrics

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/sim"
)

func encode(snap func(e *checkpoint.Encoder)) []byte {
	e := &checkpoint.Encoder{}
	snap(e)
	return e.Bytes()
}

func TestRunningSnapshotRoundTrip(t *testing.T) {
	var src Running
	for i := 0; i < 100; i++ {
		src.Add(float64(i*i) / 7)
	}
	var dst Running
	d := checkpoint.NewDecoder(encode(src.Snapshot))
	if err := dst.Restore(d); err != nil {
		t.Fatal(err)
	}
	// Continue feeding both: the Welford accumulator state must be
	// bit-exact, not just the current summary values.
	for i := 0; i < 50; i++ {
		src.Add(float64(i) * 1.5)
		dst.Add(float64(i) * 1.5)
	}
	if src != dst {
		t.Fatalf("accumulators diverged: %+v != %+v", src, dst)
	}
}

func TestRunningRestoreRejectsNegativeCount(t *testing.T) {
	e := &checkpoint.Encoder{}
	e.Int(-1)
	for i := 0; i < 4; i++ {
		e.F64(0)
	}
	var r Running
	if err := r.Restore(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("negative observation count accepted")
	}
}

func TestEMASnapshotRoundTrip(t *testing.T) {
	src := NewEMA(0.2)
	for i := 0; i < 20; i++ {
		src.Update(float64(i % 7))
	}
	dst := NewEMA(0.2)
	if err := dst.Restore(checkpoint.NewDecoder(encode(src.Snapshot))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a, b := src.Update(float64(i)), dst.Update(float64(i)); a != b {
			t.Fatalf("update %d: %v != %v", i, a, b)
		}
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	src := NewHistogram(0, 100, 20)
	for i := 0; i < 500; i++ {
		src.Add(float64(i%130) - 10) // includes under/overflow
	}
	dst, err := RestoreHistogram(checkpoint.NewDecoder(encode(src.Snapshot)))
	if err != nil {
		t.Fatal(err)
	}
	if dst.Count() != src.Count() || dst.Buckets() != src.Buckets() {
		t.Fatalf("shape: count %d/%d buckets %d/%d",
			dst.Count(), src.Count(), dst.Buckets(), src.Buckets())
	}
	for i := 0; i < src.Buckets(); i++ {
		if src.Bucket(i) != dst.Bucket(i) {
			t.Fatalf("bucket %d: %d != %d", i, src.Bucket(i), dst.Bucket(i))
		}
	}
	if src.Quantile(0.9) != dst.Quantile(0.9) {
		t.Fatal("quantiles diverged")
	}
}

func TestRestoreHistogramRejectsBadShape(t *testing.T) {
	shape := func(min, max float64, n int) []byte {
		e := &checkpoint.Encoder{}
		e.F64(min)
		e.F64(max)
		e.Int(n)
		for i := 0; i < n; i++ {
			e.U64(0)
		}
		e.U64(0)
		return e.Bytes()
	}
	cases := map[string][]byte{
		"inverted bounds": shape(100, 0, 4),
		"zero buckets":    shape(0, 100, 0),
		"empty payload":   nil,
	}
	for name, blob := range cases {
		if _, err := RestoreHistogram(checkpoint.NewDecoder(blob)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCFITrackerSnapshotRoundTrip(t *testing.T) {
	src := NewCFITracker(3)
	for i := 0; i < 30; i++ {
		src.Observe(i%3, float64(i), 1+float64(i%5))
	}
	dst := NewCFITracker(3)
	if err := dst.Restore(checkpoint.NewDecoder(encode(src.Snapshot))); err != nil {
		t.Fatal(err)
	}
	if src.Index() != dst.Index() {
		t.Fatalf("CFI %v != %v", src.Index(), dst.Index())
	}
	// Workload-count mismatch must be rejected.
	if err := NewCFITracker(4).Restore(checkpoint.NewDecoder(encode(src.Snapshot))); err == nil {
		t.Fatal("workload-count mismatch accepted")
	}
}

func TestSeriesRestoreRejectsTimeTravel(t *testing.T) {
	e := &checkpoint.Encoder{}
	e.Int(2)
	e.I64(100)
	e.F64(1)
	e.I64(50) // earlier than the previous point
	e.F64(2)
	s := NewSeries("x")
	if err := s.Restore(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("non-monotonic series accepted")
	}
}

func TestRecorderSnapshotRoundTrip(t *testing.T) {
	var clock sim.Clock
	src := NewRecorder(&clock)
	for i := 0; i < 40; i++ {
		clock.Advance(sim.Millisecond)
		src.Record("throughput", float64(i))
		if i%2 == 0 {
			src.Record("fairness", 1/float64(i+1))
		}
	}

	w := checkpoint.NewWriter()
	src.Snapshot(w.Section("metrics", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cr.Section("metrics", 1)
	if err != nil {
		t.Fatal(err)
	}
	var clock2 sim.Clock
	clock2.AdvanceTo(clock.Now())
	dst := NewRecorder(&clock2)
	dst.Record("pre-existing", 1) // must be discarded by Restore
	if err := dst.Restore(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Keep recording on both and compare the full CSV export.
	for i := 0; i < 10; i++ {
		clock.Advance(sim.Millisecond)
		clock2.Advance(sim.Millisecond)
		src.Record("throughput", float64(i)*3)
		dst.Record("throughput", float64(i)*3)
	}
	var a, b bytes.Buffer
	if err := src.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := dst.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("CSV exports diverged after restore")
	}
}

func TestRecorderRestoreRejectsDuplicateSeries(t *testing.T) {
	e := &checkpoint.Encoder{}
	e.Int(2)
	for i := 0; i < 2; i++ {
		e.String("dup")
		e.Int(0) // empty series
	}
	var clock sim.Clock
	r := NewRecorder(&clock)
	if err := r.Restore(checkpoint.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("duplicate series accepted")
	}
}
