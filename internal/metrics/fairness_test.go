package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainIndexEquality(t *testing.T) {
	if j := JainIndex([]float64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal allocation index = %v, want 1", j)
	}
}

func TestJainIndexMonopoly(t *testing.T) {
	j := JainIndex([]float64{10, 0, 0, 0})
	if math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("monopoly index = %v, want 1/n = 0.25", j)
	}
}

func TestJainIndexKnownValue(t *testing.T) {
	// (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
	j := JainIndex([]float64{1, 2, 3})
	if math.Abs(j-36.0/42.0) > 1e-12 {
		t.Fatalf("index = %v, want %v", j, 36.0/42.0)
	}
}

func TestJainIndexDegenerate(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Fatal("empty index not 0")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("all-zero index not 0")
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	// Property: for positive allocations, 1/n ≤ J ≤ 1, and J is scale
	// invariant.
	check := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			v := math.Abs(x) + 0.001
			if v > 1e9 {
				v = 1e9
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * 7.5
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCFITracker(t *testing.T) {
	c := NewCFITracker(2)
	// Workload 0: large allocation used effectively; workload 1: equally
	// large allocation with near-zero hit ratio. Efficiency weighting must
	// push the index well below 1.
	for i := 0; i < 10; i++ {
		c.Observe(0, 100, 0.9)
		c.Observe(1, 100, 0.05)
	}
	cum := c.Cumulative()
	if cum[0] != 900 || math.Abs(cum[1]-50) > 1e-9 {
		t.Fatalf("cumulative = %v", cum)
	}
	if idx := c.Index(); idx > 0.6 {
		t.Fatalf("CFI = %v, want < 0.6 for ineffective allocation", idx)
	}
	// Equal efficiency-adjusted use → perfect fairness.
	c2 := NewCFITracker(2)
	c2.Observe(0, 100, 0.5)
	c2.Observe(1, 50, 1.0)
	if idx := c2.Index(); math.Abs(idx-1) > 1e-12 {
		t.Fatalf("balanced CFI = %v, want 1", idx)
	}
}

func TestCFITrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCFITracker(0) did not panic")
		}
	}()
	NewCFITracker(0)
}
