package metrics

import (
	"fmt"

	"vulcan/internal/checkpoint"
	"vulcan/internal/sim"
)

// Snapshot appends the running summary's accumulator state.
func (r *Running) Snapshot(e *checkpoint.Encoder) {
	e.Int(r.n)
	e.F64(r.mean)
	e.F64(r.m2)
	e.F64(r.min)
	e.F64(r.max)
}

// Restore reads the accumulator back in place.
func (r *Running) Restore(d *checkpoint.Decoder) error {
	r.n = d.Int()
	r.mean = d.F64()
	r.m2 = d.F64()
	r.min = d.F64()
	r.max = d.F64()
	if d.Err() != nil {
		return d.Err()
	}
	if r.n < 0 {
		return fmt.Errorf("metrics: negative observation count %d", r.n)
	}
	return nil
}

// Snapshot appends the average's state. Alpha is construction
// configuration, not state, and is kept by the restoring EMA.
func (e *EMA) Snapshot(enc *checkpoint.Encoder) {
	enc.F64(e.value)
	enc.Bool(e.primed)
}

// Restore reads the average back in place.
func (e *EMA) Restore(d *checkpoint.Decoder) error {
	e.value = d.F64()
	e.primed = d.Bool()
	return d.Err()
}

// Snapshot appends the histogram's shape and bucket counts, so a
// restore can rebuild it without knowing the construction arguments.
func (h *Histogram) Snapshot(e *checkpoint.Encoder) {
	e.F64(h.min)
	e.F64(h.max)
	e.Int(len(h.buckets))
	for _, b := range h.buckets {
		e.U64(b)
	}
	e.U64(h.count)
}

// RestoreHistogram reads a histogram written by Snapshot.
func RestoreHistogram(d *checkpoint.Decoder) (*Histogram, error) {
	min := d.F64()
	max := d.F64()
	n := d.Length(8)
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n <= 0 || max <= min {
		return nil, fmt.Errorf("metrics: invalid histogram shape [%v,%v) n=%d", min, max, n)
	}
	h := NewHistogram(min, max, n)
	for i := range h.buckets {
		h.buckets[i] = d.U64()
	}
	h.count = d.U64()
	return h, d.Err()
}

// Snapshot appends the tracker's cumulative allocations.
func (c *CFITracker) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(c.x))
	for _, x := range c.x {
		e.F64(x)
	}
}

// Restore reads the allocations back in place; the workload count is
// fixed at construction and must match.
func (c *CFITracker) Restore(d *checkpoint.Decoder) error {
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(c.x) {
		return fmt.Errorf("metrics: checkpoint tracks %d workloads, tracker has %d", n, len(c.x))
	}
	for i := range c.x {
		c.x[i] = d.F64()
	}
	return d.Err()
}

// Snapshot appends the series' points.
func (s *Series) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(s.points))
	for _, p := range s.points {
		e.I64(int64(p.T))
		e.F64(p.V)
	}
}

// Restore reads the points back in place.
func (s *Series) Restore(d *checkpoint.Decoder) error {
	n := d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	s.points = make([]Point, 0, n)
	var last sim.Time
	for i := 0; i < n; i++ {
		p := Point{T: sim.Time(d.I64()), V: d.F64()}
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && p.T < last {
			return fmt.Errorf("metrics: series %q checkpoint time going backwards", s.Name)
		}
		last = p.T
		s.points = append(s.points, p)
	}
	return nil
}

// Snapshot appends every series in creation order.
func (r *Recorder) Snapshot(e *checkpoint.Encoder) {
	e.Int(len(r.order))
	for _, name := range r.order {
		e.String(name)
		r.series[name].Snapshot(e)
	}
}

// Restore reads the series back in place, replacing any existing ones
// but keeping the clock binding.
func (r *Recorder) Restore(d *checkpoint.Decoder) error {
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	r.series = make(map[string]*Series, n)
	r.order = r.order[:0]
	for i := 0; i < n; i++ {
		name := d.String()
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := r.series[name]; dup {
			return fmt.Errorf("metrics: duplicate series %q in checkpoint", name)
		}
		s := NewSeries(name)
		if err := s.Restore(d); err != nil {
			return err
		}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return nil
}
