package metrics

import (
	"strings"
	"testing"

	"vulcan/internal/sim"
)

func TestSeriesAddAndQuery(t *testing.T) {
	s := NewSeries("fthr")
	s.Add(0, 0.5)
	s.Add(100, 0.7)
	s.Add(100, 0.7) // equal timestamps allowed
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if p := s.At(1); p.T != 100 || p.V != 0.7 {
		t.Fatalf("At(1) = %+v", p)
	}
	last, ok := s.Last()
	if !ok || last.T != 100 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	if m := s.Mean(); m < 0.63 || m > 0.64 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Fatal("empty Last ok")
	}
	if s.Mean() != 0 {
		t.Fatal("empty Mean nonzero")
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	s := NewSeries("x")
	s.Add(100, 1)
	s.Add(50, 2)
}

func TestRecorder(t *testing.T) {
	var c sim.Clock
	r := NewRecorder(&c)
	r.Record("a", 1)
	c.Advance(10)
	r.Record("b", 2)
	r.Record("a", 3)
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if r.Series("a").Len() != 2 {
		t.Fatal("series a wrong length")
	}
	last, _ := r.Series("a").Last()
	if last.T != 10 || last.V != 3 {
		t.Fatalf("series a last = %+v", last)
	}
}

func TestRecorderWriteCSV(t *testing.T) {
	var c sim.Clock
	r := NewRecorder(&c)
	r.Record("alloc", 42)
	c.Advance(5)
	r.Record("alloc", 43)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "series,time_ns,value\nalloc,0,42\nalloc,5,43\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
