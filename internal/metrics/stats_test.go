package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(r.Var()-32.0/7) > 1e-9 {
		t.Fatalf("Var = %v, want %v", r.Var(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.CI95() <= 0 {
		t.Fatal("CI95 not positive")
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.CI95() != 0 {
		t.Fatal("empty Running nonzero")
	}
	r.Add(3)
	if r.Var() != 0 || r.CI95() != 0 {
		t.Fatal("single-sample variance nonzero")
	}
	if r.Mean() != 3 || r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single-sample summary wrong")
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	check := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		sum := 0.0
		for _, x := range xs {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		if math.Abs(r.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(len(xs)-1)
		return math.Abs(r.Var()-v) <= 1e-6*(1+v)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.8)
	if e.Primed() {
		t.Fatal("fresh EMA primed")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10 (priming)", got)
	}
	got := e.Update(0)
	if math.Abs(got-2.0) > 1e-12 { // 0.8*0 + 0.2*10
		t.Fatalf("second update = %v, want 2", got)
	}
	if e.Value() != got {
		t.Fatal("Value disagrees with Update return")
	}
}

func TestEMAConvergence(t *testing.T) {
	e := NewEMA(0.5)
	for i := 0; i < 60; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EMA did not converge: %v", e.Value())
	}
}

func TestEMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEMA(%v) did not panic", a)
				}
			}()
			NewEMA(a)
		}()
	}
	NewEMA(1) // boundary is legal
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not 0")
	}
	// Input must be unmodified.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
	// Out-of-range p clamps.
	if Percentile(xs, -1) != 1 || Percentile(xs, 2) != 5 {
		t.Error("p clamping wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Count() != 10 {
		t.Fatalf("Count = %d", h.Count())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Fatalf("median = %v, want ~5", med)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Bucket(0) != 1 || h.Bucket(4) != 1 {
		t.Fatal("out-of-range values not clamped to edge buckets")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets": func() { NewHistogram(0, 1, 0) },
		"bad range":    func() { NewHistogram(5, 5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	// Bucket midpoints put each percentile within one bucket width.
	if s.P50 < 49 || s.P50 > 52 {
		t.Errorf("P50 = %v, want ~50", s.P50)
	}
	if s.P95 < 94 || s.P95 > 97 {
		t.Errorf("P95 = %v, want ~95", s.P95)
	}
	if s.P99 < 98 || s.P99 > 100 {
		t.Errorf("P99 = %v, want ~99", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}

func TestHistogramSummaryEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if s := h.Summary(); s != (HistSummary{}) {
		t.Fatalf("empty summary = %+v, want zero value", s)
	}
}

func TestHistogramSummarySkewed(t *testing.T) {
	// A tail-heavy distribution must separate p50 from p99. The tail is
	// 2% of the mass so the nearest-rank p99 (the 990th of 1000 samples)
	// falls inside it.
	h := NewHistogram(0, 1000, 1000)
	for i := 0; i < 980; i++ {
		h.Add(10)
	}
	for i := 0; i < 20; i++ {
		h.Add(900)
	}
	s := h.Summary()
	if s.P50 > 20 {
		t.Errorf("P50 = %v, want ~10", s.P50)
	}
	if s.P99 < 100 {
		t.Errorf("P99 = %v, want in the tail", s.P99)
	}
}

// TestHistogramQuantileBoundaries pins the nearest-rank edge cases at 0,
// 1 and 2 samples: every quantile of a one-sample histogram is that
// sample's bucket, and Quantile(1) never overshoots to a bucket no
// observation landed in.
func TestHistogramQuantileBoundaries(t *testing.T) {
	const mid7 = 7.5 // midpoint of bucket 7 in [0,10) x 10 buckets
	const mid2 = 2.5

	t.Run("zero samples", func(t *testing.T) {
		h := NewHistogram(0, 10, 10)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("Quantile(%v) = %v, want 0", q, got)
			}
		}
		if s := h.Summary(); s != (HistSummary{}) {
			t.Errorf("Summary = %+v, want zero value", s)
		}
	})

	t.Run("one sample", func(t *testing.T) {
		h := NewHistogram(0, 10, 10)
		h.Add(7.3)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got != mid7 {
				t.Errorf("Quantile(%v) = %v, want %v", q, got, mid7)
			}
		}
		s := h.Summary()
		want := HistSummary{Count: 1, P50: mid7, P95: mid7, P99: mid7}
		if s != want {
			t.Errorf("Summary = %+v, want %+v", s, want)
		}
	})

	t.Run("two samples", func(t *testing.T) {
		h := NewHistogram(0, 10, 10)
		h.Add(2.5)
		h.Add(7.5)
		cases := []struct{ q, want float64 }{
			{0, mid2},    // rank clamps to 1: the smaller sample
			{0.5, mid2},  // ceil(0.5·2) = 1
			{0.51, mid7}, // ceil(1.02) = 2
			{0.95, mid7},
			{0.99, mid7},
			{1, mid7}, // never the histogram max
		}
		for _, tc := range cases {
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		}
		s := h.Summary()
		want := HistSummary{Count: 2, P50: mid2, P95: mid7, P99: mid7}
		if s != want {
			t.Errorf("Summary = %+v, want %+v", s, want)
		}
	})
}
