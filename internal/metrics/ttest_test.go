package metrics

import (
	"math"
	"testing"
)

func sample(xs ...float64) *Running {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return &r
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic textbook pair: clearly separated samples.
	a := sample(27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4)
	b := sample(27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9)
	tstat, df := WelchT(a, b)
	// Reference values computed independently: t ≈ -2.8353, df ≈ 27.71.
	if math.Abs(tstat-(-2.8353)) > 0.001 {
		t.Fatalf("t = %v, want ~-2.8353", tstat)
	}
	if math.Abs(df-27.71) > 0.05 {
		t.Fatalf("df = %v, want ~27.71", df)
	}
	if !SignificantlyDifferent(a, b) {
		t.Fatal("clearly separated samples not significant")
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	a := sample(1, 2, 3, 4)
	b := sample(1, 2, 3, 4)
	tstat, _ := WelchT(a, b)
	if tstat != 0 {
		t.Fatalf("t = %v for identical samples", tstat)
	}
	if SignificantlyDifferent(a, b) {
		t.Fatal("identical samples significant")
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if tstat, df := WelchT(sample(1), sample(1, 2)); tstat != 0 || df != 0 {
		t.Fatal("single-observation sample produced a statistic")
	}
	// Zero variance on both sides.
	if tstat, df := WelchT(sample(3, 3, 3), sample(3, 3, 3)); tstat != 0 || df != 0 {
		t.Fatal("zero-variance pair produced a statistic")
	}
	if SignificantlyDifferent(sample(1), sample(2)) {
		t.Fatal("insufficient data reported significant")
	}
}

func TestWelchTNoisyOverlapNotSignificant(t *testing.T) {
	a := sample(10, 14, 9, 13, 11)
	b := sample(11, 12, 10, 14, 12)
	if SignificantlyDifferent(a, b) {
		t.Fatal("overlapping noisy samples reported significant")
	}
}

func TestCriticalT95(t *testing.T) {
	if got := CriticalT95(1); got != 12.706 {
		t.Fatalf("df=1 critical = %v", got)
	}
	if got := CriticalT95(10); got != 2.228 {
		t.Fatalf("df=10 critical = %v", got)
	}
	if got := CriticalT95(1000); got != 1.96 {
		t.Fatalf("large-df critical = %v", got)
	}
	if !math.IsInf(CriticalT95(0.5), 1) {
		t.Fatal("df<1 must be infinite")
	}
	// Monotone decreasing.
	if CriticalT95(5) <= CriticalT95(25) {
		t.Fatal("critical values not decreasing in df")
	}
}
