package metrics

import (
	"math"
	"testing"
)

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	b := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 3.2, 9.99} {
		a.Add(x)
	}
	for _, x := range []float64{-5, 3.7, 42} { // clamp into edge buckets
		b.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Count(), uint64(7); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	// Bucket 0: a's {0, 0.5} plus b's clamped -5.
	if got := a.Bucket(0); got != 3 {
		t.Errorf("bucket 0 = %d, want 3", got)
	}
	// Bucket 3: a's 3.2 plus b's 3.7.
	if got := a.Bucket(3); got != 2 {
		t.Errorf("bucket 3 = %d, want 2", got)
	}
	// Top bucket: a's 9.99 plus b's clamped 42.
	if got := a.Bucket(9); got != 2 {
		t.Errorf("bucket 9 = %d, want 2", got)
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	a.Add(0.5)
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := a.Merge(NewHistogram(0, 1, 4)); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if a.Count() != 1 {
		t.Fatalf("count changed to %d after no-op merges", a.Count())
	}
}

func TestHistogramMergeShapeMismatch(t *testing.T) {
	a := NewHistogram(0, 10, 10)
	for _, bad := range []*Histogram{
		NewHistogram(1, 10, 10), // min differs
		NewHistogram(0, 11, 10), // max differs
		NewHistogram(0, 10, 11), // bucket count differs
	} {
		if err := a.Merge(bad); err == nil {
			t.Errorf("merge of mismatched shape %v succeeded", bad)
		}
	}
	if a.Count() != 0 {
		t.Fatalf("rejected merges mutated the receiver (count %d)", a.Count())
	}
}

func TestHistogramMergeQuantiles(t *testing.T) {
	// Merging must be equivalent to observing the union.
	union := NewHistogram(0, 100, 50)
	parts := []*Histogram{NewHistogram(0, 100, 50), NewHistogram(0, 100, 50)}
	for i := 0; i < 200; i++ {
		x := float64(i % 100)
		union.Add(x)
		parts[i%2].Add(x)
	}
	merged := NewHistogram(0, 100, 50)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := merged.Quantile(q), union.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v after merge, union gives %v", q, got, want)
		}
	}
}

func TestCFITrackerGrow(t *testing.T) {
	c := new(CFITracker) // zero value: no workloads yet
	if c.N() != 0 {
		t.Fatalf("zero-value tracker has %d slots", c.N())
	}
	if got := c.Index(); got != 0 {
		t.Fatalf("empty tracker index = %v, want 0", got)
	}
	i := c.Grow()
	j := c.Grow()
	if i != 0 || j != 1 {
		t.Fatalf("Grow indices = %d,%d, want 0,1", i, j)
	}
	c.Observe(i, 100, 1.0)
	k := c.Grow()
	if k != 2 {
		t.Fatalf("third Grow index = %d, want 2", k)
	}
	cum := c.Cumulative()
	if len(cum) != 3 || cum[0] != 100 || cum[1] != 0 || cum[2] != 0 {
		t.Fatalf("cumulative after grow = %v", cum)
	}
}

func TestCombineCFI(t *testing.T) {
	// Concatenation semantics: equal allocations across hosts are fair.
	if got := CombineCFI([]float64{5, 5}, []float64{5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocations: CFI %v, want 1", got)
	}
	// Per-host balance does not hide cross-host imbalance: two hosts,
	// each internally fair, one starving its tenants relative to the
	// other, must score below a same-shape single host.
	skew := CombineCFI([]float64{10, 10}, []float64{1, 1})
	if skew >= 1 {
		t.Errorf("cross-host imbalance scored %v, want < 1", skew)
	}
	want := JainIndex([]float64{10, 10, 1, 1})
	if math.Abs(skew-want) > 1e-12 {
		t.Errorf("CombineCFI = %v, JainIndex over concat = %v", skew, want)
	}
	// Boundary cases.
	if got := CombineCFI(); got != 0 {
		t.Errorf("no groups: %v, want 0", got)
	}
	if got := CombineCFI(nil, []float64{}); got != 0 {
		t.Errorf("empty groups: %v, want 0", got)
	}
	if got := CombineCFI(nil, []float64{3}, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("single workload across empty groups: %v, want 1", got)
	}
	if got := CombineCFI([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero allocations: %v, want 0", got)
	}
}
