package metrics

import (
	"fmt"
	"io"

	"vulcan/internal/sim"
)

// Point is one time-stamped observation.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only named time series, the backing store for every
// "x over time" figure (1, 9).
type Series struct {
	Name   string
	points []Point
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation; timestamps must be non-decreasing.
func (s *Series) Add(t sim.Time, v float64) {
	if n := len(s.points); n > 0 && s.points[n-1].T > t {
		panic(fmt.Sprintf("metrics: series %q time going backwards", s.Name))
	}
	s.points = append(s.points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// At returns point i.
func (s *Series) At(i int) Point { return s.points[i] }

// Last returns the most recent point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Mean returns the average of the values.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// Recorder is a set of named time series sharing a clock.
type Recorder struct {
	clock  *sim.Clock
	series map[string]*Series
	order  []string
}

// NewRecorder creates a recorder reading timestamps from clock.
func NewRecorder(clock *sim.Clock) *Recorder {
	return &Recorder{clock: clock, series: make(map[string]*Series)}
}

// Series returns (creating on first use) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Record appends v to the named series at the current simulated time.
func (r *Recorder) Record(name string, v float64) {
	r.Series(name).Add(r.clock.Now(), v)
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	return append([]string(nil), r.order...)
}

// WriteCSV emits every series as long-format CSV rows
// (series,time_ns,value), sorted by creation order then time.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,time_ns,value"); err != nil {
		return err
	}
	for _, name := range r.Names() {
		s := r.series[name]
		for _, p := range s.points {
			if _, err := fmt.Fprintf(w, "%s,%d,%.6g\n", name, int64(p.T), p.V); err != nil {
				return err
			}
		}
	}
	return nil
}
