package metrics

// JainIndex computes Jain's fairness index over the allocations xs:
//
//	J = (Σx)² / (n · Σx²)
//
// It ranges from 1/n (one tenant gets everything) to 1 (perfect
// equality). Non-positive entries participate as given; an empty or
// all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CFITracker accumulates the paper's FTHR-weighted Cumulative Fairness
// Index (Eq. 4): each workload's efficiency-adjusted cumulative
// allocation X_i = Σ_t x_i(t)·FTHR_i(t) feeds Jain's index, so a system
// is "fair" only when it gives workloads fast memory they actually use
// effectively over time.
type CFITracker struct {
	x []float64
}

// NewCFITracker creates a tracker for n workloads. A dynamic system
// that admits workloads at runtime starts from the zero value (zero
// workloads) and adds slots with Grow instead.
func NewCFITracker(n int) *CFITracker {
	if n <= 0 {
		panic("metrics: CFI tracker needs at least one workload")
	}
	return &CFITracker{x: make([]float64, n)}
}

// Grow appends one zero-initialized workload slot and returns its
// index. Existing cumulative allocations keep their indices, so a
// fleet-style system can admit workloads mid-run without disturbing
// the fairness history of the incumbents.
func (c *CFITracker) Grow() int {
	c.x = append(c.x, 0)
	return len(c.x) - 1
}

// N returns the number of tracked workloads.
func (c *CFITracker) N() int { return len(c.x) }

// Observe adds one sampling interval: alloc_i fast-tier pages (or bytes —
// any consistent unit) weighted by the workload's fast-tier hit ratio.
func (c *CFITracker) Observe(workload int, alloc, fthr float64) {
	c.x[workload] += alloc * fthr
}

// Cumulative returns a copy of the efficiency-adjusted allocations X_i.
func (c *CFITracker) Cumulative() []float64 {
	return append([]float64(nil), c.x...)
}

// Index returns the current CFI value.
func (c *CFITracker) Index() float64 { return JainIndex(c.x) }

// CombineCFI computes Jain's index over the concatenation of several
// per-host cumulative-allocation vectors (each a CFITracker.Cumulative
// result). This is the cross-host aggregation of Eq. 4: fleet fairness
// is judged across every workload on every host at once, so a scheduler
// cannot look fair by balancing each box internally while starving one
// host's tenants relative to another's. Empty groups contribute
// nothing; an entirely empty input returns 0.
func CombineCFI(groups ...[]float64) float64 {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	if n == 0 {
		return 0
	}
	all := make([]float64, 0, n)
	for _, g := range groups {
		all = append(all, g...)
	}
	return JainIndex(all)
}
