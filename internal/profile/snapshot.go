package profile

import (
	"fmt"
	"sort"

	"vulcan/internal/checkpoint"
	"vulcan/internal/pagetable"
)

// SnapshotProfiler appends p's durable state, tagged with the profiler
// name so RestoreProfiler can verify the constructed profiler matches.
// The Faulty decorator gets its own tag ("faulty") ahead of the inner
// profiler's, because Faulty.Name() deliberately reports the inner name.
func SnapshotProfiler(e *checkpoint.Encoder, p Profiler) {
	if f, ok := p.(*Faulty); ok {
		e.String("faulty")
		f.snapshotSelf(e)
		SnapshotProfiler(e, f.inner)
		return
	}
	s, ok := p.(checkpoint.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("profile: profiler %q is not snapshottable", p.Name()))
	}
	e.String(p.Name())
	s.Snapshot(e)
}

// RestoreProfiler reads state written by SnapshotProfiler back into p,
// a freshly-constructed profiler. The fault decoration may differ
// between writer and reader (a clean warm-up resumed under fault
// injection, or vice versa): wrapper state that has no destination is
// discarded, and a fresh wrapper keeps its construction-time state.
func RestoreProfiler(d *checkpoint.Decoder, p Profiler) error {
	tag := d.String()
	if d.Err() != nil {
		return d.Err()
	}
	return restoreTagged(tag, d, p)
}

func restoreTagged(tag string, d *checkpoint.Decoder, p Profiler) error {
	if tag == "faulty" {
		if f, ok := p.(*Faulty); ok {
			if err := f.restoreSelf(d); err != nil {
				return err
			}
			return RestoreProfiler(d, f.inner)
		}
		// Checkpoint was fault-wrapped, target is not: skip the wrapper
		// fields and restore the inner profiler directly.
		discardFaultyState(d)
		if d.Err() != nil {
			return d.Err()
		}
		return RestoreProfiler(d, p)
	}
	if f, ok := p.(*Faulty); ok {
		// Target is fault-wrapped, checkpoint was not: the fresh wrapper
		// keeps its construction-time state (epoch 0, confidence 1).
		return restoreTagged(tag, d, f.inner)
	}
	if tag != p.Name() {
		return fmt.Errorf("profile: checkpoint holds a %q profiler, restoring into %q",
			tag, p.Name())
	}
	s, ok := p.(checkpoint.Snapshotter)
	if !ok {
		return fmt.Errorf("profile: profiler %q is not snapshottable", p.Name())
	}
	return s.Restore(d)
}

// snapshotSelf appends the wrapper's own durable fields (the inner tag
// and state follow, written by SnapshotProfiler).
func (f *Faulty) snapshotSelf(e *checkpoint.Encoder) {
	e.U64(f.epoch)
	e.F64(f.confidence)
	e.Bool(f.overflowed)
	e.U64(f.dropped)
}

// restoreSelf restores the wrapper fields and re-opens the fault
// stream at the restored epoch: ProfileFaults derives every draw from
// pure hashes of (epoch, sample index), so BeginEpoch fully
// re-synchronizes it.
func (f *Faulty) restoreSelf(d *checkpoint.Decoder) error {
	f.epoch = d.U64()
	f.confidence = d.F64()
	f.overflowed = d.Bool()
	f.dropped = d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	f.faults.BeginEpoch(f.epoch)
	return nil
}

func discardFaultyState(d *checkpoint.Decoder) {
	_ = d.U64()
	_ = d.F64()
	_ = d.Bool()
	_ = d.U64()
}

// Snapshot appends the heat map's tracked pages in ascending page order.
func (h *heatMap) Snapshot(e *checkpoint.Encoder) {
	pages := make([]pagetable.VPage, 0, len(h.m))
	for vp := range h.m {
		pages = append(pages, vp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	e.Int(len(pages))
	for _, vp := range pages {
		s := h.m[vp]
		e.U64(uint64(vp))
		e.F64(s.heat)
		e.F64(s.reads)
		e.F64(s.writes)
	}
}

// Restore reads the heat map back in place.
func (h *heatMap) Restore(d *checkpoint.Decoder) error {
	n := d.Length(32)
	if d.Err() != nil {
		return d.Err()
	}
	h.m = make(map[pagetable.VPage]heatStat, n)
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		s := heatStat{heat: d.F64(), reads: d.F64(), writes: d.F64()}
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := h.m[vp]; dup {
			return fmt.Errorf("profile: duplicate heat entry for page %d", vp)
		}
		h.m[vp] = s
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (p *PEBS) Snapshot(e *checkpoint.Encoder) {
	p.rng.Snapshot(e)
	e.U64(p.samples)
	p.heat.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (p *PEBS) Restore(d *checkpoint.Decoder) error {
	if err := p.rng.Restore(d); err != nil {
		return err
	}
	p.samples = d.U64()
	return p.heat.Restore(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (h *Hybrid) Snapshot(e *checkpoint.Encoder) {
	h.rng.Snapshot(e)
	e.U64(h.samples)
	h.heat.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (h *Hybrid) Restore(d *checkpoint.Decoder) error {
	if err := h.rng.Restore(d); err != nil {
		return err
	}
	h.samples = d.U64()
	return h.heat.Restore(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (s *Scan) Snapshot(e *checkpoint.Encoder) { s.heat.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (s *Scan) Restore(d *checkpoint.Decoder) error { return s.heat.Restore(d) }

// Snapshot implements checkpoint.Snapshotter.
func (c *Chrono) Snapshot(e *checkpoint.Encoder) {
	c.heat.Snapshot(e)
	pages := make([]pagetable.VPage, 0, len(c.idleEpochs))
	for vp := range c.idleEpochs {
		pages = append(pages, vp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	e.Int(len(pages))
	for _, vp := range pages {
		e.U64(uint64(vp))
		e.Int(c.idleEpochs[vp])
	}
}

// Restore implements checkpoint.Snapshotter.
func (c *Chrono) Restore(d *checkpoint.Decoder) error {
	if err := c.heat.Restore(d); err != nil {
		return err
	}
	n := d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	c.idleEpochs = make(map[pagetable.VPage]int, n)
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		idle := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := c.idleEpochs[vp]; dup {
			return fmt.Errorf("profile: duplicate idle entry for page %d", vp)
		}
		c.idleEpochs[vp] = idle
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (s *RegionScan) Snapshot(e *checkpoint.Encoder) {
	s.heat.Snapshot(e)
	regions := make([]uint64, 0, len(s.backoff))
	for r := range s.backoff {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	e.Int(len(regions))
	for _, r := range regions {
		e.U64(r)
		e.U8(s.backoff[r])
	}
	regions = regions[:0]
	for r := range s.skipUntil {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	e.Int(len(regions))
	for _, r := range regions {
		e.U64(r)
		e.Int(s.skipUntil[r])
	}
	e.Int(s.epoch)
}

// Restore implements checkpoint.Snapshotter.
func (s *RegionScan) Restore(d *checkpoint.Decoder) error {
	if err := s.heat.Restore(d); err != nil {
		return err
	}
	n := d.Length(9)
	if d.Err() != nil {
		return d.Err()
	}
	s.backoff = make(map[uint64]uint8, n)
	for i := 0; i < n; i++ {
		r := d.U64()
		b := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		s.backoff[r] = b
	}
	n = d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	s.skipUntil = make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		r := d.U64()
		until := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		s.skipUntil[r] = until
	}
	s.epoch = d.Int()
	return d.Err()
}

// Snapshot implements checkpoint.Snapshotter.
func (h *HintFault) Snapshot(e *checkpoint.Encoder) {
	h.heat.Snapshot(e)
	pages := make([]pagetable.VPage, 0, len(h.poisoned))
	for vp := range h.poisoned {
		pages = append(pages, vp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	e.Int(len(pages))
	for _, vp := range pages {
		e.U64(uint64(vp))
	}
	e.U64(uint64(h.cursor))
	e.Int(h.faultsThisEpoch)
}

// Restore implements checkpoint.Snapshotter.
func (h *HintFault) Restore(d *checkpoint.Decoder) error {
	if err := h.heat.Restore(d); err != nil {
		return err
	}
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	h.poisoned = make(map[pagetable.VPage]struct{}, n)
	for i := 0; i < n; i++ {
		h.poisoned[pagetable.VPage(d.U64())] = struct{}{}
	}
	h.cursor = pagetable.VPage(d.U64())
	h.faultsThisEpoch = d.Int()
	return d.Err()
}
