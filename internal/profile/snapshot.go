package profile

import (
	"fmt"

	"vulcan/internal/checkpoint"
	"vulcan/internal/pagetable"
)

// SnapshotVersion is the wire version SnapshotProfiler writes (the
// "app.N.profiler" checkpoint section version). Version 1 encoded the
// old map-layout stores (flat sorted entry lists everywhere); version 2
// encodes the dense stores, most notably run-length heat entries.
// RestoreProfiler accepts both, so checkpoint containers written before
// the dense-store rewrite still restore.
const SnapshotVersion = 2

// LegacySnapshotVersion is the last map-layout wire version.
const LegacySnapshotVersion = 1

// SnapshotProfiler appends p's durable state, tagged with the profiler
// name so RestoreProfiler can verify the constructed profiler matches.
// The Faulty decorator gets its own tag ("faulty") ahead of the inner
// profiler's, because Faulty.Name() deliberately reports the inner name.
func SnapshotProfiler(e *checkpoint.Encoder, p Profiler) {
	if f, ok := p.(*Faulty); ok {
		e.String("faulty")
		f.snapshotSelf(e)
		SnapshotProfiler(e, f.inner)
		return
	}
	s, ok := p.(checkpoint.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("profile: profiler %q is not snapshottable", p.Name()))
	}
	e.String(p.Name())
	s.Snapshot(e)
}

// RestoreProfiler reads state written by SnapshotProfiler back into p,
// a freshly-constructed profiler. version selects the wire layout: the
// section version recorded in the checkpoint container, either
// SnapshotVersion or LegacySnapshotVersion. The fault decoration may
// differ between writer and reader (a clean warm-up resumed under fault
// injection, or vice versa): wrapper state that has no destination is
// discarded, and a fresh wrapper keeps its construction-time state.
func RestoreProfiler(d *checkpoint.Decoder, p Profiler, version uint32) error {
	if version != SnapshotVersion && version != LegacySnapshotVersion {
		return fmt.Errorf("profile: unsupported profiler snapshot version %d", version)
	}
	tag := d.String()
	if d.Err() != nil {
		return d.Err()
	}
	return restoreTagged(tag, d, p, version)
}

// legacyRestorer is implemented by profilers that can decode the
// version-1 (map-layout) wire format.
type legacyRestorer interface {
	restoreLegacy(d *checkpoint.Decoder) error
}

func restoreTagged(tag string, d *checkpoint.Decoder, p Profiler, version uint32) error {
	if tag == "faulty" {
		if f, ok := p.(*Faulty); ok {
			if err := f.restoreSelf(d); err != nil {
				return err
			}
			return RestoreProfiler(d, f.inner, version)
		}
		// Checkpoint was fault-wrapped, target is not: skip the wrapper
		// fields and restore the inner profiler directly.
		discardFaultyState(d)
		if d.Err() != nil {
			return d.Err()
		}
		return RestoreProfiler(d, p, version)
	}
	if f, ok := p.(*Faulty); ok {
		// Target is fault-wrapped, checkpoint was not: the fresh wrapper
		// keeps its construction-time state (epoch 0, confidence 1).
		return restoreTagged(tag, d, f.inner, version)
	}
	if tag != p.Name() {
		return fmt.Errorf("profile: checkpoint holds a %q profiler, restoring into %q",
			tag, p.Name())
	}
	if version == LegacySnapshotVersion {
		lr, ok := p.(legacyRestorer)
		if !ok {
			return fmt.Errorf("profile: profiler %q cannot restore legacy snapshots", p.Name())
		}
		return lr.restoreLegacy(d)
	}
	s, ok := p.(checkpoint.Snapshotter)
	if !ok {
		return fmt.Errorf("profile: profiler %q is not snapshottable", p.Name())
	}
	return s.Restore(d)
}

// snapshotSelf appends the wrapper's own durable fields (the inner tag
// and state follow, written by SnapshotProfiler).
func (f *Faulty) snapshotSelf(e *checkpoint.Encoder) {
	e.U64(f.epoch)
	e.F64(f.confidence)
	e.Bool(f.overflowed)
	e.U64(f.dropped)
}

// restoreSelf restores the wrapper fields and re-opens the fault
// stream at the restored epoch: ProfileFaults derives every draw from
// pure hashes of (epoch, sample index), so BeginEpoch fully
// re-synchronizes it.
func (f *Faulty) restoreSelf(d *checkpoint.Decoder) error {
	f.epoch = d.U64()
	f.confidence = d.F64()
	f.overflowed = d.Bool()
	f.dropped = d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	f.faults.BeginEpoch(f.epoch)
	return nil
}

func discardFaultyState(d *checkpoint.Decoder) {
	_ = d.U64()
	_ = d.F64()
	_ = d.Bool()
	_ = d.U64()
}

// Snapshot appends the heat store's tracked pages as runs of
// consecutive page numbers: total entry count, run count, then per run
// the start page, length, and length×(heat, reads, writes). Dense
// working sets compress to a handful of run headers, and restore can
// validate monotonicity structurally.
func (h *heatStore) Snapshot(e *checkpoint.Encoder) {
	runs := 0
	prev := pagetable.VPage(0)
	first := true
	h.forEachLive(func(vp pagetable.VPage, _, _, _ float64) {
		if first || vp != prev+1 {
			runs++
		}
		first = false
		prev = vp
	})
	// trackedPages is exactly the live-entry count forEachLive visits.
	e.Int(h.trackedPages)
	e.Int(runs)

	// Second pass emits the runs; the store is immutable between the
	// passes, so the counts always agree. A run's length is known only at
	// its end, so each run's stats are buffered until the next boundary.
	started := false
	var runLen int
	var runStart pagetable.VPage
	prev = 0
	runStats := make([]float64, 0, 64)
	flush := func() {
		if !started {
			return
		}
		e.U64(uint64(runStart))
		e.Int(runLen)
		for _, v := range runStats {
			e.F64(v)
		}
	}
	h.forEachLive(func(vp pagetable.VPage, heat, reads, writes float64) {
		if !started || vp != prev+1 {
			flush()
			started = true
			runStart = vp
			runLen = 0
			runStats = runStats[:0]
		}
		runLen++
		runStats = append(runStats, heat, reads, writes)
		prev = vp
	})
	flush()
}

// forEachLive calls fn for every tracked page in ascending order.
func (h *heatStore) forEachLive(fn func(vp pagetable.VPage, heat, reads, writes float64)) {
	for hi, blk := range h.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			base := chunkBase(hi, ci)
			for i := range c.heat {
				if c.heat[i] == 0 {
					continue
				}
				fn(base|pagetable.VPage(i), c.heat[i], c.reads[i], c.writes[i])
			}
		}
	}
}

// Restore reads the run-length heat layout back in place.
func (h *heatStore) Restore(d *checkpoint.Decoder) error {
	entries := d.Length(24)
	runs := d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	h.l1 = nil
	h.trackedPages = 0
	total := 0
	prevEnd := pagetable.VPage(0)
	firstRun := true
	for r := 0; r < runs; r++ {
		start := pagetable.VPage(d.U64())
		n := d.Length(24)
		if d.Err() != nil {
			return d.Err()
		}
		if n == 0 {
			return fmt.Errorf("profile: empty heat run at page %d", start)
		}
		if !firstRun && start <= prevEnd {
			return fmt.Errorf("profile: heat run at page %d overlaps previous run", start)
		}
		if start > pagetable.MaxVPage || pagetable.VPage(uint64(start)+uint64(n)-1) > pagetable.MaxVPage {
			return fmt.Errorf("profile: heat run at page %d out of range", start)
		}
		firstRun = false
		for i := 0; i < n; i++ {
			vp := start + pagetable.VPage(i)
			heat := d.F64()
			reads := d.F64()
			writes := d.F64()
			if d.Err() != nil {
				return d.Err()
			}
			if heat == 0 {
				return fmt.Errorf("profile: zero-heat entry for page %d", vp)
			}
			if !h.setRaw(vp, heat, reads, writes) {
				return fmt.Errorf("profile: duplicate heat entry for page %d", vp)
			}
		}
		prevEnd = start + pagetable.VPage(n) - 1
		total += n
	}
	if total != entries {
		return fmt.Errorf("profile: heat runs hold %d entries, header says %d", total, entries)
	}
	return nil
}

// restoreLegacy reads the version-1 flat entry list (count, then
// ascending (page, heat, reads, writes) tuples).
func (h *heatStore) restoreLegacy(d *checkpoint.Decoder) error {
	n := d.Length(32)
	if d.Err() != nil {
		return d.Err()
	}
	h.l1 = nil
	h.trackedPages = 0
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		heat := d.F64()
		reads := d.F64()
		writes := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if vp > pagetable.MaxVPage {
			return fmt.Errorf("profile: heat entry page %d out of range", vp)
		}
		if heat == 0 {
			return fmt.Errorf("profile: zero-heat entry for page %d", vp)
		}
		if !h.setRaw(vp, heat, reads, writes) {
			return fmt.Errorf("profile: duplicate heat entry for page %d", vp)
		}
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (p *PEBS) Snapshot(e *checkpoint.Encoder) {
	p.rng.Snapshot(e)
	e.U64(p.samples)
	p.heat.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (p *PEBS) Restore(d *checkpoint.Decoder) error {
	if err := p.rng.Restore(d); err != nil {
		return err
	}
	p.samples = d.U64()
	return p.heat.Restore(d)
}

func (p *PEBS) restoreLegacy(d *checkpoint.Decoder) error {
	if err := p.rng.Restore(d); err != nil {
		return err
	}
	p.samples = d.U64()
	return p.heat.restoreLegacy(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (h *Hybrid) Snapshot(e *checkpoint.Encoder) {
	h.rng.Snapshot(e)
	e.U64(h.samples)
	h.heat.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (h *Hybrid) Restore(d *checkpoint.Decoder) error {
	if err := h.rng.Restore(d); err != nil {
		return err
	}
	h.samples = d.U64()
	return h.heat.Restore(d)
}

func (h *Hybrid) restoreLegacy(d *checkpoint.Decoder) error {
	if err := h.rng.Restore(d); err != nil {
		return err
	}
	h.samples = d.U64()
	return h.heat.restoreLegacy(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (s *Scan) Snapshot(e *checkpoint.Encoder) { s.heat.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (s *Scan) Restore(d *checkpoint.Decoder) error { return s.heat.Restore(d) }

func (s *Scan) restoreLegacy(d *checkpoint.Decoder) error { return s.heat.restoreLegacy(d) }

// Snapshot implements checkpoint.Snapshotter. The idle list keeps the
// version-1 shape (count, ascending (page, idle) entries); only the
// heat layout changed in version 2.
func (c *Chrono) Snapshot(e *checkpoint.Encoder) {
	c.heat.Snapshot(e)
	e.Int(c.idle.live)
	c.idle.forEach(func(vp pagetable.VPage, idle int) {
		e.U64(uint64(vp))
		e.Int(idle)
	})
}

// Restore implements checkpoint.Snapshotter.
func (c *Chrono) Restore(d *checkpoint.Decoder) error {
	if err := c.heat.Restore(d); err != nil {
		return err
	}
	return c.restoreIdle(d)
}

func (c *Chrono) restoreLegacy(d *checkpoint.Decoder) error {
	if err := c.heat.restoreLegacy(d); err != nil {
		return err
	}
	return c.restoreIdle(d)
}

func (c *Chrono) restoreIdle(d *checkpoint.Decoder) error {
	n := d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	c.idle.reset()
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		idle := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if vp > pagetable.MaxVPage {
			return fmt.Errorf("profile: idle entry page %d out of range", vp)
		}
		if idle < 0 || idle > c.forgetAfter {
			return fmt.Errorf("profile: idle entry for page %d out of range: %d", vp, idle)
		}
		if c.idle.get(vp) != 0 {
			return fmt.Errorf("profile: duplicate idle entry for page %d", vp)
		}
		c.idle.set(vp, int32(idle)+1)
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter. Version 2 encodes one
// entry per region with any nonzero backoff state (level, skip
// deadline), ascending by region.
func (s *RegionScan) Snapshot(e *checkpoint.Encoder) {
	s.heat.Snapshot(e)
	count := 0
	s.regions.forEach(func(uint64, uint8, int) { count++ })
	e.Int(count)
	s.regions.forEach(func(region uint64, level uint8, skipUntil int) {
		e.U64(region)
		e.U8(level)
		e.Int(skipUntil)
	})
	e.Int(s.epoch)
}

// Restore implements checkpoint.Snapshotter.
func (s *RegionScan) Restore(d *checkpoint.Decoder) error {
	if err := s.heat.Restore(d); err != nil {
		return err
	}
	n := d.Length(17)
	if d.Err() != nil {
		return d.Err()
	}
	s.regions.reset()
	maxRegion := pagetable.LeafIndex(pagetable.MaxVPage)
	for i := 0; i < n; i++ {
		region := d.U64()
		level := d.U8()
		until := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if region > maxRegion {
			return fmt.Errorf("profile: backoff region %d out of range", region)
		}
		if level > s.maxBackoff {
			return fmt.Errorf("profile: backoff level %d exceeds max %d", level, s.maxBackoff)
		}
		s.regions.setBackoff(region, level, until)
	}
	s.epoch = d.Int()
	return d.Err()
}

// restoreLegacy reads the version-1 two-list layout (backoff entries,
// then skip-until entries; either may include zero values).
func (s *RegionScan) restoreLegacy(d *checkpoint.Decoder) error {
	if err := s.heat.restoreLegacy(d); err != nil {
		return err
	}
	s.regions.reset()
	maxRegion := pagetable.LeafIndex(pagetable.MaxVPage)
	n := d.Length(9)
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		region := d.U64()
		level := d.U8()
		if d.Err() != nil {
			return d.Err()
		}
		if region > maxRegion {
			return fmt.Errorf("profile: backoff region %d out of range", region)
		}
		if level > s.maxBackoff {
			return fmt.Errorf("profile: backoff level %d exceeds max %d", level, s.maxBackoff)
		}
		if level != 0 {
			c := s.regions.ensureChunk(region)
			c.backoff[int(region)&chunkMask] = level
		}
	}
	n = d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	for i := 0; i < n; i++ {
		region := d.U64()
		until := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if region > maxRegion {
			return fmt.Errorf("profile: backoff region %d out of range", region)
		}
		if until != 0 {
			c := s.regions.ensureChunk(region)
			c.skip[int(region)&chunkMask] = int32(until)
		}
	}
	s.epoch = d.Int()
	return d.Err()
}

// Snapshot implements checkpoint.Snapshotter. The poison list keeps the
// version-1 shape (count, ascending pages); only the heat layout
// changed in version 2.
func (h *HintFault) Snapshot(e *checkpoint.Encoder) {
	h.heat.Snapshot(e)
	e.Int(h.poisoned.count)
	h.poisoned.forEach(func(vp pagetable.VPage) {
		e.U64(uint64(vp))
	})
	e.U64(uint64(h.cursor))
	e.Int(h.faultsThisEpoch)
}

// Restore implements checkpoint.Snapshotter.
func (h *HintFault) Restore(d *checkpoint.Decoder) error {
	if err := h.heat.Restore(d); err != nil {
		return err
	}
	return h.restorePoison(d)
}

func (h *HintFault) restoreLegacy(d *checkpoint.Decoder) error {
	if err := h.heat.restoreLegacy(d); err != nil {
		return err
	}
	return h.restorePoison(d)
}

func (h *HintFault) restorePoison(d *checkpoint.Decoder) error {
	n := d.Length(8)
	if d.Err() != nil {
		return d.Err()
	}
	h.poisoned = pageBitmap{}
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		if d.Err() != nil {
			return d.Err()
		}
		if vp > pagetable.MaxVPage {
			return fmt.Errorf("profile: poisoned page %d out of range", vp)
		}
		if !h.poisoned.set(vp) {
			return fmt.Errorf("profile: duplicate poisoned page %d", vp)
		}
	}
	h.cursor = pagetable.VPage(d.U64())
	h.faultsThisEpoch = d.Int()
	return d.Err()
}
