package profile

import (
	"math"
	"math/bits"

	"vulcan/internal/pagetable"
)

// This file implements the dense struct-of-arrays page stores that back
// every profiler's hot path. The previous implementation kept per-page
// state in Go maps (map[VPage]heatStat and siblings); map access cost
// and per-epoch randomized walks with re-insertion dominated the figure
// benchmarks' cycle and allocation profiles. The stores here are paged
// arrays indexed directly by virtual page number:
//
//   - pages are grouped into chunks of 4096 (chunkPages); each chunk
//     holds the per-page fields as separate parallel arrays, so epoch
//     sweeps (decay, evict-below compaction, snapshot collection) are
//     branch-light linear passes over contiguous memory;
//   - chunks hang off a two-level directory (512 chunk pointers per
//     block), so the full 2^36-page virtual space is addressable without
//     reserving memory for unused regions;
//   - steady-state operation allocates nothing: chunks are allocated
//     once when a page region is first touched and then reused forever.
//
// Liveness is encoded in the heat field itself: every record weight is
// positive and decay eviction zeroes all fields, so heat != 0 is exactly
// "this page is tracked". Restore validates that invariant on input.
const (
	chunkShift = 12
	chunkPages = 1 << chunkShift // pages per chunk
	chunkMask  = chunkPages - 1
	dirShift   = 9
	dirSize    = 1 << dirShift // chunks per directory block
	dirMask    = dirSize - 1
)

// chunkBase returns the first VPage covered by chunk (hi, ci).
func chunkBase(hi, ci int) pagetable.VPage {
	return pagetable.VPage(hi)<<(chunkShift+dirShift) | pagetable.VPage(ci)<<chunkShift
}

// heatChunk holds one 4096-page region's profiled state as parallel
// arrays (struct-of-arrays): the decay sweep streams through heat[]
// first and only touches reads[]/writes[] for live entries.
type heatChunk struct {
	heat   [chunkPages]float64
	reads  [chunkPages]float64
	writes [chunkPages]float64
	live   int
	// maxHeat upper-bounds every live cell's heat (exact after an epoch
	// sweep, conservative between sweeps). When one more decay would
	// push even the maximum below the eviction floor, the whole chunk is
	// wiped with a clear instead of a per-cell sweep — multiplication by
	// a positive decay is monotone, so every cell is guaranteed to evict.
	maxHeat float64
}

// heatStore is the shared heat bookkeeping used by every profiler.
type heatStore struct {
	l1    []*[dirSize]*heatChunk
	decay float64
	// trackedPages counts live entries across all chunks.
	trackedPages int
	// snapScratch backs snapshot(); the returned slice is valid only
	// until the next snapshot() call.
	snapScratch []PageHeat  //vulcan:nosnap scratch, rebuilt by endEpoch or snapshot()
	snapSort    []PageHeat  //vulcan:nosnap radix-sort spare buffer, swapped with snapScratch
	sortBufs    sortScratch //vulcan:nosnap radix-sort key buffers, dead between calls
	// snapValid marks snapScratch as holding every tracked page's current
	// stats (collected for free during endEpoch's decay sweep);
	// snapSorted additionally marks it hottest-first. Any mutation clears
	// both, forcing snapshot() back to a full sweep. snapWanted records
	// that snapshot() has been consumed at least once, so stores that are
	// only ever queried pointwise skip the collection work entirely.
	snapValid  bool //vulcan:nosnap cache flag over scratch state
	snapSorted bool //vulcan:nosnap cache flag over scratch state
	snapWanted bool //vulcan:nosnap set on first snapshot() call
}

func newHeatStore(decay float64) *heatStore {
	if decay <= 0 || decay >= 1 {
		panic("profile: decay must be in (0,1)")
	}
	return &heatStore{decay: decay}
}

// chunkAt returns the chunk covering vp, or nil when the region was
// never touched.
//
//vulcan:hotpath
func (h *heatStore) chunkAt(vp pagetable.VPage) *heatChunk {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(h.l1)) {
		return nil
	}
	blk := h.l1[hi]
	if blk == nil {
		return nil
	}
	return blk[uint64(vp)>>chunkShift&dirMask]
}

// ensureChunk returns the chunk covering vp, allocating the directory
// path on first touch of the region.
func (h *heatStore) ensureChunk(vp pagetable.VPage) *heatChunk {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(h.l1)) {
		grown := make([]*[dirSize]*heatChunk, hi+1) //vulcan:allowalloc directory growth, once per 2M-page region
		copy(grown, h.l1)
		h.l1 = grown
	}
	blk := h.l1[hi]
	if blk == nil {
		blk = new([dirSize]*heatChunk) //vulcan:allowalloc directory block, once per 2M-page region
		h.l1[hi] = blk
	}
	ci := uint64(vp) >> chunkShift & dirMask
	c := blk[ci]
	if c == nil {
		c = new(heatChunk) //vulcan:allowalloc chunk allocation, once per 4096-page region
		blk[ci] = c
	}
	return c
}

// record credits one observation. Weights are always positive, so a
// zero heat cell is exactly an untracked page.
//
//vulcan:hotpath
func (h *heatStore) record(vp pagetable.VPage, write bool, weight float64) {
	h.snapValid = false
	h.snapSorted = false
	c := h.ensureChunk(vp)
	i := int(vp) & chunkMask
	if c.heat[i] == 0 {
		c.live++
		h.trackedPages++
	}
	v := c.heat[i] + weight
	c.heat[i] = v
	if v > c.maxHeat {
		c.maxHeat = v
	}
	if write {
		c.writes[i] += weight
	} else {
		c.reads[i] += weight
	}
}

// endEpoch ages every tracked page and evicts entries whose heat decayed
// to noise — one linear sweep per live chunk instead of a map walk. When
// this store's snapshot is consumed (snapWanted), the sweep also collects
// the surviving entries into snapScratch, so the following snapshot()
// call skips its own full sweep and only has to sort.
//
//vulcan:hotpath
func (h *heatStore) endEpoch() {
	collect := h.snapWanted
	var out []PageHeat
	if collect {
		if cap(h.snapScratch) < h.trackedPages {
			h.snapScratch = make([]PageHeat, 0, 1<<bits.Len(uint(h.trackedPages-1))) //vulcan:allowalloc grow-once scratch, amortized across epochs
		}
		out = h.snapScratch[:0]
	}
	for hi, blk := range h.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			if c.maxHeat*h.decay < evictBelow {
				// Every live cell is at or below maxHeat, so one more decay
				// evicts them all: wipe the chunk wholesale.
				h.trackedPages -= c.live
				c.live = 0
				c.maxHeat = 0
				clear(c.heat[:])
				clear(c.reads[:])
				clear(c.writes[:])
				continue
			}
			base := chunkBase(hi, ci)
			newMax := 0.0
			for i := range c.heat {
				v := c.heat[i]
				if v == 0 {
					continue
				}
				v *= h.decay
				if v < evictBelow {
					c.heat[i] = 0
					c.reads[i] = 0
					c.writes[i] = 0
					c.live--
					h.trackedPages--
				} else {
					c.heat[i] = v
					if v > newMax {
						newMax = v
					}
					r := c.reads[i] * h.decay
					w := c.writes[i] * h.decay
					c.reads[i] = r
					c.writes[i] = w
					if collect {
						total := r + w
						wf := 0.0
						if total > 0 {
							wf = w / total
						}
						out = append(out, PageHeat{VP: base | pagetable.VPage(i), Heat: v, WriteFrac: wf}) //vulcan:allowalloc appends into grow-once snapScratch, amortized across epochs
					}
				}
			}
			c.maxHeat = newMax
		}
	}
	if collect {
		h.snapScratch = out
		h.snapValid = true
		h.snapSorted = false
	} else {
		h.snapValid = false
		h.snapSorted = false
	}
}

//vulcan:hotpath
func (h *heatStore) heat(vp pagetable.VPage) float64 {
	c := h.chunkAt(vp)
	if c == nil {
		return 0
	}
	return c.heat[int(vp)&chunkMask]
}

//vulcan:hotpath
func (h *heatStore) writeFraction(vp pagetable.VPage) float64 {
	c := h.chunkAt(vp)
	if c == nil {
		return 0
	}
	i := int(vp) & chunkMask
	total := c.reads[i] + c.writes[i]
	if total == 0 {
		return 0
	}
	return c.writes[i] / total
}

// snapshot returns all tracked pages hottest-first (ties broken by
// ascending page number). The slice is scratch owned by the store: it
// is valid only until the store is next mutated and must not be
// retained or modified by the caller. When the preceding endEpoch
// already collected the entries (and nothing mutated the store since),
// only the sort runs here; repeated calls within one epoch return the
// cached sorted slice directly.
func (h *heatStore) snapshot() []PageHeat {
	h.snapWanted = true
	if !h.snapValid {
		if cap(h.snapScratch) < h.trackedPages {
			// Jump straight to a power-of-two above the live-page count: one
			// high-water allocation instead of O(log n) append regrowths.
			h.snapScratch = make([]PageHeat, 0, 1<<bits.Len(uint(h.trackedPages-1))) //vulcan:allowalloc grow-once scratch, amortized across epochs
		}
		out := h.snapScratch[:0]
		for hi, blk := range h.l1 {
			if blk == nil {
				continue
			}
			for ci, c := range blk {
				if c == nil || c.live == 0 {
					continue
				}
				base := chunkBase(hi, ci)
				for i := range c.heat {
					v := c.heat[i]
					if v == 0 {
						continue
					}
					total := c.reads[i] + c.writes[i]
					wf := 0.0
					if total > 0 {
						wf = c.writes[i] / total
					}
					out = append(out, PageHeat{VP: base | pagetable.VPage(i), Heat: v, WriteFrac: wf})
				}
			}
		}
		h.snapScratch = out
		h.snapValid = true
		h.snapSorted = false
	}
	if !h.snapSorted {
		sorted, spare := sortHeatDesc(h.snapScratch, h.snapSort, &h.sortBufs)
		h.snapScratch = sorted
		h.snapSort = spare
		h.snapSorted = true
	}
	return h.snapScratch
}

// pages returns all tracked pages without ordering them: the cached
// collection as-is when valid (ascending page order after an endEpoch
// collection, hottest-first if a snapshot() sort already ran), else a
// fresh ascending sweep. Consumers must therefore be order-independent.
func (h *heatStore) pages() []PageHeat {
	h.snapWanted = true
	if h.snapValid {
		return h.snapScratch
	}
	if cap(h.snapScratch) < h.trackedPages {
		h.snapScratch = make([]PageHeat, 0, 1<<bits.Len(uint(h.trackedPages-1))) //vulcan:allowalloc grow-once scratch, amortized across epochs
	}
	out := h.snapScratch[:0]
	for hi, blk := range h.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			base := chunkBase(hi, ci)
			for i := range c.heat {
				v := c.heat[i]
				if v == 0 {
					continue
				}
				total := c.reads[i] + c.writes[i]
				wf := 0.0
				if total > 0 {
					wf = c.writes[i] / total
				}
				out = append(out, PageHeat{VP: base | pagetable.VPage(i), Heat: v, WriteFrac: wf})
			}
		}
	}
	h.snapScratch = out
	h.snapValid = true
	h.snapSorted = false
	return out
}

func (h *heatStore) tracked() int { return h.trackedPages }

// reset drops all state (used by Restore before loading entries).
func (h *heatStore) reset() {
	h.l1 = nil
	h.trackedPages = 0
	h.snapValid = false
	h.snapSorted = false
}

// setRaw installs restored per-page stats verbatim. heat must be
// nonzero (the caller validates); the cell must currently be empty.
func (h *heatStore) setRaw(vp pagetable.VPage, heat, reads, writes float64) bool {
	h.snapValid = false
	h.snapSorted = false
	c := h.ensureChunk(vp)
	i := int(vp) & chunkMask
	if c.heat[i] != 0 {
		return false // duplicate entry
	}
	c.heat[i] = heat
	c.reads[i] = reads
	c.writes[i] = writes
	if heat > c.maxHeat {
		c.maxHeat = heat
	}
	c.live++
	h.trackedPages++
	return true
}

// pageBitmap is a paged bitmap over virtual page numbers (HintFault's
// poison window). Same two-level directory shape as heatStore.
type bitmapChunk [chunkPages / 64]uint64

type pageBitmap struct {
	l1    []*[dirSize]*bitmapChunk
	count int
}

//vulcan:hotpath
func (b *pageBitmap) test(vp pagetable.VPage) bool {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(b.l1)) {
		return false
	}
	blk := b.l1[hi]
	if blk == nil {
		return false
	}
	c := blk[uint64(vp)>>chunkShift&dirMask]
	if c == nil {
		return false
	}
	i := int(vp) & chunkMask
	return c[i>>6]&(1<<(uint(i)&63)) != 0
}

// set marks vp; reports whether it was newly set.
func (b *pageBitmap) set(vp pagetable.VPage) bool {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(b.l1)) {
		grown := make([]*[dirSize]*bitmapChunk, hi+1) //vulcan:allowalloc directory growth, once per 2M-page region
		copy(grown, b.l1)
		b.l1 = grown
	}
	blk := b.l1[hi]
	if blk == nil {
		blk = new([dirSize]*bitmapChunk) //vulcan:allowalloc directory block, once per 2M-page region
		b.l1[hi] = blk
	}
	ci := uint64(vp) >> chunkShift & dirMask
	c := blk[ci]
	if c == nil {
		c = new(bitmapChunk) //vulcan:allowalloc chunk allocation, once per 4096-page region
		blk[ci] = c
	}
	i := int(vp) & chunkMask
	mask := uint64(1) << (uint(i) & 63)
	if c[i>>6]&mask != 0 {
		return false
	}
	c[i>>6] |= mask
	b.count++
	return true
}

// clearBit unmarks vp; reports whether it was set.
//
//vulcan:hotpath
func (b *pageBitmap) clearBit(vp pagetable.VPage) bool {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(b.l1)) {
		return false
	}
	blk := b.l1[hi]
	if blk == nil {
		return false
	}
	c := blk[uint64(vp)>>chunkShift&dirMask]
	if c == nil {
		return false
	}
	i := int(vp) & chunkMask
	mask := uint64(1) << (uint(i) & 63)
	if c[i>>6]&mask == 0 {
		return false
	}
	c[i>>6] &^= mask
	b.count--
	return true
}

// clearAll unmarks every page, keeping allocated chunks for reuse.
//
//vulcan:hotpath
func (b *pageBitmap) clearAll() {
	for _, blk := range b.l1 {
		if blk == nil {
			continue
		}
		for _, c := range blk {
			if c == nil {
				continue
			}
			clear(c[:])
		}
	}
	b.count = 0
}

// forEach calls fn for every set page in ascending order.
func (b *pageBitmap) forEach(fn func(vp pagetable.VPage)) {
	for hi, blk := range b.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil {
				continue
			}
			base := chunkBase(hi, ci)
			for w, word := range c {
				for word != 0 {
					i := w<<6 | bits.TrailingZeros64(word)
					fn(base | pagetable.VPage(i))
					word &= word - 1
				}
			}
		}
	}
}

// idleStore tracks Chrono's per-page consecutive idle-epoch counters.
// Cells store idle+1 so the zero value means "unknown page" and fresh
// chunks need no sentinel initialization.
type idleChunk struct {
	v    [chunkPages]int32
	live int
}

type idleStore struct {
	l1   []*[dirSize]*idleChunk
	live int
}

// get returns the stored idle+1 value (0 = unknown).
func (s *idleStore) get(vp pagetable.VPage) int32 {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(s.l1)) {
		return 0
	}
	blk := s.l1[hi]
	if blk == nil {
		return 0
	}
	c := blk[uint64(vp)>>chunkShift&dirMask]
	if c == nil {
		return 0
	}
	return c.v[int(vp)&chunkMask]
}

// set stores idle+1 for vp (v must be > 0).
func (s *idleStore) set(vp pagetable.VPage, v int32) {
	hi := uint64(vp) >> (chunkShift + dirShift)
	if hi >= uint64(len(s.l1)) {
		grown := make([]*[dirSize]*idleChunk, hi+1) //vulcan:allowalloc directory growth, once per 2M-page region
		copy(grown, s.l1)
		s.l1 = grown
	}
	blk := s.l1[hi]
	if blk == nil {
		blk = new([dirSize]*idleChunk) //vulcan:allowalloc directory block, once per 2M-page region
		s.l1[hi] = blk
	}
	ci := uint64(vp) >> chunkShift & dirMask
	c := blk[ci]
	if c == nil {
		c = new(idleChunk) //vulcan:allowalloc chunk allocation, once per 4096-page region
		blk[ci] = c
	}
	i := int(vp) & chunkMask
	if c.v[i] == 0 {
		c.live++
		s.live++
	}
	c.v[i] = v
}

// age adds one idle epoch to every known page, forgetting pages idle
// longer than forgetAfter — a linear sweep over live chunks.
//
//vulcan:hotpath
func (s *idleStore) age(forgetAfter int) {
	limit := int32(forgetAfter) + 1
	for _, blk := range s.l1 {
		if blk == nil {
			continue
		}
		for _, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			for i := range c.v {
				v := c.v[i]
				if v == 0 {
					continue
				}
				v++
				if v > limit {
					c.v[i] = 0
					c.live--
					s.live--
				} else {
					c.v[i] = v
				}
			}
		}
	}
}

// forEach calls fn(vp, idle) for every known page in ascending order.
func (s *idleStore) forEach(fn func(vp pagetable.VPage, idle int)) {
	for hi, blk := range s.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil || c.live == 0 {
				continue
			}
			base := chunkBase(hi, ci)
			for i, v := range c.v {
				if v == 0 {
					continue
				}
				fn(base|pagetable.VPage(i), int(v)-1)
			}
		}
	}
}

// reset drops all state.
func (s *idleStore) reset() {
	s.l1 = nil
	s.live = 0
}

// regionStore holds RegionScan's per-2MiB-region backoff state as
// parallel dense arrays indexed by region number (LeafIndex). The zero
// values match the previous map implementation's defaults, so lookups
// of never-seen regions behave identically.
type regionChunk struct {
	backoff [chunkPages]uint8
	skip    [chunkPages]int32
}

type regionStore struct {
	l1 []*[dirSize]*regionChunk
}

func (s *regionStore) chunkAt(region uint64) *regionChunk {
	hi := region >> (chunkShift + dirShift)
	if hi >= uint64(len(s.l1)) {
		return nil
	}
	blk := s.l1[hi]
	if blk == nil {
		return nil
	}
	return blk[region>>chunkShift&dirMask]
}

func (s *regionStore) ensureChunk(region uint64) *regionChunk {
	hi := region >> (chunkShift + dirShift)
	if hi >= uint64(len(s.l1)) {
		grown := make([]*[dirSize]*regionChunk, hi+1) //vulcan:allowalloc directory growth, once per region range
		copy(grown, s.l1)
		s.l1 = grown
	}
	blk := s.l1[hi]
	if blk == nil {
		blk = new([dirSize]*regionChunk) //vulcan:allowalloc directory block, once per region range
		s.l1[hi] = blk
	}
	ci := region >> chunkShift & dirMask
	c := blk[ci]
	if c == nil {
		c = new(regionChunk) //vulcan:allowalloc chunk allocation, once per 4096-region range
		blk[ci] = c
	}
	return c
}

//vulcan:hotpath
func (s *regionStore) backoffLevel(region uint64) uint8 {
	c := s.chunkAt(region)
	if c == nil {
		return 0
	}
	return c.backoff[int(region)&chunkMask]
}

//vulcan:hotpath
func (s *regionStore) skipUntil(region uint64) int {
	c := s.chunkAt(region)
	if c == nil {
		return 0
	}
	return int(c.skip[int(region)&chunkMask])
}

func (s *regionStore) setBackoff(region uint64, level uint8, skipUntil int) {
	c := s.ensureChunk(region)
	i := int(region) & chunkMask
	c.backoff[i] = level
	c.skip[i] = int32(skipUntil)
}

// forEach calls fn for every region with any nonzero state, ascending.
func (s *regionStore) forEach(fn func(region uint64, level uint8, skipUntil int)) {
	for hi, blk := range s.l1 {
		if blk == nil {
			continue
		}
		for ci, c := range blk {
			if c == nil {
				continue
			}
			base := uint64(hi)<<(chunkShift+dirShift) | uint64(ci)<<chunkShift
			for i := range c.backoff {
				if c.backoff[i] == 0 && c.skip[i] == 0 {
					continue
				}
				fn(base|uint64(i), c.backoff[i], int(c.skip[i]))
			}
		}
	}
}

// reset drops all state.
func (s *regionStore) reset() { s.l1 = nil }

// heatKey maps a heat value to a uint64 whose ascending order is the
// heat's descending order (monotone float-bits transform, safe for the
// full float64 range including negatives).
//
//vulcan:hotpath
func heatKey(f float64) uint64 {
	k := math.Float64bits(f)
	if k>>63 == 1 {
		k = ^k
	} else {
		k ^= 1 << 63
	}
	return ^k
}

// sortHeatDesc sorts a hottest-first with a stable LSD radix sort, using
// spare as the ping-pong buffer. Stability is the tie-break contract:
// callers emit entries in ascending page order, so equal-heat pages stay
// ascending — the same total order the previous comparison sort produced,
// at O(n) per pass instead of O(n log n) comparisons. Returns the sorted
// slice and the now-free spare buffer (the two may have swapped roles).
//
// sortScratch bundles the radix sort's reusable buffers. Each owner (one
// heatStore, one policy ranking) carries its own instance: lab workers
// run whole simulations in parallel, so package-level scratch would race.
type sortScratch struct {
	keys, keySpare []uint64 //vulcan:nosnap transient sort scratch, dead between calls
}

//vulcan:hotpath
func sortHeatDesc(a, spare []PageHeat, sc *sortScratch) (sorted, unused []PageHeat) {
	n := len(a)
	if n < 2 {
		return a, spare
	}
	if cap(spare) < n {
		// Power-of-two growth: a slowly creeping page count must not
		// reallocate these buffers every epoch.
		spare = make([]PageHeat, 1<<bits.Len(uint(n-1))) //vulcan:allowalloc grow-once spare buffer, reused across epochs
	}
	if cap(sc.keys) < n {
		c := 1 << bits.Len(uint(n-1))
		sc.keys = make([]uint64, c)     //vulcan:allowalloc grow-once key buffer, reused across calls
		sc.keySpare = make([]uint64, c) //vulcan:allowalloc grow-once key buffer, reused across calls
	}
	b := spare[:n]
	// Materialize each element's radix key once; the passes then stream
	// the key array instead of recomputing the float transform per pass.
	// The OR/AND fold finds the bytes that actually vary — a byte is
	// uniform exactly when its OR and AND agree, and a uniform byte's
	// pass would be an identity copy, so only varying bytes get a pass.
	ka, kb := sc.keys[:n], sc.keySpare[:n]
	orK, andK := uint64(0), ^uint64(0)
	for i := range a {
		k := heatKey(a[i].Heat)
		ka[i] = k
		orK |= k
		andK &= k
	}
	varying := orK ^ andK
	var counts [256]int
	for shift := 0; shift < 64; shift += 8 {
		if (varying>>shift)&0xFF == 0 {
			continue
		}
		clear(counts[:])
		for _, k := range ka {
			counts[(k>>shift)&0xFF]++
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for i, k := range ka {
			j := counts[(k>>shift)&0xFF]
			counts[(k>>shift)&0xFF] = j + 1
			b[j] = a[i]
			kb[j] = k
		}
		a, b = b, a
		ka, kb = kb, ka
	}
	return a, b
}
