package profile

import (
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// Hybrid is Vulcan's default profiler (§3.2, inspired by FlexMem): PEBS
// sampling provides cheap frequency estimates, while an epoch-boundary
// page-table sweep harvests accessed bits to cover the pages sampling
// missed — overcoming "the limitations of sampling-based memory
// tracking" at the cost of the scan.
type Hybrid struct {
	heat  *heatStore
	table Table
	rng   *sim.RNG

	sampleRate   int
	sampleWeight float64
	scanBoost    float64
	scanCost     float64
	samples      uint64

	// scanFn is the epoch-sweep callback, bound once at construction so
	// EndEpoch passes a stored func value instead of allocating a closure.
	scanFn func(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE //vulcan:nosnap constructor wiring
	// scanned counts pages visited by the in-flight sweep.
	scanned int //vulcan:nosnap per-epoch scratch, reset by EndEpoch
}

// NewHybrid builds the hybrid profiler with the default decay.
func NewHybrid(table Table, sampleRate int, seed uint64) *Hybrid {
	return NewHybridWithDecay(table, sampleRate, DefaultDecay, seed)
}

// NewHybridWithDecay selects the per-epoch heat aging factor. A slow
// decay (e.g. 0.9) makes steadily re-accessed pages outrank one-shot
// streaming spikes, which is what lets the migration policy distinguish
// genuine working sets from scan traffic.
func NewHybridWithDecay(table Table, sampleRate int, decay float64, seed uint64) *Hybrid {
	if table == nil {
		panic("profile: Hybrid requires a table")
	}
	if sampleRate <= 0 {
		panic("profile: Hybrid sample rate must be positive")
	}
	h := &Hybrid{
		heat:         newHeatStore(decay),
		table:        table,
		rng:          sim.NewRNG(seed),
		sampleRate:   sampleRate,
		sampleWeight: float64(sampleRate),
		// The scan backfill is a coverage signal for pages sampling never
		// saw; it must stay below one sample's weight or it would swamp
		// the PEBS frequency ranking.
		scanBoost: float64(sampleRate) / 2,
		scanCost:  15,
	}
	h.scanFn = h.visit
	return h
}

// Name implements Profiler.
func (h *Hybrid) Name() string { return "hybrid" }

// Record samples like PEBS; no inline cost.
//
//vulcan:hotpath
func (h *Hybrid) Record(a Access) float64 {
	if h.rng.Intn(h.sampleRate) != 0 {
		return 0
	}
	h.samples++
	h.heat.record(a.VP, a.Write, h.sampleWeight)
	return 0
}

// visit handles one PTE during the epoch sweep: backfill pages sampling
// missed entirely (pages with PEBS-derived heat already carry a better
// frequency signal), then clear A/D bits in place so next epoch's bits
// are fresh. The backfill test reads only vp's own heat cell, so
// recording inline during the walk matches the previous two-pass
// collect-then-record behavior bit for bit.
//
//vulcan:hotpath
func (h *Hybrid) visit(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE {
	h.scanned++
	if p.Accessed() && h.heat.heat(vp) == 0 {
		h.heat.record(vp, p.Dirty(), h.scanBoost)
	}
	if p.Accessed() || p.Dirty() {
		return p.WithAccessed(false).WithDirty(false)
	}
	return p
}

// EndEpoch sweeps accessed bits to backfill sampling misses, then ages.
//
//vulcan:hotpath
func (h *Hybrid) EndEpoch() EpochReport {
	var rep EpochReport
	rep.OverheadCycles = float64(h.samples) * 40
	h.samples = 0

	h.scanned = 0
	h.table.RangeMut(h.scanFn)
	rep.ScannedPages = h.scanned
	rep.OverheadCycles += float64(rep.ScannedPages) * h.scanCost
	h.heat.endEpoch()
	rep.Tracked = h.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (h *Hybrid) Heat(vp pagetable.VPage) float64 { return h.heat.heat(vp) }

// WriteFraction implements Profiler.
func (h *Hybrid) WriteFraction(vp pagetable.VPage) float64 { return h.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (h *Hybrid) HeatSnapshot() []PageHeat { return h.heat.snapshot() }

// HeatPages implements Profiler.
func (h *Hybrid) HeatPages() []PageHeat { return h.heat.pages() }

// Tracked implements Profiler.
func (h *Hybrid) Tracked() int { return h.heat.tracked() }
