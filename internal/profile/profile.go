// Package profile implements the page-access profiling mechanisms
// surveyed in §2.1 of the paper: PEBS-style event sampling, page-table
// accessed-bit scanning, NUMA-hint-fault poisoning, and the FlexMem-style
// hybrid that Vulcan adopts by default. All profilers consume the same
// access stream and expose per-page heat and write-intensity estimates;
// each has the blind spots of its real counterpart (sampling misses,
// scan staleness, fault overhead).
package profile

import (
	"sort"

	"vulcan/internal/pagetable"
)

// Access is one observed memory reference, as delivered by the workload
// simulation.
type Access struct {
	VP     pagetable.VPage
	Thread int
	Write  bool
	// Fast records which tier served the access (profilers such as PEBS
	// see the distinction through the sampled event's data source).
	Fast bool
}

// PageHeat is one page's profiled state.
type PageHeat struct {
	VP        pagetable.VPage
	Heat      float64
	WriteFrac float64
}

// EpochReport summarizes what a profiler did at an epoch boundary,
// including the overhead it imposed (profiling is not free: Observation
// work in §2.1 — scanning costs CPU, hint faults cost app latency).
type EpochReport struct {
	OverheadCycles float64
	ScannedPages   int
	Faults         int
	// Tracked is the number of pages holding live heat state after the
	// boundary — the profiler's working-set estimate, exported as
	// profile-epoch telemetry.
	Tracked int
}

// Profiler estimates page heat from an access stream.
type Profiler interface {
	// Name identifies the mechanism ("pebs", "scan", ...).
	Name() string
	// Record offers one access to the profiler. Sampling profilers may
	// ignore most calls; Record returns any extra cycles the mechanism
	// imposed on the accessing thread (e.g. a hint fault).
	Record(a Access) float64
	// EndEpoch ages state, performs scans, and reports overhead.
	EndEpoch() EpochReport
	// Heat returns the page's current heat estimate (0 if untracked).
	Heat(vp pagetable.VPage) float64
	// WriteFraction estimates the fraction of writes among the page's
	// observed accesses (0 if untracked).
	WriteFraction(vp pagetable.VPage) float64
	// HeatSnapshot returns all tracked pages, hottest first (ties broken
	// by ascending page number for determinism).
	HeatSnapshot() []PageHeat
	// Tracked returns the number of pages with live heat state.
	Tracked() int
}

// DefaultDecay is the per-epoch heat aging factor (Memtis-style halving).
const DefaultDecay = 0.5

// evictBelow drops pages whose heat decayed to noise, bounding memory.
const evictBelow = 1e-3

// heatMap is the shared heat bookkeeping used by every profiler. Stats
// are stored by value: a pointer map costs one heap allocation per
// newly tracked page, which dominated the migration benchmarks'
// allocation profile.
type heatMap struct {
	m     map[pagetable.VPage]heatStat
	decay float64
}

type heatStat struct {
	heat   float64
	reads  float64
	writes float64
}

func newHeatMap(decay float64) *heatMap {
	if decay <= 0 || decay >= 1 {
		panic("profile: decay must be in (0,1)")
	}
	return &heatMap{m: make(map[pagetable.VPage]heatStat), decay: decay}
}

func (h *heatMap) record(vp pagetable.VPage, write bool, weight float64) {
	s := h.m[vp]
	s.heat += weight
	if write {
		s.writes += weight
	} else {
		s.reads += weight
	}
	h.m[vp] = s
}

func (h *heatMap) endEpoch() {
	// Mutating existing keys and deleting during range is well-defined;
	// no new keys are inserted.
	for vp, s := range h.m {
		s.heat *= h.decay
		s.reads *= h.decay
		s.writes *= h.decay
		if s.heat < evictBelow {
			delete(h.m, vp)
		} else {
			h.m[vp] = s
		}
	}
}

func (h *heatMap) heat(vp pagetable.VPage) float64 {
	return h.m[vp].heat
}

func (h *heatMap) writeFraction(vp pagetable.VPage) float64 {
	s := h.m[vp]
	total := s.reads + s.writes
	if total == 0 {
		return 0
	}
	return s.writes / total
}

func (h *heatMap) snapshot() []PageHeat {
	out := make([]PageHeat, 0, len(h.m))
	for vp, s := range h.m {
		total := s.reads + s.writes
		wf := 0.0
		if total > 0 {
			wf = s.writes / total
		}
		out = append(out, PageHeat{VP: vp, Heat: s.heat, WriteFrac: wf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Heat > out[j].Heat {
			return true
		}
		if out[i].Heat < out[j].Heat {
			return false
		}
		return out[i].VP < out[j].VP
	})
	return out
}

func (h *heatMap) tracked() int { return len(h.m) }

// WriteIntensiveThreshold is the write fraction above which a page is
// treated as write-intensive by migration policies (Table 1).
const WriteIntensiveThreshold = 0.25

// IsWriteIntensive classifies a page from its profiled write fraction.
func IsWriteIntensive(writeFrac float64) bool {
	return writeFrac > WriteIntensiveThreshold
}
