// Package profile implements the page-access profiling mechanisms
// surveyed in §2.1 of the paper: PEBS-style event sampling, page-table
// accessed-bit scanning, NUMA-hint-fault poisoning, and the FlexMem-style
// hybrid that Vulcan adopts by default. All profilers consume the same
// access stream and expose per-page heat and write-intensity estimates;
// each has the blind spots of its real counterpart (sampling misses,
// scan staleness, fault overhead).
package profile

import (
	"vulcan/internal/pagetable"
)

// Access is one observed memory reference, as delivered by the workload
// simulation.
type Access struct {
	VP     pagetable.VPage
	Thread int
	Write  bool
	// Fast records which tier served the access (profilers such as PEBS
	// see the distinction through the sampled event's data source).
	Fast bool
}

// PageHeat is one page's profiled state.
type PageHeat struct {
	VP        pagetable.VPage
	Heat      float64
	WriteFrac float64
}

// EpochReport summarizes what a profiler did at an epoch boundary,
// including the overhead it imposed (profiling is not free: Observation
// work in §2.1 — scanning costs CPU, hint faults cost app latency).
type EpochReport struct {
	OverheadCycles float64
	ScannedPages   int
	Faults         int
	// Tracked is the number of pages holding live heat state after the
	// boundary — the profiler's working-set estimate, exported as
	// profile-epoch telemetry.
	Tracked int
}

// Profiler estimates page heat from an access stream.
type Profiler interface {
	// Name identifies the mechanism ("pebs", "scan", ...).
	Name() string
	// Record offers one access to the profiler. Sampling profilers may
	// ignore most calls; Record returns any extra cycles the mechanism
	// imposed on the accessing thread (e.g. a hint fault).
	Record(a Access) float64
	// EndEpoch ages state, performs scans, and reports overhead.
	EndEpoch() EpochReport
	// Heat returns the page's current heat estimate (0 if untracked).
	Heat(vp pagetable.VPage) float64
	// WriteFraction estimates the fraction of writes among the page's
	// observed accesses (0 if untracked).
	WriteFraction(vp pagetable.VPage) float64
	// HeatSnapshot returns all tracked pages, hottest first (ties broken
	// by ascending page number for determinism). The returned slice is
	// scratch owned by the profiler: it is valid until the next
	// HeatSnapshot call and must not be retained across epochs.
	HeatSnapshot() []PageHeat
	// HeatPages returns all tracked pages like HeatSnapshot but in no
	// particular order, skipping the hottest-first sort. The order is
	// deterministic for a given call history but otherwise unspecified:
	// consumers must be order-independent — re-sorting or selecting by a
	// total-order key (heat, then page number) as the ranking helpers
	// do. Same scratch-ownership rules as HeatSnapshot.
	HeatPages() []PageHeat
	// Tracked returns the number of pages with live heat state.
	Tracked() int
}

// DefaultDecay is the per-epoch heat aging factor (Memtis-style halving).
const DefaultDecay = 0.5

// evictBelow drops pages whose heat decayed to noise, bounding memory.
const evictBelow = 1e-3

// WriteIntensiveThreshold is the write fraction above which a page is
// treated as write-intensive by migration policies (Table 1).
const WriteIntensiveThreshold = 0.25

// IsWriteIntensive classifies a page from its profiled write fraction.
func IsWriteIntensive(writeFrac float64) bool {
	return writeFrac > WriteIntensiveThreshold
}
