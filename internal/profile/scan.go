package profile

import (
	"vulcan/internal/pagetable"
)

// Table is the page-table surface scanners need: iteration plus the
// ability to clear accessed/dirty bits. Both *pagetable.Table and
// *pagetable.Replicated satisfy it.
type Table interface {
	Range(fn func(vp pagetable.VPage, p pagetable.PTE) bool)
	Update(vp pagetable.VPage, fn func(pagetable.PTE) pagetable.PTE) (pagetable.PTE, bool)
}

// Scan is a page-table scanning profiler (Nimble/MULTI-CLOCK style): at
// every epoch boundary it walks the page table, credits heat to pages
// with the accessed bit set, reads write intensity from the dirty bit,
// and clears both. Within an epoch it sees nothing — the staleness and
// the per-page scan cost are the mechanism's real drawbacks (§2.1:
// "faces scalability challenges with per-page scanning").
type Scan struct {
	heat  *heatMap
	table Table
	// scanCostPerPage is the per-PTE visit cost in cycles.
	scanCostPerPage float64
	// accessBoost is the heat credited for one set accessed bit. A bit is
	// binary per epoch, so the boost approximates "at least this many
	// accesses" — scanners cannot see frequency.
	accessBoost float64
}

// NewScan builds a scanning profiler over table.
func NewScan(table Table) *Scan {
	if table == nil {
		panic("profile: Scan requires a table")
	}
	return &Scan{
		heat:            newHeatMap(DefaultDecay),
		table:           table,
		scanCostPerPage: 15,
		accessBoost:     64,
	}
}

// Name implements Profiler.
func (s *Scan) Name() string { return "scan" }

// Record is a no-op: scanners observe nothing inline.
//
//vulcan:hotpath
func (s *Scan) Record(Access) float64 { return 0 }

// EndEpoch walks the table, harvesting and clearing A/D bits.
func (s *Scan) EndEpoch() EpochReport {
	var rep EpochReport
	var touched []pagetable.VPage
	var dirty []bool
	s.table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		rep.ScannedPages++
		if p.Accessed() {
			touched = append(touched, vp)
			dirty = append(dirty, p.Dirty())
		}
		return true
	})
	for i, vp := range touched {
		s.heat.record(vp, dirty[i], s.accessBoost)
		s.table.Update(vp, func(p pagetable.PTE) pagetable.PTE {
			return p.WithAccessed(false).WithDirty(false)
		})
	}
	rep.OverheadCycles = float64(rep.ScannedPages) * s.scanCostPerPage
	s.heat.endEpoch()
	rep.Tracked = s.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (s *Scan) Heat(vp pagetable.VPage) float64 { return s.heat.heat(vp) }

// WriteFraction implements Profiler.
func (s *Scan) WriteFraction(vp pagetable.VPage) float64 { return s.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (s *Scan) HeatSnapshot() []PageHeat { return s.heat.snapshot() }

// Tracked implements Profiler.
func (s *Scan) Tracked() int { return s.heat.tracked() }
