package profile

import (
	"vulcan/internal/pagetable"
)

// Table is the page-table surface scanners need: iteration plus a
// batched read-modify-write pass for harvesting and clearing
// accessed/dirty bits in one walk. Both *pagetable.Table and
// *pagetable.Replicated satisfy it.
type Table interface {
	Range(fn func(vp pagetable.VPage, p pagetable.PTE) bool)
	RangeFrom(start pagetable.VPage, fn func(vp pagetable.VPage, p pagetable.PTE) bool)
	RangeMut(fn func(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE)
	Update(vp pagetable.VPage, fn func(pagetable.PTE) pagetable.PTE) (pagetable.PTE, bool)
}

// Scan is a page-table scanning profiler (Nimble/MULTI-CLOCK style): at
// every epoch boundary it walks the page table, credits heat to pages
// with the accessed bit set, reads write intensity from the dirty bit,
// and clears both. Within an epoch it sees nothing — the staleness and
// the per-page scan cost are the mechanism's real drawbacks (§2.1:
// "faces scalability challenges with per-page scanning").
type Scan struct {
	heat  *heatStore
	table Table
	// scanCostPerPage is the per-PTE visit cost in cycles.
	scanCostPerPage float64
	// accessBoost is the heat credited for one set accessed bit. A bit is
	// binary per epoch, so the boost approximates "at least this many
	// accesses" — scanners cannot see frequency.
	accessBoost float64

	// scanFn is the sweep callback, bound once at construction so the
	// epoch scan passes a stored func value instead of allocating a
	// closure per epoch.
	scanFn func(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE //vulcan:nosnap constructor wiring
	// scanned counts pages visited by the in-flight sweep.
	scanned int //vulcan:nosnap per-epoch scratch, reset by EndEpoch
}

// NewScan builds a scanning profiler over table.
func NewScan(table Table) *Scan {
	if table == nil {
		panic("profile: Scan requires a table")
	}
	s := &Scan{
		heat:            newHeatStore(DefaultDecay),
		table:           table,
		scanCostPerPage: 15,
		accessBoost:     64,
	}
	s.scanFn = s.visit
	return s
}

// Name implements Profiler.
func (s *Scan) Name() string { return "scan" }

// Record is a no-op: scanners observe nothing inline.
//
//vulcan:hotpath
func (s *Scan) Record(Access) float64 { return 0 }

// visit harvests one PTE during the epoch sweep: touched pages gain
// heat and have their A/D bits cleared in place.
//
//vulcan:hotpath
func (s *Scan) visit(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE {
	s.scanned++
	if !p.Accessed() {
		return p
	}
	s.heat.record(vp, p.Dirty(), s.accessBoost)
	return p.WithAccessed(false).WithDirty(false)
}

// EndEpoch walks the table once, harvesting and clearing A/D bits.
//
//vulcan:hotpath
func (s *Scan) EndEpoch() EpochReport {
	var rep EpochReport
	s.scanned = 0
	s.table.RangeMut(s.scanFn)
	rep.ScannedPages = s.scanned
	rep.OverheadCycles = float64(rep.ScannedPages) * s.scanCostPerPage
	s.heat.endEpoch()
	rep.Tracked = s.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (s *Scan) Heat(vp pagetable.VPage) float64 { return s.heat.heat(vp) }

// WriteFraction implements Profiler.
func (s *Scan) WriteFraction(vp pagetable.VPage) float64 { return s.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (s *Scan) HeatSnapshot() []PageHeat { return s.heat.snapshot() }

// HeatPages implements Profiler.
func (s *Scan) HeatPages() []PageHeat { return s.heat.pages() }

// Tracked implements Profiler.
func (s *Scan) Tracked() int { return s.heat.tracked() }
