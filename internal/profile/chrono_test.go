package profile

import (
	"testing"
)

func TestChronoIdleTracking(t *testing.T) {
	tbl := buildTable(t, 16)
	c := NewChrono(tbl)
	touch(tbl, 3, false)
	c.EndEpoch()
	if got := c.IdleEpochs(3); got != 0 {
		t.Fatalf("idle after touch = %d, want 0", got)
	}
	if c.IdleEpochs(4) != -1 {
		t.Fatal("never-touched page has idle state")
	}
	// Two idle epochs age the clock.
	c.EndEpoch()
	c.EndEpoch()
	if got := c.IdleEpochs(3); got != 2 {
		t.Fatalf("idle = %d, want 2", got)
	}
}

func TestChronoConsistentlyHotOutranksOneShot(t *testing.T) {
	tbl := buildTable(t, 16)
	c := NewChrono(tbl)
	// Page 1: touched every epoch. Page 2: touched once, then idle.
	touch(tbl, 2, false)
	for e := 0; e < 6; e++ {
		touch(tbl, 1, false)
		c.EndEpoch()
	}
	if c.Heat(1) <= c.Heat(2) {
		t.Fatalf("steady page heat %v not above one-shot %v", c.Heat(1), c.Heat(2))
	}
}

func TestChronoShortIdleGapsBoostMore(t *testing.T) {
	tbl := buildTable(t, 16)
	c := NewChrono(tbl)
	// Both pages start together and are both touched in the final epoch;
	// page 1 additionally kept a short idle gap (re-touched mid-way), so
	// its per-touch boosts are larger and its heat must end higher.
	touch(tbl, 1, false)
	touch(tbl, 2, false)
	c.EndEpoch()
	touch(tbl, 1, false)
	c.EndEpoch()
	c.EndEpoch()
	touch(tbl, 1, false)
	touch(tbl, 2, false)
	c.EndEpoch()
	if c.Heat(1) <= c.Heat(2) {
		t.Fatalf("short-gap heat %v not above long-gap %v", c.Heat(1), c.Heat(2))
	}
}

func TestChronoForgetsLongIdle(t *testing.T) {
	tbl := buildTable(t, 4)
	c := NewChrono(tbl)
	touch(tbl, 0, false)
	c.EndEpoch()
	for e := 0; e < 20; e++ {
		c.EndEpoch()
	}
	if c.IdleEpochs(0) != -1 {
		t.Fatal("long-idle page not forgotten")
	}
}

func TestChronoClearsBitsAndCharges(t *testing.T) {
	tbl := buildTable(t, 8)
	c := NewChrono(tbl)
	touch(tbl, 5, true)
	rep := c.EndEpoch()
	if rep.ScannedPages != 8 || rep.OverheadCycles <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	p, _ := tbl.Lookup(5)
	if p.Accessed() || p.Dirty() {
		t.Fatal("bits not cleared")
	}
	if c.WriteFraction(5) != 1 {
		t.Fatalf("write fraction = %v", c.WriteFraction(5))
	}
}

func TestChronoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil table did not panic")
		}
	}()
	NewChrono(nil)
}

func TestRegionScanBackoff(t *testing.T) {
	// Two leaves: pages 0..511 (region A, active) and 512+ (region B,
	// idle). B's scan frequency must back off; A stays hot-scanned.
	tbl := buildTable(t, 1024)
	s := NewRegionScan(tbl)

	costs := make([]int, 0, 8)
	for e := 0; e < 8; e++ {
		touch(tbl, 5, false) // keep region A active
		rep := s.EndEpoch()
		costs = append(costs, rep.ScannedPages)
	}
	if s.BackoffLevel(5) != 0 {
		t.Fatalf("active region backed off to level %d", s.BackoffLevel(5))
	}
	if s.BackoffLevel(600) == 0 {
		t.Fatal("idle region never backed off")
	}
	// Scanned-page counts must drop once B starts being skipped.
	if costs[0] != 1024 {
		t.Fatalf("first scan covered %d pages, want 1024", costs[0])
	}
	later := costs[len(costs)-1]
	if later > 600 {
		t.Fatalf("late scan still covers %d pages; backoff ineffective", later)
	}
}

func TestRegionScanReactivation(t *testing.T) {
	tbl := buildTable(t, 1024)
	s := NewRegionScan(tbl)
	for e := 0; e < 6; e++ {
		s.EndEpoch() // both regions idle: deep backoff
	}
	if s.BackoffLevel(600) == 0 {
		t.Fatal("setup: no backoff accumulated")
	}
	// Region B becomes active; once its skip window expires the scanner
	// must see it and reset the backoff.
	for e := 0; e < 20; e++ {
		touch(tbl, 600, false)
		s.EndEpoch()
		if s.BackoffLevel(600) == 0 {
			break
		}
	}
	if s.BackoffLevel(600) != 0 {
		t.Fatal("reactivated region never reset its backoff")
	}
	if s.Heat(600) <= 0 {
		t.Fatal("reactivated page gained no heat")
	}
}

func TestRegionScanStillFindsHotPages(t *testing.T) {
	tbl := buildTable(t, 2048)
	s := NewRegionScan(tbl)
	for e := 0; e < 5; e++ {
		touch(tbl, 10, true)
		touch(tbl, 1500, false)
		s.EndEpoch()
	}
	if s.Heat(10) <= 0 || s.Heat(1500) <= 0 {
		t.Fatal("hot pages missed")
	}
	if s.WriteFraction(10) != 1 || s.WriteFraction(1500) != 0 {
		t.Fatal("write fractions wrong")
	}
	snap := s.HeatSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d pages, want 2", len(snap))
	}
}

func TestRegionScanValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil table did not panic")
		}
	}()
	NewRegionScan(nil)
}

func TestNewProfilerNamesExtended(t *testing.T) {
	tbl := buildTable(t, 8)
	if NewChrono(tbl).Name() != "chrono" {
		t.Fatal("chrono name")
	}
	if NewRegionScan(tbl).Name() != "regionscan" {
		t.Fatal("regionscan name")
	}
}
