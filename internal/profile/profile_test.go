package profile

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// feed drives n accesses to vp through p.
func feed(p Profiler, vp pagetable.VPage, n int, write bool) {
	for i := 0; i < n; i++ {
		p.Record(Access{VP: vp, Write: write})
	}
}

func TestHeatStoreDecayAndEviction(t *testing.T) {
	h := newHeatStore(0.5)
	h.record(1, false, 8)
	h.endEpoch()
	if got := h.heat(1); got != 4 {
		t.Fatalf("heat after one epoch = %v, want 4", got)
	}
	// Decay to below evictBelow drops the page.
	for i := 0; i < 20; i++ {
		h.endEpoch()
	}
	if h.tracked() != 0 {
		t.Fatalf("tracked = %d after full decay", h.tracked())
	}
}

func TestHeatStoreWriteFraction(t *testing.T) {
	h := newHeatStore(0.5)
	h.record(1, true, 1)
	h.record(1, false, 1)
	h.record(1, false, 1)
	h.record(1, false, 1)
	if wf := h.writeFraction(1); wf != 0.25 {
		t.Fatalf("writeFraction = %v, want 0.25", wf)
	}
	if h.writeFraction(99) != 0 {
		t.Fatal("untracked writeFraction nonzero")
	}
}

func TestHeatStoreSnapshotOrdering(t *testing.T) {
	h := newHeatStore(0.5)
	h.record(3, false, 1)
	h.record(1, false, 5)
	h.record(2, false, 5)
	snap := h.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	if snap[0].VP != 1 || snap[1].VP != 2 || snap[2].VP != 3 {
		t.Fatalf("ordering wrong: %v", snap)
	}
}

func TestHeatStoreBadDecayPanics(t *testing.T) {
	for _, d := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v did not panic", d)
				}
			}()
			newHeatStore(d)
		}()
	}
}

func TestIsWriteIntensive(t *testing.T) {
	if IsWriteIntensive(0.1) {
		t.Fatal("0.1 classified write-intensive")
	}
	if !IsWriteIntensive(0.5) {
		t.Fatal("0.5 not classified write-intensive")
	}
}

func TestPEBSUnbiasedHeat(t *testing.T) {
	p := NewPEBS(100, 1)
	feed(p, 7, 100_000, false)
	// Expected heat ≈ 100000 regardless of sampling (weight corrects).
	if h := p.Heat(7); h < 60_000 || h > 140_000 {
		t.Fatalf("PEBS heat = %v, want ~100000", h)
	}
}

func TestPEBSRanksBySampledFrequency(t *testing.T) {
	p := NewPEBS(10, 2)
	feed(p, 1, 50_000, false)
	feed(p, 2, 5_000, false)
	feed(p, 3, 500, false)
	snap := p.HeatSnapshot()
	if len(snap) < 2 || snap[0].VP != 1 {
		t.Fatalf("hottest page wrong: %v", snap)
	}
	if p.Heat(1) <= p.Heat(2) {
		t.Fatal("heat ordering wrong")
	}
}

func TestPEBSMissesColdPages(t *testing.T) {
	// A page touched once in a 1/199 sampler is almost never seen —
	// the mechanism's false-negative behaviour.
	p := NewPEBS(DefaultPEBSSampleRate, 3)
	missed := 0
	for vp := pagetable.VPage(0); vp < 100; vp++ {
		p.Record(Access{VP: vp})
		if p.Heat(vp) == 0 {
			missed++
		}
	}
	if missed < 80 {
		t.Fatalf("only %d/100 single-touch pages missed; sampler too eager", missed)
	}
}

func TestPEBSEpochReport(t *testing.T) {
	p := NewPEBS(1, 4) // sample everything
	feed(p, 1, 10, false)
	rep := p.EndEpoch()
	if rep.OverheadCycles <= 0 {
		t.Fatal("PEBS drain overhead missing")
	}
	if rep.Faults != 0 || rep.ScannedPages != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestPEBSValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPEBS(0) did not panic")
		}
	}()
	NewPEBS(0, 1)
}

// buildTable makes a table with n mapped pages and returns it.
func buildTable(t *testing.T, n int) *pagetable.Table {
	t.Helper()
	tbl := pagetable.New()
	for vp := pagetable.VPage(0); vp < pagetable.VPage(n); vp++ {
		err := tbl.Map(vp, pagetable.NewPTE(mem.Frame{Tier: mem.TierSlow, Index: uint32(vp)}, 0))
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func touch(tbl *pagetable.Table, vp pagetable.VPage, write bool) {
	tbl.Update(vp, func(p pagetable.PTE) pagetable.PTE {
		p = p.WithAccessed(true)
		if write {
			p = p.WithDirty(true)
		}
		return p
	})
}

func TestScanHarvestsAccessedBits(t *testing.T) {
	tbl := buildTable(t, 16)
	s := NewScan(tbl)
	touch(tbl, 3, false)
	touch(tbl, 5, true)
	rep := s.EndEpoch()
	if rep.ScannedPages != 16 {
		t.Fatalf("scanned = %d, want 16", rep.ScannedPages)
	}
	if s.Heat(3) <= 0 || s.Heat(5) <= 0 {
		t.Fatal("touched pages have no heat")
	}
	if s.Heat(4) != 0 {
		t.Fatal("untouched page has heat")
	}
	if s.WriteFraction(5) != 1 || s.WriteFraction(3) != 0 {
		t.Fatalf("write fractions: %v %v", s.WriteFraction(5), s.WriteFraction(3))
	}
	// Bits must be cleared for the next epoch.
	p, _ := tbl.Lookup(3)
	if p.Accessed() {
		t.Fatal("accessed bit not cleared by scan")
	}
	p, _ = tbl.Lookup(5)
	if p.Dirty() {
		t.Fatal("dirty bit not cleared by scan")
	}
}

func TestScanCannotSeeFrequency(t *testing.T) {
	// Two pages: one touched once, one conceptually touched 1000 times —
	// the accessed bit is binary, so the scanner credits them equally.
	tbl := buildTable(t, 2)
	s := NewScan(tbl)
	touch(tbl, 0, false)
	touch(tbl, 1, false) // the bit saturates; more touches change nothing
	s.EndEpoch()
	if s.Heat(0) != s.Heat(1) {
		t.Fatalf("scanner distinguished frequencies: %v vs %v", s.Heat(0), s.Heat(1))
	}
}

func TestScanOverheadScalesWithPages(t *testing.T) {
	small := NewScan(buildTable(t, 8))
	big := NewScan(buildTable(t, 800))
	if small.EndEpoch().OverheadCycles >= big.EndEpoch().OverheadCycles {
		t.Fatal("scan overhead not proportional to table size")
	}
}

func TestScanRecordNoop(t *testing.T) {
	s := NewScan(buildTable(t, 1))
	if c := s.Record(Access{VP: 0}); c != 0 {
		t.Fatal("scan Record charged cycles")
	}
	if s.Tracked() != 0 {
		t.Fatal("scan Record tracked a page")
	}
}

func TestHintFaultPoisonAndFire(t *testing.T) {
	tbl := buildTable(t, 8)
	h := NewHintFault(tbl, 4, 2500)
	h.EndEpoch() // establish the first poison window
	if h.PoisonedPages() != 4 {
		t.Fatalf("poisoned = %d, want 4", h.PoisonedPages())
	}
	// First access to a poisoned page faults and is charged.
	cost := h.Record(Access{VP: 0})
	if cost != 2500 {
		t.Fatalf("fault cost = %v, want 2500", cost)
	}
	if h.Heat(0) <= 0 {
		t.Fatal("fault did not credit heat")
	}
	// Second access: poison consumed, no fault.
	if c := h.Record(Access{VP: 0}); c != 0 {
		t.Fatalf("second access cost = %v, want 0", c)
	}
	rep := h.EndEpoch()
	if rep.Faults != 1 {
		t.Fatalf("epoch faults = %d, want 1", rep.Faults)
	}
}

func TestHintFaultWindowRotates(t *testing.T) {
	tbl := buildTable(t, 8)
	h := NewHintFault(tbl, 4, 2500)
	h.EndEpoch()
	first := make(map[pagetable.VPage]bool)
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		if h.Record(Access{VP: vp}) > 0 {
			first[vp] = true
		}
	}
	h.EndEpoch()
	second := make(map[pagetable.VPage]bool)
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		if h.Record(Access{VP: vp}) > 0 {
			second[vp] = true
		}
	}
	if len(first) != 4 || len(second) != 4 {
		t.Fatalf("window sizes %d/%d", len(first), len(second))
	}
	for vp := range second {
		if first[vp] {
			t.Fatalf("window did not rotate: page %d poisoned twice", vp)
		}
	}
}

func TestHintFaultWrapsAround(t *testing.T) {
	tbl := buildTable(t, 6)
	h := NewHintFault(tbl, 4, 100)
	h.EndEpoch() // poisons 0..3
	h.EndEpoch() // poisons 4,5 + wraps to 0,1
	if h.PoisonedPages() != 4 {
		t.Fatalf("wrapped window = %d, want 4", h.PoisonedPages())
	}
	if c := h.Record(Access{VP: 5}); c == 0 {
		t.Fatal("page 5 not poisoned after wrap")
	}
	if c := h.Record(Access{VP: 0}); c == 0 {
		t.Fatal("page 0 not poisoned after wrap")
	}
}

func TestHintFaultValidation(t *testing.T) {
	tbl := buildTable(t, 2)
	for name, fn := range map[string]func(){
		"nil table":   func() { NewHintFault(nil, 1, 0) },
		"zero window": func() { NewHintFault(tbl, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHybridBackfillsSamplingMisses(t *testing.T) {
	tbl := buildTable(t, 64)
	h := NewHybrid(tbl, 1_000_000, 5) // sampling effectively blind
	// Touch pages through the table (accessed bits) without samples.
	for vp := pagetable.VPage(0); vp < 10; vp++ {
		touch(tbl, vp, vp%2 == 0)
	}
	h.EndEpoch()
	for vp := pagetable.VPage(0); vp < 10; vp++ {
		if h.Heat(vp) == 0 {
			t.Fatalf("hybrid missed scanned page %d", vp)
		}
	}
	if h.Heat(20) != 0 {
		t.Fatal("hybrid invented heat for untouched page")
	}
}

func TestHybridPrefersSampleSignal(t *testing.T) {
	tbl := buildTable(t, 4)
	h := NewHybrid(tbl, 1, 6) // sample everything
	feed(h, 0, 1000, false)
	touch(tbl, 0, false)
	touch(tbl, 1, false)
	h.EndEpoch()
	if h.Heat(0) <= h.Heat(1) {
		t.Fatalf("frequency signal lost: heat(0)=%v heat(1)=%v", h.Heat(0), h.Heat(1))
	}
}

func TestHybridClearsBits(t *testing.T) {
	tbl := buildTable(t, 4)
	h := NewHybrid(tbl, 10, 7)
	touch(tbl, 2, true)
	h.EndEpoch()
	p, _ := tbl.Lookup(2)
	if p.Accessed() || p.Dirty() {
		t.Fatal("hybrid left A/D bits set")
	}
}

func TestHybridValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil table": func() { NewHybrid(nil, 10, 1) },
		"bad rate":  func() { NewHybrid(buildTable(t, 1), 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProfilerNames(t *testing.T) {
	tbl := buildTable(t, 1)
	for _, tc := range []struct {
		p    Profiler
		want string
	}{
		{NewPEBS(10, 1), "pebs"},
		{NewScan(tbl), "scan"},
		{NewHintFault(tbl, 1, 0), "hintfault"},
		{NewHybrid(tbl, 10, 1), "hybrid"},
	} {
		if tc.p.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.p.Name(), tc.want)
		}
	}
}
