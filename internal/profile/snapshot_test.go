package profile

import (
	"bytes"
	"reflect"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// newProfileTable maps 256 pages so table-backed profilers have
// accessed/dirty bits to harvest.
func newProfileTable() *pagetable.Replicated {
	tbl := pagetable.NewReplicated(2)
	for vp := pagetable.VPage(0); vp < 256; vp++ {
		p := pagetable.NewPTE(mem.Frame{Tier: mem.TierSlow, Index: uint32(vp)}, pagetable.OwnerShared)
		if err := tbl.Map(int(vp)%2, vp, p); err != nil {
			panic(err)
		}
	}
	return tbl
}

// profilerPair builds a (live, fresh) twin of each profiler kind over
// its own independent table, so restored state can be verified to
// reproduce identical future behavior.
func profilerPair(kind string) (live, fresh Profiler, liveTbl, freshTbl *pagetable.Replicated) {
	mk := func() (Profiler, *pagetable.Replicated) {
		tbl := newProfileTable()
		switch kind {
		case "pebs":
			return NewPEBS(4, 9), tbl
		case "hybrid":
			return NewHybrid(tbl, 4, 9), tbl
		case "scan":
			return NewScan(tbl), tbl
		case "chrono":
			return NewChrono(tbl), tbl
		case "regionscan":
			return NewRegionScan(tbl), tbl
		case "hintfault":
			return NewHintFault(tbl, 64, 1000), tbl
		}
		panic("unknown profiler kind " + kind)
	}
	live, liveTbl = mk()
	fresh, freshTbl = mk()
	return
}

// feed drives a deterministic access mix through the profiler and its
// table, then closes the epoch.
func feedMix(p Profiler, tbl *pagetable.Replicated, round int) EpochReport {
	for i := 0; i < 400; i++ {
		vp := pagetable.VPage((i*i + round*37) % 256)
		write := (i+round)%4 == 0
		tbl.Touch(int(vp)%2, vp, write)
		p.Record(Access{VP: vp, Thread: int(vp) % 2, Write: write, Fast: i%3 == 0})
	}
	return p.EndEpoch()
}

// TestProfilerSnapshotRoundTrip checkpoints each profiler mid-run
// (together with its page table, whose accessed/dirty bits some
// profilers consume) and requires the restored twin to report identical
// heat, write fractions and epoch behavior from then on.
func TestProfilerSnapshotRoundTrip(t *testing.T) {
	kinds := []string{"pebs", "hybrid", "scan", "chrono", "regionscan", "hintfault"}
	for _, kind := range kinds {
		live, fresh, liveTbl, freshTbl := profilerPair(kind)
		for r := 0; r < 3; r++ {
			feedMix(live, liveTbl, r)
		}

		w := checkpoint.NewWriter()
		SnapshotProfiler(w.Section("prof", 1), live)
		liveTbl.Snapshot(w.Section("table", 1))
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for name, restore := range map[string]func(*checkpoint.Decoder) error{
			"prof":  func(d *checkpoint.Decoder) error { return RestoreProfiler(d, fresh, SnapshotVersion) },
			"table": freshTbl.Restore,
		} {
			d, err := cr.Section(name, 1)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, name, err)
			}
			if err := restore(d); err != nil {
				t.Fatalf("%s/%s: %v", kind, name, err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("%s/%s: unread bytes: %v", kind, name, err)
			}
		}

		if !reflect.DeepEqual(live.HeatSnapshot(), fresh.HeatSnapshot()) {
			t.Fatalf("%s: heat snapshots diverged immediately after restore", kind)
		}
		for r := 3; r < 6; r++ {
			ra := feedMix(live, liveTbl, r)
			rb := feedMix(fresh, freshTbl, r)
			if ra != rb {
				t.Fatalf("%s: round %d epoch report %+v != %+v", kind, r, ra, rb)
			}
			if !reflect.DeepEqual(live.HeatSnapshot(), fresh.HeatSnapshot()) {
				t.Fatalf("%s: round %d heat snapshots diverged", kind, r)
			}
		}
	}
}

// TestRestoreProfilerRejectsWrongKind restores a PEBS snapshot into a
// Scan profiler and expects a tag error, plus truncation robustness.
func TestRestoreProfilerRejectsWrongKind(t *testing.T) {
	p := NewPEBS(4, 9)
	for i := 0; i < 200; i++ {
		p.Record(Access{VP: pagetable.VPage(i % 64), Thread: 0})
	}
	p.EndEpoch()
	e := &checkpoint.Encoder{}
	SnapshotProfiler(e, p)
	blob := e.Bytes()

	if err := RestoreProfiler(checkpoint.NewDecoder(blob), NewScan(newProfileTable()), SnapshotVersion); err == nil {
		t.Fatal("pebs snapshot restored into scan profiler")
	}
	for cut := 0; cut < len(blob); cut += 9 {
		if err := RestoreProfiler(checkpoint.NewDecoder(blob[:cut]), NewPEBS(4, 9), SnapshotVersion); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
