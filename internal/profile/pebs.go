package profile

import (
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// PEBS is a Processor Event-Based Sampling profiler: it observes a
// pseudo-random 1-in-SampleRate subset of accesses (LLC-miss-style
// events) and weights each sample by the rate to stay unbiased. Like the
// real mechanism it is cheap per access but suffers false negatives for
// large, lightly-touched footprints (§2.1: "high false negatives at the
// terabyte scale").
type PEBS struct {
	heat *heatStore
	rng  *sim.RNG
	// SampleRate is the sampling period: one in SampleRate accesses is
	// observed.
	sampleRate   int
	sampleWeight float64
	samples      uint64
}

// DefaultPEBSSampleRate mirrors common PEBS configurations (~1/199,
// a prime period to avoid phase-locking with loops).
const DefaultPEBSSampleRate = 199

// NewPEBS builds a PEBS profiler with the given sampling period and the
// default heat decay.
func NewPEBS(sampleRate int, seed uint64) *PEBS {
	return NewPEBSWithDecay(sampleRate, DefaultDecay, seed)
}

// NewPEBSWithDecay additionally selects the per-epoch heat aging factor.
// Systems with long cooling periods (Memtis halves counts only every few
// migration rounds) retain heat across many epochs, which is what lets a
// streaming workload's entire footprint register as warm.
func NewPEBSWithDecay(sampleRate int, decay float64, seed uint64) *PEBS {
	if sampleRate <= 0 {
		panic("profile: PEBS sample rate must be positive")
	}
	return &PEBS{
		heat:         newHeatStore(decay),
		rng:          sim.NewRNG(seed),
		sampleRate:   sampleRate,
		sampleWeight: float64(sampleRate),
	}
}

// Name implements Profiler.
func (p *PEBS) Name() string { return "pebs" }

// Record samples the access with probability 1/sampleRate. PEBS imposes
// no cost on the sampled thread (the PMU does the work), so it always
// returns 0 extra cycles.
//
//vulcan:hotpath
func (p *PEBS) Record(a Access) float64 {
	if p.rng.Intn(p.sampleRate) != 0 {
		return 0
	}
	p.samples++
	p.heat.record(a.VP, a.Write, p.sampleWeight)
	return 0
}

// EndEpoch ages the heat store. Draining the PEBS buffer costs the
// profiling daemon a small constant per collected sample.
//
//vulcan:hotpath
func (p *PEBS) EndEpoch() EpochReport {
	rep := EpochReport{OverheadCycles: float64(p.samples) * 40}
	p.samples = 0
	p.heat.endEpoch()
	rep.Tracked = p.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (p *PEBS) Heat(vp pagetable.VPage) float64 { return p.heat.heat(vp) }

// WriteFraction implements Profiler.
func (p *PEBS) WriteFraction(vp pagetable.VPage) float64 { return p.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (p *PEBS) HeatSnapshot() []PageHeat { return p.heat.snapshot() }

// HeatPages implements Profiler.
func (p *PEBS) HeatPages() []PageHeat { return p.heat.pages() }

// Tracked implements Profiler.
func (p *PEBS) Tracked() int { return p.heat.tracked() }
