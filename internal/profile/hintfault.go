package profile

import (
	"vulcan/internal/pagetable"
)

// HintFault is a NUMA-hinting-fault profiler (AutoTiering/TPP/FlexMem
// style): each epoch it "poisons" a rotating window of mapped pages; the
// next access to a poisoned page takes a minor fault, which both reveals
// the access (a strong recency signal) and costs the faulting thread
// real latency — the mechanism's signature drawback.
type HintFault struct {
	heat  *heatStore
	table Table

	// poisoned is the active poison window as a paged bitmap; Record
	// probes it on every access, so membership must be a couple of loads.
	poisoned pageBitmap
	cursor   pagetable.VPage
	// windowPages is how many pages are poisoned per epoch.
	windowPages int
	// faultCycles is the latency one hint fault adds to the access.
	faultCycles float64
	// faultBoost is the heat credited per observed fault.
	faultBoost float64

	faultsThisEpoch int

	// rebuildFn and wrapFn are the window-rebuild callbacks, bound once
	// at construction so EndEpoch passes stored func values instead of
	// allocating closures.
	rebuildFn func(vp pagetable.VPage, p pagetable.PTE) bool //vulcan:nosnap constructor wiring
	wrapFn    func(vp pagetable.VPage, p pagetable.PTE) bool //vulcan:nosnap constructor wiring
	// Window-rebuild scratch, reset by EndEpoch.
	rebuildCount int             //vulcan:nosnap per-epoch scratch
	wrapLimit    pagetable.VPage //vulcan:nosnap per-epoch scratch, cursor at rebuild start
}

// NewHintFault builds a hint-fault profiler poisoning windowPages per
// epoch.
func NewHintFault(table Table, windowPages int, faultCycles float64) *HintFault {
	if table == nil {
		panic("profile: HintFault requires a table")
	}
	if windowPages <= 0 {
		panic("profile: HintFault window must be positive")
	}
	h := &HintFault{
		heat:        newHeatStore(DefaultDecay),
		table:       table,
		windowPages: windowPages,
		faultCycles: faultCycles,
		faultBoost:  96,
	}
	h.rebuildFn = h.rebuildVisit
	h.wrapFn = h.wrapVisit
	return h
}

// Name implements Profiler.
func (h *HintFault) Name() string { return "hintfault" }

// Record fires a hint fault when the access touches a poisoned page,
// returning the fault's latency so the system charges it to the thread.
//
//vulcan:hotpath
func (h *HintFault) Record(a Access) float64 {
	if !h.poisoned.clearBit(a.VP) {
		return 0
	}
	h.faultsThisEpoch++
	h.heat.record(a.VP, a.Write, h.faultBoost)
	return h.faultCycles
}

// rebuildVisit poisons one page for the next window during the forward
// (cursor-onward) walk.
//
//vulcan:hotpath
func (h *HintFault) rebuildVisit(vp pagetable.VPage, p pagetable.PTE) bool {
	if h.rebuildCount >= h.windowPages {
		return false
	}
	h.poisoned.set(vp)
	h.rebuildCount++
	h.cursor = vp + 1
	return true
}

// wrapVisit poisons pages below the rebuild-start cursor when the tail of
// the address space came up short of a full window.
//
//vulcan:hotpath
func (h *HintFault) wrapVisit(vp pagetable.VPage, p pagetable.PTE) bool {
	if vp >= h.wrapLimit || h.rebuildCount >= h.windowPages {
		return false
	}
	if h.poisoned.set(vp) {
		h.rebuildCount++
		h.cursor = vp + 1
	}
	return true
}

// EndEpoch rotates the poison window across the address space and ages
// heat.
//
//vulcan:hotpath
func (h *HintFault) EndEpoch() EpochReport {
	rep := EpochReport{
		Faults: h.faultsThisEpoch,
		// Poisoning a PTE is a table write; unpoisoned leftovers from the
		// previous window are also rewritten.
		OverheadCycles: float64(h.windowPages+h.poisoned.count) * 20,
	}
	h.faultsThisEpoch = 0

	// Rebuild the window: walk forward from the cursor, wrapping once.
	// Resuming at the cursor (instead of scanning from page zero and
	// skipping the prefix) keeps the rebuild O(window), not O(RSS).
	h.poisoned.clearAll()
	h.rebuildCount = 0
	h.wrapLimit = h.cursor
	h.table.RangeFrom(h.wrapLimit, h.rebuildFn)
	// Wrap around if the tail of the address space was short.
	if h.rebuildCount < h.windowPages && h.wrapLimit > 0 {
		h.table.Range(h.wrapFn)
	}
	h.heat.endEpoch()
	rep.Tracked = h.heat.tracked()
	return rep
}

// PoisonedPages returns the number of currently poisoned pages.
func (h *HintFault) PoisonedPages() int { return h.poisoned.count }

// Heat implements Profiler.
func (h *HintFault) Heat(vp pagetable.VPage) float64 { return h.heat.heat(vp) }

// WriteFraction implements Profiler.
func (h *HintFault) WriteFraction(vp pagetable.VPage) float64 { return h.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (h *HintFault) HeatSnapshot() []PageHeat { return h.heat.snapshot() }

// HeatPages implements Profiler.
func (h *HintFault) HeatPages() []PageHeat { return h.heat.pages() }

// Tracked implements Profiler.
func (h *HintFault) Tracked() int { return h.heat.tracked() }
