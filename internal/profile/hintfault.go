package profile

import (
	"vulcan/internal/pagetable"
)

// HintFault is a NUMA-hinting-fault profiler (AutoTiering/TPP/FlexMem
// style): each epoch it "poisons" a rotating window of mapped pages; the
// next access to a poisoned page takes a minor fault, which both reveals
// the access (a strong recency signal) and costs the faulting thread
// real latency — the mechanism's signature drawback.
type HintFault struct {
	heat  *heatMap
	table Table

	poisoned map[pagetable.VPage]struct{}
	cursor   pagetable.VPage
	// windowPages is how many pages are poisoned per epoch.
	windowPages int
	// faultCycles is the latency one hint fault adds to the access.
	faultCycles float64
	// faultBoost is the heat credited per observed fault.
	faultBoost float64

	faultsThisEpoch int
}

// NewHintFault builds a hint-fault profiler poisoning windowPages per
// epoch.
func NewHintFault(table Table, windowPages int, faultCycles float64) *HintFault {
	if table == nil {
		panic("profile: HintFault requires a table")
	}
	if windowPages <= 0 {
		panic("profile: HintFault window must be positive")
	}
	return &HintFault{
		heat:        newHeatMap(DefaultDecay),
		table:       table,
		poisoned:    make(map[pagetable.VPage]struct{}),
		windowPages: windowPages,
		faultCycles: faultCycles,
		faultBoost:  96,
	}
}

// Name implements Profiler.
func (h *HintFault) Name() string { return "hintfault" }

// Record fires a hint fault when the access touches a poisoned page,
// returning the fault's latency so the system charges it to the thread.
//
//vulcan:hotpath
func (h *HintFault) Record(a Access) float64 {
	if _, ok := h.poisoned[a.VP]; !ok {
		return 0
	}
	delete(h.poisoned, a.VP)
	h.faultsThisEpoch++
	h.heat.record(a.VP, a.Write, h.faultBoost)
	return h.faultCycles
}

// EndEpoch rotates the poison window across the address space and ages
// heat.
func (h *HintFault) EndEpoch() EpochReport {
	rep := EpochReport{
		Faults: h.faultsThisEpoch,
		// Poisoning a PTE is a table write; unpoisoned leftovers from the
		// previous window are also rewritten.
		OverheadCycles: float64(h.windowPages+len(h.poisoned)) * 20,
	}
	h.faultsThisEpoch = 0

	// Rebuild the window: walk forward from the cursor, wrapping once.
	for vp := range h.poisoned {
		delete(h.poisoned, vp)
	}
	count := 0
	var firstPass []pagetable.VPage
	h.table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		if vp < h.cursor {
			if len(firstPass) < h.windowPages {
				firstPass = append(firstPass, vp)
			}
			return true
		}
		if count < h.windowPages {
			h.poisoned[vp] = struct{}{}
			count++
			h.cursor = vp + 1
			return true
		}
		return false
	})
	// Wrap around if the tail of the address space was short.
	for _, vp := range firstPass {
		if count >= h.windowPages {
			break
		}
		if _, dup := h.poisoned[vp]; !dup {
			h.poisoned[vp] = struct{}{}
			count++
			h.cursor = vp + 1
		}
	}
	h.heat.endEpoch()
	rep.Tracked = h.heat.tracked()
	return rep
}

// PoisonedPages returns the number of currently poisoned pages.
func (h *HintFault) PoisonedPages() int { return len(h.poisoned) }

// Heat implements Profiler.
func (h *HintFault) Heat(vp pagetable.VPage) float64 { return h.heat.heat(vp) }

// WriteFraction implements Profiler.
func (h *HintFault) WriteFraction(vp pagetable.VPage) float64 { return h.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (h *HintFault) HeatSnapshot() []PageHeat { return h.heat.snapshot() }

// Tracked implements Profiler.
func (h *HintFault) Tracked() int { return h.heat.tracked() }
