package profile

import (
	"vulcan/internal/pagetable"
)

// RegionScan is a Telescope-style profiler (Nair et al., ATC'24) for
// huge address spaces: it scans at 2MiB-region granularity with
// exponential backoff — a region whose pages were all idle on the last
// visit is revisited half as often — so scan overhead concentrates on
// the active fraction of a terabyte-scale footprint instead of touching
// every PTE every period.
type RegionScan struct {
	table Table
	heat  *heatStore
	// regions holds per-region backoff level and skip deadline as dense
	// parallel arrays; zero values reproduce the old map defaults.
	regions regionStore
	epoch   int

	maxBackoff  uint8
	accessBoost float64
	scanCost    float64

	// scanFn is the epoch-sweep callback, bound once at construction so
	// EndEpoch passes a stored func value instead of allocating a closure.
	scanFn func(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE //vulcan:nosnap constructor wiring
	// Per-epoch sweep scratch. Range yields ascending VPages, so all
	// pages of a region arrive consecutively; the sweep finalizes each
	// region's backoff when it sees the boundary to the next one.
	scanned    int               //vulcan:nosnap per-epoch scratch
	curRegion  uint64            //vulcan:nosnap per-epoch scratch
	haveRegion bool              //vulcan:nosnap per-epoch scratch
	curSkipped bool              //vulcan:nosnap per-epoch scratch
	curActive  bool              //vulcan:nosnap per-epoch scratch
	touched    []pagetable.VPage //vulcan:nosnap per-epoch scratch, reused buffer
	dirty      []bool            //vulcan:nosnap per-epoch scratch, reused buffer
}

// NewRegionScan builds the profiler over table.
func NewRegionScan(table Table) *RegionScan {
	if table == nil {
		panic("profile: RegionScan requires a table")
	}
	s := &RegionScan{
		table:       table,
		heat:        newHeatStore(DefaultDecay),
		maxBackoff:  4, // skip at most 15 epochs
		accessBoost: 64,
		scanCost:    15,
	}
	s.scanFn = s.visit
	return s
}

// Name implements Profiler.
func (s *RegionScan) Name() string { return "regionscan" }

// Record is a no-op.
//
//vulcan:hotpath
func (s *RegionScan) Record(Access) float64 { return 0 }

// finalizeRegion applies the backoff decision for a fully-swept region:
// active regions reset to every-epoch scanning; idle scanned regions
// back off exponentially.
//
//vulcan:hotpath
func (s *RegionScan) finalizeRegion() {
	if !s.haveRegion || s.curSkipped {
		return
	}
	if s.curActive {
		s.regions.setBackoff(s.curRegion, 0, 0)
		return
	}
	level := s.regions.backoffLevel(s.curRegion)
	if level < s.maxBackoff {
		level++
	}
	s.regions.setBackoff(s.curRegion, level, s.epoch+(1<<level)-1)
}

// visit sweeps one PTE, tracking region boundaries: skipped (backed-off)
// regions are passed over untouched; scanned pages with the accessed bit
// gain heat and have their A/D bits cleared in place.
//
//vulcan:hotpath
func (s *RegionScan) visit(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE {
	region := pagetable.LeafIndex(vp)
	if !s.haveRegion || region != s.curRegion {
		s.finalizeRegion()
		s.curRegion = region
		s.haveRegion = true
		s.curActive = false
		s.curSkipped = s.epoch < s.regions.skipUntil(region)
	}
	if s.curSkipped {
		return p // backed off; not visited, not counted
	}
	s.scanned++
	if !p.Accessed() {
		return p
	}
	s.curActive = true
	s.touched = append(s.touched, vp)
	s.dirty = append(s.dirty, p.Dirty())
	return p.WithAccessed(false).WithDirty(false)
}

// EndEpoch scans non-backed-off regions, harvesting accessed bits.
//
//vulcan:hotpath
func (s *RegionScan) EndEpoch() EpochReport {
	var rep EpochReport
	s.scanned = 0
	s.haveRegion = false
	s.touched = s.touched[:0]
	s.dirty = s.dirty[:0]
	s.table.RangeMut(s.scanFn)
	s.finalizeRegion()
	rep.ScannedPages = s.scanned

	for i, vp := range s.touched {
		s.heat.record(vp, s.dirty[i], s.accessBoost)
	}
	rep.OverheadCycles = float64(rep.ScannedPages) * s.scanCost
	s.heat.endEpoch()
	s.epoch++
	rep.Tracked = s.heat.tracked()
	return rep
}

// BackoffLevel returns the current backoff exponent of vp's region.
func (s *RegionScan) BackoffLevel(vp pagetable.VPage) uint8 {
	return s.regions.backoffLevel(pagetable.LeafIndex(vp))
}

// Heat implements Profiler.
func (s *RegionScan) Heat(vp pagetable.VPage) float64 { return s.heat.heat(vp) }

// WriteFraction implements Profiler.
func (s *RegionScan) WriteFraction(vp pagetable.VPage) float64 { return s.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (s *RegionScan) HeatSnapshot() []PageHeat { return s.heat.snapshot() }

// HeatPages implements Profiler.
func (s *RegionScan) HeatPages() []PageHeat { return s.heat.pages() }

// Tracked implements Profiler.
func (s *RegionScan) Tracked() int { return s.heat.tracked() }
