package profile

import (
	"vulcan/internal/pagetable"
)

// RegionTable extends Table with leaf-level iteration, letting a scanner
// skip entire 2MiB regions. *pagetable.Table and *pagetable.Replicated
// both satisfy it through Range; the region structure is recovered from
// pagetable.LeafIndex.

// RegionScan is a Telescope-style profiler (Nair et al., ATC'24) for
// huge address spaces: it scans at 2MiB-region granularity with
// exponential backoff — a region whose pages were all idle on the last
// visit is revisited half as often — so scan overhead concentrates on
// the active fraction of a terabyte-scale footprint instead of touching
// every PTE every period.
type RegionScan struct {
	table Table
	heat  *heatMap
	// backoff per region: skip the region for 2^level-1 epochs.
	backoff   map[uint64]uint8
	skipUntil map[uint64]int
	epoch     int

	maxBackoff  uint8
	accessBoost float64
	scanCost    float64
}

// NewRegionScan builds the profiler over table.
func NewRegionScan(table Table) *RegionScan {
	if table == nil {
		panic("profile: RegionScan requires a table")
	}
	return &RegionScan{
		table:       table,
		heat:        newHeatMap(DefaultDecay),
		backoff:     make(map[uint64]uint8),
		skipUntil:   make(map[uint64]int),
		maxBackoff:  4, // skip at most 15 epochs
		accessBoost: 64,
		scanCost:    15,
	}
}

// Name implements Profiler.
func (s *RegionScan) Name() string { return "regionscan" }

// Record is a no-op.
//
//vulcan:hotpath
func (s *RegionScan) Record(Access) float64 { return 0 }

// EndEpoch scans non-backed-off regions, harvesting accessed bits.
func (s *RegionScan) EndEpoch() EpochReport {
	var rep EpochReport
	activeRegions := make(map[uint64]bool)
	var touched []pagetable.VPage
	var dirty []bool

	s.table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		region := pagetable.LeafIndex(vp)
		if s.epoch < s.skipUntil[region] {
			return true // backed off; not visited, not counted
		}
		rep.ScannedPages++
		if p.Accessed() {
			activeRegions[region] = true
			touched = append(touched, vp)
			dirty = append(dirty, p.Dirty())
		}
		return true
	})

	// Update backoff: active regions reset to every-epoch scanning; idle
	// scanned regions back off exponentially.
	seen := make(map[uint64]bool)
	for _, vp := range touched {
		seen[pagetable.LeafIndex(vp)] = true
	}
	s.table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		region := pagetable.LeafIndex(vp)
		if s.epoch < s.skipUntil[region] || seen[region] {
			return true
		}
		seen[region] = true // idle region, evaluated once
		level := s.backoff[region]
		if level < s.maxBackoff {
			level++
		}
		s.backoff[region] = level
		s.skipUntil[region] = s.epoch + (1 << level) - 1
		return true
	})
	for region := range activeRegions {
		s.backoff[region] = 0
		s.skipUntil[region] = 0
	}

	for i, vp := range touched {
		s.heat.record(vp, dirty[i], s.accessBoost)
		s.table.Update(vp, func(p pagetable.PTE) pagetable.PTE {
			return p.WithAccessed(false).WithDirty(false)
		})
	}
	rep.OverheadCycles = float64(rep.ScannedPages) * s.scanCost
	s.heat.endEpoch()
	s.epoch++
	rep.Tracked = s.heat.tracked()
	return rep
}

// BackoffLevel returns the current backoff exponent of vp's region.
func (s *RegionScan) BackoffLevel(vp pagetable.VPage) uint8 {
	return s.backoff[pagetable.LeafIndex(vp)]
}

// Heat implements Profiler.
func (s *RegionScan) Heat(vp pagetable.VPage) float64 { return s.heat.heat(vp) }

// WriteFraction implements Profiler.
func (s *RegionScan) WriteFraction(vp pagetable.VPage) float64 { return s.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (s *RegionScan) HeatSnapshot() []PageHeat { return s.heat.snapshot() }

// Tracked implements Profiler.
func (s *RegionScan) Tracked() int { return s.heat.tracked() }
