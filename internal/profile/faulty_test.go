package profile

import (
	"testing"

	"vulcan/internal/pagetable"
)

// scriptedFaults drops every n-th sample (n=0: drop nothing) and can
// force an overflow flag.
type scriptedFaults struct {
	dropEvery int
	overflow  bool

	epoch   uint64
	seen    int
	kept    uint64
	dropped uint64
}

func (s *scriptedFaults) BeginEpoch(epoch uint64) {
	s.epoch = epoch
	s.seen, s.kept, s.dropped = 0, 0, 0
}

func (s *scriptedFaults) DropSample() bool {
	s.seen++
	if s.dropEvery > 0 && s.seen%s.dropEvery == 0 {
		s.dropped++
		return true
	}
	s.kept++
	return false
}

func (s *scriptedFaults) EndEpoch() (float64, bool, uint64) {
	conf := 1.0
	if total := s.kept + s.dropped; total > 0 {
		conf = float64(s.kept) / float64(total)
	}
	return conf, s.overflow, s.dropped
}

func TestFaultyDropsSamples(t *testing.T) {
	inner := NewPEBS(1, 9)
	faulty := NewFaulty(inner, &scriptedFaults{dropEvery: 2})
	clean := NewPEBS(1, 9)

	for i := 0; i < 100; i++ {
		a := Access{VP: pagetable.VPage(i % 4), Fast: true}
		faulty.Record(a)
		clean.Record(a)
	}
	faulty.EndEpoch()
	clean.EndEpoch()

	if got, want := faulty.Confidence(), 0.5; got != want {
		t.Errorf("confidence = %v, want %v", got, want)
	}
	if faulty.Dropped() != 50 {
		t.Errorf("dropped = %d, want 50", faulty.Dropped())
	}
	if faulty.Overflowed() {
		t.Error("overflow flag set without overflow")
	}
	// The starved profile must see strictly less heat than the clean
	// one: page 1's accesses all land on dropped sample indices.
	if fh, ch := faulty.Heat(1), clean.Heat(1); fh >= ch {
		t.Errorf("faulty heat %v not below clean heat %v", fh, ch)
	}
	if faulty.Name() != clean.Name() {
		t.Errorf("wrapper changed name: %q", faulty.Name())
	}
}

func TestFaultyNoDropsIsTransparent(t *testing.T) {
	inner := NewPEBS(1, 9)
	faulty := NewFaulty(inner, &scriptedFaults{})
	clean := NewPEBS(1, 9)

	var costF, costC float64
	for i := 0; i < 64; i++ {
		a := Access{VP: pagetable.VPage(i % 8), Write: i%3 == 0, Fast: i%2 == 0}
		costF += faulty.Record(a)
		costC += clean.Record(a)
	}
	faulty.EndEpoch()
	clean.EndEpoch()
	if costF != costC {
		t.Errorf("record cost diverged: %v vs %v", costF, costC)
	}
	if faulty.Confidence() != 1 {
		t.Errorf("confidence = %v, want 1", faulty.Confidence())
	}
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		if faulty.Heat(vp) != clean.Heat(vp) {
			t.Errorf("page %d heat diverged: %v vs %v", vp, faulty.Heat(vp), clean.Heat(vp))
		}
		if faulty.WriteFraction(vp) != clean.WriteFraction(vp) {
			t.Errorf("page %d write fraction diverged", vp)
		}
	}
	if faulty.Tracked() != clean.Tracked() {
		t.Errorf("tracked diverged: %d vs %d", faulty.Tracked(), clean.Tracked())
	}
}

func TestFaultyOverflowFlag(t *testing.T) {
	faulty := NewFaulty(NewPEBS(1, 9), &scriptedFaults{dropEvery: 1, overflow: true})
	for i := 0; i < 10; i++ {
		faulty.Record(Access{VP: 1})
	}
	faulty.EndEpoch()
	if !faulty.Overflowed() {
		t.Error("overflow not reported")
	}
	if faulty.Confidence() != 0 {
		t.Errorf("confidence = %v with every sample dropped", faulty.Confidence())
	}
}
