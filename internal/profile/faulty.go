package profile

import "vulcan/internal/pagetable"

// SampleFaults is the profiler-facing surface of the fault subsystem
// (structurally satisfied by *fault.ProfileFaults; a local interface
// keeps this mechanism layer free of a fault-package dependency). One
// value wraps one app's serial sampling stream.
type SampleFaults interface {
	// BeginEpoch opens epoch-scoped fault state (overflow windows).
	BeginEpoch(epoch uint64)
	// DropSample reports whether the next profiler sample is lost.
	DropSample() bool
	// EndEpoch closes the epoch: the surviving-sample confidence (1 =
	// nothing lost), whether the ring buffer overflowed, and how many
	// samples were dropped.
	EndEpoch() (confidence float64, overflowed bool, dropped uint64)
}

// Faulty decorates a Profiler with injected sample loss: dropped
// samples never reach the inner profiler (the heat estimate starves,
// exactly like real PEBS throughput loss), and the per-epoch confidence
// lets the system decide when the profile is too starved to act on.
type Faulty struct {
	inner  Profiler
	faults SampleFaults
	epoch  uint64

	confidence float64
	overflowed bool
	dropped    uint64
}

// NewFaulty wraps inner with the given fault stream. faults must be
// non-nil (callers with no fault plan should use inner directly).
func NewFaulty(inner Profiler, faults SampleFaults) *Faulty {
	if inner == nil || faults == nil {
		panic("profile: NewFaulty requires a profiler and a fault stream")
	}
	f := &Faulty{inner: inner, faults: faults, confidence: 1}
	f.faults.BeginEpoch(0)
	return f
}

// Name implements Profiler.
func (f *Faulty) Name() string { return f.inner.Name() }

// Record implements Profiler: a dropped sample costs the thread nothing
// (the hardware simply never delivered it) and is invisible to the
// inner profiler.
//
//vulcan:hotpath
func (f *Faulty) Record(a Access) float64 {
	if f.faults.DropSample() {
		return 0
	}
	return f.inner.Record(a)
}

// EndEpoch implements Profiler: it closes the fault stream's epoch,
// latches the confidence for Confidence, and opens the next epoch.
func (f *Faulty) EndEpoch() EpochReport {
	f.confidence, f.overflowed, f.dropped = f.faults.EndEpoch()
	f.epoch++
	f.faults.BeginEpoch(f.epoch)
	return f.inner.EndEpoch()
}

// Confidence returns the fraction of this epoch's samples that survived
// injection (1 when nothing was lost); valid after EndEpoch.
func (f *Faulty) Confidence() float64 { return f.confidence }

// Overflowed reports whether the closed epoch hit a ring-buffer
// overflow window.
func (f *Faulty) Overflowed() bool { return f.overflowed }

// Dropped returns how many samples the closed epoch lost.
func (f *Faulty) Dropped() uint64 { return f.dropped }

// Heat implements Profiler.
func (f *Faulty) Heat(vp pagetable.VPage) float64 { return f.inner.Heat(vp) }

// WriteFraction implements Profiler.
func (f *Faulty) WriteFraction(vp pagetable.VPage) float64 { return f.inner.WriteFraction(vp) }

// HeatSnapshot implements Profiler.
func (f *Faulty) HeatSnapshot() []PageHeat { return f.inner.HeatSnapshot() }

// HeatPages implements Profiler.
func (f *Faulty) HeatPages() []PageHeat { return f.inner.HeatPages() }

// Tracked implements Profiler.
func (f *Faulty) Tracked() int { return f.inner.Tracked() }

// Unwrap exposes the inner profiler (for tests and name-based checks).
func (f *Faulty) Unwrap() Profiler { return f.inner }
