package profile

import (
	"vulcan/internal/pagetable"
)

// Chrono is a timer-based hotness profiler (Qi et al., EuroSys'25 — the
// "variant of NUMA hinting faults" of §2.1): instead of counting
// accesses, it measures each page's *idle time*. Every epoch it records
// which pages were touched (accessed bit); a page's heat is derived from
// how recently and how consistently it has been non-idle. Compared to
// plain hint faults this separates "touched once long ago" from "touched
// every epoch" without needing high-rate sampling.
type Chrono struct {
	table Table
	heat  *heatMap
	// idleEpochs tracks consecutive untouched epochs per known page.
	idleEpochs map[pagetable.VPage]int
	// touchBoost is the heat credited per non-idle epoch; consistency
	// compounds through the shared decay.
	touchBoost float64
	// forgetAfter drops pages idle this many epochs.
	forgetAfter int
	scanCost    float64
}

// NewChrono builds the profiler over table.
func NewChrono(table Table) *Chrono {
	if table == nil {
		panic("profile: Chrono requires a table")
	}
	return &Chrono{
		table:       table,
		heat:        newHeatMap(0.6),
		idleEpochs:  make(map[pagetable.VPage]int),
		touchBoost:  48,
		forgetAfter: 16,
		scanCost:    15,
	}
}

// Name implements Profiler.
func (c *Chrono) Name() string { return "chrono" }

// Record is a no-op: Chrono reads page-table state at epoch boundaries.
//
//vulcan:hotpath
func (c *Chrono) Record(Access) float64 { return 0 }

// IdleEpochs returns how long vp has been idle (0 = touched last epoch;
// -1 = unknown page).
func (c *Chrono) IdleEpochs(vp pagetable.VPage) int {
	if n, ok := c.idleEpochs[vp]; ok {
		return n
	}
	return -1
}

// EndEpoch harvests accessed/dirty bits into idle-time bookkeeping.
func (c *Chrono) EndEpoch() EpochReport {
	var rep EpochReport
	var touched []pagetable.VPage
	var dirty []bool
	c.table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		rep.ScannedPages++
		if p.Accessed() {
			touched = append(touched, vp)
			dirty = append(dirty, p.Dirty())
		}
		return true
	})

	// Ageing first: every known page gets one epoch older.
	for vp, idle := range c.idleEpochs {
		if idle+1 > c.forgetAfter {
			delete(c.idleEpochs, vp)
		} else {
			c.idleEpochs[vp] = idle + 1
		}
	}
	// Touched pages reset their idle clocks and gain heat scaled by how
	// short their idle period was (recently-idle pages are likelier hot).
	for i, vp := range touched {
		prevIdle := c.forgetAfter
		if n, ok := c.idleEpochs[vp]; ok {
			prevIdle = n
		}
		boost := c.touchBoost / float64(1+prevIdle)
		c.heat.record(vp, dirty[i], boost)
		c.idleEpochs[vp] = 0
		c.table.Update(vp, func(p pagetable.PTE) pagetable.PTE {
			return p.WithAccessed(false).WithDirty(false)
		})
	}
	rep.OverheadCycles = float64(rep.ScannedPages) * c.scanCost
	c.heat.endEpoch()
	rep.Tracked = c.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (c *Chrono) Heat(vp pagetable.VPage) float64 { return c.heat.heat(vp) }

// WriteFraction implements Profiler.
func (c *Chrono) WriteFraction(vp pagetable.VPage) float64 { return c.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (c *Chrono) HeatSnapshot() []PageHeat { return c.heat.snapshot() }

// Tracked implements Profiler.
func (c *Chrono) Tracked() int { return c.heat.tracked() }
