package profile

import (
	"vulcan/internal/pagetable"
)

// Chrono is a timer-based hotness profiler (Qi et al., EuroSys'25 — the
// "variant of NUMA hinting faults" of §2.1): instead of counting
// accesses, it measures each page's *idle time*. Every epoch it records
// which pages were touched (accessed bit); a page's heat is derived from
// how recently and how consistently it has been non-idle. Compared to
// plain hint faults this separates "touched once long ago" from "touched
// every epoch" without needing high-rate sampling.
type Chrono struct {
	table Table
	heat  *heatStore
	// idle tracks consecutive untouched epochs per known page (stored as
	// idle+1 in a dense paged array; 0 means unknown).
	idle idleStore
	// touchBoost is the heat credited per non-idle epoch; consistency
	// compounds through the shared decay.
	touchBoost float64
	// forgetAfter drops pages idle this many epochs.
	forgetAfter int
	scanCost    float64

	// scanFn is the epoch-sweep callback, bound once at construction so
	// EndEpoch passes a stored func value instead of allocating a closure.
	scanFn func(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE //vulcan:nosnap constructor wiring
	// Per-epoch sweep scratch, reset by EndEpoch.
	scanned int               //vulcan:nosnap per-epoch scratch
	touched []pagetable.VPage //vulcan:nosnap per-epoch scratch, reused buffer
	dirty   []bool            //vulcan:nosnap per-epoch scratch, reused buffer
}

// NewChrono builds the profiler over table.
func NewChrono(table Table) *Chrono {
	if table == nil {
		panic("profile: Chrono requires a table")
	}
	c := &Chrono{
		table:       table,
		heat:        newHeatStore(0.6),
		touchBoost:  48,
		forgetAfter: 16,
		scanCost:    15,
	}
	c.scanFn = c.visit
	return c
}

// Name implements Profiler.
func (c *Chrono) Name() string { return "chrono" }

// Record is a no-op: Chrono reads page-table state at epoch boundaries.
//
//vulcan:hotpath
func (c *Chrono) Record(Access) float64 { return 0 }

// IdleEpochs returns how long vp has been idle (0 = touched last epoch;
// -1 = unknown page).
func (c *Chrono) IdleEpochs(vp pagetable.VPage) int {
	return int(c.idle.get(vp)) - 1
}

// visit collects one PTE during the epoch sweep, clearing A/D bits of
// touched pages in place.
//
//vulcan:hotpath
func (c *Chrono) visit(vp pagetable.VPage, p pagetable.PTE) pagetable.PTE {
	c.scanned++
	if !p.Accessed() {
		return p
	}
	c.touched = append(c.touched, vp)
	c.dirty = append(c.dirty, p.Dirty())
	return p.WithAccessed(false).WithDirty(false)
}

// EndEpoch harvests accessed/dirty bits into idle-time bookkeeping.
//
//vulcan:hotpath
func (c *Chrono) EndEpoch() EpochReport {
	var rep EpochReport
	c.scanned = 0
	c.touched = c.touched[:0]
	c.dirty = c.dirty[:0]
	c.table.RangeMut(c.scanFn)
	rep.ScannedPages = c.scanned

	// Ageing first: every known page gets one epoch older.
	c.idle.age(c.forgetAfter)
	// Touched pages reset their idle clocks and gain heat scaled by how
	// short their idle period was (recently-idle pages are likelier hot).
	for i, vp := range c.touched {
		prevIdle := c.forgetAfter
		if s := c.idle.get(vp); s > 0 {
			prevIdle = int(s) - 1
		}
		boost := c.touchBoost / float64(1+prevIdle)
		c.heat.record(vp, c.dirty[i], boost)
		c.idle.set(vp, 1)
	}
	rep.OverheadCycles = float64(rep.ScannedPages) * c.scanCost
	c.heat.endEpoch()
	rep.Tracked = c.heat.tracked()
	return rep
}

// Heat implements Profiler.
func (c *Chrono) Heat(vp pagetable.VPage) float64 { return c.heat.heat(vp) }

// WriteFraction implements Profiler.
func (c *Chrono) WriteFraction(vp pagetable.VPage) float64 { return c.heat.writeFraction(vp) }

// HeatSnapshot implements Profiler.
func (c *Chrono) HeatSnapshot() []PageHeat { return c.heat.snapshot() }

// HeatPages implements Profiler.
func (c *Chrono) HeatPages() []PageHeat { return c.heat.pages() }

// Tracked implements Profiler.
func (c *Chrono) Tracked() int { return c.heat.tracked() }
