package profile

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// These tests pin the //vulcan:hotpath contract for the per-access
// Record implementations: after warm-up, recording an access must not
// allocate. Record runs once per simulated memory access, so a single
// stray allocation here dominates the whole simulation's garbage.

func warmTable(t *testing.T, pages int) *pagetable.Table {
	t.Helper()
	tbl := pagetable.New()
	for vp := pagetable.VPage(0); vp < pagetable.VPage(pages); vp++ {
		if err := tbl.Map(vp, pagetable.NewPTE(mem.Frame{Tier: mem.TierSlow, Index: uint32(vp)}, 0)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func pinRecord(t *testing.T, name string, p Profiler, a Access) {
	t.Helper()
	// Warm-up inserts the page into the heat map so the measured runs
	// exercise the steady state (existing-key update, no map growth).
	for i := 0; i < 8; i++ {
		p.Record(a)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		p.Record(a)
	}); allocs != 0 {
		t.Errorf("%s.Record allocated %.0f objects/op in steady state, want 0", name, allocs)
	}
}

func TestPEBSRecordZeroAlloc(t *testing.T) {
	// sampleRate 1 makes every access take the sampling path, so the
	// measurement covers the heat-map update, not just the rng draw.
	pinRecord(t, "PEBS", NewPEBS(1, 42), Access{VP: 3, Write: true, Fast: true})
}

func TestHybridRecordZeroAlloc(t *testing.T) {
	tbl := warmTable(t, 8)
	pinRecord(t, "Hybrid", NewHybrid(tbl, 1, 42), Access{VP: 3, Write: true, Fast: true})
}

func TestHintFaultRecordZeroAlloc(t *testing.T) {
	tbl := warmTable(t, 8)
	h := NewHintFault(tbl, 4, 1000)

	// Miss path: the page is not poisoned, Record is a lone bitmap probe.
	if allocs := testing.AllocsPerRun(200, func() {
		h.Record(Access{VP: 3, Fast: true})
	}); allocs != 0 {
		t.Errorf("HintFault.Record (unpoisoned) allocated %.0f objects/op, want 0", allocs)
	}

	// Hit path: consume the poison, credit heat, charge the fault. The
	// poison is re-armed each iteration; re-setting a bit in an already
	// allocated bitmap chunk must not allocate.
	h.poisoned.set(3)
	h.Record(Access{VP: 3, Write: true, Fast: true}) // warm the heat entry
	if allocs := testing.AllocsPerRun(200, func() {
		h.poisoned.set(3)
		h.Record(Access{VP: 3, Write: true, Fast: true})
	}); allocs != 0 {
		t.Errorf("HintFault.Record (poisoned) allocated %.0f objects/op, want 0", allocs)
	}
}

func TestFaultyRecordZeroAlloc(t *testing.T) {
	// Wrap a sampling inner profiler with a fault stream that drops every
	// other sample so both the dropped and forwarded branches run.
	f := NewFaulty(NewPEBS(1, 42), &scriptedFaults{dropEvery: 2})
	pinRecord(t, "Faulty", f, Access{VP: 3, Write: true, Fast: true})
}

func TestScannerRecordsZeroAlloc(t *testing.T) {
	tbl := warmTable(t, 8)
	a := Access{VP: 3, Fast: true}
	pinRecord(t, "Scan", NewScan(tbl), a)
	pinRecord(t, "Chrono", NewChrono(tbl), a)
	pinRecord(t, "RegionScan", NewRegionScan(tbl), a)
}

func TestHeatStoreRecordZeroAlloc(t *testing.T) {
	// The store itself, below any profiler: steady-state updates of an
	// existing cell (and the maxHeat maintenance) must not allocate.
	h := newHeatStore(0.5)
	for i := 0; i < 8; i++ {
		h.record(3, i%2 == 0, 1)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		h.record(3, true, 1)
	}); allocs != 0 {
		t.Errorf("heatStore.record allocated %.0f objects/op in steady state, want 0", allocs)
	}
}

func TestHeatStoreEndEpochZeroAlloc(t *testing.T) {
	// The decay sweep with snapshot collection enabled: after the first
	// epoch grows snapScratch, every later epoch must reuse it. Pages are
	// spread across several chunks and recorded hot enough to survive all
	// measured epochs (1e6 * 0.999^201 stays far above evictBelow), so the
	// measurement covers the survivor path, not just chunk wipes.
	h := newHeatStore(0.999)
	for vp := pagetable.VPage(0); vp < 64; vp++ {
		h.record(vp*(chunkPages/4+1), vp%3 == 0, 1e6)
	}
	h.snapshot() // consume once so endEpoch takes the collect path
	h.endEpoch() // warm-up: grows snapScratch
	if allocs := testing.AllocsPerRun(200, func() {
		h.endEpoch()
	}); allocs != 0 {
		t.Errorf("heatStore.endEpoch allocated %.0f objects/op in steady state, want 0", allocs)
	}
	if h.tracked() != 64 {
		t.Fatalf("tracked = %d after measured epochs, want 64 (pages must survive for the pin to mean anything)", h.tracked())
	}
}

func TestPEBSEpochCycleZeroAlloc(t *testing.T) {
	// A full profiler epoch cycle at steady state: sampled records
	// keeping the pages warm, then the decay sweep. Record and EndEpoch
	// together are the whole per-epoch profiling cost, so this is the
	// end-to-end pin the figure benchmarks rely on.
	p := NewPEBSWithDecay(1, 0.9, 42)
	for vp := pagetable.VPage(0); vp < 16; vp++ {
		p.Record(Access{VP: vp * 100, Write: vp%2 == 0, Fast: true})
	}
	p.HeatSnapshot() // consume once so endEpoch collects
	p.EndEpoch()
	if allocs := testing.AllocsPerRun(200, func() {
		for vp := pagetable.VPage(0); vp < 16; vp++ {
			p.Record(Access{VP: vp * 100, Write: vp%2 == 0, Fast: true})
		}
		p.EndEpoch()
	}); allocs != 0 {
		t.Errorf("PEBS Record+EndEpoch cycle allocated %.0f objects/op in steady state, want 0", allocs)
	}
}
