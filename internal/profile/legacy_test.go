package profile

import (
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/pagetable"
)

// These tests hand-encode version-1 (map-layout) profiler sections and
// restore them through the version gate, proving checkpoint containers
// written before the dense-store rewrite still load. The bytes are
// written field by field from the documented v1 layout — not produced by
// any current encoder — so they break if either the primitives or the
// legacy decoders drift.

// encodeLegacyHeat writes the v1 heat layout: count, then ascending
// (page, heat, reads, writes) tuples.
func encodeLegacyHeat(e *checkpoint.Encoder, entries [][4]float64) {
	e.Int(len(entries))
	for _, ent := range entries {
		e.U64(uint64(ent[0]))
		e.F64(ent[1])
		e.F64(ent[2])
		e.F64(ent[3])
	}
}

func TestLegacyV1PEBSRestore(t *testing.T) {
	p := NewPEBS(4, 99)
	e := &checkpoint.Encoder{}
	e.String("pebs")
	// The rng wire format did not change between v1 and v2; emit the
	// fresh generator's own state so only the heat layout is under test.
	p.rng.Snapshot(e)
	e.U64(7) // in-flight sample count
	// Pages 5 and 6 share a chunk; 5000 crosses into the next one.
	encodeLegacyHeat(e, [][4]float64{
		{5, 2.5, 1.5, 1.0},
		{6, 0.25, 0.25, 0},
		{5000, 4.0, 0, 4.0},
	})

	if err := RestoreProfiler(checkpoint.NewDecoder(e.Bytes()), p, LegacySnapshotVersion); err != nil {
		t.Fatal(err)
	}
	if got := p.Tracked(); got != 3 {
		t.Fatalf("Tracked = %d, want 3", got)
	}
	if got := p.Heat(5); got != 2.5 {
		t.Fatalf("Heat(5) = %v, want 2.5", got)
	}
	if got := p.WriteFraction(5); got != 0.4 {
		t.Fatalf("WriteFraction(5) = %v, want 0.4", got)
	}
	if got := p.Heat(5000); got != 4.0 {
		t.Fatalf("Heat(5000) = %v, want 4", got)
	}
	if got := p.WriteFraction(5000); got != 1.0 {
		t.Fatalf("WriteFraction(5000) = %v, want 1", got)
	}

	// The restored store must be a first-class citizen of the new codec:
	// re-snapshot at version 2 and restore into another fresh instance.
	e2 := &checkpoint.Encoder{}
	SnapshotProfiler(e2, p)
	p2 := NewPEBS(4, 99)
	if err := RestoreProfiler(checkpoint.NewDecoder(e2.Bytes()), p2, SnapshotVersion); err != nil {
		t.Fatalf("v2 re-snapshot of legacy-restored state: %v", err)
	}
	if p2.Heat(5000) != 4.0 || p2.Tracked() != 3 {
		t.Fatal("v2 round-trip lost legacy-restored state")
	}
}

func TestLegacyV1ChronoRestore(t *testing.T) {
	c := NewChrono(newProfileTable())
	e := &checkpoint.Encoder{}
	e.String("chrono")
	encodeLegacyHeat(e, [][4]float64{{8, 1.5, 1.5, 0}})
	// v1 idle list: count, then ascending (page, idle epochs).
	e.Int(2)
	e.U64(8)
	e.Int(1)
	e.U64(9)
	e.Int(2)

	if err := RestoreProfiler(checkpoint.NewDecoder(e.Bytes()), c, LegacySnapshotVersion); err != nil {
		t.Fatal(err)
	}
	if got := c.Heat(8); got != 1.5 {
		t.Fatalf("Heat(8) = %v, want 1.5", got)
	}
	var idles []pagetable.VPage
	c.idle.forEach(func(vp pagetable.VPage, idle int) { idles = append(idles, vp) })
	if len(idles) != 2 || idles[0] != 8 || idles[1] != 9 {
		t.Fatalf("idle pages = %v, want [8 9]", idles)
	}
	if c.idle.get(9) != 3 { // stored biased +1
		t.Fatalf("idle(9) = %d, want stored 3 (idle 2)", c.idle.get(9))
	}
}

func TestLegacyV1RegionScanRestore(t *testing.T) {
	s := NewRegionScan(newProfileTable())
	e := &checkpoint.Encoder{}
	e.String("regionscan")
	encodeLegacyHeat(e, [][4]float64{{3, 2.0, 2.0, 0}})
	// v1 backoff list could include zero levels; they must be dropped.
	e.Int(2)
	e.U64(0)
	e.U8(0)
	e.U64(1)
	e.U8(2)
	// v1 skip-until list, same deal with zero values.
	e.Int(2)
	e.U64(0)
	e.Int(0)
	e.U64(1)
	e.Int(5)
	e.Int(11) // epoch

	if err := RestoreProfiler(checkpoint.NewDecoder(e.Bytes()), s, LegacySnapshotVersion); err != nil {
		t.Fatal(err)
	}
	if s.epoch != 11 {
		t.Fatalf("epoch = %d, want 11", s.epoch)
	}
	type backoff struct {
		region uint64
		level  uint8
		until  int
	}
	var got []backoff
	s.regions.forEach(func(region uint64, level uint8, until int) {
		got = append(got, backoff{region, level, until})
	})
	if len(got) != 1 || got[0] != (backoff{1, 2, 5}) {
		t.Fatalf("backoff state = %+v, want [{1 2 5}]", got)
	}
}

func TestRestoreProfilerRejectsUnknownVersion(t *testing.T) {
	p := NewPEBS(4, 9)
	e := &checkpoint.Encoder{}
	SnapshotProfiler(e, p)
	if err := RestoreProfiler(checkpoint.NewDecoder(e.Bytes()), NewPEBS(4, 9), SnapshotVersion+1); err == nil {
		t.Fatal("version 3 snapshot accepted")
	}
}

func TestLegacyV1TruncationLadder(t *testing.T) {
	p := NewPEBS(4, 99)
	e := &checkpoint.Encoder{}
	e.String("pebs")
	p.rng.Snapshot(e)
	e.U64(7)
	encodeLegacyHeat(e, [][4]float64{{5, 2.5, 1.5, 1.0}, {9, 1.0, 1.0, 0}})
	blob := e.Bytes()
	for cut := 0; cut < len(blob); cut += 7 {
		if err := RestoreProfiler(checkpoint.NewDecoder(blob[:cut]), NewPEBS(4, 99), LegacySnapshotVersion); err == nil {
			t.Fatalf("legacy truncation at %d accepted", cut)
		}
	}
}
