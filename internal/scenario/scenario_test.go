package scenario

import (
	"strings"
	"testing"

	"vulcan/internal/figures"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

const sampleJSON = `{
  "policy": "memtis",
  "seconds": 30,
  "seed": 9,
  "scale": 16,
  "apps": [
    {"preset": "memcached"},
    {"preset": "liblinear", "start_at_s": 10},
    {"name": "scanner", "class": "BE", "threads": 2, "rss_pages": 5000,
     "generator": "scan", "write_frac": 0.1, "compute_ns": 60}
  ]
}`

func TestLoadSample(t *testing.T) {
	p, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "memtis" || p.Seed != 9 {
		t.Fatalf("header: %+v", p)
	}
	if p.Duration != 30*sim.Second {
		t.Fatalf("duration = %v", p.Duration)
	}
	if len(p.Apps) != 3 {
		t.Fatalf("apps = %d", len(p.Apps))
	}
	if p.Apps[0].RSSPages != workload.MemcachedConfig().RSSPages/16 {
		t.Fatalf("preset scaling wrong: %d", p.Apps[0].RSSPages)
	}
	if p.Apps[1].StartAt != sim.Time(10*sim.Second) {
		t.Fatalf("start_at = %v", p.Apps[1].StartAt)
	}
	custom := p.Apps[2]
	if custom.Name != "scanner" || custom.Class != workload.BE || custom.Threads != 2 {
		t.Fatalf("custom app: %+v", custom)
	}
	g := custom.NewGen(100, sim.NewRNG(1))
	if g.Name() != "scan" {
		t.Fatalf("generator = %q", g.Name())
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	p, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys := system.New(system.Config{
		Machine:          p.Machine,
		Apps:             p.Apps,
		Policy:           figures.NewPolicy(p.Policy),
		Seed:             p.Seed,
		SamplesPerThread: 400,
	})
	sys.Run(5 * sim.Second)
	if len(sys.StartedApps()) == 0 {
		t.Fatal("nothing started")
	}
	if rep := sys.Audit(); !rep.Ok() {
		t.Fatalf("audit failed: %v", rep.Errors)
	}
	r := sys.Report()
	if r.Policy != "memtis" || len(r.Apps) != 3 {
		t.Fatalf("report: %+v", r)
	}
}

func TestMachineOverride(t *testing.T) {
	p, err := Load(strings.NewReader(`{
	  "apps": [{"preset": "memcached"}],
	  "machine": {"cores": 16, "fast_pages": 1234, "slow_pages": 99999}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.Cores != 16 {
		t.Fatalf("cores = %d", p.Machine.Cores)
	}
	if p.Machine.Tiers[0].CapacityPages != 1234 || p.Machine.Tiers[1].CapacityPages != 99999 {
		t.Fatalf("tier override: %+v", p.Machine.Tiers)
	}
}

func TestDefaults(t *testing.T) {
	p, err := Load(strings.NewReader(`{"apps": [{"preset": "pagerank"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "vulcan" || p.Seed != 1 || p.Duration != 120*sim.Second {
		t.Fatalf("defaults: %+v", p)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":           `{`,
		"unknown field":     `{"bogus": 1, "apps":[{"preset":"memcached"}]}`,
		"no apps":           `{"policy":"tpp"}`,
		"bad preset":        `{"apps":[{"preset":"redis"}]}`,
		"custom no name":    `{"apps":[{"generator":"zipf","rss_pages":10}]}`,
		"bad class":         `{"apps":[{"name":"x","class":"MEDIUM","rss_pages":10}]}`,
		"bad generator":     `{"apps":[{"name":"x","rss_pages":10,"generator":"lru"}]}`,
		"micro without wss": `{"apps":[{"name":"x","rss_pages":10,"generator":"micro"}]}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPremapFractionPlumbing(t *testing.T) {
	p, err := Load(strings.NewReader(
		`{"apps":[{"preset":"memcached","premap_fraction":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Apps[0].PremapFraction != 0.5 {
		t.Fatalf("premap fraction = %v", p.Apps[0].PremapFraction)
	}
}

func TestAllGeneratorKinds(t *testing.T) {
	for _, kind := range []string{"zipf", "uniform", "scan", "keyvalue", "graph", "mltrain", "webserver", "micro"} {
		js := `{"apps":[{"name":"g","rss_pages":2000,"generator":"` + kind + `","wss_pages":100}]}`
		p, err := Load(strings.NewReader(js))
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		g := p.Apps[0].NewGen(1000, sim.NewRNG(2))
		for i := 0; i < 100; i++ {
			if r := g.Next(); r.Page < 0 || r.Page >= 1000 {
				t.Errorf("%s: page %d out of range", kind, r.Page)
				break
			}
		}
	}
}
