package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vulcan/internal/cluster"
	"vulcan/internal/fault"
	"vulcan/internal/figures"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

const sampleJSON = `{
  "policy": "memtis",
  "seconds": 30,
  "seed": 9,
  "scale": 16,
  "apps": [
    {"preset": "memcached"},
    {"preset": "liblinear", "start_at_s": 10},
    {"name": "scanner", "class": "BE", "threads": 2, "rss_pages": 5000,
     "generator": "scan", "write_frac": 0.1, "compute_ns": 60}
  ]
}`

func TestLoadSample(t *testing.T) {
	p, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "memtis" || p.Seed != 9 {
		t.Fatalf("header: %+v", p)
	}
	if p.Duration != 30*sim.Second {
		t.Fatalf("duration = %v", p.Duration)
	}
	if len(p.Apps) != 3 {
		t.Fatalf("apps = %d", len(p.Apps))
	}
	if p.Apps[0].RSSPages != workload.MemcachedConfig().RSSPages/16 {
		t.Fatalf("preset scaling wrong: %d", p.Apps[0].RSSPages)
	}
	if p.Apps[1].StartAt != sim.Time(10*sim.Second) {
		t.Fatalf("start_at = %v", p.Apps[1].StartAt)
	}
	custom := p.Apps[2]
	if custom.Name != "scanner" || custom.Class != workload.BE || custom.Threads != 2 {
		t.Fatalf("custom app: %+v", custom)
	}
	g := custom.NewGen(100, sim.NewRNG(1))
	if g.Name() != "scan" {
		t.Fatalf("generator = %q", g.Name())
	}
}

func TestLoadedScenarioRuns(t *testing.T) {
	p, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys := system.New(system.Config{
		Machine:          p.Machine,
		Apps:             p.Apps,
		Policy:           figures.NewPolicy(p.Policy),
		Seed:             p.Seed,
		SamplesPerThread: 400,
	})
	sys.Run(5 * sim.Second)
	if len(sys.StartedApps()) == 0 {
		t.Fatal("nothing started")
	}
	if rep := sys.Audit(); !rep.Ok() {
		t.Fatalf("audit failed: %v", rep.Errors)
	}
	r := sys.Report()
	if r.Policy != "memtis" || len(r.Apps) != 3 {
		t.Fatalf("report: %+v", r)
	}
}

func TestMachineOverride(t *testing.T) {
	p, err := Load(strings.NewReader(`{
	  "apps": [{"preset": "memcached"}],
	  "machine": {"cores": 16, "fast_pages": 1234, "slow_pages": 99999}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine.Cores != 16 {
		t.Fatalf("cores = %d", p.Machine.Cores)
	}
	if p.Machine.Tiers[0].CapacityPages != 1234 || p.Machine.Tiers[1].CapacityPages != 99999 {
		t.Fatalf("tier override: %+v", p.Machine.Tiers)
	}
}

func TestDefaults(t *testing.T) {
	p, err := Load(strings.NewReader(`{"apps": [{"preset": "pagerank"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != "vulcan" || p.Seed != 1 || p.Duration != 120*sim.Second {
		t.Fatalf("defaults: %+v", p)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":           `{`,
		"unknown field":     `{"bogus": 1, "apps":[{"preset":"memcached"}]}`,
		"no apps":           `{"policy":"tpp"}`,
		"bad preset":        `{"apps":[{"preset":"redis"}]}`,
		"custom no name":    `{"apps":[{"generator":"zipf","rss_pages":10}]}`,
		"bad class":         `{"apps":[{"name":"x","class":"MEDIUM","rss_pages":10}]}`,
		"bad generator":     `{"apps":[{"name":"x","rss_pages":10,"generator":"lru"}]}`,
		"micro without wss": `{"apps":[{"name":"x","rss_pages":10,"generator":"micro"}]}`,

		"unknown fault field":      `{"apps":[{"preset":"memcached"}],"faults":{"kind":"pebs"}}`,
		"unknown fault profile":    `{"apps":[{"preset":"memcached"}],"faults":{"profile":"apocalyptic"}}`,
		"fault rate over 1":        `{"apps":[{"preset":"memcached"}],"faults":{"rate":1.5}}`,
		"negative fault rate":      `{"apps":[{"preset":"memcached"}],"faults":{"rate":-0.1}}`,
		"profile and rate":         `{"apps":[{"preset":"memcached"}],"faults":{"profile":"light","rate":0.05}}`,
		"fault seed doing nothing": `{"apps":[{"preset":"memcached"}],"faults":{"seed":7}}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFaultsBlock(t *testing.T) {
	p, err := Load(strings.NewReader(
		`{"apps":[{"preset":"memcached"}],"faults":{"profile":"moderate","seed":42}}`))
	if err != nil {
		t.Fatal(err)
	}
	want := fault.PlanAtRate(0.05)
	want.Seed = 42
	if p.Faults == nil {
		t.Fatal("moderate profile compiled to nil plan")
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("plan = %+v, want %+v", p.Faults, want)
	}

	p, err = Load(strings.NewReader(
		`{"apps":[{"preset":"memcached"}],"faults":{"rate":0.07}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Faults, fault.PlanAtRate(0.07)) {
		t.Fatalf("rate plan = %+v", p.Faults)
	}

	// "off", zero rate, and an absent block are all chaos-free.
	for _, js := range []string{
		`{"apps":[{"preset":"memcached"}]}`,
		`{"apps":[{"preset":"memcached"}],"faults":{"profile":"off"}}`,
		`{"apps":[{"preset":"memcached"}],"faults":{"rate":0}}`,
	} {
		p, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatalf("%s: %v", js, err)
		}
		if p.Faults != nil {
			t.Fatalf("%s: compiled to %+v, want nil", js, p.Faults)
		}
	}
}

// TestFaultsRoundTrip runs a faulted JSON scenario and requires the same
// bytes as the directly-constructed equivalent plan — the block is pure
// sugar over fault.PlanAtRate.
func TestFaultsRoundTrip(t *testing.T) {
	js := `{
	  "policy": "vulcan", "seconds": 5, "seed": 3, "scale": 32,
	  "apps": [{"preset": "memcached"}],
	  "faults": {"rate": 0.1, "seed": 11}
	}`
	run := func(plan *fault.Plan) []byte {
		p, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		if plan != nil {
			p.Faults = plan
		}
		sys := system.New(system.Config{
			Machine:          p.Machine,
			Apps:             p.Apps,
			Policy:           figures.NewPolicy(p.Policy),
			Seed:             p.Seed,
			SamplesPerThread: 400,
			Faults:           p.Faults,
		})
		sys.Run(p.Duration)
		var buf bytes.Buffer
		if err := sys.Report().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := sys.Recorder().WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	direct := fault.PlanAtRate(0.1)
	direct.Seed = 11
	a, b := run(nil), run(direct)
	if !bytes.Equal(a, b) {
		t.Fatal("JSON faults block diverged from the equivalent direct plan")
	}
}

func TestPremapFractionPlumbing(t *testing.T) {
	p, err := Load(strings.NewReader(
		`{"apps":[{"preset":"memcached","premap_fraction":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Apps[0].PremapFraction != 0.5 {
		t.Fatalf("premap fraction = %v", p.Apps[0].PremapFraction)
	}
}

func TestAllGeneratorKinds(t *testing.T) {
	for _, kind := range []string{"zipf", "uniform", "scan", "keyvalue", "graph", "mltrain", "webserver", "micro"} {
		js := `{"apps":[{"name":"g","rss_pages":2000,"generator":"` + kind + `","wss_pages":100}]}`
		p, err := Load(strings.NewReader(js))
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		g := p.Apps[0].NewGen(1000, sim.NewRNG(2))
		for i := 0; i < 100; i++ {
			if r := g.Next(); r.Page < 0 || r.Page >= 1000 {
				t.Errorf("%s: page %d out of range", kind, r.Page)
				break
			}
		}
	}
}

const fleetJSON = `{
  "seconds": 8,
  "seed": 5,
  "scale": 16,
  "apps": [
    {"preset": "memcached"},
    {"preset": "liblinear", "start_at_s": 2, "stop_at_s": 6},
    {"name": "scanner", "class": "BE", "threads": 2, "rss_pages": 200,
     "generator": "scan", "compute_ns": 60, "start_at_s": 1}
  ],
  "fleet": {"hosts": 3, "scheduler": "fairness", "rebalance_every": 4,
            "move_budget": 2, "overrides": [{"host": 1, "fast_pages": 64}]}
}`

func TestFleetBlock(t *testing.T) {
	p, err := Load(strings.NewReader(fleetJSON))
	if err != nil {
		t.Fatal(err)
	}
	fp := p.Fleet
	if fp == nil {
		t.Fatal("fleet block compiled to nil plan")
	}
	if fp.Hosts != 3 || fp.Scheduler != "fairness" || fp.RebalanceEvery != 4 || fp.MoveBudget != 2 {
		t.Fatalf("plan header: %+v", fp)
	}
	if len(fp.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(fp.Jobs))
	}
	j := fp.Jobs[1]
	if j.Arrive != 2 || j.Depart != 6 {
		t.Fatalf("job 1 window = [%d,%d)", j.Arrive, j.Depart)
	}
	if j.App.StartAt != 0 {
		t.Fatalf("job StartAt = %v, want 0 (arrival epoch drives placement)", j.App.StartAt)
	}
	if len(fp.Overrides) != 1 || fp.Overrides[0].Host != 1 || fp.Overrides[0].FastPages != 64 {
		t.Fatalf("overrides: %+v", fp.Overrides)
	}

	// Scheduler defaults to binpack; absent block means single-machine.
	p2, err := Load(strings.NewReader(
		`{"apps":[{"preset":"memcached"}],"fleet":{"hosts":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fleet.Scheduler != "binpack" {
		t.Fatalf("default scheduler = %q", p2.Fleet.Scheduler)
	}
	p3, err := Load(strings.NewReader(`{"apps":[{"preset":"memcached"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p3.Fleet != nil {
		t.Fatalf("absent fleet block compiled to %+v", p3.Fleet)
	}
}

func TestFleetErrors(t *testing.T) {
	fleet := func(block string) string {
		return `{"apps":[{"preset":"memcached"}],"fleet":` + block + `}`
	}
	cases := map[string]string{
		"zero hosts":          fleet(`{"hosts":0}`),
		"unknown scheduler":   fleet(`{"hosts":2,"scheduler":"roundrobin"}`),
		"unknown fleet field": fleet(`{"hosts":2,"spread":true}`),
		"negative cadence":    fleet(`{"hosts":2,"rebalance_every":-1}`),
		"negative budget":     fleet(`{"hosts":2,"move_budget":-1}`),
		"override oob":        fleet(`{"hosts":2,"overrides":[{"host":2,"fast_pages":64}]}`),
		"override negative":   fleet(`{"hosts":2,"overrides":[{"host":0,"fast_pages":64}]}`),
		"override empty":      fleet(`{"hosts":2,"overrides":[{"host":0}]}`),
		"override duplicate": fleet(
			`{"hosts":2,"overrides":[{"host":0,"cores":4},{"host":0,"fast_pages":64}]}`),
		"duplicate job name": `{"apps":[{"preset":"memcached"},{"preset":"memcached"}],` +
			`"fleet":{"hosts":2}}`,
		"stop without fleet": `{"apps":[{"preset":"memcached","stop_at_s":5}]}`,
		"stop before start": `{"apps":[{"preset":"memcached","start_at_s":4,"stop_at_s":3}],` +
			`"fleet":{"hosts":2}}`,
	}
	cases["override negative"] = fleet(`{"hosts":2,"overrides":[{"host":0,"fast_pages":-64}]}`)
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFleetScenarioRuns drives a cluster straight from a parsed fleet
// scenario and checks the override hook and job windows took effect.
func TestFleetScenarioRuns(t *testing.T) {
	p, err := Load(strings.NewReader(fleetJSON))
	if err != nil {
		t.Fatal(err)
	}
	newPol := func() system.Tiering { return figures.NewPolicy("vulcan") }
	cfg := p.Fleet.ClusterConfig(p, newPol, 10*sim.Millisecond, 1)
	cfg.Workers = 2
	f, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Run(8); err != nil {
		t.Fatal(err)
	}
	r := f.Report()
	if r.Placed != 2 || r.Departed != 1 {
		t.Fatalf("placed=%d departed=%d, want 2/1", r.Placed, r.Departed)
	}
	fast := f.Host(1).Sys.Tiers().Fast().Capacity()
	if fast != 64 {
		t.Fatalf("host 1 fast capacity = %d, want override 64", fast)
	}
	for h := 0; h < f.NumHosts(); h++ {
		if audit := f.Host(h).Sys.Audit(); !audit.Ok() {
			t.Errorf("host %d audit: %v", h, audit.Errors)
		}
	}
}
