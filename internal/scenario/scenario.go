// Package scenario loads co-location experiments from JSON files, so
// experiments can be defined, shared and versioned without writing Go.
//
// Example:
//
//	{
//	  "policy": "vulcan",
//	  "seconds": 120,
//	  "seed": 7,
//	  "scale": 4,
//	  "apps": [
//	    {"preset": "memcached", "start_at_s": 0},
//	    {"preset": "liblinear", "start_at_s": 50},
//	    {"name": "custom-scan", "class": "BE", "threads": 4,
//	     "rss_pages": 20000, "generator": "zipf", "zipf_skew": 0.9,
//	     "write_frac": 0.2, "compute_ns": 80}
//	  ],
//	  "faults": {"profile": "moderate", "seed": 42}
//	}
//
// The optional faults block compiles to a fault.Plan: name a canned
// profile ("off", "light", "moderate", "heavy") or give an explicit
// "rate" for the canonical all-kinds plan; "seed" re-keys the fault
// schedule without touching workload randomness.
//
// The optional fleet block turns the scenario into a multi-host run:
//
//	"fleet": {"hosts": 4, "scheduler": "fairness", "rebalance_every": 5,
//	          "move_budget": 2, "overrides": [{"host": 0, "fast_pages": 64}]}
//
// Each app becomes one fleet job; start_at_s is its arrival epoch and
// stop_at_s (fleet-only) its departure epoch. Every host is a copy of
// the scenario machine unless an override reshapes it.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"vulcan/internal/cluster"
	"vulcan/internal/fault"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// File is the JSON schema of a scenario.
type File struct {
	Policy  string `json:"policy"`
	Seconds int    `json:"seconds"`
	Seed    uint64 `json:"seed"`
	// Scale divides the default machine and preset footprints.
	Scale int   `json:"scale"`
	Apps  []App `json:"apps"`
	// Machine optionally overrides the default host.
	Machine *Machine `json:"machine,omitempty"`
	// Faults optionally arms deterministic fault injection.
	Faults *Faults `json:"faults,omitempty"`
	// Fleet optionally spreads the apps across a multi-host cluster.
	Fleet *Fleet `json:"fleet,omitempty"`
	// Arrivals optionally arms deterministic job churn on a dynamic
	// single-host run.
	Arrivals *Arrivals `json:"arrivals,omitempty"`
}

// Arrivals describes a deterministic arrival process: generated app
// instances stamped from a template, admitted either by a Poisson
// process ("rate_per_epoch") or an explicit schedule, each departing
// after its drawn lifetime. Compiles to a workload.ArrivalSpec:
//
//	"arrivals": {"rate_per_epoch": 0.2, "seed": 9,
//	             "lifetime_min_epochs": 10, "lifetime_max_epochs": 40,
//	             "max_live": 3,
//	             "template": {"name": "churn", "class": "BE", "threads": 1,
//	                          "rss_pages": 4096, "generator": "uniform"}}
type Arrivals struct {
	// RatePerEpoch is the Poisson mean; mutually exclusive with Schedule.
	RatePerEpoch float64 `json:"rate_per_epoch,omitempty"`
	// Seed re-keys the arrival stream; 0 derives it from the scenario
	// seed.
	Seed uint64 `json:"seed,omitempty"`
	// Template is the per-instance app; instance i is admitted as
	// "<name>-a<i>". start_at_s/stop_at_s must stay unset — the process
	// decides both.
	Template App `json:"template"`
	// LifetimeMinEpochs/LifetimeMaxEpochs bound the uniform lifetime
	// draw; max 0 runs instances to the end of the scenario.
	LifetimeMinEpochs int `json:"lifetime_min_epochs,omitempty"`
	LifetimeMaxEpochs int `json:"lifetime_max_epochs,omitempty"`
	// MaxLive caps concurrently live generated instances (0 = unbounded).
	MaxLive int `json:"max_live,omitempty"`
	// Schedule replaces the Poisson process with an explicit trace.
	Schedule []ArrivalEntry `json:"schedule,omitempty"`
}

// ArrivalEntry is one explicit scheduled arrival.
type ArrivalEntry struct {
	Epoch          int `json:"epoch"`
	LifetimeEpochs int `json:"lifetime_epochs,omitempty"`
}

// Fleet spreads the scenario's apps over a cluster of identical hosts
// (each shaped by the scenario machine) under a placement scheduler.
// Apps become fleet jobs: start_at_s is the arrival epoch and the
// optional stop_at_s the departure epoch (fleet epochs are one second).
type Fleet struct {
	Hosts          int    `json:"hosts"`
	Scheduler      string `json:"scheduler,omitempty"`
	RebalanceEvery int    `json:"rebalance_every,omitempty"`
	MoveBudget     int    `json:"move_budget,omitempty"`
	// Overrides tweak individual hosts away from the shared template.
	Overrides []HostOverride `json:"overrides,omitempty"`
}

// HostOverride reshapes one host of the fleet.
type HostOverride struct {
	Host      int `json:"host"`
	Cores     int `json:"cores,omitempty"`
	FastPages int `json:"fast_pages,omitempty"`
	SlowPages int `json:"slow_pages,omitempty"`
}

// Faults selects a fault plan: either a named profile (off, light,
// moderate, heavy) or an explicit rate for the canonical all-kinds
// plan, but not both. Seed re-keys the fault schedule independently of
// the scenario seed.
type Faults struct {
	Profile string  `json:"profile,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// Machine overrides host parameters.
type Machine struct {
	Cores     int `json:"cores,omitempty"`
	FastPages int `json:"fast_pages,omitempty"`
	SlowPages int `json:"slow_pages,omitempty"`
}

// App describes one application: either a named preset (memcached,
// pagerank, liblinear) or a custom generator spec.
type App struct {
	Preset   string `json:"preset,omitempty"`
	StartAtS int    `json:"start_at_s,omitempty"`
	// StopAtS departs the app at that second; fleet scenarios only.
	StopAtS int `json:"stop_at_s,omitempty"`

	// Custom-app fields (ignored when Preset is set).
	Name      string  `json:"name,omitempty"`
	Class     string  `json:"class,omitempty"` // "LC" or "BE"
	Threads   int     `json:"threads,omitempty"`
	RSSPages  int     `json:"rss_pages,omitempty"`
	Shared    float64 `json:"shared_fraction,omitempty"`
	ComputeNs int     `json:"compute_ns,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	Generator string  `json:"generator,omitempty"` // zipf|uniform|scan|keyvalue|graph|mltrain|webserver|micro
	ZipfSkew  float64 `json:"zipf_skew,omitempty"`
	WriteFrac float64 `json:"write_frac,omitempty"`
	LLCHit    float64 `json:"llc_hit,omitempty"`
	WSSPages  int     `json:"wss_pages,omitempty"`
	// PremapFraction < 1 makes the resident set grow at runtime.
	PremapFraction float64 `json:"premap_fraction,omitempty"`
}

// Parsed is a fully resolved scenario ready to run.
type Parsed struct {
	Policy   string
	Duration sim.Duration
	Seed     uint64
	// Scale is the effective capacity divisor after defaulting; runtime
	// admissions (the serving daemon's control API) resolve their app
	// specs against it so a late admit scales exactly like a configured
	// one.
	Scale   int
	Machine machine.Config
	Apps    []workload.AppConfig
	// Faults is the compiled fault plan, nil when the scenario runs
	// chaos-free.
	Faults *fault.Plan
	// Fleet is the resolved multi-host plan, nil for single-machine
	// runs. When set, Jobs supersedes Apps: each scenario app becomes
	// one fleet job with its arrival/departure epochs.
	Fleet *FleetPlan
	// Arrivals is the resolved churn process, nil for static runs. The
	// runner expands it with Plan(epochs) and admits/stops instances at
	// epoch boundaries; the system must run with AllowDynamic.
	Arrivals *workload.ArrivalSpec
}

// FleetPlan is the resolved form of the fleet block.
type FleetPlan struct {
	Hosts          int
	Scheduler      string
	RebalanceEvery int
	MoveBudget     int
	Overrides      []HostOverride
	Jobs           []cluster.JobSpec
}

// Load reads and resolves a scenario from JSON.
func Load(r io.Reader) (*Parsed, error) {
	f, err := LoadFile(r)
	if err != nil {
		return nil, err
	}
	return Resolve(f)
}

// LoadFile reads the raw JSON schema without resolving it — for callers
// that persist the scenario as written (the serve journal header) and
// resolve later.
func LoadFile(r io.Reader) (File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("scenario: %w", err)
	}
	return f, nil
}

// Resolve turns the JSON schema into runnable configuration.
func Resolve(f File) (*Parsed, error) {
	if f.Policy == "" {
		f.Policy = "vulcan"
	}
	if f.Seconds <= 0 {
		f.Seconds = 120
	}
	if f.Seed == 0 {
		f.Seed = 1
	}
	if f.Scale < 1 {
		f.Scale = 1
	}
	if len(f.Apps) == 0 {
		return nil, fmt.Errorf("scenario: no apps")
	}

	mcfg := machine.DefaultConfig()
	mcfg.Tiers[mem.TierFast].CapacityPages /= f.Scale
	mcfg.Tiers[mem.TierSlow].CapacityPages /= f.Scale
	if f.Machine != nil {
		if f.Machine.Cores > 0 {
			mcfg.Cores = f.Machine.Cores
		}
		if f.Machine.FastPages > 0 {
			mcfg.Tiers[mem.TierFast].CapacityPages = f.Machine.FastPages
		}
		if f.Machine.SlowPages > 0 {
			mcfg.Tiers[mem.TierSlow].CapacityPages = f.Machine.SlowPages
		}
	}

	p := &Parsed{
		Policy:   f.Policy,
		Duration: sim.Duration(f.Seconds) * sim.Second,
		Seed:     f.Seed,
		Scale:    f.Scale,
		Machine:  mcfg,
	}
	for i, a := range f.Apps {
		cfg, err := resolveApp(a, f.Scale)
		if err != nil {
			return nil, fmt.Errorf("scenario: app %d: %w", i, err)
		}
		if a.StopAtS != 0 {
			if f.Fleet == nil {
				return nil, fmt.Errorf("scenario: app %d: stop_at_s needs a fleet block", i)
			}
			if a.StopAtS <= a.StartAtS {
				return nil, fmt.Errorf("scenario: app %d: stop_at_s %d not after start_at_s %d", i, a.StopAtS, a.StartAtS)
			}
		}
		p.Apps = append(p.Apps, cfg)
	}
	plan, err := resolveFaults(f.Faults)
	if err != nil {
		return nil, err
	}
	p.Faults = plan
	fp, err := resolveFleet(f.Fleet, f.Apps, p.Apps)
	if err != nil {
		return nil, err
	}
	p.Fleet = fp
	spec, err := resolveArrivals(f.Arrivals, f)
	if err != nil {
		return nil, err
	}
	p.Arrivals = spec
	return p, nil
}

// resolveArrivals compiles the arrivals block to a workload.ArrivalSpec.
func resolveArrivals(ab *Arrivals, f File) (*workload.ArrivalSpec, error) {
	if ab == nil {
		return nil, nil
	}
	if f.Fleet != nil {
		return nil, fmt.Errorf("scenario: arrivals and fleet blocks are mutually exclusive")
	}
	if ab.RatePerEpoch < 0 {
		return nil, fmt.Errorf("scenario: arrivals rate_per_epoch %g is negative", ab.RatePerEpoch)
	}
	if ab.RatePerEpoch > 0 && len(ab.Schedule) > 0 {
		return nil, fmt.Errorf("scenario: arrivals rate_per_epoch and schedule are mutually exclusive")
	}
	if ab.RatePerEpoch == 0 && len(ab.Schedule) == 0 {
		return nil, fmt.Errorf("scenario: arrivals block needs rate_per_epoch or a schedule")
	}
	if ab.LifetimeMinEpochs < 0 || ab.LifetimeMaxEpochs < 0 ||
		(ab.LifetimeMaxEpochs > 0 && ab.LifetimeMinEpochs > ab.LifetimeMaxEpochs) {
		return nil, fmt.Errorf("scenario: arrivals lifetime range [%d, %d] is malformed",
			ab.LifetimeMinEpochs, ab.LifetimeMaxEpochs)
	}
	if ab.MaxLive < 0 {
		return nil, fmt.Errorf("scenario: arrivals max_live %d is negative", ab.MaxLive)
	}
	if ab.Template.StartAtS != 0 || ab.Template.StopAtS != 0 {
		return nil, fmt.Errorf("scenario: arrivals template must not set start_at_s/stop_at_s; the process decides both")
	}
	tmpl, err := resolveApp(ab.Template, f.Scale)
	if err != nil {
		return nil, fmt.Errorf("scenario: arrivals template: %w", err)
	}
	for _, a := range f.Apps {
		if name := a.Name; (name != "" && name == tmpl.Name) || a.Preset == tmpl.Name {
			return nil, fmt.Errorf("scenario: arrivals template name %q collides with a scenario app", tmpl.Name)
		}
	}
	seed := ab.Seed
	if seed == 0 {
		seed = f.Seed
	}
	spec := &workload.ArrivalSpec{
		Seed:        seed,
		Rate:        ab.RatePerEpoch,
		Template:    tmpl,
		LifetimeMin: ab.LifetimeMinEpochs,
		LifetimeMax: ab.LifetimeMaxEpochs,
		MaxLive:     ab.MaxLive,
	}
	for i, sc := range ab.Schedule {
		if sc.Epoch < 0 || sc.LifetimeEpochs < 0 {
			return nil, fmt.Errorf("scenario: arrivals schedule entry %d is malformed", i)
		}
		spec.Schedule = append(spec.Schedule, workload.ScheduledArrival{
			Epoch: sc.Epoch, Lifetime: sc.LifetimeEpochs,
		})
	}
	return spec, nil
}

// ClusterConfig assembles a runnable fleet configuration: every host is
// a copy of the scenario machine (reshaped by the plan's overrides) that
// runs newPolicy and sees the scenario's fault plan. The caller supplies
// the policy factory and epoch shape because those are runner choices,
// not scenario content.
func (fp *FleetPlan) ClusterConfig(p *Parsed, newPolicy func() system.Tiering,
	epoch sim.Duration, samples int) cluster.Config {
	overrides := fp.Overrides
	faults := p.Faults
	return cluster.Config{
		Hosts: fp.Hosts,
		Host: cluster.HostTemplate{
			Machine:          p.Machine,
			NewPolicy:        newPolicy,
			EpochLength:      epoch,
			SamplesPerThread: samples,
		},
		HostOverride: func(h int, cfg *system.Config) {
			cfg.Faults = faults
			for _, ov := range overrides {
				if ov.Host != h {
					continue
				}
				if ov.Cores > 0 {
					cfg.Machine.Cores = ov.Cores
				}
				if ov.FastPages > 0 {
					cfg.Machine.Tiers[mem.TierFast].CapacityPages = ov.FastPages
				}
				if ov.SlowPages > 0 {
					cfg.Machine.Tiers[mem.TierSlow].CapacityPages = ov.SlowPages
				}
			}
		},
		Scheduler:      fp.Scheduler,
		Jobs:           fp.Jobs,
		RebalanceEvery: fp.RebalanceEvery,
		MoveBudget:     fp.MoveBudget,
		Seed:           p.Seed,
	}
}

// resolveFleet compiles the fleet block into a placement plan. The
// scenario's apps become the job list; arrival and departure epochs
// come from start_at_s / stop_at_s (fleet epochs are one second).
func resolveFleet(fb *Fleet, src []App, apps []workload.AppConfig) (*FleetPlan, error) {
	if fb == nil {
		return nil, nil
	}
	if fb.Hosts < 1 {
		return nil, fmt.Errorf("scenario: fleet needs at least one host, got %d", fb.Hosts)
	}
	sched := fb.Scheduler
	if sched == "" {
		sched = "binpack"
	}
	if _, err := cluster.NewScheduler(sched); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if fb.RebalanceEvery < 0 {
		return nil, fmt.Errorf("scenario: fleet rebalance_every %d is negative", fb.RebalanceEvery)
	}
	if fb.MoveBudget < 0 {
		return nil, fmt.Errorf("scenario: fleet move_budget %d is negative", fb.MoveBudget)
	}
	seen := make(map[int]bool)
	for _, ov := range fb.Overrides {
		if ov.Host < 0 || ov.Host >= fb.Hosts {
			return nil, fmt.Errorf("scenario: fleet override host %d outside [0,%d)", ov.Host, fb.Hosts)
		}
		if seen[ov.Host] {
			return nil, fmt.Errorf("scenario: duplicate fleet override for host %d", ov.Host)
		}
		seen[ov.Host] = true
		if ov.Cores < 0 || ov.FastPages < 0 || ov.SlowPages < 0 {
			return nil, fmt.Errorf("scenario: fleet override for host %d has negative capacity", ov.Host)
		}
		if ov.Cores == 0 && ov.FastPages == 0 && ov.SlowPages == 0 {
			return nil, fmt.Errorf("scenario: fleet override for host %d changes nothing", ov.Host)
		}
	}
	names := make(map[string]bool)
	fp := &FleetPlan{
		Hosts:          fb.Hosts,
		Scheduler:      sched,
		RebalanceEvery: fb.RebalanceEvery,
		MoveBudget:     fb.MoveBudget,
		Overrides:      fb.Overrides,
	}
	for i, cfg := range apps {
		if names[cfg.Name] {
			return nil, fmt.Errorf("scenario: fleet job %d: duplicate app name %q", i, cfg.Name)
		}
		names[cfg.Name] = true
		job := cluster.JobSpec{App: cfg, Arrive: src[i].StartAtS, Depart: src[i].StopAtS}
		job.App.StartAt = 0 // arrival epoch drives placement instead
		fp.Jobs = append(fp.Jobs, job)
	}
	return fp, nil
}

// resolveFaults compiles the faults block to a fault plan. A nil block,
// the "off" profile, and a zero rate all mean chaos-free.
func resolveFaults(f *Faults) (*fault.Plan, error) {
	if f == nil {
		return nil, nil
	}
	if f.Rate < 0 || f.Rate > 1 {
		return nil, fmt.Errorf("scenario: faults rate %v outside [0,1]", f.Rate)
	}
	var plan *fault.Plan
	if f.Rate > 0 {
		if f.Profile != "" && f.Profile != "off" {
			return nil, fmt.Errorf("scenario: faults profile %q and rate %v are mutually exclusive", f.Profile, f.Rate)
		}
		plan = fault.PlanAtRate(f.Rate)
	} else {
		var err error
		if plan, err = fault.ParseProfile(f.Profile); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	if f.Seed != 0 {
		if plan == nil {
			return nil, fmt.Errorf("scenario: faults seed %d without a profile or rate has no effect", f.Seed)
		}
		plan.Seed = f.Seed
	}
	return plan, nil
}

// ResolveApp resolves one app spec exactly as Resolve does for the
// scenario's own apps (presets expanded, custom generators built,
// preset footprints divided by scale). The serving daemon uses it to
// turn journaled admit commands back into runnable configs.
func ResolveApp(a App, scale int) (workload.AppConfig, error) {
	if scale < 1 {
		scale = 1
	}
	return resolveApp(a, scale)
}

func resolveApp(a App, scale int) (workload.AppConfig, error) {
	var cfg workload.AppConfig
	switch a.Preset {
	case "memcached":
		cfg = workload.MemcachedConfig()
	case "pagerank":
		cfg = workload.PageRankConfig()
	case "liblinear":
		cfg = workload.LiblinearConfig()
	case "":
		custom, err := resolveCustom(a)
		if err != nil {
			return cfg, err
		}
		cfg = custom
	default:
		return cfg, fmt.Errorf("unknown preset %q", a.Preset)
	}
	if a.Preset != "" {
		cfg.RSSPages /= scale
	}
	cfg.StartAt = sim.Time(a.StartAtS) * sim.Time(sim.Second)
	if a.PremapFraction != 0 {
		cfg.PremapFraction = a.PremapFraction
	}
	return cfg, nil
}

func resolveCustom(a App) (workload.AppConfig, error) {
	var cfg workload.AppConfig
	if a.Name == "" {
		return cfg, fmt.Errorf("custom app needs a name")
	}
	class := workload.BE
	switch a.Class {
	case "LC":
		class = workload.LC
	case "BE", "":
	default:
		return cfg, fmt.Errorf("unknown class %q", a.Class)
	}
	threads := a.Threads
	if threads == 0 {
		threads = 4
	}
	shared := a.Shared
	if shared == 0 {
		shared = 0.9
	}
	llc := a.LLCHit
	if llc == 0 {
		llc = 0.1
	}
	skew := a.ZipfSkew
	if skew == 0 {
		skew = 0.99
	}
	gen, err := generatorFactory(a.Generator, skew, a.WriteFrac, llc, a.WSSPages)
	if err != nil {
		return cfg, err
	}
	cfg = workload.AppConfig{
		Name:           a.Name,
		Class:          class,
		Threads:        threads,
		RSSPages:       a.RSSPages,
		SharedFraction: shared,
		ComputeNs:      sim.Duration(a.ComputeNs) * sim.Nanosecond,
		OpsPerSec:      a.OpsPerSec,
		NewGen:         gen,
	}
	cfg.Validate()
	return cfg, nil
}

func generatorFactory(kind string, skew, writeFrac, llc float64, wss int) (workload.GenFactory, error) {
	switch kind {
	case "zipf", "":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewZipfian(p, skew, writeFrac, llc, rng)
		}, nil
	case "uniform":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewUniform(p, writeFrac, llc, rng)
		}, nil
	case "scan":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewScan(p, writeFrac, llc, rng)
		}, nil
	case "keyvalue":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewKeyValue(p, workload.KeyValueParams{}, rng)
		}, nil
	case "graph":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewGraphWalk(p, rng)
		}, nil
	case "mltrain":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewMLTrain(p, rng)
		}, nil
	case "webserver":
		return func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewWebServer(p, rng)
		}, nil
	case "micro":
		if wss <= 0 {
			return nil, fmt.Errorf("micro generator needs wss_pages")
		}
		return func(p int, rng *sim.RNG) workload.Generator {
			w := wss
			if w > p {
				w = p
			}
			return workload.NewNomadMicro(p, w, writeFrac, rng)
		}, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}
