package scenario

import (
	"strings"
	"testing"
)

const arrivalsJSON = `{
  "policy": "vulcan",
  "seconds": 40,
  "seed": 5,
  "apps": [{"preset": "memcached"}],
  "arrivals": {"rate_per_epoch": 0.3, "seed": 11,
               "lifetime_min_epochs": 4, "lifetime_max_epochs": 12,
               "max_live": 2,
               "template": {"name": "churn", "class": "BE", "threads": 1,
                            "rss_pages": 4096, "generator": "uniform"}}
}`

// TestArrivalsBlock: the block compiles to a workload.ArrivalSpec with
// every knob plumbed through.
func TestArrivalsBlock(t *testing.T) {
	p, err := Load(strings.NewReader(arrivalsJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Arrivals
	if spec == nil {
		t.Fatal("arrivals block dropped")
	}
	if spec.Seed != 11 || spec.Rate != 0.3 || spec.MaxLive != 2 ||
		spec.LifetimeMin != 4 || spec.LifetimeMax != 12 {
		t.Fatalf("spec knobs: %+v", spec)
	}
	if spec.Template.Name != "churn" || spec.Template.Threads != 1 {
		t.Fatalf("template: %+v", spec.Template)
	}
	// The spec expands (Validate passes and the plan is non-trivial).
	if plan := spec.Plan(400); len(plan) == 0 {
		t.Fatal("resolved spec expands to an empty plan")
	}
}

// TestArrivalsSeedDefaultsToScenario: an unset arrivals seed follows the
// scenario seed.
func TestArrivalsSeedDefaultsToScenario(t *testing.T) {
	js := `{"seed": 21, "apps": [{"preset": "memcached"}],
	        "arrivals": {"schedule": [{"epoch": 3, "lifetime_epochs": 5}],
	                     "template": {"name": "churn", "rss_pages": 1000}}}`
	p, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if p.Arrivals.Seed != 21 {
		t.Fatalf("seed = %d, want the scenario seed 21", p.Arrivals.Seed)
	}
	if len(p.Arrivals.Schedule) != 1 || p.Arrivals.Schedule[0].Epoch != 3 ||
		p.Arrivals.Schedule[0].Lifetime != 5 {
		t.Fatalf("schedule: %+v", p.Arrivals.Schedule)
	}
}

// TestArrivalsErrors: malformed arrivals blocks are rejected.
func TestArrivalsErrors(t *testing.T) {
	app := `"apps": [{"preset": "memcached"}]`
	tmpl := `"template": {"name": "churn", "rss_pages": 1000}`
	cases := map[string]string{
		"rate and schedule": `{` + app + `, "arrivals": {"rate_per_epoch": 1,
			"schedule": [{"epoch": 1}], ` + tmpl + `}}`,
		"neither rate nor schedule": `{` + app + `, "arrivals": {` + tmpl + `}}`,
		"negative rate":             `{` + app + `, "arrivals": {"rate_per_epoch": -1, ` + tmpl + `}}`,
		"bad lifetime range": `{` + app + `, "arrivals": {"rate_per_epoch": 1,
			"lifetime_min_epochs": 9, "lifetime_max_epochs": 2, ` + tmpl + `}}`,
		"negative max_live": `{` + app + `, "arrivals": {"rate_per_epoch": 1, "max_live": -1, ` + tmpl + `}}`,
		"template with start": `{` + app + `, "arrivals": {"rate_per_epoch": 1,
			"template": {"name": "churn", "rss_pages": 1000, "start_at_s": 5}}}`,
		"template name collision": `{"apps": [{"preset": "memcached"}],
			"arrivals": {"rate_per_epoch": 1, "template": {"preset": "memcached"}}}`,
		"template without name": `{` + app + `, "arrivals": {"rate_per_epoch": 1,
			"template": {"rss_pages": 1000}}}`,
		"negative schedule epoch": `{` + app + `, "arrivals": {
			"schedule": [{"epoch": -2}], ` + tmpl + `}}`,
		"arrivals with fleet": `{` + app + `, "fleet": {"hosts": 2},
			"arrivals": {"rate_per_epoch": 1, ` + tmpl + `}}`,
	}
	for name, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
