package migrate

import (
	"vulcan/internal/obs"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// RetryConfig parameterizes a Retrier. Zero knobs select the defaults
// of fault.Plan (budget 128 pages/epoch, 4 attempts, backoff 1..8
// epochs).
type RetryConfig struct {
	Engine *Engine
	// Budget caps pages retried per epoch.
	Budget int
	// MaxAttempts bounds retries per page before giving up.
	MaxAttempts int
	// BackoffBase is the initial retry delay in epochs; each further
	// failure doubles it, capped at BackoffCap.
	BackoffBase int
	BackoffCap  int
}

// RetryStats accumulates a Retrier's lifetime totals.
type RetryStats struct {
	Noted     uint64 // busy pages handed to the retrier
	Retried   uint64 // retry attempts issued
	Recovered uint64 // pages eventually migrated (or resolved)
	GaveUp    uint64 // pages abandoned after exhausting attempts
	Cycles    float64
}

// RetryEpoch reports one RunEpoch pass.
type RetryEpoch struct {
	Retried   int // pages re-submitted this epoch
	Recovered int // of those, completed (moved/remapped/resolved)
	StillBusy int // failed again, rescheduled with backoff
	GaveUp    int // abandoned (attempts exhausted or unmigratable)
	Pending   int // pages still queued after the pass
	Cycles    float64
}

// retryEntry is one transiently-failed migration awaiting retry.
type retryEntry struct {
	mv       Move
	attempts int
	due      uint64 // first epoch the retry is eligible
}

// Retrier is the resilience answer to Busy outcomes: a bounded,
// backoff-scheduled retry queue in front of an Engine. The pending list
// is insertion-ordered (never a map walk), attempts are bounded, and
// each epoch's resubmission batch is capped by a budget — so a fault
// storm degrades throughput instead of looping forever. Wire NoteBusy
// as the engine's OnBusy callback and call RunEpoch once per system
// epoch.
type Retrier struct {
	cfg     RetryConfig
	now     uint64
	pending []retryEntry
	tracked map[pagetable.VPage]struct{}
	stats   RetryStats

	// Scratch reused across epochs.
	moves []Move       //vulcan:nosnap per-epoch scratch, truncated at the top of RunEpoch
	batch []retryEntry //vulcan:nosnap per-epoch scratch, truncated at the top of RunEpoch
}

// NewRetrier builds a retrier over eng.
func NewRetrier(cfg RetryConfig) *Retrier {
	if cfg.Engine == nil {
		panic("migrate: RetryConfig requires Engine")
	}
	if cfg.Budget == 0 {
		cfg.Budget = 128
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 1
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 8
	}
	return &Retrier{cfg: cfg, tracked: make(map[pagetable.VPage]struct{})}
}

// NoteBusy enqueues a transiently-failed move for retry. Pages already
// tracked are ignored — in particular the retrier's own resubmissions
// that fail again (their rescheduling is handled by RunEpoch from the
// batch outcome, with the attempt count intact).
func (r *Retrier) NoteBusy(mv Move) {
	if _, ok := r.tracked[mv.VP]; ok {
		return
	}
	r.tracked[mv.VP] = struct{}{}
	r.stats.Noted++
	r.pending = append(r.pending, retryEntry{mv: mv, due: r.now + uint64(r.cfg.BackoffBase)})
}

// Pending returns the number of pages queued for retry.
func (r *Retrier) Pending() int { return len(r.pending) }

// Stats returns the lifetime totals.
func (r *Retrier) Stats() RetryStats { return r.stats }

// RunEpoch resubmits due entries (oldest first, up to the budget)
// through the engine and reschedules or abandons the failures. The
// returned cycle cost is the retry batch's full migration cost; the
// caller charges it to the owning app like any other background
// migration work.
func (r *Retrier) RunEpoch(epoch uint64) RetryEpoch {
	r.now = epoch
	if len(r.pending) == 0 {
		return RetryEpoch{}
	}

	// Split pending into this epoch's batch and the remainder. keep
	// reuses the pending backing array: the write index never passes
	// the read index.
	r.moves = r.moves[:0]
	r.batch = r.batch[:0]
	keep := r.pending[:0]
	for _, ent := range r.pending {
		if ent.due <= epoch && len(r.moves) < r.cfg.Budget {
			r.moves = append(r.moves, ent.mv)
			r.batch = append(r.batch, ent)
		} else {
			keep = append(keep, ent)
		}
	}
	r.pending = keep
	if len(r.moves) == 0 {
		return RetryEpoch{Pending: len(r.pending)}
	}

	eng := r.cfg.Engine
	eng.ctx = ctxRetry
	res := eng.MigrateSync(r.moves)
	eng.ctx = ctxSync
	ep := RetryEpoch{Retried: len(r.moves), Cycles: res.Cycles()}
	for i, ent := range r.batch {
		switch res.Outcomes[i] {
		case Busy:
			ent.attempts++
			if ent.attempts >= r.cfg.MaxAttempts {
				delete(r.tracked, ent.mv.VP)
				ep.GaveUp++
				continue
			}
			backoff := r.cfg.BackoffBase << ent.attempts
			if backoff > r.cfg.BackoffCap {
				backoff = r.cfg.BackoffCap
			}
			ent.due = epoch + uint64(backoff)
			r.pending = append(r.pending, ent)
			ep.StillBusy++
		case Moved, Remapped, AlreadyThere:
			// AlreadyThere means the page reached its target some other
			// way (a later policy decision); either way it is resolved.
			delete(r.tracked, ent.mv.VP)
			ep.Recovered++
		default: // NotMapped, NoFrame: no longer migratable — abandon.
			delete(r.tracked, ent.mv.VP)
			ep.GaveUp++
		}
	}
	ep.Pending = len(r.pending)

	r.stats.Retried += uint64(ep.Retried)
	r.stats.Recovered += uint64(ep.Recovered)
	r.stats.GaveUp += uint64(ep.GaveUp)
	r.stats.Cycles += ep.Cycles
	r.emit(ep)
	return ep
}

// emit publishes the epoch's retry telemetry on the engine's sink.
func (r *Retrier) emit(ep RetryEpoch) {
	cfg := r.cfg.Engine.Config()
	if obs.Enabled(cfg.Obs, obs.EvMigrateRetry) {
		cfg.Obs.Event(obs.E(obs.EvMigrateRetry, cfg.Owner, "migrate",
			sim.CyclesToDuration(ep.Cycles),
			obs.F("retried", float64(ep.Retried)),
			obs.F("recovered", float64(ep.Recovered)),
			obs.F("still_busy", float64(ep.StillBusy)),
			obs.F("pending", float64(ep.Pending)),
			obs.F("cycles", ep.Cycles)))
	}
	if ep.GaveUp > 0 && obs.Enabled(cfg.Obs, obs.EvMigrateGiveup) {
		cfg.Obs.Event(obs.E(obs.EvMigrateGiveup, cfg.Owner, "migrate", 0,
			obs.F("pages", float64(ep.GaveUp)),
			obs.F("max_attempts", float64(r.cfg.MaxAttempts))))
	}
}
