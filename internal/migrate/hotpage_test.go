package migrate

import (
	"testing"

	"vulcan/internal/sim"
)

func TestHotPageSyncCommitsAndSpeedsUp(t *testing.T) {
	cfg := DefaultHotPageConfig()
	res := RunHotPageSync(cfg)
	if !res.Committed {
		t.Fatal("sync promotion did not commit")
	}
	if res.CommitAt <= cfg.PromoteAt {
		t.Fatal("commit time not after promotion start")
	}
	// A run with no promotion at all (stays slow) must be slower.
	slowCfg := cfg
	slowCfg.PromoteAt = sim.Time(cfg.Window) * 2 // never triggers
	slow := RunHotPageSync(slowCfg)
	if res.OpsPerSec <= slow.OpsPerSec {
		t.Fatalf("promoted run (%v ops/s) not faster than slow-only (%v)",
			res.OpsPerSec, slow.OpsPerSec)
	}
}

func TestHotPageAsyncWinsWhenReadOnly(t *testing.T) {
	cfg := DefaultHotPageConfig()
	cfg.ReadFraction = 1.0
	async := RunHotPageAsync(cfg)
	syncR := RunHotPageSync(cfg)
	if !async.Committed || async.Aborted {
		t.Fatalf("read-only async did not commit cleanly: %+v", async)
	}
	if async.Retries != 0 {
		t.Fatalf("read-only async retried %d times", async.Retries)
	}
	if async.OpsPerSec <= syncR.OpsPerSec {
		t.Fatalf("async (%v) not faster than sync (%v) for read-only",
			async.OpsPerSec, syncR.OpsPerSec)
	}
}

func TestHotPageSyncWinsWhenWriteHeavy(t *testing.T) {
	cfg := DefaultHotPageConfig()
	cfg.ReadFraction = 0.2
	async := RunHotPageAsync(cfg)
	syncR := RunHotPageSync(cfg)
	if !async.Aborted {
		t.Fatalf("write-heavy async should abort: %+v", async)
	}
	if syncR.OpsPerSec <= async.OpsPerSec {
		t.Fatalf("sync (%v) not faster than async (%v) for write-heavy",
			syncR.OpsPerSec, async.OpsPerSec)
	}
}

func TestHotPageCrossoverExists(t *testing.T) {
	// Somewhere between read-only and write-only the winner flips —
	// Observation #4's "to sync or to async" trade-off.
	cfg := DefaultHotPageConfig()
	asyncWinsSomewhere, syncWinsSomewhere := false, false
	for _, r := range []float64{1.0, 0.9, 0.75, 0.5, 0.25, 0.0} {
		cfg.ReadFraction = r
		a := RunHotPageAsync(cfg)
		s := RunHotPageSync(cfg)
		if a.OpsPerSec > s.OpsPerSec {
			asyncWinsSomewhere = true
		}
		if s.OpsPerSec > a.OpsPerSec {
			syncWinsSomewhere = true
		}
	}
	if !asyncWinsSomewhere || !syncWinsSomewhere {
		t.Fatalf("no crossover: asyncWins=%t syncWins=%t",
			asyncWinsSomewhere, syncWinsSomewhere)
	}
}

func TestHotPageAsyncRetriesAtModerateWrites(t *testing.T) {
	cfg := DefaultHotPageConfig()
	cfg.ReadFraction = 0.9
	res := RunHotPageAsync(cfg)
	if res.Retries == 0 && !res.Aborted && res.Committed {
		// With ~7 accesses per copy window at 10% writes, a clean
		// first-attempt commit is unlikely but possible; accept commits
		// with at least some dirty pressure visible across seeds.
		dirtySeen := false
		for seed := uint64(1); seed <= 10; seed++ {
			c := cfg
			c.Seed = seed
			r := RunHotPageAsync(c)
			if r.Retries > 0 || r.Aborted {
				dirtySeen = true
				break
			}
		}
		if !dirtySeen {
			t.Fatal("no dirty-copy pressure at 10% writes across 10 seeds")
		}
	}
}

func TestHotPageDeterminism(t *testing.T) {
	cfg := DefaultHotPageConfig()
	cfg.ReadFraction = 0.8
	a := RunHotPageAsync(cfg)
	b := RunHotPageAsync(cfg)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
