package migrate

import (
	"fmt"

	"vulcan/internal/checkpoint"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// Snapshot appends the engine's durable state: the batch sequence
// number (the fault-injection coordinate) and the shadow store. The
// scope bitmap, scope lists and staged batch are per-call scratch,
// empty between MigrateSync calls by construction.
func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(e.batchSeq)
	e.shadows.Snapshot(enc)
}

// Restore reads the engine state back in place.
func (e *Engine) Restore(d *checkpoint.Decoder) error {
	e.batchSeq = d.U64()
	return e.shadows.Restore(d)
}

// Snapshot appends the store's shadow frames in ascending page order
// plus the lifetime counters. The dense map iterates ascending by
// construction, so the wire bytes match the previous sorted encoding.
func (s *shadowStore) Snapshot(e *checkpoint.Encoder) {
	e.Int(s.frames.Len())
	s.frames.ForEach(func(vp, w uint64) {
		f := unpackFrame(w)
		e.U64(vp)
		e.U8(uint8(f.Tier))
		e.U32(f.Index)
	})
	e.U64(s.created)
	e.U64(s.consumed)
	e.U64(s.dropped)
}

// Restore reads the store back in place.
func (s *shadowStore) Restore(d *checkpoint.Decoder) error {
	n := d.Length(13)
	if d.Err() != nil {
		return d.Err()
	}
	s.frames.Clear()
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		f := mem.Frame{Tier: mem.TierID(d.U8()), Index: d.U32()}
		if d.Err() != nil {
			return d.Err()
		}
		if f.IsNil() {
			return fmt.Errorf("migrate: shadow for page %d on invalid tier", vp)
		}
		if s.frames.Get(uint64(vp)) != 0 {
			return fmt.Errorf("migrate: duplicate shadow for page %d", vp)
		}
		s.frames.Set(uint64(vp), packFrame(f))
	}
	s.created = d.U64()
	s.consumed = d.U64()
	s.dropped = d.U64()
	return d.Err()
}

// Snapshot appends the migrator's durable state: the pending queue (in
// order), the lifetime stats, and the copy-retry RNG. The queued index
// and commit buffer are derived/scratch.
func (a *AsyncMigrator) Snapshot(e *checkpoint.Encoder) {
	a.cfg.RNG.Snapshot(e)
	e.Int(len(a.pending))
	for _, mv := range a.pending {
		e.U64(uint64(mv.VP))
		e.U8(uint8(mv.To))
	}
	e.U64(a.stats.Enqueued)
	e.U64(a.stats.Moved)
	e.U64(a.stats.Remapped)
	e.U64(a.stats.Retries)
	e.U64(a.stats.Aborted)
	e.U64(a.stats.Failed)
	e.U64(a.stats.Shed)
	e.U64(a.stats.Displaced)
	e.F64(a.stats.CyclesUsed)
	e.Int(a.epochShed)
	e.Int(a.epochDisplaced)
}

// Restore reads the migrator state back in place, rebuilding the
// dedup index from the pending queue.
func (a *AsyncMigrator) Restore(d *checkpoint.Decoder) error {
	if err := a.cfg.RNG.Restore(d); err != nil {
		return err
	}
	n := d.Length(9)
	if d.Err() != nil {
		return d.Err()
	}
	a.pending = a.pending[:0]
	a.queued.Clear()
	for i := 0; i < n; i++ {
		mv := Move{VP: pagetable.VPage(d.U64()), To: mem.TierID(d.U8())}
		if d.Err() != nil {
			return d.Err()
		}
		if !mv.To.Valid() {
			return fmt.Errorf("migrate: pending move to invalid tier %d", mv.To)
		}
		if a.queued.Get(uint64(mv.VP)) != 0 {
			return fmt.Errorf("migrate: duplicate pending move for page %d", mv.VP)
		}
		a.queued.Set(uint64(mv.VP), uint64(len(a.pending))+1)
		a.pending = append(a.pending, mv)
	}
	a.stats.Enqueued = d.U64()
	a.stats.Moved = d.U64()
	a.stats.Remapped = d.U64()
	a.stats.Retries = d.U64()
	a.stats.Aborted = d.U64()
	a.stats.Failed = d.U64()
	a.stats.Shed = d.U64()
	a.stats.Displaced = d.U64()
	a.stats.CyclesUsed = d.F64()
	a.epochShed = d.Int()
	a.epochDisplaced = d.Int()
	return d.Err()
}

// Snapshot appends the retrier's durable state: the epoch counter, the
// pending queue in insertion order (with attempts and due epochs) and
// the lifetime stats. The tracked set is derived from pending.
func (r *Retrier) Snapshot(e *checkpoint.Encoder) {
	e.U64(r.now)
	e.Int(len(r.pending))
	for _, en := range r.pending {
		e.U64(uint64(en.mv.VP))
		e.U8(uint8(en.mv.To))
		e.Int(en.attempts)
		e.U64(en.due)
	}
	e.U64(r.stats.Noted)
	e.U64(r.stats.Retried)
	e.U64(r.stats.Recovered)
	e.U64(r.stats.GaveUp)
	e.F64(r.stats.Cycles)
}

// Restore reads the retrier state back in place.
func (r *Retrier) Restore(d *checkpoint.Decoder) error {
	r.now = d.U64()
	n := d.Length(25)
	if d.Err() != nil {
		return d.Err()
	}
	r.pending = r.pending[:0]
	r.tracked = make(map[pagetable.VPage]struct{}, n)
	for i := 0; i < n; i++ {
		en := retryEntry{
			mv:       Move{VP: pagetable.VPage(d.U64()), To: mem.TierID(d.U8())},
			attempts: d.Int(),
			due:      d.U64(),
		}
		if d.Err() != nil {
			return d.Err()
		}
		if !en.mv.To.Valid() {
			return fmt.Errorf("migrate: retry entry to invalid tier %d", en.mv.To)
		}
		if _, dup := r.tracked[en.mv.VP]; dup {
			return fmt.Errorf("migrate: duplicate retry entry for page %d", en.mv.VP)
		}
		r.tracked[en.mv.VP] = struct{}{}
		r.pending = append(r.pending, en)
	}
	r.stats.Noted = d.U64()
	r.stats.Retried = d.U64()
	r.stats.Recovered = d.U64()
	r.stats.GaveUp = d.U64()
	r.stats.Cycles = d.F64()
	return d.Err()
}
