// Package migrate implements the page-migration mechanism of §2.1: the
// five-step pipeline (kernel trap, PTE lock/unmap, TLB shootdown, content
// copy, PTE remap) with per-phase cycle accounting, synchronous and
// asynchronous execution, transactional (Nomad-style) retry semantics for
// pages written mid-copy, and page shadowing for cheap demotion.
//
// The engine is policy-free: tiering systems (internal/policy and
// internal/core) decide *what* to move; this package models *how much it
// costs* to move it and mutates the page tables, TLBs and frame
// allocators accordingly.
package migrate

import (
	"fmt"
	"math/bits"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/obs"
	"vulcan/internal/obs/prof"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// Mapper is the page-table surface the engine manipulates. Both
// *pagetable.Table and *pagetable.Replicated satisfy it.
type Mapper interface {
	Lookup(vp pagetable.VPage) (pagetable.PTE, bool)
	Update(vp pagetable.VPage, fn func(pagetable.PTE) pagetable.PTE) (pagetable.PTE, bool)
	Unmap(vp pagetable.VPage) (pagetable.PTE, bool)
}

// Scoper is optionally implemented by mappers that can bound the TLB
// shootdown scope of a page (pagetable.Replicated). Without it the engine
// falls back to process-wide shootdowns.
type Scoper interface {
	ShootdownScope(vp pagetable.VPage) []int
}

// ScopeAppender is the allocation-free refinement of Scoper: the scope
// is appended into a caller-owned buffer so the engine can reuse one
// scratch slice across a whole batch. pagetable.Replicated implements
// it; the engine prefers it over Scoper when available.
type ScopeAppender interface {
	AppendShootdownScope(dst []int, vp pagetable.VPage) []int
}

// Config parameterizes an Engine.
type Config struct {
	Cost  machine.CostModel
	Tiers *mem.Tiers
	Table Mapper

	// Cpus is the machine's core count, which drives baseline migration
	// preparation cost (Figure 2).
	Cpus int
	// ProcessThreads is the number of threads of the owning process; it
	// is the shootdown fan-out when targeted shootdowns are unavailable.
	ProcessThreads int

	// OptimizedPrep selects Vulcan's per-application LRU drain (§3.2)
	// instead of the kernel's global on_each_cpu synchronization.
	OptimizedPrep bool
	// TargetedShootdown uses per-thread page-table ownership (§3.4) to
	// IPI only the page's sharing threads. Requires Table to implement
	// Scoper; silently falls back to process-wide otherwise.
	TargetedShootdown bool
	// Shadowing retains slow-tier copies of promoted pages so that clean
	// pages demote by remap alone (§3.5, borrowed from Nomad).
	Shadowing bool

	// Invalidate, when non-nil, receives every (page, thread) TLB
	// invalidation so the system can evict entries from its per-thread
	// TLB models.
	Invalidate func(vp pagetable.VPage, threads []int)

	// PreMigrate, when non-nil, runs before each page enters the
	// migration path and returns extra cycles the page's preparation
	// costs (e.g. splitting a covering 2MiB huge mapping, §3.5).
	PreMigrate func(vp pagetable.VPage) float64

	// Inject, when non-nil, is the fault-injection hook (satisfied by
	// *fault.Injector): per-page transient migration failures and
	// delayed shootdown-IPI acknowledgments. Leave nil for a
	// well-behaved substrate; the nil path executes the exact
	// pre-chaos arithmetic.
	Inject Chaos
	// OnBusy, when non-nil, receives each move that failed transiently
	// (Busy outcome) so the owner can schedule a bounded retry.
	OnBusy func(mv Move)
	// OnIPIDelay, when non-nil, receives the shootdown targets whose
	// acknowledgment was delayed by an injected IPIDelay fault. The
	// slice is engine scratch: callees must not retain it.
	OnIPIDelay func(targets []int)

	// Obs receives migration and shootdown telemetry; nil disables
	// emission at zero cost. Owner labels the events with the owning
	// application's name.
	Obs   obs.Sink
	Owner string

	// Prof, when non-nil, receives each batch's phase breakdown on the
	// cost profiler's mechanism plane, keyed by the engine's current
	// execution context (sync / async / retry). nil — the default —
	// disables cost attribution at the price of one nil check per batch.
	Prof *prof.EngineAccounts
}

// Chaos is the fault-injection surface the engine consults
// (structurally satisfied by *fault.Injector; a local interface keeps
// the mechanism layer free of a fault-package dependency). Both methods
// must be pure in the simulation coordinates — the engine calls them
// once per page/batch and assumes replays answer identically.
type Chaos interface {
	// MigrationFails reports a transient per-page failure (pinned page,
	// -EBUSY) for virtual page vp in engine batch batchSeq.
	MigrationFails(app string, vp uint64, batchSeq uint64) bool
	// IPIDelayCycles returns extra acknowledgment cycles per shootdown
	// target for batch batchSeq (0 = no fault).
	IPIDelayCycles(app string, batchSeq uint64) float64
}

// Move asks for one page to be migrated to a destination tier.
type Move struct {
	VP pagetable.VPage
	To mem.TierID
}

// Outcome classifies what happened to one requested move.
type Outcome uint8

// Possible per-page outcomes.
const (
	Moved        Outcome = iota // migrated, content copied
	Remapped                    // migrated by shadow remap, no copy
	AlreadyThere                // page already resided in the target tier
	NotMapped                   // page has no translation
	NoFrame                     // destination tier exhausted
	Busy                        // transient failure (injected fault); retryable
)

func (o Outcome) String() string {
	switch o {
	case Moved:
		return "moved"
	case Remapped:
		return "remapped"
	case AlreadyThere:
		return "already-there"
	case NotMapped:
		return "not-mapped"
	case NoFrame:
		return "no-frame"
	case Busy:
		return "busy"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Result reports one batch migration.
type Result struct {
	Breakdown machine.Breakdown
	// Outcomes aliases engine scratch: it is valid until the next
	// MigrateSync on the same engine and must not be retained across
	// batches.
	Outcomes []Outcome
	Moved    int // pages copied
	Remapped int // pages committed via shadow remap
	Failed   int // NotMapped + NoFrame
	Busy     int // transient injected failures (retryable)
	Targets  int // shootdown IPI fan-out used
}

// Cycles returns the batch's total cycle cost.
func (r Result) Cycles() float64 { return r.Breakdown.Total() }

// staged is one move that survived lookup and was unmapped, awaiting
// shootdown + copy + remap.
type staged struct {
	idx int
	vp  pagetable.VPage
	old pagetable.PTE
	to  mem.TierID
}

// Engine executes migrations against one process's address space.
type Engine struct {
	cfg     Config
	shadows *shadowStore

	// Per-batch scratch reused across MigrateSync calls (allocation
	// diet): the shootdown-scope union lives in a thread-id bitmap that
	// decodes in ascending order, replacing the per-call map + slice +
	// sort.Ints of the original implementation.
	scopeBits []uint64  //vulcan:nosnap per-batch scratch, reset at the top of MigrateSync
	scopeList []int     //vulcan:nosnap per-batch scratch, reset at the top of MigrateSync
	scopeBuf  []int     //vulcan:nosnap per-batch scratch, reset at the top of MigrateSync
	batch     []staged  //vulcan:nosnap per-batch scratch, reset at the top of MigrateSync
	outcomes  []Outcome //vulcan:nosnap per-batch scratch backing Result.Outcomes, overwritten by the next MigrateSync

	// batchSeq numbers MigrateSync batches; it is the fault-injection
	// coordinate for per-batch draws, so a page that failed transiently
	// in one batch draws fresh when retried in a later one.
	batchSeq uint64

	// ctx tags the current batch's execution context for cost
	// attribution; AsyncMigrator and Retrier set it around their
	// MigrateSync calls and restore ctxSync.
	ctx migCtx //vulcan:nosnap cost-attribution tag, always ctxSync at epoch boundaries
}

// migCtx names which execution context a MigrateSync batch belongs to
// for cost attribution: policy-synchronous (the default), the async
// migrator, or the bounded-retry queue.
type migCtx uint8

const (
	ctxSync migCtx = iota
	ctxAsync
	ctxRetry
)

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Tiers == nil || cfg.Table == nil {
		panic("migrate: Config requires Tiers and Table")
	}
	if cfg.Cpus <= 0 {
		panic("migrate: Config.Cpus must be positive")
	}
	if cfg.ProcessThreads <= 0 {
		panic("migrate: Config.ProcessThreads must be positive")
	}
	scopeMax := cfg.ProcessThreads
	if scopeMax < pagetable.MaxThreads {
		scopeMax = pagetable.MaxThreads
	}
	return &Engine{
		cfg:       cfg,
		shadows:   newShadowStore(),
		scopeBits: make([]uint64, (scopeMax+63)/64),
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Shadows exposes shadow-store statistics.
func (e *Engine) Shadows() ShadowStats { return e.shadows.stats() }

// addScope ors vp's shootdown scope into the batch's scope bitmap.
func (e *Engine) addScope(vp pagetable.VPage) {
	if e.cfg.TargetedShootdown {
		switch t := e.cfg.Table.(type) {
		case ScopeAppender:
			e.scopeBuf = t.AppendShootdownScope(e.scopeBuf[:0], vp)
			for _, tid := range e.scopeBuf {
				e.scopeBits[tid>>6] |= 1 << (tid & 63)
			}
			return
		case Scoper:
			for _, tid := range t.ShootdownScope(vp) {
				e.scopeBits[tid>>6] |= 1 << (tid & 63)
			}
			return
		}
	}
	for tid := 0; tid < e.cfg.ProcessThreads; tid++ {
		e.scopeBits[tid>>6] |= 1 << (tid & 63)
	}
}

// MigrateSync performs a synchronous batch migration of moves, returning
// the full cost breakdown. The caller decides whom the stall is charged
// to (the faulting thread for TPP-style promotions, a migration thread
// for background demotions).
//
//vulcan:hotpath
func (e *Engine) MigrateSync(moves []Move) Result {
	if cap(e.outcomes) < len(moves) {
		e.outcomes = make([]Outcome, len(moves)) //vulcan:allowalloc grow-once scratch, amortized across batches
	}
	e.outcomes = e.outcomes[:len(moves)]
	clear(e.outcomes)
	res := Result{Outcomes: e.outcomes}
	e.batchSeq++

	// Phase 0/1: preparation + kernel trap happen once per batch. The
	// scope bitmap and staging buffer are engine scratch, cleared here
	// and refilled, so a steady-state batch allocates only Outcomes.
	for i := range e.scopeBits {
		e.scopeBits[i] = 0
	}
	e.batch = e.batch[:0]
	attempted := 0

	// Lock/unmap each page, collecting shootdown scope.
	splitCycles := 0.0
	for i, mv := range moves {
		pte, ok := e.cfg.Table.Lookup(mv.VP)
		if !ok {
			res.Outcomes[i] = NotMapped
			res.Failed++
			continue
		}
		if pte.Frame().Tier == mv.To {
			res.Outcomes[i] = AlreadyThere
			continue
		}
		if e.cfg.Inject != nil && e.cfg.Inject.MigrationFails(e.cfg.Owner, uint64(mv.VP), e.batchSeq) {
			// Transient failure (pinned page): the kernel took the PTE
			// lock, saw the pin, and backed off — the page stays mapped
			// where it is and only the lock round-trip is charged.
			res.Outcomes[i] = Busy
			res.Busy++
			if e.cfg.OnBusy != nil {
				e.cfg.OnBusy(mv)
			}
			continue
		}
		if e.cfg.PreMigrate != nil {
			splitCycles += e.cfg.PreMigrate(mv.VP)
		}
		attempted++
		e.addScope(mv.VP)
		old, _ := e.cfg.Table.Unmap(mv.VP)
		e.batch = append(e.batch, staged{idx: i, vp: mv.VP, old: old, to: mv.To})
	}

	// TLB shootdown over the union scope. Decoding the bitmap yields
	// ascending thread order for free, so the IPI sequence (and any
	// per-target accounting) replays identically without a sort.
	e.scopeList = e.scopeList[:0]
	for w, word := range e.scopeBits {
		for ; word != 0; word &= word - 1 {
			e.scopeList = append(e.scopeList, w<<6+bits.TrailingZeros64(word))
		}
	}
	if e.cfg.Invalidate != nil {
		for _, s := range e.batch {
			e.cfg.Invalidate(s.vp, e.scopeList)
		}
	}
	res.Targets = len(e.scopeList)

	// Copy + remap each staged page.
	copied := 0
	for _, s := range e.batch {
		newPTE, outcome := e.commitPage(s.vp, s.old, s.to)
		res.Outcomes[s.idx] = outcome
		switch outcome {
		case Moved:
			copied++
			res.Moved++
		case Remapped:
			res.Remapped++
		case NoFrame:
			res.Failed++
		}
		_ = newPTE
	}

	res.Breakdown = machine.Breakdown{
		Pages: attempted,
		Prep:  e.cfg.Cost.PrepCycles(e.cfg.Cpus, e.cfg.OptimizedPrep),
		Trap:  e.cfg.Cost.TrapCycles,
		// Busy pages took the PTE lock and backed off, so they charge
		// the lock/unmap round-trip but no shootdown, copy or remap.
		// With chaos off res.Busy is always 0 and the sum is the exact
		// pre-fault expression.
		Unmap: float64(attempted+res.Busy) * e.cfg.Cost.LockUnmapPerPage,
		TLB:   e.cfg.Cost.ShootdownCycles(attempted, res.Targets),
		Copy:  e.cfg.Cost.CopyCycles(copied),
		Remap: float64(attempted) * e.cfg.Cost.RemapPerPage,
		Split: splitCycles,
	}
	ipiExtra := 0.0
	if e.cfg.Inject != nil && attempted > 0 {
		// A delayed-IPI fault stretches every target's acknowledgment.
		if d := e.cfg.Inject.IPIDelayCycles(e.cfg.Owner, e.batchSeq); d > 0 {
			ipiExtra = d * float64(res.Targets)
			res.Breakdown.TLB += ipiExtra
			if e.cfg.OnIPIDelay != nil {
				e.cfg.OnIPIDelay(e.scopeList)
			}
		}
	}
	if attempted == 0 && res.Busy == 0 {
		// Nothing actually entered the kernel migration path: no cost.
		res.Breakdown = machine.Breakdown{}
		ipiExtra = 0
	}
	e.chargeProf(res, attempted, ipiExtra)
	e.emitSync(res, attempted)
	return res
}

// chargeProf posts one batch's phase breakdown to the cost profiler's
// mechanism plane under the current execution context. The TLB phase
// splits into the base shootdown cost (tlb/shootdown, counted per IPI
// target) and any injected acknowledgment delay (fault/ipi-delay); the
// charges sum exactly to Breakdown.Total().
//
//vulcan:hotpath
func (e *Engine) chargeProf(res Result, attempted int, ipiExtra float64) {
	pa := e.cfg.Prof
	if pa == nil || (attempted == 0 && res.Busy == 0) {
		return
	}
	m := &pa.Sync
	switch e.ctx {
	case ctxAsync:
		m = &pa.Async
	case ctxRetry:
		m = &pa.Retry
	}
	bd := res.Breakdown
	m.Prep.Charge(bd.Prep)
	m.Trap.Charge(bd.Trap)
	m.Unmap.ChargeN(bd.Unmap, uint64(attempted+res.Busy))
	m.Copy.ChargeN(bd.Copy, uint64(res.Moved))
	m.Remap.ChargeN(bd.Remap, uint64(attempted))
	if bd.Split > 0 {
		m.Split.Charge(bd.Split)
	}
	pa.Shootdown.ChargeN(bd.TLB-ipiExtra, uint64(res.Targets))
	if ipiExtra > 0 {
		pa.IPIDelay.ChargeN(ipiExtra, uint64(res.Targets))
	}
}

// emitSync publishes one batch's telemetry: the shootdown (scope and
// cost) and the five-phase cycle breakdown.
func (e *Engine) emitSync(res Result, attempted int) {
	if attempted == 0 && res.Busy == 0 {
		return
	}
	if attempted > 0 && obs.Enabled(e.cfg.Obs, obs.EvShootdown) {
		e.cfg.Obs.Event(obs.E(obs.EvShootdown, e.cfg.Owner, "migrate",
			sim.CyclesToDuration(res.Breakdown.TLB),
			obs.F("pages", float64(attempted)),
			obs.F("targets", float64(res.Targets)),
			obs.F("cycles", res.Breakdown.TLB)))
	}
	if obs.Enabled(e.cfg.Obs, obs.EvMigrateSync) {
		sh := e.shadows.stats()
		ev := obs.E(obs.EvMigrateSync, e.cfg.Owner, "migrate",
			sim.CyclesToDuration(res.Breakdown.Total()),
			obs.F("pages", float64(attempted)),
			obs.F("moved", float64(res.Moved)),
			obs.F("remapped", float64(res.Remapped)),
			obs.F("failed", float64(res.Failed)),
			obs.F("prep_cycles", res.Breakdown.Prep),
			obs.F("trap_cycles", res.Breakdown.Trap),
			obs.F("unmap_cycles", res.Breakdown.Unmap),
			obs.F("tlb_cycles", res.Breakdown.TLB),
			obs.F("copy_cycles", res.Breakdown.Copy),
			obs.F("remap_cycles", res.Breakdown.Remap),
			obs.F("split_cycles", res.Breakdown.Split),
			obs.F("shadows_live", float64(sh.Live)))
		if res.Busy > 0 {
			// Appended (rather than unconditional) so chaos-off traces
			// stay byte-identical to the pre-fault exporter output.
			ev.Fields = append(ev.Fields, obs.F("busy", float64(res.Busy))) //vulcan:allowalloc chaos-path only, behind obs.Enabled; the nil-sink steady state never gets here
		}
		e.cfg.Obs.Event(ev)
	}
}

// commitPage moves one unmapped page's content and reinstalls its PTE.
// On allocation failure the original mapping is restored.
func (e *Engine) commitPage(vp pagetable.VPage, old pagetable.PTE, to mem.TierID) (pagetable.PTE, Outcome) {
	srcFrame := old.Frame()

	// Shadow fast-path: demoting a clean page whose slow-tier shadow is
	// intact needs no copy — just remap to the shadow (Nomad §3.5).
	if e.cfg.Shadowing && to == mem.TierSlow {
		if !old.Dirty() {
			if shadow, ok := e.shadows.take(vp); ok {
				newPTE := old.WithFrame(shadow).WithAccessed(false)
				e.mustRemap(vp, newPTE)
				e.cfg.Tiers.Free(srcFrame)
				return newPTE, Remapped
			}
		} else if stale, ok := e.shadows.drop(vp); ok {
			// The page was written after promotion: its shadow is stale
			// and the demotion must copy; release the shadow frame.
			e.cfg.Tiers.Free(stale)
		}
	}

	dst, ok := e.cfg.Tiers.Alloc(to)
	if !ok {
		// Destination exhausted: restore the original mapping.
		e.mustRemap(vp, old)
		return old, NoFrame
	}

	newPTE := old.WithFrame(dst).WithAccessed(false).WithDirty(false)
	e.mustRemap(vp, newPTE)

	if e.cfg.Shadowing && to == mem.TierFast && srcFrame.Tier == mem.TierSlow {
		// Keep the slow copy as a shadow instead of freeing it; a stale
		// prior shadow (from an earlier promotion cycle) is released.
		if prev, ok := e.shadows.drop(vp); ok {
			e.cfg.Tiers.Free(prev)
		}
		e.shadows.put(vp, srcFrame)
	} else {
		e.cfg.Tiers.Free(srcFrame)
	}
	return newPTE, Moved
}

// mustRemap reinstalls a PTE for a page the engine itself unmapped; the
// page cannot have disappeared in between in a single-owner simulation.
func (e *Engine) mustRemap(vp pagetable.VPage, p pagetable.PTE) {
	if err := e.remap(vp, p); err != nil {
		panic(fmt.Sprintf("migrate: remap of %#x failed: %v", uint64(vp), err))
	}
}

func (e *Engine) remap(vp pagetable.VPage, p pagetable.PTE) error {
	type installer interface {
		Install(tid int, vp pagetable.VPage, p pagetable.PTE) error
	}
	type mapper interface {
		Map(tid int, vp pagetable.VPage, p pagetable.PTE) error
	}
	type plainMapper interface {
		Map(vp pagetable.VPage, p pagetable.PTE) error
	}
	switch m := e.cfg.Table.(type) {
	case installer:
		// Exact-PTE reinstall (pagetable.Replicated): one call, no
		// ownership-restoring Update closure — the closure capture was a
		// heap allocation on every remap in the hot path.
		owner := p.Owner()
		tid := 0
		if owner != pagetable.OwnerShared {
			tid = int(owner)
		}
		return m.Install(tid, vp, p)
	case mapper:
		owner := p.Owner()
		tid := 0
		if owner != pagetable.OwnerShared {
			tid = int(owner)
		}
		if err := m.Map(tid, vp, p); err != nil {
			return err
		}
		// Map stamps the mapping thread as owner; restore the true
		// ownership (possibly shared).
		//vulcan:allowalloc non-Replicated fallback; the hot configuration takes the Install path above
		e.cfg.Table.Update(vp, func(cur pagetable.PTE) pagetable.PTE {
			return cur.WithOwner(owner).WithAccessed(p.Accessed()).WithDirty(p.Dirty())
		})
		return nil
	case plainMapper:
		return m.Map(vp, p)
	default:
		return fmt.Errorf("migrate: table type %T lacks Map", e.cfg.Table) //vulcan:allowalloc misconfiguration error path, aborts the batch
	}
}

// InvalidateShadow drops vp's shadow copy (called when the page is
// written after promotion, making the slow-tier copy stale). The freed
// frame returns to the slow tier.
func (e *Engine) InvalidateShadow(vp pagetable.VPage) {
	if f, ok := e.shadows.drop(vp); ok {
		e.cfg.Tiers.Free(f)
	}
}

// HasShadow reports whether vp currently holds a shadow copy.
func (e *Engine) HasShadow(vp pagetable.VPage) bool { return e.shadows.has(vp) }

// DropAllShadows releases every shadow frame (used when reconfiguring).
func (e *Engine) DropAllShadows() {
	for _, f := range e.shadows.drain() {
		e.cfg.Tiers.Free(f)
	}
}
