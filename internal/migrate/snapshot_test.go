package migrate

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// snapshotHarness is one engine + async migrator + retrier stack over a
// small machine, built identically every time so a restored twin can be
// driven in lockstep with the original.
type snapshotHarness struct {
	tiers *mem.Tiers
	tbl   *pagetable.Replicated
	eng   *Engine
	async *AsyncMigrator
	retr  *Retrier
}

func newSnapshotHarness() *snapshotHarness {
	h := &snapshotHarness{}
	h.tiers = mem.NewTiers([mem.NumTiers]mem.TierConfig{
		mem.TierFast: {Name: "f", CapacityPages: 64, UnloadedLatency: 70, BandwidthGBs: 205},
		mem.TierSlow: {Name: "s", CapacityPages: 256, UnloadedLatency: 162, BandwidthGBs: 25},
	})
	h.tbl = pagetable.NewReplicated(2)
	for vp := pagetable.VPage(0); vp < 128; vp++ {
		f, ok := h.tiers.Alloc(mem.TierSlow)
		if !ok {
			panic("slow tier exhausted")
		}
		if err := h.tbl.Map(0, vp, pagetable.NewPTE(f, pagetable.OwnerShared)); err != nil {
			panic(err)
		}
	}
	h.eng = NewEngine(Config{
		Cost: machine.DefaultCostModel(), Tiers: h.tiers, Table: h.tbl,
		Cpus: 4, ProcessThreads: 2, Shadowing: true,
	})
	h.async = NewAsyncMigrator(AsyncConfig{Engine: h.eng, RNG: sim.NewRNG(77)})
	h.retr = NewRetrier(RetryConfig{Engine: h.eng})
	return h
}

// snapshotAll writes the machine state every resumed run needs: tiers,
// table, and the three migration components.
func (h *snapshotHarness) snapshotAll(t *testing.T) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	h.tiers.Snapshot(w.Section("tiers", 1))
	h.tbl.Snapshot(w.Section("table", 1))
	h.eng.Snapshot(w.Section("engine", 1))
	h.async.Snapshot(w.Section("async", 1))
	h.retr.Snapshot(w.Section("retry", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func (h *snapshotHarness) restoreAll(t *testing.T, blob []byte) {
	t.Helper()
	cr, err := checkpoint.NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []struct {
		name string
		obj  checkpoint.Snapshotter
	}{
		{"tiers", h.tiers}, {"table", h.tbl}, {"engine", h.eng},
		{"async", h.async}, {"retry", h.retr},
	} {
		d, err := cr.Section(s.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.obj.Restore(d); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("%s: unread bytes: %v", s.name, err)
		}
	}
}

// drive promotes and demotes a deterministic page mix through both the
// sync path (feeding the retrier) and the async path.
func drive(h *snapshotHarness, round int) {
	var sync []Move
	for i := 0; i < 12; i++ {
		vp := pagetable.VPage((round*13 + i*5) % 128)
		to := mem.TierFast
		if (round+i)%3 == 0 {
			to = mem.TierSlow
		}
		if i%2 == 0 {
			sync = append(sync, Move{VP: vp, To: to})
		} else {
			h.async.EnqueueOne(Move{VP: vp, To: to})
		}
	}
	h.eng.MigrateSync(sync)
	h.async.RunEpoch(5e6, func(vp pagetable.VPage) float64 { return 0.3 })
	// Hand the retrier a transient failure by hand (without an injector
	// the engine never reports Busy) so its queue state is non-trivial.
	h.retr.NoteBusy(Move{VP: pagetable.VPage((round * 29) % 128), To: mem.TierFast})
	h.retr.RunEpoch(uint64(round))
}

// TestMigrateSnapshotRoundTrip drives a migration stack mid-flight,
// checkpoints the whole machine state, restores it into a fresh twin,
// and requires the two stacks to stay byte-identical through further
// epochs — pending queues, shadow frames, RNG and stats included.
func TestMigrateSnapshotRoundTrip(t *testing.T) {
	live := newSnapshotHarness()
	for r := 0; r < 5; r++ {
		drive(live, r)
	}
	blob := live.snapshotAll(t)

	twin := newSnapshotHarness()
	twin.restoreAll(t, blob)

	if live.async.Backlog() != twin.async.Backlog() {
		t.Fatalf("async backlog %d != %d", live.async.Backlog(), twin.async.Backlog())
	}
	if live.retr.Pending() != twin.retr.Pending() {
		t.Fatalf("retry pending %d != %d", live.retr.Pending(), twin.retr.Pending())
	}
	for r := 5; r < 10; r++ {
		drive(live, r)
		drive(twin, r)
		if live.async.Stats() != twin.async.Stats() {
			t.Fatalf("round %d: async stats %+v != %+v", r, live.async.Stats(), twin.async.Stats())
		}
		if live.retr.Stats() != twin.retr.Stats() {
			t.Fatalf("round %d: retry stats %+v != %+v", r, live.retr.Stats(), twin.retr.Stats())
		}
		if live.eng.Shadows() != twin.eng.Shadows() {
			t.Fatalf("round %d: shadow stats diverged", r)
		}
	}
	// Final placements must agree exactly.
	live.tbl.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		q, ok := twin.tbl.Lookup(vp)
		if !ok || q != p {
			t.Fatalf("page %d: %v != %v (ok=%v)", vp, p, q, ok)
		}
		return true
	})
}

// TestMigrateRestoreRejectsCorruption truncates and bit-flips each
// component's payload; Restore must error, never panic.
func TestMigrateRestoreRejectsCorruption(t *testing.T) {
	live := newSnapshotHarness()
	for r := 0; r < 5; r++ {
		drive(live, r)
	}

	snap := func(obj checkpoint.Snapshotter) []byte {
		e := &checkpoint.Encoder{}
		obj.Snapshot(e)
		return e.Bytes()
	}
	objs := map[string]struct {
		blob  []byte
		fresh func() checkpoint.Snapshotter
	}{
		"engine": {snap(live.eng), func() checkpoint.Snapshotter { return newSnapshotHarness().eng }},
		"async":  {snap(live.async), func() checkpoint.Snapshotter { return newSnapshotHarness().async }},
		"retry":  {snap(live.retr), func() checkpoint.Snapshotter { return newSnapshotHarness().retr }},
	}
	for name, o := range objs {
		for cut := 0; cut < len(o.blob); cut += 11 {
			if err := o.fresh().Restore(checkpoint.NewDecoder(o.blob[:cut])); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
	}
}
