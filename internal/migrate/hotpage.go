package migrate

import (
	"vulcan/internal/machine"
	"vulcan/internal/sim"
)

// HotPageConfig parameterizes the Figure 4 microbenchmark: one base page
// is promoted from the slow to the fast tier while a thread keeps
// accessing it with a given read/write mix.
type HotPageConfig struct {
	Cost machine.CostModel
	// ReadFraction of accesses that are reads (1.0 = read-only).
	ReadFraction float64
	// ComputeNs is the fixed per-operation work outside the memory access.
	ComputeNs sim.Duration
	// AccessGapNs is the idle gap between successive accesses.
	AccessGapNs sim.Duration
	// FastNs / SlowNs are unloaded access latencies of the two tiers.
	FastNs, SlowNs sim.Duration
	// Window is the measured interval; promotion starts at PromoteAt.
	Window    sim.Duration
	PromoteAt sim.Time
	// Threads sharing the page (shootdown IPI fan-out at commit).
	Threads int
	// Cpus on the machine (baseline preparation cost for sync migration).
	Cpus int
	// MaxRetries bounds async transactional retries before abort.
	MaxRetries int
	Seed       uint64
}

// DefaultHotPageConfig returns the microbenchmark settings used by the
// Figure 4 reproduction.
func DefaultHotPageConfig() HotPageConfig {
	return HotPageConfig{
		Cost:         machine.DefaultCostModel(),
		ReadFraction: 1.0,
		ComputeNs:    120 * sim.Nanosecond,
		AccessGapNs:  80 * sim.Nanosecond,
		FastNs:       70 * sim.Nanosecond,
		SlowNs:       162 * sim.Nanosecond,
		Window:       2 * sim.Millisecond,
		PromoteAt:    sim.Time(200 * sim.Microsecond),
		Threads:      8,
		Cpus:         32,
		MaxRetries:   3,
		Seed:         7,
	}
}

// HotPageResult reports one run of the microbenchmark.
type HotPageResult struct {
	Ops       int
	OpsPerSec float64
	Retries   int
	Aborted   bool
	Committed bool
	// CommitAt is when the page became resident in the fast tier
	// (zero if never).
	CommitAt sim.Time
}

// RunHotPageSync promotes the page synchronously: the accessing thread
// stalls for the entire migration (preparation through remap), then
// enjoys fast-tier latency. This is TPP-style promotion on the critical
// path.
func RunHotPageSync(cfg HotPageConfig) HotPageResult {
	var res HotPageResult
	stall := sim.CyclesToDuration(cfg.Cost.MigrationBreakdown(1, cfg.Cpus, machine.MigrationOptions{
		Targets: cfg.Threads,
	}).Total())

	t := sim.Time(0)
	fast := false
	for t < sim.Time(cfg.Window) {
		if !fast && t >= cfg.PromoteAt {
			t += sim.Time(stall)
			fast = true
			res.Committed = true
			res.CommitAt = t
			continue
		}
		t += sim.Time(cfg.ComputeNs + cfg.AccessGapNs + accessLatency(cfg, fast))
		res.Ops++
	}
	res.OpsPerSec = float64(res.Ops) / cfg.Window.Seconds()
	return res
}

// RunHotPageAsync promotes the page with background (transactional)
// copying: accesses continue against the slow tier during the copy; a
// write landing inside a copy window invalidates that attempt. After
// MaxRetries invalidated attempts the promotion aborts and the page stays
// slow. A clean copy commits with a brief unmap+shootdown+remap stall.
func RunHotPageAsync(cfg HotPageConfig) HotPageResult {
	var res HotPageResult
	rng := sim.NewRNG(cfg.Seed)

	copyDur := sim.CyclesToDuration(cfg.Cost.CopyCycles(1))
	commitStall := sim.CyclesToDuration(cfg.Cost.LockUnmapPerPage +
		cfg.Cost.ShootdownCycles(1, cfg.Threads) + cfg.Cost.RemapPerPage)

	t := sim.Time(0)
	fast := false
	copying := false
	var copyEnd sim.Time
	dirtied := false
	retries := 0
	aborted := false

	for t < sim.Time(cfg.Window) {
		// Start or manage the background copy.
		if !fast && !aborted && !copying && t >= cfg.PromoteAt {
			copying = true
			dirtied = false
			copyEnd = t + sim.Time(copyDur)
		}
		if copying && t >= copyEnd {
			if dirtied {
				retries++
				if retries > cfg.MaxRetries {
					aborted = true
					copying = false
				} else {
					dirtied = false
					copyEnd = t + sim.Time(copyDur)
				}
			} else {
				// Commit: short critical-path stall for the remap.
				copying = false
				fast = true
				t += sim.Time(commitStall)
				res.Committed = true
				res.CommitAt = t
				continue
			}
		}

		write := !rng.Bool(cfg.ReadFraction)
		if copying && write {
			dirtied = true
		}
		t += sim.Time(cfg.ComputeNs + cfg.AccessGapNs + accessLatency(cfg, fast))
		res.Ops++
	}
	res.Retries = retries
	res.Aborted = aborted
	res.OpsPerSec = float64(res.Ops) / cfg.Window.Seconds()
	return res
}

func accessLatency(cfg HotPageConfig, fast bool) sim.Duration {
	if fast {
		return cfg.FastNs
	}
	return cfg.SlowNs
}
