package migrate

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/obs"
	"vulcan/internal/pagetable"
)

// scriptedChaos fails exactly the pages in fail, keyed by (vp, batch);
// a deterministic stand-in for fault.Injector.
type scriptedChaos struct {
	fail     map[[2]uint64]bool // {vp, batch} → busy
	failAll  bool
	ipiDelay float64
}

func (c *scriptedChaos) MigrationFails(app string, vp, batch uint64) bool {
	return c.failAll || c.fail[[2]uint64{vp, batch}]
}
func (c *scriptedChaos) IPIDelayCycles(app string, batch uint64) float64 { return c.ipiDelay }

func TestBusyOutcome(t *testing.T) {
	chaos := &scriptedChaos{fail: map[[2]uint64]bool{{1, 1}: true}}
	var busy []Move
	e, rt, _ := testEnv(t, 4, 8, func(cfg *Config) {
		cfg.Inject = chaos
		cfg.OnBusy = func(mv Move) { busy = append(busy, mv) }
	})
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}})
	if res.Moved != 1 || res.Busy != 1 || res.Failed != 0 {
		t.Fatalf("moved=%d busy=%d failed=%d", res.Moved, res.Busy, res.Failed)
	}
	if res.Outcomes[0] != Moved || res.Outcomes[1] != Busy {
		t.Fatalf("outcomes = %v", res.Outcomes)
	}
	if len(busy) != 1 || busy[0].VP != 1 {
		t.Fatalf("OnBusy calls = %v", busy)
	}
	// The busy page stays mapped where it was.
	p, ok := rt.Lookup(1)
	if !ok || p.Frame().Tier != mem.TierSlow {
		t.Fatalf("busy page moved or unmapped: %v", p)
	}
	// The busy page charges the lock round-trip but not copy/remap: a
	// second, fault-free engine migrating one page matches everything
	// but the unmap term.
	e2, _, _ := testEnv(t, 4, 8, nil)
	clean := e2.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	wantUnmap := clean.Breakdown.Unmap * 2
	if res.Breakdown.Unmap != wantUnmap {
		t.Errorf("unmap cycles = %v, want %v (attempted+busy)", res.Breakdown.Unmap, wantUnmap)
	}
	if res.Breakdown.Copy != clean.Breakdown.Copy || res.Breakdown.Remap != clean.Breakdown.Remap {
		t.Errorf("busy page charged copy/remap: %+v vs %+v", res.Breakdown, clean.Breakdown)
	}
}

func TestAllBusyBatchStillCharges(t *testing.T) {
	e, _, _ := testEnv(t, 4, 8, func(cfg *Config) {
		cfg.Inject = &scriptedChaos{failAll: true}
	})
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if res.Busy != 1 || res.Moved != 0 {
		t.Fatalf("busy=%d moved=%d", res.Busy, res.Moved)
	}
	if res.Breakdown.Total() <= 0 {
		t.Error("all-busy batch cost nothing (prep/trap/lock should charge)")
	}
	if res.Breakdown.Copy != 0 || res.Breakdown.TLB != 0 {
		t.Errorf("all-busy batch charged copy/shootdown: %+v", res.Breakdown)
	}
}

func TestIPIDelayCharged(t *testing.T) {
	var delayed int
	e, _, _ := testEnv(t, 4, 8, func(cfg *Config) {
		cfg.Inject = &scriptedChaos{ipiDelay: 400}
		cfg.OnIPIDelay = func(targets []int) { delayed += len(targets) }
	})
	e2, _, _ := testEnv(t, 4, 8, nil)
	moves := []Move{{VP: 0, To: mem.TierFast}}
	faulted := e.MigrateSync(moves)
	clean := e2.MigrateSync(moves)
	extra := faulted.Breakdown.TLB - clean.Breakdown.TLB
	want := 400 * float64(faulted.Targets)
	if extra != want {
		t.Errorf("IPI delay added %v cycles, want %v", extra, want)
	}
	if delayed != faulted.Targets {
		t.Errorf("OnIPIDelay reported %d targets, want %d", delayed, faulted.Targets)
	}
}

func TestRetrierRecovers(t *testing.T) {
	// Page 1 is busy in batch 1 (the initial policy batch) and batch 2
	// (the first retry), then succeeds.
	chaos := &scriptedChaos{fail: map[[2]uint64]bool{{1, 1}: true, {1, 2}: true}}
	var retrier *Retrier
	e, rt, _ := testEnv(t, 4, 8, func(cfg *Config) {
		cfg.Inject = chaos
		cfg.OnBusy = func(mv Move) { retrier.NoteBusy(mv) }
	})
	retrier = NewRetrier(RetryConfig{Engine: e, BackoffBase: 1, BackoffCap: 8, MaxAttempts: 4})

	res := e.MigrateSync([]Move{{VP: 1, To: mem.TierFast}}) // batch 1
	if res.Busy != 1 || retrier.Pending() != 1 {
		t.Fatalf("busy=%d pending=%d", res.Busy, retrier.Pending())
	}

	// Epoch 0: not due yet (backoff 1 epoch from now=0 → due epoch 1).
	ep := retrier.RunEpoch(0)
	if ep.Retried != 0 || ep.Pending != 1 {
		t.Fatalf("epoch 0: %+v", ep)
	}
	// Epoch 1: retry fires (batch 2) and fails again → backoff 2.
	ep = retrier.RunEpoch(1)
	if ep.Retried != 1 || ep.StillBusy != 1 || ep.Recovered != 0 {
		t.Fatalf("epoch 1: %+v", ep)
	}
	if ep.Cycles <= 0 {
		t.Error("retry batch cost nothing")
	}
	// Epoch 2: backed off, nothing due.
	if ep = retrier.RunEpoch(2); ep.Retried != 0 {
		t.Fatalf("epoch 2: %+v", ep)
	}
	// Epoch 3: due again (batch 3), succeeds.
	ep = retrier.RunEpoch(3)
	if ep.Retried != 1 || ep.Recovered != 1 || ep.Pending != 0 {
		t.Fatalf("epoch 3: %+v", ep)
	}
	p, _ := rt.Lookup(1)
	if p.Frame().Tier != mem.TierFast {
		t.Fatal("recovered page not migrated")
	}
	st := retrier.Stats()
	if st.Noted != 1 || st.Retried != 2 || st.Recovered != 1 || st.GaveUp != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetrierGivesUp(t *testing.T) {
	var retrier *Retrier
	rec := obs.NewRecorder()
	e2, _, _ := testEnv(t, 4, 8, func(cfg *Config) {
		cfg.Inject = &scriptedChaos{failAll: true}
		cfg.OnBusy = func(mv Move) { retrier.NoteBusy(mv) }
		cfg.Obs = rec
		cfg.Owner = "app0"
	})
	retrier = NewRetrier(RetryConfig{Engine: e2, MaxAttempts: 2, BackoffBase: 1, BackoffCap: 1})

	e2.MigrateSync([]Move{{VP: 3, To: mem.TierFast}})
	if retrier.Pending() != 1 {
		t.Fatalf("pending = %d", retrier.Pending())
	}
	gaveUp := 0
	for epoch := uint64(1); epoch < 10; epoch++ {
		ep := retrier.RunEpoch(epoch)
		gaveUp += ep.GaveUp
	}
	if gaveUp != 1 || retrier.Pending() != 0 {
		t.Fatalf("gaveUp=%d pending=%d", gaveUp, retrier.Pending())
	}
	if st := retrier.Stats(); st.Retried != 2 || st.GaveUp != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A page that gave up can be re-noted by a later policy decision.
	e2.MigrateSync([]Move{{VP: 3, To: mem.TierFast}})
	if retrier.Pending() != 1 {
		t.Fatal("gave-up page not re-trackable")
	}
	// The give-up emitted a migrate.giveup event.
	saw := false
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvMigrateGiveup {
			saw = true
			if ev.Field("pages") != 1 {
				t.Errorf("giveup pages = %v", ev.Field("pages"))
			}
		}
	}
	if !saw {
		t.Error("no migrate.giveup event emitted")
	}
}

func TestRetrierBudget(t *testing.T) {
	var retrier *Retrier
	e, _, _ := testEnv(t, 4, 16, func(cfg *Config) {
		cfg.Inject = &scriptedChaos{failAll: true}
		cfg.OnBusy = func(mv Move) { retrier.NoteBusy(mv) }
	})
	retrier = NewRetrier(RetryConfig{Engine: e, Budget: 3, MaxAttempts: 100, BackoffBase: 1, BackoffCap: 1})
	var moves []Move
	for vp := pagetable.VPage(0); vp < 10; vp++ {
		moves = append(moves, Move{VP: vp, To: mem.TierFast})
	}
	e.MigrateSync(moves)
	if retrier.Pending() != 10 {
		t.Fatalf("pending = %d", retrier.Pending())
	}
	ep := retrier.RunEpoch(1)
	if ep.Retried != 3 {
		t.Fatalf("budget not enforced: retried %d", ep.Retried)
	}
	if ep.Pending != 10 {
		t.Fatalf("pending after budgeted pass = %d (3 rescheduled + 7 deferred)", ep.Pending)
	}
}

func TestRetrierDedup(t *testing.T) {
	e, _, _ := testEnv(t, 4, 8, nil)
	r := NewRetrier(RetryConfig{Engine: e})
	mv := Move{VP: 5, To: mem.TierFast}
	r.NoteBusy(mv)
	r.NoteBusy(mv)
	if r.Pending() != 1 {
		t.Fatalf("duplicate NoteBusy enqueued twice: %d", r.Pending())
	}
	if st := r.Stats(); st.Noted != 1 {
		t.Fatalf("noted = %d", st.Noted)
	}
}
