package migrate

import (
	"vulcan/internal/dense"
	"vulcan/internal/mem"
	"vulcan/internal/obs"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

// AsyncConfig parameterizes an AsyncMigrator.
type AsyncConfig struct {
	Engine *Engine
	// MaxRetries bounds transactional copy retries for a page dirtied
	// mid-copy before the migration is aborted (Nomad semantics).
	MaxRetries int
	// BatchPages is the largest batch submitted per engine call; batching
	// amortizes preparation and trap costs exactly as the kernel does.
	BatchPages int
	// MaxBacklog bounds the pending queue (0 = unbounded, the batch
	// default). A full queue applies deterministic backpressure:
	// promotions are shed (dropped — the page stays slow and can be
	// re-nominated next epoch), while demotions displace the oldest
	// pending promotion, because capacity-relief work must never be the
	// work a full queue throws away.
	MaxBacklog int
	// RNG drives the dirtied-during-copy draws.
	RNG *sim.RNG
}

// AsyncStats accumulates lifetime counters for an AsyncMigrator.
type AsyncStats struct {
	Enqueued   uint64
	Moved      uint64
	Remapped   uint64
	Retries    uint64
	Aborted    uint64 // gave up after MaxRetries
	Failed     uint64 // not mapped / destination full
	Shed       uint64 // dropped by a full bounded queue
	Displaced  uint64 // pending promotions evicted to admit demotions
	CyclesUsed float64
}

// EpochResult reports one budgeted migration epoch.
type EpochResult struct {
	Moved     int
	Remapped  int
	Retries   int
	Aborted   int
	Failed    int
	Shed      int // moves dropped by the bounded queue since the last epoch
	Displaced int // pending promotions evicted for demotions since the last epoch
	Cycles    float64
	Backlog   int // moves still pending after the epoch
}

// AsyncMigrator executes migrations off the critical path: callers
// enqueue moves, and each simulation epoch grants a cycle budget
// (migration-thread CPU time) that the migrator spends in batches.
// Pages written during their copy window are retried transactionally and
// eventually aborted, reproducing asynchronous copying's weakness on
// write-intensive pages (Observation #4).
type AsyncMigrator struct {
	cfg     AsyncConfig
	pending []Move
	queued  dense.Map // vp -> index+1 in pending (for dedup)
	stats   AsyncStats
	// epochShed/epochDisplaced tally this epoch's backpressure decisions
	// for the migrate.shed event; RunEpoch harvests and zeroes them.
	epochShed      int
	epochDisplaced int
	// commitBuf is the per-batch commit list, reused across epochs so a
	// steady-state RunEpoch allocates no Move batches.
	commitBuf []Move //vulcan:nosnap per-batch scratch, truncated before each use
}

// NewAsyncMigrator builds an async migrator around an engine.
func NewAsyncMigrator(cfg AsyncConfig) *AsyncMigrator {
	if cfg.Engine == nil {
		panic("migrate: AsyncConfig requires an Engine")
	}
	if cfg.MaxRetries < 0 {
		panic("migrate: negative MaxRetries")
	}
	if cfg.BatchPages <= 0 {
		cfg.BatchPages = 32
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(0)
	}
	return &AsyncMigrator{
		cfg: cfg,
		// Backlogs routinely reach hundreds of moves; starting with room
		// for a few batches skips the early append-growth ladder that
		// otherwise repeats for every migrator instance in a sweep.
		pending: make([]Move, 0, 8*cfg.BatchPages),
	}
}

// Enqueue adds moves to the backlog. A later request for a page already
// pending replaces its destination rather than duplicating the entry.
func (a *AsyncMigrator) Enqueue(moves ...Move) {
	for _, mv := range moves {
		a.EnqueueOne(mv)
	}
}

// EnqueueOne adds a single move to the backlog with the same dedup
// semantics as Enqueue but without the variadic slice allocation —
// policies enqueueing page-at-a-time sit on the per-access hot path.
//
//vulcan:hotpath
func (a *AsyncMigrator) EnqueueOne(mv Move) {
	if w := a.queued.Get(uint64(mv.VP)); w != 0 {
		a.pending[w-1].To = mv.To
		return
	}
	if a.cfg.MaxBacklog > 0 && len(a.pending) >= a.cfg.MaxBacklog {
		if !a.admitUnderPressure(mv) {
			return
		}
	}
	a.queued.Set(uint64(mv.VP), uint64(len(a.pending))+1)
	a.pending = append(a.pending, mv)
	a.stats.Enqueued++
}

// admitUnderPressure applies the bounded queue's shed/defer policy to a
// new move arriving at a full backlog, reporting whether room was made.
// Promotions are shed outright. A demotion displaces the oldest pending
// promotion; if the backlog is all demotions, the newcomer is shed too.
// Cold path: the hot enqueue only ever branches on the length check.
func (a *AsyncMigrator) admitUnderPressure(mv Move) bool {
	if mv.To == mem.TierFast {
		a.stats.Shed++
		a.epochShed++
		return false
	}
	victim := -1
	for i, p := range a.pending {
		if p.To == mem.TierFast {
			victim = i
			break
		}
	}
	if victim < 0 {
		a.stats.Shed++
		a.epochShed++
		return false
	}
	a.queued.Delete(uint64(a.pending[victim].VP))
	copy(a.pending[victim:], a.pending[victim+1:])
	a.pending = a.pending[:len(a.pending)-1]
	for i := victim; i < len(a.pending); i++ {
		a.queued.Set(uint64(a.pending[i].VP), uint64(i)+1)
	}
	a.stats.Displaced++
	a.epochDisplaced++
	return true
}

// Backlog returns the number of pending moves.
func (a *AsyncMigrator) Backlog() int { return len(a.pending) }

// Stats returns cumulative counters.
func (a *AsyncMigrator) Stats() AsyncStats { return a.stats }

// RunEpoch spends up to budgetCycles of migration-thread time working
// through the backlog. writeProb, when non-nil, gives each page's
// probability of being written during one copy window; dirtied copies are
// retried up to MaxRetries times (each retry costs another page copy)
// before the page's migration is aborted for this epoch.
func (a *AsyncMigrator) RunEpoch(budgetCycles float64, writeProb func(vp pagetable.VPage) float64) EpochResult {
	var res EpochResult
	for len(a.pending) > 0 && res.Cycles < budgetCycles {
		n := a.cfg.BatchPages
		if n > len(a.pending) {
			n = len(a.pending)
		}
		batch := a.pending[:n]

		// Transactional filter: each copy attempt is invalidated with the
		// page's write probability; after MaxRetries invalidated retries
		// the migration aborts and every attempted copy was wasted work.
		commit := a.commitBuf[:0]
		extraCopies := 0
		for _, mv := range batch {
			p := 0.0
			if writeProb != nil {
				p = writeProb(mv.VP)
			}
			attempts, clean := 0, false
			for attempts <= a.cfg.MaxRetries {
				attempts++
				if !a.cfg.RNG.Bool(p) {
					clean = true
					break
				}
			}
			retries := attempts - 1
			res.Retries += retries
			a.stats.Retries += uint64(retries)
			if !clean {
				// Aborted: all attempts were wasted copies.
				extraCopies += attempts
				res.Aborted++
				a.stats.Aborted++
				continue
			}
			// Committed: the final clean copy is charged by MigrateSync;
			// only the invalidated attempts are extra.
			extraCopies += retries
			commit = append(commit, mv)
		}

		a.commitBuf = commit // retain any growth for the next batch
		eng := a.cfg.Engine
		eng.ctx = ctxAsync
		r := eng.MigrateSync(commit)
		eng.ctx = ctxSync
		extraCyc := eng.cfg.Cost.CopyCycles(extraCopies)
		if pa := eng.cfg.Prof; pa != nil && extraCopies > 0 {
			// Invalidated copy attempts are wasted async copy work; they
			// never pass through MigrateSync, so post them here.
			pa.Async.Copy.ChargeN(extraCyc, uint64(extraCopies))
		}
		cycles := r.Cycles() + extraCyc
		res.Cycles += cycles
		a.stats.CyclesUsed += cycles
		res.Moved += r.Moved
		res.Remapped += r.Remapped
		res.Failed += r.Failed
		a.stats.Moved += uint64(r.Moved)
		a.stats.Remapped += uint64(r.Remapped)
		a.stats.Failed += uint64(r.Failed)

		for _, mv := range batch {
			a.queued.Delete(uint64(mv.VP))
		}
		// Compact the consumed prefix in place so the backlog's backing
		// array is pooled across epochs instead of re-allocated as the
		// window slides.
		a.pending = a.pending[:copy(a.pending, a.pending[n:])]
	}
	// Reindex the dedup map after consuming a prefix.
	for i, mv := range a.pending {
		a.queued.Set(uint64(mv.VP), uint64(i)+1)
	}
	res.Backlog = len(a.pending)
	res.Shed = a.epochShed
	res.Displaced = a.epochDisplaced
	a.epochShed, a.epochDisplaced = 0, 0
	eng := a.cfg.Engine
	if res.Cycles > 0 && obs.Enabled(eng.cfg.Obs, obs.EvMigrateAsync) {
		eng.cfg.Obs.Event(obs.E(obs.EvMigrateAsync, eng.cfg.Owner, "migrate",
			sim.CyclesToDuration(res.Cycles),
			obs.F("moved", float64(res.Moved)),
			obs.F("remapped", float64(res.Remapped)),
			obs.F("retries", float64(res.Retries)),
			obs.F("aborted", float64(res.Aborted)),
			obs.F("failed", float64(res.Failed)),
			obs.F("cycles", res.Cycles),
			obs.F("backlog", float64(res.Backlog))))
	}
	if (res.Shed > 0 || res.Displaced > 0) && obs.Enabled(eng.cfg.Obs, obs.EvMigrateShed) {
		eng.cfg.Obs.Event(obs.E(obs.EvMigrateShed, eng.cfg.Owner, "migrate", 0,
			obs.F("shed", float64(res.Shed)),
			obs.F("displaced", float64(res.Displaced)),
			obs.F("max_backlog", float64(a.cfg.MaxBacklog)),
			obs.F("backlog", float64(res.Backlog))))
	}
	return res
}

// DropBacklog clears all pending moves (used when a policy epoch
// invalidates prior decisions).
func (a *AsyncMigrator) DropBacklog() {
	a.pending = a.pending[:0]
	a.queued.Clear()
}
