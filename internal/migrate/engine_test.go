package migrate

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// testEnv builds a small two-tier system with a replicated page table for
// nthreads and npages pages mapped into the slow tier by thread 0.
func testEnv(t *testing.T, nthreads, npages int, opts func(*Config)) (*Engine, *pagetable.Replicated, *mem.Tiers) {
	t.Helper()
	tiers := mem.NewTiers([mem.NumTiers]mem.TierConfig{
		mem.TierFast: {Name: "fast", CapacityPages: 64, UnloadedLatency: 70, BandwidthGBs: 205},
		mem.TierSlow: {Name: "slow", CapacityPages: 512, UnloadedLatency: 162, BandwidthGBs: 25},
	})
	rt := pagetable.NewReplicated(nthreads)
	for vp := pagetable.VPage(0); vp < pagetable.VPage(npages); vp++ {
		f, ok := tiers.Alloc(mem.TierSlow)
		if !ok {
			t.Fatal("slow tier exhausted in setup")
		}
		if err := rt.Map(0, vp, pagetable.NewPTE(f, 0)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		Cost:           machine.DefaultCostModel(),
		Tiers:          tiers,
		Table:          rt,
		Cpus:           32,
		ProcessThreads: nthreads,
	}
	if opts != nil {
		opts(&cfg)
	}
	return NewEngine(cfg), rt, tiers
}

func TestMigrateSyncPromotes(t *testing.T) {
	e, rt, tiers := testEnv(t, 4, 8, nil)
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}})
	if res.Moved != 2 || res.Failed != 0 {
		t.Fatalf("moved=%d failed=%d", res.Moved, res.Failed)
	}
	for vp := pagetable.VPage(0); vp < 2; vp++ {
		p, ok := rt.Lookup(vp)
		if !ok || p.Frame().Tier != mem.TierFast {
			t.Fatalf("page %d not in fast tier: %v", vp, p)
		}
		if p.Accessed() || p.Dirty() {
			t.Fatalf("migrated page %d has stale A/D bits", vp)
		}
	}
	if tiers.Fast().Used() != 2 {
		t.Fatalf("fast used = %d", tiers.Fast().Used())
	}
	if tiers.Slow().Used() != 6 {
		t.Fatalf("slow used = %d (old frames not freed?)", tiers.Slow().Used())
	}
	if res.Breakdown.Total() <= 0 {
		t.Fatal("migration cost not charged")
	}
}

func TestMigrateSyncPreservesOwnership(t *testing.T) {
	e, rt, _ := testEnv(t, 4, 4, nil)
	rt.Touch(2, 1, false) // page 1 becomes shared
	e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}})
	p0, _ := rt.Lookup(0)
	if p0.Shared() || p0.Owner() != 0 {
		t.Fatalf("private page lost ownership: %v", p0)
	}
	p1, _ := rt.Lookup(1)
	if !p1.Shared() {
		t.Fatalf("shared page lost shared marker: %v", p1)
	}
}

func TestMigrateSyncOutcomes(t *testing.T) {
	e, _, _ := testEnv(t, 2, 4, nil)
	e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	res := e.MigrateSync([]Move{
		{VP: 0, To: mem.TierFast},   // already there
		{VP: 100, To: mem.TierFast}, // never mapped
		{VP: 1, To: mem.TierFast},   // fine
	})
	if res.Outcomes[0] != AlreadyThere {
		t.Fatalf("outcome[0] = %v", res.Outcomes[0])
	}
	if res.Outcomes[1] != NotMapped {
		t.Fatalf("outcome[1] = %v", res.Outcomes[1])
	}
	if res.Outcomes[2] != Moved {
		t.Fatalf("outcome[2] = %v", res.Outcomes[2])
	}
	if res.Failed != 1 || res.Moved != 1 {
		t.Fatalf("failed=%d moved=%d", res.Failed, res.Moved)
	}
}

func TestMigrateSyncDestinationFull(t *testing.T) {
	e, rt, tiers := testEnv(t, 2, 80, nil)
	var moves []Move
	for vp := pagetable.VPage(0); vp < 80; vp++ {
		moves = append(moves, Move{VP: vp, To: mem.TierFast})
	}
	res := e.MigrateSync(moves)
	if res.Moved != 64 {
		t.Fatalf("moved = %d, want fast capacity 64", res.Moved)
	}
	if res.Failed != 16 {
		t.Fatalf("failed = %d, want 16", res.Failed)
	}
	// Failed pages must still be mapped in the slow tier.
	noFrames := 0
	for i, o := range res.Outcomes {
		if o == NoFrame {
			noFrames++
			p, ok := rt.Lookup(moves[i].VP)
			if !ok || p.Frame().Tier != mem.TierSlow {
				t.Fatalf("NoFrame page %d lost its mapping: %v %v", moves[i].VP, p, ok)
			}
		}
	}
	if noFrames != 16 {
		t.Fatalf("NoFrame outcomes = %d", noFrames)
	}
	if tiers.Fast().FreePages() != 0 {
		t.Fatal("fast tier should be exactly full")
	}
}

func TestMigrateSyncEmptyAndNoopBatches(t *testing.T) {
	e, _, _ := testEnv(t, 2, 2, nil)
	if c := e.MigrateSync(nil).Cycles(); c != 0 {
		t.Fatalf("empty batch cost %v cycles", c)
	}
	// All pages already in place: no kernel entry, no cost.
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierSlow}})
	if res.Cycles() != 0 {
		t.Fatalf("no-op batch cost %v cycles", res.Cycles())
	}
}

func TestMigrateTargetedShootdownScope(t *testing.T) {
	// Private page with targeted shootdowns: scope is just the owner.
	e, _, _ := testEnv(t, 8, 4, func(c *Config) { c.TargetedShootdown = true })
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if res.Targets != 1 {
		t.Fatalf("targets = %d, want 1 (private page)", res.Targets)
	}

	// Without targeting: all process threads.
	e2, _, _ := testEnv(t, 8, 4, nil)
	res2 := e2.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if res2.Targets != 8 {
		t.Fatalf("untargeted targets = %d, want 8", res2.Targets)
	}
	if res2.Breakdown.TLB <= res.Breakdown.TLB {
		t.Fatal("targeted shootdown not cheaper")
	}
}

func TestMigrateSharedPageScopeWidens(t *testing.T) {
	e, rt, _ := testEnv(t, 8, 4, func(c *Config) { c.TargetedShootdown = true })
	rt.Touch(3, 0, false)
	rt.Touch(5, 0, false)
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if res.Targets != 3 { // owner 0 + threads 3, 5
		t.Fatalf("shared page targets = %d, want 3", res.Targets)
	}
}

func TestMigrateInvalidateCallback(t *testing.T) {
	var invalidated []pagetable.VPage
	var scopes [][]int
	e, _, _ := testEnv(t, 4, 4, func(c *Config) {
		c.Invalidate = func(vp pagetable.VPage, threads []int) {
			invalidated = append(invalidated, vp)
			scopes = append(scopes, threads)
		}
	})
	e.MigrateSync([]Move{{VP: 1, To: mem.TierFast}, {VP: 2, To: mem.TierFast}})
	if len(invalidated) != 2 {
		t.Fatalf("invalidate callbacks = %d, want 2", len(invalidated))
	}
	if len(scopes[0]) != 4 {
		t.Fatalf("scope size = %d, want all 4 threads", len(scopes[0]))
	}
}

func TestOptimizedPrepReducesCost(t *testing.T) {
	base, _, _ := testEnv(t, 4, 4, nil)
	opt, _, _ := testEnv(t, 4, 4, func(c *Config) { c.OptimizedPrep = true })
	rb := base.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	ro := opt.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if ro.Breakdown.Prep >= rb.Breakdown.Prep {
		t.Fatalf("optimized prep %v not cheaper than %v",
			ro.Breakdown.Prep, rb.Breakdown.Prep)
	}
}

func TestShadowingDemoteByRemap(t *testing.T) {
	e, rt, tiers := testEnv(t, 2, 4, func(c *Config) { c.Shadowing = true })
	// Promote: slow frame should be retained as shadow.
	e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if !e.HasShadow(0) {
		t.Fatal("promotion did not create a shadow")
	}
	if tiers.Slow().Used() != 4 {
		t.Fatalf("slow used = %d, want 4 (shadow retained)", tiers.Slow().Used())
	}
	// Demote without writing: must remap, not copy.
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierSlow}})
	if res.Remapped != 1 || res.Moved != 0 {
		t.Fatalf("remapped=%d moved=%d, want shadow remap", res.Remapped, res.Moved)
	}
	if res.Breakdown.Copy != 0 {
		t.Fatal("shadow demotion charged a copy")
	}
	p, _ := rt.Lookup(0)
	if p.Frame().Tier != mem.TierSlow {
		t.Fatal("page not back in slow tier")
	}
	if tiers.Fast().Used() != 0 {
		t.Fatal("fast frame leaked")
	}
	if e.HasShadow(0) {
		t.Fatal("shadow survived consumption")
	}
}

func TestShadowingDirtyPageCopies(t *testing.T) {
	e, rt, _ := testEnv(t, 2, 4, func(c *Config) { c.Shadowing = true })
	e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	rt.Touch(0, 0, true) // write -> dirty; the shadow is stale
	e.InvalidateShadow(0)
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierSlow}})
	if res.Moved != 1 || res.Remapped != 0 {
		t.Fatalf("dirty demotion moved=%d remapped=%d, want full copy",
			res.Moved, res.Remapped)
	}
}

func TestShadowStatsAndDrop(t *testing.T) {
	e, _, tiers := testEnv(t, 2, 4, func(c *Config) { c.Shadowing = true })
	e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}})
	st := e.Shadows()
	if st.Live != 2 || st.Created != 2 {
		t.Fatalf("stats = %+v", st)
	}
	e.DropAllShadows()
	st = e.Shadows()
	if st.Live != 0 || st.Dropped != 2 {
		t.Fatalf("after drop stats = %+v", st)
	}
	if tiers.Slow().Used() != 2 {
		t.Fatalf("slow used = %d after dropping shadows, want 2", tiers.Slow().Used())
	}
}

func TestFrameConservationUnderChurn(t *testing.T) {
	// Invariant: used+free per tier equals capacity after arbitrary
	// promote/demote churn, with shadowing enabled.
	e, _, tiers := testEnv(t, 4, 32, func(c *Config) {
		c.Shadowing = true
		c.TargetedShootdown = true
	})
	for round := 0; round < 20; round++ {
		var up, down []Move
		for vp := pagetable.VPage(0); vp < 32; vp++ {
			if (int(vp)+round)%3 == 0 {
				up = append(up, Move{VP: vp, To: mem.TierFast})
			} else {
				down = append(down, Move{VP: vp, To: mem.TierSlow})
			}
		}
		e.MigrateSync(up)
		e.MigrateSync(down)
	}
	fast, slow := tiers.Fast(), tiers.Slow()
	if fast.Used()+fast.FreePages() != fast.Capacity() {
		t.Fatal("fast tier frame leak")
	}
	if slow.Used()+slow.FreePages() != slow.Capacity() {
		t.Fatal("slow tier frame leak")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	tiers := mem.NewTiers([mem.NumTiers]mem.TierConfig{
		mem.TierFast: {Name: "f", CapacityPages: 1, UnloadedLatency: 1, BandwidthGBs: 1},
		mem.TierSlow: {Name: "s", CapacityPages: 1, UnloadedLatency: 1, BandwidthGBs: 1},
	})
	tbl := pagetable.New()
	cases := map[string]Config{
		"nil tiers":   {Table: tbl, Cpus: 1, ProcessThreads: 1},
		"nil table":   {Tiers: tiers, Cpus: 1, ProcessThreads: 1},
		"zero cpus":   {Tiers: tiers, Table: tbl, ProcessThreads: 1},
		"zero thread": {Tiers: tiers, Table: tbl, Cpus: 1},
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			NewEngine(cfg)
		}()
	}
}

func TestEngineWithPlainTable(t *testing.T) {
	// The engine must also drive a conventional process-wide table.
	tiers := mem.NewTiers([mem.NumTiers]mem.TierConfig{
		mem.TierFast: {Name: "f", CapacityPages: 8, UnloadedLatency: 70, BandwidthGBs: 205},
		mem.TierSlow: {Name: "s", CapacityPages: 8, UnloadedLatency: 162, BandwidthGBs: 25},
	})
	tbl := pagetable.New()
	f, _ := tiers.Alloc(mem.TierSlow)
	tbl.Map(0, pagetable.NewPTE(f, 0))
	e := NewEngine(Config{
		Cost: machine.DefaultCostModel(), Tiers: tiers, Table: tbl,
		Cpus: 4, ProcessThreads: 2,
	})
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}})
	if res.Moved != 1 {
		t.Fatalf("moved = %d", res.Moved)
	}
	p, _ := tbl.Lookup(0)
	if p.Frame().Tier != mem.TierFast {
		t.Fatal("plain table page not promoted")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Moved: "moved", Remapped: "remapped", AlreadyThere: "already-there",
		NotMapped: "not-mapped", NoFrame: "no-frame", Outcome(99): "outcome(99)",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}
