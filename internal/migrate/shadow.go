package migrate

import (
	"sort"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// shadowStore tracks slow-tier shadow frames of promoted pages. A shadow
// lets a later demotion of a still-clean page complete with a remap
// instead of a copy, the thrash-mitigation technique Vulcan borrows from
// Nomad (§3.5).
type shadowStore struct {
	frames map[pagetable.VPage]mem.Frame
	// lifetime counters
	created  uint64
	consumed uint64
	dropped  uint64
}

// ShadowStats summarizes shadow activity.
type ShadowStats struct {
	Live     int
	Created  uint64
	Consumed uint64 // demotions satisfied by remap
	Dropped  uint64 // invalidated by writes or replacement
}

func newShadowStore() *shadowStore {
	return &shadowStore{frames: make(map[pagetable.VPage]mem.Frame)}
}

func (s *shadowStore) put(vp pagetable.VPage, f mem.Frame) {
	s.frames[vp] = f
	s.created++
}

// take removes and returns vp's shadow. The caller owns the frame.
func (s *shadowStore) take(vp pagetable.VPage) (mem.Frame, bool) {
	f, ok := s.frames[vp]
	if !ok {
		return mem.NilFrame, false
	}
	delete(s.frames, vp)
	s.consumed++
	return f, true
}

// drop removes vp's shadow because it became stale (written after
// promotion, or replaced by a newer promotion). The caller owns the frame.
func (s *shadowStore) drop(vp pagetable.VPage) (mem.Frame, bool) {
	f, ok := s.frames[vp]
	if !ok {
		return mem.NilFrame, false
	}
	delete(s.frames, vp)
	s.dropped++
	return f, true
}

func (s *shadowStore) has(vp pagetable.VPage) bool {
	_, ok := s.frames[vp]
	return ok
}

// drain removes all shadows, returning their frames; counted as dropped.
// Frames come back in VPage order: they are released to the tier free
// list, so map-order iteration here would scramble every later
// allocation and break seeded replay.
func (s *shadowStore) drain() []mem.Frame {
	vps := make([]pagetable.VPage, 0, len(s.frames))
	for vp := range s.frames {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	out := make([]mem.Frame, 0, len(vps))
	for _, vp := range vps {
		out = append(out, s.frames[vp])
		delete(s.frames, vp)
		s.dropped++
	}
	return out
}

func (s *shadowStore) stats() ShadowStats {
	return ShadowStats{
		Live:     len(s.frames),
		Created:  s.created,
		Consumed: s.consumed,
		Dropped:  s.dropped,
	}
}
