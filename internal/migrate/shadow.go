package migrate

import (
	"vulcan/internal/dense"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
)

// shadowStore tracks slow-tier shadow frames of promoted pages. A shadow
// lets a later demotion of a still-clean page complete with a remap
// instead of a copy, the thrash-mitigation technique Vulcan borrows from
// Nomad (§3.5).
//
// Frames live in a dense paged map keyed by page number: promotion and
// demotion churn put/delete pages constantly, which on a Go map meant
// unreclaimed slots and steady bucket growth (the single largest
// allocation site in the checkpoint benchmark). The dense map also
// iterates in ascending page order by construction, so drain and
// Snapshot need no sort to stay deterministic.
type shadowStore struct {
	frames dense.Map // vp -> packed frame (see packFrame)
	// lifetime counters
	created  uint64
	consumed uint64
	dropped  uint64
}

// packFrame encodes a frame as a nonzero uint64 for the dense map; the
// +1 bias keeps {fast, index 0} distinguishable from "no shadow".
func packFrame(f mem.Frame) uint64 {
	return (uint64(f.Tier)<<32 | uint64(f.Index)) + 1
}

func unpackFrame(w uint64) mem.Frame {
	w--
	return mem.Frame{Tier: mem.TierID(w >> 32), Index: uint32(w)}
}

// ShadowStats summarizes shadow activity.
type ShadowStats struct {
	Live     int
	Created  uint64
	Consumed uint64 // demotions satisfied by remap
	Dropped  uint64 // invalidated by writes or replacement
}

func newShadowStore() *shadowStore {
	return &shadowStore{}
}

//vulcan:hotpath
func (s *shadowStore) put(vp pagetable.VPage, f mem.Frame) {
	s.frames.Set(uint64(vp), packFrame(f))
	s.created++
}

// take removes and returns vp's shadow. The caller owns the frame.
//
//vulcan:hotpath
func (s *shadowStore) take(vp pagetable.VPage) (mem.Frame, bool) {
	w := s.frames.Delete(uint64(vp))
	if w == 0 {
		return mem.NilFrame, false
	}
	s.consumed++
	return unpackFrame(w), true
}

// drop removes vp's shadow because it became stale (written after
// promotion, or replaced by a newer promotion). The caller owns the frame.
//
//vulcan:hotpath
func (s *shadowStore) drop(vp pagetable.VPage) (mem.Frame, bool) {
	w := s.frames.Delete(uint64(vp))
	if w == 0 {
		return mem.NilFrame, false
	}
	s.dropped++
	return unpackFrame(w), true
}

//vulcan:hotpath
func (s *shadowStore) has(vp pagetable.VPage) bool {
	return s.frames.Get(uint64(vp)) != 0
}

// drain removes all shadows, returning their frames; counted as dropped.
// Frames come back in VPage order: they are released to the tier free
// list, so unordered iteration here would scramble every later
// allocation and break seeded replay.
func (s *shadowStore) drain() []mem.Frame {
	out := make([]mem.Frame, 0, s.frames.Len())
	s.frames.ForEach(func(_, w uint64) {
		out = append(out, unpackFrame(w))
		s.dropped++
	})
	s.frames.Clear()
	return out
}

func (s *shadowStore) stats() ShadowStats {
	return ShadowStats{
		Live:     s.frames.Len(),
		Created:  s.created,
		Consumed: s.consumed,
		Dropped:  s.dropped,
	}
}
