package migrate

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
)

func asyncEnv(t *testing.T, npages int) (*AsyncMigrator, *pagetable.Replicated, *mem.Tiers) {
	t.Helper()
	eng, rt, tiers := testEnv(t, 4, npages, nil)
	return NewAsyncMigrator(AsyncConfig{
		Engine:     eng,
		MaxRetries: 3,
		BatchPages: 8,
		RNG:        sim.NewRNG(11),
	}), rt, tiers
}

func TestAsyncDrainsBacklogWithinBudget(t *testing.T) {
	a, rt, _ := asyncEnv(t, 16)
	for vp := pagetable.VPage(0); vp < 16; vp++ {
		a.Enqueue(Move{VP: vp, To: mem.TierFast})
	}
	if a.Backlog() != 16 {
		t.Fatalf("backlog = %d", a.Backlog())
	}
	res := a.RunEpoch(1e9, nil)
	if res.Moved != 16 || res.Backlog != 0 {
		t.Fatalf("moved=%d backlog=%d", res.Moved, res.Backlog)
	}
	for vp := pagetable.VPage(0); vp < 16; vp++ {
		p, _ := rt.Lookup(vp)
		if p.Frame().Tier != mem.TierFast {
			t.Fatalf("page %d not promoted", vp)
		}
	}
}

func TestAsyncBudgetThrottles(t *testing.T) {
	a, _, _ := asyncEnv(t, 64)
	for vp := pagetable.VPage(0); vp < 64; vp++ {
		a.Enqueue(Move{VP: vp, To: mem.TierFast})
	}
	// One batch of 8 costs well over 600K cycles (prep at 32 CPUs); give
	// a budget that admits roughly one batch.
	res := a.RunEpoch(700_000, nil)
	if res.Moved == 0 {
		t.Fatal("no progress within budget")
	}
	if res.Backlog == 0 {
		t.Fatal("entire backlog drained despite tiny budget")
	}
	// The remaining backlog drains across later epochs.
	total := res.Moved
	for i := 0; i < 100 && a.Backlog() > 0; i++ {
		total += a.RunEpoch(700_000, nil).Moved
	}
	if total != 64 {
		t.Fatalf("total moved = %d, want 64", total)
	}
}

func TestAsyncEnqueueDedup(t *testing.T) {
	a, _, _ := asyncEnv(t, 4)
	a.Enqueue(Move{VP: 1, To: mem.TierFast})
	a.Enqueue(Move{VP: 1, To: mem.TierFast})
	if a.Backlog() != 1 {
		t.Fatalf("backlog = %d after duplicate enqueue", a.Backlog())
	}
	// Re-enqueue with a different destination replaces it.
	a.Enqueue(Move{VP: 1, To: mem.TierSlow})
	if a.Backlog() != 1 {
		t.Fatalf("backlog = %d after replace", a.Backlog())
	}
	res := a.RunEpoch(1e9, nil)
	if res.Moved != 0 { // already in slow tier: no-op
		t.Fatalf("moved = %d, want 0", res.Moved)
	}
}

func TestAsyncWriteHotPagesAbort(t *testing.T) {
	a, rt, _ := asyncEnv(t, 8)
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		a.Enqueue(Move{VP: vp, To: mem.TierFast})
	}
	res := a.RunEpoch(1e12, func(pagetable.VPage) float64 { return 1.0 })
	if res.Aborted != 8 || res.Moved != 0 {
		t.Fatalf("aborted=%d moved=%d, want all aborts", res.Aborted, res.Moved)
	}
	// Aborted pages stay in the slow tier.
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		p, _ := rt.Lookup(vp)
		if p.Frame().Tier != mem.TierSlow {
			t.Fatalf("aborted page %d moved", vp)
		}
	}
	// Wasted copies must still cost cycles.
	if res.Cycles == 0 {
		t.Fatal("aborted migrations consumed no cycles")
	}
}

func TestAsyncModerateWritesRetryButCommit(t *testing.T) {
	a, _, _ := asyncEnv(t, 32)
	for vp := pagetable.VPage(0); vp < 32; vp++ {
		a.Enqueue(Move{VP: vp, To: mem.TierFast})
	}
	res := a.RunEpoch(1e12, func(pagetable.VPage) float64 { return 0.4 })
	if res.Moved == 0 {
		t.Fatal("no commits at moderate write rate")
	}
	if res.Retries == 0 {
		t.Fatal("no retries at 40% dirty probability")
	}
	if res.Moved+res.Aborted != 32 {
		t.Fatalf("moved+aborted = %d, want 32", res.Moved+res.Aborted)
	}
}

func TestAsyncCleanPagesNeverRetry(t *testing.T) {
	a, _, _ := asyncEnv(t, 8)
	for vp := pagetable.VPage(0); vp < 8; vp++ {
		a.Enqueue(Move{VP: vp, To: mem.TierFast})
	}
	res := a.RunEpoch(1e12, func(pagetable.VPage) float64 { return 0 })
	if res.Retries != 0 || res.Aborted != 0 || res.Moved != 8 {
		t.Fatalf("clean run: %+v", res)
	}
}

func TestAsyncStatsAccumulate(t *testing.T) {
	a, _, _ := asyncEnv(t, 8)
	a.Enqueue(Move{VP: 0, To: mem.TierFast})
	a.RunEpoch(1e9, nil)
	a.Enqueue(Move{VP: 1, To: mem.TierFast})
	a.RunEpoch(1e9, nil)
	st := a.Stats()
	if st.Enqueued != 2 || st.Moved != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CyclesUsed <= 0 {
		t.Fatal("cycles not accumulated")
	}
}

func TestAsyncDropBacklog(t *testing.T) {
	a, _, _ := asyncEnv(t, 8)
	a.Enqueue(Move{VP: 0, To: mem.TierFast})
	a.DropBacklog()
	if a.Backlog() != 0 {
		t.Fatal("backlog survived drop")
	}
	// Page can be re-enqueued after a drop.
	a.Enqueue(Move{VP: 0, To: mem.TierFast})
	if a.Backlog() != 1 {
		t.Fatal("re-enqueue after drop failed")
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	eng, _, _ := testEnv(t, 2, 2, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil engine did not panic")
			}
		}()
		NewAsyncMigrator(AsyncConfig{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative retries did not panic")
			}
		}()
		NewAsyncMigrator(AsyncConfig{Engine: eng, MaxRetries: -1})
	}()
}
