package migrate

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/obs"
	"vulcan/internal/obs/prof"
	"vulcan/internal/pagetable"
)

// TestEmitSyncNilSinkZeroAlloc pins the zero-allocation guarantee for
// the nil-obs.Sink path: with telemetry disabled, publishing a batch's
// events must not build a single Event (the obs.E variadic field list
// allocates, so every emission must be guarded by obs.Enabled).
func TestEmitSyncNilSinkZeroAlloc(t *testing.T) {
	e, _, _ := testEnv(t, 4, 8, nil)
	res := e.MigrateSync([]Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}})
	if e.cfg.Obs != nil {
		t.Fatal("testEnv should leave Obs nil")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		e.emitSync(res, 2)
	}); allocs != 0 {
		t.Fatalf("emitSync with nil sink allocated %.0f objects/op, want 0", allocs)
	}
}

// TestMigrateSyncSteadyStateAllocs pins the whole sync hot path: after
// warm-up, a batch migration with a nil sink allocates nothing — the
// scope bitmap, scope list, staging buffer, and Outcomes slice are all
// engine scratch reused across calls.
func TestMigrateSyncSteadyStateAllocs(t *testing.T) {
	e, _, _ := testEnv(t, 4, 32, func(c *Config) { c.TargetedShootdown = true })
	moves := []Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}}
	flip := func() {
		// Alternate destinations so every call migrates both pages.
		if moves[0].To == mem.TierFast {
			moves[0].To, moves[1].To = mem.TierSlow, mem.TierSlow
		} else {
			moves[0].To, moves[1].To = mem.TierFast, mem.TierFast
		}
	}
	// Warm up the reusable buffers.
	for i := 0; i < 4; i++ {
		e.MigrateSync(moves)
		flip()
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.MigrateSync(moves)
		flip()
	})
	if allocs != 0 {
		t.Fatalf("steady-state MigrateSync allocated %.0f objects/op, want 0", allocs)
	}
}

// TestMigrateSyncProfEnabledSteadyStateAllocs extends the hot-path
// allocation budget to an instrumented engine: charging every phase of
// a batch into the cost-attribution accounts must stay on the same
// zero-allocation budget as the uninstrumented path.
func TestMigrateSyncProfEnabledSteadyStateAllocs(t *testing.T) {
	e, _, _ := testEnv(t, 4, 32, func(c *Config) {
		c.TargetedShootdown = true
		c.Prof = prof.NewEngineAccounts(prof.New(), "bench")
	})
	moves := []Move{{VP: 0, To: mem.TierFast}, {VP: 1, To: mem.TierFast}}
	flip := func() {
		if moves[0].To == mem.TierFast {
			moves[0].To, moves[1].To = mem.TierSlow, mem.TierSlow
		} else {
			moves[0].To, moves[1].To = mem.TierFast, mem.TierFast
		}
	}
	for i := 0; i < 4; i++ {
		e.MigrateSync(moves)
		flip()
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.MigrateSync(moves)
		flip()
	})
	if allocs != 0 {
		t.Fatalf("prof-enabled MigrateSync allocated %.0f objects/op, want 0", allocs)
	}
	if pages := e.cfg.Prof.Sync.Copy.Count(); pages == 0 {
		t.Fatal("profiler accounts unchanged; the instrumented path was not exercised")
	}
}

// TestObsEnabledNilSinkZeroAlloc pins the guard itself.
func TestObsEnabledNilSinkZeroAlloc(t *testing.T) {
	var sink obs.Sink
	if allocs := testing.AllocsPerRun(100, func() {
		if obs.Enabled(sink, obs.EvMigrateSync) {
			t.Fatal("nil sink reported enabled")
		}
	}); allocs != 0 {
		t.Fatalf("obs.Enabled(nil, ...) allocated %.0f objects/op, want 0", allocs)
	}
}

// TestAsyncEnqueueOneSteadyStateAllocs pins the per-access enqueue path
// used by policies: once the backlog's backing array has grown,
// EnqueueOne must not allocate Move batches.
func TestAsyncEnqueueOneSteadyStateAllocs(t *testing.T) {
	e, _, _ := testEnv(t, 4, 32, nil)
	a := NewAsyncMigrator(AsyncConfig{Engine: e, BatchPages: 8})
	// Warm up: grow pending/queued, then drain.
	for vp := pagetable.VPage(0); vp < 16; vp++ {
		a.EnqueueOne(Move{VP: vp, To: mem.TierFast})
	}
	a.DropBacklog()
	vp := pagetable.VPage(0)
	allocs := testing.AllocsPerRun(8, func() {
		a.EnqueueOne(Move{VP: vp, To: mem.TierFast})
		vp++
	})
	if allocs != 0 {
		t.Fatalf("steady-state EnqueueOne allocated %.2f objects/op, want 0", allocs)
	}
}
