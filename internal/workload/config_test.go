package workload

import (
	"testing"

	"vulcan/internal/sim"
)

func TestBuildThreadsLayout(t *testing.T) {
	cfg := AppConfig{
		Name: "test", Class: BE, Threads: 4, RSSPages: 1000,
		SharedFraction: 0.5, ComputeNs: 100,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			return NewUniform(pages, 0.1, 0, rng)
		},
	}
	threads := BuildThreads(cfg, sim.NewRNG(1))
	if len(threads) != 4 {
		t.Fatalf("threads = %d", len(threads))
	}
	// Shared region is [0, 500); thread i private is [500+125i, 625+125i).
	for _, th := range threads {
		sawShared, sawPrivate := false, false
		for i := 0; i < 10_000; i++ {
			r := th.Next()
			switch {
			case r.Page < 500:
				sawShared = true
			case r.Page >= 500+th.ID*125 && r.Page < 500+(th.ID+1)*125:
				sawPrivate = true
			default:
				t.Fatalf("thread %d accessed page %d outside its regions", th.ID, r.Page)
			}
		}
		if !sawShared || !sawPrivate {
			t.Fatalf("thread %d: shared=%t private=%t", th.ID, sawShared, sawPrivate)
		}
	}
}

func TestBuildThreadsFullyShared(t *testing.T) {
	cfg := AppConfig{
		Name: "shared", Class: LC, Threads: 2, RSSPages: 100,
		SharedFraction: 1.0, ComputeNs: 0,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			return NewUniform(pages, 0, 0, rng)
		},
	}
	threads := BuildThreads(cfg, sim.NewRNG(2))
	for _, th := range threads {
		for i := 0; i < 1000; i++ {
			if p := th.Next().Page; p >= 100 {
				t.Fatalf("page %d beyond RSS", p)
			}
		}
	}
}

func TestBuildThreadsIndependentStreams(t *testing.T) {
	cfg := MemcachedConfig()
	threads := BuildThreads(cfg, sim.NewRNG(3))
	a, b := threads[0], threads[1]
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next().Page == b.Next().Page {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("threads correlated: %d/100 identical draws", same)
	}
}

func TestValidatePanics(t *testing.T) {
	gen := func(pages int, rng *sim.RNG) Generator { return NewUniform(pages, 0, 0, rng) }
	base := AppConfig{Name: "x", Threads: 1, RSSPages: 10, NewGen: gen}
	mutations := map[string]func(*AppConfig){
		"no name":     func(c *AppConfig) { c.Name = "" },
		"no threads":  func(c *AppConfig) { c.Threads = 0 },
		"no rss":      func(c *AppConfig) { c.RSSPages = 0 },
		"bad shared":  func(c *AppConfig) { c.SharedFraction = 1.5 },
		"neg compute": func(c *AppConfig) { c.ComputeNs = -1 },
		"no gen":      func(c *AppConfig) { c.NewGen = nil },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			cfg.Validate()
		}()
	}
	base.Validate() // the unmutated config is valid
}

func TestTable2Presets(t *testing.T) {
	mc, pr, ll := MemcachedConfig(), PageRankConfig(), LiblinearConfig()
	// Table 2 RSS ratios at 1/64 scale: 51, 42, 69 GB.
	if mc.RSSPages != ScaledPagesForGB(51) || mc.RSSPages != 208896 {
		t.Fatalf("memcached RSS = %d pages", mc.RSSPages)
	}
	if pr.RSSPages != 172032 {
		t.Fatalf("pagerank RSS = %d pages", pr.RSSPages)
	}
	if ll.RSSPages != 282624 {
		t.Fatalf("liblinear RSS = %d pages", ll.RSSPages)
	}
	if mc.Class != LC || pr.Class != BE || ll.Class != BE {
		t.Fatal("class assignment wrong")
	}
	// All run 8 threads on dedicated cores (paper §5.3).
	for _, cfg := range []AppConfig{mc, pr, ll} {
		if cfg.Threads != 8 {
			t.Fatalf("%s threads = %d, want 8", cfg.Name, cfg.Threads)
		}
		cfg.Validate()
		// The factory must build a working generator.
		g := cfg.NewGen(1000, sim.NewRNG(1))
		if g.Next().Page >= 1000 {
			t.Fatalf("%s generator out of range", cfg.Name)
		}
	}
	// Liblinear must be the most memory-intensive (lowest compute).
	if !(ll.ComputeNs < pr.ComputeNs && pr.ComputeNs < mc.ComputeNs) {
		t.Fatal("intensity ordering liblinear > pagerank > memcached violated")
	}
}

func TestNomadMicroConfig(t *testing.T) {
	cfg := NomadMicroConfig("micro", 10_000, 2_000, 0.5)
	cfg.Validate()
	g := cfg.NewGen(10_000, sim.NewRNG(4))
	nm, ok := g.(*NomadMicro)
	if !ok {
		t.Fatalf("generator type %T", g)
	}
	if nm.WSSPages() != 2000 {
		t.Fatalf("WSS = %d", nm.WSSPages())
	}
	// WSS clamps to the region when the factory gets a smaller region.
	small := cfg.NewGen(500, sim.NewRNG(5)).(*NomadMicro)
	if small.WSSPages() != 500 {
		t.Fatalf("clamped WSS = %d, want 500", small.WSSPages())
	}
}

func TestClassString(t *testing.T) {
	if LC.String() != "LC" || BE.String() != "BE" {
		t.Fatal("class strings wrong")
	}
}
