package workload

import (
	"math"
	"testing"

	"vulcan/internal/sim"
)

func countPages(g Generator, draws int) map[int]int {
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		r := g.Next()
		counts[r.Page]++
	}
	return counts
}

func TestUniformCoverageAndBounds(t *testing.T) {
	g := NewUniform(100, 0.2, 0.1, sim.NewRNG(1))
	counts := countPages(g, 50_000)
	for p := range counts {
		if p < 0 || p >= 100 {
			t.Fatalf("page %d out of range", p)
		}
	}
	if len(counts) < 95 {
		t.Fatalf("uniform covered only %d/100 pages", len(counts))
	}
}

func TestUniformWriteFraction(t *testing.T) {
	g := NewUniform(10, 0.3, 0, sim.NewRNG(2))
	writes := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	if f := float64(writes) / n; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("write fraction = %v, want 0.3", f)
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewZipfian(1000, 0.99, 0, 0, sim.NewRNG(3))
	counts := countPages(g, 100_000)
	if counts[0] < counts[500]*10 {
		t.Fatalf("insufficient skew: page0=%d page500=%d", counts[0], counts[500])
	}
}

func TestScanSequential(t *testing.T) {
	g := NewScan(5, 0, 0, sim.NewRNG(4))
	var got []int
	for i := 0; i < 12; i++ {
		got = append(got, g.Next().Page)
	}
	want := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestRegionValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	for name, fn := range map[string]func(){
		"zero pages":     func() { NewUniform(0, 0, 0, rng) },
		"bad write frac": func() { NewUniform(10, 1.5, 0, rng) },
		"neg write frac": func() { NewScan(10, -0.1, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKeyValueHotSetConcentration(t *testing.T) {
	g := NewKeyValue(1000, KeyValueParams{}, sim.NewRNG(5))
	if g.HotPages() != 100 {
		t.Fatalf("hot pages = %d, want 100", g.HotPages())
	}
	hot := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if g.Next().Page < g.HotPages() {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("hot-set hit fraction = %v, want ~0.9", frac)
	}
}

func TestKeyValueLLCLocality(t *testing.T) {
	g := NewKeyValue(1000, KeyValueParams{}, sim.NewRNG(6))
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Page < g.HotPages() && r.LLCHitProb != 0.70 {
			t.Fatalf("hot access LLC prob = %v", r.LLCHitProb)
		}
		if r.Page >= g.HotPages() && r.LLCHitProb != 0.05 {
			t.Fatalf("cold access LLC prob = %v", r.LLCHitProb)
		}
	}
}

func TestKeyValueWriteMix(t *testing.T) {
	g := NewKeyValue(100, KeyValueParams{}, sim.NewRNG(7))
	writes := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	if f := float64(writes) / n; math.Abs(f-0.1) > 0.01 {
		t.Fatalf("SET fraction = %v, want 0.1 (90%% GETs)", f)
	}
}

func TestGraphWalkRegions(t *testing.T) {
	g := NewGraphWalk(1000, sim.NewRNG(8))
	if g.VertexPages() != 200 {
		t.Fatalf("vertex pages = %d, want 200", g.VertexPages())
	}
	vertexAccesses, edgeWrites := 0, 0
	const n = 50_000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Page < g.VertexPages() {
			vertexAccesses++
		} else if r.Write {
			edgeWrites++
		}
	}
	if edgeWrites != 0 {
		t.Fatalf("%d writes to read-only edge lists", edgeWrites)
	}
	frac := float64(vertexAccesses) / n
	if math.Abs(frac-0.45) > 0.02 {
		t.Fatalf("vertex access fraction = %v, want ~0.45", frac)
	}
}

func TestMLTrainRegions(t *testing.T) {
	g := NewMLTrain(3200, sim.NewRNG(9))
	if g.WeightPages() != 100 {
		t.Fatalf("weight pages = %d, want 100", g.WeightPages())
	}
	if g.ActivePages() != 640 {
		t.Fatalf("active pages = %d, want 640", g.ActivePages())
	}
	streamBase := g.WeightPages() + g.ActivePages()
	lastStream := -1
	weight, active, stream := 0, 0, 0
	const n = 20_000
	for i := 0; i < n; i++ {
		r := g.Next()
		switch {
		case r.Page < g.WeightPages():
			weight++
		case r.Page < streamBase:
			active++
			if r.Write {
				t.Fatal("write to active set")
			}
		default:
			stream++
			// Streaming region must advance sequentially (modulo wrap).
			if lastStream >= 0 && r.Page != lastStream+1 && r.Page != streamBase {
				t.Fatalf("stream jumped from %d to %d", lastStream, r.Page)
			}
			lastStream = r.Page
		}
	}
	if f := float64(weight) / n; f < 0.08 || f > 0.12 {
		t.Fatalf("weight fraction = %v, want ~0.10", f)
	}
	if f := float64(active) / n; f < 0.27 || f > 0.33 {
		t.Fatalf("active fraction = %v, want ~0.30", f)
	}
	if f := float64(stream) / n; f < 0.56 || f > 0.64 {
		t.Fatalf("stream fraction = %v, want ~0.60", f)
	}
}

func TestMLTrainDataIsColdInCache(t *testing.T) {
	g := NewMLTrain(3200, sim.NewRNG(10))
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.Page >= g.WeightPages() && r.LLCHitProb > 0.05 {
			t.Fatalf("data access with LLC prob %v", r.LLCHitProb)
		}
	}
}

func TestMLTrainTinyRegion(t *testing.T) {
	// Degenerate sizes must still partition sanely.
	g := NewMLTrain(3, sim.NewRNG(11))
	if g.WeightPages() < 1 || g.ActivePages() < 1 {
		t.Fatalf("regions: w=%d a=%d", g.WeightPages(), g.ActivePages())
	}
	for i := 0; i < 100; i++ {
		if p := g.Next().Page; p < 0 || p >= 3 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestNomadMicroWSSConcentration(t *testing.T) {
	g := NewNomadMicro(10_000, 1_000, 0.5, sim.NewRNG(11))
	inWSS := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if g.Next().Page < g.WSSPages() {
			inWSS++
		}
	}
	if frac := float64(inWSS) / n; frac < 0.95 {
		t.Fatalf("WSS concentration = %v, want > 0.95", frac)
	}
}

func TestNomadMicroValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	for name, fn := range map[string]func(){
		"wss zero":     func() { NewNomadMicro(100, 0, 0, rng) },
		"wss too big":  func() { NewNomadMicro(100, 101, 0, rng) },
		"bad writemix": func() { NewNomadMicro(100, 10, 2, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGeneratorNames(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, tc := range []struct {
		g    Generator
		want string
	}{
		{NewUniform(10, 0, 0, rng), "uniform"},
		{NewZipfian(10, 1, 0, 0, rng), "zipfian"},
		{NewScan(10, 0, 0, rng), "scan"},
		{NewKeyValue(10, KeyValueParams{}, rng), "keyvalue"},
		{NewGraphWalk(10, rng), "graphwalk"},
		{NewMLTrain(64, rng), "mltrain"},
		{NewNomadMicro(10, 5, 0, rng), "nomad-micro"},
	} {
		if tc.g.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.g.Name(), tc.want)
		}
		if tc.g.Pages() <= 0 {
			t.Errorf("%s Pages = %d", tc.want, tc.g.Pages())
		}
	}
}
