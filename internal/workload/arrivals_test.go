package workload

import (
	"math"
	"testing"
)

func arrivalTemplate() AppConfig {
	cfg := NomadMicroConfig("churn", 4096, 1024, 0.2)
	cfg.Threads = 1
	return cfg
}

// sameArrivals compares plans on their identifying coordinates (the
// AppConfig carries a generator closure, which defeats DeepEqual).
func sameArrivals(a, b []Arrival) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Epoch != b[i].Epoch ||
			a[i].Depart != b[i].Depart || a[i].App.Name != b[i].App.Name {
			return false
		}
	}
	return true
}

// TestArrivalPlanDeterministic pins the core contract: the plan is a
// pure value of the spec, and a longer horizon extends the shorter
// plan without disturbing its prefix.
func TestArrivalPlanDeterministic(t *testing.T) {
	spec := ArrivalSpec{Seed: 7, Rate: 0.4, Template: arrivalTemplate(),
		LifetimeMin: 3, LifetimeMax: 10}
	a := spec.Plan(60)
	b := spec.Plan(60)
	if !sameArrivals(a, b) {
		t.Fatal("two expansions of the same spec disagree")
	}
	long := spec.Plan(120)
	if len(long) < len(a) {
		t.Fatalf("longer horizon produced fewer arrivals: %d < %d", len(long), len(a))
	}
	if !sameArrivals(long[:len(a)], a) {
		t.Fatal("extending the horizon changed the already-expanded prefix")
	}
	if len(a) == 0 {
		t.Fatal("rate 0.4 over 60 epochs produced no arrivals")
	}
	for i, ar := range a {
		if ar.ID != i {
			t.Fatalf("arrival %d has ID %d; IDs must be dense and ordered", i, ar.ID)
		}
		if ar.App.Name != InstanceName("churn", i) {
			t.Fatalf("arrival %d named %q", i, ar.App.Name)
		}
		if ar.Depart != 0 && (ar.Depart-ar.Epoch < 3 || ar.Depart-ar.Epoch > 10) {
			t.Fatalf("arrival %d lifetime %d outside [3, 10]", i, ar.Depart-ar.Epoch)
		}
	}
}

// TestArrivalPlanPoissonMean checks the sampler against its mean over a
// long horizon (law of large numbers, generous tolerance).
func TestArrivalPlanPoissonMean(t *testing.T) {
	spec := ArrivalSpec{Seed: 11, Rate: 1.5, Template: arrivalTemplate()}
	const epochs = 4000
	got := float64(len(spec.Plan(epochs))) / epochs
	if math.Abs(got-1.5) > 0.15 {
		t.Fatalf("empirical rate %.3f, want 1.5 ± 0.15", got)
	}
}

// TestArrivalPlanSeedsDiverge: different seeds give different plans.
func TestArrivalPlanSeedsDiverge(t *testing.T) {
	a := ArrivalSpec{Seed: 1, Rate: 0.5, Template: arrivalTemplate()}.Plan(80)
	b := ArrivalSpec{Seed: 2, Rate: 0.5, Template: arrivalTemplate()}.Plan(80)
	if sameArrivals(a, b) {
		t.Fatal("seeds 1 and 2 expanded to identical plans")
	}
}

// TestArrivalPlanMaxLive: the live-instance cap drops excess arrivals.
func TestArrivalPlanMaxLive(t *testing.T) {
	spec := ArrivalSpec{Seed: 3, Rate: 2, Template: arrivalTemplate(),
		LifetimeMin: 5, LifetimeMax: 5, MaxLive: 2}
	plan := spec.Plan(100)
	for e := 0; e < 100; e++ {
		if n := liveAt(plan, e); n > 2 {
			t.Fatalf("epoch %d has %d live instances, cap is 2", e, n)
		}
	}
	if len(plan) == 0 {
		t.Fatal("cap 2 dropped every arrival")
	}
}

// TestArrivalPlanSchedule: trace-driven expansion is literal.
func TestArrivalPlanSchedule(t *testing.T) {
	spec := ArrivalSpec{Seed: 9, Template: arrivalTemplate(),
		Schedule: []ScheduledArrival{{Epoch: 2, Lifetime: 4}, {Epoch: 2}, {Epoch: 7, Lifetime: 1}}}
	plan := spec.Plan(10)
	if len(plan) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(plan))
	}
	want := []Arrival{
		{ID: 0, Epoch: 2, Depart: 6},
		{ID: 1, Epoch: 2, Depart: 0},
		{ID: 2, Epoch: 7, Depart: 8},
	}
	for i, w := range want {
		got := plan[i]
		if got.ID != w.ID || got.Epoch != w.Epoch || got.Depart != w.Depart {
			t.Fatalf("arrival %d = {id %d, epoch %d, depart %d}, want {id %d, epoch %d, depart %d}",
				i, got.ID, got.Epoch, got.Depart, w.ID, w.Epoch, w.Depart)
		}
	}
	// Entries beyond the horizon are not expanded.
	if n := len(spec.Plan(5)); n != 2 {
		t.Fatalf("horizon 5 expanded %d arrivals, want 2", n)
	}
}

// TestArrivalSpecValidate: malformed specs panic.
func TestArrivalSpecValidate(t *testing.T) {
	bad := []ArrivalSpec{
		{Rate: 1, Template: AppConfig{}},
		{Rate: -1, Template: arrivalTemplate()},
		{Template: arrivalTemplate()},
		{Rate: 1, Template: arrivalTemplate(), Schedule: []ScheduledArrival{{Epoch: 1}}},
		{Rate: 1, Template: arrivalTemplate(), LifetimeMin: 5, LifetimeMax: 2},
	}
	for i, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d validated; want panic", i)
				}
			}()
			spec.Validate()
		}()
	}
}
