package workload

import (
	"fmt"
	"math"
)

// Arrival-process workload generation: deterministic job churn for
// dynamic runs. An ArrivalSpec describes either a Poisson arrival
// process (mean rate per epoch) or an explicit schedule, stamped from a
// template AppConfig; Plan expands it into the concrete admission /
// departure sequence for a run horizon. Every draw is a pure hash of
// (seed, coordinates) — the fault injector's idiom — so the plan for a
// horizon is a value: batch runs, the serving daemon and a resumed
// daemon all expand the identical sequence, and extending the horizon
// never changes the prefix already expanded.

// Arrival is one generated application instance.
type Arrival struct {
	// ID numbers instances in admission order, 0-based across the whole
	// plan; it is stamped into the instance name.
	ID int
	// Epoch is the boundary at which the instance is admitted (the app
	// starts with epoch Epoch+1's access simulation).
	Epoch int
	// Depart is the boundary at which the instance is stopped; 0 means
	// it runs to the end of the scenario.
	Depart int
	// App is the resolved per-instance config: the spec's template with
	// the instance name stamped in.
	App AppConfig
}

// ScheduledArrival is one entry of an explicit arrival schedule.
type ScheduledArrival struct {
	// Epoch of admission.
	Epoch int
	// Lifetime in epochs; 0 runs to the end of the scenario.
	Lifetime int
}

// ArrivalSpec describes a deterministic arrival process.
type ArrivalSpec struct {
	// Seed isolates the arrival stream from every other consumer of the
	// scenario seed.
	Seed uint64
	// Rate is the Poisson mean, in arrivals per epoch. Mutually
	// exclusive with Schedule.
	Rate float64
	// Template is the per-instance AppConfig; instance i is admitted as
	// "<template-name>-a<i>" (three-digit, zero-padded).
	Template AppConfig
	// LifetimeMin/LifetimeMax bound the uniformly drawn instance
	// lifetime in epochs. LifetimeMax 0 means instances run to the end.
	LifetimeMin, LifetimeMax int
	// MaxLive caps concurrently live generated instances; arrivals
	// beyond the cap are dropped (not deferred), modeling loss-style
	// admission control. 0 = unbounded.
	MaxLive int
	// Schedule, when non-empty, replaces the Poisson process with an
	// explicit trace of arrivals.
	Schedule []ScheduledArrival
}

// maxArrivalsPerEpoch bounds a single epoch's Poisson draw; beyond it
// the tail probability is astronomically small for any sane rate, and
// the bound keeps a mis-set rate from expanding an unbounded plan.
const maxArrivalsPerEpoch = 64

// Validate panics on malformed specs, mirroring AppConfig.Validate.
func (s ArrivalSpec) Validate() {
	if s.Template.Name == "" {
		panic("workload: arrival spec without a template name")
	}
	if s.Rate < 0 {
		panic(fmt.Sprintf("workload: arrival rate %g < 0", s.Rate))
	}
	if s.Rate > 0 && len(s.Schedule) > 0 {
		panic("workload: arrival spec with both a rate and an explicit schedule")
	}
	if s.Rate == 0 && len(s.Schedule) == 0 {
		panic("workload: arrival spec with neither a rate nor a schedule")
	}
	if s.LifetimeMin < 0 || s.LifetimeMax < 0 || (s.LifetimeMax > 0 && s.LifetimeMin > s.LifetimeMax) {
		panic(fmt.Sprintf("workload: arrival lifetime range [%d, %d] is malformed", s.LifetimeMin, s.LifetimeMax))
	}
	for _, sc := range s.Schedule {
		if sc.Epoch < 0 || sc.Lifetime < 0 {
			panic(fmt.Sprintf("workload: scheduled arrival {epoch %d, lifetime %d} is malformed", sc.Epoch, sc.Lifetime))
		}
	}
}

// Plan expands the spec into the arrival sequence for a run of the
// given epoch count, in (epoch, id) order. The expansion is a pure
// function of the spec: any two calls agree on their common prefix.
func (s ArrivalSpec) Plan(epochs int) []Arrival {
	s.Validate()
	var out []Arrival
	id := 0
	for e := 0; e < epochs; e++ {
		n, scheduled := s.countAt(e)
		for i := 0; i < n; i++ {
			if s.MaxLive > 0 && liveAt(out, e) >= s.MaxLive {
				break
			}
			lifetime := 0
			if scheduled != nil {
				lifetime = scheduled[i].Lifetime
			} else if s.LifetimeMax > 0 {
				span := s.LifetimeMax - s.LifetimeMin + 1
				lifetime = s.LifetimeMin + int(s.u01(0x6c696665, uint64(id))*float64(span))
			}
			a := Arrival{ID: id, Epoch: e, App: s.Template}
			a.App.Name = InstanceName(s.Template.Name, id)
			if lifetime > 0 {
				a.Depart = e + lifetime
			}
			out = append(out, a)
			id++
		}
	}
	return out
}

// InstanceName is the canonical name of arrival-plan instance id under
// the given template prefix.
func InstanceName(prefix string, id int) string {
	return fmt.Sprintf("%s-a%03d", prefix, id)
}

// countAt returns the arrival count for one epoch, plus the matching
// schedule entries when the spec is trace-driven (nil for Poisson).
func (s ArrivalSpec) countAt(epoch int) (int, []ScheduledArrival) {
	if len(s.Schedule) > 0 {
		var at []ScheduledArrival
		for _, sc := range s.Schedule {
			if sc.Epoch == epoch {
				at = append(at, sc)
			}
		}
		return len(at), at
	}
	return s.poisson(epoch), nil
}

// poisson draws the epoch's arrival count by Knuth's method over the
// counter-indexed uniform stream for that epoch.
func (s ArrivalSpec) poisson(epoch int) int {
	limit := math.Exp(-s.Rate)
	k := 0
	prod := 1.0
	for draw := 0; ; draw++ {
		prod *= s.u01(uint64(epoch), uint64(draw))
		if prod <= limit {
			return k
		}
		k++
		if k >= maxArrivalsPerEpoch {
			return k
		}
	}
}

// liveAt counts plan instances live at the given epoch boundary.
func liveAt(plan []Arrival, epoch int) int {
	n := 0
	for _, a := range plan {
		if a.Epoch <= epoch && (a.Depart == 0 || a.Depart > epoch) {
			n++
		}
	}
	return n
}

// u01 derives the uniform draw at coordinates (a, b): one SplitMix64
// avalanche over the seed, the template identity and the per-component
// odd multipliers (the fault injector's construction).
func (s ArrivalSpec) u01(a, b uint64) float64 {
	h := arrivalMix(arrivalMix(s.Seed^0x41525249564c5321) ^
		arrivalHash(s.Template.Name)*0xff51afd7ed558ccd ^
		a*0xc4ceb9fe1a85ec53 ^ b*0xd6e8feb86659fd93)
	return float64(h>>11) / (1 << 53)
}

// arrivalMix is the SplitMix64 finalizer.
func arrivalMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// arrivalHash is FNV-1a, inlined to keep the package dependency-free.
func arrivalHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}
