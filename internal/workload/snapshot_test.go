package workload

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/sim"
)

// generatorPairs builds (live, fresh) twins of every generator kind:
// same construction parameters, deliberately different RNG seeds so a
// restore that fails to overwrite the stream is caught.
func generatorPairs() map[string][2]Generator {
	const pages = 300
	mk := func(f func(rng *sim.RNG) Generator) [2]Generator {
		return [2]Generator{f(sim.NewRNG(3)), f(sim.NewRNG(999))}
	}
	return map[string][2]Generator{
		"uniform": mk(func(r *sim.RNG) Generator { return NewUniform(pages, 0.2, 0.1, r) }),
		"zipf":    mk(func(r *sim.RNG) Generator { return NewZipfian(pages, 0.99, 0.2, 0.1, r) }),
		"scan":    mk(func(r *sim.RNG) Generator { return NewScan(pages, 0.3, 0.1, r) }),
		"keyvalue": mk(func(r *sim.RNG) Generator {
			return NewKeyValue(pages, KeyValueParams{}, r)
		}),
		"graph":   mk(func(r *sim.RNG) Generator { return NewGraphWalk(pages, r) }),
		"mltrain": mk(func(r *sim.RNG) Generator { return NewMLTrain(pages, r) }),
		"web":     mk(func(r *sim.RNG) Generator { return NewWebServer(pages, r) }),
		"micro":   mk(func(r *sim.RNG) Generator { return NewNomadMicro(pages, 64, 0.2, r) }),
		"hashjoin": mk(func(r *sim.RNG) Generator {
			return NewHashJoin(pages, 100, r)
		}),
	}
}

// TestGeneratorSnapshotRoundTrip drives each generator mid-stream,
// snapshots it, restores into a differently-seeded twin, and requires
// the next thousand references to be identical.
func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	for name, pair := range generatorPairs() {
		live, fresh := pair[0], pair[1]
		for i := 0; i < 700; i++ {
			live.Next()
		}

		w := checkpoint.NewWriter()
		SnapshotGenerator(w.Section("gen", 1), live)
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		d, err := cr.Section("gen", 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := RestoreGenerator(d, fresh); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("%s: unread snapshot bytes: %v", name, err)
		}
		for i := 0; i < 1000; i++ {
			if a, b := live.Next(), fresh.Next(); a != b {
				t.Fatalf("%s: ref %d after restore: %+v != %+v", name, i, a, b)
			}
		}
	}
}

func TestRestoreGeneratorRejectsMismatch(t *testing.T) {
	snap := func(g Generator) []byte {
		e := &checkpoint.Encoder{}
		SnapshotGenerator(e, g)
		return e.Bytes()
	}
	zipf := snap(NewZipfian(100, 0.99, 0.2, 0.1, sim.NewRNG(1)))

	// Wrong generator type.
	if err := RestoreGenerator(checkpoint.NewDecoder(zipf), NewScan(100, 0.2, 0.1, sim.NewRNG(1))); err == nil {
		t.Fatal("zipf snapshot restored into scan generator")
	}
	// Wrong region size.
	if err := RestoreGenerator(checkpoint.NewDecoder(zipf), NewZipfian(200, 0.99, 0.2, 0.1, sim.NewRNG(1))); err == nil {
		t.Fatal("100-page snapshot restored into 200-page generator")
	}
	// Truncations.
	for cut := 0; cut < len(zipf); cut += 5 {
		g := NewZipfian(100, 0.99, 0.2, 0.1, sim.NewRNG(1))
		if err := RestoreGenerator(checkpoint.NewDecoder(zipf[:cut]), g); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
