package workload

import (
	"fmt"

	"vulcan/internal/checkpoint"
)

// SnapshotGenerator appends g's durable state, tagged with its name so
// Restore can verify it is deserializing into the same generator type.
// Generators that do not implement the checkpoint contract are a
// writer-side bug (every generator in the repository implements it), so
// this panics rather than silently writing an unrestorable blob.
func SnapshotGenerator(e *checkpoint.Encoder, g Generator) {
	s, ok := g.(checkpoint.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("workload: generator %q is not snapshottable", g.Name()))
	}
	e.String(g.Name())
	e.Int(g.Pages())
	s.Snapshot(e)
}

// RestoreGenerator reads state written by SnapshotGenerator back into g,
// which must be a freshly-constructed generator of the same type over
// the same region.
func RestoreGenerator(d *checkpoint.Decoder, g Generator) error {
	tag := d.String()
	pages := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if tag != g.Name() {
		return fmt.Errorf("workload: checkpoint holds a %q generator, restoring into %q",
			tag, g.Name())
	}
	if pages != g.Pages() {
		return fmt.Errorf("workload: generator %q over %d pages in checkpoint, %d configured",
			tag, pages, g.Pages())
	}
	s, ok := g.(checkpoint.Snapshotter)
	if !ok {
		return fmt.Errorf("workload: generator %q is not snapshottable", g.Name())
	}
	return s.Restore(d)
}

// Snapshot appends the thread's durable state: its RNG and both
// generator streams. The Zipf samplers inside generators alias the
// generator's own RNG, so restoring that RNG in place restores them too.
func (t *Thread) Snapshot(e *checkpoint.Encoder) {
	t.rng.Snapshot(e)
	SnapshotGenerator(e, t.shared)
	e.Bool(t.private != nil)
	if t.private != nil {
		SnapshotGenerator(e, t.private)
	}
}

// Restore reads the thread state back in place.
func (t *Thread) Restore(d *checkpoint.Decoder) error {
	if err := t.rng.Restore(d); err != nil {
		return err
	}
	if err := RestoreGenerator(d, t.shared); err != nil {
		return err
	}
	hasPrivate := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasPrivate != (t.private != nil) {
		return fmt.Errorf("workload: thread %d private-generator presence mismatch", t.ID)
	}
	if t.private != nil {
		return RestoreGenerator(d, t.private)
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (u *Uniform) Snapshot(e *checkpoint.Encoder) { u.rng.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (u *Uniform) Restore(d *checkpoint.Decoder) error { return u.rng.Restore(d) }

// Snapshot implements checkpoint.Snapshotter. The Zipf sampler draws
// from the same RNG, so no further state is needed.
func (z *Zipfian) Snapshot(e *checkpoint.Encoder) { z.rng.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (z *Zipfian) Restore(d *checkpoint.Decoder) error { return z.rng.Restore(d) }

// Snapshot implements checkpoint.Snapshotter.
func (s *Scan) Snapshot(e *checkpoint.Encoder) {
	e.Int(s.cursor)
	s.rng.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (s *Scan) Restore(d *checkpoint.Decoder) error {
	cursor := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if cursor < 0 || cursor >= s.pages {
		return fmt.Errorf("workload: scan cursor %d outside [0,%d)", cursor, s.pages)
	}
	s.cursor = cursor
	return s.rng.Restore(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (k *KeyValue) Snapshot(e *checkpoint.Encoder) { k.rng.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (k *KeyValue) Restore(d *checkpoint.Decoder) error { return k.rng.Restore(d) }

// Snapshot implements checkpoint.Snapshotter.
func (g *GraphWalk) Snapshot(e *checkpoint.Encoder) {
	e.Int(g.edgeCursor)
	g.rng.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (g *GraphWalk) Restore(d *checkpoint.Decoder) error {
	cursor := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if cursor < 0 || g.vertexPages+cursor >= g.pages {
		return fmt.Errorf("workload: graphwalk edge cursor %d out of range", cursor)
	}
	g.edgeCursor = cursor
	return g.rng.Restore(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (m *MLTrain) Snapshot(e *checkpoint.Encoder) {
	e.Int(m.dataCursor)
	m.rng.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (m *MLTrain) Restore(d *checkpoint.Decoder) error {
	cursor := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if cursor < 0 || m.weightPages+m.activePages+cursor >= m.pages {
		return fmt.Errorf("workload: mltrain data cursor %d out of range", cursor)
	}
	m.dataCursor = cursor
	return m.rng.Restore(d)
}

// Snapshot implements checkpoint.Snapshotter.
func (n *NomadMicro) Snapshot(e *checkpoint.Encoder) { n.rng.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (n *NomadMicro) Restore(d *checkpoint.Decoder) error { return n.rng.Restore(d) }

// Snapshot implements checkpoint.Snapshotter.
func (w *WebServer) Snapshot(e *checkpoint.Encoder) { w.rng.Snapshot(e) }

// Restore implements checkpoint.Snapshotter.
func (w *WebServer) Restore(d *checkpoint.Decoder) error { return w.rng.Restore(d) }

// Snapshot implements checkpoint.Snapshotter.
func (h *HashJoin) Snapshot(e *checkpoint.Encoder) {
	e.Int(h.emitted)
	e.Int(h.buildC)
	e.Int(h.probeC)
	h.rng.Snapshot(e)
}

// Restore implements checkpoint.Snapshotter.
func (h *HashJoin) Restore(d *checkpoint.Decoder) error {
	emitted, buildC, probeC := d.Int(), d.Int(), d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if emitted < 0 || buildC < 0 || probeC < 0 ||
		buildC >= h.buildPages || h.hashPages+h.buildPages+probeC >= h.pages {
		return fmt.Errorf("workload: hashjoin cursors (%d,%d,%d) out of range",
			emitted, buildC, probeC)
	}
	h.emitted, h.buildC, h.probeC = emitted, buildC, probeC
	return h.rng.Restore(d)
}
