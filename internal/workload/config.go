package workload

import (
	"fmt"

	"vulcan/internal/mem"
	"vulcan/internal/sim"
)

// Class labels a workload's service objective.
type Class uint8

// LC workloads are latency-critical (online services); BE workloads are
// best-effort (batch/throughput). The paper's fairness mechanism treats
// them asymmetrically (Algorithm 1 serves LC borrowers first).
const (
	LC Class = iota
	BE
)

// String returns "LC" or "BE".
func (c Class) String() string {
	if c == LC {
		return "LC"
	}
	return "BE"
}

// GenFactory builds a generator over a region of pages.
type GenFactory func(pages int, rng *sim.RNG) Generator

// AppConfig describes one co-located application.
type AppConfig struct {
	Name    string
	Class   Class
	Threads int
	// RSSPages is the resident set size in 4KiB pages (already scaled).
	RSSPages int
	// SharedFraction of the RSS is shared by all threads; the remainder
	// is partitioned into per-thread private slices. This drives the
	// private/shared page classification of §3.4–3.5.
	SharedFraction float64
	// ComputeNs is the fixed non-memory work per operation; it sets the
	// workload's memory-access intensity.
	ComputeNs sim.Duration
	// OpsPerSec, when nonzero, makes the workload open-loop: operations
	// arrive at this total rate (across threads) instead of being issued
	// as fast as the CPU allows. Latency-critical services are open-loop
	// — their per-page access frequency is set by request rate, not by
	// memory bandwidth, which is precisely why their hot pages look
	// "cold" next to streaming best-effort workloads (Observation #1).
	OpsPerSec float64
	// NewGen builds the access-pattern generator used for both the shared
	// region and each private slice.
	NewGen GenFactory
	// StartAt delays the app's arrival (Figure 9's staggered starts).
	StartAt sim.Time
	// PremapFraction of the RSS is faulted in at admission (default 1.0
	// = fully warmed, as the paper's measured phases are). Lower values
	// leave the rest to demand faulting as the access stream touches it,
	// so the resident set grows over time — the "RSS changes" dynamic of
	// Figure 9(c).
	PremapFraction float64
}

// Validate panics on malformed configs; returning errors would just move
// the crash to the first epoch.
func (c AppConfig) Validate() {
	if c.Name == "" {
		panic("workload: app without a name")
	}
	if c.Threads <= 0 {
		panic(fmt.Sprintf("workload: app %s with %d threads", c.Name, c.Threads))
	}
	if c.RSSPages <= 0 {
		panic(fmt.Sprintf("workload: app %s with RSS %d", c.Name, c.RSSPages))
	}
	if c.SharedFraction < 0 || c.SharedFraction > 1 {
		panic(fmt.Sprintf("workload: app %s shared fraction %v", c.Name, c.SharedFraction))
	}
	if c.ComputeNs < 0 {
		panic(fmt.Sprintf("workload: app %s negative compute", c.Name))
	}
	if c.OpsPerSec < 0 {
		panic(fmt.Sprintf("workload: app %s negative ops rate", c.Name))
	}
	if c.PremapFraction < 0 || c.PremapFraction > 1 {
		panic(fmt.Sprintf("workload: app %s premap fraction %v", c.Name, c.PremapFraction))
	}
	if c.NewGen == nil {
		panic(fmt.Sprintf("workload: app %s without a generator", c.Name))
	}
}

// Thread draws page references for one application thread: mostly from
// the shared region, sometimes from its private slice, mapped into the
// app's flat page space ([shared][private0][private1]...).
type Thread struct {
	ID          int
	shared      Generator
	private     Generator
	sharedProb  float64
	privateBase int
	rng         *sim.RNG
}

// Next returns the next reference in app page space.
func (t *Thread) Next() Ref {
	if t.private == nil || t.rng.Bool(t.sharedProb) {
		return t.shared.Next()
	}
	r := t.private.Next()
	r.Page += t.privateBase
	return r
}

// BuildThreads constructs the per-thread access streams for cfg. Each
// thread gets independent RNG streams forked from rng.
func BuildThreads(cfg AppConfig, rng *sim.RNG) []*Thread {
	cfg.Validate()
	sharedPages := int(float64(cfg.RSSPages) * cfg.SharedFraction)
	if sharedPages < 1 {
		sharedPages = 1
	}
	privPer := (cfg.RSSPages - sharedPages) / cfg.Threads
	// One backing array each for the threads and their RNG streams; the
	// per-thread fork order (shared, thread, private) is the determinism
	// contract and must not change.
	backing := make([]Thread, cfg.Threads)
	rngs := make([]sim.RNG, 3*cfg.Threads)
	threads := make([]*Thread, cfg.Threads)
	forked := 0
	fork := func() *sim.RNG {
		child := &rngs[forked]
		forked++
		rng.ForkInto(child)
		return child
	}
	for i := range backing {
		t := &backing[i]
		t.ID = i
		t.shared = cfg.NewGen(sharedPages, fork())
		t.sharedProb = cfg.SharedFraction
		t.rng = fork()
		if privPer > 0 {
			t.private = cfg.NewGen(privPer, fork())
			t.privateBase = sharedPages + i*privPer
		} else {
			t.sharedProb = 1
		}
		threads[i] = t
	}
	return threads
}

// ScaledPagesForGB converts a paper-scale footprint in GiB to simulated
// pages at the repository's 1/mem.Scale capacity scale.
func ScaledPagesForGB(gb int) int {
	return gb << 30 / mem.PageSize / mem.Scale
}

// The Table 2 applications, at 1/64 scale. Intensities (ComputeNs) are
// calibrated so the per-page miss rates reproduce Figure 1's dynamics:
// Liblinear's streaming passes dominate miss-based profiles, while
// Memcached's cache-friendly hot set under-registers.

// MemcachedConfig returns the LC key-value workload (51 GB RSS): an
// open-loop service whose request rate — not the CPU — bounds its memory
// traffic, leaving its hot pages with modest absolute access counts.
func MemcachedConfig() AppConfig {
	return AppConfig{
		Name:           "memcached",
		Class:          LC,
		Threads:        8,
		RSSPages:       ScaledPagesForGB(51),
		SharedFraction: 0.90,
		ComputeNs:      100 * sim.Nanosecond,
		OpsPerSec:      1.2e6,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			return NewKeyValue(pages, KeyValueParams{}, rng)
		},
	}
}

// PageRankConfig returns the BE graph workload (42 GB RSS), closed-loop.
func PageRankConfig() AppConfig {
	return AppConfig{
		Name:           "pagerank",
		Class:          BE,
		Threads:        8,
		RSSPages:       ScaledPagesForGB(42),
		SharedFraction: 0.85,
		ComputeNs:      80 * sim.Nanosecond,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			return NewGraphWalk(pages, rng)
		},
	}
}

// LiblinearConfig returns the BE linear-classification workload (69 GB
// RSS, KDD12-scale dataset): closed-loop streaming at memory speed, the
// fast-tier monopolizer of Figure 1.
func LiblinearConfig() AppConfig {
	return AppConfig{
		Name:           "liblinear",
		Class:          BE,
		Threads:        8,
		RSSPages:       ScaledPagesForGB(69),
		SharedFraction: 0.85,
		ComputeNs:      25 * sim.Nanosecond,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			return NewMLTrain(pages, rng)
		},
	}
}

// NomadMicroConfig returns a Figure 8 microbenchmark app with the given
// working set and resident set in pages and read/write mix.
func NomadMicroConfig(name string, rssPages, wssPages int, writeFrac float64) AppConfig {
	return AppConfig{
		Name:           name,
		Class:          BE,
		Threads:        8,
		RSSPages:       rssPages,
		SharedFraction: 1.0, // the microbenchmark shares one region
		ComputeNs:      60 * sim.Nanosecond,
		NewGen: func(pages int, rng *sim.RNG) Generator {
			wss := wssPages
			if wss > pages {
				wss = pages
			}
			return NewNomadMicro(pages, wss, writeFrac, rng)
		},
	}
}
