// Package workload provides synthetic access-pattern generators for the
// paper's applications (Memcached/YCSB-C, PageRank, Liblinear/KDD12), the
// Nomad-style WSS/RSS microbenchmark used in Figure 8, and generic
// building blocks (uniform, Zipfian, sequential scan).
//
// Each generator emits page-level references annotated with a last-level
// cache hit probability. LLC locality matters twice: cache-resident
// accesses never reach memory (so tier placement cannot help them), and
// miss-based profilers (PEBS) never see them — which is precisely how
// latency-critical workloads with cache-friendly hot sets end up looking
// "cold" next to streaming best-effort workloads (Observation #1).
package workload

import (
	"fmt"

	"vulcan/internal/sim"
)

// Ref is one generated page reference.
type Ref struct {
	Page  int  // page index within the generator's region [0, Pages())
	Write bool // store vs load
	// LLCHitProb is the probability this access is absorbed by the CPU
	// cache and never reaches memory.
	LLCHitProb float64
}

// Generator produces a stream of page references over a fixed-size
// region. Generators own their RNG and are deterministic from the seed.
type Generator interface {
	Name() string
	Pages() int
	Next() Ref
}

// Uniform references every page with equal probability.
type Uniform struct {
	pages     int
	writeFrac float64
	llcHit    float64
	rng       *sim.RNG
}

// NewUniform builds a uniform generator over pages pages.
func NewUniform(pages int, writeFrac, llcHit float64, rng *sim.RNG) *Uniform {
	checkRegion(pages, writeFrac)
	return &Uniform{pages: pages, writeFrac: writeFrac, llcHit: llcHit, rng: rng}
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Pages implements Generator.
func (u *Uniform) Pages() int { return u.pages }

// Next implements Generator.
func (u *Uniform) Next() Ref {
	return Ref{
		Page:       u.rng.Intn(u.pages),
		Write:      u.rng.Bool(u.writeFrac),
		LLCHitProb: u.llcHit,
	}
}

// Zipfian references pages with a Zipf(skew) popularity distribution;
// rank 0 (the hottest) is page 0, matching the paper's microbenchmarks
// that allocate hot data contiguously.
type Zipfian struct {
	pages     int
	writeFrac float64
	llcHit    float64
	zipf      *sim.Zipf
	rng       *sim.RNG
}

// NewZipfian builds a Zipfian generator.
func NewZipfian(pages int, skew, writeFrac, llcHit float64, rng *sim.RNG) *Zipfian {
	checkRegion(pages, writeFrac)
	return &Zipfian{
		pages:     pages,
		writeFrac: writeFrac,
		llcHit:    llcHit,
		zipf:      sim.NewZipf(rng, pages, skew),
		rng:       rng,
	}
}

// Name implements Generator.
func (z *Zipfian) Name() string { return "zipfian" }

// Pages implements Generator.
func (z *Zipfian) Pages() int { return z.pages }

// Next implements Generator.
func (z *Zipfian) Next() Ref {
	return Ref{
		Page:       z.zipf.Next(),
		Write:      z.rng.Bool(z.writeFrac),
		LLCHitProb: z.llcHit,
	}
}

// Scan walks the region sequentially, wrapping around — the streaming
// pattern of dataset passes. Sequential streams have near-zero LLC
// residence by construction.
type Scan struct {
	pages     int
	writeFrac float64
	llcHit    float64
	cursor    int
	rng       *sim.RNG
}

// NewScan builds a sequential scan generator.
func NewScan(pages int, writeFrac, llcHit float64, rng *sim.RNG) *Scan {
	checkRegion(pages, writeFrac)
	return &Scan{pages: pages, writeFrac: writeFrac, llcHit: llcHit, rng: rng}
}

// Name implements Generator.
func (s *Scan) Name() string { return "scan" }

// Pages implements Generator.
func (s *Scan) Pages() int { return s.pages }

// Next implements Generator.
func (s *Scan) Next() Ref {
	p := s.cursor
	s.cursor++
	if s.cursor >= s.pages {
		s.cursor = 0
	}
	return Ref{Page: p, Write: s.rng.Bool(s.writeFrac), LLCHitProb: s.llcHit}
}

func checkRegion(pages int, writeFrac float64) {
	if pages <= 0 {
		panic(fmt.Sprintf("workload: region of %d pages", pages))
	}
	if writeFrac < 0 || writeFrac > 1 {
		panic(fmt.Sprintf("workload: write fraction %v outside [0,1]", writeFrac))
	}
}
