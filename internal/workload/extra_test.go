package workload

import (
	"math"
	"testing"

	"vulcan/internal/sim"
)

func TestWebServerRegions(t *testing.T) {
	g := NewWebServer(2000, sim.NewRNG(1))
	if g.SessionPages() != 100 {
		t.Fatalf("session pages = %d, want 100", g.SessionPages())
	}
	session, cache, content := 0, 0, 0
	const n = 50_000
	for i := 0; i < n; i++ {
		r := g.Next()
		switch {
		case r.Page < 100:
			session++
		case r.Page < 400:
			cache++
		default:
			content++
			if r.Write {
				t.Fatal("write to read-only content store")
			}
		}
	}
	if f := float64(session) / n; math.Abs(f-0.45) > 0.02 {
		t.Fatalf("session fraction = %v, want ~0.45", f)
	}
	if f := float64(cache) / n; math.Abs(f-0.35) > 0.02 {
		t.Fatalf("cache fraction = %v, want ~0.35", f)
	}
	if f := float64(content) / n; math.Abs(f-0.20) > 0.02 {
		t.Fatalf("content fraction = %v, want ~0.20", f)
	}
}

func TestWebServerSessionSkew(t *testing.T) {
	g := NewWebServer(2000, sim.NewRNG(2))
	counts := make(map[int]int)
	for i := 0; i < 50_000; i++ {
		if r := g.Next(); r.Page < g.SessionPages() {
			counts[r.Page]++
		}
	}
	if counts[0] < 20*counts[90] && counts[90] > 0 {
		t.Fatalf("session popularity not skewed: head=%d tail=%d", counts[0], counts[90])
	}
}

func TestWebServerTinyRegion(t *testing.T) {
	g := NewWebServer(5, sim.NewRNG(3))
	for i := 0; i < 200; i++ {
		if p := g.Next().Page; p < 0 || p >= 5 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestHashJoinPhases(t *testing.T) {
	g := NewHashJoin(1000, 500, sim.NewRNG(4))
	if g.HashPages() != 200 {
		t.Fatalf("hash pages = %d, want 200", g.HashPages())
	}
	if !g.InBuildPhase() {
		t.Fatal("join must start in build phase")
	}
	// During build: hash-table accesses are writes, streaming hits the
	// build relation (pages 200..399).
	for i := 0; i < 500; i++ {
		r := g.Next()
		if r.Page < 200 {
			if !r.Write {
				t.Fatal("build-phase hash access not a write")
			}
		} else if r.Page >= 400 {
			t.Fatalf("build phase touched probe relation page %d", r.Page)
		}
	}
	if g.InBuildPhase() {
		t.Fatal("phase did not flip after phaseLength refs")
	}
	// During probe: hash accesses are reads, streaming hits pages 400+.
	for i := 0; i < 500; i++ {
		r := g.Next()
		if r.Page < 200 {
			if r.Write {
				t.Fatal("probe-phase hash access is a write")
			}
		} else if r.Page < 400 {
			t.Fatalf("probe phase touched build relation page %d", r.Page)
		}
	}
	if !g.InBuildPhase() {
		t.Fatal("phase did not flip back")
	}
}

func TestHashJoinWriteIntensityFlips(t *testing.T) {
	// The hash region's write intensity must flip between phases — the
	// signal Vulcan's biased queues react to (Table 1 classification).
	g := NewHashJoin(1000, 2000, sim.NewRNG(5))
	countWrites := func(n int) (hashWrites, hashRefs int) {
		for i := 0; i < n; i++ {
			r := g.Next()
			if r.Page < g.HashPages() {
				hashRefs++
				if r.Write {
					hashWrites++
				}
			}
		}
		return
	}
	w1, r1 := countWrites(2000) // build
	w2, r2 := countWrites(2000) // probe
	if r1 == 0 || r2 == 0 {
		t.Fatal("no hash refs sampled")
	}
	if w1 != r1 {
		t.Fatalf("build-phase hash writes %d/%d, want all", w1, r1)
	}
	if w2 != 0 {
		t.Fatalf("probe-phase hash writes %d, want none", w2)
	}
}

func TestHashJoinValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero phase length did not panic")
		}
	}()
	NewHashJoin(100, 0, sim.NewRNG(1))
}

func TestExtraGeneratorIdentity(t *testing.T) {
	rng := sim.NewRNG(1)
	if NewWebServer(100, rng).Name() != "webserver" {
		t.Fatal("webserver name")
	}
	if NewHashJoin(100, 10, rng).Name() != "hashjoin" {
		t.Fatal("hashjoin name")
	}
}
