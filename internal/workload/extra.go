package workload

import "vulcan/internal/sim"

// WebServer models a session-oriented online service (LC): each request
// touches a session record (Zipf-popular sessions), a shared in-memory
// cache with high LLC residence, and occasionally a large cold content
// store. Compared to KeyValue it has a deeper cold tail and a smaller,
// hotter head — the profile of a web/API tier.
type WebServer struct {
	pages        int
	sessionPages int
	cachePages   int
	sessionZipf  *sim.Zipf
	rng          *sim.RNG
}

// NewWebServer builds the generator: 5% session records, 15% cache, 80%
// content store.
func NewWebServer(pages int, rng *sim.RNG) *WebServer {
	checkRegion(pages, 0)
	sessions := pages / 20
	if sessions < 1 {
		sessions = 1
	}
	cache := pages * 15 / 100
	if cache < 1 {
		cache = 1
	}
	if sessions+cache >= pages {
		sessions, cache = 1, 1
	}
	return &WebServer{
		pages:        pages,
		sessionPages: sessions,
		cachePages:   cache,
		sessionZipf:  sim.NewZipf(rng, sessions, 1.1),
		rng:          rng,
	}
}

// Name implements Generator.
func (w *WebServer) Name() string { return "webserver" }

// Pages implements Generator.
func (w *WebServer) Pages() int { return w.pages }

// SessionPages returns the session-record region size.
func (w *WebServer) SessionPages() int { return w.sessionPages }

// Next implements Generator.
func (w *WebServer) Next() Ref {
	r := w.rng.Float64()
	switch {
	case r < 0.45:
		// Session read/update: popular sessions, frequent writes.
		return Ref{
			Page:       w.sessionZipf.Next(),
			Write:      w.rng.Bool(0.35),
			LLCHitProb: 0.55,
		}
	case r < 0.80:
		// Cache lookups: mostly LLC-resident.
		return Ref{
			Page:       w.sessionPages + w.rng.Intn(w.cachePages),
			Write:      w.rng.Bool(0.05),
			LLCHitProb: 0.80,
		}
	default:
		// Cold content fetch.
		base := w.sessionPages + w.cachePages
		return Ref{
			Page:       base + w.rng.Intn(w.pages-base),
			Write:      false,
			LLCHitProb: 0.03,
		}
	}
}

// HashJoin models an analytics hash join (BE) with two distinct phases,
// exercising how quickly a tiering policy re-adapts when the working set
// shifts:
//
//   - Build: stream the smaller relation while writing a hash-table
//     region randomly (write-intensive random access — the worst case
//     for async migration).
//   - Probe: stream the larger relation while reading the hash table
//     randomly (read-intensive; the hash table is the hot set).
//
// Phases alternate every PhaseLength references.
type HashJoin struct {
	pages       int
	hashPages   int
	buildPages  int
	phaseLength int

	emitted int
	buildC  int
	probeC  int
	rng     *sim.RNG
}

// NewHashJoin builds the generator: 20% hash table, 20% build relation,
// 60% probe relation; phases flip every phaseLength refs.
func NewHashJoin(pages, phaseLength int, rng *sim.RNG) *HashJoin {
	checkRegion(pages, 0)
	if phaseLength <= 0 {
		panic("workload: non-positive phase length")
	}
	hash := pages / 5
	build := pages / 5
	if hash < 1 {
		hash = 1
	}
	if build < 1 {
		build = 1
	}
	if hash+build >= pages {
		hash, build = 1, 1
	}
	return &HashJoin{
		pages:       pages,
		hashPages:   hash,
		buildPages:  build,
		phaseLength: phaseLength,
		rng:         rng,
	}
}

// Name implements Generator.
func (h *HashJoin) Name() string { return "hashjoin" }

// Pages implements Generator.
func (h *HashJoin) Pages() int { return h.pages }

// HashPages returns the hash-table region size.
func (h *HashJoin) HashPages() int { return h.hashPages }

// InBuildPhase reports which phase the next reference belongs to.
func (h *HashJoin) InBuildPhase() bool {
	return (h.emitted/h.phaseLength)%2 == 0
}

// Next implements Generator.
func (h *HashJoin) Next() Ref {
	build := h.InBuildPhase()
	h.emitted++
	if h.rng.Bool(0.5) {
		// Hash-table access: writes while building, reads while probing.
		return Ref{
			Page:       h.rng.Intn(h.hashPages),
			Write:      build,
			LLCHitProb: 0.20,
		}
	}
	if build {
		p := h.hashPages + h.buildC
		h.buildC++
		if h.buildC >= h.buildPages {
			h.buildC = 0
		}
		return Ref{Page: p, Write: false, LLCHitProb: 0.03}
	}
	base := h.hashPages + h.buildPages
	p := base + h.probeC
	h.probeC++
	if base+h.probeC >= h.pages {
		h.probeC = 0
	}
	return Ref{Page: p, Write: false, LLCHitProb: 0.03}
}
