package workload

import "vulcan/internal/sim"

// KeyValue models a Memcached-style in-memory store under YCSB-C-like
// load: a small hot key set absorbs most requests (paper §5.3: "a hot key
// set accessed 90% of the time"), GET/SET mix defaults to 90/10, and the
// hot set is substantially cache-friendly — which is exactly why
// miss-based profilers underestimate its heat.
type KeyValue struct {
	pages    int
	hotPages int
	hotProb  float64
	setFrac  float64
	hotHit   float64
	coldHit  float64
	rng      *sim.RNG
}

// KeyValueParams tunes a KeyValue generator; zero values select the
// paper's defaults.
type KeyValueParams struct {
	HotFraction float64 // of pages in the hot set (default 0.10)
	HotProb     float64 // of accesses hitting the hot set (default 0.90)
	SetFraction float64 // writes (default 0.10: 90% GETs / 10% SETs)
	HotLLCHit   float64 // default 0.70
	ColdLLCHit  float64 // default 0.05
}

func (p *KeyValueParams) defaults() {
	if p.HotFraction == 0 {
		p.HotFraction = 0.10
	}
	if p.HotProb == 0 {
		p.HotProb = 0.90
	}
	if p.SetFraction == 0 {
		p.SetFraction = 0.10
	}
	if p.HotLLCHit == 0 {
		p.HotLLCHit = 0.70
	}
	if p.ColdLLCHit == 0 {
		p.ColdLLCHit = 0.05
	}
}

// NewKeyValue builds the generator over pages pages.
func NewKeyValue(pages int, params KeyValueParams, rng *sim.RNG) *KeyValue {
	checkRegion(pages, 0)
	params.defaults()
	hot := int(float64(pages) * params.HotFraction)
	if hot < 1 {
		hot = 1
	}
	return &KeyValue{
		pages:    pages,
		hotPages: hot,
		hotProb:  params.HotProb,
		setFrac:  params.SetFraction,
		hotHit:   params.HotLLCHit,
		coldHit:  params.ColdLLCHit,
		rng:      rng,
	}
}

// Name implements Generator.
func (k *KeyValue) Name() string { return "keyvalue" }

// Pages implements Generator.
func (k *KeyValue) Pages() int { return k.pages }

// HotPages returns the size of the hot key region.
func (k *KeyValue) HotPages() int { return k.hotPages }

// Next implements Generator.
func (k *KeyValue) Next() Ref {
	write := k.rng.Bool(k.setFrac)
	if k.rng.Bool(k.hotProb) {
		// Hot keys are roughly equally popular: every hot page matters,
		// so losing part of the hot set to the slow tier hurts
		// proportionally (the cold-page dilemma's victim profile).
		return Ref{Page: k.rng.Intn(k.hotPages), Write: write, LLCHitProb: k.hotHit}
	}
	cold := k.hotPages + k.rng.Intn(k.pages-k.hotPages)
	return Ref{Page: cold, Write: write, LLCHitProb: k.coldHit}
}

// GraphWalk models PageRank-style graph processing: streaming reads of
// edge lists mixed with power-law random access to vertex state, with
// rank updates writing the vertex region (paper: "memory- and
// compute-intensive graph algorithm execution", "intensive irregular
// random access").
type GraphWalk struct {
	pages       int
	vertexPages int
	vertexProb  float64
	vertexWrite float64
	vertexZipf  *sim.Zipf
	edgeCursor  int
	rng         *sim.RNG
}

// NewGraphWalk builds the generator: the first 20% of pages hold vertex
// state (rank arrays), the rest hold edge lists.
func NewGraphWalk(pages int, rng *sim.RNG) *GraphWalk {
	checkRegion(pages, 0)
	v := pages / 5
	if v < 1 {
		v = 1
	}
	return &GraphWalk{
		pages:       pages,
		vertexPages: v,
		vertexProb:  0.45,
		vertexWrite: 0.30,
		vertexZipf:  sim.NewZipf(rng, v, 0.75),
		rng:         rng,
	}
}

// Name implements Generator.
func (g *GraphWalk) Name() string { return "graphwalk" }

// Pages implements Generator.
func (g *GraphWalk) Pages() int { return g.pages }

// VertexPages returns the size of the vertex-state region.
func (g *GraphWalk) VertexPages() int { return g.vertexPages }

// Next implements Generator.
func (g *GraphWalk) Next() Ref {
	if g.rng.Bool(g.vertexProb) {
		// Vertex access: power-law popularity (high in-degree vertices),
		// moderately cache-resident.
		return Ref{
			Page:       g.vertexZipf.Next(),
			Write:      g.rng.Bool(g.vertexWrite),
			LLCHitProb: 0.45,
		}
	}
	// Edge-list streaming: sequential, read-only, cache-hostile.
	p := g.vertexPages + g.edgeCursor
	g.edgeCursor++
	if g.vertexPages+g.edgeCursor >= g.pages {
		g.edgeCursor = 0
	}
	return Ref{Page: p, Write: false, LLCHitProb: 0.05}
}

// MLTrain models Liblinear-style linear classification over a large
// dataset (KDD12) using dual coordinate descent with shrinking: frequent
// writes to a small cache-hot weight vector, repeated random access to an
// "active set" of examples that survives shrinking, and high-intensity
// sequential passes over the full training data. The streaming majority
// makes its footprint look persistently hot to miss-based profilers —
// the fast-tier monopolizer of Figure 1 — while the active set gives the
// workload genuine tiering upside.
type MLTrain struct {
	pages       int
	weightPages int
	activePages int
	dataCursor  int
	rng         *sim.RNG
}

// NewMLTrain builds the generator: ~3% of pages are the model (weights),
// the next ~20% the active set, the rest streamed training data.
func NewMLTrain(pages int, rng *sim.RNG) *MLTrain {
	checkRegion(pages, 0)
	w := pages / 32
	if w < 1 {
		w = 1
	}
	active := pages / 5
	if w+active >= pages {
		active = (pages - w) / 2
	}
	if active < 1 {
		active = 1
	}
	return &MLTrain{
		pages:       pages,
		weightPages: w,
		activePages: active,
		rng:         rng,
	}
}

// Name implements Generator.
func (m *MLTrain) Name() string { return "mltrain" }

// Pages implements Generator.
func (m *MLTrain) Pages() int { return m.pages }

// WeightPages returns the size of the model region.
func (m *MLTrain) WeightPages() int { return m.weightPages }

// ActivePages returns the size of the shrinking active set.
func (m *MLTrain) ActivePages() int { return m.activePages }

// Next implements Generator.
func (m *MLTrain) Next() Ref {
	r := m.rng.Float64()
	switch {
	case r < 0.10:
		// Model updates: cache-resident, write-heavy.
		return Ref{
			Page:       m.rng.Intn(m.weightPages),
			Write:      m.rng.Bool(0.5),
			LLCHitProb: 0.90,
		}
	case r < 0.40:
		// Active-set revisits: random, too large for the LLC, rewarding
		// fast-tier placement.
		return Ref{
			Page:       m.weightPages + m.rng.Intn(m.activePages),
			Write:      false,
			LLCHitProb: 0.05,
		}
	default:
		// Full-dataset streaming pass.
		base := m.weightPages + m.activePages
		p := base + m.dataCursor
		m.dataCursor++
		if base+m.dataCursor >= m.pages {
			m.dataCursor = 0
		}
		return Ref{Page: p, Write: false, LLCHitProb: 0.02}
	}
}

// NomadMicro reproduces the microbenchmark Nomad (and §5.2) uses to
// stress tiering: data is allocated across tiers, a working set of
// wssPages inside the rssPages region is accessed with a Zipfian
// distribution, and the read/write mix is configurable.
type NomadMicro struct {
	rssPages  int
	wssPages  int
	writeFrac float64
	wssZipf   *sim.Zipf
	rng       *sim.RNG
}

// NewNomadMicro builds the generator. wssPages must not exceed rssPages.
func NewNomadMicro(rssPages, wssPages int, writeFrac float64, rng *sim.RNG) *NomadMicro {
	checkRegion(rssPages, writeFrac)
	if wssPages <= 0 || wssPages > rssPages {
		panic("workload: WSS must be in (0, RSS]")
	}
	return &NomadMicro{
		rssPages:  rssPages,
		wssPages:  wssPages,
		writeFrac: writeFrac,
		wssZipf:   sim.NewZipf(rng, wssPages, 0.99),
		rng:       rng,
	}
}

// Name implements Generator.
func (n *NomadMicro) Name() string { return "nomad-micro" }

// Pages implements Generator.
func (n *NomadMicro) Pages() int { return n.rssPages }

// WSSPages returns the working-set size.
func (n *NomadMicro) WSSPages() int { return n.wssPages }

// Next implements Generator.
func (n *NomadMicro) Next() Ref {
	// 98% of accesses hit the working set, Zipf-distributed.
	if n.rng.Bool(0.98) {
		return Ref{
			Page:       n.wssZipf.Next(),
			Write:      n.rng.Bool(n.writeFrac),
			LLCHitProb: 0.15,
		}
	}
	return Ref{
		Page:       n.rng.Intn(n.rssPages),
		Write:      n.rng.Bool(n.writeFrac),
		LLCHitProb: 0.02,
	}
}
