package pagetable

import (
	"fmt"
	"math/bits"
)

// threadSet is a bitmap over thread ids (at most MaxThreads).
type threadSet struct {
	bits [2]uint64
}

func (s *threadSet) add(tid int)      { s.bits[tid>>6] |= 1 << (tid & 63) }
func (s *threadSet) has(tid int) bool { return s.bits[tid>>6]&(1<<(tid&63)) != 0 }
func (s *threadSet) count() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
func (s *threadSet) members() []int {
	return s.appendMembers(make([]int, 0, 4))
}

// appendMembers appends the set's thread ids to dst in ascending order
// and returns it, so hot callers can reuse one buffer across pages.
func (s *threadSet) appendMembers(dst []int) []int {
	for i, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			dst = append(dst, i<<6+bits.TrailingZeros64(w))
		}
	}
	return dst
}

// TouchResult describes what a simulated memory access did to the page
// tables.
type TouchResult struct {
	PTE          PTE  // entry after the access
	LinkedLeaf   bool // a minor fault linked the shared leaf into this thread's tree
	BecameShared bool // ownership transitioned private -> shared on this access
}

// Replicated is Vulcan's per-thread page table structure (Figure 6,
// right): each thread owns private upper-level tables (PGD/PUD/PMD
// analogues) while last-level leaf tables are shared by all threads, and
// PTE owner bits track which thread — or the shared pattern — maps each
// page.
//
// A process-wide union table (the paper's process_pgd) is kept alongside
// the per-thread roots; it shares the same leaf objects, so a PTE update
// through either view is immediately visible in both.
type Replicated struct {
	proc     *Table
	nthreads int
	roots    []*tableL4
	// leafThreads records, per shared leaf, which threads have linked it
	// into their private upper levels — the candidate TLB shootdown scope
	// for shared pages.
	leafThreads map[uint64]*threadSet
	// tablesPerThread counts upper-level tables allocated per thread
	// (including the root), the replication memory overhead of §3.6.
	tablesPerThread []int
}

// NewReplicated builds an empty replicated table for nthreads threads.
func NewReplicated(nthreads int) *Replicated {
	if nthreads <= 0 || nthreads > MaxThreads {
		panic(fmt.Sprintf("pagetable: %d threads outside [1,%d]", nthreads, MaxThreads))
	}
	r := &Replicated{
		proc:            New(),
		nthreads:        nthreads,
		roots:           make([]*tableL4, nthreads),
		leafThreads:     make(map[uint64]*threadSet),
		tablesPerThread: make([]int, nthreads),
	}
	for i := range r.roots {
		r.roots[i] = &tableL4{}
		r.tablesPerThread[i] = 1
	}
	return r
}

// Threads returns the number of threads the structure was built for.
func (r *Replicated) Threads() int { return r.nthreads }

// Mapped returns the number of present PTEs (process-wide view).
func (r *Replicated) Mapped() int { return r.proc.Mapped() }

// FastMapped returns the number of present PTEs whose frame lives in the
// fast tier, maintained incrementally by the shared process table.
func (r *Replicated) FastMapped() int { return r.proc.FastMapped() }

// Lookup returns the PTE for vp from the shared leaves.
func (r *Replicated) Lookup(vp VPage) (PTE, bool) { return r.proc.Lookup(vp) }

// Update applies fn to vp's PTE through the shared leaf; both the process
// view and every thread view observe the result.
func (r *Replicated) Update(vp VPage, fn func(PTE) PTE) (PTE, bool) {
	return r.proc.Update(vp, fn)
}

// Range iterates present PTEs in ascending VPage order.
func (r *Replicated) Range(fn func(vp VPage, p PTE) bool) { r.proc.Range(fn) }

// RangeFrom iterates present PTEs with vp >= start in ascending order
// through the process view, stopping when fn returns false.
//
//vulcan:hotpath
func (r *Replicated) RangeFrom(start VPage, fn func(vp VPage, p PTE) bool) {
	r.proc.RangeFrom(start, fn)
}

// RangeMut iterates like Range, writing fn's returned PTE back through
// the shared leaves; both the process view and every thread view observe
// the result.
//
//vulcan:hotpath
func (r *Replicated) RangeMut(fn func(vp VPage, p PTE) PTE) { r.proc.RangeMut(fn) }

func (r *Replicated) checkTid(tid int) {
	if tid < 0 || tid >= r.nthreads {
		panic(fmt.Sprintf("pagetable: thread %d outside [0,%d)", tid, r.nthreads))
	}
}

// linkLeaf ensures the shared leaf covering vp is reachable from tid's
// private upper levels, allocating private intermediate tables as needed.
// It reports whether a new link was established (a minor fault).
func (r *Replicated) linkLeaf(tid int, vp VPage, leaf *Leaf) bool {
	i4, i3, i2, _ := splitVPage(vp)
	root := r.roots[tid]
	l3 := root.l3s[i4]
	if l3 == nil {
		l3 = &tableL3{}
		root.l3s[i4] = l3
		root.live++
		r.tablesPerThread[tid]++
	}
	l2 := l3.l2s[i3]
	if l2 == nil {
		l2 = &tableL2{}
		l3.l2s[i3] = l2
		l3.live++
		r.tablesPerThread[tid]++
	}
	if l2.leaves[i2] == leaf {
		return false
	}
	if l2.leaves[i2] != nil {
		panic("pagetable: conflicting leaf link")
	}
	l2.leaves[i2] = leaf
	l2.live++
	li := LeafIndex(vp)
	set := r.leafThreads[li]
	if set == nil {
		set = &threadSet{}
		r.leafThreads[li] = set
	}
	set.add(tid)
	return true
}

// Map installs the first mapping for vp on behalf of thread tid, which
// becomes the page's owner ("creates new mappings with thread ID for
// unmapped pages", paper §4).
func (r *Replicated) Map(tid int, vp VPage, p PTE) error {
	r.checkTid(tid)
	if err := r.proc.Map(vp, p.WithOwner(uint8(tid))); err != nil {
		return err
	}
	leaf, _ := r.proc.walk(vp, false)
	r.linkLeaf(tid, vp, leaf)
	return nil
}

// Install reinstalls vp's mapping with the exact PTE p — owner,
// accessed and dirty bits preserved — linking the shared leaf into
// tid's private tree. It is the allocation-free remap path used by the
// migration engine: Map would stamp tid as owner and force a follow-up
// Update closure to restore the true ownership.
func (r *Replicated) Install(tid int, vp VPage, p PTE) error {
	r.checkTid(tid)
	if err := r.proc.Map(vp, p); err != nil {
		return err
	}
	leaf, _ := r.proc.walk(vp, false)
	r.linkLeaf(tid, vp, leaf)
	return nil
}

// Touch simulates a hardware access by thread tid: it sets the accessed
// (and, for writes, dirty) bit and performs the paper's fault-handler
// ownership transitions — linking the shared leaf into tid's tree when
// absent and flipping the owner field to the shared pattern when a second
// thread touches a private page. ok is false when vp is unmapped (a major
// fault the caller must service by allocating and calling Map).
func (r *Replicated) Touch(tid int, vp VPage, write bool) (TouchResult, bool) {
	r.checkTid(tid)
	leaf, i := r.proc.walk(vp, false)
	if leaf == nil {
		return TouchResult{}, false
	}
	p := leaf.PTE(i)
	if !p.Present() {
		return TouchResult{}, false
	}
	var res TouchResult
	res.LinkedLeaf = r.linkLeaf(tid, vp, leaf)
	if !p.Shared() && p.Owner() != uint8(tid) {
		p = p.WithOwner(OwnerShared)
		res.BecameShared = true
	}
	p = p.WithAccessed(true)
	if write {
		p = p.WithDirty(true)
	}
	leaf.SetPTE(i, p)
	res.PTE = p
	return res, true
}

// Unmap clears vp's PTE in the shared leaf (visible to all threads) and
// returns the prior entry. Private upper-level links are left in place:
// like real page tables, empty leaves are not eagerly torn down.
func (r *Replicated) Unmap(vp VPage) (PTE, bool) { return r.proc.Unmap(vp) }

// ShootdownScope returns the thread ids whose TLBs may cache vp's
// translation and therefore must receive invalidations when it changes:
// just the owner for private pages, or every thread that linked the
// page's leaf for shared pages. This is insight ❸ of the paper — the
// basis of Vulcan's targeted (non-global) TLB shootdowns.
func (r *Replicated) ShootdownScope(vp VPage) []int {
	return r.AppendShootdownScope(nil, vp)
}

// AppendShootdownScope appends vp's shootdown scope to dst (ascending
// thread order) and returns it, so the migration engine can reuse one
// scratch buffer across a batch instead of allocating per page.
func (r *Replicated) AppendShootdownScope(dst []int, vp VPage) []int {
	p, ok := r.Lookup(vp)
	if !ok {
		return dst
	}
	if !p.Shared() {
		return append(dst, int(p.Owner()))
	}
	set := r.leafThreads[LeafIndex(vp)]
	if set == nil {
		return dst
	}
	return set.appendMembers(dst)
}

// ThreadMapsLeaf reports whether tid has linked the leaf covering vp.
func (r *Replicated) ThreadMapsLeaf(tid int, vp VPage) bool {
	r.checkTid(tid)
	set := r.leafThreads[LeafIndex(vp)]
	return set != nil && set.has(tid)
}

// UpperTables returns the number of private upper-level tables held by
// tid, including its root.
func (r *Replicated) UpperTables(tid int) int {
	r.checkTid(tid)
	return r.tablesPerThread[tid]
}

// SharedLeaves returns the number of shared last-level tables.
func (r *Replicated) SharedLeaves() int { return len(r.leafThreads) }

// TotalTables returns all page-table pages: shared leaves plus every
// thread's private upper levels plus the process-wide upper levels. The
// comparison against Table.TableCount for the same mapping quantifies
// replication overhead (§3.6).
func (r *Replicated) TotalTables() int {
	n := r.proc.TableCount() // process view: upper levels + leaves
	for _, c := range r.tablesPerThread {
		n += c
	}
	return n
}
