package pagetable

import (
	"testing"
	"testing/quick"

	"vulcan/internal/mem"
)

func TestPTERoundTrip(t *testing.T) {
	f := mem.Frame{Tier: mem.TierSlow, Index: 0xDEADBEEF}
	p := NewPTE(f, 42)
	if !p.Present() {
		t.Fatal("new PTE not present")
	}
	if got := p.Frame(); got != f {
		t.Fatalf("Frame = %v, want %v", got, f)
	}
	if p.Owner() != 42 {
		t.Fatalf("Owner = %d, want 42", p.Owner())
	}
	if p.Accessed() || p.Dirty() || p.Shared() {
		t.Fatal("fresh PTE has stale flags")
	}
}

func TestPTEFlagToggles(t *testing.T) {
	p := NewPTE(mem.Frame{Tier: mem.TierFast, Index: 7}, 0)
	p = p.WithAccessed(true).WithDirty(true)
	if !p.Accessed() || !p.Dirty() {
		t.Fatal("flags did not set")
	}
	p = p.WithAccessed(false)
	if p.Accessed() {
		t.Fatal("accessed did not clear")
	}
	if !p.Dirty() {
		t.Fatal("clearing accessed clobbered dirty")
	}
}

func TestPTEOwnerTransitions(t *testing.T) {
	p := NewPTE(mem.Frame{Tier: mem.TierFast, Index: 1}, 3)
	p = p.WithOwner(OwnerShared)
	if !p.Shared() {
		t.Fatal("shared pattern not recognized")
	}
	p = p.WithOwner(5)
	if p.Shared() || p.Owner() != 5 {
		t.Fatalf("owner = %d shared=%t, want 5/false", p.Owner(), p.Shared())
	}
}

func TestPTEWithFramePreservesFlags(t *testing.T) {
	old := mem.Frame{Tier: mem.TierSlow, Index: 99}
	p := NewPTE(old, 9).WithAccessed(true).WithDirty(true)
	nf := mem.Frame{Tier: mem.TierFast, Index: 12345}
	p = p.WithFrame(nf)
	if p.Frame() != nf {
		t.Fatalf("Frame = %v, want %v", p.Frame(), nf)
	}
	if !p.Accessed() || !p.Dirty() || p.Owner() != 9 {
		t.Fatal("remap clobbered flags or owner")
	}
}

func TestPTEAbsent(t *testing.T) {
	var p PTE
	if p.Present() {
		t.Fatal("zero PTE present")
	}
	if !p.Frame().IsNil() {
		t.Fatal("absent PTE returned a frame")
	}
	if p.String() != "PTE{absent}" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPTEPanics(t *testing.T) {
	cases := map[string]func(){
		"nil frame":      func() { NewPTE(mem.NilFrame, 0) },
		"owner overflow": func() { NewPTE(mem.Frame{Tier: mem.TierFast}, 0x80) },
		"with-owner overflow": func() {
			NewPTE(mem.Frame{Tier: mem.TierFast}, 0).WithOwner(0xFF)
		},
		"remap nil": func() {
			NewPTE(mem.Frame{Tier: mem.TierFast}, 0).WithFrame(mem.NilFrame)
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestPTEEncodingProperty(t *testing.T) {
	// Property: frame index, tier, and owner survive a round-trip through
	// the 64-bit word for all representable values.
	check := func(idx uint32, tierRaw, ownerRaw uint8) bool {
		tier := mem.TierID(tierRaw % uint8(mem.NumTiers))
		owner := ownerRaw & 0x7F
		f := mem.Frame{Tier: tier, Index: idx}
		p := NewPTE(f, owner)
		return p.Frame() == f && p.Owner() == owner && p.Present()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitVPage(t *testing.T) {
	vp := VPage(5)<<27 | VPage(17)<<18 | VPage(300)<<9 | VPage(511)
	i4, i3, i2, i1 := splitVPage(vp)
	if i4 != 5 || i3 != 17 || i2 != 300 || i1 != 511 {
		t.Fatalf("split = %d/%d/%d/%d", i4, i3, i2, i1)
	}
}

func TestLeafIndexGrouping(t *testing.T) {
	if LeafIndex(0) != LeafIndex(511) {
		t.Fatal("pages 0 and 511 should share a leaf")
	}
	if LeafIndex(511) == LeafIndex(512) {
		t.Fatal("pages 511 and 512 must not share a leaf")
	}
}

func TestPTEString(t *testing.T) {
	p := NewPTE(mem.Frame{Tier: mem.TierFast, Index: 3}, 7).WithAccessed(true)
	want := "PTE{fast:3 a=true d=false t7}"
	if p.String() != want {
		t.Fatalf("String = %q, want %q", p.String(), want)
	}
	s := p.WithOwner(OwnerShared)
	if s.String() != "PTE{fast:3 a=true d=false shared}" {
		t.Fatalf("shared String = %q", s.String())
	}
}
