package pagetable

import "fmt"

// FullyReplicated replicates the *entire* page table per thread,
// RadixVM-style — upper levels and leaves. It exists as the comparison
// point for Vulcan's design choice in §3.4: because "last-level page
// tables constitute the majority of page table memory", replicating them
// per thread is what makes full replication unscalable, and sharing them
// (pagetable.Replicated) is what makes Vulcan's per-thread tables cheap.
//
// Functionally it provides the same mapping semantics; the difference is
// the TableCount() memory accounting and that PTE updates must be
// broadcast to every thread's copy (the coherence burden RadixVM pays).
type FullyReplicated struct {
	nthreads int
	tables   []*Table // one full tree per thread
	// canonical mirrors the mapping for queries that are thread-agnostic.
	canonical *Table
	// writes counts PTE stores including per-replica broadcasts.
	writes uint64
}

// NewFullyReplicated builds an empty fully replicated table set.
func NewFullyReplicated(nthreads int) *FullyReplicated {
	if nthreads <= 0 || nthreads > MaxThreads {
		panic(fmt.Sprintf("pagetable: %d threads outside [1,%d]", nthreads, MaxThreads))
	}
	f := &FullyReplicated{
		nthreads:  nthreads,
		tables:    make([]*Table, nthreads),
		canonical: New(),
	}
	for i := range f.tables {
		f.tables[i] = New()
	}
	return f
}

// Threads returns the replica count.
func (f *FullyReplicated) Threads() int { return f.nthreads }

// Mapped returns the number of mapped pages (canonical view).
func (f *FullyReplicated) Mapped() int { return f.canonical.Mapped() }

// Lookup reads the canonical mapping.
func (f *FullyReplicated) Lookup(vp VPage) (PTE, bool) { return f.canonical.Lookup(vp) }

// Range iterates the canonical mapping.
func (f *FullyReplicated) Range(fn func(vp VPage, p PTE) bool) { f.canonical.Range(fn) }

// Map installs a mapping in every replica (tid records ownership in the
// PTE, as in the shared-leaf design, for parity of comparison).
func (f *FullyReplicated) Map(tid int, vp VPage, p PTE) error {
	if tid < 0 || tid >= f.nthreads {
		panic(fmt.Sprintf("pagetable: thread %d outside [0,%d)", tid, f.nthreads))
	}
	stamped := p.WithOwner(uint8(tid))
	if err := f.canonical.Map(vp, stamped); err != nil {
		return err
	}
	for _, t := range f.tables {
		if err := t.Map(vp, stamped); err != nil {
			panic(fmt.Sprintf("pagetable: replica diverged: %v", err))
		}
		f.writes++
	}
	return nil
}

// Update applies fn to the canonical PTE and broadcasts the result to
// every replica — the write amplification full replication suffers.
func (f *FullyReplicated) Update(vp VPage, fn func(PTE) PTE) (PTE, bool) {
	np, ok := f.canonical.Update(vp, fn)
	if !ok {
		return 0, false
	}
	for _, t := range f.tables {
		t.Update(vp, func(PTE) PTE { return np })
		f.writes++
	}
	return np, true
}

// Unmap removes the mapping everywhere.
func (f *FullyReplicated) Unmap(vp VPage) (PTE, bool) {
	p, ok := f.canonical.Unmap(vp)
	if !ok {
		return 0, false
	}
	for _, t := range f.tables {
		t.Unmap(vp)
		f.writes++
	}
	return p, true
}

// PTEWrites returns the cumulative PTE stores including replica
// broadcasts (N× those of a shared-leaf design).
func (f *FullyReplicated) PTEWrites() uint64 { return f.writes }

// TotalTables returns all allocated page-table pages across replicas plus
// the canonical tree — the memory cost §3.4's shared-leaf design avoids.
func (f *FullyReplicated) TotalTables() int {
	n := f.canonical.TableCount()
	for _, t := range f.tables {
		n += t.TableCount()
	}
	return n
}

// ShootdownScope: with fully private tables every thread maps every page,
// so the conservative scope is all threads (RadixVM instead eliminates
// shootdowns by other means; for migration-cost comparison the scope is
// what matters).
func (f *FullyReplicated) ShootdownScope(vp VPage) []int {
	if _, ok := f.Lookup(vp); !ok {
		return nil
	}
	out := make([]int, f.nthreads)
	for i := range out {
		out[i] = i
	}
	return out
}
