package pagetable

import (
	"reflect"
	"testing"

	"vulcan/internal/mem"
)

func TestReplicatedMapAndOwnership(t *testing.T) {
	r := NewReplicated(4)
	vp := VPage(100)
	if err := r.Map(2, vp, NewPTE(fastFrame(5), 0)); err != nil {
		t.Fatal(err)
	}
	p, ok := r.Lookup(vp)
	if !ok {
		t.Fatal("mapped page not found")
	}
	if p.Owner() != 2 {
		t.Fatalf("owner = %d, want mapping thread 2", p.Owner())
	}
	if !r.ThreadMapsLeaf(2, vp) {
		t.Fatal("mapping thread does not hold the leaf")
	}
	if r.ThreadMapsLeaf(0, vp) {
		t.Fatal("non-mapping thread holds the leaf")
	}
}

func TestReplicatedTouchSameThreadStaysPrivate(t *testing.T) {
	r := NewReplicated(4)
	vp := VPage(42)
	r.Map(1, vp, NewPTE(fastFrame(1), 0))
	res, ok := r.Touch(1, vp, true)
	if !ok {
		t.Fatal("touch of mapped page failed")
	}
	if res.BecameShared {
		t.Fatal("owner's touch made the page shared")
	}
	if res.LinkedLeaf {
		t.Fatal("owner's touch re-linked its own leaf")
	}
	if !res.PTE.Accessed() || !res.PTE.Dirty() {
		t.Fatal("touch did not set accessed/dirty")
	}
}

func TestReplicatedSecondThreadSharesPage(t *testing.T) {
	r := NewReplicated(4)
	vp := VPage(42)
	r.Map(1, vp, NewPTE(fastFrame(1), 0))
	res, ok := r.Touch(3, vp, false)
	if !ok {
		t.Fatal("touch failed")
	}
	if !res.BecameShared {
		t.Fatal("cross-thread touch did not share the page")
	}
	if !res.LinkedLeaf {
		t.Fatal("cross-thread touch did not link the leaf")
	}
	p, _ := r.Lookup(vp)
	if !p.Shared() {
		t.Fatal("PTE not marked shared")
	}
	// A third touch by yet another thread: already shared, just links.
	res, _ = r.Touch(0, vp, false)
	if res.BecameShared {
		t.Fatal("touch of already-shared page reported transition")
	}
}

func TestReplicatedTouchUnmappedFails(t *testing.T) {
	r := NewReplicated(2)
	if _, ok := r.Touch(0, VPage(9), false); ok {
		t.Fatal("touch of unmapped page succeeded")
	}
}

func TestShootdownScopePrivate(t *testing.T) {
	r := NewReplicated(8)
	vp := VPage(7)
	r.Map(5, vp, NewPTE(fastFrame(0), 0))
	r.Touch(5, vp, false)
	scope := r.ShootdownScope(vp)
	if !reflect.DeepEqual(scope, []int{5}) {
		t.Fatalf("private scope = %v, want [5]", scope)
	}
}

func TestShootdownScopeShared(t *testing.T) {
	r := NewReplicated(8)
	vp := VPage(7)
	r.Map(1, vp, NewPTE(fastFrame(0), 0))
	r.Touch(4, vp, false)
	r.Touch(6, vp, false)
	scope := r.ShootdownScope(vp)
	if !reflect.DeepEqual(scope, []int{1, 4, 6}) {
		t.Fatalf("shared scope = %v, want [1 4 6]", scope)
	}
}

func TestShootdownScopeLeafGranularity(t *testing.T) {
	// Thread 2 touches a *different* page in the same leaf; for a shared
	// page in that leaf it is conservatively in scope (it can reach the
	// leaf), matching the paper's per-leaf sharing.
	r := NewReplicated(4)
	r.Map(0, VPage(10), NewPTE(fastFrame(0), 0))
	r.Map(2, VPage(20), NewPTE(fastFrame(1), 0)) // same leaf (pages 0..511)
	r.Touch(1, VPage(10), false)                 // page 10 becomes shared
	scope := r.ShootdownScope(VPage(10))
	if !reflect.DeepEqual(scope, []int{0, 1, 2}) {
		t.Fatalf("scope = %v, want [0 1 2]", scope)
	}
}

func TestShootdownScopeUnmapped(t *testing.T) {
	r := NewReplicated(2)
	if s := r.ShootdownScope(VPage(1)); s != nil {
		t.Fatalf("scope of unmapped page = %v, want nil", s)
	}
}

func TestReplicatedUnmapVisibleToAllThreads(t *testing.T) {
	r := NewReplicated(3)
	vp := VPage(1000)
	r.Map(0, vp, NewPTE(fastFrame(9), 0))
	r.Touch(1, vp, false)
	p, ok := r.Unmap(vp)
	if !ok || p.Frame() != fastFrame(9) {
		t.Fatalf("Unmap = %v,%v", p, ok)
	}
	if _, ok := r.Touch(1, vp, false); ok {
		t.Fatal("thread 1 still sees unmapped page (leaf not shared?)")
	}
}

func TestReplicatedUpdateThroughSharedLeaf(t *testing.T) {
	r := NewReplicated(2)
	vp := VPage(55)
	r.Map(0, vp, NewPTE(fastFrame(1), 0))
	r.Touch(1, vp, false)
	nf := mem.Frame{Tier: mem.TierSlow, Index: 77}
	r.Update(vp, func(p PTE) PTE { return p.WithFrame(nf) })
	res, ok := r.Touch(1, vp, false)
	if !ok || res.PTE.Frame() != nf {
		t.Fatal("update not visible through thread view")
	}
}

func TestReplicatedTableAccounting(t *testing.T) {
	r := NewReplicated(2)
	if r.UpperTables(0) != 1 || r.UpperTables(1) != 1 {
		t.Fatal("fresh threads should hold only a root")
	}
	r.Map(0, VPage(0), NewPTE(fastFrame(0), 0))
	// Thread 0 gained l3+l2: root(1)+2 = 3.
	if got := r.UpperTables(0); got != 3 {
		t.Fatalf("UpperTables(0) = %d, want 3", got)
	}
	if got := r.UpperTables(1); got != 1 {
		t.Fatalf("UpperTables(1) = %d, want 1", got)
	}
	if r.SharedLeaves() != 1 {
		t.Fatalf("SharedLeaves = %d, want 1", r.SharedLeaves())
	}
	r.Touch(1, VPage(0), false)
	if got := r.UpperTables(1); got != 3 {
		t.Fatalf("UpperTables(1) after touch = %d, want 3", got)
	}
	// Replication overhead: replicated structure holds strictly more
	// tables than a process-wide one for the same mapping.
	single := New()
	single.Map(VPage(0), NewPTE(fastFrame(0), 0))
	if r.TotalTables() <= single.TableCount() {
		t.Fatalf("replicated tables %d not greater than single %d",
			r.TotalTables(), single.TableCount())
	}
}

func TestReplicatedSharedLeafNotDuplicated(t *testing.T) {
	// 512 pages in one leaf mapped by one thread: still one shared leaf.
	r := NewReplicated(4)
	for vp := VPage(0); vp < 512; vp++ {
		if err := r.Map(0, vp, NewPTE(fastFrame(uint32(vp)), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if r.SharedLeaves() != 1 {
		t.Fatalf("SharedLeaves = %d, want 1", r.SharedLeaves())
	}
	if r.Mapped() != 512 {
		t.Fatalf("Mapped = %d, want 512", r.Mapped())
	}
}

func TestReplicatedRange(t *testing.T) {
	r := NewReplicated(2)
	r.Map(0, VPage(3), NewPTE(fastFrame(0), 0))
	r.Map(1, VPage(600), NewPTE(fastFrame(1), 0))
	var got []VPage
	r.Range(func(vp VPage, p PTE) bool {
		got = append(got, vp)
		return true
	})
	if !reflect.DeepEqual(got, []VPage{3, 600}) {
		t.Fatalf("Range = %v", got)
	}
}

func TestReplicatedPanics(t *testing.T) {
	cases := map[string]func(){
		"zero threads": func() { NewReplicated(0) },
		"too many":     func() { NewReplicated(MaxThreads + 1) },
		"bad tid": func() {
			r := NewReplicated(2)
			r.Map(5, VPage(0), NewPTE(fastFrame(0), 0))
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestThreadSet(t *testing.T) {
	var s threadSet
	for _, tid := range []int{0, 63, 64, 126} {
		s.add(tid)
	}
	if s.count() != 4 {
		t.Fatalf("count = %d, want 4", s.count())
	}
	if !reflect.DeepEqual(s.members(), []int{0, 63, 64, 126}) {
		t.Fatalf("members = %v", s.members())
	}
	if s.has(1) || !s.has(64) {
		t.Fatal("membership wrong")
	}
	s.add(63) // idempotent
	if s.count() != 4 {
		t.Fatal("duplicate add changed count")
	}
}
