package pagetable

import (
	"testing"

	"vulcan/internal/mem"
)

func TestFullyReplicatedMappingSemantics(t *testing.T) {
	f := NewFullyReplicated(4)
	if err := f.Map(2, VPage(10), NewPTE(fastFrame(1), 0)); err != nil {
		t.Fatal(err)
	}
	p, ok := f.Lookup(10)
	if !ok || p.Owner() != 2 {
		t.Fatalf("Lookup = %v,%v", p, ok)
	}
	if f.Mapped() != 1 {
		t.Fatalf("Mapped = %d", f.Mapped())
	}
	// Updates broadcast.
	nf := mem.Frame{Tier: mem.TierSlow, Index: 9}
	f.Update(10, func(p PTE) PTE { return p.WithFrame(nf) })
	got, _ := f.Lookup(10)
	if got.Frame() != nf {
		t.Fatal("update lost")
	}
	// Unmap everywhere.
	if _, ok := f.Unmap(10); !ok {
		t.Fatal("unmap failed")
	}
	if _, ok := f.Lookup(10); ok {
		t.Fatal("page survived unmap")
	}
}

func TestFullyReplicatedWriteAmplification(t *testing.T) {
	const threads = 8
	f := NewFullyReplicated(threads)
	f.Map(0, VPage(0), NewPTE(fastFrame(0), 0))
	if got := f.PTEWrites(); got != threads {
		t.Fatalf("map writes = %d, want %d (one per replica)", got, threads)
	}
	f.Update(0, func(p PTE) PTE { return p.WithAccessed(true) })
	if got := f.PTEWrites(); got != 2*threads {
		t.Fatalf("after update writes = %d, want %d", got, 2*threads)
	}
}

// TestFigure6MemoryComparison quantifies the paper's Figure 6 design
// rationale: for a multi-thread address space, full per-thread
// replication multiplies page-table memory by roughly the thread count,
// while Vulcan's shared-leaf replication adds only small per-thread
// upper levels.
func TestFigure6MemoryComparison(t *testing.T) {
	const threads = 8
	// 128 leaves worth of mappings (256MB): the regime the paper argues
	// from, where last-level tables are the bulk of page-table memory.
	const pages = 65536

	shared := New()
	vulcanStyle := NewReplicated(threads)
	full := NewFullyReplicated(threads)
	for vp := VPage(0); vp < pages; vp++ {
		pte := NewPTE(fastFrame(uint32(vp)), 0)
		if err := shared.Map(vp, pte); err != nil {
			t.Fatal(err)
		}
		if err := vulcanStyle.Map(int(vp)%threads, vp, pte); err != nil {
			t.Fatal(err)
		}
		if err := full.Map(int(vp)%threads, vp, pte); err != nil {
			t.Fatal(err)
		}
	}

	procTables := shared.TableCount()
	vulcanTables := vulcanStyle.TotalTables()
	fullTables := full.TotalTables()

	// Full replication pays ~threads× the process-wide cost.
	if fullTables < procTables*threads {
		t.Fatalf("full replication %d tables < %dx process-wide %d",
			fullTables, threads, procTables)
	}
	// Vulcan's shared leaves keep the overhead well under 2x, because
	// leaves are the majority of table memory (16 leaves vs 3 upper
	// levels here).
	if vulcanTables >= procTables*2 {
		t.Fatalf("shared-leaf replication %d tables >= 2x process-wide %d",
			vulcanTables, procTables)
	}
	if vulcanTables >= fullTables/3 {
		t.Fatalf("shared-leaf %d not clearly cheaper than full %d",
			vulcanTables, fullTables)
	}
}

func TestFullyReplicatedScope(t *testing.T) {
	f := NewFullyReplicated(3)
	f.Map(1, VPage(5), NewPTE(fastFrame(0), 0))
	scope := f.ShootdownScope(5)
	if len(scope) != 3 {
		t.Fatalf("scope = %v, want all threads", scope)
	}
	if f.ShootdownScope(99) != nil {
		t.Fatal("scope of unmapped page not nil")
	}
}

func TestFullyReplicatedValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero threads": func() { NewFullyReplicated(0) },
		"bad tid": func() {
			NewFullyReplicated(2).Map(5, VPage(0), NewPTE(fastFrame(0), 0))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFullyReplicatedDoubleMapError(t *testing.T) {
	f := NewFullyReplicated(2)
	f.Map(0, VPage(1), NewPTE(fastFrame(0), 0))
	if err := f.Map(1, VPage(1), NewPTE(fastFrame(1), 0)); err == nil {
		t.Fatal("double map succeeded")
	}
}
