package pagetable

import (
	"fmt"
	"sort"

	"vulcan/internal/checkpoint"
)

// Snapshot appends the replicated table's durable state: the per-leaf
// thread-link sets and every present PTE. Everything else — private
// upper-level tables, table counts, the process-wide tree — is derived:
// leaves are only ever created by Map/Install (which always link them),
// intermediate tables exist exactly on the paths to linked leaves, and
// neither is ever deallocated, so the (leaf, linkers) relation plus the
// PTE contents reconstruct the structure exactly.
func (r *Replicated) Snapshot(e *checkpoint.Encoder) {
	e.Int(r.nthreads)

	leaves := make([]uint64, 0, len(r.leafThreads))
	for li := range r.leafThreads {
		leaves = append(leaves, li)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	e.Int(len(leaves))
	for _, li := range leaves {
		set := r.leafThreads[li]
		e.U64(li)
		e.U64(set.bits[0])
		e.U64(set.bits[1])
	}

	e.Int(r.proc.Mapped())
	r.proc.Range(func(vp VPage, p PTE) bool {
		e.U64(uint64(vp))
		e.U64(uint64(p))
		return true
	})
}

// Restore rebuilds the table in place from a snapshot. The receiver
// keeps its identity — the migration engine and profilers alias the
// *Replicated pointer — but every internal structure is rebuilt fresh.
func (r *Replicated) Restore(d *checkpoint.Decoder) error {
	nthreads := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if nthreads != r.nthreads {
		return fmt.Errorf("pagetable: %d threads in checkpoint, %d configured",
			nthreads, r.nthreads)
	}

	// Reset to the empty structure NewReplicated builds.
	r.proc = New()
	r.leafThreads = make(map[uint64]*threadSet)
	for i := range r.roots {
		r.roots[i] = &tableL4{}
		r.tablesPerThread[i] = 1
	}

	nLeaves := d.Length(24)
	prevLeaf := uint64(0)
	tidBuf := make([]int, 0, MaxThreads) // reused across leaves
	for i := 0; i < nLeaves; i++ {
		li := d.U64()
		var set threadSet
		set.bits[0] = d.U64()
		set.bits[1] = d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && li <= prevLeaf {
			return fmt.Errorf("pagetable: leaf indices out of order (%d after %d)", li, prevLeaf)
		}
		prevLeaf = li
		base := VPage(li) << 9
		if base > MaxVPage {
			return fmt.Errorf("pagetable: leaf index %d out of range", li)
		}
		if set.count() == 0 {
			return fmt.Errorf("pagetable: leaf %d with no linking threads", li)
		}
		leaf, _ := r.proc.walk(base, true)
		for _, tid := range set.appendMembers(tidBuf[:0]) {
			if tid >= r.nthreads {
				return fmt.Errorf("pagetable: leaf %d linked by thread %d of %d",
					li, tid, r.nthreads)
			}
			r.linkLeaf(tid, base, leaf)
		}
	}

	nPTE := d.Length(16)
	prevVP := VPage(0)
	for i := 0; i < nPTE; i++ {
		vp := VPage(d.U64())
		p := PTE(d.U64())
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && vp <= prevVP {
			return fmt.Errorf("pagetable: vpages out of order (%d after %d)", vp, prevVP)
		}
		prevVP = vp
		if _, ok := r.leafThreads[LeafIndex(vp)]; !ok {
			return fmt.Errorf("pagetable: PTE at %#x in unlinked leaf", uint64(vp))
		}
		if !p.Shared() && int(p.Owner()) >= r.nthreads {
			return fmt.Errorf("pagetable: PTE at %#x owned by thread %d of %d",
				uint64(vp), p.Owner(), r.nthreads)
		}
		if err := r.proc.Map(vp, p); err != nil {
			return fmt.Errorf("pagetable: restoring PTE: %w", err)
		}
	}
	return d.Err()
}
