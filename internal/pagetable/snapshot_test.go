package pagetable

import (
	"bytes"
	"reflect"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/mem"
)

// buildReplicated populates a replicated table with a mix of shared and
// thread-private mappings across several leaves.
func buildReplicated(t *testing.T, nthreads int) *Replicated {
	t.Helper()
	r := NewReplicated(nthreads)
	for i := 0; i < 900; i++ {
		vp := VPage(i * 7) // spread across leaves
		owner := uint8(i % nthreads)
		if i%4 == 0 {
			owner = OwnerShared
		}
		pte := NewPTE(mem.Frame{Tier: mem.TierID(i % int(mem.NumTiers)), Index: uint32(i)}, owner)
		tid := i % nthreads
		if err := r.Map(tid, vp, pte); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			r.Install((tid+1)%nthreads, vp, pte)
		}
	}
	return r
}

func dumpTable(r *Replicated) map[VPage]PTE {
	out := make(map[VPage]PTE)
	r.Range(func(vp VPage, p PTE) bool {
		out[vp] = p
		return true
	})
	return out
}

func TestReplicatedSnapshotRoundTrip(t *testing.T) {
	const nthreads = 6
	src := buildReplicated(t, nthreads)

	w := checkpoint.NewWriter()
	src.Snapshot(w.Section("pt", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cr.Section("pt", 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewReplicated(nthreads)
	if err := dst.Restore(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(dumpTable(src), dumpTable(dst)) {
		t.Fatal("PTE contents diverged")
	}
	if src.Mapped() != dst.Mapped() || src.SharedLeaves() != dst.SharedLeaves() ||
		src.TotalTables() != dst.TotalTables() {
		t.Fatalf("structure: mapped %d/%d leaves %d/%d tables %d/%d",
			src.Mapped(), dst.Mapped(), src.SharedLeaves(), dst.SharedLeaves(),
			src.TotalTables(), dst.TotalTables())
	}
	// Shootdown scopes (the per-leaf thread links) must survive — they
	// decide future IPI fan-out.
	for i := 0; i < 900; i += 17 {
		vp := VPage(i * 7)
		a, b := src.ShootdownScope(vp), dst.ShootdownScope(vp)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shootdown scope for %d: %v != %v", vp, a, b)
		}
	}
}

func TestReplicatedRestoreRejectsBadSnapshots(t *testing.T) {
	src := buildReplicated(t, 4)
	e := &checkpoint.Encoder{}
	src.Snapshot(e)
	blob := e.Bytes()

	// Thread-count mismatch.
	if err := NewReplicated(8).Restore(checkpoint.NewDecoder(blob)); err == nil {
		t.Fatal("thread-count mismatch accepted")
	}
	// Truncations anywhere in the payload must error, never panic.
	for cut := 0; cut < len(blob); cut += 97 {
		if err := NewReplicated(4).Restore(checkpoint.NewDecoder(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
