// Package pagetable implements the virtual-memory substrate: x86-64-style
// 4-level radix page tables with a 64-bit PTE word, plus Vulcan's
// per-thread page-table replication (§3.4 of the paper) in which each
// thread owns private upper-level tables while last-level (leaf) tables
// are shared across threads and PTE bits 52–58 are repurposed to track
// thread ownership.
package pagetable

import (
	"fmt"

	"vulcan/internal/mem"
)

// VPage is a virtual page number (virtual address >> 12). With 4 levels of
// 9 bits each, valid VPages occupy 36 bits.
type VPage uint64

// Radix geometry, matching x86-64 4KiB paging.
const (
	// EntriesPerTable is the fan-out of every page-table level.
	EntriesPerTable = 512
	// Levels is the depth of the radix tree (PGD, PUD, PMD, PT).
	Levels = 4
	// MaxVPage bounds the representable virtual page numbers.
	MaxVPage = VPage(1)<<(9*Levels) - 1
)

// PTE is a 64-bit page-table entry word. The layout mirrors x86-64 where
// it matters to the paper:
//
//	bit  0      present
//	bit  5      accessed (set by hardware on access; cleared by scanners)
//	bit  6      dirty    (set by hardware on write)
//	bits 12–43  physical frame index within its tier
//	bits 44–45  tier id
//	bits 52–58  thread owner (paper §4: 7 previously-ignored bits;
//	            0x7F = shared across threads)
type PTE uint64

// Bit positions and masks of the PTE word.
const (
	pteBitPresent  = 0
	pteBitAccessed = 5
	pteBitDirty    = 6
	pteShiftFrame  = 12
	pteShiftTier   = 44
	pteShiftOwner  = 52

	pteMaskFrame = (uint64(1)<<32 - 1) << pteShiftFrame
	pteMaskTier  = uint64(3) << pteShiftTier
	pteMaskOwner = uint64(0x7F) << pteShiftOwner
)

// OwnerShared is the all-ones owner pattern marking a page shared by
// multiple threads (paper §4: "shared status (all-ones pattern)").
const OwnerShared uint8 = 0x7F

// MaxThreads is the largest thread id representable in the 7 owner bits,
// reserving the all-ones pattern for OwnerShared.
const MaxThreads = 127

// NewPTE builds a present PTE mapping frame with the given owner.
func NewPTE(frame mem.Frame, owner uint8) PTE {
	if frame.IsNil() {
		panic("pagetable: PTE for nil frame")
	}
	if owner > OwnerShared {
		panic(fmt.Sprintf("pagetable: owner %d exceeds 7 bits", owner))
	}
	w := uint64(1) << pteBitPresent
	w |= uint64(frame.Index) << pteShiftFrame
	w |= uint64(frame.Tier) << pteShiftTier
	w |= uint64(owner) << pteShiftOwner
	return PTE(w)
}

// Present reports whether the entry maps a frame.
func (p PTE) Present() bool { return p&(1<<pteBitPresent) != 0 }

// Accessed reports the hardware accessed bit.
func (p PTE) Accessed() bool { return p&(1<<pteBitAccessed) != 0 }

// Dirty reports the hardware dirty bit.
func (p PTE) Dirty() bool { return p&(1<<pteBitDirty) != 0 }

// Frame returns the mapped physical frame. Calling Frame on a non-present
// entry returns mem.NilFrame.
func (p PTE) Frame() mem.Frame {
	if !p.Present() {
		return mem.NilFrame
	}
	return mem.Frame{
		Tier:  mem.TierID((uint64(p) & pteMaskTier) >> pteShiftTier),
		Index: uint32((uint64(p) & pteMaskFrame) >> pteShiftFrame),
	}
}

// Owner returns the owning thread id, or OwnerShared.
func (p PTE) Owner() uint8 {
	return uint8((uint64(p) & pteMaskOwner) >> pteShiftOwner)
}

// Shared reports whether the entry carries the shared-owner pattern.
func (p PTE) Shared() bool { return p.Owner() == OwnerShared }

// WithAccessed returns the entry with the accessed bit set or cleared.
func (p PTE) WithAccessed(v bool) PTE {
	if v {
		return p | (1 << pteBitAccessed)
	}
	return p &^ (1 << pteBitAccessed)
}

// WithDirty returns the entry with the dirty bit set or cleared.
func (p PTE) WithDirty(v bool) PTE {
	if v {
		return p | (1 << pteBitDirty)
	}
	return p &^ (1 << pteBitDirty)
}

// WithOwner returns the entry with the owner field replaced.
func (p PTE) WithOwner(owner uint8) PTE {
	if owner > OwnerShared {
		panic(fmt.Sprintf("pagetable: owner %d exceeds 7 bits", owner))
	}
	return PTE(uint64(p)&^pteMaskOwner | uint64(owner)<<pteShiftOwner)
}

// WithFrame returns the entry remapped to a new frame, preserving flags
// and ownership. This is the remap step of page migration.
func (p PTE) WithFrame(frame mem.Frame) PTE {
	if frame.IsNil() {
		panic("pagetable: remap to nil frame")
	}
	w := uint64(p) &^ (pteMaskFrame | pteMaskTier)
	w |= uint64(frame.Index) << pteShiftFrame
	w |= uint64(frame.Tier) << pteShiftTier
	return PTE(w)
}

// String renders the entry for debugging.
func (p PTE) String() string {
	if !p.Present() {
		return "PTE{absent}"
	}
	owner := "shared"
	if !p.Shared() {
		owner = fmt.Sprintf("t%d", p.Owner())
	}
	return fmt.Sprintf("PTE{%v a=%t d=%t %s}", p.Frame(), p.Accessed(), p.Dirty(), owner)
}

// Radix index helpers: the four 9-bit slices of a VPage, from root (l4)
// down to leaf (l1).
func splitVPage(vp VPage) (i4, i3, i2, i1 int) {
	return int(vp >> 27 & 0x1FF), int(vp >> 18 & 0x1FF),
		int(vp >> 9 & 0x1FF), int(vp & 0x1FF)
}

// LeafIndex identifies the leaf table covering vp; two VPages share a leaf
// iff their LeafIndex matches.
func LeafIndex(vp VPage) uint64 { return uint64(vp >> 9) }
