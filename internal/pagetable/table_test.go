package pagetable

import (
	"testing"
	"testing/quick"

	"vulcan/internal/mem"
)

func fastFrame(i uint32) mem.Frame { return mem.Frame{Tier: mem.TierFast, Index: i} }

func TestTableMapLookup(t *testing.T) {
	tbl := New()
	vp := VPage(0x12345)
	if err := tbl.Map(vp, NewPTE(fastFrame(7), 0)); err != nil {
		t.Fatal(err)
	}
	p, ok := tbl.Lookup(vp)
	if !ok || p.Frame() != fastFrame(7) {
		t.Fatalf("Lookup = %v,%v", p, ok)
	}
	if _, ok := tbl.Lookup(vp + 1); ok {
		t.Fatal("lookup of unmapped neighbour succeeded")
	}
	if tbl.Mapped() != 1 {
		t.Fatalf("Mapped = %d, want 1", tbl.Mapped())
	}
}

func TestTableDoubleMapFails(t *testing.T) {
	tbl := New()
	vp := VPage(10)
	if err := tbl.Map(vp, NewPTE(fastFrame(1), 0)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(vp, NewPTE(fastFrame(2), 0)); err == nil {
		t.Fatal("double map succeeded")
	}
}

func TestTableMapAbsentPTEFails(t *testing.T) {
	tbl := New()
	if err := tbl.Map(5, 0); err == nil {
		t.Fatal("mapping a non-present PTE succeeded")
	}
}

func TestTableUnmap(t *testing.T) {
	tbl := New()
	vp := VPage(0xABCDE)
	tbl.Map(vp, NewPTE(fastFrame(3), 0))
	p, ok := tbl.Unmap(vp)
	if !ok || p.Frame() != fastFrame(3) {
		t.Fatalf("Unmap = %v,%v", p, ok)
	}
	if _, ok := tbl.Lookup(vp); ok {
		t.Fatal("page still mapped after unmap")
	}
	if _, ok := tbl.Unmap(vp); ok {
		t.Fatal("second unmap succeeded")
	}
	if tbl.Mapped() != 0 {
		t.Fatalf("Mapped = %d after unmap", tbl.Mapped())
	}
}

func TestTableUpdate(t *testing.T) {
	tbl := New()
	vp := VPage(77)
	tbl.Map(vp, NewPTE(fastFrame(1), 2))
	p, ok := tbl.Update(vp, func(p PTE) PTE { return p.WithAccessed(true) })
	if !ok || !p.Accessed() {
		t.Fatalf("Update = %v,%v", p, ok)
	}
	got, _ := tbl.Lookup(vp)
	if !got.Accessed() {
		t.Fatal("update not persisted")
	}
	if _, ok := tbl.Update(VPage(1234), func(p PTE) PTE { return p }); ok {
		t.Fatal("update of unmapped page succeeded")
	}
}

func TestTableRangeOrderAndCompleteness(t *testing.T) {
	tbl := New()
	// Spread mappings across leaves and upper levels.
	vps := []VPage{0, 511, 512, 1 << 18, 1<<27 + 5, MaxVPage}
	for i, vp := range vps {
		if err := tbl.Map(vp, NewPTE(fastFrame(uint32(i)), 0)); err != nil {
			t.Fatal(err)
		}
	}
	var got []VPage
	tbl.Range(func(vp VPage, p PTE) bool {
		got = append(got, vp)
		return true
	})
	if len(got) != len(vps) {
		t.Fatalf("Range visited %d pages, want %d", len(got), len(vps))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Range out of order: %v", got)
		}
	}
}

func TestTableRangeEarlyStop(t *testing.T) {
	tbl := New()
	for i := VPage(0); i < 10; i++ {
		tbl.Map(i, NewPTE(fastFrame(uint32(i)), 0))
	}
	n := 0
	tbl.Range(func(VPage, PTE) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Range visited %d after stop, want 3", n)
	}
}

func TestTableCountGrowth(t *testing.T) {
	tbl := New()
	if tbl.TableCount() != 1 {
		t.Fatalf("empty table count = %d, want 1 (root)", tbl.TableCount())
	}
	tbl.Map(0, NewPTE(fastFrame(0), 0))
	// root + l3 + l2 + leaf
	if tbl.TableCount() != 4 {
		t.Fatalf("count after first map = %d, want 4", tbl.TableCount())
	}
	tbl.Map(1, NewPTE(fastFrame(1), 0)) // same leaf
	if tbl.TableCount() != 4 {
		t.Fatalf("same-leaf map changed count to %d", tbl.TableCount())
	}
	tbl.Map(512, NewPTE(fastFrame(2), 0)) // new leaf, same l2
	if tbl.TableCount() != 5 {
		t.Fatalf("new-leaf map count = %d, want 5", tbl.TableCount())
	}
}

func TestTableOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vpage did not panic")
		}
	}()
	New().Lookup(MaxVPage + 1)
}

func TestLeafLiveCount(t *testing.T) {
	var l Leaf
	l.SetPTE(0, NewPTE(fastFrame(0), 0))
	l.SetPTE(1, NewPTE(fastFrame(1), 0))
	if l.Live() != 2 {
		t.Fatalf("Live = %d, want 2", l.Live())
	}
	l.SetPTE(0, l.PTE(0).WithAccessed(true)) // present->present
	if l.Live() != 2 {
		t.Fatalf("Live changed on flag update: %d", l.Live())
	}
	l.SetPTE(0, 0)
	if l.Live() != 1 {
		t.Fatalf("Live = %d after clear, want 1", l.Live())
	}
}

func TestTableMapUnmapProperty(t *testing.T) {
	// Property: mapping a set of distinct vpages then unmapping all of
	// them leaves Mapped()==0 and every lookup failing.
	check := func(raw []uint32) bool {
		tbl := New()
		seen := map[VPage]bool{}
		var vps []VPage
		for _, r := range raw {
			vp := VPage(r) & MaxVPage
			if seen[vp] {
				continue
			}
			seen[vp] = true
			vps = append(vps, vp)
			if err := tbl.Map(vp, NewPTE(fastFrame(r), 0)); err != nil {
				return false
			}
		}
		if tbl.Mapped() != len(vps) {
			return false
		}
		for _, vp := range vps {
			if _, ok := tbl.Unmap(vp); !ok {
				return false
			}
		}
		if tbl.Mapped() != 0 {
			return false
		}
		for _, vp := range vps {
			if _, ok := tbl.Lookup(vp); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
