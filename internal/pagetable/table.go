package pagetable

import (
	"fmt"

	"vulcan/internal/mem"
)

// Leaf is a last-level page table: 512 PTEs covering a 2MiB virtual
// region. Leaves are the unit shared between threads in Vulcan's
// replicated design, because they "constitute the majority of the page
// table structure" (paper §3.4).
type Leaf struct {
	ptes [EntriesPerTable]PTE
	live int // number of present entries
}

// PTE returns the entry at slot i.
func (l *Leaf) PTE(i int) PTE { return l.ptes[i] }

// SetPTE stores an entry at slot i, maintaining the live-entry count.
func (l *Leaf) SetPTE(i int, p PTE) {
	was, is := l.ptes[i].Present(), p.Present()
	l.ptes[i] = p
	switch {
	case !was && is:
		l.live++
	case was && !is:
		l.live--
	}
}

// Live returns the number of present entries in the leaf.
func (l *Leaf) Live() int { return l.live }

// Upper-level tables. Distinct types per level keep walks branch-free and
// make the replication boundary (upper levels private, leaves shared)
// explicit in the type system.
type tableL2 struct {
	leaves [EntriesPerTable]*Leaf
	live   int
}
type tableL3 struct {
	l2s  [EntriesPerTable]*tableL2
	live int
}
type tableL4 struct {
	l3s  [EntriesPerTable]*tableL3
	live int
}

// Table is a process-wide 4-level page table — the vanilla structure that
// every thread of a process shares in conventional kernels (Figure 6,
// left).
type Table struct {
	root *tableL4

	mapped     int // present PTEs
	fastMapped int // present PTEs whose frame is in the fast tier
	tables     int // allocated tables including root (page-table memory)
}

// New returns an empty process-wide page table.
func New() *Table {
	return &Table{root: &tableL4{}, tables: 1}
}

// Mapped returns the number of present PTEs.
func (t *Table) Mapped() int { return t.mapped }

// FastMapped returns the number of present PTEs whose frame lives in the
// fast tier. The count is maintained on every mutation, so per-app tier
// censuses are O(1) reads instead of full-table walks.
func (t *Table) FastMapped() int { return t.fastMapped }

// TableCount returns the number of allocated page-table pages (all
// levels), the metric behind the replication-overhead discussion in §3.6.
func (t *Table) TableCount() int { return t.tables }

// walk descends to the leaf covering vp, allocating intermediate tables
// when create is set. Returns the leaf and the final-level index, or nil
// when the path does not exist.
func (t *Table) walk(vp VPage, create bool) (*Leaf, int) {
	if vp > MaxVPage {
		panic(fmt.Sprintf("pagetable: vpage %#x out of range", uint64(vp)))
	}
	i4, i3, i2, i1 := splitVPage(vp)
	l3 := t.root.l3s[i4]
	if l3 == nil {
		if !create {
			return nil, 0
		}
		l3 = &tableL3{}
		t.root.l3s[i4] = l3
		t.root.live++
		t.tables++
	}
	l2 := l3.l2s[i3]
	if l2 == nil {
		if !create {
			return nil, 0
		}
		l2 = &tableL2{}
		l3.l2s[i3] = l2
		l3.live++
		t.tables++
	}
	leaf := l2.leaves[i2]
	if leaf == nil {
		if !create {
			return nil, 0
		}
		leaf = &Leaf{}
		l2.leaves[i2] = leaf
		l2.live++
		t.tables++
	}
	return leaf, i1
}

// Lookup returns the PTE for vp; ok is false when nothing is mapped.
func (t *Table) Lookup(vp VPage) (PTE, bool) {
	leaf, i := t.walk(vp, false)
	if leaf == nil {
		return 0, false
	}
	p := leaf.PTE(i)
	return p, p.Present()
}

// Map installs a PTE for vp. Mapping over a present entry returns an
// error: replacing a live translation without an unmap (and shootdown) is
// exactly the bug class tiering code must not hide.
func (t *Table) Map(vp VPage, p PTE) error {
	if !p.Present() {
		return fmt.Errorf("pagetable: mapping non-present PTE at %#x", uint64(vp))
	}
	leaf, i := t.walk(vp, true)
	if leaf.PTE(i).Present() {
		return fmt.Errorf("pagetable: vpage %#x already mapped", uint64(vp))
	}
	leaf.SetPTE(i, p)
	t.mapped++
	if p.Frame().Tier == mem.TierFast {
		t.fastMapped++
	}
	return nil
}

// Unmap clears the PTE for vp, returning the prior entry. ok is false when
// nothing was mapped.
func (t *Table) Unmap(vp VPage) (PTE, bool) {
	leaf, i := t.walk(vp, false)
	if leaf == nil {
		return 0, false
	}
	p := leaf.PTE(i)
	if !p.Present() {
		return 0, false
	}
	leaf.SetPTE(i, 0)
	t.mapped--
	if p.Frame().Tier == mem.TierFast {
		t.fastMapped--
	}
	return p, true
}

// Update applies fn to the PTE for vp and stores the result. ok is false
// when the page is not mapped. Update is how access/dirty bits are set and
// how migration remaps entries.
func (t *Table) Update(vp VPage, fn func(PTE) PTE) (PTE, bool) {
	leaf, i := t.walk(vp, false)
	if leaf == nil {
		return 0, false
	}
	p := leaf.PTE(i)
	if !p.Present() {
		return 0, false
	}
	np := fn(p)
	leaf.SetPTE(i, np)
	wasFast := p.Frame().Tier == mem.TierFast
	isFast := np.Present() && np.Frame().Tier == mem.TierFast
	if !np.Present() {
		t.mapped--
	}
	if wasFast != isFast {
		if isFast {
			t.fastMapped++
		} else {
			t.fastMapped--
		}
	}
	return np, true
}

// Range calls fn for every present PTE in ascending VPage order. fn may
// return false to stop early. Range is the substrate for page-table
// scanning profilers.
func (t *Table) Range(fn func(vp VPage, p PTE) bool) {
	for i4, l3 := range t.root.l3s {
		if l3 == nil {
			continue
		}
		for i3, l2 := range l3.l2s {
			if l2 == nil {
				continue
			}
			for i2, leaf := range l2.leaves {
				if leaf == nil || leaf.Live() == 0 {
					continue
				}
				base := VPage(i4)<<27 | VPage(i3)<<18 | VPage(i2)<<9
				for i1 := 0; i1 < EntriesPerTable; i1++ {
					p := leaf.PTE(i1)
					if !p.Present() {
						continue
					}
					if !fn(base|VPage(i1), p) {
						return
					}
				}
			}
		}
	}
}

// RangeFrom calls fn for every present PTE with vp >= start in ascending
// VPage order, stopping when fn returns false. Cursor-based scanners use
// it to resume a rotating walk without re-visiting the prefix below the
// cursor.
//
//vulcan:hotpath
func (t *Table) RangeFrom(start VPage, fn func(vp VPage, p PTE) bool) {
	if start > MaxVPage {
		return
	}
	s4, s3, s2, s1 := splitVPage(start)
	for i4 := s4; i4 < EntriesPerTable; i4++ {
		l3 := t.root.l3s[i4]
		if l3 == nil {
			continue
		}
		j3 := 0
		if i4 == s4 {
			j3 = s3
		}
		for i3 := j3; i3 < EntriesPerTable; i3++ {
			l2 := l3.l2s[i3]
			if l2 == nil {
				continue
			}
			j2 := 0
			if i4 == s4 && i3 == s3 {
				j2 = s2
			}
			for i2 := j2; i2 < EntriesPerTable; i2++ {
				leaf := l2.leaves[i2]
				if leaf == nil || leaf.Live() == 0 {
					continue
				}
				j1 := 0
				if i4 == s4 && i3 == s3 && i2 == s2 {
					j1 = s1
				}
				base := VPage(i4)<<27 | VPage(i3)<<18 | VPage(i2)<<9
				for i1 := j1; i1 < EntriesPerTable; i1++ {
					p := leaf.PTE(i1)
					if !p.Present() {
						continue
					}
					if !fn(base|VPage(i1), p) {
						return
					}
				}
			}
		}
	}
}

// RangeMut calls fn for every present PTE in ascending VPage order and
// stores the returned entry back in place, adjusting the mapped count
// if the present bit changes. It exists for epoch-boundary scanners
// that harvest and clear accessed/dirty bits: a read-modify-write pass
// over the whole table costs one walk instead of one Range plus one
// full walk per touched page through Update.
//
//vulcan:hotpath
func (t *Table) RangeMut(fn func(vp VPage, p PTE) PTE) {
	for i4, l3 := range t.root.l3s {
		if l3 == nil {
			continue
		}
		for i3, l2 := range l3.l2s {
			if l2 == nil {
				continue
			}
			for i2, leaf := range l2.leaves {
				if leaf == nil || leaf.Live() == 0 {
					continue
				}
				base := VPage(i4)<<27 | VPage(i3)<<18 | VPage(i2)<<9
				for i1 := 0; i1 < EntriesPerTable; i1++ {
					p := leaf.PTE(i1)
					if !p.Present() {
						continue
					}
					np := fn(base|VPage(i1), p)
					if np != p {
						leaf.SetPTE(i1, np)
						if !np.Present() {
							t.mapped--
						}
						wasFast := p.Frame().Tier == mem.TierFast
						isFast := np.Present() && np.Frame().Tier == mem.TierFast
						if wasFast != isFast {
							if isFast {
								t.fastMapped++
							} else {
								t.fastMapped--
							}
						}
					}
				}
			}
		}
	}
}

// WalkDepth returns the number of memory references a hardware page walk
// performs for a mapped page (always Levels for a 4-level table); it
// exists so TLB-miss costs can be derived from the structure rather than
// a constant.
func (t *Table) WalkDepth() int { return Levels }
