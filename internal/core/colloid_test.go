package core

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/workload"
)

func TestColloidSuspendDecision(t *testing.T) {
	sys := testSystem(t, 1024, appSpec("a", workload.LC, 500))
	// Unloaded: fast 70ns vs slow 162ns — ratio 0.43, well below 0.85.
	if colloidSuspend(sys, [mem.NumTiers]float64{}, 0.85) {
		t.Fatal("gate fired with idle memory")
	}
	// Fast tier saturated, slow idle: fast loaded = 3x70 = 210ns vs slow
	// 162ns — ratio >1, migration is pointless.
	util := [mem.NumTiers]float64{mem.TierFast: 1.0}
	if !colloidSuspend(sys, util, 0.85) {
		t.Fatal("gate did not fire under fast-tier saturation")
	}
	// Both saturated: 210 vs 486 — advantage restored.
	util[mem.TierSlow] = 1.0
	if colloidSuspend(sys, util, 0.85) {
		t.Fatal("gate fired when both tiers equally loaded")
	}
}

func TestColloidGateSuspendsMigration(t *testing.T) {
	v := New(Options{ColloidGate: true, ColloidThreshold: 0.0001})
	// A threshold this low makes the gate always fire: the policy must
	// hold quotas and perform no migrations.
	sys := vulcanColo(t, v, 512, 3)
	for i := 0; i < 10; i++ {
		sys.RunEpoch()
	}
	if !v.ColloidSuspended() {
		t.Fatal("gate never engaged")
	}
	for _, a := range sys.StartedApps() {
		if a.Async.Stats().Moved != 0 {
			t.Fatalf("%s migrated %d pages while gated", a.Name(), a.Async.Stats().Moved)
		}
	}
}

func TestColloidGateOffByDefault(t *testing.T) {
	v := New(Options{})
	sys := vulcanColo(t, v, 512, 3)
	for i := 0; i < 10; i++ {
		sys.RunEpoch()
	}
	if v.ColloidSuspended() {
		t.Fatal("gate engaged despite being disabled")
	}
	moved := uint64(0)
	for _, a := range sys.StartedApps() {
		moved += a.Async.Stats().Moved + a.Async.Stats().Remapped
	}
	if moved == 0 {
		t.Fatal("no migrations without the gate")
	}
}
