package core

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
	"vulcan/internal/fault"
	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// vulcanConfig builds the configuration for a small co-location system
// governed by the full Vulcan policy (unlike testSystem's null policy),
// so checkpoints carry the policy and profiler sections. Each call
// returns a fresh Policy instance, as Resume requires.
func vulcanConfig(plan *fault.Plan) system.Config {
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 32
	mcfg.Tiers[mem.TierFast].CapacityPages = 4096
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 16
	return system.Config{
		Machine: mcfg,
		Apps: []workload.AppConfig{
			appSpec("lc", workload.LC, 3000),
			appSpec("be", workload.BE, 6000),
		},
		Policy:           New(Options{}),
		Seed:             7,
		EpochLength:      10 * sim.Millisecond,
		SamplesPerThread: 200,
		Faults:           plan,
	}
}

func dumpSystem(t *testing.T, sys *system.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sys.Recorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// splitRunIdentity runs `total` epochs uninterrupted, then re-runs the
// same scenario with a checkpoint/resume split at `split` epochs, and
// requires byte-identical report and metrics output.
func splitRunIdentity(t *testing.T, total, split int, plan func() *fault.Plan) {
	t.Helper()
	uninterrupted := system.New(vulcanConfig(plan()))
	for i := 0; i < total; i++ {
		uninterrupted.RunEpoch()
	}
	want := dumpSystem(t, uninterrupted)

	first := system.New(vulcanConfig(plan()))
	for i := 0; i < split; i++ {
		first.RunEpoch()
	}
	var ckpt bytes.Buffer
	if err := first.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	resumed, err := system.Resume(bytes.NewReader(ckpt.Bytes()), vulcanConfig(plan()))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Policy().Name() != "vulcan" {
		t.Fatalf("resumed policy = %q", resumed.Policy().Name())
	}
	for i := split; i < total; i++ {
		resumed.RunEpoch()
	}
	if got := dumpSystem(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("vulcan resume-then-finish diverged from uninterrupted run")
	}
	if rep := resumed.Audit(); !rep.Ok() {
		t.Fatalf("audit failed after resume: %v", rep.Errors)
	}
}

// TestVulcanCheckpointResumeByteIdentical closes the gap the generic
// system tests leave open (they default to the null policy): a resumed
// Vulcan run must restore the QoS controller, CBFRP RNG, MLFQ wait
// memory and per-app hybrid profilers, and finish byte-identical to an
// uninterrupted run.
func TestVulcanCheckpointResumeByteIdentical(t *testing.T) {
	splitRunIdentity(t, 12, 5, func() *fault.Plan { return nil })
}

// TestVulcanFaultedCheckpointResumeByteIdentical repeats the split-run
// identity under moderate fault injection, so the policy's reaction to
// fault windows (confidence downgrades, retry interplay) is also
// covered by the resume path.
func TestVulcanFaultedCheckpointResumeByteIdentical(t *testing.T) {
	splitRunIdentity(t, 12, 7, func() *fault.Plan { return fault.PlanAtRate(0.05) })
}

// TestVulcanRestoreRejectsBadSnapshots feeds a two-workload policy
// snapshot into a Vulcan with no registered workloads, then walks
// truncations through a properly-admitted twin; every case must error,
// never panic.
func TestVulcanRestoreRejectsBadSnapshots(t *testing.T) {
	sys := system.New(vulcanConfig(nil))
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	v := sys.Policy().(*Vulcan)
	e := &checkpoint.Encoder{}
	v.Snapshot(e)
	blob := e.Bytes()

	if err := New(Options{}).Restore(checkpoint.NewDecoder(blob)); err == nil {
		t.Fatal("workload-count mismatch accepted")
	}

	cold := system.New(vulcanConfig(nil))
	cold.RunEpoch() // admit the same two workloads
	target := cold.Policy().(*Vulcan)
	stride := len(blob)/16 + 1
	for cut := 0; cut < len(blob); cut += stride {
		if err := target.Restore(checkpoint.NewDecoder(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
