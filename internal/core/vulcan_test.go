package core

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/metrics"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// vulcanColo builds a micro LC+BE co-location under the given policy.
func vulcanColo(t *testing.T, pol system.Tiering, fastPages int, seed uint64) *system.System {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = fastPages
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 15
	return system.New(system.Config{
		Machine: mcfg,
		Apps: []workload.AppConfig{
			{
				Name: "lc", Class: workload.LC, Threads: 2, RSSPages: 3000,
				SharedFraction: 0.9, ComputeNs: 100 * sim.Nanosecond,
				OpsPerSec: 1e5,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewKeyValue(p, workload.KeyValueParams{}, rng)
				},
			},
			{
				Name: "be", Class: workload.BE, Threads: 2, RSSPages: 6000,
				SharedFraction: 0.9, ComputeNs: 25 * sim.Nanosecond,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewMLTrain(p, rng)
				},
			},
		},
		Policy:           pol,
		EpochLength:      20 * sim.Millisecond,
		SamplesPerThread: 800,
		Seed:             seed,
	})
}

func TestVulcanDeclaresAllMechanisms(t *testing.T) {
	v := New(Options{})
	m := v.Mechanisms()
	if !m.OptimizedPrep || !m.TargetedShootdown || !m.Shadowing {
		t.Fatalf("full Vulcan mechanisms = %+v", m)
	}
	ablated := New(Options{
		DisablePerThreadPT:   true,
		DisableOptimizedPrep: true,
		DisableShadowing:     true,
	})
	m = ablated.Mechanisms()
	if m.OptimizedPrep || m.TargetedShootdown || m.Shadowing {
		t.Fatalf("ablated mechanisms = %+v", m)
	}
}

func TestVulcanProtectsLCWorkload(t *testing.T) {
	// Vulcan's GPT guarantee must keep the LC app's hit ratio healthy
	// even though the BE scanner's absolute access rate dwarfs it —
	// precisely the case where Memtis starves it.
	sys := vulcanColo(t, New(Options{}), 1024, 7)
	for i := 0; i < 60; i++ {
		sys.RunEpoch()
	}
	lc := sys.App("lc")
	if lc.FTHR() < 0.3 {
		t.Fatalf("LC FTHR = %v under Vulcan, want protection", lc.FTHR())
	}
	if lc.FastPages() == 0 {
		t.Fatal("LC fully evicted from fast tier")
	}
}

func TestVulcanQuotaEnforcement(t *testing.T) {
	v := New(Options{})
	sys := vulcanColo(t, v, 1024, 9)
	for i := 0; i < 50; i++ {
		sys.RunEpoch()
	}
	// Residency must track the CBFRP quotas (within async-lag slack).
	for _, st := range v.QoS().States() {
		fast := st.App.FastPages()
		if fast > st.Alloc+256 {
			t.Errorf("%s holds %d fast pages, quota %d", st.App.Name(), fast, st.Alloc)
		}
	}
	// And total allocation respects capacity.
	total := 0
	for _, st := range v.QoS().States() {
		total += st.Alloc
	}
	if total > 1024 {
		t.Fatalf("quotas sum to %d > capacity", total)
	}
}

func TestVulcanFairerThanMemtisStyleStarvation(t *testing.T) {
	// Fairness (Jain over FTHR-weighted cumulative allocation) under
	// Vulcan must clearly beat a policy that starves the LC app. We
	// compare against static first-touch, which gives everything to the
	// first app (CFI -> 1/n).
	run := func(pol system.Tiering) float64 {
		sys := vulcanColo(t, pol, 1024, 11)
		for i := 0; i < 60; i++ {
			sys.RunEpoch()
		}
		return sys.CFI().Index()
	}
	vulcanCFI := run(New(Options{}))
	staticCFI := run(system.NullPolicy{})
	if vulcanCFI <= staticCFI {
		t.Fatalf("Vulcan CFI %v not better than static %v", vulcanCFI, staticCFI)
	}
	if vulcanCFI < 0.55 {
		t.Fatalf("Vulcan CFI = %v, want meaningful fairness", vulcanCFI)
	}
}

func TestVulcanProbeShrinkDonatesExcess(t *testing.T) {
	// The LC app's hot set is far below its even share; probe-shrink must
	// release the excess to the scanner instead of hoarding entitlement.
	v := New(Options{})
	sys := vulcanColo(t, v, 2048, 13) // even share 1024 >> LC hot set (~330)
	for i := 0; i < 80; i++ {
		sys.RunEpoch()
	}
	lc := sys.App("lc")
	be := sys.App("be")
	if lc.FastPages() >= 1024 {
		t.Fatalf("LC still holds %d >= even share; probe-shrink inert", lc.FastPages())
	}
	if lc.FTHR() < 0.3 {
		t.Fatalf("probe-shrink overshot: LC FTHR %v", lc.FTHR())
	}
	if be.FastPages() <= 1024 {
		t.Fatalf("BE never received donated pages: %d", be.FastPages())
	}
}

func TestVulcanPlaceRespectsQuota(t *testing.T) {
	v := New(Options{})
	sys := vulcanColo(t, v, 1024, 15)
	sys.RunEpoch()
	// With two apps the first premap may take at most the provisional
	// even share (cap/1 for the first app before the second registers,
	// but enforcement pulls it back); after some epochs no app may hold
	// essentially the whole tier.
	for i := 0; i < 20; i++ {
		sys.RunEpoch()
	}
	for _, a := range sys.StartedApps() {
		if a.FastPages() > 1024*9/10 {
			t.Fatalf("%s monopolizes the fast tier: %d/1024", a.Name(), a.FastPages())
		}
	}
}

func TestVulcanAblationsRun(t *testing.T) {
	// Every ablation configuration must run to completion and keep the
	// frame-conservation invariant.
	opts := []Options{
		{DisableCBFRP: true},
		{DisableMLFQ: true},
		{DisableBiasedQueues: true},
		{DisablePerThreadPT: true},
		{DisableOptimizedPrep: true},
		{DisableShadowing: true},
	}
	for i, o := range opts {
		sys := vulcanColo(t, New(o), 512, uint64(20+i))
		for e := 0; e < 15; e++ {
			sys.RunEpoch()
		}
		fast := sys.Tiers().Fast()
		if fast.Used()+fast.FreePages() != fast.Capacity() {
			t.Fatalf("ablation %d leaked fast frames", i)
		}
		slow := sys.Tiers().Slow()
		if slow.Used()+slow.FreePages() != slow.Capacity() {
			t.Fatalf("ablation %d leaked slow frames", i)
		}
	}
}

func TestVulcanUniformVsCBFRP(t *testing.T) {
	// CBFRP must not be worse than the uniform straw man on fairness.
	run := func(o Options) float64 {
		sys := vulcanColo(t, New(o), 1024, 31)
		for i := 0; i < 50; i++ {
			sys.RunEpoch()
		}
		x := make([]float64, 0, 2)
		for _, a := range sys.Apps() {
			x = append(x, float64(a.FastPages())*a.FTHR())
		}
		return metrics.JainIndex(x)
	}
	cbfrp := run(Options{})
	uniform := run(Options{DisableCBFRP: true})
	if cbfrp < uniform*0.9 {
		t.Fatalf("CBFRP fairness %v well below uniform %v", cbfrp, uniform)
	}
}

func TestVulcanUsesHybridProfilerPerClass(t *testing.T) {
	v := New(Options{})
	sys := vulcanColo(t, v, 512, 41)
	sys.RunEpoch()
	for _, a := range sys.StartedApps() {
		if a.Profiler.Name() != "hybrid" {
			t.Fatalf("%s profiler = %q", a.Name(), a.Profiler.Name())
		}
	}
}

func TestVulcanStaggeredArrivalRebalances(t *testing.T) {
	// A late-arriving workload must receive fast memory via CBFRP even
	// though the incumbent premapped the whole tier (the Figure 9
	// dynamic).
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = 1024
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 15
	v := New(Options{})
	sys := system.New(system.Config{
		Machine: mcfg,
		Apps: []workload.AppConfig{
			{
				Name: "first", Class: workload.BE, Threads: 2, RSSPages: 4000,
				SharedFraction: 0.9, ComputeNs: 50 * sim.Nanosecond,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewZipfian(p, 0.99, 0.1, 0.1, rng)
				},
			},
			{
				Name: "late", Class: workload.LC, Threads: 2, RSSPages: 3000,
				SharedFraction: 0.9, ComputeNs: 100 * sim.Nanosecond,
				OpsPerSec: 1e5,
				StartAt:   sim.Time(200 * sim.Millisecond),
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewKeyValue(p, workload.KeyValueParams{}, rng)
				},
			},
		},
		Policy:           v,
		EpochLength:      20 * sim.Millisecond,
		SamplesPerThread: 800,
		Seed:             17,
	})
	sys.Run(200 * sim.Millisecond)
	if sys.App("late").Started() {
		t.Fatal("late app started early")
	}
	first := sys.App("first").FastPages()
	if first < 900 {
		t.Fatalf("incumbent holds only %d fast pages before arrival", first)
	}
	sys.Run(800 * sim.Millisecond)
	late := sys.App("late")
	if !late.Started() {
		t.Fatal("late app never started")
	}
	if late.FastPages() < 200 {
		t.Fatalf("late LC app received only %d fast pages", late.FastPages())
	}
	if sys.App("first").FastPages() >= first {
		t.Fatal("incumbent never released fast memory")
	}
}
