package core

import (
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/radix"
	"vulcan/internal/system"
)

// PageClass is the four-way classification of Table 1.
type PageClass uint8

// Classes ordered by promotion priority, highest first (Table 1):
// private+read-intensive (★★★★) migrates with minimal shootdown scope
// and safe async copy; shared+write-intensive (★) is the most expensive
// on both axes.
const (
	PrivateRead  PageClass = iota // ★★★★  async copy
	SharedRead                    // ★★★   async copy
	PrivateWrite                  // ★★    sync copy
	SharedWrite                   // ★     sync copy
	NumClasses
)

// String names the class.
func (c PageClass) String() string {
	switch c {
	case PrivateRead:
		return "private-read"
	case SharedRead:
		return "shared-read"
	case PrivateWrite:
		return "private-write"
	case SharedWrite:
		return "shared-write"
	default:
		return "unknown"
	}
}

// Async reports whether the class uses asynchronous copying (Table 1's
// strategy column).
func (c PageClass) Async() bool { return c == PrivateRead || c == SharedRead }

// Classify derives a page's class from its PTE ownership (private vs
// shared, §3.4) and profiled write intensity (§3.5).
func Classify(pte pagetable.PTE, writeFrac float64) PageClass {
	shared := pte.Shared()
	writeIntensive := profile.IsWriteIntensive(writeFrac)
	switch {
	case !shared && !writeIntensive:
		return PrivateRead
	case shared && !writeIntensive:
		return SharedRead
	case !shared && writeIntensive:
		return PrivateWrite
	default:
		return SharedWrite
	}
}

// queueEntry is one candidate promotion.
type queueEntry struct {
	vp    pagetable.VPage
	heat  float64
	class PageClass
	// boosted marks MLFQ escalation: the page waited in a lower queue
	// while its heat kept rising, so it is served one class earlier.
	boosted bool
}

// PromotionQueues implements the four priority queues plus the MLFQ
// escalation rule: a page that stays enqueued across epochs with rising
// heat is bumped one priority level so hot pages cannot stagnate in
// low-priority queues.
type PromotionQueues struct {
	queues [NumClasses][]queueEntry //vulcan:nosnap rebuilt from candidates by Rebuild each epoch
	// lastHeat remembers the heat of pages left waiting last epoch.
	lastHeat map[pagetable.VPage]float64
	// nextHeat is Rebuild's staging map; each epoch it is cleared, filled
	// with this epoch's candidates, then swapped with lastHeat so neither
	// map is ever reallocated.
	nextHeat map[pagetable.VPage]float64 //vulcan:nosnap per-epoch scratch, swapped and cleared by Rebuild
	noMLFQ   bool                        //vulcan:nosnap ablation wiring, re-applied when the scenario constructs the policy
	rad      radix.Buf[queueEntry]       //vulcan:nosnap reusable sort buffers, dead between Rebuild calls
}

// NewPromotionQueues returns empty queues.
func NewPromotionQueues() *PromotionQueues {
	return &PromotionQueues{
		lastHeat: make(map[pagetable.VPage]float64),
		nextHeat: make(map[pagetable.VPage]float64),
	}
}

// DisableMLFQ turns off heat escalation (the ablation knob).
func (pq *PromotionQueues) DisableMLFQ() { pq.noMLFQ = true }

// Rebuild reclassifies this epoch's candidates into the four queues,
// applying MLFQ escalation for pages that waited since last epoch with
// increased heat. Queues are ordered hottest-first within each class.
func (pq *PromotionQueues) Rebuild(app *system.App, candidates []profile.PageHeat) {
	for c := range pq.queues {
		pq.queues[c] = pq.queues[c][:0]
	}
	next := pq.nextHeat
	if next == nil {
		next = make(map[pagetable.VPage]float64, len(candidates))
	}
	clear(next)
	for _, ph := range candidates {
		pte, ok := app.Table.Lookup(ph.VP)
		if !ok {
			continue
		}
		class := Classify(pte, ph.WriteFrac)
		e := queueEntry{vp: ph.VP, heat: ph.Heat, class: class}
		if prev, waited := pq.lastHeat[ph.VP]; !pq.noMLFQ && waited && ph.Heat > prev && class > PrivateRead {
			e.boosted = true
			class--
		}
		pq.queues[class] = append(pq.queues[class], e)
		next[ph.VP] = ph.Heat
	}
	// Heat descending, then page number — the same total order the
	// previous comparison sort produced, via composite radix keys.
	for c := range pq.queues {
		q := pq.queues[c]
		major, minor := pq.rad.Keys(len(q))
		for i := range q {
			major[i] = radix.FloatKeyDesc(q[i].heat)
			minor[i] = uint64(q[i].vp)
		}
		pq.queues[c] = pq.rad.Sort(q, major, minor)
	}
	pq.nextHeat = pq.lastHeat
	pq.lastHeat = next
}

// Drain visits entries in priority order (★★★★ down to ★), calling take
// for each until take returns false (budget exhausted). Taken pages are
// removed from lastHeat so only still-waiting pages can escalate next
// epoch.
func (pq *PromotionQueues) Drain(take func(e QueueItem) bool) {
	for c := 0; c < int(NumClasses); c++ {
		for _, e := range pq.queues[c] {
			item := QueueItem{
				VP: e.vp, Heat: e.heat, Class: e.class,
				Queue: PageClass(c), Boosted: e.boosted,
			}
			if !take(item) {
				return
			}
			delete(pq.lastHeat, e.vp)
		}
	}
}

// QueueItem is the public view of one queued candidate.
type QueueItem struct {
	VP      pagetable.VPage
	Heat    float64
	Class   PageClass // intrinsic classification
	Queue   PageClass // queue it was served from (≠ Class when boosted)
	Boosted bool
}

// Len returns the number of entries in class c's queue.
func (pq *PromotionQueues) Len(c PageClass) int { return len(pq.queues[c]) }

// Depths returns the per-queue entry counts after the last Rebuild, in
// priority order — the queue-adaptation telemetry snapshot.
func (pq *PromotionQueues) Depths() [NumClasses]int {
	var d [NumClasses]int
	for c := range pq.queues {
		d[c] = len(pq.queues[c])
	}
	return d
}

// BoostedCount returns how many entries of the last Rebuild were MLFQ-
// escalated one priority level.
func (pq *PromotionQueues) BoostedCount() int {
	n := 0
	for c := range pq.queues {
		for _, e := range pq.queues[c] {
			if e.boosted {
				n++
			}
		}
	}
	return n
}

// Total returns entries across all queues.
func (pq *PromotionQueues) Total() int {
	n := 0
	for c := range pq.queues {
		n += len(pq.queues[c])
	}
	return n
}
