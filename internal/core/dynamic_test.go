package core

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

func dynApp(name string, class workload.Class, pages int) workload.AppConfig {
	return workload.AppConfig{
		Name: name, Class: class, Threads: 2, RSSPages: pages,
		SharedFraction: 0.5, ComputeNs: 100 * sim.Nanosecond,
		NewGen: func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewZipfian(p, 0.99, 0.1, 0.1, rng)
		},
	}
}

// Evicting a tenant under Vulcan must drop its QoS registration,
// promotion queues and placement memory, keep the survivors' admission
// order, and leave the frame-ownership audit green.
func TestVulcanAppStopped(t *testing.T) {
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = 512
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 14
	pol := New(Options{})
	sys := system.New(system.Config{
		Machine: mcfg,
		Apps: []workload.AppConfig{
			dynApp("a", workload.LC, 600),
			dynApp("b", workload.BE, 600),
			dynApp("c", workload.BE, 400),
		},
		Policy:       pol,
		AllowDynamic: true,
		EpochLength:  10 * sim.Millisecond,
		Seed:         11,
	})
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	if got := len(pol.qos.States()); got != 3 {
		t.Fatalf("registered states = %d, want 3", got)
	}
	b := sys.App("b")
	if err := sys.StopApp(b); err != nil {
		t.Fatalf("StopApp: %v", err)
	}
	states := pol.qos.States()
	if len(states) != 2 {
		t.Fatalf("registered states after stop = %d, want 2", len(states))
	}
	if states[0].App.Cfg.Name != "a" || states[1].App.Cfg.Name != "c" {
		t.Fatalf("admission order broken: %s, %s",
			states[0].App.Cfg.Name, states[1].App.Cfg.Name)
	}
	if pol.qos.State(b) != nil {
		t.Fatal("stopped app still registered")
	}
	if _, ok := pol.queues[b]; ok {
		t.Fatal("stopped app keeps promotion queues")
	}
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	if audit := sys.Audit(); !audit.Ok() {
		t.Fatalf("audit after eviction under vulcan: %v", audit.Errors)
	}
}
