package core

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// TestVulcanAdaptsToPhaseChange runs the hash-join workload, whose hash
// region flips between write-intensive (build) and read-intensive
// (probe), and checks that the biased classification follows the phase —
// the dynamic behaviour the Table 1 queues and MLFQ exist for.
func TestVulcanAdaptsToPhaseChange(t *testing.T) {
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = 512
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 14

	// Each thread draws from its own generator instance at 800 samples
	// per epoch, so a phase of 8000 refs spans 10 epochs per thread.
	var join *workload.HashJoin
	app := workload.AppConfig{
		Name: "join", Class: workload.BE, Threads: 2, RSSPages: 4000,
		SharedFraction: 1.0, ComputeNs: 50 * sim.Nanosecond,
		NewGen: func(p int, rng *sim.RNG) workload.Generator {
			join = workload.NewHashJoin(p, 8000, rng)
			return join
		},
	}
	v := New(Options{})
	sys := system.New(system.Config{
		Machine:          mcfg,
		Apps:             []workload.AppConfig{app},
		Policy:           v,
		EpochLength:      20 * sim.Millisecond,
		SamplesPerThread: 800,
		Seed:             7,
	})

	// meanHashWriteFrac summarizes the profiled write intensity of the
	// hash region.
	meanHashWriteFrac := func() float64 {
		a := sys.App("join")
		sum, n := 0.0, 0
		for vp := 0; vp < join.HashPages(); vp++ {
			if h := a.Profiler.Heat(pagetable.VPage(vp)); h > 0 {
				sum += a.Profiler.WriteFraction(pagetable.VPage(vp))
				n++
			}
		}
		if n == 0 {
			return -1
		}
		return sum / float64(n)
	}

	// Epochs 1-8: build phase dominates the samples.
	for i := 0; i < 8; i++ {
		sys.RunEpoch()
	}
	buildWF := meanHashWriteFrac()
	// Advance well into the probe phase (epochs 11+; the profile decays
	// at 0.5/epoch, so by epoch 17 the build-phase writes are residue).
	for i := 0; i < 9; i++ {
		sys.RunEpoch()
	}
	probeWF := meanHashWriteFrac()

	if buildWF < 0 || probeWF < 0 {
		t.Fatal("hash region never profiled")
	}
	if !(buildWF > 0.5) {
		t.Fatalf("build-phase hash write fraction = %v, want write-intensive", buildWF)
	}
	if !(probeWF < buildWF) {
		t.Fatalf("probe-phase write fraction %v did not fall below build %v",
			probeWF, buildWF)
	}
	// Classification must flip accordingly for a representative page.
	a := sys.App("join")
	pte, ok := a.Table.Lookup(0)
	if !ok {
		t.Fatal("hash page unmapped")
	}
	if c := Classify(pte, probeWF); c != SharedRead && c != PrivateRead {
		// Probe-phase hash pages should classify read-intensive once the
		// build-phase writes have decayed; tolerate lingering writes only
		// if the fraction is still falling.
		if probeWF > profile.WriteIntensiveThreshold && probeWF > buildWF/2 {
			t.Fatalf("classification stuck write-intensive: wf=%v class=%v", probeWF, c)
		}
	}
}
