package core

import (
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/obs"
	"vulcan/internal/policy"
	"vulcan/internal/profile"
	"vulcan/internal/radix"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// Options configure Vulcan; the Disable* switches exist for the ablation
// experiments (each corresponds to one of the four innovations).
type Options struct {
	// DisableCBFRP replaces credit-based partitioning with a static even
	// split of the fast tier (the "straw-man uniform allocation" §3.3).
	DisableCBFRP bool
	// DisableMLFQ turns off heat-escalation between priority queues.
	DisableMLFQ bool
	// DisableBiasedQueues collapses the four queues into one heat-ordered
	// async queue (no Table 1 classification).
	DisableBiasedQueues bool
	// DisablePerThreadPT gives up targeted shootdowns (§3.4).
	DisablePerThreadPT bool
	// DisableOptimizedPrep reverts to the kernel's global LRU drain.
	DisableOptimizedPrep bool
	// DisableShadowing drops Nomad-style shadow copies (§3.5).
	DisableShadowing bool

	// MigThreadBudget is each app's dedicated migration-thread CPU per
	// epoch, in multiples of one core's epoch cycles (§3.2: "dedicated
	// migration threads created for each application").
	MigThreadBudget float64
	// PromoteLimit caps promotion candidates per app per epoch.
	PromoteLimit int
	// SyncBatchLimit caps synchronous (write-intensive) migrations per
	// app per epoch.
	SyncBatchLimit int
	// SampleRate is the hybrid profiler's sampling period.
	SampleRate int
	// LCHeatDecay / BEHeatDecay are the hybrid profiler's per-epoch aging
	// factors, chosen per workload class (§3.2: the daemon picks the
	// profiling configuration that fits each workload). Latency-critical
	// services get a slow decay so their steadily-hot-but-low-rate
	// working sets outrank transients; best-effort streamers get a fast
	// decay so scan residue cools quickly.
	LCHeatDecay float64
	BEHeatDecay float64
	// SwapLimit caps per-epoch within-quota rebalancing swaps.
	SwapLimit int
	// ColloidGate enables the §3.6 Colloid integration: migrations are
	// suspended for an epoch when bandwidth contention erases the fast
	// tier's latency advantage.
	ColloidGate bool
	// ColloidThreshold is the fast/slow loaded-latency ratio above which
	// migration is pointless (default 0.85).
	ColloidThreshold float64
	// Seed drives CBFRP's random BE selection.
	Seed uint64
}

func (o *Options) fillDefaults() {
	if o.MigThreadBudget == 0 {
		o.MigThreadBudget = 1.0
	}
	if o.PromoteLimit == 0 {
		o.PromoteLimit = 16384
	}
	if o.SyncBatchLimit == 0 {
		o.SyncBatchLimit = 2048
	}
	if o.SampleRate == 0 {
		o.SampleRate = 4
	}
	if o.LCHeatDecay == 0 {
		o.LCHeatDecay = 0.9
	}
	if o.BEHeatDecay == 0 {
		o.BEHeatDecay = profile.DefaultDecay
	}
	if o.SwapLimit == 0 {
		o.SwapLimit = 1024
	}
	if o.ColloidThreshold == 0 {
		o.ColloidThreshold = 0.85
	}
	if o.Seed == 0 {
		o.Seed = 99
	}
}

// Vulcan is the paper's tiering framework as a system.Tiering policy.
type Vulcan struct {
	opts   Options
	qos    *QoSController
	queues map[*system.App]*PromotionQueues
	placed map[*system.App]int
	rng    *sim.RNG

	colloidSuspended bool

	// Per-epoch scratch, reused so enforcement allocates nothing in
	// steady state.
	rank      policy.RankBuf               //vulcan:nosnap per-epoch ranking scratch, rebuilt every enforce pass
	topHeat   radix.TopK[profile.PageHeat] //vulcan:nosnap per-epoch candidate selection scratch
	radHeat   radix.Buf[profile.PageHeat]  //vulcan:nosnap per-epoch candidate sort scratch
	syncBatch []migrate.Move               //vulcan:nosnap per-epoch sync-migration scratch, reused buffer
}

// New builds Vulcan with opts (zero value = full system, defaults).
func New(opts Options) *Vulcan {
	opts.fillDefaults()
	return &Vulcan{
		opts:   opts,
		qos:    NewQoSController(),
		queues: make(map[*system.App]*PromotionQueues),
		placed: make(map[*system.App]int),
		rng:    sim.NewRNG(opts.Seed),
	}
}

// Name implements system.Tiering.
func (v *Vulcan) Name() string { return "vulcan" }

// Options returns the active option set.
func (v *Vulcan) Options() Options { return v.opts }

// QoS exposes the controller (figures read GPT/demand/credits from it).
func (v *Vulcan) QoS() *QoSController { return v.qos }

// Mechanisms implements system.Tiering: all of Vulcan's mechanism-level
// optimizations, minus any ablated ones.
func (v *Vulcan) Mechanisms() system.Mechanisms {
	return system.Mechanisms{
		OptimizedPrep:     !v.opts.DisableOptimizedPrep,
		TargetedShootdown: !v.opts.DisablePerThreadPT,
		Shadowing:         !v.opts.DisableShadowing,
	}
}

// NewProfiler implements system.ProfilerFactory: the FlexMem-style
// hybrid profiler (§3.2).
func (v *Vulcan) NewProfiler(app *system.App) profile.Profiler {
	decay := v.opts.BEHeatDecay
	if app.Class() == workload.LC {
		decay = v.opts.LCHeatDecay
	}
	return profile.NewHybridWithDecay(app.Table, v.opts.SampleRate, decay,
		uint64(app.Index)*7919+3)
}

// AppStarted implements system.Tiering.
func (v *Vulcan) AppStarted(sys *system.System, app *system.App) {
	v.qos.Register(app)
	v.queues[app] = NewPromotionQueues()
	if v.opts.DisableMLFQ {
		v.queues[app].DisableMLFQ()
	}
}

// AppStopped implements system.AppStopper: a departing app's QoS state,
// promotion queues and placement memory are dropped so future epochs
// and snapshots only see the surviving tenant set.
func (v *Vulcan) AppStopped(sys *system.System, app *system.App) {
	v.qos.Unregister(app)
	delete(v.queues, app)
	delete(v.placed, app)
}

// Place implements system.Placer: first-touch allocation respects the
// app's fast-tier quota so one tenant cannot monopolize the fast tier at
// admission time.
func (v *Vulcan) Place(sys *system.System, app *system.App) mem.TierID {
	quota := 0
	if st := v.qos.State(app); st != nil && st.Alloc > 0 {
		quota = st.Alloc
	} else {
		// Not yet partitioned (premap during admission): provisional even
		// share counting this app.
		quota = sys.Tiers().Fast().Capacity() / (len(v.qos.States()) + 1)
	}
	if v.placed[app] < quota {
		v.placed[app]++
		return mem.TierFast
	}
	return mem.TierSlow
}

// EndEpoch implements system.Tiering: update QoS targets, partition with
// CBFRP, then enforce quotas per app through the biased migration policy,
// all executed by per-app migration threads (no global synchronization).
func (v *Vulcan) EndEpoch(sys *system.System) {
	if v.opts.ColloidGate {
		v.colloidSuspended = colloidSuspend(sys, sys.BandwidthUtil(), v.opts.ColloidThreshold)
		if v.colloidSuspended {
			// Bandwidth contention has erased the fast tier's advantage:
			// hold quotas and skip all migration this epoch.
			if obs.Enabled(sys.Obs(), obs.EvQoSAdapt) {
				e := obs.E(obs.EvQoSAdapt, "", "qos", 0,
					obs.F("bw_fast", sys.BandwidthUtil()[mem.TierFast]))
				e.Note = "colloid-suspend"
				sys.Obs().Event(e)
			}
			return
		}
	}
	fastCap := sys.Tiers().Fast().Capacity()
	v.qos.UpdateDemands(fastCap)
	if v.opts.DisableCBFRP {
		gfmc := v.qos.GFMC(fastCap)
		for _, st := range v.qos.States() {
			st.Alloc = gfmc
		}
	} else {
		v.qos.CBFRP(fastCap, v.rng)
		if obs.Enabled(sys.Obs(), obs.EvQoSAdapt) {
			for _, tr := range v.qos.Transfers {
				from := tr.From
				if from == "" {
					from = "pool"
				}
				e := obs.E(obs.EvQoSAdapt, "", "cbfrp", 0,
					obs.F("units", float64(tr.Units)))
				e.Note = tr.Kind.String() + " " + from + "->" + tr.To
				sys.Obs().Event(e)
			}
		}
	}

	for _, st := range v.qos.States() {
		// Graceful degradation under injected sample loss: when the
		// app's profile fell below the fault plan's confidence
		// threshold, its heat ranking is built from starved data —
		// enforcing it would demote pages that only look cold. Hold the
		// prior placement for the epoch (quota bookkeeping above still
		// ran, so credits and demand stay current).
		if st.App.ProfileDegraded() {
			v.placed[st.App] = st.App.FastPages()
			continue
		}
		v.enforce(sys, st)
		v.placed[st.App] = st.App.FastPages()
		// Figure 9 instrumentation: quota, GPT and demand over time.
		prefix := st.App.Name() + "."
		sys.Recorder().Record(prefix+"vulcan_alloc", float64(st.Alloc))
		sys.Recorder().Record(prefix+"vulcan_gpt", st.GPT)
		sys.Recorder().Record(prefix+"vulcan_demand", float64(st.Demand))
		sys.Recorder().Record(prefix+"vulcan_credits", float64(st.Credits))
		if obs.Enabled(sys.Obs(), obs.EvQoSAdapt) {
			shrink := 0.0
			if st.shrankLast {
				shrink = 1
			}
			sys.Obs().Event(obs.E(obs.EvQoSAdapt, st.App.Name(), "qos", 0,
				obs.F("alloc", float64(st.Alloc)),
				obs.F("demand", float64(st.Demand)),
				obs.F("credits", float64(st.Credits)),
				obs.F("gpt", st.GPT),
				obs.F("probe_shrink", shrink)))
		}
	}
}

// enforce reconciles one app's fast-tier residency with its quota.
func (v *Vulcan) enforce(sys *system.System, st *QoSState) {
	app := st.App
	budget := v.opts.MigThreadBudget * sys.EpochCycles()
	cur := app.FastPages()

	if cur > st.Alloc {
		// Over quota: demote the coldest pages; shadow remaps make the
		// clean ones nearly free.
		victims := v.rank.ColdestFastPages(app, cur-st.Alloc, nil)
		if obs.Enabled(sys.Obs(), obs.EvDecision) {
			e := obs.E(obs.EvDecision, app.Name(), "policy", 0,
				obs.F("over", float64(cur-st.Alloc)),
				obs.F("victims", float64(len(victims))))
			e.Note = "demote"
			sys.Obs().Event(e)
		}
		for _, vp := range victims {
			app.Async.EnqueueOne(migrate.Move{VP: vp, To: mem.TierSlow})
		}
		app.Async.RunEpoch(budget, app.WriteProbability)
		return
	}

	room := st.Alloc - cur
	if room <= 0 {
		// At quota: latency-critical apps rebalance within it — swapping
		// in pages clearly hotter than the coldest residents keeps the
		// hot set resident as it drifts. Best-effort scanners skip this:
		// for cyclic access, evicting the "coldest" page is pessimal
		// (it is next in the scan), so swapping just thrashes.
		if app.Class() == workload.LC {
			v.swapWithinQuota(sys, app, budget)
		} else {
			app.Async.RunEpoch(budget, app.WriteProbability)
		}
		return
	}

	// Under quota: gather hot slow-tier candidates.
	candidates := v.slowCandidates(app, min(room+v.opts.SwapLimit, v.opts.PromoteLimit))
	if v.opts.DisableBiasedQueues {
		for _, c := range candidates {
			app.Async.EnqueueOne(migrate.Move{VP: c.VP, To: mem.TierFast})
		}
		app.Async.RunEpoch(budget, app.WriteProbability)
		return
	}

	q := v.queues[app]
	q.Rebuild(app, candidates)
	depths := q.Depths()
	boosted := q.BoostedCount()

	syncBatch := v.syncBatch[:0]
	taken := 0
	q.Drain(func(it QueueItem) bool {
		if taken >= room {
			return false
		}
		taken++
		if it.Class.Async() {
			app.Async.EnqueueOne(migrate.Move{VP: it.VP, To: mem.TierFast})
		} else if len(syncBatch) < v.opts.SyncBatchLimit {
			syncBatch = append(syncBatch, migrate.Move{VP: it.VP, To: mem.TierFast})
		}
		return true
	})
	if obs.Enabled(sys.Obs(), obs.EvQueueAdapt) {
		sys.Obs().Event(obs.E(obs.EvQueueAdapt, app.Name(), "queues", 0,
			obs.F("private_read", float64(depths[PrivateRead])),
			obs.F("shared_read", float64(depths[SharedRead])),
			obs.F("private_write", float64(depths[PrivateWrite])),
			obs.F("shared_write", float64(depths[SharedWrite])),
			obs.F("boosted", float64(boosted)),
			obs.F("sync_batch", float64(len(syncBatch))),
			obs.F("taken", float64(taken))))
	}

	v.syncBatch = syncBatch
	// Write-intensive pages migrate synchronously (Table 1): a dirty
	// page's writers block for the copy, so the copy phase is charged to
	// the app while the whole operation consumes migration-thread budget.
	if len(syncBatch) > 0 {
		res := app.Engine.MigrateSync(syncBatch)
		budget -= res.Cycles()
		app.ChargeStall(res.Breakdown.Copy)
	}
	if budget > 0 {
		app.Async.RunEpoch(budget, app.WriteProbability)
	}
}

// swapWithinQuota demotes the coldest fast pages to admit strictly
// hotter slow candidates, without changing the app's allocation.
func (v *Vulcan) swapWithinQuota(sys *system.System, app *system.App, budget float64) {
	candidates := v.slowCandidates(app, v.opts.SwapLimit)
	if len(candidates) == 0 {
		app.Async.RunEpoch(budget, app.WriteProbability)
		return
	}
	victims := v.rank.ColdestFastPages(app, len(candidates), nil)
	// Pair hottest candidates with coldest victims; swap only when the
	// candidate is clearly hotter (hysteresis against thrash — a fresh
	// streaming spike must not displace a steadily warm page).
	const swapMargin = 4.0
	n := 0
	for n < len(candidates) && n < len(victims) {
		if candidates[n].Heat <= app.Profiler.Heat(victims[n])*swapMargin {
			break
		}
		n++
	}
	if n > 0 {
		if obs.Enabled(sys.Obs(), obs.EvDecision) {
			e := obs.E(obs.EvDecision, app.Name(), "policy", 0,
				obs.F("pairs", float64(n)))
			e.Note = "swap"
			sys.Obs().Event(e)
		}
		for _, vp := range victims[:n] {
			app.Async.EnqueueOne(migrate.Move{VP: vp, To: mem.TierSlow})
		}
		q := v.queues[app]
		q.Rebuild(app, candidates[:n])
		q.Drain(func(it QueueItem) bool {
			app.Async.EnqueueOne(migrate.Move{VP: it.VP, To: mem.TierFast})
			return true
		})
	}
	app.Async.RunEpoch(budget, app.WriteProbability)
}

// slowCandidates returns up to limit of app's hottest slow-resident
// pages.
func (v *Vulcan) slowCandidates(app *system.App, limit int) []profile.PageHeat {
	// Bounded selection — heat descending, then page number — over the
	// unsorted page list; equals the old "sorted snapshot, first limit
	// slow-resident entries" without sorting the whole snapshot.
	t := &v.topHeat
	t.Reset(limit)
	for _, ph := range app.Profiler.HeatPages() {
		if p, ok := app.Table.Lookup(ph.VP); ok && p.Frame().Tier == mem.TierSlow {
			t.Offer(radix.FloatKeyDesc(ph.Heat), uint64(ph.VP), ph)
		}
	}
	k := len(t.Val)
	major, minor := v.radHeat.Keys(k)
	copy(major, t.Maj)
	copy(minor, t.Min)
	t.Val = v.radHeat.Sort(t.Val, major, minor)
	return t.Val
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
