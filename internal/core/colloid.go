package core

import (
	"vulcan/internal/mem"
	"vulcan/internal/system"
)

// Colloid-style migration gating (§3.6: "integrating with Colloid could
// enable Vulcan to suspend the migration process of co-located workloads
// when the fast tier's access latency no longer offers significant
// advantages over alternate tiers due to memory bandwidth contention").
//
// The gate compares the tiers' *loaded* latencies under the measured
// bandwidth utilization: when contention pushes the fast tier's latency
// within ColloidThreshold of the slow tier's, moving pages up buys
// nothing and migration is suspended for the epoch.

// colloidSuspend decides suspension from per-tier bandwidth utilization.
func colloidSuspend(sys *system.System, util [mem.NumTiers]float64, threshold float64) bool {
	fast := sys.Tiers().Fast().LoadedLatency(util[mem.TierFast])
	slow := sys.Tiers().Slow().LoadedLatency(util[mem.TierSlow])
	if slow <= 0 {
		return false
	}
	return float64(fast) >= threshold*float64(slow)
}

// ColloidSuspended reports whether the gate held migrations back in the
// most recent epoch (observable for tests and telemetry).
func (v *Vulcan) ColloidSuspended() bool { return v.colloidSuspended }
