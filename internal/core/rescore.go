package core

import (
	"vulcan/internal/obs"
	"vulcan/internal/system"
)

// Reevaluate implements system.Rescorer: incremental re-evaluation of
// the dirty app set only, invoked by the system when an admission,
// departure or intensity change lands mid-run.
//
// Settled tenants keep their allocations untouched — the whole point is
// that one newcomer must not trigger a full repartition of every
// co-located workload. Dirty newcomers are seeded from the uncommitted
// remainder of the fast tier (capacity minus the settled tenants'
// quotas), split evenly among them and capped by each one's freshly
// computed demand. Dirty tenants that are already partitioned (an
// intensity change) get their GPT and demand recomputed in place so the
// next CBFRP pass trades quota from current numbers instead of
// epoch-old ones; their allocation itself is left to CBFRP. A departed
// app is already unregistered by the time Reevaluate runs, so its quota
// simply surfaces as uncommitted capacity for the next rescore or
// CBFRP pass.
//
// The controller's probe-shrink epoch counter is not advanced: rescore
// events are aperiodic and must not perturb the hold/backoff cadence.
func (v *Vulcan) Reevaluate(sys *system.System, dirty []*system.App) {
	states := v.qos.States()
	if len(states) == 0 || len(dirty) == 0 {
		return
	}
	inDirty := make(map[*system.App]bool, len(dirty))
	for _, a := range dirty {
		inDirty[a] = true
	}

	fastCap := sys.Tiers().Fast().Capacity()
	gfmc := v.qos.GFMC(fastCap)
	denom := v.qos.demandDenom()

	free := fastCap
	newcomers := 0
	for _, st := range states {
		if inDirty[st.App] && !st.initialized {
			newcomers++
			continue
		}
		free -= st.Alloc
		if inDirty[st.App] {
			v.qos.updateDemand(st, gfmc, denom)
			v.emitRescore(sys, st)
		}
	}
	if newcomers == 0 {
		return
	}
	if free < 0 {
		free = 0
	}
	share := free / newcomers

	for _, st := range states {
		if !inDirty[st.App] || st.initialized {
			continue
		}
		v.qos.updateDemand(st, gfmc, denom)
		alloc := st.Demand
		if alloc > share {
			alloc = share
		}
		st.Alloc = alloc
		st.initialized = true
		v.placed[st.App] = st.App.FastPages()
		v.emitRescore(sys, st)
	}
}

// emitRescore reports one dirty app's refreshed controller state.
func (v *Vulcan) emitRescore(sys *system.System, st *QoSState) {
	if !obs.Enabled(sys.Obs(), obs.EvQoSAdapt) {
		return
	}
	e := obs.E(obs.EvQoSAdapt, st.App.Name(), "qos", 0,
		obs.F("alloc", float64(st.Alloc)),
		obs.F("demand", float64(st.Demand)),
		obs.F("gpt", st.GPT))
	e.Note = "rescore"
	sys.Obs().Event(e)
}
