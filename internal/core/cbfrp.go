package core

import (
	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// TransferKind classifies one CBFRP quota movement.
type TransferKind uint8

// Transfer kinds, mirroring Algorithm 1's branches.
const (
	// TransferSeed is a newcomer's initial allocation (line 2).
	TransferSeed TransferKind = iota
	// TransferPool grants unallocated capacity at no credit cost.
	TransferPool
	// TransferDonate moves surplus from the min-credit donor.
	TransferDonate
	// TransferReclaim is an LC borrower clawing back from an
	// over-entitled BE workload (lines 11–13).
	TransferReclaim
)

// String names the kind for telemetry notes.
func (k TransferKind) String() string {
	switch k {
	case TransferSeed:
		return "seed"
	case TransferPool:
		return "pool"
	case TransferDonate:
		return "donate"
	case TransferReclaim:
		return "reclaim"
	default:
		return "transfer"
	}
}

// Transfer records one quota movement of the latest CBFRP invocation.
// From is "" for movements out of the free pool.
type Transfer struct {
	Kind  TransferKind
	From  string
	To    string
	Units int
}

// CBFRP runs Credit-Based Fair Resource Partitioning (Algorithm 1) over
// the registered workloads, producing updated fast-tier quotas
// (QoSState.Alloc) and credit balances.
//
// Allocations persist across invocations — that is what makes the
// algorithm's LC-reclaim branch (lines 11–13) reachable: when a new
// workload arrives, GFMC shrinks and incumbent best-effort workloads may
// hold more than the new entitlement, so a latency-critical borrower can
// claw units back from them. Within one invocation:
//
//   - A newly admitted workload is seeded with min(demand, GFMC, free
//     pool) (Algorithm 1 line 2).
//   - Workloads holding more than they demand are donors; donating earns
//     Karma-style credits, borrowing spends them, and the donation
//     opportunity goes to the donor with the fewest credits so long-run
//     contributions equalize.
//   - Unallocated capacity (the free pool) is handed to borrowers first,
//     at no credit cost — it is nobody's share.
//   - LC borrowers are always served before BE borrowers; with no donors
//     left, an LC borrower reclaims from a randomly chosen BE workload
//     allocated above GFMC.
func (q *QoSController) CBFRP(fastCapacity int, rng *sim.RNG) {
	q.Transfers = q.Transfers[:0]
	n := len(q.states)
	if n == 0 {
		return
	}
	gfmc := q.GFMC(fastCapacity)
	unit := q.UnitPages
	if unit <= 0 {
		unit = 1
	}

	// Free pool: capacity not yet assigned to initialized workloads.
	pool := fastCapacity
	for _, st := range q.states {
		if st.initialized {
			pool -= st.Alloc
		}
	}
	// Seed newcomers (Algorithm 1 lines 1–2, bounded by what is free).
	for _, st := range q.states {
		if st.initialized {
			continue
		}
		alloc := st.Demand
		if alloc > gfmc {
			alloc = gfmc
		}
		if alloc > pool {
			alloc = pool
		}
		st.Alloc = alloc
		pool -= alloc
		st.initialized = true
		if alloc > 0 {
			q.Transfers = append(q.Transfers, Transfer{
				Kind: TransferSeed, To: st.App.Name(), Units: alloc})
		}
	}

	borrower := func(class workload.Class) *QoSState {
		var best *QoSState
		for _, st := range q.states {
			if st.App.Class() != class || st.Alloc >= st.Demand {
				continue
			}
			if best == nil || st.Credits > best.Credits {
				best = st
			}
		}
		return best
	}
	minCreditDonor := func() *QoSState {
		var best *QoSState
		for _, st := range q.states {
			if st.Alloc <= st.Demand {
				continue
			}
			if best == nil || st.Credits < best.Credits {
				best = st
			}
		}
		return best
	}
	overEntitledBE := func() *QoSState {
		var cands []*QoSState
		for _, st := range q.states {
			if st.App.Class() == workload.BE && st.Alloc > gfmc {
				cands = append(cands, st)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[rng.Intn(len(cands))]
	}

	for {
		b := borrower(workload.LC)
		if b == nil {
			b = borrower(workload.BE)
		}
		if b == nil {
			return
		}
		step := b.Demand - b.Alloc
		if step > unit {
			step = unit
		}
		switch {
		case pool > 0:
			if step > pool {
				step = pool
			}
			pool -= step
			b.Alloc += step
			q.Transfers = append(q.Transfers, Transfer{
				Kind: TransferPool, To: b.App.Name(), Units: step})
		case minCreditDonor() != nil:
			d := minCreditDonor()
			if surplus := d.Alloc - d.Demand; step > surplus {
				step = surplus
			}
			d.Alloc -= step
			b.Alloc += step
			d.Credits += step
			b.Credits -= step
			q.Transfers = append(q.Transfers, Transfer{
				Kind: TransferDonate, From: d.App.Name(), To: b.App.Name(), Units: step})
		case b.App.Class() == workload.LC:
			d := overEntitledBE()
			if d == nil {
				return
			}
			if excess := d.Alloc - gfmc; step > excess {
				step = excess
			}
			d.Alloc -= step
			b.Alloc += step
			d.Credits += step
			b.Credits -= step
			q.Transfers = append(q.Transfers, Transfer{
				Kind: TransferReclaim, From: d.App.Name(), To: b.App.Name(), Units: step})
		default:
			return
		}
	}
}
