package core

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// testSystem builds a small co-location system with the given per-app
// classes and RSS, using a null policy so tests can drive the QoS
// controller by hand.
func testSystem(t *testing.T, fastPages int, specs ...workload.AppConfig) *system.System {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 32
	mcfg.Tiers[mem.TierFast].CapacityPages = fastPages
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 16
	sys := system.New(system.Config{
		Machine:     mcfg,
		Apps:        specs,
		EpochLength: 10 * sim.Millisecond,
	})
	sys.RunEpoch() // admit everyone, produce first measurements
	return sys
}

func appSpec(name string, class workload.Class, rss int) workload.AppConfig {
	return workload.AppConfig{
		Name: name, Class: class, Threads: 2, RSSPages: rss,
		SharedFraction: 0.5, ComputeNs: 100 * sim.Nanosecond,
		NewGen: func(p int, rng *sim.RNG) workload.Generator {
			return workload.NewZipfian(p, 0.99, 0.2, 0.1, rng)
		},
	}
}

func TestGPTClamping(t *testing.T) {
	sys := testSystem(t, 4096,
		appSpec("small", workload.LC, 1000), // GFMC 2048 >= RSS -> GPT 1
		appSpec("big", workload.BE, 8000),   // GFMC 2048 < RSS -> GPT 2048/RSS
	)
	q := NewQoSController()
	for _, a := range sys.Apps() {
		q.Register(a)
	}
	q.UpdateDemands(4096)
	small := q.State(sys.App("small"))
	big := q.State(sys.App("big"))
	if small.GPT != 1 {
		t.Fatalf("small GPT = %v, want 1", small.GPT)
	}
	wantBig := 2048.0 / float64(big.App.RSSMapped())
	if diff := big.GPT - wantBig; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("big GPT = %v, want %v", big.GPT, wantBig)
	}
}

func TestDemandRespondsToFTHRDeficit(t *testing.T) {
	// An app whose FTHR is far below its GPT must demand more than it
	// holds; demand is clamped to RSS.
	sys := testSystem(t, 512, appSpec("a", workload.LC, 4000))
	q := NewQoSController()
	q.Register(sys.App("a"))
	q.UpdateDemands(512)
	st := q.State(sys.App("a"))
	if st.Demand <= st.App.FastPages() && st.App.FTHR() < st.GPT {
		t.Fatalf("deficit did not raise demand: demand=%d fast=%d fthr=%v gpt=%v",
			st.Demand, st.App.FastPages(), st.App.FTHR(), st.GPT)
	}
	if st.Demand > st.App.RSSMapped() {
		t.Fatalf("demand %d exceeds RSS %d", st.Demand, st.App.RSSMapped())
	}
}

func TestGFMC(t *testing.T) {
	q := NewQoSController()
	if q.GFMC(1000) != 1000 {
		t.Fatal("empty controller GFMC should be full capacity")
	}
	sys := testSystem(t, 1024,
		appSpec("a", workload.LC, 500),
		appSpec("b", workload.BE, 500),
	)
	q.Register(sys.App("a"))
	q.Register(sys.App("b"))
	if q.GFMC(1024) != 512 {
		t.Fatalf("GFMC = %d, want 512", q.GFMC(1024))
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	sys := testSystem(t, 256, appSpec("a", workload.LC, 100))
	q := NewQoSController()
	q.Register(sys.App("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	q.Register(sys.App("a"))
}

// cbfrpFixture builds a controller over three apps (LC, BE, BE) with
// hand-set demands.
func cbfrpFixture(t *testing.T, demands map[string]int) (*QoSController, *system.System) {
	t.Helper()
	sys := testSystem(t, 3000,
		appSpec("lc", workload.LC, 4000),
		appSpec("be1", workload.BE, 4000),
		appSpec("be2", workload.BE, 4000),
	)
	q := NewQoSController()
	for _, a := range sys.Apps() {
		st := q.Register(a)
		st.Demand = demands[a.Name()]
	}
	return q, sys
}

func TestCBFRPNoBorrowers(t *testing.T) {
	// Everyone demands at most the entitlement (1000 each): alloc=demand.
	q, _ := cbfrpFixture(t, map[string]int{"lc": 800, "be1": 1000, "be2": 500})
	q.CBFRP(3000, sim.NewRNG(1))
	for _, st := range q.States() {
		if st.Alloc != st.Demand {
			t.Fatalf("%s alloc=%d demand=%d", st.App.Name(), st.Alloc, st.Demand)
		}
		if st.Credits != 0 {
			t.Fatalf("%s credits=%d, want 0 (no transfers)", st.App.Name(), st.Credits)
		}
	}
}

func TestCBFRPFreePoolServedWithoutCredits(t *testing.T) {
	// LC demands 1800 (> 1000 entitlement); unallocated capacity covers
	// it at no credit cost.
	q, sys := cbfrpFixture(t, map[string]int{"lc": 1800, "be1": 1000, "be2": 200})
	q.CBFRP(3000, sim.NewRNG(1))
	lc := q.State(sys.App("lc"))
	be2 := q.State(sys.App("be2"))
	if lc.Alloc != 1800 {
		t.Fatalf("lc alloc = %d, want full demand 1800", lc.Alloc)
	}
	if be2.Alloc != 200 {
		t.Fatalf("be2 alloc = %d, want its demand 200", be2.Alloc)
	}
	if lc.Credits != 0 || be2.Credits != 0 {
		t.Fatalf("free-pool borrowing moved credits: lc=%d be2=%d",
			lc.Credits, be2.Credits)
	}
}

func TestCBFRPDonorToBorrower(t *testing.T) {
	// Phase 1 fills everyone to entitlement; phase 2: be2's demand drops
	// to 200 (donor), lc's rises to 1800 (borrower).
	q, sys := cbfrpFixture(t, map[string]int{"lc": 1000, "be1": 1000, "be2": 1000})
	q.CBFRP(3000, sim.NewRNG(1))
	q.State(sys.App("lc")).Demand = 1800
	q.State(sys.App("be2")).Demand = 200
	q.CBFRP(3000, sim.NewRNG(1))
	lc := q.State(sys.App("lc"))
	be2 := q.State(sys.App("be2"))
	if lc.Alloc != 1800 {
		t.Fatalf("lc alloc = %d, want full demand 1800", lc.Alloc)
	}
	if be2.Alloc != 200 {
		t.Fatalf("be2 alloc = %d, want its demand 200", be2.Alloc)
	}
	if be2.Credits != 800 {
		t.Fatalf("donor credits = %d, want 800", be2.Credits)
	}
	if lc.Credits != -800 {
		t.Fatalf("borrower credits = %d, want -800", lc.Credits)
	}
}

func TestCBFRPLCPriorityOverBE(t *testing.T) {
	// Donor surplus 400; both LC and BE want extra. LC is served first
	// and exhausts the surplus.
	q, sys := cbfrpFixture(t, map[string]int{"lc": 1000, "be1": 1000, "be2": 1000})
	q.CBFRP(3000, sim.NewRNG(1))
	q.State(sys.App("lc")).Demand = 1600
	q.State(sys.App("be1")).Demand = 1600
	q.State(sys.App("be2")).Demand = 600
	q.CBFRP(3000, sim.NewRNG(1))
	lc := q.State(sys.App("lc"))
	be1 := q.State(sys.App("be1"))
	if lc.Alloc != 1400 {
		t.Fatalf("lc alloc = %d, want 1400 (entitlement + all 400 surplus)", lc.Alloc)
	}
	if be1.Alloc != 1000 {
		t.Fatalf("be1 alloc = %d, want bare entitlement 1000", be1.Alloc)
	}
}

func TestCBFRPLCReclaimsFromOverEntitledBE(t *testing.T) {
	// First round: BE1 borrows beyond entitlement from be2's surplus.
	q, sys := cbfrpFixture(t, map[string]int{"lc": 1000, "be1": 1800, "be2": 200})
	q.CBFRP(3000, sim.NewRNG(1))
	be1 := q.State(sys.App("be1"))
	if be1.Alloc != 1800 {
		t.Fatalf("setup: be1 alloc = %d, want 1800", be1.Alloc)
	}
	// Second round: LC now demands beyond entitlement; no donors remain
	// (be2 still wants its 200... make be2 demand full entitlement too).
	q.State(sys.App("lc")).Demand = 1600
	q.State(sys.App("be2")).Demand = 1000
	be1.Demand = 1800
	q.CBFRP(3000, sim.NewRNG(2))
	lc := q.State(sys.App("lc"))
	if lc.Alloc != 1600 {
		t.Fatalf("lc alloc = %d, want 1600 via BE reclaim", lc.Alloc)
	}
	if be1.Alloc != 1200 {
		t.Fatalf("be1 alloc = %d, want 1200 after LC reclaimed 600", be1.Alloc)
	}
}

func TestCBFRPConservation(t *testing.T) {
	// Total allocation never exceeds capacity regardless of demands.
	for _, d := range []map[string]int{
		{"lc": 4000, "be1": 4000, "be2": 4000},
		{"lc": 0, "be1": 0, "be2": 0},
		{"lc": 2999, "be1": 1, "be2": 1500},
	} {
		q, _ := cbfrpFixture(t, d)
		q.CBFRP(3000, sim.NewRNG(3))
		total := 0
		for _, st := range q.States() {
			if st.Alloc < 0 {
				t.Fatalf("negative alloc for %s", st.App.Name())
			}
			total += st.Alloc
		}
		if total > 3000 {
			t.Fatalf("allocations %d exceed capacity 3000 for %v", total, d)
		}
	}
}

func TestCBFRPMinCreditDonorChosen(t *testing.T) {
	// Two potential donors; the one with fewer credits donates (and so
	// earns credits, equalizing over time).
	q, sys := cbfrpFixture(t, map[string]int{"lc": 1000, "be1": 1000, "be2": 1000})
	q.CBFRP(3000, sim.NewRNG(4))
	q.State(sys.App("lc")).Demand = 1400
	q.State(sys.App("be1")).Demand = 600
	q.State(sys.App("be2")).Demand = 600
	q.State(sys.App("be1")).Credits = 100
	q.State(sys.App("be2")).Credits = 0
	q.UnitPages = 400 // one transfer satisfies the borrower
	q.CBFRP(3000, sim.NewRNG(4))
	if got := q.State(sys.App("be2")).Credits; got != 400 {
		t.Fatalf("low-credit donor earned %d, want 400", got)
	}
	if got := q.State(sys.App("be1")).Credits; got != 100 {
		t.Fatalf("high-credit donor credits changed: %d", got)
	}
	if got := q.State(sys.App("lc")).Alloc; got != 1400 {
		t.Fatalf("lc alloc = %d, want 1400", got)
	}
}
