package core

import (
	"fmt"
	"sort"

	"vulcan/internal/checkpoint"
	"vulcan/internal/pagetable"
)

// Snapshot appends Vulcan's durable state: the CBFRP RNG, the Colloid
// gate, the QoS controller epoch, and per workload (in admission order)
// the QoS state, the first-touch placement count, and the MLFQ wait
// memory. The queue contents themselves are rebuilt from scratch every
// epoch and carry nothing across epochs except lastHeat.
func (v *Vulcan) Snapshot(e *checkpoint.Encoder) {
	v.rng.Snapshot(e)
	e.Bool(v.colloidSuspended)
	e.Int(v.qos.epoch)
	e.Int(len(v.qos.states))
	for _, st := range v.qos.states {
		e.Int(st.App.Index)
		e.F64(st.GPT)
		e.Int(st.Demand)
		e.Int(st.Alloc)
		e.Int(st.Credits)
		e.Bool(st.initialized)
		e.F64(st.lastFTHR)
		e.Bool(st.shrankLast)
		e.Int(st.holdUntil)
		e.Int(v.placed[st.App])
		v.queues[st.App].snapshotWaitMemory(e)
	}
}

// Restore reads Vulcan's state back in place. The receiver must already
// have every workload admitted (AppStarted), in the same order as the
// checkpointed run.
func (v *Vulcan) Restore(d *checkpoint.Decoder) error {
	if err := v.rng.Restore(d); err != nil {
		return err
	}
	v.colloidSuspended = d.Bool()
	v.qos.epoch = d.Int()
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(v.qos.states) {
		return fmt.Errorf("core: checkpoint has %d workloads, policy has %d", n, len(v.qos.states))
	}
	for _, st := range v.qos.states {
		idx := d.Int()
		if d.Err() != nil {
			return d.Err()
		}
		if idx != st.App.Index {
			return fmt.Errorf("core: checkpoint workload index %d, expected %d", idx, st.App.Index)
		}
		st.GPT = d.F64()
		st.Demand = d.Int()
		st.Alloc = d.Int()
		st.Credits = d.Int()
		st.initialized = d.Bool()
		st.lastFTHR = d.F64()
		st.shrankLast = d.Bool()
		st.holdUntil = d.Int()
		v.placed[st.App] = d.Int()
		if err := v.queues[st.App].restoreWaitMemory(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// snapshotWaitMemory appends the heat of pages left waiting last epoch,
// in ascending page order.
func (pq *PromotionQueues) snapshotWaitMemory(e *checkpoint.Encoder) {
	pages := make([]pagetable.VPage, 0, len(pq.lastHeat))
	for vp := range pq.lastHeat {
		pages = append(pages, vp)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	e.Int(len(pages))
	for _, vp := range pages {
		e.U64(uint64(vp))
		e.F64(pq.lastHeat[vp])
	}
}

// restoreWaitMemory reads the wait memory back in place.
func (pq *PromotionQueues) restoreWaitMemory(d *checkpoint.Decoder) error {
	n := d.Length(16)
	if d.Err() != nil {
		return d.Err()
	}
	pq.lastHeat = make(map[pagetable.VPage]float64, n)
	for i := 0; i < n; i++ {
		vp := pagetable.VPage(d.U64())
		heat := d.F64()
		if d.Err() != nil {
			return d.Err()
		}
		if _, dup := pq.lastHeat[vp]; dup {
			return fmt.Errorf("core: duplicate wait entry for page %d", vp)
		}
		pq.lastHeat[vp] = heat
	}
	return nil
}
