// Package core implements Vulcan, the paper's contribution: a
// workload-aware tiered memory management framework combining
// workload-dependent migration (§3.2), QoS-aware fair resource
// partitioning (§3.3), per-thread page-table replication (§3.4), and the
// biased page migration policy (§3.5). It plugs into internal/system as
// a Tiering policy and drives the same substrate as the baselines.
package core

import (
	"math"

	"vulcan/internal/system"
)

// QoSState is the per-workload controller state of §3.3.
type QoSState struct {
	App *system.App
	// GPT is the guaranteed performance target GPT_i = GFMC/RSS_i,
	// clamped to 1 when the fair share covers the whole working set.
	GPT float64
	// Demand is the fast-memory demand (Eq. 3), in pages.
	Demand int
	// Alloc is the current fast-tier quota assigned by CBFRP, in pages.
	Alloc int
	// Credits is the Karma-style credit balance.
	Credits int

	// initialized marks that CBFRP has seeded this workload's allocation
	// (Algorithm 1 line 2 runs once per workload).
	initialized bool

	// Probe-shrink state: a satisfied workload (FTHR ≥ GPT) donates fast
	// memory it does not need by shrinking its demand in small probes,
	// backing off (and holding) as soon as a probe costs measurable hit
	// ratio. The equilibrium sits just above the workload's hot set.
	lastFTHR   float64
	shrankLast bool
	holdUntil  int
}

// QoSController tracks GPT/FTHR/demand for every admitted workload and
// computes fair allocations via CBFRP.
type QoSController struct {
	states []*QoSState
	byApp  map[*system.App]*QoSState

	// UnitPages is CBFRP's transfer quantum.
	UnitPages int

	// Transfers records the latest CBFRP invocation's quota movements in
	// execution order (reset on each call) — the qos-adapt telemetry
	// feed and a debugging aid for partitioning behavior.
	Transfers []Transfer

	// Probe-shrink tuning for satisfied workloads (§3.3's efficiency
	// goal: reclaim "excessive resources" from workloads that do not
	// need them). ShrinkFrac of the allocation is probed away per epoch;
	// a probe that costs more than ShrinkTolerance of FTHR is reverted
	// and the allocation held for HoldEpochs.
	ShrinkFrac      float64
	ShrinkTolerance float64
	HoldEpochs      int

	epoch int
}

// NewQoSController returns an empty controller with defaults.
func NewQoSController() *QoSController {
	return &QoSController{
		byApp:     make(map[*system.App]*QoSState),
		UnitPages: 512,
		// A 3% probe over a uniformly hot working set costs ~2-3% of its
		// coverage in FTHR; the tolerance must catch that while sitting
		// above FTHR sampling noise (~0.7% per epoch after EMA).
		ShrinkFrac:      0.03,
		ShrinkTolerance: 0.015,
		HoldEpochs:      6,
	}
}

// Register admits a workload; its quota starts at the recomputed even
// share on the next Update.
func (q *QoSController) Register(app *system.App) *QoSState {
	if _, dup := q.byApp[app]; dup {
		panic("core: app registered twice")
	}
	st := &QoSState{App: app}
	q.states = append(q.states, st)
	q.byApp[app] = st
	return st
}

// Unregister removes a stopped workload. The states slice keeps its
// admission order (minus the departed entry), so a checkpoint replay
// that re-registers the survivors in admission order reconstructs the
// same sequence. Unknown apps are a no-op.
func (q *QoSController) Unregister(app *system.App) {
	if _, ok := q.byApp[app]; !ok {
		return
	}
	delete(q.byApp, app)
	kept := q.states[:0]
	for _, st := range q.states {
		if st.App != app {
			kept = append(kept, st)
		}
	}
	q.states = kept
}

// State returns the controller state for app (nil if unregistered).
func (q *QoSController) State(app *system.App) *QoSState { return q.byApp[app] }

// States returns all registered states in admission order.
func (q *QoSController) States() []*QoSState { return q.states }

// GFMC returns the guaranteed fast memory capacity: the fast tier evenly
// divided among the n registered workloads.
func (q *QoSController) GFMC(fastCapacity int) int {
	if len(q.states) == 0 {
		return fastCapacity
	}
	return fastCapacity / len(q.states)
}

// UpdateDemands recomputes GPT and demand for every workload from current
// FTHR measurements (Eq. 1–3). alloc_i is taken as the app's measured
// fast-tier residency, which is what the demand formula adjusts from.
func (q *QoSController) UpdateDemands(fastCapacity int) {
	gfmc := q.GFMC(fastCapacity)
	denom := q.demandDenom()
	for _, st := range q.states {
		q.updateDemand(st, gfmc, denom)
	}
	q.epoch++
}

// demandDenom is Eq. 3's log² normalizer, computed so the largest
// co-located footprint adjusts at full proportional speed: the
// adjustment for workload i is (GPT−FTHR)·RSS_i·log²₂(rss_i)/log²₂(max_j
// rss_j). This keeps the equation's "proportional to the workload's
// memory footprint" intent while yielding page-unit steps at any
// simulation scale.
func (q *QoSController) demandDenom() float64 {
	maxRSS := 0
	for _, st := range q.states {
		if r := st.App.RSSMapped(); r > maxRSS {
			maxRSS = r
		}
	}
	denom := 1.0
	if maxRSS > 1 {
		l := math.Log2(float64(maxRSS))
		denom = l * l
	}
	return denom
}

// updateDemand recomputes one workload's GPT and demand — the per-state
// body of UpdateDemands, also invoked by incremental rescoring for the
// dirty set alone.
func (q *QoSController) updateDemand(st *QoSState, gfmc int, denom float64) {
	rss := st.App.RSSMapped()
	if rss <= 0 {
		st.GPT, st.Demand = 1, 0
		return
	}
	if gfmc >= rss {
		st.GPT = 1
	} else {
		st.GPT = float64(gfmc) / float64(rss)
	}
	fthr := st.App.FTHR()
	alloc := st.Alloc
	if !st.initialized {
		alloc = st.App.FastPages()
	}

	if fthr >= st.GPT {
		// "The current allocation is deemed sufficient" (§3.3).
		// Anything beyond the fair entitlement is surrendered
		// outright; within the entitlement, probe-shrink donates
		// pages the workload demonstrably does not need, backing off
		// at the hot-set knee.
		st.Demand = q.sufficientDemand(st, alloc, gfmc, fthr)
		st.lastFTHR = fthr
		return
	}
	st.shrankLast = false
	st.lastFTHR = fthr

	// Under-allocated: grow demand by Eq. 3 with normalized log²
	// footprint scaling.
	l := math.Log2(float64(rss))
	adjust := (st.GPT - fthr) * float64(rss) * (l * l) / denom
	demand := alloc + int(adjust)
	if demand < 0 {
		demand = 0
	}
	if demand > rss {
		demand = rss
	}
	st.Demand = demand
}

// sufficientDemand computes the demand of a workload whose FTHR meets its
// GPT: surrender beyond-entitlement holdings, then probe downward while
// the hit ratio tolerates it.
func (q *QoSController) sufficientDemand(st *QoSState, alloc, gfmc int, fthr float64) int {
	if alloc > gfmc {
		st.shrankLast = false
		return gfmc
	}
	step := int(q.ShrinkFrac * float64(alloc))
	if step < 64 {
		step = 64
	}
	if st.shrankLast && fthr < st.lastFTHR-q.ShrinkTolerance {
		// The last probe cost real hit ratio: take it back and hold.
		st.shrankLast = false
		st.holdUntil = q.epoch + q.HoldEpochs
		d := alloc + 2*step
		if d > gfmc {
			d = gfmc
		}
		return d
	}
	if q.epoch < st.holdUntil {
		st.shrankLast = false
		return alloc
	}
	st.shrankLast = true
	d := alloc - step
	if d < 0 {
		d = 0
	}
	return d
}
