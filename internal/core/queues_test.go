package core

import (
	"testing"

	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

func TestClassifyTable1(t *testing.T) {
	private := pagetable.NewPTE(mem.Frame{Tier: mem.TierSlow, Index: 1}, 3)
	shared := private.WithOwner(pagetable.OwnerShared)
	cases := []struct {
		pte       pagetable.PTE
		writeFrac float64
		want      PageClass
	}{
		{private, 0.0, PrivateRead},
		{private, 0.9, PrivateWrite},
		{shared, 0.0, SharedRead},
		{shared, 0.9, SharedWrite},
		{private, 0.25, PrivateRead}, // boundary: not strictly above threshold
		{private, 0.26, PrivateWrite},
	}
	for _, c := range cases {
		if got := Classify(c.pte, c.writeFrac); got != c.want {
			t.Errorf("Classify(shared=%t, wf=%v) = %v, want %v",
				c.pte.Shared(), c.writeFrac, got, c.want)
		}
	}
}

func TestTable1PriorityOrder(t *testing.T) {
	// Table 1: private-read (★★★★) > shared-read (★★★) >
	// private-write (★★) > shared-write (★).
	if !(PrivateRead < SharedRead && SharedRead < PrivateWrite && PrivateWrite < SharedWrite) {
		t.Fatal("class ordering does not encode Table 1 priorities")
	}
}

func TestTable1Strategies(t *testing.T) {
	// Table 1: read-intensive classes use async copy; write-intensive
	// classes use sync copy.
	if !PrivateRead.Async() || !SharedRead.Async() {
		t.Fatal("read-intensive classes must copy asynchronously")
	}
	if PrivateWrite.Async() || SharedWrite.Async() {
		t.Fatal("write-intensive classes must copy synchronously")
	}
}

func TestClassStrings(t *testing.T) {
	want := map[PageClass]string{
		PrivateRead: "private-read", SharedRead: "shared-read",
		PrivateWrite: "private-write", SharedWrite: "shared-write",
		NumClasses: "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

// queueApp builds a started app whose pages we can classify.
func queueApp(t *testing.T) (*system.App, *system.System) {
	t.Helper()
	sys := testSystem(t, 64,
		workload.AppConfig{
			Name: "qa", Class: workload.LC, Threads: 4, RSSPages: 2000,
			SharedFraction: 0.5, ComputeNs: 100 * sim.Nanosecond,
			NewGen: func(p int, rng *sim.RNG) workload.Generator {
				return workload.NewUniform(p, 0.3, 0, rng)
			},
		})
	return sys.App("qa"), sys
}

// setOwner pins a page's ownership regardless of access history.
func setOwner(t *testing.T, app *system.App, vp pagetable.VPage, owner uint8) {
	t.Helper()
	if _, ok := app.Table.Update(vp, func(p pagetable.PTE) pagetable.PTE {
		return p.WithOwner(owner)
	}); !ok {
		t.Fatalf("page %d not mapped", vp)
	}
}

func TestQueuesRebuildAndDrainOrder(t *testing.T) {
	app, _ := queueApp(t)
	setOwner(t, app, 10, pagetable.OwnerShared)
	setOwner(t, app, 20, 1)
	setOwner(t, app, 30, 1)
	setOwner(t, app, 35, pagetable.OwnerShared)

	cands := []profile.PageHeat{
		{VP: 10, Heat: 100, WriteFrac: 0},   // shared-read   ★★★
		{VP: 20, Heat: 50, WriteFrac: 0},    // private-read  ★★★★
		{VP: 30, Heat: 200, WriteFrac: 0.8}, // private-write ★★
		{VP: 35, Heat: 300, WriteFrac: 0.8}, // shared-write  ★
	}
	pq := NewPromotionQueues()
	pq.Rebuild(app, cands)
	if pq.Total() != 4 {
		t.Fatalf("Total = %d, want 4", pq.Total())
	}
	var order []pagetable.VPage
	pq.Drain(func(it QueueItem) bool {
		order = append(order, it.VP)
		return true
	})
	want := []pagetable.VPage{20, 10, 30, 35}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v (Table 1 priorities)", order, want)
		}
	}
}

func TestQueuesDrainBudgetStops(t *testing.T) {
	app, _ := queueApp(t)
	cands := []profile.PageHeat{
		{VP: 1, Heat: 5}, {VP: 2, Heat: 4}, {VP: 3, Heat: 3},
	}
	pq := NewPromotionQueues()
	pq.Rebuild(app, cands)
	n := 0
	pq.Drain(func(QueueItem) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("drained %d, want stop at 2", n)
	}
}

func TestQueuesHeatOrderWithinClass(t *testing.T) {
	app, _ := queueApp(t)
	for _, vp := range []pagetable.VPage{5, 6, 7} {
		setOwner(t, app, vp, 2)
	}
	cands := []profile.PageHeat{
		{VP: 5, Heat: 10}, {VP: 6, Heat: 99}, {VP: 7, Heat: 50},
	}
	pq := NewPromotionQueues()
	pq.Rebuild(app, cands)
	var order []pagetable.VPage
	pq.Drain(func(it QueueItem) bool {
		order = append(order, it.VP)
		return true
	})
	if order[0] != 6 || order[1] != 7 || order[2] != 5 {
		t.Fatalf("within-class order %v, want hottest first", order)
	}
}

func TestMLFQEscalation(t *testing.T) {
	app, _ := queueApp(t)
	setOwner(t, app, 40, 1)
	// A write-intensive private page waits one epoch with rising heat:
	// it must be served from one queue higher.
	cands := []profile.PageHeat{{VP: 40, Heat: 10, WriteFrac: 0.9}}
	pq := NewPromotionQueues()
	pq.Rebuild(app, cands)
	if pq.Len(PrivateWrite) != 1 {
		t.Fatalf("initial queue wrong: %d entries in private-write", pq.Len(PrivateWrite))
	}
	// Not drained (budget 0) -> waits. Heat rises next epoch.
	pq.Drain(func(QueueItem) bool { return false })
	pq.Rebuild(app, []profile.PageHeat{{VP: 40, Heat: 20, WriteFrac: 0.9}})
	if pq.Len(SharedRead) != 1 {
		t.Fatalf("MLFQ did not escalate: shared-read queue has %d", pq.Len(SharedRead))
	}
	served := false
	pq.Drain(func(it QueueItem) bool {
		if it.VP == 40 {
			served = true
			if !it.Boosted {
				t.Error("item not marked boosted")
			}
			if it.Class != PrivateWrite {
				t.Errorf("intrinsic class = %v, want private-write", it.Class)
			}
			if it.Queue != SharedRead {
				t.Errorf("served queue = %v, want shared-read", it.Queue)
			}
		}
		return true
	})
	if !served {
		t.Fatal("escalated page never served")
	}
}

func TestMLFQDisabled(t *testing.T) {
	app, _ := queueApp(t)
	setOwner(t, app, 40, 1)
	pq := NewPromotionQueues()
	pq.DisableMLFQ()
	pq.Rebuild(app, []profile.PageHeat{{VP: 40, Heat: 10, WriteFrac: 0.9}})
	pq.Drain(func(QueueItem) bool { return false })
	pq.Rebuild(app, []profile.PageHeat{{VP: 40, Heat: 20, WriteFrac: 0.9}})
	if pq.Len(PrivateWrite) != 1 {
		t.Fatal("disabled MLFQ still escalated")
	}
}

func TestMLFQNoEscalationWhenDrained(t *testing.T) {
	app, _ := queueApp(t)
	setOwner(t, app, 40, 1)
	pq := NewPromotionQueues()
	pq.Rebuild(app, []profile.PageHeat{{VP: 40, Heat: 10, WriteFrac: 0.9}})
	pq.Drain(func(QueueItem) bool { return true }) // served
	pq.Rebuild(app, []profile.PageHeat{{VP: 40, Heat: 20, WriteFrac: 0.9}})
	if pq.Len(PrivateWrite) != 1 {
		t.Fatal("served page escalated anyway")
	}
}

func TestQueuesSkipUnmappedCandidates(t *testing.T) {
	app, _ := queueApp(t)
	pq := NewPromotionQueues()
	pq.Rebuild(app, []profile.PageHeat{{VP: 999999, Heat: 10}})
	if pq.Total() != 0 {
		t.Fatal("unmapped candidate enqueued")
	}
}
