package core

import (
	"testing"
	"testing/quick"

	"vulcan/internal/sim"
	"vulcan/internal/workload"
)

// TestCBFRPInvariantsUnderRandomDemands drives CBFRP through random
// demand sequences and checks the allocator's global invariants after
// every round:
//
//  1. conservation: Σ alloc ≤ capacity, every alloc ≥ 0;
//  2. credit neutrality: every credit spent by a borrower is earned by a
//     donor (Σ credits == 0 — the free pool charges nobody);
//  3. LC priority: an unsatisfied LC borrower implies no remaining donor
//     surplus, no free pool, and no over-entitled BE to reclaim from.
func TestCBFRPInvariantsUnderRandomDemands(t *testing.T) {
	sys := testSystem(t, 3000,
		appSpec("lc", workload.LC, 4000),
		appSpec("be1", workload.BE, 4000),
		appSpec("be2", workload.BE, 4000),
	)
	const capacity = 3000

	check := func(seed uint64, rounds uint8, demandsRaw []uint16) bool {
		q := NewQoSController()
		for _, a := range sys.Apps() {
			q.Register(a)
		}
		rng := sim.NewRNG(seed)
		gfmc := capacity / 3

		di := 0
		nextDemand := func() int {
			if di < len(demandsRaw) {
				d := int(demandsRaw[di]) % 4001
				di++
				return d
			}
			return rng.Intn(4001)
		}

		n := int(rounds%20) + 1
		for r := 0; r < n; r++ {
			for _, st := range q.States() {
				st.Demand = nextDemand()
			}
			q.CBFRP(capacity, rng)

			total, credits := 0, 0
			for _, st := range q.States() {
				if st.Alloc < 0 {
					t.Logf("negative alloc for %s", st.App.Name())
					return false
				}
				total += st.Alloc
				credits += st.Credits
			}
			if total > capacity {
				t.Logf("round %d: total alloc %d > capacity", r, total)
				return false
			}
			if credits != 0 {
				t.Logf("round %d: credits not neutral: %d", r, credits)
				return false
			}

			// LC priority: if the LC workload still wants more, there
			// must be nothing left to give it.
			var lcDeficit bool
			for _, st := range q.States() {
				if st.App.Class() == workload.LC && st.Alloc < st.Demand {
					lcDeficit = true
				}
			}
			if lcDeficit {
				pool := capacity - total
				if pool > 0 {
					t.Logf("round %d: LC starved with %d free pool", r, pool)
					return false
				}
				for _, st := range q.States() {
					if st.Alloc > st.Demand {
						t.Logf("round %d: LC starved while %s holds surplus", r, st.App.Name())
						return false
					}
					if st.App.Class() == workload.BE && st.Alloc > gfmc {
						t.Logf("round %d: LC starved while BE %s over-entitled", r, st.App.Name())
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCBFRPCreditsTrackContributions drives an asymmetric demand pattern
// and confirms the long-run credit ledger: the chronically donating
// workload accumulates positive credits, the chronic borrower negative.
func TestCBFRPCreditsTrackContributions(t *testing.T) {
	sys := testSystem(t, 3000,
		appSpec("lc", workload.LC, 4000),
		appSpec("be1", workload.BE, 4000),
		appSpec("be2", workload.BE, 4000),
	)
	q := NewQoSController()
	for _, a := range sys.Apps() {
		q.Register(a)
	}
	rng := sim.NewRNG(7)
	// Seed everyone to entitlement so later donations move real units.
	for _, st := range q.States() {
		st.Demand = 1000
	}
	q.CBFRP(3000, rng)
	for round := 0; round < 30; round++ {
		q.State(sys.App("lc")).Demand = 1600  // chronic borrower
		q.State(sys.App("be1")).Demand = 1000 // neutral
		q.State(sys.App("be2")).Demand = 400  // chronic donor
		q.CBFRP(3000, rng)
	}
	if c := q.State(sys.App("be2")).Credits; c <= 0 {
		t.Fatalf("chronic donor credits = %d, want positive", c)
	}
	if c := q.State(sys.App("lc")).Credits; c >= 0 {
		t.Fatalf("chronic borrower credits = %d, want negative", c)
	}
	if c := q.State(sys.App("be1")).Credits; c != 0 {
		t.Fatalf("neutral workload credits = %d, want 0", c)
	}
}
