package policy

import (
	"testing"

	"vulcan/internal/machine"
	"vulcan/internal/mem"
	"vulcan/internal/pagetable"
	"vulcan/internal/sim"
	"vulcan/internal/system"
	"vulcan/internal/workload"
)

// colo builds a small LC+BE co-location under the given policy: a modest
// open-loop Zipfian service next to a high-intensity streaming scanner.
func colo(t *testing.T, pol system.Tiering, fastPages int) *system.System {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	mcfg.Tiers[mem.TierFast].CapacityPages = fastPages
	mcfg.Tiers[mem.TierSlow].CapacityPages = 1 << 15
	return system.New(system.Config{
		Machine: mcfg,
		Apps: []workload.AppConfig{
			{
				Name: "lc", Class: workload.LC, Threads: 2, RSSPages: 3000,
				SharedFraction: 0.9, ComputeNs: 100 * sim.Nanosecond,
				OpsPerSec: 1e5,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewKeyValue(p, workload.KeyValueParams{}, rng)
				},
			},
			{
				Name: "be", Class: workload.BE, Threads: 2, RSSPages: 6000,
				SharedFraction: 0.9, ComputeNs: 25 * sim.Nanosecond,
				NewGen: func(p int, rng *sim.RNG) workload.Generator {
					return workload.NewMLTrain(p, rng)
				},
			},
		},
		Policy:           pol,
		EpochLength:      20 * sim.Millisecond,
		SamplesPerThread: 800,
		Seed:             5,
		// Policy tests isolate placement logic from THP TLB-coverage
		// effects (at micro scale a handful of splits erase all huge
		// mappings, drowning the placement signal).
		DisableTHP: true,
	})
}

func TestTPPPromotesAndStalls(t *testing.T) {
	pol := NewTPP()
	sys := colo(t, pol, 1024)
	before := func() float64 {
		sys.RunEpoch()
		return sys.App("lc").NormalizedPerf().Mean()
	}()
	_ = before
	for i := 0; i < 30; i++ {
		sys.RunEpoch()
	}
	lc := sys.App("lc")
	// Hint faults must have found and promoted hot pages.
	if lc.FTHR() <= 0 {
		t.Fatal("TPP never promoted anything for the LC app")
	}
	// The hint-fault profiler is in use.
	if lc.Profiler.Name() != "hintfault" {
		t.Fatalf("TPP profiler = %q", lc.Profiler.Name())
	}
}

func TestTPPWatermarkDemotion(t *testing.T) {
	pol := NewTPP()
	sys := colo(t, pol, 512) // small fast tier forces reclaim
	for i := 0; i < 20; i++ {
		sys.RunEpoch()
	}
	// Under sustained pressure kswapd must be actively reclaiming: pages
	// flow down even as promotions refill the tier.
	demoted := uint64(0)
	for _, a := range sys.StartedApps() {
		st := a.Async.Stats()
		demoted += st.Moved + st.Remapped
	}
	if demoted == 0 {
		t.Fatal("TPP reclaim never demoted a page despite a full fast tier")
	}
}

func TestTPPPlacement(t *testing.T) {
	pol := NewTPP()
	sys := colo(t, pol, 512)
	sys.RunEpoch()
	// First-touch under TPP prefers the fast tier until watermark.
	if sys.Tiers().Fast().Used() == 0 {
		t.Fatal("TPP placement never used the fast tier")
	}
}

func TestMemtisUsesPEBSAndMigrates(t *testing.T) {
	pol := NewMemtis()
	sys := colo(t, pol, 1024)
	for i := 0; i < 30; i++ {
		sys.RunEpoch()
	}
	lc := sys.App("lc")
	if lc.Profiler.Name() != "pebs" {
		t.Fatalf("Memtis profiler = %q", lc.Profiler.Name())
	}
	moved := lc.Async.Stats().Moved + sys.App("be").Async.Stats().Moved
	if moved == 0 {
		t.Fatal("Memtis never migrated a page")
	}
}

func TestMemtisColdPageDilemma(t *testing.T) {
	// Under Memtis's absolute-frequency ranking, the streaming BE app
	// squeezes the LC app's fast share far below its even split; Vulcan's
	// premise (Observation #1) must reproduce at micro scale.
	sys := colo(t, NewMemtis(), 1024)
	for i := 0; i < 60; i++ {
		sys.RunEpoch()
	}
	lc, be := sys.App("lc"), sys.App("be")
	if lc.FastPages() >= be.FastPages() {
		t.Fatalf("no dilemma: LC fast=%d >= BE fast=%d", lc.FastPages(), be.FastPages())
	}
	if lc.FastPages() > 1024/3 {
		t.Fatalf("LC kept %d fast pages, expected starvation below even share", lc.FastPages())
	}
}

func TestNomadSheddingIsAsyncWithShadowing(t *testing.T) {
	pol := NewNomad()
	sys := colo(t, pol, 1024)
	for i := 0; i < 30; i++ {
		sys.RunEpoch()
	}
	if !sys.Mechanisms().Shadowing {
		t.Fatal("Nomad must declare shadowing")
	}
	lc := sys.App("lc")
	if lc.Profiler.Name() != "hintfault" {
		t.Fatalf("Nomad profiler = %q", lc.Profiler.Name())
	}
	st := lc.Engine.Shadows()
	if st.Created == 0 {
		t.Fatal("Nomad never created a shadow copy")
	}
}

func TestPolicyCharacters(t *testing.T) {
	// Each baseline's signature behaviour at micro scale. First-touch
	// hands the whole fast tier to the LC app (admitted first).
	run := func(pol system.Tiering) (lc, be float64) {
		sys := colo(t, pol, 1024)
		for i := 0; i < 40; i++ {
			sys.RunEpoch()
		}
		return sys.App("lc").NormalizedPerf().Mean(),
			sys.App("be").NormalizedPerf().Mean()
	}
	staticLC, staticBE := run(system.NullPolicy{})

	// Memtis's capacity ranking reassigns the tier to the high-intensity
	// scanner: BE improves, LC pays (the cold-page dilemma).
	memtisLC, memtisBE := run(NewMemtis())
	if memtisBE <= staticBE {
		t.Errorf("memtis BE %v not better than static %v", memtisBE, staticBE)
	}
	if memtisLC >= staticLC {
		t.Errorf("memtis LC %v did not degrade from static %v (no dilemma)", memtisLC, staticLC)
	}

	// TPP and Nomad promote on recency per app with no global ranking:
	// the incumbent LC keeps its hot set resident (grab-and-hold), so LC
	// must not degrade materially versus static.
	for name, pol := range map[string]system.Tiering{
		"tpp":   NewTPP(),
		"nomad": NewNomad(),
	} {
		lc, _ := run(pol)
		if lc < staticLC*0.95 {
			t.Errorf("%s LC perf %v degraded below static %v", name, lc, staticLC)
		}
	}
}

func TestMergedRankingWeightsByIntensity(t *testing.T) {
	sys := colo(t, NewMemtis(), 1024)
	for i := 0; i < 5; i++ {
		sys.RunEpoch()
	}
	ranking := MergedRanking(sys)
	if len(ranking) == 0 {
		t.Fatal("empty merged ranking")
	}
	// Descending heat.
	for i := 1; i < len(ranking); i++ {
		if ranking[i-1].Heat < ranking[i].Heat {
			t.Fatal("ranking not sorted by descending heat")
		}
	}
	// The high-intensity BE app must dominate the head of the ranking.
	beAtHead := 0
	for _, gp := range ranking[:min(len(ranking), 100)] {
		if gp.App.Name() == "be" {
			beAtHead++
		}
	}
	if beAtHead < 60 {
		t.Fatalf("BE pages at ranking head = %d/100, expected dominance", beAtHead)
	}
}

func TestColdestFastPagesOrdering(t *testing.T) {
	sys := colo(t, system.NullPolicy{}, 1024)
	sys.RunEpoch()
	lc := sys.App("lc")
	cold := ColdestFastPages(lc, 10, nil)
	if len(cold) != 10 {
		t.Fatalf("got %d victims", len(cold))
	}
	prev := -1.0
	for _, vp := range cold {
		h := lc.Profiler.Heat(vp)
		if h < prev {
			t.Fatal("victims not in ascending heat order")
		}
		prev = h
		p, ok := lc.Table.Lookup(vp)
		if !ok || p.Frame().Tier != mem.TierFast {
			t.Fatal("victim not fast-resident")
		}
	}
	// Keep-set is honored.
	keep := map[pagetable.VPage]bool{cold[0]: true}
	cold2 := ColdestFastPages(lc, 10, keep)
	for _, vp := range cold2 {
		if vp == cold[0] {
			t.Fatal("kept page selected as victim")
		}
	}
}

func TestGlobalColdestSkipsKeepAndOrders(t *testing.T) {
	sys := colo(t, system.NullPolicy{}, 1024)
	sys.RunEpoch()
	victims := GlobalColdestFastPages(sys, 50, nil)
	if len(victims) != 50 {
		t.Fatalf("got %d global victims", len(victims))
	}
	for _, v := range victims {
		p, ok := v.App.Table.Lookup(v.VP)
		if !ok || p.Frame().Tier != mem.TierFast {
			t.Fatal("global victim not fast-resident")
		}
	}
	if GlobalColdestFastPages(sys, 0, nil) != nil {
		t.Fatal("n=0 returned victims")
	}
}

func TestMoveBuilders(t *testing.T) {
	vps := []pagetable.VPage{1, 2, 3}
	for i, mv := range PromoteMoves(vps) {
		if mv.VP != vps[i] || mv.To != mem.TierFast {
			t.Fatal("PromoteMoves wrong")
		}
	}
	for i, mv := range DemoteMoves(vps) {
		if mv.VP != vps[i] || mv.To != mem.TierSlow {
			t.Fatal("DemoteMoves wrong")
		}
	}
}

func TestSlowPagesWithHeatLimit(t *testing.T) {
	sys := colo(t, system.NullPolicy{}, 64) // tiny fast: most pages slow
	for i := 0; i < 3; i++ {
		sys.RunEpoch()
	}
	be := sys.App("be")
	pages := SlowPagesWithHeat(be, 5)
	if len(pages) > 5 {
		t.Fatalf("limit ignored: %d", len(pages))
	}
	for _, vp := range pages {
		p, _ := be.Table.Lookup(vp)
		if p.Frame().Tier != mem.TierSlow {
			t.Fatal("candidate not slow-resident")
		}
		if be.Profiler.Heat(vp) <= 0 {
			t.Fatal("candidate has no heat")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
