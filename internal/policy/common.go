// Package policy implements the state-of-the-art tiering systems the
// paper compares against (§5): TPP (hint-fault promotion with
// watermark-driven reclaim), Memtis (PEBS-based global hotness ranking),
// and Nomad (asynchronous transactional migration with page shadowing).
// All run against the same simulated substrate as Vulcan, differing only
// in policy logic and the mechanisms they declare.
package policy

import (
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/radix"
	"vulcan/internal/system"
)

// GlobalPage is one page in a cross-application ranking. Heat is weighted
// by the owning app's sample weight so that absolute access rates are
// comparable across apps of different intensity — exactly the
// normalization-free ranking that produces the cold-page dilemma.
type GlobalPage struct {
	App  *system.App
	VP   pagetable.VPage
	Heat float64
}

// GlobalVictim is one demotion candidate in a cross-app cold ranking.
type GlobalVictim struct {
	App *system.App
	VP  pagetable.VPage
}

// RankBuf holds reusable ranking buffers so a policy's per-epoch
// candidate selection allocates nothing in steady state. Every method's
// returned slice aliases the buffer: it is valid until the next call of
// the same method on the same RankBuf, and must not be retained across
// epochs. Policies embed one RankBuf per instance (systems are
// single-threaded; sweep workers each own a policy instance).
type RankBuf struct {
	global []GlobalPage
	vps    []pagetable.VPage
	moves  []migrate.Move

	radGlobal radix.Buf[GlobalPage]
	radSel    radix.Buf[pagetable.VPage]
	radSlow   radix.Buf[pagetable.VPage]
	radGVic   radix.Buf[GlobalVictim]
	topCand   radix.TopK[pagetable.VPage]
	topSlow   radix.TopK[pagetable.VPage]
	topVictim radix.TopK[GlobalVictim]
}

// rankMinor packs the (app, page) tie-break into one radix key: app
// index ascending, then page number ascending. VPage is at most 36 bits,
// so the app index occupies the clear high bits.
func rankMinor(appIndex int, vp pagetable.VPage) uint64 {
	return uint64(appIndex)<<36 | uint64(vp)
}

// MergedRanking returns every profiled page of every started app, hottest
// first, with app-intensity weighting.
func (b *RankBuf) MergedRanking(sys *system.System) []GlobalPage {
	all := b.global[:0]
	for _, a := range sys.StartedApps() {
		w := a.SampleWeight()
		// The merged order comes entirely from the composite sort below,
		// so the per-app inputs can stay unsorted.
		for _, ph := range a.Profiler.HeatPages() {
			all = append(all, GlobalPage{App: a, VP: ph.VP, Heat: ph.Heat * w})
		}
	}
	// Heat descending, then app index, then page number — the same total
	// order the previous comparison sort produced, via composite radix
	// keys.
	major, minor := b.radGlobal.Keys(len(all))
	for i := range all {
		major[i] = radix.FloatKeyDesc(all[i].Heat)
		minor[i] = rankMinor(all[i].App.Index, all[i].VP)
	}
	all = b.radGlobal.Sort(all, major, minor)
	b.global = all
	return all
}

// ColdestFastPages returns up to n of app's fast-tier pages ordered by
// ascending profiled heat (unprofiled pages count as coldest), skipping
// pages in keep.
func (b *RankBuf) ColdestFastPages(a *system.App, n int, keep map[pagetable.VPage]bool) []pagetable.VPage {
	if n <= 0 {
		return nil
	}
	// Stream candidates through a bounded selection — heat ascending,
	// then page number — instead of sorting every fast page: only the n
	// returned victims need ordering, and the composite key's total
	// order makes the selected prefix identical to a full sort's.
	t := &b.topCand
	t.Reset(n)
	a.Table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		if p.Frame().Tier != mem.TierFast {
			return true
		}
		if keep != nil && keep[vp] {
			return true
		}
		t.Offer(radix.FloatKeyAsc(a.Profiler.Heat(vp)), uint64(vp), vp)
		return true
	})
	k := len(t.Val)
	major, minor := b.radSel.Keys(k)
	copy(major, t.Maj)
	copy(minor, t.Min)
	t.Val = b.radSel.Sort(t.Val, major, minor)
	return t.Val
}

// GlobalColdestFastPages returns up to n fast-resident pages across all
// started apps, coldest first by intensity-weighted heat — the victim
// order of a global (fairness-blind) reclaim pass. Pages in keep[app]
// are skipped.
func (b *RankBuf) GlobalColdestFastPages(sys *system.System, n int, keep map[*system.App]map[pagetable.VPage]bool) []GlobalVictim {
	if n <= 0 {
		return nil
	}
	// Stream candidates through a bounded selection — heat ascending,
	// then app index, then page number — instead of sorting every fast
	// page in the system; the selected-and-sorted n victims are exactly
	// the prefix a full sort would emit.
	t := &b.topVictim
	t.Reset(n)
	for _, a := range sys.StartedApps() {
		w := a.SampleWeight()
		ka := keep[a]
		idx := a.Index
		a.Table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
			if p.Frame().Tier != mem.TierFast {
				return true
			}
			if ka != nil && ka[vp] {
				return true
			}
			t.Offer(radix.FloatKeyAsc(a.Profiler.Heat(vp)*w), rankMinor(idx, vp), GlobalVictim{a, vp})
			return true
		})
	}
	k := len(t.Val)
	major, minor := b.radGVic.Keys(k)
	copy(major, t.Maj)
	copy(minor, t.Min)
	t.Val = b.radGVic.Sort(t.Val, major, minor)
	return t.Val
}

// SlowPagesWithHeat returns app pages resident in the slow tier that have
// nonzero profiled heat, hottest first, capped at limit.
func (b *RankBuf) SlowPagesWithHeat(a *system.App, limit int) []pagetable.VPage {
	// Bounded selection over the unsorted page list — heat descending,
	// then page number — matches the old "sorted snapshot, first limit
	// slow-resident entries" exactly, without sorting the whole snapshot.
	t := &b.topSlow
	t.Reset(limit)
	for _, ph := range a.Profiler.HeatPages() {
		if p, ok := a.Table.Lookup(ph.VP); ok && p.Frame().Tier == mem.TierSlow {
			t.Offer(radix.FloatKeyDesc(ph.Heat), uint64(ph.VP), ph.VP)
		}
	}
	k := len(t.Val)
	major, minor := b.radSlow.Keys(k)
	copy(major, t.Maj)
	copy(minor, t.Min)
	t.Val = b.radSlow.Sort(t.Val, major, minor)
	return t.Val
}

// PromoteMoves builds fast-tier moves for the given pages in the reusable
// move buffer.
func (b *RankBuf) PromoteMoves(vps []pagetable.VPage) []migrate.Move {
	out := b.moves[:0]
	for _, vp := range vps {
		out = append(out, migrate.Move{VP: vp, To: mem.TierFast})
	}
	b.moves = out
	return out
}

// MergedRanking returns every profiled page of every started app, hottest
// first, with app-intensity weighting. Allocates fresh slices; policies
// on the per-epoch path use RankBuf.MergedRanking instead.
func MergedRanking(sys *system.System) []GlobalPage {
	var b RankBuf
	return b.MergedRanking(sys)
}

// ColdestFastPages returns up to n of app's fast-tier pages ordered by
// ascending profiled heat (unprofiled pages count as coldest), skipping
// pages in keep. Allocates fresh slices; policies on the per-epoch path
// use RankBuf.ColdestFastPages instead.
func ColdestFastPages(a *system.App, n int, keep map[pagetable.VPage]bool) []pagetable.VPage {
	var b RankBuf
	return b.ColdestFastPages(a, n, keep)
}

// GlobalColdestFastPages returns up to n fast-resident pages across all
// started apps, coldest first by intensity-weighted heat. Allocates fresh
// slices; policies on the per-epoch path use
// RankBuf.GlobalColdestFastPages instead.
func GlobalColdestFastPages(sys *system.System, n int, keep map[*system.App]map[pagetable.VPage]bool) []GlobalVictim {
	var b RankBuf
	return b.GlobalColdestFastPages(sys, n, keep)
}

// EnqueueVictims spreads demotions onto each victim's own app queue.
func EnqueueVictims(victims []GlobalVictim) {
	for _, v := range victims {
		v.App.Async.EnqueueOne(migrate.Move{VP: v.VP, To: mem.TierSlow})
	}
}

// DemoteMoves builds slow-tier moves for the given pages.
func DemoteMoves(vps []pagetable.VPage) []migrate.Move {
	out := make([]migrate.Move, len(vps))
	for i, vp := range vps {
		out[i] = migrate.Move{VP: vp, To: mem.TierSlow}
	}
	return out
}

// PromoteMoves builds fast-tier moves for the given pages.
func PromoteMoves(vps []pagetable.VPage) []migrate.Move {
	out := make([]migrate.Move, len(vps))
	for i, vp := range vps {
		out[i] = migrate.Move{VP: vp, To: mem.TierFast}
	}
	return out
}

// profilerSeed derives a deterministic per-app profiler seed.
func profilerSeed(app *system.App) uint64 {
	return uint64(app.Index)*2654435761 + 17
}

// FreeFastFraction returns the fast tier's free-page fraction.
func FreeFastFraction(sys *system.System) float64 {
	f := sys.Tiers().Fast()
	return float64(f.FreePages()) / float64(f.Capacity())
}

// SlowPagesWithHeat returns app pages resident in the slow tier that have
// nonzero profiled heat, hottest first, capped at limit.
func SlowPagesWithHeat(a *system.App, limit int) []pagetable.VPage {
	var out []pagetable.VPage
	for _, ph := range a.Profiler.HeatSnapshot() {
		if len(out) >= limit {
			break
		}
		if p, ok := a.Table.Lookup(ph.VP); ok && p.Frame().Tier == mem.TierSlow {
			out = append(out, ph.VP)
		}
	}
	return out
}
