// Package policy implements the state-of-the-art tiering systems the
// paper compares against (§5): TPP (hint-fault promotion with
// watermark-driven reclaim), Memtis (PEBS-based global hotness ranking),
// and Nomad (asynchronous transactional migration with page shadowing).
// All run against the same simulated substrate as Vulcan, differing only
// in policy logic and the mechanisms they declare.
package policy

import (
	"sort"

	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/system"
)

// GlobalPage is one page in a cross-application ranking. Heat is weighted
// by the owning app's sample weight so that absolute access rates are
// comparable across apps of different intensity — exactly the
// normalization-free ranking that produces the cold-page dilemma.
type GlobalPage struct {
	App  *system.App
	VP   pagetable.VPage
	Heat float64
}

// MergedRanking returns every profiled page of every started app, hottest
// first, with app-intensity weighting.
func MergedRanking(sys *system.System) []GlobalPage {
	var all []GlobalPage
	for _, a := range sys.StartedApps() {
		w := a.SampleWeight()
		for _, ph := range a.Profiler.HeatSnapshot() {
			all = append(all, GlobalPage{App: a, VP: ph.VP, Heat: ph.Heat * w})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Heat > all[j].Heat {
			return true
		}
		if all[i].Heat < all[j].Heat {
			return false
		}
		if all[i].App.Index != all[j].App.Index {
			return all[i].App.Index < all[j].App.Index
		}
		return all[i].VP < all[j].VP
	})
	return all
}

// ColdestFastPages returns up to n of app's fast-tier pages ordered by
// ascending profiled heat (unprofiled pages count as coldest), skipping
// pages in keep.
func ColdestFastPages(a *system.App, n int, keep map[pagetable.VPage]bool) []pagetable.VPage {
	if n <= 0 {
		return nil
	}
	type cand struct {
		vp   pagetable.VPage
		heat float64
	}
	var cands []cand
	a.Table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
		if p.Frame().Tier != mem.TierFast {
			return true
		}
		if keep != nil && keep[vp] {
			return true
		}
		cands = append(cands, cand{vp, a.Profiler.Heat(vp)})
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat < cands[j].heat {
			return true
		}
		if cands[i].heat > cands[j].heat {
			return false
		}
		return cands[i].vp < cands[j].vp
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]pagetable.VPage, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].vp
	}
	return out
}

// GlobalVictim is one demotion candidate in a cross-app cold ranking.
type GlobalVictim struct {
	App *system.App
	VP  pagetable.VPage
}

// GlobalColdestFastPages returns up to n fast-resident pages across all
// started apps, coldest first by intensity-weighted heat — the victim
// order of a global (fairness-blind) reclaim pass. Pages in keep[app]
// are skipped.
func GlobalColdestFastPages(sys *system.System, n int, keep map[*system.App]map[pagetable.VPage]bool) []GlobalVictim {
	if n <= 0 {
		return nil
	}
	type cand struct {
		v    GlobalVictim
		heat float64
	}
	var cands []cand
	for _, a := range sys.StartedApps() {
		w := a.SampleWeight()
		ka := keep[a]
		a.Table.Range(func(vp pagetable.VPage, p pagetable.PTE) bool {
			if p.Frame().Tier != mem.TierFast {
				return true
			}
			if ka != nil && ka[vp] {
				return true
			}
			cands = append(cands, cand{GlobalVictim{a, vp}, a.Profiler.Heat(vp) * w})
			return true
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat < cands[j].heat {
			return true
		}
		if cands[i].heat > cands[j].heat {
			return false
		}
		if cands[i].v.App.Index != cands[j].v.App.Index {
			return cands[i].v.App.Index < cands[j].v.App.Index
		}
		return cands[i].v.VP < cands[j].v.VP
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]GlobalVictim, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].v
	}
	return out
}

// EnqueueVictims spreads demotions onto each victim's own app queue.
func EnqueueVictims(victims []GlobalVictim) {
	for _, v := range victims {
		v.App.Async.EnqueueOne(migrate.Move{VP: v.VP, To: mem.TierSlow})
	}
}

// DemoteMoves builds slow-tier moves for the given pages.
func DemoteMoves(vps []pagetable.VPage) []migrate.Move {
	out := make([]migrate.Move, len(vps))
	for i, vp := range vps {
		out[i] = migrate.Move{VP: vp, To: mem.TierSlow}
	}
	return out
}

// PromoteMoves builds fast-tier moves for the given pages.
func PromoteMoves(vps []pagetable.VPage) []migrate.Move {
	out := make([]migrate.Move, len(vps))
	for i, vp := range vps {
		out[i] = migrate.Move{VP: vp, To: mem.TierFast}
	}
	return out
}

// profilerSeed derives a deterministic per-app profiler seed.
func profilerSeed(app *system.App) uint64 {
	return uint64(app.Index)*2654435761 + 17
}

// FreeFastFraction returns the fast tier's free-page fraction.
func FreeFastFraction(sys *system.System) float64 {
	f := sys.Tiers().Fast()
	return float64(f.FreePages()) / float64(f.Capacity())
}

// SlowPagesWithHeat returns app pages resident in the slow tier that have
// nonzero profiled heat, hottest first, capped at limit.
func SlowPagesWithHeat(a *system.App, limit int) []pagetable.VPage {
	var out []pagetable.VPage
	for _, ph := range a.Profiler.HeatSnapshot() {
		if len(out) >= limit {
			break
		}
		if p, ok := a.Table.Lookup(ph.VP); ok && p.Frame().Tier == mem.TierSlow {
			out = append(out, ph.VP)
		}
	}
	return out
}
