package policy

import (
	"vulcan/internal/mem"
	"vulcan/internal/profile"
	"vulcan/internal/system"
)

// TPP reimplements Transparent Page Placement (Maruf et al., ASPLOS'23)
// on the simulated substrate:
//
//   - Profiling by NUMA hinting faults: a rotating window of PTEs is
//     poisoned; the next touch faults, revealing recency.
//   - Promotion is synchronous and on the critical path: a slow-tier page
//     that hint-faults is migrated immediately, stalling the faulting
//     application (the paper's "TPP's page promotion" in §2.1).
//   - Demotion is reactive: when fast-tier free pages fall below the low
//     watermark, a kswapd-like background pass demotes the coldest fast
//     pages (globally, with no notion of per-app fairness) until the high
//     watermark is restored.
type TPP struct {
	// PromoteLimit bounds synchronous promotions per app per epoch
	// (Linux's NUMA-balancing rate limit).
	PromoteLimit int
	// LowWatermark / HighWatermark are fast-tier free fractions that
	// trigger and terminate background demotion.
	LowWatermark  float64
	HighWatermark float64
	// HintWindowPages is the per-epoch poison window per app.
	HintWindowPages int
	// KswapdBudget is background demotion CPU per epoch, in multiples of
	// one core's epoch cycles.
	KswapdBudget float64

	// rank holds reusable per-epoch ranking buffers.
	rank RankBuf
}

// NewTPP returns TPP with defaults mirroring kernel tunables.
func NewTPP() *TPP {
	return &TPP{
		PromoteLimit:    1024,
		LowWatermark:    0.02,
		HighWatermark:   0.08,
		HintWindowPages: 8192,
		KswapdBudget:    1.0,
	}
}

// Name implements system.Tiering.
func (t *TPP) Name() string { return "tpp" }

// Mechanisms implements system.Tiering: TPP uses stock kernel migration.
func (t *TPP) Mechanisms() system.Mechanisms { return system.Mechanisms{} }

// NewProfiler implements system.ProfilerFactory: NUMA hinting faults.
func (t *TPP) NewProfiler(app *system.App) profile.Profiler {
	return profile.NewHintFault(app.Table, t.HintWindowPages, app.CostModel().HintFaultCycles)
}

// AppStarted implements system.Tiering.
func (t *TPP) AppStarted(*system.System, *system.App) {}

// Place implements system.Placer: TPP allocates new pages to the fast
// tier while it has headroom.
func (t *TPP) Place(sys *system.System, app *system.App) mem.TierID {
	if FreeFastFraction(sys) > t.LowWatermark {
		return mem.TierFast
	}
	return mem.TierSlow
}

// EndEpoch implements system.Tiering.
func (t *TPP) EndEpoch(sys *system.System) {
	apps := sys.StartedApps()

	// Background demotion first: restore the high watermark by demoting
	// the globally coldest fast pages, apportioned by fast-tier usage.
	if FreeFastFraction(sys) < t.LowWatermark {
		fast := sys.Tiers().Fast()
		need := int(t.HighWatermark*float64(fast.Capacity())) - fast.FreePages()
		if need > 0 {
			// kswapd reclaims from the node's global LRU: coldest pages
			// go regardless of owner.
			EnqueueVictims(t.rank.GlobalColdestFastPages(sys, need, nil))
			budget := t.KswapdBudget * sys.EpochCycles()
			for _, a := range apps {
				a.Async.RunEpoch(budget/float64(len(apps)), a.WriteProbability)
			}
		}
	}

	// Synchronous hint-fault promotion, charged to the faulting app.
	for _, a := range apps {
		candidates := t.rank.SlowPagesWithHeat(a, t.PromoteLimit)
		if len(candidates) == 0 {
			continue
		}
		res := a.Engine.MigrateSync(t.rank.PromoteMoves(candidates))
		a.ChargeStall(res.Cycles())
	}
}
