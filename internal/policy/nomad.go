package policy

import (
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/profile"
	"vulcan/internal/system"
)

// Nomad reimplements the policy core of Nomad (Xiang et al., OSDI'24):
// non-exclusive memory tiering via transactional page migration.
//
//   - Promotion candidates come from NUMA-hint-style recency signals
//     (Nomad builds on the kernel's NUMA balancing), like TPP — but
//     migration is moved *completely off the critical path*: candidates
//     are enqueued and copied asynchronously; a page written during its
//     copy window aborts the transaction and is retried later.
//   - Page shadowing keeps the slow-tier copy of a promoted page, so
//     demoting a still-clean page is a remap, not a copy.
//   - Demotion is watermark-driven like TPP's reclaim.
//
// Nomad fixes migration overhead but inherits hotness-only, fairness-blind
// placement — which is why it shares the cold-page dilemma.
type Nomad struct {
	PromoteLimit    int
	LowWatermark    float64
	HighWatermark   float64
	HintWindowPages int
	// MigratorBudget is the async migration thread budget per epoch, in
	// multiples of one core's epoch cycles.
	MigratorBudget float64

	// rank holds reusable per-epoch ranking buffers.
	rank RankBuf
}

// NewNomad returns Nomad with representative defaults. With migration
// cost off the critical path, nothing throttles promotion: every recently
// touched slow page is a candidate, so high-intensity streaming workloads
// flood the fast tier harder than under TPP's rate-limited synchronous
// promotion — which is why Nomad is the least fair of the baselines.
func NewNomad() *Nomad {
	return &Nomad{
		PromoteLimit:    32768,
		LowWatermark:    0.02,
		HighWatermark:   0.08,
		HintWindowPages: 24576,
		MigratorBudget:  2.0,
	}
}

// Name implements system.Tiering.
func (n *Nomad) Name() string { return "nomad" }

// Mechanisms implements system.Tiering: Nomad contributes page shadowing
// (its "page shadowing" technique) but keeps kernel prep and process-wide
// shootdowns.
func (n *Nomad) Mechanisms() system.Mechanisms {
	return system.Mechanisms{Shadowing: true}
}

// NewProfiler implements system.ProfilerFactory.
func (n *Nomad) NewProfiler(app *system.App) profile.Profiler {
	return profile.NewHintFault(app.Table, n.HintWindowPages, app.CostModel().HintFaultCycles)
}

// AppStarted implements system.Tiering.
func (n *Nomad) AppStarted(*system.System, *system.App) {}

// EndEpoch implements system.Tiering.
func (n *Nomad) EndEpoch(sys *system.System) {
	apps := sys.StartedApps()

	// Watermark-driven async demotion (shadow remaps make clean-page
	// demotion nearly free).
	if FreeFastFraction(sys) < n.LowWatermark {
		fast := sys.Tiers().Fast()
		need := int(n.HighWatermark*float64(fast.Capacity())) - fast.FreePages()
		if need > 0 {
			EnqueueVictims(n.rank.GlobalColdestFastPages(sys, need, nil))
		}
	}

	// Fully asynchronous transactional promotion: enqueue candidates;
	// the migrator thread works through them within budget, aborting
	// copies dirtied in flight.
	for _, a := range apps {
		for _, vp := range n.rank.SlowPagesWithHeat(a, n.PromoteLimit) {
			a.Async.EnqueueOne(migrate.Move{VP: vp, To: mem.TierFast})
		}
	}
	totalBacklog := 0
	for _, a := range apps {
		totalBacklog += a.Async.Backlog()
	}
	if totalBacklog == 0 {
		return
	}
	budget := n.MigratorBudget * sys.EpochCycles()
	for _, a := range apps {
		share := budget * float64(a.Async.Backlog()) / float64(totalBacklog)
		a.Async.RunEpoch(share, a.WriteProbability)
	}
}
