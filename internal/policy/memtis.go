package policy

import (
	"vulcan/internal/mem"
	"vulcan/internal/migrate"
	"vulcan/internal/pagetable"
	"vulcan/internal/profile"
	"vulcan/internal/system"
)

// Memtis reimplements the policy core of MEMTIS (Lee et al., SOSP'23):
//
//   - PEBS-based access sampling feeds a hotness distribution.
//   - Pages are ranked by absolute (raw) access counts across all
//     co-located applications; the hottest pages up to fast-tier capacity
//     form the target hot set.
//   - A background migration thread (kmigrated) promotes hot pages and
//     demotes displaced cold ones within a CPU budget, off the critical
//     path.
//
// Because the ranking never normalizes for workload characteristics,
// high-intensity streaming workloads monopolize the fast tier — the
// cold-page dilemma of §2.2 reproduces directly from this logic.
type Memtis struct {
	// SampleRate is the PEBS sampling period over simulated accesses.
	SampleRate int
	// HeatDecay is the per-epoch cooling factor; Memtis cools slowly
	// (count halving every cooling period), so warm footprints linger.
	HeatDecay float64
	// KmigratedBudget is background migration CPU per epoch, in multiples
	// of one core's epoch cycles (Memtis caps daemon overhead at ~3%;
	// one dedicated core at our scale).
	KmigratedBudget float64
	// MaxMovesPerEpoch bounds promotion/demotion batches per epoch.
	MaxMovesPerEpoch int
	// Headroom keeps a small fraction of the fast tier free to absorb
	// allocation bursts.
	Headroom float64

	// Per-epoch scratch, reused across epochs so the classification pass
	// allocates nothing in steady state. hotByApp's inner sets are
	// cleared, not reallocated; promote is truncated.
	rank     RankBuf
	hotByApp map[*system.App]map[pagetable.VPage]bool
	promote  []memtisPromo
}

// memtisPromo is one staged promotion in Memtis's per-epoch scratch.
type memtisPromo struct {
	app *system.App
	vp  pagetable.VPage
}

// NewMemtis returns Memtis with representative defaults.
func NewMemtis() *Memtis {
	return &Memtis{
		SampleRate:       4,
		HeatDecay:        0.8,
		KmigratedBudget:  1.0,
		MaxMovesPerEpoch: 16384,
		Headroom:         0.01,
	}
}

// Name implements system.Tiering.
func (m *Memtis) Name() string { return "memtis" }

// Mechanisms implements system.Tiering: stock kernel migration paths.
func (m *Memtis) Mechanisms() system.Mechanisms { return system.Mechanisms{} }

// NewProfiler implements system.ProfilerFactory: PEBS sampling.
func (m *Memtis) NewProfiler(app *system.App) profile.Profiler {
	return profile.NewPEBSWithDecay(m.SampleRate, m.HeatDecay, profilerSeed(app))
}

// AppStarted implements system.Tiering.
func (m *Memtis) AppStarted(*system.System, *system.App) {}

// EndEpoch implements system.Tiering.
func (m *Memtis) EndEpoch(sys *system.System) {
	ranking := m.rank.MergedRanking(sys)
	capacity := sys.Tiers().Fast().Capacity()
	target := int(float64(capacity) * (1 - m.Headroom))

	// The hot set: globally hottest pages up to fast capacity. Pages
	// below the resulting hotness threshold are classified cold — they
	// are demoted even when the fast tier has room, exactly like
	// Memtis's histogram-threshold split.
	if m.hotByApp == nil {
		m.hotByApp = make(map[*system.App]map[pagetable.VPage]bool)
	}
	for _, set := range m.hotByApp {
		clear(set)
	}
	hotByApp := m.hotByApp
	promote := m.promote[:0]
	count := 0
	hotInFast := 0
	for _, gp := range ranking {
		if count >= target {
			break
		}
		count++
		set := hotByApp[gp.App]
		if set == nil {
			set = make(map[pagetable.VPage]bool)
			hotByApp[gp.App] = set
		}
		set[gp.VP] = true
		if p, ok := gp.App.Table.Lookup(gp.VP); ok {
			if p.Frame().Tier == mem.TierFast {
				hotInFast++
			} else if len(promote) < m.MaxMovesPerEpoch {
				promote = append(promote, memtisPromo{gp.App, gp.VP})
			}
		}
	}
	m.promote = promote

	// Record each app's hot/cold classification so Figure 1 can plot the
	// dilemma: pages in the global hot set vs the rest of the RSS.
	for _, a := range sys.StartedApps() {
		hot := len(hotByApp[a])
		sys.Recorder().Record(a.Name()+".memtis_hot", float64(hot))
		sys.Recorder().Record(a.Name()+".memtis_cold", float64(a.RSSMapped()-hot))
	}

	// Demote every fast page classified cold (not in the hot set),
	// coldest first — Memtis's ranking is system-wide and fairness-blind,
	// so a tenant whose pages rank low loses them regardless of who it
	// is.
	coldInFast := sys.Tiers().Fast().Used() - hotInFast
	if coldInFast > m.MaxMovesPerEpoch {
		coldInFast = m.MaxMovesPerEpoch
	}
	if coldInFast > 0 {
		EnqueueVictims(m.rank.GlobalColdestFastPages(sys, coldInFast, hotByApp))
	}
	for _, p := range promote {
		p.app.Async.EnqueueOne(migrate.Move{VP: p.vp, To: mem.TierFast})
	}

	// kmigrated works the queues within its budget, demotions and
	// promotions interleaved per app (split budget by backlog share).
	apps := sys.StartedApps()
	totalBacklog := 0
	for _, a := range apps {
		totalBacklog += a.Async.Backlog()
	}
	if totalBacklog == 0 {
		return
	}
	budget := m.KmigratedBudget * sys.EpochCycles()
	for _, a := range apps {
		share := budget * float64(a.Async.Backlog()) / float64(totalBacklog)
		a.Async.RunEpoch(share, a.WriteProbability)
	}
}
