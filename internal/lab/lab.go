// Package lab is the deterministic parallel run harness for the
// figure/benchmark pipeline: it fans independent, self-contained
// simulation runs out over a bounded worker pool and commits their
// results in submission order, so all derived output (CSV, trace JSON,
// report text, bench metrics) is byte-identical to a serial run
// regardless of worker count or goroutine scheduling.
//
// The determinism argument has three legs (DESIGN.md §9):
//
//  1. Runs are self-contained. A spec closure owns every piece of
//     mutable state it touches — its own sim.RNG stream (forked or
//     seeded per spec *before* submission), its own obs.Recorder and
//     metrics registry, its own system.System. Nothing mutable crosses
//     a goroutine boundary; the only shared inputs are read-only
//     configuration values.
//  2. Results are keyed by submission index. Each worker writes only
//     results[i] for the indices it drew, so the assembled slice is
//     ordered by submission, not by completion.
//  3. Side effects are committed serially. Collect applies the commit
//     callback for index 0, 1, 2, ... after the parallel phase, so
//     order-sensitive accumulation (floating-point running means,
//     appends, stream writes) reassociates exactly as a serial loop.
//
// This package is the only place in the simulation tree allowed to
// start goroutines or touch sync primitives; the vulcanvet "labonly"
// analyzer enforces that confinement.
package lab

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the worker-count default when positive; see
// SetDefaultWorkers.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the pool size used when a call passes
// workers <= 0. n <= 0 restores the built-in default (GOMAXPROCS).
// Command-line front ends bind their -parallel flag here once at
// startup; worker count never affects output bytes, only wall clock.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// DefaultWorkers returns the pool size used when a call passes
// workers <= 0: the SetDefaultWorkers override, or GOMAXPROCS.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// clampWorkers resolves a requested worker count against n tasks:
// non-positive requests take the default, and the pool never exceeds
// the task count.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs run(0..n-1) on up to workers goroutines (workers <= 0
// means DefaultWorkers) and returns when all calls have finished. Each
// index is executed exactly once. A panic inside any run is re-raised
// on the caller's goroutine after the pool drains, like a serial loop.
//
// run must be self-contained per index: it may only read shared state,
// never write it. Results belong in per-index slots (see Map).
func ForEach(workers, n int, run func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	if w == 1 {
		// Serial fast path: no goroutines, no synchronization, so
		// workers=1 is exactly the pre-lab code path.
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// First panic wins; the others drain their queues.
					if panicked.CompareAndSwap(false, true) {
						panicVal = r
					}
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map runs run(0..n-1) on up to workers goroutines and returns the
// results in submission order: out[i] = run(i), regardless of which
// worker executed i or when it finished.
func Map[R any](workers, n int, run func(i int) R) []R {
	out := make([]R, n)
	ForEach(workers, n, func(i int) {
		out[i] = run(i)
	})
	return out
}

// Collect runs run(0..n-1) in parallel, then applies commit(i, result)
// serially in submission order on the caller's goroutine. Use it when
// results fold into shared accumulators whose outcome depends on
// ordering (running means, CFI trackers, stream writers): the commit
// sequence — and therefore every accumulated bit — matches a serial
// loop exactly.
func Collect[R any](workers, n int, run func(i int) R, commit func(i int, r R)) {
	for i, r := range Map(workers, n, run) {
		commit(i, r)
	}
}

// Sweep is an ordered collection of self-contained run specs — the
// batch form of Map for call sites that assemble heterogeneous runs
// incrementally. Specs execute in parallel; results come back in Add
// order.
type Sweep[R any] struct {
	specs []func() R
}

// Add appends one run spec. The closure must own all mutable state it
// touches (fork RNGs and build recorders before or inside the closure,
// never share them across specs).
func (s *Sweep[R]) Add(run func() R) {
	s.specs = append(s.specs, run)
}

// Len returns the number of submitted specs.
func (s *Sweep[R]) Len() int { return len(s.specs) }

// Run executes every spec on up to workers goroutines (workers <= 0
// means DefaultWorkers) and returns results in submission order.
func (s *Sweep[R]) Run(workers int) []R {
	return Map(workers, len(s.specs), func(i int) R {
		return s.specs[i]()
	})
}
