package lab

import (
	"fmt"
	"reflect"
	"testing"
)

// TestMapOrder checks that results land at their submission index for a
// range of worker counts, including pools larger than the task count.
func TestMapOrder(t *testing.T) {
	const n = 100
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 16, n + 5} {
		got := Map(workers, n, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order: got %v", workers, got)
		}
	}
}

// TestForEachRunsEachIndexOnce checks every index is executed exactly
// once even under a contended pool. Each worker writes only its own
// slot, so the counter slice needs no locking.
func TestForEachRunsEachIndexOnce(t *testing.T) {
	const n = 257
	counts := make([]int, n)
	ForEach(8, n, func(i int) {
		counts[i]++
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, c)
		}
	}
}

// TestForEachEmpty checks n<=0 is a no-op.
func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("run func called for empty task set")
	}
}

// TestClampWorkers pins the worker-resolution rules.
func TestClampWorkers(t *testing.T) {
	if got := clampWorkers(9, 4); got != 4 {
		t.Fatalf("clampWorkers(9,4) = %d, want 4 (never exceed task count)", got)
	}
	if got := clampWorkers(3, 10); got != 3 {
		t.Fatalf("clampWorkers(3,10) = %d, want 3", got)
	}
	if got := clampWorkers(0, 10); got < 1 {
		t.Fatalf("clampWorkers(0,10) = %d, want >= 1", got)
	}
}

// TestSetDefaultWorkers checks the -parallel binding round-trips and
// that 0 restores the GOMAXPROCS default.
func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(5)
	if got := DefaultWorkers(); got != 5 {
		t.Fatalf("DefaultWorkers() = %d after SetDefaultWorkers(5)", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", got)
	}
}

// TestPanicPropagates checks a worker panic surfaces on the caller's
// goroutine, matching serial-loop semantics.
func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			ForEach(workers, 16, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

// TestCollectCommitOrder checks commits run serially in submission
// order: an order-sensitive (non-commutative) fold must produce the
// same value at every worker count.
func TestCollectCommitOrder(t *testing.T) {
	fold := func(workers int) string {
		acc := ""
		Collect(workers, 10, func(i int) int { return i }, func(i, r int) {
			acc = fmt.Sprintf("(%s+%d)", acc, r)
		})
		return acc
	}
	want := fold(1)
	for _, workers := range []int{2, 7, 10} {
		if got := fold(workers); got != want {
			t.Fatalf("workers=%d: fold %q != serial %q", workers, got, want)
		}
	}
}

// TestSweep checks Add-order results and Len across worker counts.
func TestSweep(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var s Sweep[string]
		for i := 0; i < 9; i++ {
			i := i
			s.Add(func() string { return fmt.Sprintf("run-%d", i) })
		}
		if s.Len() != 9 {
			t.Fatalf("Len() = %d, want 9", s.Len())
		}
		got := s.Run(workers)
		for i, r := range got {
			if want := fmt.Sprintf("run-%d", i); r != want {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, r, want)
			}
		}
	}
}

// TestStress hammers the pool with many small tasks to give the race
// detector (make race, CI) something to chew on.
func TestStress(t *testing.T) {
	const n = 5000
	sums := Map(16, n, func(i int) int { return i })
	total := 0
	for _, v := range sums {
		total += v
	}
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("sum = %d, want %d", total, want)
	}
}
