package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d in 10000 draws", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked stream matched parent %d/100 times", same)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(5)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the most frequent and dominate the tail.
	if counts[0] < counts[1] {
		t.Errorf("rank 0 count %d < rank 1 count %d", counts[0], counts[1])
	}
	if counts[0] < 50*counts[900] && counts[900] > 0 {
		t.Errorf("insufficient skew: head %d vs tail %d", counts[0], counts[900])
	}
}

func TestZipfRange(t *testing.T) {
	r := NewRNG(29)
	for _, n := range []int{1, 2, 17, 1000} {
		z := NewZipf(r, n, 1.1)
		for i := 0; i < 2000; i++ {
			v := z.Next()
			if v < 0 || v >= n {
				t.Fatalf("Zipf(n=%d) drew %d", n, v)
			}
		}
	}
}

func TestZipfLargeNApproximation(t *testing.T) {
	r := NewRNG(31)
	n := zipfExactThreshold * 2
	z := NewZipf(r, n, 1.01)
	if !z.approx {
		t.Fatal("large-n sampler did not select approximate mode")
	}
	headHits := 0
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 0 || v >= n {
			t.Fatalf("approx Zipf drew %d out of [0,%d)", v, n)
		}
		if v < n/100 {
			headHits++
		}
	}
	// With s≈1, the top 1% of ranks should absorb well over a third of
	// draws; uniform would give 1%.
	if headHits < 20000/3 {
		t.Fatalf("approx Zipf not skewed: %d/20000 head hits", headHits)
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Zipf construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(37)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}
