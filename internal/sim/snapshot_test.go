package sim

import (
	"bytes"
	"testing"

	"vulcan/internal/checkpoint"
)

// roundTrip pushes src's snapshot through a full container write/read
// cycle and restores it into dst.
func roundTrip(t *testing.T, src, dst checkpoint.Snapshotter) {
	t.Helper()
	w := checkpoint.NewWriter()
	src.Snapshot(w.Section("x", 1))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cr, err := checkpoint.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := cr.Section("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClockSnapshotRoundTrip(t *testing.T) {
	var c Clock
	c.Advance(3*Second + 17*Microsecond)

	restored := &Clock{}
	roundTrip(t, &c, restored)
	if restored.Now() != c.Now() {
		t.Fatalf("restored clock at %v, want %v", restored.Now(), c.Now())
	}
	// Advancing both must stay in lockstep.
	c.Advance(Millisecond)
	restored.Advance(Millisecond)
	if restored.Now() != c.Now() {
		t.Fatal("clocks diverged after restore")
	}
}

func TestRNGSnapshotRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		r.Uint64() // burn into mid-stream state
	}

	// Restore into a generator seeded differently on purpose: the
	// snapshot must fully overwrite the stream position.
	restored := NewRNG(7)
	roundTrip(t, r, restored)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("draw %d: %d != %d", i, a, b)
		}
	}
	// Derived draws ride on the same stream.
	for i := 0; i < 100; i++ {
		if a, b := r.NormFloat64(), restored.NormFloat64(); a != b {
			t.Fatalf("norm draw %d: %v != %v", i, a, b)
		}
	}
}

func TestRNGRestoreTruncatedErrors(t *testing.T) {
	r := NewRNG(1)
	e := &checkpoint.Encoder{}
	r.Snapshot(e)
	blob := e.Bytes()
	for cut := 0; cut < len(blob); cut += 8 {
		d := checkpoint.NewDecoder(blob[:cut])
		if err := NewRNG(2).Restore(d); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestClockRestoreTruncatedErrors(t *testing.T) {
	d := checkpoint.NewDecoder(nil)
	var c Clock
	if err := c.Restore(d); err == nil {
		t.Fatal("empty clock payload accepted")
	}
}
