package sim

import "testing"

func TestQueueOrdering(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	var fired []int
	q.At(300, func(Time) { fired = append(fired, 3) })
	q.At(100, func(Time) { fired = append(fired, 1) })
	q.At(200, func(Time) { fired = append(fired, 2) })
	q.Drain()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", fired)
	}
	if c.Now() != 300 {
		t.Fatalf("clock at %d after drain, want 300", c.Now())
	}
}

func TestQueueFIFOAtSameTime(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(50, func(Time) { fired = append(fired, i) })
	}
	q.Drain()
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events out of order: %v", fired)
		}
	}
}

func TestQueueAfter(t *testing.T) {
	var c Clock
	c.Advance(1000)
	q := NewQueue(&c)
	var at Time
	q.After(500, func(now Time) { at = now })
	q.Drain()
	if at != 1500 {
		t.Fatalf("After fired at %d, want 1500", at)
	}
}

func TestQueueCancel(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	fired := false
	e := q.At(100, func(Time) { fired = true })
	q.Cancel(e)
	q.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event does not report cancelled")
	}
	// Cancelling again (and cancelling nil) must be safe.
	q.Cancel(e)
	q.Cancel(nil)
}

func TestQueueRunUntil(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	var fired []Time
	q.At(100, func(now Time) { fired = append(fired, now) })
	q.At(200, func(now Time) { fired = append(fired, now) })
	q.At(900, func(now Time) { fired = append(fired, now) })
	q.RunUntil(500)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(500) fired %d events, want 2", len(fired))
	}
	if c.Now() != 500 {
		t.Fatalf("clock at %d, want 500", c.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("queue has %d events left, want 1", q.Len())
	}
}

func TestQueueSchedulingInsideEvent(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count < 5 {
			q.After(10, tick)
		}
	}
	q.After(10, tick)
	q.RunUntil(1000)
	if count != 5 {
		t.Fatalf("self-rescheduling ticked %d times, want 5", count)
	}
	if c.Now() != 1000 {
		t.Fatalf("clock at %d, want 1000", c.Now())
	}
}

func TestQueuePastSchedulingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	var c Clock
	c.Advance(100)
	q := NewQueue(&c)
	q.At(50, func(Time) {})
}

func TestQueuePeek(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	if _, ok := q.PeekTime(); ok {
		t.Fatal("empty queue peeked an event")
	}
	q.At(70, func(Time) {})
	if tm, ok := q.PeekTime(); !ok || tm != 70 {
		t.Fatalf("PeekTime = %d,%v want 70,true", tm, ok)
	}
}

func TestQueueStepEmpty(t *testing.T) {
	var c Clock
	q := NewQueue(&c)
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}
