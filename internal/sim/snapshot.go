package sim

import "vulcan/internal/checkpoint"

// Snapshot appends the clock's durable state (the current time).
func (c *Clock) Snapshot(e *checkpoint.Encoder) {
	e.I64(int64(c.now))
}

// Restore reads the clock state back, mutating the clock in place so
// every component bound to it observes the restored time.
func (c *Clock) Restore(d *checkpoint.Decoder) error {
	c.now = Time(d.I64())
	return d.Err()
}

// Snapshot appends the generator's full xoshiro256** state.
func (r *RNG) Snapshot(e *checkpoint.Encoder) {
	for _, s := range r.s {
		e.U64(s)
	}
}

// Restore reads the generator state back in place. In-place mutation
// matters: Zipf samplers and workload generators alias their owner's
// RNG, and those aliases must observe the restored stream.
func (r *RNG) Restore(d *checkpoint.Decoder) error {
	for i := range r.s {
		r.s[i] = d.U64()
	}
	return d.Err()
}
