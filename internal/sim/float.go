package sim

import "math"

// FloatEps is the default tolerance for ApproxEq: generous enough to
// absorb reassociation error in cycle and budget sums (which stay well
// below 2^53), tight enough that any real policy delta registers.
const FloatEps = 1e-9

// ApproxEq reports whether a and b are equal within FloatEps, relative
// to their magnitude. It is the comparison the floateq analyzer directs
// cycle/budget code to: exact ==/!= between computed floats diverges
// when a refactor reorders a sum, while an epsilon compare does not.
func ApproxEq(a, b float64) bool {
	return ApproxEqEps(a, b, FloatEps)
}

// ApproxEqEps reports whether a and b are equal within eps, scaled by
// the larger magnitude (absolute compare near zero).
func ApproxEqEps(a, b, eps float64) bool {
	if a == b { //vulcanvet:ok floateq — the one place exact compare is the point
		// Covers exact equality including infinities of the same sign.
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal infinities (or infinite vs finite) are never close.
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= eps
	}
	return diff <= eps*scale
}
