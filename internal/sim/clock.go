// Package sim provides the deterministic simulation kernel shared by every
// substrate in the repository: a nanosecond-resolution virtual clock, a
// calendar-queue event scheduler, and reproducible pseudo-random number
// generators.
//
// All simulated components (memory tiers, TLBs, migration engines, workload
// generators) advance exclusively through this package, which keeps every
// experiment bit-reproducible from a seed.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants but for simulated
// time. Using distinct types prevents accidentally mixing wall-clock and
// simulated values.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "12.5ms".
func (t Time) String() string { return Duration(t).String() }

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Clock is the simulation's source of truth for virtual time. The zero
// value is a clock at t=0, ready to use.
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It panics on negative d: simulated
// time is monotone, and a negative advance always indicates a logic error
// in the caller rather than a recoverable condition.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %d", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock to absolute time t. Moving backwards panics.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: %d -> %d", c.now, t))
	}
	c.now = t
}

// Reset returns the clock to t=0.
func (c *Clock) Reset() { c.now = 0 }

// CyclesPerNs is the simulated core frequency in cycles per nanosecond.
// The paper's testbed uses Intel Xeon Platinum 8378A CPUs at 3.0 GHz.
const CyclesPerNs = 3.0

// CyclesToDuration converts a CPU-cycle count into simulated time at the
// modeled 3.0 GHz clock.
func CyclesToDuration(cycles float64) Duration {
	return Duration(cycles / CyclesPerNs)
}

// DurationToCycles converts simulated time into CPU cycles.
func DurationToCycles(d Duration) float64 {
	return float64(d) * CyclesPerNs
}
