package sim

import (
	"container/heap"
	"testing"
)

// The calendar queue must be observationally identical to a plain binary
// heap ordered by (At, seq). refQueue is that reference model — the
// pre-calendar implementation, kept here as an executable specification.

type refEvent struct {
	at    Time
	fn    func(now Time)
	seq   uint64
	index int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

type refQueue struct {
	clock *Clock
	h     refHeap
	seq   uint64
}

func (q *refQueue) at(t Time, fn func(now Time)) *refEvent {
	if t < q.clock.Now() {
		panic("refQueue: scheduling event in the past")
	}
	e := &refEvent{at: t, fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

func (q *refQueue) cancel(e *refEvent) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
}

func (q *refQueue) peekTime() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *refQueue) step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*refEvent)
	q.clock.AdvanceTo(e.at)
	e.fn(e.at)
	return true
}

// propHarness drives the real Queue and the reference model with an
// identical operation stream and checks every observable after each op.
type propHarness struct {
	t *testing.T

	realClock Clock
	refClock  Clock
	real      *Queue
	ref       *refQueue

	nextID   int
	realLive map[int]*Event
	refLive  map[int]*refEvent
	realLog  []int
	refLog   []int
}

func newPropHarness(t *testing.T) *propHarness {
	h := &propHarness{t: t, realLive: map[int]*Event{}, refLive: map[int]*refEvent{}}
	h.real = NewQueue(&h.realClock)
	h.ref = &refQueue{clock: &h.refClock}
	return h
}

// schedule registers a new event at absolute time at in both queues.
// When victim >= 0 the event, on firing, cancels event id victim in its
// own queue — exercising cancellation during drain.
func (h *propHarness) schedule(at Time, victim int) int {
	id := h.nextID
	h.nextID++
	h.realLive[id] = h.real.At(at, func(Time) {
		h.realLog = append(h.realLog, id)
		delete(h.realLive, id)
		if victim >= 0 {
			if v, ok := h.realLive[victim]; ok {
				h.real.Cancel(v)
				delete(h.realLive, victim)
			}
		}
	})
	h.refLive[id] = h.ref.at(at, func(Time) {
		h.refLog = append(h.refLog, id)
		delete(h.refLive, id)
		if victim >= 0 {
			if v, ok := h.refLive[victim]; ok {
				h.ref.cancel(v)
				delete(h.refLive, victim)
			}
		}
	})
	return id
}

func (h *propHarness) cancel(id int) {
	e, ok := h.realLive[id]
	if !ok {
		return
	}
	h.real.Cancel(e)
	if !e.Cancelled() {
		h.t.Fatalf("event %d does not report Cancelled after Cancel", id)
	}
	delete(h.realLive, id)
	h.ref.cancel(h.refLive[id])
	delete(h.refLive, id)
}

// check compares every observable of the two queues.
func (h *propHarness) check() {
	h.t.Helper()
	if h.real.Len() != len(h.ref.h) {
		h.t.Fatalf("Len mismatch: real %d, ref %d", h.real.Len(), len(h.ref.h))
	}
	rt, rok := h.real.PeekTime()
	ft, fok := h.ref.peekTime()
	if rok != fok || rt != ft {
		h.t.Fatalf("PeekTime mismatch: real %d,%v ref %d,%v", rt, rok, ft, fok)
	}
	if h.realClock.Now() != h.refClock.Now() {
		h.t.Fatalf("clock mismatch: real %d, ref %d", h.realClock.Now(), h.refClock.Now())
	}
	if len(h.realLog) != len(h.refLog) {
		h.t.Fatalf("fired %d events, ref fired %d", len(h.realLog), len(h.refLog))
	}
	for i := range h.realLog {
		if h.realLog[i] != h.refLog[i] {
			h.t.Fatalf("fire order diverges at %d: real %v, ref %v",
				i, h.realLog[i:], h.refLog[i:])
		}
	}
}

func (h *propHarness) step() {
	r := h.real.Step()
	f := h.ref.step()
	if r != f {
		h.t.Fatalf("Step mismatch: real %v, ref %v", r, f)
	}
}

// liveIDs returns the live ids in insertion order (map iteration order
// must not leak into the deterministic op stream).
func (h *propHarness) liveIDs() []int {
	ids := make([]int, 0, len(h.realLive))
	for id := 0; id < h.nextID; id++ {
		if _, ok := h.realLive[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestQueuePropertyVsHeap drives the calendar queue and the binary-heap
// reference with a long randomized stream of schedules (near, same-tick,
// beyond-horizon, equal-timestamp bursts), cancellations (including from
// inside firing callbacks), rescheduling, and partial drains, checking
// fire order, Len, PeekTime, and clock agreement after every operation.
func TestQueuePropertyVsHeap(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 0xdecafbad} {
		rng := NewRNG(seed)
		h := newPropHarness(t)
		for round := 0; round < 400; round++ {
			nOps := 1 + rng.Intn(8)
			for op := 0; op < nOps; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // near-future schedule, inside the ring window
					h.schedule(h.realClock.Now()+Time(int64(rng.Intn(int(50*Millisecond)))), -1)
				case 3: // same-timestamp burst: FIFO must hold
					at := h.realClock.Now() + Time(int64(rng.Intn(int(Millisecond))))
					for i := 0; i < 3; i++ {
						h.schedule(at, -1)
					}
				case 4: // beyond the ~1.07s horizon: lands in the overflow heap
					h.schedule(h.realClock.Now()+Time(Second)+Time(int64(rng.Intn(int(3*Second)))), -1)
				case 5: // schedule an event that cancels another when it fires
					victim := -1
					if ids := h.liveIDs(); len(ids) > 0 {
						victim = ids[rng.Intn(len(ids))]
					}
					h.schedule(h.realClock.Now()+Time(int64(rng.Intn(int(10*Millisecond)))), victim)
				case 6: // direct cancel
					if ids := h.liveIDs(); len(ids) > 0 {
						h.cancel(ids[rng.Intn(len(ids))])
					}
				case 7: // reschedule: cancel then re-add at a new time
					if ids := h.liveIDs(); len(ids) > 0 {
						h.cancel(ids[rng.Intn(len(ids))])
						h.schedule(h.realClock.Now()+Time(int64(rng.Intn(int(2*Second)))), -1)
					}
				case 8: // immediate: due exactly now
					h.schedule(h.realClock.Now(), -1)
				case 9: // idle-gap probe: far future, forces a window jump
					h.schedule(h.realClock.Now()+Time(5*Second)+Time(int64(rng.Intn(int(5*Second)))), -1)
				}
				h.check()
			}
			// Fire a few events — cancels-from-callbacks happen here.
			for fires := rng.Intn(6); fires > 0; fires-- {
				h.step()
				h.check()
			}
		}
		// Full drain must agree to the last event.
		for h.real.Step() {
			h.ref.step()
			h.check()
		}
		if h.ref.step() {
			t.Fatal("reference queue still has events after real queue drained")
		}
		h.check()
		if len(h.realLog) == 0 {
			t.Fatal("property run fired no events; stream generator is broken")
		}
	}
}
