package sim

import (
	"math"
	"testing"
)

func TestApproxEq(t *testing.T) {
	for _, tc := range []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 1e-12, true},
		{0, 1e-6, false},
		// Relative tolerance: large magnitudes absorb proportionally
		// larger absolute error, the shape of reassociated cycle sums.
		{3e12, 3e12 + 1, true},
		{3e12, 3.1e12, false},
		{-5, -5 - 1e-12, true},
		{-5, 5, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
	} {
		if got := ApproxEq(tc.a, tc.b); got != tc.want {
			t.Errorf("ApproxEq(%g, %g) = %t, want %t", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestApproxEqEpsSymmetry(t *testing.T) {
	for _, pair := range [][2]float64{{1, 1.5}, {100, 100.001}, {-3, -3.0000001}} {
		a, b := pair[0], pair[1]
		if ApproxEqEps(a, b, 1e-4) != ApproxEqEps(b, a, 1e-4) {
			t.Errorf("ApproxEqEps not symmetric for (%g, %g)", a, b)
		}
	}
}

// TestReassociatedSumWithinEps pins the motivating property: summing the
// same terms in a different order lands within ApproxEq tolerance.
func TestReassociatedSumWithinEps(t *testing.T) {
	rng := NewRNG(11)
	terms := make([]float64, 1000)
	for i := range terms {
		terms[i] = rng.Float64() * 1e6
	}
	fwd := 0.0
	for _, v := range terms {
		fwd += v
	}
	rev := 0.0
	for i := len(terms) - 1; i >= 0; i-- {
		rev += terms[i]
	}
	if fwd == rev { //vulcanvet:ok floateq — asserting the two orders really differ bit-wise is the point
		t.Log("sums happen to agree exactly; property still holds")
	}
	if !ApproxEq(fwd, rev) {
		t.Errorf("reassociated sums not ApproxEq: %v vs %v", fwd, rev)
	}
}
