package sim

import "container/heap"

// The event queue is a calendar (bucket) queue: pending events live in a
// ring of time buckets, each covering 2^bucketShift ns, so scheduling and
// firing are O(1) amortized instead of the O(log n) of a binary heap.
// Events beyond the ring's horizon wait in a small overflow heap and
// migrate into buckets as the window advances.
const (
	// bucketShift sets the bucket width: 2^20 ns ≈ 1.05 ms.
	bucketShift = 20
	// numBuckets sizes the ring; the covered horizon is
	// numBuckets << bucketShift ≈ 1.07 s, longer than one profiling
	// epoch, so steady-state scheduling never touches the overflow heap.
	numBuckets = 1024
	bucketMask = numBuckets - 1
)

// Event slot sentinels; a non-negative slot is the ring bucket holding
// the event.
const (
	slotDone = -1 // fired or cancelled
	slotFar  = -2 // waiting in the overflow heap
)

// Event is a callback scheduled to fire at a simulated time. Events with
// equal times fire in scheduling order (FIFO), which keeps runs
// deterministic regardless of queue internals.
type Event struct {
	At Time
	Fn func(now Time)

	seq  uint64
	tick int64 // At >> bucketShift
	slot int32 // ring bucket index, or slotDone/slotFar
	pos  int32 // index within its bucket slice or the overflow heap
}

// Cancelled reports whether the event has been removed from its queue
// (either fired or cancelled).
func (e *Event) Cancelled() bool { return e.slot == slotDone }

// farHeap is the overflow min-heap ordered by (At, seq) holding events
// scheduled beyond the ring's current window.
type farHeap []*Event

func (h farHeap) Len() int { return len(h) }
func (h farHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h farHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = int32(i)
	h[j].pos = int32(j)
}
func (h *farHeap) Push(x any) {
	e := x.(*Event)
	e.pos = int32(len(*h))
	*h = append(*h, e)
}
func (h *farHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event scheduler bound to a Clock. The zero value is
// unusable; construct with NewQueue.
type Queue struct {
	clock *Clock
	seq   uint64

	// buckets is the calendar ring. While a tick is inside
	// [winStart, winStart+numBuckets), bucket (tick & bucketMask) holds
	// exactly that tick's events and no other's.
	buckets [numBuckets][]*Event
	// winStart is the lowest tick the ring currently covers.
	winStart int64
	// count is the number of events in the ring (excluding far).
	count int
	// far holds events past the ring horizon.
	far farHeap
}

// NewQueue returns an event queue driving clock.
func NewQueue(clock *Clock) *Queue {
	return &Queue{clock: clock}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.count + len(q.far) }

// insertBucket places e — whose tick must be inside the window — in its
// ring bucket.
func (q *Queue) insertBucket(e *Event) {
	slot := int32(e.tick & bucketMask)
	e.slot = slot
	b := q.buckets[slot]
	e.pos = int32(len(b))
	q.buckets[slot] = append(b, e)
	q.count++
}

// removeBucket unlinks e from its ring bucket by swap-remove.
func (q *Queue) removeBucket(e *Event) {
	b := q.buckets[e.slot]
	i := int(e.pos)
	last := len(b) - 1
	if i != last {
		b[i] = b[last]
		b[i].pos = int32(i)
	}
	b[last] = nil
	q.buckets[e.slot] = b[:last]
	q.count--
}

// drainFar migrates overflow events that now fall inside the window into
// their ring buckets.
func (q *Queue) drainFar() {
	for len(q.far) > 0 && q.far[0].tick < q.winStart+numBuckets {
		q.insertBucket(heap.Pop(&q.far).(*Event))
	}
}

// lowerWindow slides the window start down to newStart (below the current
// winStart), evicting ring events that the moved view pushes past the
// horizon back into the overflow heap. This only happens when a fresh
// event is scheduled below a window that previously jumped forward across
// an idle gap — rare by construction.
func (q *Queue) lowerWindow(newStart int64) {
	horizon := newStart + numBuckets
	for slot := range q.buckets {
		b := q.buckets[slot]
		for i := 0; i < len(b); {
			e := b[i]
			if e.tick < horizon {
				i++
				continue
			}
			last := len(b) - 1
			if i != last {
				b[i] = b[last]
				b[i].pos = int32(i)
			}
			b[last] = nil
			b = b[:last]
			q.count--
			e.slot = slotFar
			heap.Push(&q.far, e)
		}
		q.buckets[slot] = b
	}
	q.winStart = newStart
}

// peekMin returns the earliest pending event without removing it, or nil
// when the queue is empty. It advances the window past empty buckets,
// draining overflow events as they come into range, and jumps straight
// across fully idle gaps.
func (q *Queue) peekMin() *Event {
	for {
		if q.count == 0 {
			if len(q.far) == 0 {
				return nil
			}
			q.winStart = q.far[0].tick
			q.drainFar()
			continue
		}
		if b := q.buckets[q.winStart&bucketMask]; len(b) > 0 {
			best := b[0]
			for _, e := range b[1:] {
				if e.At < best.At || (e.At == best.At && e.seq < best.seq) {
					best = e
				}
			}
			return best
		}
		q.winStart++
		q.drainFar()
	}
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently reorder causality.
func (q *Queue) At(t Time, fn func(now Time)) *Event {
	if t < q.clock.Now() {
		panic("sim: scheduling event in the past")
	}
	e := &Event{At: t, Fn: fn, seq: q.seq, tick: int64(t) >> bucketShift}
	q.seq++
	switch {
	case q.count == 0 && len(q.far) == 0:
		// Empty queue: re-anchor the window at the new event.
		q.winStart = e.tick
	case e.tick < q.winStart:
		q.lowerWindow(e.tick)
	}
	if e.tick >= q.winStart+numBuckets {
		e.slot = slotFar
		heap.Push(&q.far, e)
	} else {
		q.insertBucket(e)
	}
	return e
}

// After schedules fn to run d after the current time.
func (q *Queue) After(d Duration, fn func(now Time)) *Event {
	return q.At(q.clock.Now()+Time(d), fn)
}

// Cancel removes a pending event; it is a no-op if the event already fired.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.slot == slotDone {
		return
	}
	if e.slot == slotFar {
		heap.Remove(&q.far, int(e.pos))
	} else {
		q.removeBucket(e)
	}
	e.slot = slotDone
	// Drop the callback so a retained *Event cannot pin the closure's
	// captures after the queue is done with it.
	e.Fn = nil
}

// PeekTime returns the time of the next pending event, or ok=false when
// the queue is empty.
func (q *Queue) PeekTime() (Time, bool) {
	e := q.peekMin()
	if e == nil {
		return 0, false
	}
	return e.At, true
}

// Step fires the single next event, advancing the clock to its time. It
// returns false when no events remain.
func (q *Queue) Step() bool {
	e := q.peekMin()
	if e == nil {
		return false
	}
	q.removeBucket(e)
	e.slot = slotDone
	fn := e.Fn
	// Popped events are often retained by callers (for Cancelled
	// checks); nil the callback so its captures are collectable.
	e.Fn = nil
	q.clock.AdvanceTo(e.At)
	fn(e.At)
	return true
}

// RunUntil fires events in order until the queue is empty or the next
// event is after deadline, then advances the clock to deadline.
func (q *Queue) RunUntil(deadline Time) {
	for {
		t, ok := q.PeekTime()
		if !ok || t > deadline {
			break
		}
		q.Step()
	}
	if q.clock.Now() < deadline {
		q.clock.AdvanceTo(deadline)
	}
}

// Drain fires every pending event. Intended for test teardown; production
// loops should bound execution with RunUntil.
func (q *Queue) Drain() {
	for q.Step() {
	}
}
