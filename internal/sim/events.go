package sim

import "container/heap"

// Event is a callback scheduled to fire at a simulated time. Events with
// equal times fire in scheduling order (FIFO), which keeps runs
// deterministic regardless of heap internals.
type Event struct {
	At Time
	Fn func(now Time)

	seq   uint64
	index int // heap bookkeeping; -1 once popped or cancelled
}

// Cancelled reports whether the event has been removed from its queue
// (either fired or cancelled).
func (e *Event) Cancelled() bool { return e.index < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event scheduler bound to a Clock. The zero value is
// unusable; construct with NewQueue.
type Queue struct {
	clock *Clock
	h     eventHeap
	seq   uint64
}

// NewQueue returns an event queue driving clock.
func NewQueue(clock *Clock) *Queue {
	return &Queue{clock: clock}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past panics: it would silently reorder causality.
func (q *Queue) At(t Time, fn func(now Time)) *Event {
	if t < q.clock.Now() {
		panic("sim: scheduling event in the past")
	}
	e := &Event{At: t, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// After schedules fn to run d after the current time.
func (q *Queue) After(d Duration, fn func(now Time)) *Event {
	return q.At(q.clock.Now()+Time(d), fn)
}

// Cancel removes a pending event; it is a no-op if the event already fired.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.h, e.index)
}

// PeekTime returns the time of the next pending event, or ok=false when
// the queue is empty.
func (q *Queue) PeekTime() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Step fires the single next event, advancing the clock to its time. It
// returns false when no events remain.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.clock.AdvanceTo(e.At)
	e.Fn(e.At)
	return true
}

// RunUntil fires events in order until the queue is empty or the next
// event is after deadline, then advances the clock to deadline.
func (q *Queue) RunUntil(deadline Time) {
	for {
		t, ok := q.PeekTime()
		if !ok || t > deadline {
			break
		}
		q.Step()
	}
	if q.clock.Now() < deadline {
		q.clock.AdvanceTo(deadline)
	}
}

// Drain fires every pending event. Intended for test teardown; production
// loops should bound execution with RunUntil.
func (q *Queue) Drain() {
	for q.Step() {
	}
}
