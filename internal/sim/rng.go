package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Every simulated component draws
// from its own RNG stream forked off a scenario seed, so experiments are
// reproducible and components do not perturb each other's streams when
// code is added or reordered.
//
// RNG is not safe for concurrent use; fork one per goroutine with Fork.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, as
// recommended by the xoshiro authors to avoid correlated low-entropy
// states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Fork derives an independent generator from this one. The child stream is
// decorrelated by hashing a draw from the parent.
func (r *RNG) Fork() *RNG {
	child := &RNG{}
	r.ForkInto(child)
	return child
}

// ForkInto seeds dst as an independent child stream, exactly like Fork
// but into caller-owned storage — bulk constructors fork dozens of
// streams and can keep them in one backing array.
func (r *RNG) ForkInto(dst *RNG) {
	dst.Seed(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Rejection-free Box–Muller; u1 in (0,1] to avoid log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1.0 - r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
