package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Every simulated component draws
// from its own RNG stream forked off a scenario seed, so experiments are
// reproducible and components do not perturb each other's streams when
// code is added or reordered.
//
// RNG is not safe for concurrent use; fork one per goroutine with Fork.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, as
// recommended by the xoshiro authors to avoid correlated low-entropy
// states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Fork derives an independent generator from this one. The child stream is
// decorrelated by hashing a draw from the parent.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Rejection-free Box–Muller; u1 in (0,1] to avoid log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1.0 - r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws from a Zipfian distribution over [0, n) with skew parameter
// s > 0 using precomputed tables; construct with NewZipf.
type Zipf struct {
	rng     *RNG
	n       int
	cdf     []float64 // cumulative probabilities, len n (exact mode)
	approx  bool
	s       float64
	hIntegX float64 // integral-based sampler state for large n
	hX0     float64
}

// zipfExactThreshold bounds the table-based sampler; beyond it we use the
// rejection-inversion method (Hörmann & Derflinger) that needs O(1) space.
const zipfExactThreshold = 1 << 20

// NewZipf builds a Zipfian sampler over ranks [0, n) where rank k has
// probability proportional to 1/(k+1)^s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: Zipf with non-positive skew")
	}
	z := &Zipf{rng: rng, n: n, s: s}
	if n <= zipfExactThreshold {
		z.cdf = make([]float64, n)
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += 1.0 / math.Pow(float64(k+1), s)
			z.cdf[k] = sum
		}
		inv := 1.0 / sum
		for k := range z.cdf {
			z.cdf[k] *= inv
		}
		return z
	}
	z.approx = true
	z.hIntegX = z.hInteg(float64(n) + 0.5)
	z.hX0 = z.hInteg(1.5) - 1.0
	return z
}

// hInteg is the antiderivative of 1/x^s (rejection-inversion helper).
func (z *Zipf) hInteg(x float64) float64 {
	if z.s == 1.0 {
		return math.Log(x)
	}
	return (math.Pow(x, 1.0-z.s) - 1.0) / (1.0 - z.s)
}

func (z *Zipf) hIntegInv(x float64) float64 {
	if z.s == 1.0 {
		return math.Exp(x)
	}
	return math.Pow(1.0+x*(1.0-z.s), 1.0/(1.0-z.s))
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	if !z.approx {
		u := z.rng.Float64()
		// Binary search the CDF.
		lo, hi := 0, z.n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Rejection-inversion for large n.
	for {
		u := z.hX0 + z.rng.Float64()*(z.hIntegX-z.hX0)
		x := z.hIntegInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		if u >= z.hInteg(k+0.5)-math.Pow(k, -z.s) {
			return int(k) - 1
		}
	}
}
