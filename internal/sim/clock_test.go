package sim

import "testing"

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %d, want 0", c.Now())
	}
	c.Advance(1500)
	if c.Now() != 1500 {
		t.Fatalf("Now = %d, want 1500", c.Now())
	}
	c.AdvanceTo(2000)
	if c.Now() != 2000 {
		t.Fatalf("Now = %d, want 2000", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now = %d, want 0", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	var c Clock
	c.Advance(100)
	c.AdvanceTo(50)
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2_500_000, "2.50ms"},
		{3 * Second, "3.000s"},
		{-500, "-500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	d := CyclesToDuration(300_000) // 100µs at 3 GHz
	if d != 100*Microsecond {
		t.Fatalf("CyclesToDuration(300000) = %v, want 100µs", d)
	}
	if got := DurationToCycles(d); got != 300_000 {
		t.Fatalf("DurationToCycles = %v, want 300000", got)
	}
}

func TestDurationSeconds(t *testing.T) {
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v, want 0.25", got)
	}
}
