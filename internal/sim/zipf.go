package sim

import (
	"math"
	"sync"
)

// Zipf draws from a Zipfian distribution over [0, n) with skew parameter
// s > 0 using precomputed tables; construct with NewZipf.
type Zipf struct {
	rng     *RNG
	n       int
	tab     *zipfTable // shared CDF + search index (exact mode)
	approx  bool
	s       float64
	hIntegX float64 // integral-based sampler state for large n
	hX0     float64
}

// zipfExactThreshold bounds the table-based sampler; beyond it we use the
// rejection-inversion method (Hörmann & Derflinger) that needs O(1) space.
const zipfExactThreshold = 1 << 20

// zipfIndexBuckets is the fan-out of the coarse CDF search index. Each
// bucket b covers u in [b/B, (b+1)/B); the index pins the binary search
// to the few ranks whose CDF mass straddles that interval, so hot
// (high-mass) draws resolve in O(1) instead of O(log n). A power of two
// keeps u*B exact in float64, which the bracketing proof relies on. The
// fan-out only narrows the search bracket — the sampled rank is the CDF
// lower bound for u under any bucket count — so it is purely a
// speed/space knob; 32Ki buckets cost 128KiB per shared table and leave
// most tail buckets spanning a handful of ranks.
const zipfIndexBuckets = 32768

// zipfTable is the immutable sampling table for one (n, s) pair: the
// cumulative distribution plus a coarse index into it. Tables are pure
// functions of (n, s), so they are built once and shared process-wide —
// every thread of an app samples the same region size and skew, and
// sweeps rebuild identical scenarios many times over.
type zipfTable struct {
	cdf []float64 // cumulative probabilities, len n
	// idx[b] is the smallest rank r with cdf[r] >= b/B (capped at n-1);
	// idx[b] and idx[b+1] bracket the answer for any u in bucket b.
	idx [zipfIndexBuckets + 1]int32
}

type zipfKey struct {
	n int
	s float64
}

var (
	// zipfMu guards first-build of a table; the contents are a pure
	// function of (n, s), so serial and parallel runs see identical
	// tables no matter which lab worker builds one first.
	zipfMu     sync.Mutex //vulcan:lablocked guards construction of immutable shared tables
	zipfTables = map[zipfKey]*zipfTable{}
)

// zipfTableFor returns the shared table for (n, s), building it on first
// use. Tables are immutable after construction, so concurrent samplers
// (sweep workers) can share them freely.
func zipfTableFor(n int, s float64) *zipfTable {
	zipfMu.Lock()
	defer zipfMu.Unlock()
	key := zipfKey{n: n, s: s}
	if t, ok := zipfTables[key]; ok {
		return t
	}
	t := &zipfTable{cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1.0 / math.Pow(float64(k+1), s)
		t.cdf[k] = sum
	}
	inv := 1.0 / sum
	for k := range t.cdf {
		t.cdf[k] *= inv
	}
	r := 0
	for b := 0; b <= zipfIndexBuckets; b++ {
		threshold := float64(b) / zipfIndexBuckets
		for r < n-1 && t.cdf[r] < threshold {
			r++
		}
		t.idx[b] = int32(r)
	}
	zipfTables[key] = t
	return t
}

// NewZipf builds a Zipfian sampler over ranks [0, n) where rank k has
// probability proportional to 1/(k+1)^s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: Zipf with non-positive skew")
	}
	z := &Zipf{rng: rng, n: n, s: s}
	if n <= zipfExactThreshold {
		z.tab = zipfTableFor(n, s)
		return z
	}
	z.approx = true
	z.hIntegX = z.hInteg(float64(n) + 0.5)
	z.hX0 = z.hInteg(1.5) - 1.0
	return z
}

// hInteg is the antiderivative of 1/x^s (rejection-inversion helper).
func (z *Zipf) hInteg(x float64) float64 {
	if z.s == 1.0 {
		return math.Log(x)
	}
	return (math.Pow(x, 1.0-z.s) - 1.0) / (1.0 - z.s)
}

func (z *Zipf) hIntegInv(x float64) float64 {
	if z.s == 1.0 {
		return math.Exp(x)
	}
	return math.Pow(1.0+x*(1.0-z.s), 1.0/(1.0-z.s))
}

// Next returns the next Zipf-distributed rank in [0, n).
//
//vulcan:hotpath
func (z *Zipf) Next() int {
	if !z.approx {
		u := z.rng.Float64()
		// u*B is exact (power-of-two scale), so b/B <= u < (b+1)/B and
		// idx brackets the CDF binary search to the bucket's ranks.
		b := int(u * zipfIndexBuckets)
		if b >= zipfIndexBuckets {
			b = zipfIndexBuckets - 1
		}
		cdf := z.tab.cdf
		lo, hi := int(z.tab.idx[b]), int(z.tab.idx[b+1])
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// Rejection-inversion for large n.
	for {
		u := z.hX0 + z.rng.Float64()*(z.hIntegX-z.hX0)
		x := z.hIntegInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		if u >= z.hInteg(k+0.5)-math.Pow(k, -z.s) {
			return int(k) - 1
		}
	}
}
