package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vulcan/internal/metrics"
)

// HostReport is one host's line in the fleet summary.
type HostReport struct {
	Host            int     `json:"host"`
	Tenants         int     `json:"tenants"`
	FastUsed        int     `json:"fast_used_pages"`
	FastCapacity    int     `json:"fast_capacity_pages"`
	TotalOps        float64 `json:"total_ops"`
	HostCFI         float64 `json:"host_cfi"`
	MigrationCycles float64 `json:"migration_cycles"`
}

// FleetReport is the machine-readable fleet summary.
type FleetReport struct {
	Scheduler string `json:"scheduler"`
	Hosts     int    `json:"hosts"`
	Epochs    int    `json:"epochs"`
	Jobs      int    `json:"jobs"`
	Placed    int    `json:"jobs_placed"`
	Departed  int    `json:"jobs_departed"`
	Pending   int    `json:"jobs_pending"`

	// FleetCFI is Eq.4 over per-job cumulative allocations, fleet-wide:
	// a job keeps one fairness slot however often it is re-placed.
	FleetCFI float64 `json:"fleet_cfi"`
	// HostCombinedCFI is metrics.CombineCFI over every host's own
	// per-instance tracker — the cross-host aggregation a per-host view
	// would naively report. The gap between the two is re-placement
	// history the per-host view cannot see.
	HostCombinedCFI float64 `json:"host_combined_cfi"`
	// ThroughputSpread is (max-min)/mean over per-host cumulative ops:
	// 0 for a perfectly level fleet.
	ThroughputSpread float64 `json:"throughput_spread"`
	// OpsP50/P90 are quantiles of the merged per-epoch host-throughput
	// distribution (every host's histogram merged into one).
	OpsP50 float64 `json:"ops_p50"`
	OpsP90 float64 `json:"ops_p90"`

	Rebalances      int     `json:"rebalances"`
	Moves           int     `json:"moves"`
	MigratedPages   uint64  `json:"migrated_pages"`
	CrossHostCycles float64 `json:"cross_host_cycles"`
	// MigrationCycles totals every host's in-machine migration spend;
	// CrossHostCycles adds what the rebalancer's page shipping cost.
	MigrationCycles float64 `json:"migration_cycles"`

	PerHost []HostReport `json:"per_host"`
}

// hostTotalOps sums the durable op counts of every instance the host
// ever ran (stopped tenants keep their summary, so moved-away work
// still counts where it happened).
func hostTotalOps(h *Host) float64 {
	ops := 0.0
	for _, a := range h.Sys.Apps() {
		ops += a.TotalOps()
	}
	return ops
}

// Report builds the fleet summary.
func (f *Fleet) Report() FleetReport {
	r := FleetReport{
		Scheduler: f.sched.Name(),
		Hosts:     len(f.hosts),
		Epochs:    f.epoch,
		Jobs:      len(f.jobs),

		FleetCFI:      f.cfi.Index(),
		Rebalances:    f.rebalances,
		Moves:         f.moves,
		MigratedPages: f.migratedPages,
	}
	r.CrossHostCycles = float64(f.migratedPages) * crossHostCopyCyclesPerPage
	for _, j := range f.jobs {
		switch {
		case j.Done:
			r.Departed++
		case j.Placed():
			r.Placed++
		default:
			r.Pending++
		}
	}
	groups := make([][]float64, 0, len(f.hosts))
	totals := make([]float64, 0, len(f.hosts))
	merged := metrics.NewHistogram(0, opsHistMax, opsHistBuckets)
	for _, h := range f.hosts {
		rep := h.Sys.Report()
		hr := HostReport{
			Host:         h.ID,
			FastUsed:     rep.FastUsed,
			FastCapacity: rep.FastCapacity,
			TotalOps:     hostTotalOps(h),
			HostCFI:      rep.CFI,
		}
		for _, ar := range rep.Apps {
			if ar.Started {
				hr.Tenants++
			}
			hr.MigrationCycles += ar.MigrationCycles
		}
		r.MigrationCycles += hr.MigrationCycles
		r.PerHost = append(r.PerHost, hr)
		groups = append(groups, h.Sys.CFI().Cumulative())
		totals = append(totals, hr.TotalOps)
		// Shapes are identical by construction; a merge error here is a
		// programming bug, not data.
		if err := merged.Merge(h.opsHist); err != nil {
			panic(fmt.Sprintf("cluster: %v", err))
		}
	}
	r.HostCombinedCFI = metrics.CombineCFI(groups...)
	r.ThroughputSpread = spread(totals)
	if merged.Count() > 0 {
		r.OpsP50 = merged.Quantile(0.50)
		r.OpsP90 = merged.Quantile(0.90)
	}
	r.MigrationCycles += r.CrossHostCycles
	return r
}

// spread returns (max-min)/mean, the fleet's throughput imbalance.
func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	if sum == 0 {
		return 0
	}
	return (max - min) / (sum / float64(len(xs)))
}

// WriteJSON emits the report as indented JSON.
func (r FleetReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable fleet summary.
func (r FleetReport) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d hosts  scheduler=%s  epochs=%d  jobs=%d (placed %d, departed %d, pending %d)\n",
		r.Hosts, r.Scheduler, r.Epochs, r.Jobs, r.Placed, r.Departed, r.Pending)
	fmt.Fprintf(&b, "fleet CFI=%.3f  host-combined CFI=%.3f  throughput spread=%.3f  ops p50=%.0f p90=%.0f\n",
		r.FleetCFI, r.HostCombinedCFI, r.ThroughputSpread, r.OpsP50, r.OpsP90)
	fmt.Fprintf(&b, "rebalances=%d moves=%d migrated=%d pages  cross-host cycles=%.0f  total migration cycles=%.0f\n",
		r.Rebalances, r.Moves, r.MigratedPages, r.CrossHostCycles, r.MigrationCycles)
	fmt.Fprintf(&b, "%-6s %8s %12s %12s %14s %10s\n",
		"host", "tenants", "fast used", "fast cap", "total ops", "host CFI")
	for _, h := range r.PerHost {
		fmt.Fprintf(&b, "%-6d %8d %12d %12d %14.0f %10.3f\n",
			h.Host, h.Tenants, h.FastUsed, h.FastCapacity, h.TotalOps, h.HostCFI)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
