package cluster

import (
	"bytes"
	"testing"
)

// ckptBlob runs a small fleet past arrivals, a departure and a
// rebalance cadence, then checkpoints it.
func ckptBlob(t *testing.T) []byte {
	t.Helper()
	f, err := New(fleetConfig(3, 2, "fairness"))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, f, 7)
	var blob bytes.Buffer
	if err := f.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	return blob.Bytes()
}

// Corrupting or truncating any part of the fleet container — outer
// sections and embedded per-host blobs alike — must yield an error from
// Resume, never a panic.
func TestFleetCheckpointCorruptionNeverPanics(t *testing.T) {
	raw := ckptBlob(t)
	// The fleet container embeds whole host blobs, so it is two orders
	// of magnitude larger than a single-system checkpoint; prime strides
	// keep the ladder dense enough to cross every section boundary
	// without resuming a 300KB blob tens of thousands of times.
	for n := 0; n < len(raw); n += 211 {
		if _, err := Resume(bytes.NewReader(raw[:n]), fleetConfig(3, 2, "fairness")); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	for i := 0; i < len(raw); i += 337 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x5a
		if _, err := Resume(bytes.NewReader(mut), fleetConfig(3, 2, "fairness")); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestFleetResumeRejectsMismatchedConfig(t *testing.T) {
	raw := ckptBlob(t)
	reject := func(name string, mutate func(*Config)) {
		cfg := fleetConfig(3, 2, "fairness")
		mutate(&cfg)
		if _, err := Resume(bytes.NewReader(raw), cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	reject("scheduler mismatch", func(c *Config) { c.Scheduler = "binpack" })
	reject("seed mismatch", func(c *Config) { c.Seed = 8 })
	reject("host-count mismatch", func(c *Config) { c.Hosts = 4 })
	reject("job-count mismatch", func(c *Config) { c.Jobs = c.Jobs[:4] })
	reject("job-name mismatch", func(c *Config) { c.Jobs[0].App.Name = "omega" })

	if _, err := Resume(bytes.NewReader(raw), fleetConfig(3, 5, "fairness")); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
}

// A fleet checkpointed before its first epoch (nothing placed) must
// still round-trip.
func TestFleetCheckpointEmptyFleet(t *testing.T) {
	f, err := New(fleetConfig(2, 1, "binpack"))
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := f.Checkpoint(&blob); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(bytes.NewReader(blob.Bytes()), fleetConfig(2, 1, "binpack"))
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, resumed, 3)
	if resumed.Report().Placed == 0 {
		t.Fatal("resumed empty fleet never placed anything")
	}
}
