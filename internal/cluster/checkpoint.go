package cluster

import (
	"bytes"
	"fmt"
	"io"

	"vulcan/internal/checkpoint"
	"vulcan/internal/metrics"
	"vulcan/internal/system"
)

// Fleet checkpoint layout: one outer container holding a "fleet"
// section (scheduler identity, fleet clock, job placement states, the
// per-host placement logs and the fleet-level metrics) plus one
// "host.N" section per host, each embedding that host's complete
// system checkpoint blob as opaque bytes. Per-host blobs keep their own
// magic, section CRCs and versions, so corruption inside one host is
// caught by the same machinery that guards single-machine checkpoints.
const (
	fleetVersion     = 1
	fleetHostVersion = 1
)

// Checkpoint serializes the fleet at a fleet-epoch boundary.
func (f *Fleet) Checkpoint(w io.Writer) error {
	cw := checkpoint.NewWriter()

	e := cw.Section("fleet", fleetVersion)
	e.String(f.sched.Name())
	e.U64(f.cfg.Seed)
	e.Int(len(f.hosts))
	e.Int(f.epoch)
	e.Int(f.moves)
	e.Int(f.rebalances)
	e.U64(f.migratedPages)
	f.cfi.Snapshot(e)
	e.Int(len(f.jobs))
	for _, j := range f.jobs {
		e.String(j.Spec.App.Name)
		e.Int(j.HostID)
		e.Int(j.Gen)
		e.Bool(j.Done)
	}
	for _, log := range f.hostLog {
		e.Int(len(log))
		for _, rec := range log {
			e.Int(rec.jobIdx)
			e.Int(rec.gen)
		}
	}
	for _, h := range f.hosts {
		h.opsHist.Snapshot(e)
	}

	for i, h := range f.hosts {
		var blob bytes.Buffer
		if err := h.Sys.Checkpoint(&blob); err != nil {
			return fmt.Errorf("cluster: host %d: %w", i, err)
		}
		cw.Section(fmt.Sprintf("host.%d", i), fleetHostVersion).Bytes64(blob.Bytes())
	}

	_, err := cw.WriteTo(w)
	return err
}

// Resume rebuilds a fleet from a checkpoint written by Checkpoint. cfg
// must describe the same experiment (hosts, scheduler, seed, job list);
// each host's app history is replayed from the recorded placement log,
// then overlaid with that host's embedded checkpoint.
func Resume(r io.Reader, cfg Config) (*Fleet, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sched, err := NewScheduler(cfg.Scheduler)
	if err != nil {
		return nil, err
	}

	cr, err := checkpoint.NewReader(r)
	if err != nil {
		return nil, err
	}
	d, err := cr.Section("fleet", fleetVersion)
	if err != nil {
		return nil, err
	}
	if name := d.String(); name != sched.Name() {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("cluster: checkpoint scheduler %q, config scheduler %q", name, sched.Name())
	}
	if seed := d.U64(); seed != cfg.Seed {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("cluster: checkpoint seed %d, config seed %d", seed, cfg.Seed)
	}
	if n := d.Int(); n != cfg.Hosts {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("cluster: checkpoint has %d hosts, config has %d", n, cfg.Hosts)
	}

	f := &Fleet{
		cfg:     cfg,
		sched:   sched,
		cfi:     metrics.NewCFITracker(len(cfg.Jobs)),
		hostLog: make([][]placeRec, cfg.Hosts),
	}
	f.epoch = d.Int()
	f.moves = d.Int()
	f.rebalances = d.Int()
	f.migratedPages = d.U64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if f.epoch < 0 || f.moves < 0 || f.rebalances < 0 {
		return nil, fmt.Errorf("cluster: negative counters in checkpoint")
	}
	if err := f.cfi.Restore(d); err != nil {
		return nil, err
	}
	nJobs := d.Length(16)
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nJobs != len(cfg.Jobs) {
		return nil, fmt.Errorf("cluster: checkpoint has %d jobs, config has %d", nJobs, len(cfg.Jobs))
	}
	for i, spec := range cfg.Jobs {
		j := &Job{Idx: i, Spec: spec, HostID: -1}
		name := d.String()
		j.HostID = d.Int()
		j.Gen = d.Int()
		j.Done = d.Bool()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if name != spec.App.Name {
			return nil, fmt.Errorf("cluster: checkpoint job %q, config job %q", name, spec.App.Name)
		}
		if j.HostID < -1 || j.HostID >= cfg.Hosts || j.Gen < 0 {
			return nil, fmt.Errorf("cluster: job %q has invalid placement in checkpoint", name)
		}
		if j.Done && j.HostID >= 0 {
			return nil, fmt.Errorf("cluster: job %q both departed and placed in checkpoint", name)
		}
		f.jobs = append(f.jobs, j)
	}
	for h := 0; h < cfg.Hosts; h++ {
		n := d.Length(16)
		if d.Err() != nil {
			return nil, d.Err()
		}
		for i := 0; i < n; i++ {
			rec := placeRec{jobIdx: d.Int(), gen: d.Int()}
			if d.Err() != nil {
				return nil, d.Err()
			}
			if rec.jobIdx < 0 || rec.jobIdx >= len(f.jobs) || rec.gen < 0 {
				return nil, fmt.Errorf("cluster: host %d has invalid placement record in checkpoint", h)
			}
			f.hostLog[h] = append(f.hostLog[h], rec)
		}
	}
	hists := make([]*metrics.Histogram, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		hist, err := metrics.RestoreHistogram(d)
		if err != nil {
			return nil, err
		}
		hists[h] = hist
	}
	if err := d.Close(); err != nil {
		return nil, err
	}

	// Rebuild each host: its historical app list (every placement,
	// moved-away and departed instances included) comes from the
	// placement log; the embedded blob then replays admissions and
	// stops and overlays the live state.
	for h := 0; h < cfg.Hosts; h++ {
		hd, err := cr.Section(fmt.Sprintf("host.%d", h), fleetHostVersion)
		if err != nil {
			return nil, err
		}
		blob := hd.Bytes64()
		if err := hd.Close(); err != nil {
			return nil, err
		}
		scfg := cfg.hostConfig(h)
		for _, rec := range f.hostLog[h] {
			ac := f.jobs[rec.jobIdx].Spec.App
			ac.Name = instName(f.jobs[rec.jobIdx].Spec, rec.gen)
			ac.StartAt = 0
			scfg.Apps = append(scfg.Apps, ac)
		}
		sys, err := system.Resume(bytes.NewReader(blob), scfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", h, err)
		}
		f.hosts = append(f.hosts, &Host{ID: h, Sys: sys, opsHist: hists[h]})
	}

	// Reattach live instances to their jobs.
	for _, j := range f.jobs {
		if !j.Placed() {
			continue
		}
		app := f.hosts[j.HostID].Sys.App(instName(j.Spec, j.Gen))
		if app == nil || !app.Started() || app.Stopped() {
			return nil, fmt.Errorf("cluster: job %q placed on host %d but not running there", j.Spec.App.Name, j.HostID)
		}
		j.app = app
	}
	return f, nil
}
